(** The October 2023 Advanced Computing Rule (paper Table 1b).

    Data-center devices:
    - License required: TPP >= 4800, or TPP >= 1600 and PD >= 5.92.
    - NAC notification: 2400 <= TPP < 4800 and 1.6 <= PD < 5.92,
      or TPP >= 1600 and 3.2 <= PD < 5.92.
    - Otherwise not regulated.

    Non-data-center devices:
    - NAC notification: TPP >= 4800. Otherwise not regulated.

    Performance Density (PD) is TPP divided by applicable die area; for a
    planar-process device PD is treated as 0 (no applicable area). *)

type market = Regime.market = Data_center | Non_data_center
(** An alias of {!Regime.market}: the classifier here is a thin wrapper
    over the [Regime.acr_2023] registry value. *)

type tier = Not_applicable | Nac_eligible | License_required
(** Ordered by severity; [compare_tier] respects that order. *)

val classify : market -> Spec.t -> tier
val regulated : market -> Spec.t -> bool
(** True for [Nac_eligible] and [License_required] (the paper treats NAC
    devices as restricted, since NAC licenses may be denied). *)

val compare_tier : tier -> tier -> int

val min_area_unregulated : tpp:float -> float option
(** Smallest applicable die area at which a data-center device of the
    given TPP is fully unregulated (the Fig. 2 "area floor"); [None] when
    no area suffices (TPP >= 4800). The bound is exclusive: the PD must be
    strictly below the threshold at equality of TPP tiers. *)

val min_area_license_free : tpp:float -> float option
(** Smallest applicable area avoiding the license requirement (NAC
    allowed). *)

val tier_to_string : tier -> string
val market_to_string : market -> string

(* Threshold constants, exposed for documentation and tests. *)

val tpp_license : float  (** 4800 *)

val tpp_nac_low : float  (** 2400 *)

val tpp_floor : float  (** 1600 *)

val pd_license : float  (** 5.92 *)

val pd_nac : float  (** 3.2 *)

val pd_nac_low : float  (** 1.6 *)
