type date = Regime.date = { year : int; month : int }

let date = Regime.date
let compare_date = Regime.compare_date

type regime = Pre_acr | Acr_oct_2022 | Acr_oct_2023

let oct_2022 = date 2022 10
let oct_2023 = date 2023 10

let regime_at d =
  if compare_date d oct_2022 < 0 then Pre_acr
  else if compare_date d oct_2023 < 0 then Acr_oct_2022
  else Acr_oct_2023

let regime_to_string = function
  | Pre_acr -> "pre-ACR"
  | Acr_oct_2022 -> "October 2022 ACR"
  | Acr_oct_2023 -> "October 2023 ACR"

let to_value = function
  | Pre_acr -> Regime.pre_acr
  | Acr_oct_2022 -> Regime.acr_2022
  | Acr_oct_2023 -> Regime.acr_2023

(* Schedules: the general form of the timeline. *)

type schedule = (date * Regime.t) list

let schedule entries =
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> compare_date a b) entries
  in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as tl) ->
        if compare_date a b = 0 then
          invalid_arg "Timeline.schedule: duplicate effective date";
        check tl
    | _ -> ()
  in
  check sorted;
  sorted

let default_schedule =
  schedule [ (oct_2022, Regime.acr_2022); (oct_2023, Regime.acr_2023) ]

let regime_in_force ?(schedule = default_schedule) d =
  List.fold_left
    (fun acc (effective, r) ->
      if compare_date effective d <= 0 then Some r else acc)
    None schedule

let verdict_at ?schedule d ~market subject =
  match regime_in_force ?schedule d with
  | None -> Regime.Unregulated
  | Some r -> Regime.verdict ~market r subject

type ruling = Unregulated | Nac_notification | License

let ruling_to_string = function
  | Unregulated -> "unregulated"
  | Nac_notification -> "NAC notification required"
  | License -> "license required"

let ruling_of_verdict = function
  | Regime.Unregulated -> Unregulated
  | Regime.Nac -> Nac_notification
  | Regime.License -> License

let classify_regime regime ~market spec =
  ruling_of_verdict
    (Regime.verdict ~market (to_value regime) (Regime.of_spec spec))

let classify_at d ~market spec =
  ruling_of_verdict (verdict_at d ~market (Regime.of_spec spec))

let history ~market spec =
  List.map
    (fun regime -> (regime, classify_regime regime ~market spec))
    [ Pre_acr; Acr_oct_2022; Acr_oct_2023 ]
