type date = { year : int; month : int }

let date year month =
  if month < 1 || month > 12 then invalid_arg "Timeline.date: month";
  { year; month }

let compare_date a b = compare (a.year, a.month) (b.year, b.month)

type regime = Pre_acr | Acr_oct_2022 | Acr_oct_2023

let oct_2022 = date 2022 10
let oct_2023 = date 2023 10

let regime_at d =
  if compare_date d oct_2022 < 0 then Pre_acr
  else if compare_date d oct_2023 < 0 then Acr_oct_2022
  else Acr_oct_2023

let regime_to_string = function
  | Pre_acr -> "pre-ACR"
  | Acr_oct_2022 -> "October 2022 ACR"
  | Acr_oct_2023 -> "October 2023 ACR"

type ruling = Unregulated | Nac_notification | License

let ruling_to_string = function
  | Unregulated -> "unregulated"
  | Nac_notification -> "NAC notification required"
  | License -> "license required"

let classify_regime regime ~market spec =
  match regime with
  | Pre_acr -> Unregulated
  | Acr_oct_2022 -> begin
      match Acr_2022.classify spec with
      | Acr_2022.Not_applicable -> Unregulated
      | Acr_2022.License_required -> License
    end
  | Acr_oct_2023 -> begin
      match Acr_2023.classify market spec with
      | Acr_2023.Not_applicable -> Unregulated
      | Acr_2023.Nac_eligible -> Nac_notification
      | Acr_2023.License_required -> License
    end

let classify_at d ~market spec = classify_regime (regime_at d) ~market spec

let history ~market spec =
  List.map
    (fun regime -> (regime, classify_regime regime ~market spec))
    [ Pre_acr; Acr_oct_2022; Acr_oct_2023 ]
