(** Historical compute export-control metrics (paper Sec. 6.1).

    - {b CTP} (Composite Theoretical Performance, 1991), in MTOPS: per
      computing element, the theoretical rate R (in millions of ops/s)
      scaled by a word-length factor [1/3 + WL/96], summed over elements.
      Export thresholds were stated in MTOPS and repeatedly raised through
      the 1990s-2000s.
    - {b APP} (Adjusted Peak Performance, 2006), in Weighted TeraFLOPS
      (WT): 64-bit FLOP rate weighted 0.9 for vector/SIMD processors and
      0.3 otherwise.
    - APP later gave way to raw peak FLOP/s and, with the 2022 rules, to
      TPP = TOPS x bitwidth, re-introducing word-length scaling.

    These let the benches show how six generations of metric would have
    classified today's devices. *)

val ctp_element_mtops : rate_mops:float -> word_length_bits:int -> float
(** One computing element's CTP contribution. Raises [Invalid_argument]
    on non-positive inputs. *)

val ctp_mtops : (float * int) list -> float
(** Aggregate CTP over (rate in MOPS, word length) elements. *)

val ctp_of_flops : flops:float -> word_length_bits:int -> float
(** Convenience: a single element running at [flops] ops/s. *)

type processor_kind = Vector | Non_vector

val app_weight : processor_kind -> float
(** 0.9 / 0.3. *)

val app_wt : fp64_flops:float -> kind:processor_kind -> float
(** Adjusted Peak Performance in Weighted TeraFLOPS. *)

(** Dated control thresholds, for the "how fast metrics aged" comparison:
    each is (year, value, unit description). *)

val ctp_threshold_1998_mtops : float
(** 2,000 MTOPS - the late-90s high-performance-computer line. *)

val ctp_threshold_2001_mtops : float
(** 190,000 MTOPS, the 2001-era Tier-3 limit. *)

val app_threshold_2006_wt : float
(** 0.75 WT at introduction. *)

val app_threshold_2011_wt : float
(** 3.0 WT after the 2011 raise. *)

val tpp_threshold_2022 : float
(** 4800, for the same comparison table. *)
