module Json = Acs_util.Json
module Units = Acs_util.Units
module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Systolic = Acs_hardware.Systolic
module Package = Acs_hardware.Package

(* Dates *)

type date = { year : int; month : int }

let date year month =
  if month < 1 || month > 12 then invalid_arg "Regime.date: month";
  { year; month }

let compare_date a b = compare (a.year, a.month) (b.year, b.month)
let pp_date ppf d = Format.fprintf ppf "%04d-%02d" d.year d.month

(* Markets and verdicts *)

type market = Data_center | Non_data_center
type verdict = Unregulated | Nac | License

let verdict_rank = function Unregulated -> 0 | Nac -> 1 | License -> 2
let compare_verdict a b = compare (verdict_rank a) (verdict_rank b)

let verdict_to_string = function
  | Unregulated -> "Unregulated"
  | Nac -> "NAC"
  | License -> "License Required"

let market_to_string = function
  | Data_center -> "data center"
  | Non_data_center -> "non-data center"

(* Quantities and subjects *)

type quantity =
  | Tpp
  | Performance_density
  | Device_bw_gb_s
  | Die_area_mm2
  | Bw_density_gb_s_mm2
  | Memory_bw_tb_s
  | Memory_gb
  | Systolic_dim
  | L1_kb
  | L2_mb

let quantity_to_string = function
  | Tpp -> "tpp"
  | Performance_density -> "pd"
  | Device_bw_gb_s -> "device_bw_gb_s"
  | Die_area_mm2 -> "die_area_mm2"
  | Bw_density_gb_s_mm2 -> "bw_density_gb_s_mm2"
  | Memory_bw_tb_s -> "memory_bw_tb_s"
  | Memory_gb -> "memory_gb"
  | Systolic_dim -> "systolic_dim"
  | L1_kb -> "l1_kb"
  | L2_mb -> "l2_mb"

let quantities =
  [
    Tpp; Performance_density; Device_bw_gb_s; Die_area_mm2;
    Bw_density_gb_s_mm2; Memory_bw_tb_s; Memory_gb; Systolic_dim; L1_kb;
    L2_mb;
  ]

let quantity_of_token tok =
  match
    List.find_opt (fun q -> quantity_to_string q = tok) quantities
  with
  | Some q -> q
  | None -> raise (Json.Error ("Regime: unknown quantity " ^ tok))

type subject = {
  spec : Spec.t;
  memory_bw_tb_s : float option;
  memory_gb : float option;
  systolic_dim : int option;
  l1_kb : float option;
  l2_mb : float option;
}

let of_spec spec =
  {
    spec;
    memory_bw_tb_s = None;
    memory_gb = None;
    systolic_dim = None;
    l1_kb = None;
    l2_mb = None;
  }

let subject ?memory_bw_tb_s ?memory_gb ?systolic_dim ?l1_kb ?l2_mb spec =
  { spec; memory_bw_tb_s; memory_gb; systolic_dim; l1_kb; l2_mb }

(* Architectural quantities of a device template, matching the units
   [Proposals.violations] checks them in. *)
let with_arch ?memory_gb spec (dev : Device.t) =
  {
    spec;
    memory_bw_tb_s = Some (Device.memory_bandwidth dev /. Units.tera);
    memory_gb =
      Some
        (match memory_gb with
        | Some g -> g
        | None -> dev.Device.memory.Memory.capacity_bytes /. Units.giga);
    systolic_dim =
      Some (max dev.Device.systolic.Systolic.dim_x dev.Device.systolic.Systolic.dim_y);
    l1_kb = Some (dev.Device.l1_bytes /. Units.kilo);
    l2_mb = Some (dev.Device.l2_bytes /. Units.mega);
  }

let of_device ?area_mm2 ?memory_gb dev =
  with_arch ?memory_gb (Spec.of_device ?area_mm2 dev) dev

let of_package ?device_bw_gb_s pkg =
  let die = pkg.Package.compute_die in
  let n = float_of_int pkg.Package.compute_dies in
  let per_die = with_arch (Spec.of_package ?device_bw_gb_s pkg) die in
  {
    per_die with
    memory_bw_tb_s = Option.map (fun bw -> bw *. n) per_die.memory_bw_tb_s;
    memory_gb = Option.map (fun g -> g *. n) per_die.memory_gb;
  }

let measure s = function
  | Tpp -> Some s.spec.Spec.tpp
  | Performance_density -> Some (Spec.performance_density s.spec)
  | Device_bw_gb_s -> Some s.spec.Spec.device_bw_gb_s
  | Die_area_mm2 -> Some s.spec.Spec.die_area_mm2
  | Bw_density_gb_s_mm2 ->
      (* The HBM control meters the memory system; subjects that don't
         report memory bandwidth (bare specs, the [Hbm_2024] wrapper's
         density-over-1mm2 encoding) fall back to the spec's device
         bandwidth as the carrier. *)
      let bw =
        match s.memory_bw_tb_s with
        | Some tb -> tb *. 1000.
        | None -> s.spec.Spec.device_bw_gb_s
      in
      Some (bw /. s.spec.Spec.die_area_mm2)
  | Memory_bw_tb_s -> s.memory_bw_tb_s
  | Memory_gb -> s.memory_gb
  | Systolic_dim -> Option.map float_of_int s.systolic_dim
  | L1_kb -> s.l1_kb
  | L2_mb -> s.l2_mb

(* Predicates *)

type pred =
  | At_least of quantity * float
  | Above of quantity * float
  | All_of of pred list
  | Any_of of pred list
  | Not of pred

let check_bound ctx v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (ctx ^ ": threshold must be finite and non-negative")

let at_least q v =
  check_bound "Regime.at_least" v;
  At_least (q, v)

let above q v =
  check_bound "Regime.above" v;
  Above (q, v)

let at_most q v = Not (above q v)
let below q v = Not (at_least q v)
let all_of ps = All_of ps
let any_of ps = Any_of ps
let not_ p = Not p
let always = All_of []
let never = Any_of []

let rec holds p subj =
  match p with
  | At_least (q, v) -> (
      match measure subj q with Some x -> x >= v | None -> false)
  | Above (q, v) -> (
      match measure subj q with Some x -> x > v | None -> false)
  | All_of ps -> List.for_all (fun p -> holds p subj) ps
  | Any_of ps -> List.exists (fun p -> holds p subj) ps
  | Not p -> not (holds p subj)

let rec pp_pred ppf = function
  | At_least (q, v) ->
      Format.fprintf ppf "%s >= %g" (quantity_to_string q) v
  | Above (q, v) -> Format.fprintf ppf "%s > %g" (quantity_to_string q) v
  | All_of [] -> Format.pp_print_string ppf "true"
  | Any_of [] -> Format.pp_print_string ppf "false"
  | All_of ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " and ")
           pp_pred)
        ps
  | Any_of ps ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " or ")
           pp_pred)
        ps
  | Not p -> Format.fprintf ppf "not %a" pp_pred p

(* Rules and regimes *)

type rule = { market : market option; verdict : verdict; requires : pred }

let rule ?market verdict requires = { market; verdict; requires }

type scope = Per_die | Per_package

type t = {
  name : string;
  description : string;
  effective : date option;
  scope : scope;
  rules : rule list;
}

let make ?(description = "") ?effective ?(scope = Per_package) name rules =
  if name = "" then invalid_arg "Regime.make: empty name";
  { name; description; effective; scope; rules }

let with_scope scope t = { t with scope }

let renamed ?description name t =
  if name = "" then invalid_arg "Regime.renamed: empty name";
  {
    t with
    name;
    description = Option.value description ~default:t.description;
  }

let verdict ?(market = Data_center) t subj =
  List.fold_left
    (fun acc r ->
      let applies =
        match r.market with None -> true | Some m -> m = market
      in
      if applies && compare_verdict r.verdict acc > 0 && holds r.requires subj
      then r.verdict
      else acc)
    Unregulated t.rules

let regulated ?market t subj = verdict ?market t subj <> Unregulated

let classify_package ?market ?device_bw_gb_s t pkg =
  match t.scope with
  | Per_package -> verdict ?market t (of_package ?device_bw_gb_s pkg)
  | Per_die ->
      (* Compute dies are identical, so one die's verdict is the maximum
         over the package. The die is judged on its own TPP and area. *)
      let die = pkg.Package.compute_die in
      let bw =
        match device_bw_gb_s with
        | Some bw -> bw
        | None -> Device.device_bandwidth_gb_s die
      in
      let spec =
        Spec.make
          ~non_planar:
            (Acs_hardware.Process.non_planar die.Device.process)
          ~tpp:(Device.tpp die) ~device_bw_gb_s:bw
          ~die_area_mm2:pkg.Package.compute_die_area_mm2 ()
      in
      verdict ?market t (with_arch spec die)

let active_at d t =
  match t.effective with
  | None -> true
  | Some e -> compare_date e d <= 0

let threshold ?verdict t q =
  let rec atoms pos p acc =
    match p with
    | At_least (q', v) | Above (q', v) ->
        if pos && q' = q then v :: acc else acc
    | All_of ps | Any_of ps ->
        List.fold_left (fun acc p -> atoms pos p acc) acc ps
    | Not p -> atoms (not pos) p acc
  in
  let bounds =
    List.fold_left
      (fun acc r ->
        match verdict with
        | Some v when r.verdict <> v -> acc
        | _ -> atoms true r.requires acc)
      [] t.rules
  in
  match bounds with
  | [] -> None
  | l -> Some (List.fold_left min infinity l)

let tighten ~factor t =
  if not (Float.is_finite factor) || factor <= 0. || factor > 1. then
    invalid_arg "Regime.tighten: factor must be in (0, 1]";
  let scale pos v = if pos then v *. factor else v /. factor in
  let rec go pos = function
    | At_least (q, v) -> At_least (q, scale pos v)
    | Above (q, v) -> Above (q, scale pos v)
    | All_of ps -> All_of (List.map (go pos) ps)
    | Any_of ps -> Any_of (List.map (go pos) ps)
    | Not p -> Not (go (not pos) p)
  in
  { t with rules = List.map (fun r -> { r with requires = go true r.requires }) t.rules }

let of_limits ?(name = "limits") ?(description = "") ?(verdict = License)
    (l : Proposals.limits) =
  let atom q = Option.map (above q) in
  let atoms =
    List.filter_map Fun.id
      [
        atom Tpp l.Proposals.max_tpp;
        Option.map
          (fun d -> above Systolic_dim (float_of_int d))
          l.Proposals.max_systolic_dim;
        atom L1_kb l.Proposals.max_l1_kb;
        atom L2_mb l.Proposals.max_l2_mb;
        atom Memory_bw_tb_s l.Proposals.max_memory_bw_tb_s;
        atom Memory_gb l.Proposals.max_memory_gb;
        atom Device_bw_gb_s l.Proposals.max_device_bw_gb_s;
      ]
  in
  make ~description name [ rule verdict (any_of atoms) ]

(* The registry *)

let pre_acr =
  make ~description:"Before October 2022: no device-level AI compute rule"
    "pre-acr" []

let acr_2022 =
  make
    ~description:
      "October 2022 ACR: license when TPP >= 4800 and device bandwidth >= \
       600 GB/s"
    ~effective:(date 2022 10) "acr-2022"
    [
      rule License
        (all_of [ at_least Tpp 4800.; at_least Device_bw_gb_s 600. ]);
    ]

let acr_2023 =
  make
    ~description:
      "October 2023 ACR: TPP x performance-density tiers with the \
       data-center / non-data-center split"
    ~effective:(date 2023 10) "acr-2023"
    [
      rule ~market:Data_center License
        (any_of
           [
             at_least Tpp 4800.;
             all_of
               [ at_least Tpp 1600.; at_least Performance_density 5.92 ];
           ]);
      rule ~market:Data_center Nac
        (any_of
           [
             all_of
               [
                 at_least Tpp 2400.;
                 at_least Performance_density 1.6;
                 below Performance_density 5.92;
               ];
             all_of
               [
                 at_least Tpp 1600.;
                 at_least Performance_density 3.2;
                 below Performance_density 5.92;
               ];
           ]);
      rule ~market:Non_data_center Nac (at_least Tpp 4800.);
    ]

let hbm_2024 =
  make
    ~description:
      "December 2024 HBM control: memory bandwidth density over package \
       area; NAC is the License Exception HBM tier"
    ~effective:(date 2024 12) "hbm-2024"
    [
      rule License (at_least Bw_density_gb_s_mm2 3.3);
      rule Nac (above Bw_density_gb_s_mm2 2.0);
    ]

let diffusion_2025 =
  make
    ~description:
      "January 2025 diffusion framework order tiers in aggregate TPP: LPP \
       exception under 26.9M, country allocation to 790M, license beyond"
    ~effective:(date 2025 1) "diffusion-2025"
    [ rule License (above Tpp 790e6); rule Nac (above Tpp 26.9e6) ]

let proposal_tpp_4800 =
  of_limits ~name:"proposal-tpp-4800"
    ~description:"Status-quo proposal: a bare TPP ceiling at 4800"
    (Proposals.tpp_only 4800.)

let proposal_ai_targeted =
  of_limits ~name:"proposal-ai-targeted"
    ~description:
      "Sec. 5.4 AI-targeted limits: TPP 4800, 32 KB L1, 0.8 TB/s memory \
       bandwidth"
    Proposals.ai_targeted

let proposal_gaming_carveout =
  of_limits ~name:"proposal-gaming-carveout"
    ~description:
      "Gaming carveout: systolic arrays at most 4x4 and GDDR-class (1.2 \
       TB/s) memory"
    Proposals.gaming_carveout

let registry =
  [
    pre_acr; acr_2022; acr_2023; hbm_2024; diffusion_2025; proposal_tpp_4800;
    proposal_ai_targeted; proposal_gaming_carveout;
  ]

let names () = List.map (fun r -> r.name) registry

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  let aliases =
    [ ("oct2022", "acr-2022"); ("oct2023", "acr-2023"); ("pre_acr", "pre-acr") ]
  in
  let n = norm name in
  let n = match List.assoc_opt n aliases with Some c -> c | None -> n in
  List.find_opt (fun r -> norm r.name = n) registry

let equal (a : t) b = a = b

(* JSON codec *)

let rec pred_to_json = function
  | At_least (q, v) ->
      Json.obj
        [ ("q", Json.string (quantity_to_string q)); ("ge", Json.float v) ]
  | Above (q, v) ->
      Json.obj
        [ ("q", Json.string (quantity_to_string q)); ("gt", Json.float v) ]
  | All_of ps -> Json.obj [ ("all", Json.list pred_to_json ps) ]
  | Any_of ps -> Json.obj [ ("any", Json.list pred_to_json ps) ]
  | Not p -> Json.obj [ ("not", pred_to_json p) ]

let decode_bound j =
  let v = Json.to_float j in
  if not (Float.is_finite v) || v < 0. then
    raise (Json.Error "Regime: threshold must be finite and non-negative");
  v

let rec pred_of_json j =
  if Json.mem "all" j then
    All_of (List.map pred_of_json (Json.to_list (Json.member "all" j)))
  else if Json.mem "any" j then
    Any_of (List.map pred_of_json (Json.to_list (Json.member "any" j)))
  else if Json.mem "not" j then Not (pred_of_json (Json.member "not" j))
  else if Json.mem "q" j then begin
    let q = quantity_of_token (Json.to_str (Json.member "q" j)) in
    match (Json.mem "ge" j, Json.mem "gt" j) with
    | true, false -> At_least (q, decode_bound (Json.member "ge" j))
    | false, true -> Above (q, decode_bound (Json.member "gt" j))
    | _ ->
        raise
          (Json.Error "Regime: predicate needs exactly one of \"ge\"/\"gt\"")
  end
  else raise (Json.Error "Regime: unrecognized predicate")

let verdict_token = function
  | Unregulated -> "unregulated"
  | Nac -> "nac"
  | License -> "license"

let verdict_of_token = function
  | "unregulated" -> Unregulated
  | "nac" -> Nac
  | "license" -> License
  | s -> raise (Json.Error ("Regime: unknown verdict " ^ s))

let market_token = function
  | Data_center -> "data-center"
  | Non_data_center -> "non-data-center"

let market_of_token = function
  | "data-center" -> Data_center
  | "non-data-center" -> Non_data_center
  | s -> raise (Json.Error ("Regime: unknown market " ^ s))

let scope_token = function
  | Per_die -> "per-die"
  | Per_package -> "per-package"

let scope_of_token = function
  | "per-die" -> Per_die
  | "per-package" -> Per_package
  | s -> raise (Json.Error ("Regime: unknown scope " ^ s))

let rule_to_json r =
  Json.obj
    [
      ("market", Json.option (fun m -> Json.string (market_token m)) r.market);
      ("verdict", Json.string (verdict_token r.verdict));
      ("when", pred_to_json r.requires);
    ]

let rule_of_json j =
  {
    market =
      Json.to_option (fun m -> market_of_token (Json.to_str m))
        (Json.member "market" j);
    verdict = verdict_of_token (Json.to_str (Json.member "verdict" j));
    requires = pred_of_json (Json.member "when" j);
  }

let date_to_json d = Json.string (Format.asprintf "%a" pp_date d)

let date_of_json j =
  let s = Json.to_str j in
  match Scanf.sscanf_opt s "%d-%d%!" (fun y m -> (y, m)) with
  | None -> raise (Json.Error ("Regime: bad effective date " ^ s))
  | Some (y, m) -> (
      try date y m
      with Invalid_argument _ ->
        raise (Json.Error ("Regime: bad effective date " ^ s)))

let to_json t =
  Json.obj
    [
      ("name", Json.string t.name);
      ( "description",
        if t.description = "" then Json.Null else Json.string t.description );
      ("effective", Json.option date_to_json t.effective);
      ("scope", Json.string (scope_token t.scope));
      ("rules", Json.list rule_to_json t.rules);
    ]

let of_json j =
  let name = Json.to_str (Json.member "name" j) in
  if name = "" then raise (Json.Error "Regime: empty name");
  {
    name;
    description =
      Option.value ~default:""
        (Json.to_option Json.to_str (Json.member "description" j));
    effective = Json.to_option date_of_json (Json.member "effective" j);
    scope =
      (match Json.to_option Json.to_str (Json.member "scope" j) with
      | None -> Per_package
      | Some s -> scope_of_token s);
    rules = List.map rule_of_json (Json.to_list (Json.member "rules" j));
  }

let pp_rule ppf r =
  Format.fprintf ppf "%s%s when %a" (verdict_to_string r.verdict)
    (match r.market with
    | None -> ""
    | Some m -> " [" ^ market_to_string m ^ "]")
    pp_pred r.requires

let pp ppf t =
  Format.fprintf ppf "@[<v2>%s (%s%s):%a@]" t.name (scope_token t.scope)
    (match t.effective with
    | None -> ""
    | Some d -> Format.asprintf ", from %a" pp_date d)
    (fun ppf rules ->
      if rules = [] then Format.pp_print_string ppf " no rules"
      else
        List.iter (fun r -> Format.fprintf ppf "@,%a" pp_rule r) rules)
    t.rules
