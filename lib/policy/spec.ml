type t = {
  tpp : float;
  device_bw_gb_s : float;
  die_area_mm2 : float;
  non_planar : bool;
}

let make ?(non_planar = true) ~tpp ~device_bw_gb_s ~die_area_mm2 () =
  if tpp < 0. then invalid_arg "Spec.make: negative TPP";
  if device_bw_gb_s < 0. then invalid_arg "Spec.make: negative bandwidth";
  if die_area_mm2 <= 0. then invalid_arg "Spec.make: area must be positive";
  { tpp; device_bw_gb_s; die_area_mm2; non_planar }

let performance_density t =
  if t.non_planar then t.tpp /. t.die_area_mm2 else 0.

let of_device ?area_mm2 dev =
  let die_area_mm2 =
    match area_mm2 with
    | Some a -> a
    | None -> Acs_area.Area_model.total_mm2 dev
  in
  make
    ~non_planar:(Acs_hardware.Process.non_planar dev.Acs_hardware.Device.process)
    ~tpp:(Acs_hardware.Device.tpp dev)
    ~device_bw_gb_s:(Acs_hardware.Device.device_bandwidth_gb_s dev)
    ~die_area_mm2 ()

let of_package ?device_bw_gb_s pkg =
  let module P = Acs_hardware.Package in
  let device_bw_gb_s =
    match device_bw_gb_s with
    | Some bw -> bw
    | None ->
        Acs_hardware.Device.device_bandwidth_gb_s pkg.P.compute_die
  in
  make
    ~non_planar:
      (Acs_hardware.Process.non_planar
         pkg.P.compute_die.Acs_hardware.Device.process)
    ~tpp:(P.total_tpp pkg) ~device_bw_gb_s
    ~die_area_mm2:(P.total_area_mm2 pkg) ()

let pp ppf t =
  Format.fprintf ppf "TPP %.0f, %.0f GB/s dev BW, %.0f mm^2 (PD %.2f)" t.tpp
    t.device_bw_gb_s t.die_area_mm2 (performance_density t)
