(** The regulatory timeline: which Advanced Computing Rule regime applies
    at a given date, and a unified classification across regimes.

    The general form is a {!schedule}: an ordered list of dated
    {!Regime.t} values, each in force from its date until the next
    entry. The historical three-era view (paper Secs. 2.1-2.2) remains
    as the [regime] enum and {!default_schedule}:
    - before October 2022: no device-level AI compute rule;
    - October 2022 - October 2023: the TPP x device-bandwidth rule;
    - from October 2023: the TPP x performance-density rule with the
      data-center / non-data-center split (still in effect through the
      December 2024 and January 2025 updates, which did not change
      device-level thresholds). *)

type date = Regime.date = { year : int; month : int }

val date : int -> int -> date
(** [date year month]; raises [Invalid_argument] on a month outside
    1-12. *)

val compare_date : date -> date -> int

type regime = Pre_acr | Acr_oct_2022 | Acr_oct_2023

val regime_at : date -> regime
val regime_to_string : regime -> string

val to_value : regime -> Regime.t
(** The registry value behind each historical era ([Pre_acr] maps to
    {!Regime.pre_acr}, which has no rules). *)

(** {2 Schedules} *)

type schedule = (date * Regime.t) list
(** Ascending by date; each regime is in force from its date until the
    next entry's. Before the first entry nothing applies. Build with
    {!schedule} to get the ordering validated. *)

val schedule : (date * Regime.t) list -> schedule
(** Sorts by date; raises [Invalid_argument] on duplicate effective
    dates. *)

val default_schedule : schedule
(** The published history: {!Regime.acr_2022} from October 2022,
    {!Regime.acr_2023} from October 2023. *)

val regime_in_force : ?schedule:schedule -> date -> Regime.t option
(** [None] before the first entry. [schedule] defaults to
    {!default_schedule}. *)

val verdict_at :
  ?schedule:schedule ->
  date ->
  market:Regime.market ->
  Regime.subject ->
  Regime.verdict
(** The verdict of whichever regime the schedule has in force at the
    date ([Unregulated] before the first entry). *)

(** {2 The historical three-era view} *)

type ruling = Unregulated | Nac_notification | License

val ruling_to_string : ruling -> string

val ruling_of_verdict : Regime.verdict -> ruling
(** The 1:1 mapping between DSL verdicts and timeline rulings. *)

val classify_at :
  date -> market:Acr_2023.market -> Spec.t -> ruling
(** The device's status under the regime in force at [date] (evaluated
    through {!default_schedule}). The market segment is ignored by the
    earlier regimes. *)

val history :
  market:Acr_2023.market -> Spec.t -> (regime * ruling) list
(** The device's status under each successive regime - how the
    cat-and-mouse game looked from one product's perspective. *)
