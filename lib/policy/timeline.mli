(** The regulatory timeline: which Advanced Computing Rule regime applies
    at a given date, and a unified classification across regimes.

    Regimes (paper Secs. 2.1-2.2):
    - before October 2022: no device-level AI compute rule;
    - October 2022 - October 2023: the TPP x device-bandwidth rule;
    - from October 2023: the TPP x performance-density rule with the
      data-center / non-data-center split (still in effect through the
      December 2024 and January 2025 updates, which did not change
      device-level thresholds). *)

type date = { year : int; month : int }

val date : int -> int -> date
(** [date year month]; raises [Invalid_argument] on a month outside
    1-12. *)

val compare_date : date -> date -> int

type regime = Pre_acr | Acr_oct_2022 | Acr_oct_2023

val regime_at : date -> regime
val regime_to_string : regime -> string

type ruling = Unregulated | Nac_notification | License

val ruling_to_string : ruling -> string

val classify_at :
  date -> market:Acr_2023.market -> Spec.t -> ruling
(** The device's status under the regime in force at [date]. The market
    segment is ignored by the earlier regimes. *)

val history :
  market:Acr_2023.market -> Spec.t -> (regime * ruling) list
(** The device's status under each successive regime - how the
    cat-and-mouse game looked from one product's perspective. *)
