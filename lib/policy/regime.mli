(** Sanction regimes as first-class values.

    Every rule this library models — the October 2022 and October 2023
    Advanced Computing Rules, the December 2024 HBM control, the January
    2025 diffusion framework's order tiers, and the paper's Sec. 5
    architecture-first proposals — is a composition of threshold
    predicates over a handful of device quantities, mapped to a tiered
    verdict. This module makes that composition explicit: a regime is a
    {e value} built from atomic predicates ([at_least]/[above]) over a
    unified subject, combined with [all_of]/[any_of]/[not_], carrying a
    market filter, a tiered verdict, an effective date, and a per-die vs
    per-package evaluation scope (the Whack-a-Chip chiplet-aggregation
    lever).

    Regimes are pure data — no closures — so structural equality,
    hashing, and the JSON codec ({!to_json}/{!of_json}, exact
    round-trip) all apply. The legacy modules ({!Acr_2022}, {!Acr_2023},
    {!Hbm_2024}) are thin wrappers over the registry values below;
    bit-identity over the device DB is enforced by the test suite. *)

(** {2 Dates} *)

type date = { year : int; month : int }

val date : int -> int -> date
(** [date year month]; raises [Invalid_argument] on a month outside
    1-12. *)

val compare_date : date -> date -> int
val pp_date : Format.formatter -> date -> unit

(** {2 Markets and verdicts} *)

type market = Data_center | Non_data_center

type verdict = Unregulated | Nac | License
(** Ordered by severity. [Nac] covers both the 2023 rule's "NAC
    eligible" tier and the HBM rule's license-exception tier: restricted,
    but short of a hard license requirement. *)

val compare_verdict : verdict -> verdict -> int
val verdict_to_string : verdict -> string
val market_to_string : market -> string

(** {2 Quantities and subjects} *)

(** The device quantities regimes predicate on. The first five derive
    from a {!Spec.t}; the rest are architectural quantities only some
    subjects carry (a predicate over a quantity the subject does not
    report is false — absence of evidence never regulates). *)
type quantity =
  | Tpp
  | Performance_density  (** TPP / applicable die area; 0 when planar *)
  | Device_bw_gb_s
  | Die_area_mm2
  | Bw_density_gb_s_mm2
      (** the Dec 2024 HBM metric: memory bandwidth over die area when
          the subject reports memory bandwidth, falling back to the
          spec's device bandwidth over die area otherwise *)
  | Memory_bw_tb_s
  | Memory_gb
  | Systolic_dim  (** largest systolic-array dimension *)
  | L1_kb
  | L2_mb

val quantity_to_string : quantity -> string

type subject = {
  spec : Spec.t;
  memory_bw_tb_s : float option;
  memory_gb : float option;
  systolic_dim : int option;
  l1_kb : float option;
  l2_mb : float option;
}

val of_spec : Spec.t -> subject
(** Spec-only subject: the architectural quantities are unreported. *)

val subject :
  ?memory_bw_tb_s:float ->
  ?memory_gb:float ->
  ?systolic_dim:int ->
  ?l1_kb:float ->
  ?l2_mb:float ->
  Spec.t ->
  subject

val of_device : ?area_mm2:float -> ?memory_gb:float -> Acs_hardware.Device.t -> subject
(** Full subject of a simulated design: spec via {!Spec.of_device} (area
    defaults to the {!Acs_area.Area_model} estimate), architectural
    quantities from the template. [memory_gb] overrides the template's
    HBM capacity, mirroring {!Proposals.violations}. *)

val of_package : ?device_bw_gb_s:float -> Acs_hardware.Package.t -> subject
(** Package-level subject: spec via {!Spec.of_package} (TPP and area
    aggregated over dies); memory capacity and bandwidth summed over
    compute dies; per-core quantities (systolic, L1, L2) from the
    compute die. *)

val measure : subject -> quantity -> float option

(** {2 Predicates} *)

type pred =
  | At_least of quantity * float
  | Above of quantity * float
  | All_of of pred list  (** [All_of []] is true *)
  | Any_of of pred list  (** [Any_of []] is false *)
  | Not of pred

val at_least : quantity -> float -> pred
val above : quantity -> float -> pred

val at_most : quantity -> float -> pred
(** [Not (Above _)]. On a subject missing the quantity this holds
    vacuously: an upper bound cannot be exceeded by nothing. *)

val below : quantity -> float -> pred
(** [Not (At_least _)]. *)

val all_of : pred list -> pred
val any_of : pred list -> pred
val not_ : pred -> pred
val always : pred
val never : pred

(** Thresholds must be finite and non-negative (every regulated quantity
    is physically non-negative); the smart constructors and the JSON
    decoder raise otherwise. *)

val holds : pred -> subject -> bool
val pp_pred : Format.formatter -> pred -> unit

(** {2 Rules and regimes} *)

type rule = {
  market : market option;  (** [None]: applies to every market *)
  verdict : verdict;
  requires : pred;
}

val rule : ?market:market -> verdict -> pred -> rule

type scope =
  | Per_die  (** each compute die judged alone — the evasion reading *)
  | Per_package  (** TPP and area aggregated over the package, per the rules *)

type t = {
  name : string;
  description : string;
  effective : date option;
  scope : scope;
  rules : rule list;
}

val make :
  ?description:string -> ?effective:date -> ?scope:scope -> string -> rule list -> t
(** [make name rules]. [scope] defaults to [Per_package] (what the
    published rules do). Raises [Invalid_argument] on an empty name. *)

val with_scope : scope -> t -> t
val renamed : ?description:string -> string -> t -> t

val verdict : ?market:market -> t -> subject -> verdict
(** Most severe verdict among rules whose market filter matches and
    whose predicate holds; [Unregulated] when none fire. [market]
    defaults to [Data_center] (the conservative reading the DSE
    applies to simulated designs). *)

val regulated : ?market:market -> t -> subject -> bool
(** Any verdict above [Unregulated] — the paper treats NAC devices as
    restricted, since NAC licenses may be denied. *)

val classify_package :
  ?market:market ->
  ?device_bw_gb_s:float ->
  t ->
  Acs_hardware.Package.t ->
  verdict
(** Honors the regime's scope: [Per_package] evaluates the aggregated
    {!of_package} subject; [Per_die] judges a single compute die on its
    own TPP and area (dies are identical, so one die's verdict is the
    package-wide maximum). [device_bw_gb_s] overrides the interconnect
    figure in both scopes. *)

val active_at : date -> t -> bool
(** Whether the regime is in force at [date] ([effective = None] means
    always). *)

val threshold : ?verdict:verdict -> t -> quantity -> float option
(** The lowest bound on [quantity] among positive-position atoms of the
    rules (optionally only rules carrying [verdict]) — "where does this
    regime start caring about this quantity". [None] when no rule
    predicates on it. *)

val tighten : factor:float -> t -> t
(** Scale every threshold toward zero by [factor] in (0, 1] (bounds
    under an odd number of negations scale by [1/factor] instead, so
    every atom's satisfied set weakly grows). Tightening is monotone:
    no subject's verdict ever decreases — the property the qcheck suite
    pins down. Raises [Invalid_argument] on a factor outside (0, 1]. *)

val of_limits :
  ?name:string -> ?description:string -> ?verdict:verdict -> Proposals.limits -> t
(** A {!Proposals.limits} value as a regime: one rule (default verdict
    [License]) firing when any present bound is exceeded, so
    [regulated (of_limits l) (of_device dev)] iff [not (Proposals.compliant
    l dev)]. *)

(** {2 The registry: the shipped regimes} *)

val pre_acr : t  (** no rules: everything unregulated *)

val acr_2022 : t  (** October 2022: TPP >= 4800 and device BW >= 600 GB/s *)

val acr_2023 : t  (** October 2023: TPP x PD tiers with the market split *)

val hbm_2024 : t
(** December 2024 HBM control over bandwidth density; [Nac] is the
    License Exception HBM tier. *)

val diffusion_2025 : t
(** January 2025 diffusion framework order tiers in aggregate TPP
    (subject TPP = device TPP x units): LPP exception below 26.9e6,
    country allocation up to 790e6, license beyond. The stateful
    multi-order ledger remains in {!Diffusion_2025}. *)

val proposal_tpp_4800 : t
val proposal_ai_targeted : t
val proposal_gaming_carveout : t

val registry : t list
val names : unit -> string list

val find : string -> t option
(** Case-insensitive lookup by registry name; also accepts the legacy
    scenario tokens ["oct2022"], ["oct2023"] and ["pre_acr"]. *)

val equal : t -> t -> bool

(** {2 JSON codec} *)

val pred_to_json : pred -> Acs_util.Json.t
val pred_of_json : Acs_util.Json.t -> pred

val to_json : t -> Acs_util.Json.t
val of_json : Acs_util.Json.t -> t
(** Exact round-trip: [of_json (to_json r) = r]. [of_json] raises
    {!Acs_util.Json.Error} on malformed input. *)

val pp : Format.formatter -> t -> unit
