(** The December 2024 export control on commodity high-bandwidth-memory
    packages: packages whose "memory bandwidth density" (package bandwidth
    divided by package area) exceeds 2 GB/s/mm^2 are controlled; packages
    below 3.3 GB/s/mm^2 may apply for License Exception HBM. The rule does
    not apply to HBM already installed in a computing device. *)

type classification =
  | Not_controlled  (** density <= 2 GB/s/mm^2 *)
  | Controlled_exception_eligible  (** 2 < density < 3.3 *)
  | Controlled  (** density >= 3.3 *)

val density_threshold : float  (** 2.0 GB/s/mm^2 *)

val exception_threshold : float  (** 3.3 GB/s/mm^2 *)

val classify_density : float -> classification

val classify :
  ?installed_in_device:bool ->
  bandwidth_gb_s:float ->
  package_area_mm2:float ->
  unit ->
  classification
(** [installed_in_device] (default false) exempts the package entirely. *)

val classification_to_string : classification -> string
