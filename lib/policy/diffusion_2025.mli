(** The January 2025 "Framework for Artificial Intelligence Diffusion"
    (paper Sec. 2.1): beyond device-level rules, it capped the {e quantity}
    of AI compute exportable to non-sanctioned destinations, measured in
    aggregate TPP, with a license exception (LPP) for small orders.

    This module implements the accounting machinery: a per-destination
    ledger of cumulative exported TPP against a country allocation, and
    order-level classification. Thresholds are the framework's published
    figures (country allocation 790 million TPP through 2027; LPP orders up
    to 26.9 million TPP per year cumulatively per consignee). The rule was
    rescinded in 2025; it is modeled as proposed. *)

type order = {
  consignee : string;
  device_tpp : float;
  units : int;
}

val order_tpp : order -> float

type classification =
  | Within_lpp_exception  (** small order, no license, counts nothing *)
  | Within_allocation  (** licensed against the country allocation *)
  | Exceeds_allocation

type ledger

val create :
  ?country_allocation_tpp:float -> ?lpp_annual_tpp:float -> unit -> ledger
(** Defaults: 790e6 TPP allocation, 26.9e6 TPP/year LPP. *)

val default_country_allocation_tpp : float
val default_lpp_annual_tpp : float

val classify : ledger -> order -> classification
(** Classification if the order were placed now (does not record it). An
    order fits the LPP exception when the consignee's cumulative LPP TPP
    this year, including this order, stays at or under the LPP cap. *)

val record : ledger -> order -> (classification, string) result
(** Classify and, unless it exceeds the allocation, record the order.
    Returns [Error] with a reason when the order must be refused. *)

val remaining_allocation_tpp : ledger -> float
val consumed_allocation_tpp : ledger -> float
val lpp_used_tpp : ledger -> consignee:string -> float
val new_year : ledger -> unit
(** Resets the per-consignee LPP counters (the exception is annual). *)

val classification_to_string : classification -> string
