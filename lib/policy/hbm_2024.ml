type classification =
  | Not_controlled
  | Controlled_exception_eligible
  | Controlled

let density_threshold = 2.0
let exception_threshold = 3.3

let classify_density density =
  if density <= density_threshold then Not_controlled
  else if density < exception_threshold then Controlled_exception_eligible
  else Controlled

let classify ?(installed_in_device = false) ~bandwidth_gb_s ~package_area_mm2
    () =
  if package_area_mm2 <= 0. then
    invalid_arg "Hbm_2024.classify: area must be positive";
  if installed_in_device then Not_controlled
  else classify_density (bandwidth_gb_s /. package_area_mm2)

let classification_to_string = function
  | Not_controlled -> "Not Controlled"
  | Controlled_exception_eligible -> "Controlled (License Exception HBM eligible)"
  | Controlled -> "Controlled"
