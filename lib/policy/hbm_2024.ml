(* Thin wrapper over the [Regime.hbm_2024] registry value; the DSL is
   the implementation. A density [d] is presented to the regime as a
   spec with bandwidth [d] over 1 mm^2 of area, so the regime's
   bandwidth-density quantity equals [d]. *)

type classification =
  | Not_controlled
  | Controlled_exception_eligible
  | Controlled

let density_threshold =
  Option.get
    (Regime.threshold ~verdict:Regime.Nac Regime.hbm_2024
       Regime.Bw_density_gb_s_mm2)

let exception_threshold =
  Option.get
    (Regime.threshold ~verdict:Regime.License Regime.hbm_2024
       Regime.Bw_density_gb_s_mm2)

let classify_density density =
  (* A negative density never exceeds the thresholds; short-circuit it
     rather than building a spec [Spec.make] would reject. *)
  if density < 0. then Not_controlled
  else
    let subject =
      Regime.of_spec
        (Spec.make ~tpp:0. ~device_bw_gb_s:density ~die_area_mm2:1. ())
    in
    match Regime.verdict Regime.hbm_2024 subject with
    | Regime.Unregulated -> Not_controlled
    | Regime.Nac -> Controlled_exception_eligible
    | Regime.License -> Controlled

let classify ?(installed_in_device = false) ~bandwidth_gb_s ~package_area_mm2
    () =
  if package_area_mm2 <= 0. then
    invalid_arg "Hbm_2024.classify: area must be positive";
  if installed_in_device then Not_controlled
  else classify_density (bandwidth_gb_s /. package_area_mm2)

let classification_to_string = function
  | Not_controlled -> "Not Controlled"
  | Controlled_exception_eligible -> "Controlled (License Exception HBM eligible)"
  | Controlled -> "Controlled"
