type classification = Not_applicable | License_required

let tpp_threshold = 4800.
let bandwidth_threshold_gb_s = 600.

let classify (s : Spec.t) =
  if s.Spec.tpp >= tpp_threshold && s.Spec.device_bw_gb_s >= bandwidth_threshold_gb_s
  then License_required
  else Not_applicable

let regulated s = classify s = License_required

let headroom (s : Spec.t) =
  let tpp_room =
    if s.Spec.tpp < tpp_threshold then [ `Tpp (tpp_threshold -. s.Spec.tpp) ]
    else []
  in
  let bw_room =
    if s.Spec.device_bw_gb_s < bandwidth_threshold_gb_s then
      [ `Bandwidth (bandwidth_threshold_gb_s -. s.Spec.device_bw_gb_s) ]
    else []
  in
  tpp_room @ bw_room

let classification_to_string = function
  | Not_applicable -> "Not Applicable"
  | License_required -> "License Required"
