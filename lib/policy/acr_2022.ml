(* Thin wrapper over the [Regime.acr_2022] registry value; the DSL is
   the implementation. Bit-identity with the historical classifier is
   pinned by the regime test suite. *)

type classification = Not_applicable | License_required

let tpp_threshold =
  Option.get (Regime.threshold ~verdict:Regime.License Regime.acr_2022 Regime.Tpp)

let bandwidth_threshold_gb_s =
  Option.get
    (Regime.threshold ~verdict:Regime.License Regime.acr_2022
       Regime.Device_bw_gb_s)

let classify (s : Spec.t) =
  match Regime.verdict Regime.acr_2022 (Regime.of_spec s) with
  | Regime.License -> License_required
  | Regime.Nac | Regime.Unregulated -> Not_applicable

let regulated s = classify s = License_required

let headroom (s : Spec.t) =
  let tpp_room =
    if s.Spec.tpp < tpp_threshold then [ `Tpp (tpp_threshold -. s.Spec.tpp) ]
    else []
  in
  let bw_room =
    if s.Spec.device_bw_gb_s < bandwidth_threshold_gb_s then
      [ `Bandwidth (bandwidth_threshold_gb_s -. s.Spec.device_bw_gb_s) ]
    else []
  in
  tpp_room @ bw_room

let classification_to_string = function
  | Not_applicable -> "Not Applicable"
  | License_required -> "License Required"
