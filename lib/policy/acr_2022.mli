(** The October 2022 Advanced Computing Rule (paper Table 1a): a device
    requires an export license when it achieves an aggregate bidirectional
    I/O transfer rate of 600 GB/s or more {e and} a TPP of 4800 or more. *)

type classification = Not_applicable | License_required

val tpp_threshold : float  (** 4800 *)

val bandwidth_threshold_gb_s : float  (** 600 *)

val classify : Spec.t -> classification
val regulated : Spec.t -> bool

val headroom : Spec.t -> [ `Tpp of float | `Bandwidth of float ] list
(** How much each knob is below its threshold (empty when regulated);
    a compliant designer may scale the other knob freely. *)

val classification_to_string : classification -> string
