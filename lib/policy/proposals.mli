(** The paper's proposed architecture-first policies (Sec. 5).

    Two ingredients: (1) an architecture-based replacement for the
    marketing-based data-center / non-data-center split (Sec. 5.2, Fig. 10),
    and (2) composable architectural limits (matmul hardware, on-chip SRAM,
    memory configuration) that target a workload's bottleneck directly
    (Secs. 5.3-5.4). *)

val dc_memory_capacity_gb : float
(** 32 GB: devices at or above are classified data-center. *)

val dc_memory_bandwidth_gb_s : float
(** 1600 GB/s. *)

val architectural_data_center :
  memory_gb:float -> memory_bw_gb_s:float -> bool
(** The Fig. 10 classifier: data center iff memory capacity >= 32 GB or
    memory bandwidth > 1600 GB/s. *)

(** A composable architecture-first policy: [None] fields are
    unconstrained. All limits are inclusive upper bounds ("at most"). *)
type limits = {
  max_tpp : float option;
  max_systolic_dim : int option;  (** largest allowed array dimension *)
  max_l1_kb : float option;  (** per-core local buffer *)
  max_l2_mb : float option;
  max_memory_bw_tb_s : float option;
  max_memory_gb : float option;
  max_device_bw_gb_s : float option;
}

val unconstrained : limits

val tpp_only : float -> limits
(** The status-quo policy: a bare TPP ceiling. *)

val ai_targeted : limits
(** The paper's Sec. 5.4 recommendation for limiting LLM inference while
    leaving gaming performance intact: TPP 4800 plus 32 KB L1 (throttles
    prefill) plus 0.8 TB/s memory bandwidth (throttles decoding). *)

val gaming_carveout : limits
(** A policy that permits strong raster/gaming parts: no TPP limit but no
    systolic arrays larger than 4x4 and GDDR-class (1.2 TB/s) memory. *)

type violation =
  | Tpp_exceeded of float
  | Systolic_too_large of int
  | L1_too_large of float
  | L2_too_large of float
  | Memory_bw_too_high of float
  | Memory_too_large of float
  | Device_bw_too_high of float

val violations :
  ?memory_gb:float -> limits -> Acs_hardware.Device.t -> violation list
(** Empty when the device complies. [memory_gb] defaults to the device's
    HBM capacity. *)

val compliant : ?memory_gb:float -> limits -> Acs_hardware.Device.t -> bool
val violation_to_string : violation -> string
val pp_limits : Format.formatter -> limits -> unit
