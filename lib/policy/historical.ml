let word_length_factor word_length_bits =
  (1. /. 3.) +. (float_of_int word_length_bits /. 96.)

let ctp_element_mtops ~rate_mops ~word_length_bits =
  if rate_mops <= 0. then
    invalid_arg "Historical.ctp_element_mtops: rate must be positive";
  if word_length_bits <= 0 then
    invalid_arg "Historical.ctp_element_mtops: word length must be positive";
  rate_mops *. word_length_factor word_length_bits

let ctp_mtops elements =
  List.fold_left
    (fun acc (rate_mops, word_length_bits) ->
      acc +. ctp_element_mtops ~rate_mops ~word_length_bits)
    0. elements

let ctp_of_flops ~flops ~word_length_bits =
  ctp_element_mtops ~rate_mops:(flops /. 1e6) ~word_length_bits

type processor_kind = Vector | Non_vector

let app_weight = function Vector -> 0.9 | Non_vector -> 0.3

let app_wt ~fp64_flops ~kind =
  if fp64_flops < 0. then invalid_arg "Historical.app_wt: negative rate";
  fp64_flops /. 1e12 *. app_weight kind

let ctp_threshold_1998_mtops = 2_000.
let ctp_threshold_2001_mtops = 190_000.
let app_threshold_2006_wt = 0.75
let app_threshold_2011_wt = 3.0
let tpp_threshold_2022 = 4800.
