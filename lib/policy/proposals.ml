module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic

let dc_memory_capacity_gb = 32.
let dc_memory_bandwidth_gb_s = 1600.

let architectural_data_center ~memory_gb ~memory_bw_gb_s =
  memory_gb >= dc_memory_capacity_gb
  || memory_bw_gb_s > dc_memory_bandwidth_gb_s

type limits = {
  max_tpp : float option;
  max_systolic_dim : int option;
  max_l1_kb : float option;
  max_l2_mb : float option;
  max_memory_bw_tb_s : float option;
  max_memory_gb : float option;
  max_device_bw_gb_s : float option;
}

let unconstrained =
  {
    max_tpp = None;
    max_systolic_dim = None;
    max_l1_kb = None;
    max_l2_mb = None;
    max_memory_bw_tb_s = None;
    max_memory_gb = None;
    max_device_bw_gb_s = None;
  }

let tpp_only tpp = { unconstrained with max_tpp = Some tpp }

let ai_targeted =
  {
    unconstrained with
    max_tpp = Some 4800.;
    max_l1_kb = Some 32.;
    max_memory_bw_tb_s = Some 0.8;
  }

let gaming_carveout =
  { unconstrained with max_systolic_dim = Some 4; max_memory_bw_tb_s = Some 1.2 }

type violation =
  | Tpp_exceeded of float
  | Systolic_too_large of int
  | L1_too_large of float
  | L2_too_large of float
  | Memory_bw_too_high of float
  | Memory_too_large of float
  | Device_bw_too_high of float

let violations ?memory_gb limits (dev : Device.t) =
  let memory_gb =
    match memory_gb with
    | Some g -> g
    | None ->
        dev.Device.memory.Acs_hardware.Memory.capacity_bytes
        /. Acs_util.Units.giga
  in
  let check limit actual make =
    match limit with
    | Some bound when actual > bound -> [ make actual ]
    | Some _ | None -> []
  in
  let dim =
    max dev.Device.systolic.Systolic.dim_x dev.Device.systolic.Systolic.dim_y
  in
  check limits.max_tpp (Device.tpp dev) (fun v -> Tpp_exceeded v)
  @ (match limits.max_systolic_dim with
    | Some bound when dim > bound -> [ Systolic_too_large dim ]
    | Some _ | None -> [])
  @ check limits.max_l1_kb
      (dev.Device.l1_bytes /. Acs_util.Units.kilo)
      (fun v -> L1_too_large v)
  @ check limits.max_l2_mb
      (dev.Device.l2_bytes /. Acs_util.Units.mega)
      (fun v -> L2_too_large v)
  @ check limits.max_memory_bw_tb_s
      (Device.memory_bandwidth dev /. Acs_util.Units.tera)
      (fun v -> Memory_bw_too_high v)
  @ check limits.max_memory_gb memory_gb (fun v -> Memory_too_large v)
  @ check limits.max_device_bw_gb_s
      (Device.device_bandwidth_gb_s dev)
      (fun v -> Device_bw_too_high v)

let compliant ?memory_gb limits dev = violations ?memory_gb limits dev = []

let violation_to_string = function
  | Tpp_exceeded v -> Printf.sprintf "TPP %.0f exceeds limit" v
  | Systolic_too_large d -> Printf.sprintf "systolic dimension %d too large" d
  | L1_too_large v -> Printf.sprintf "L1 %.0f KB too large" v
  | L2_too_large v -> Printf.sprintf "L2 %.0f MB too large" v
  | Memory_bw_too_high v -> Printf.sprintf "memory BW %.2f TB/s too high" v
  | Memory_too_large v -> Printf.sprintf "memory %.0f GB too large" v
  | Device_bw_too_high v -> Printf.sprintf "device BW %.0f GB/s too high" v

let pp_option pp_v ppf = function
  | None -> Format.pp_print_string ppf "-"
  | Some v -> pp_v ppf v

let pp_limits ppf l =
  let f = Format.fprintf in
  f ppf "tpp<=%a dim<=%a l1<=%aKB l2<=%aMB membw<=%aTB/s mem<=%aGB devbw<=%aGB/s"
    (pp_option (fun ppf -> f ppf "%.0f")) l.max_tpp
    (pp_option (fun ppf -> f ppf "%d")) l.max_systolic_dim
    (pp_option (fun ppf -> f ppf "%.0f")) l.max_l1_kb
    (pp_option (fun ppf -> f ppf "%.0f")) l.max_l2_mb
    (pp_option (fun ppf -> f ppf "%.1f")) l.max_memory_bw_tb_s
    (pp_option (fun ppf -> f ppf "%.0f")) l.max_memory_gb
    (pp_option (fun ppf -> f ppf "%.0f")) l.max_device_bw_gb_s
