(** The device-level quantities the Advanced Computing Rules regulate,
    abstracted away from whether they come from a real product datasheet or
    from a simulated design. *)

type t = {
  tpp : float;  (** Total Processing Performance: peak TOPS x bitwidth *)
  device_bw_gb_s : float;  (** aggregate bidirectional I/O transfer rate *)
  die_area_mm2 : float;  (** total die area across the package *)
  non_planar : bool;
      (** whether the dies use a non-planar transistor process; when false
          the October 2023 "applicable die area" is empty and PD does not
          apply *)
}

val make :
  ?non_planar:bool ->
  tpp:float ->
  device_bw_gb_s:float ->
  die_area_mm2:float ->
  unit ->
  t
(** Raises [Invalid_argument] on negative TPP/bandwidth or non-positive
    area. [non_planar] defaults to true (every device we study is FinFET
    class). *)

val performance_density : t -> float
(** TPP per mm^2 of applicable die area; 0 for planar-process devices
    (no applicable area, so no PD threshold can be met). *)

val of_device : ?area_mm2:float -> Acs_hardware.Device.t -> t
(** Spec of a simulated design; area defaults to the {!Acs_area.Area_model}
    estimate but can be overridden (the paper uses the real GA100 area for
    its modeled A100). *)

val of_package : ?device_bw_gb_s:float -> Acs_hardware.Package.t -> t
(** Spec of a multi-chip module: TPP summed over compute dies, applicable
    area over every die, per the rules. Device bandwidth defaults to the
    compute die's interconnect (chiplets share the package's external
    links). *)

val pp : Format.formatter -> t -> unit
