module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Interconnect = Acs_hardware.Interconnect

type strategy =
  | Cap_interconnect of float
  | Cap_tpp of float
  | Cap_memory_bandwidth of float

let apply strategy (dev : Device.t) =
  match strategy with
  | Cap_interconnect gb_s ->
      if gb_s <= 0. || gb_s >= Device.device_bandwidth_gb_s dev then
        invalid_arg "Derate: interconnect cap must be below the current value";
      { dev with Device.interconnect = Interconnect.of_total_gb_s gb_s }
  | Cap_tpp tpp ->
      if tpp <= 0. || tpp >= Device.tpp dev then
        invalid_arg "Derate: TPP cap must be below the current value";
      let cores =
        Device.cores_for_tpp ~tpp ~lanes_per_core:dev.Device.lanes_per_core
          ~systolic:dev.Device.systolic
          ~frequency_mhz:(dev.Device.frequency_hz /. 1e6)
          ()
      in
      let capped = { dev with Device.core_count = min cores dev.Device.core_count } in
      (* The rules regulate at ">= threshold": back off one core when the
         cap is hit exactly. *)
      if Device.tpp capped >= tpp && capped.Device.core_count > 1 then
        { capped with Device.core_count = capped.Device.core_count - 1 }
      else capped
  | Cap_memory_bandwidth tb_s ->
      if
        tb_s <= 0.
        || tb_s *. 1e12 >= Device.memory_bandwidth dev
      then invalid_arg "Derate: memory cap must be below the current value";
      { dev with Device.memory = Memory.with_bandwidth dev.Device.memory ~bandwidth_tb_s:tb_s }

let strategy_to_string = function
  | Cap_interconnect gb -> Printf.sprintf "cap interconnect at %.0f GB/s" gb
  | Cap_tpp tpp -> Printf.sprintf "cut cores to TPP < %.0f" tpp
  | Cap_memory_bandwidth tb ->
      Printf.sprintf "cap memory bandwidth at %.1f TB/s" tb

let compliant_2022 dev =
  let spec = Spec.of_device dev in
  if Acr_2022.classify spec = Acr_2022.Not_applicable then []
  else begin
    let bw_escape =
      if Device.device_bandwidth_gb_s dev > 400. then
        [ Cap_interconnect 400. ]
      else []
    in
    let tpp_escape =
      if Device.tpp dev >= Acr_2022.tpp_threshold then
        [ Cap_tpp Acr_2022.tpp_threshold ]
      else []
    in
    List.map (fun s -> (s, apply s dev)) (bw_escape @ tpp_escape)
  end

let best_2023_core_cut ?die_area_mm2 dev =
  let area =
    match die_area_mm2 with
    | Some a -> a
    | None -> Acs_area.Area_model.total_mm2 dev
  in
  let unregulated cores =
    let candidate = { dev with Device.core_count = cores } in
    let spec = Spec.of_device ~area_mm2:area candidate in
    Acr_2023.classify Acr_2023.Data_center spec = Acr_2023.Not_applicable
  in
  (* Tier boundaries are monotone in core count, so binary search works. *)
  if not (unregulated 1) then None
  else if unregulated dev.Device.core_count then Some dev
  else begin
    let rec search lo hi =
      (* invariant: lo unregulated, hi regulated *)
      if hi - lo <= 1 then lo
      else begin
        let mid = (lo + hi) / 2 in
        if unregulated mid then search mid hi else search lo mid
      end
    in
    let cores = search 1 dev.Device.core_count in
    Some { dev with Device.core_count = cores }
  end
