(** Compliance derating: turning a restricted flagship into an exportable
    derivative, the way the A800/H800 (October 2022) and the H20 / RTX
    4090D (October 2023) were made (paper Sec. 2.2).

    Strategies transform a device the way manufacturers actually do it -
    fusing off interconnect PHYs or compute cores on the {e same} die - so
    the die area (and hence PD of the October 2023 rule) is that of the
    original die. *)

type strategy =
  | Cap_interconnect of float
      (** reduce aggregate device bandwidth to the given GB/s *)
  | Cap_tpp of float  (** disable cores until TPP is strictly below *)
  | Cap_memory_bandwidth of float  (** disable HBM stacks down to TB/s *)

val apply : strategy -> Acs_hardware.Device.t -> Acs_hardware.Device.t
(** Raises [Invalid_argument] when the cap is not below the device's
    current value (derating only removes capability). *)

val strategy_to_string : strategy -> string

val compliant_2022 :
  Acs_hardware.Device.t -> (strategy * Acs_hardware.Device.t) list
(** The October 2022 escapes for this device: the bandwidth cap (just
    under 600 GB/s) and the TPP cap (just under 4800), each applied only
    if the device is currently regulated and the knob is above the
    threshold. Empty when the device is already unregulated. *)

val best_2023_core_cut :
  ?die_area_mm2:float ->
  Acs_hardware.Device.t ->
  Acs_hardware.Device.t option
(** Largest core count at which the device (on its own die area, which
    derating does not change) is fully unregulated under the October 2023
    data-center rules; [None] if even one core is regulated. The die area
    defaults to the modeled area of the {e original} device. *)
