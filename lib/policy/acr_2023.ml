(* Thin wrapper over the [Regime.acr_2023] registry value; the DSL is
   the implementation. The threshold constants stay literal here (the
   area-floor math needs them individually, and [Regime.threshold] only
   reports the lowest bound per quantity); the regime test suite pins
   them against the registry value so they cannot drift. *)

type market = Regime.market = Data_center | Non_data_center
type tier = Not_applicable | Nac_eligible | License_required

let tpp_license = 4800.
let tpp_nac_low = 2400.
let tpp_floor = 1600.
let pd_license = 5.92
let pd_nac = 3.2
let pd_nac_low = 1.6

let classify market (s : Spec.t) =
  match Regime.verdict ~market Regime.acr_2023 (Regime.of_spec s) with
  | Regime.Unregulated -> Not_applicable
  | Regime.Nac -> Nac_eligible
  | Regime.License -> License_required

let regulated market s = classify market s <> Not_applicable

let tier_rank = function
  | Not_applicable -> 0
  | Nac_eligible -> 1
  | License_required -> 2

let compare_tier a b = compare (tier_rank a) (tier_rank b)

(* Smallest area such that PD drops strictly below [pd_limit]. We return
   the area at which PD equals the limit; classification uses strict
   inequalities on PD thresholds from above (PD >= limit regulates), so any
   area strictly above the returned bound is safe, and [classify] at
   exactly the bound is regulated. Callers treat the bound as exclusive. *)
let area_for ~tpp ~pd_limit = tpp /. pd_limit

let min_area_unregulated ~tpp =
  if tpp >= tpp_license then None
  else if tpp >= tpp_nac_low then Some (area_for ~tpp ~pd_limit:pd_nac_low)
  else if tpp >= tpp_floor then Some (area_for ~tpp ~pd_limit:pd_nac)
  else Some 0.

let min_area_license_free ~tpp =
  if tpp >= tpp_license then None
  else if tpp >= tpp_floor then Some (area_for ~tpp ~pd_limit:pd_license)
  else Some 0.

let tier_to_string = function
  | Not_applicable -> "Not Applicable"
  | Nac_eligible -> "NAC Eligible"
  | License_required -> "License Required"

let market_to_string = Regime.market_to_string
