type order = { consignee : string; device_tpp : float; units : int }

let order_tpp o =
  if o.device_tpp < 0. then invalid_arg "Diffusion_2025.order_tpp: tpp";
  if o.units < 0 then invalid_arg "Diffusion_2025.order_tpp: units";
  o.device_tpp *. float_of_int o.units

type classification =
  | Within_lpp_exception
  | Within_allocation
  | Exceeds_allocation

let default_country_allocation_tpp = 790e6
let default_lpp_annual_tpp = 26.9e6

type ledger = {
  allocation : float;
  lpp_cap : float;
  mutable consumed : float;
  lpp_by_consignee : (string, float) Hashtbl.t;
}

let create ?(country_allocation_tpp = default_country_allocation_tpp)
    ?(lpp_annual_tpp = default_lpp_annual_tpp) () =
  if country_allocation_tpp <= 0. || lpp_annual_tpp < 0. then
    invalid_arg "Diffusion_2025.create: thresholds must be positive";
  {
    allocation = country_allocation_tpp;
    lpp_cap = lpp_annual_tpp;
    consumed = 0.;
    lpp_by_consignee = Hashtbl.create 16;
  }

let lpp_used_tpp ledger ~consignee =
  Option.value ~default:0. (Hashtbl.find_opt ledger.lpp_by_consignee consignee)

let classify ledger order =
  let tpp = order_tpp order in
  if lpp_used_tpp ledger ~consignee:order.consignee +. tpp <= ledger.lpp_cap
  then Within_lpp_exception
  else if ledger.consumed +. tpp <= ledger.allocation then Within_allocation
  else Exceeds_allocation

let record ledger order =
  let tpp = order_tpp order in
  match classify ledger order with
  | Within_lpp_exception ->
      Hashtbl.replace ledger.lpp_by_consignee order.consignee
        (lpp_used_tpp ledger ~consignee:order.consignee +. tpp);
      Ok Within_lpp_exception
  | Within_allocation ->
      ledger.consumed <- ledger.consumed +. tpp;
      Ok Within_allocation
  | Exceeds_allocation ->
      Error
        (Printf.sprintf
           "order of %.3g TPP exceeds the remaining country allocation \
            (%.3g TPP left)"
           tpp
           (ledger.allocation -. ledger.consumed))

let remaining_allocation_tpp ledger = ledger.allocation -. ledger.consumed
let consumed_allocation_tpp ledger = ledger.consumed
let new_year ledger = Hashtbl.reset ledger.lpp_by_consignee

let classification_to_string = function
  | Within_lpp_exception -> "LPP exception"
  | Within_allocation -> "licensed (country allocation)"
  | Exceeds_allocation -> "exceeds allocation"
