(** 7 nm die-area model for the hardware template.

    Coefficients are fitted to the paper's published design points
    (see DESIGN.md "Calibration anchors"): the two Table 4 designs
    (103 cores x 2 lanes x 16x16, identical except caches) pin SRAM at
    ~2.318 mm^2/MB and, with the lane-compute, PHY and fixed terms below,
    land at 523 and 753 mm^2 exactly. *)

type coefficients = {
  mac_mm2 : float;  (** per systolic FP16 MAC *)
  vector_alu_mm2 : float;  (** per vector ALU *)
  sram_mm2_per_mb : float;  (** L1 and L2, including arrays + periphery *)
  hbm_phy_mm2 : float;  (** per 400 GB/s HBM stack PHY + controller *)
  device_phy_mm2 : float;  (** per 50 GB/s interconnect link *)
  fixed_mm2 : float;  (** IO ring, command processors, schedulers *)
}

val default : coefficients

type breakdown = {
  compute_mm2 : float;
  l1_mm2 : float;
  l2_mm2 : float;
  hbm_phy_mm2 : float;
  device_phy_mm2 : float;
  fixed_mm2 : float;
}

val breakdown : ?coeff:coefficients -> Acs_hardware.Device.t -> breakdown
val total_mm2 : ?coeff:coefficients -> Acs_hardware.Device.t -> float

val sram_mb : Acs_hardware.Device.t -> float
(** Total on-chip SRAM (all L1s plus L2) in MB, the quantity compared in
    Sec. 4.4. *)

val performance_density : ?coeff:coefficients -> Acs_hardware.Device.t -> float
(** TPP / modeled die area, the October 2023 metric. *)

val within_reticle : ?coeff:coefficients -> Acs_hardware.Device.t -> bool
(** Modeled area <= 860 mm^2. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
