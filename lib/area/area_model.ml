module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic

type coefficients = {
  mac_mm2 : float;
  vector_alu_mm2 : float;
  sram_mm2_per_mb : float;
  hbm_phy_mm2 : float;
  device_phy_mm2 : float;
  fixed_mm2 : float;
}

let default =
  {
    mac_mm2 = 0.003;
    vector_alu_mm2 = 0.006;
    sram_mm2_per_mb = 2.318;
    hbm_phy_mm2 = 14.0;
    device_phy_mm2 = 1.5;
    fixed_mm2 = 66.0;
  }

type breakdown = {
  compute_mm2 : float;
  l1_mm2 : float;
  l2_mm2 : float;
  hbm_phy_mm2 : float;
  device_phy_mm2 : float;
  fixed_mm2 : float;
}

let sram_coeff coeff = coeff.sram_mm2_per_mb /. Acs_util.Units.mega

let breakdown ?(coeff = default) (dev : Device.t) =
  let lane_mm2 =
    (coeff.mac_mm2 *. float_of_int (Systolic.macs_per_cycle dev.Device.systolic))
    +. (coeff.vector_alu_mm2 *. float_of_int dev.Device.vector_width)
  in
  let cores = float_of_int dev.Device.core_count in
  let lanes = float_of_int dev.Device.lanes_per_core in
  let links =
    float_of_int dev.Device.interconnect.Acs_hardware.Interconnect.links
  in
  {
    compute_mm2 = cores *. lanes *. lane_mm2;
    l1_mm2 = cores *. dev.Device.l1_bytes *. sram_coeff coeff;
    l2_mm2 = dev.Device.l2_bytes *. sram_coeff coeff;
    hbm_phy_mm2 =
      coeff.hbm_phy_mm2 *. float_of_int dev.Device.memory.Acs_hardware.Memory.stacks;
    device_phy_mm2 = coeff.device_phy_mm2 *. links;
    fixed_mm2 = coeff.fixed_mm2;
  }

let total_mm2 ?(coeff = default) dev =
  let b = breakdown ~coeff dev in
  b.compute_mm2 +. b.l1_mm2 +. b.l2_mm2 +. b.hbm_phy_mm2 +. b.device_phy_mm2
  +. b.fixed_mm2

let sram_mb (dev : Device.t) =
  ((float_of_int dev.Device.core_count *. dev.Device.l1_bytes)
  +. dev.Device.l2_bytes)
  /. Acs_util.Units.mega

let performance_density ?(coeff = default) dev =
  Device.tpp dev /. total_mm2 ~coeff dev

let within_reticle ?(coeff = default) dev =
  total_mm2 ~coeff dev <= Acs_hardware.Presets.reticle_limit_mm2

let pp_breakdown ppf b =
  Format.fprintf ppf
    "compute %.1f + L1 %.1f + L2 %.1f + HBM PHY %.1f + dev PHY %.1f + fixed \
     %.1f mm^2"
    b.compute_mm2 b.l1_mm2 b.l2_mm2 b.hbm_phy_mm2 b.device_phy_mm2 b.fixed_mm2
