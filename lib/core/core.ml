(** Umbrella module: the public API of the sanctions-architecture library.

    {2 Substrates}
    - {!Stats}, {!Table}, {!Scatter}, {!Csv}, {!Units}: utilities
    - {!Tracing}, {!Metrics}: span tracing and the metrics registry
      (observability of the engine, DSE and serving hot paths)
    - {!Systolic}, {!Memory}, {!Interconnect}, {!Process}, {!Device},
      {!Presets}: the hardware template
    - {!Model}, {!Request}, {!Op}, {!Layer}, {!Compiled}: LLM workloads
    - {!Calib}, {!Op_model}, {!Engine}: the analytical performance model
    - {!Area_model}, {!Cost_model}: silicon area and cost

    {2 The paper's contribution}
    - {!Spec}, {!Regime}, {!Acr_2022}, {!Acr_2023}, {!Hbm_2024},
      {!Proposals}: the Advanced Computing Rules and the proposed
      architecture-first policies, with {!Regime} the combinator DSL the
      era classifiers are built on
    - {!Gpu}, {!Database}: the real-device survey
    - {!Space}, {!Design}, {!Pareto}, {!Optimum}: design space exploration
    - {!Scenario}, {!Eval}: typed experiment manifests and the parallel,
      memoized evaluation engine keyed on them
    - {!Adaptive}, {!Disk_cache}: budgeted search over billion-point
      widened lattices and the persistent on-disk eval-cache tier
    - {!Daemon}: the long-running evaluation service (HTTP/1.1 over a
      Unix-domain socket, bounded job queue, warm caches across
      requests)
    - {!Grouping}: architecture-first performance indicators
    - {!Marketing}, {!Arch_classifier}: externality analyses *)

module Stats = Acs_util.Stats
module Parallel = Acs_util.Parallel

module Tracing = Acs_util.Trace
(** [Acs_util.Trace] (the span tracer), aliased to avoid clashing with the
    serving {!Trace} below. *)

module Metrics = Acs_util.Metrics
module Table = Acs_util.Table
module Scatter = Acs_util.Scatter
module Boxplot = Acs_util.Boxplot
module Heap = Acs_util.Heap
module Csv = Acs_util.Csv
module Fs = Acs_util.Fs
module Json = Acs_util.Json
module Units = Acs_util.Units
module Systolic = Acs_hardware.Systolic
module Memory = Acs_hardware.Memory
module Interconnect = Acs_hardware.Interconnect
module Process = Acs_hardware.Process
module Device = Acs_hardware.Device
module Presets = Acs_hardware.Presets
module Package = Acs_hardware.Package
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Op = Acs_workload.Op
module Graphics = Acs_workload.Graphics
module Layer = Acs_workload.Layer
module Compiled = Acs_workload.Compiled
module Calib = Acs_perfmodel.Calib
module Op_model = Acs_perfmodel.Op_model
module Engine = Acs_perfmodel.Engine
module Graphics_model = Acs_perfmodel.Graphics_model
module Report = Acs_perfmodel.Report
module Cluster = Acs_perfmodel.Cluster
module Training = Acs_perfmodel.Training
module Area_model = Acs_area.Area_model
module Cost_model = Acs_cost.Cost_model
module Binning = Acs_cost.Binning
module Power_model = Acs_power.Power_model
module Spec = Acs_policy.Spec
module Regime = Acs_policy.Regime
module Acr_2022 = Acs_policy.Acr_2022
module Acr_2023 = Acs_policy.Acr_2023
module Hbm_2024 = Acs_policy.Hbm_2024
module Proposals = Acs_policy.Proposals
module Historical = Acs_policy.Historical
module Diffusion_2025 = Acs_policy.Diffusion_2025
module Derate = Acs_policy.Derate
module Timeline = Acs_policy.Timeline
module Gpu = Acs_devicedb.Gpu
module Database = Acs_devicedb.Database
module Space = Acs_dse.Space
module Design = Acs_dse.Design
module Scenario = Acs_dse.Scenario
module Eval = Acs_dse.Eval
module Pareto = Acs_dse.Pareto
module Optimum = Acs_dse.Optimum
module Search = Acs_dse.Search
module Adaptive = Acs_dse.Adaptive
module Disk_cache = Acs_dse.Disk_cache
module Daemon = Acs_daemon
(** The evaluation daemon: {!Acs_daemon.Server} (the service),
    {!Acs_daemon.Client} (the thin per-call client), {!Acs_daemon.Jobq}
    (the bounded queue) and {!Acs_daemon.Http} (the wire protocol). *)

module Grouping = Acs_indicators.Grouping
module Market = Acs_externality.Market
module Latency_cost = Acs_externality.Latency_cost
module Marketing = Acs_externality.Marketing
module Arch_classifier = Acs_externality.Arch_classifier
module Trace = Acs_serving.Trace
module Simulator = Acs_serving.Simulator

(* [Cluster] is taken by the multi-device perf-model topology above; the
   serving fleet simulator goes by [Fleet] at the umbrella level. *)
module Fleet = Acs_serving.Cluster
