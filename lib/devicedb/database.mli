(** The GPU product database: the 65-device 2018-2024 survey behind the
    paper's Figs. 9-10 plus the flagship devices of Figs. 1-2.

    Specs were transcribed from vendor datasheets and public spec
    databases. Devices whose inclusion would contradict the paper's
    published classification counts (4 false-DC / 7 false-NDC marketing
    mismatches; 2 false-DC / 0 false-NDC architectural mismatches) carry
    [in_survey = false] and only appear in the flagship figures; DESIGN.md
    documents this curation. *)

val all : Gpu.t list
val survey : Gpu.t list
(** The 65 devices of the marketing study. *)

val flagships_2022 : Gpu.t list
(** The devices plotted in Fig. 1a. *)

val flagships_2023 : Gpu.t list
(** The devices plotted in Figs. 1b and 2. *)

val find : string -> Gpu.t option
(** Case-insensitive lookup by name. *)

val data_center : Gpu.t list -> Gpu.t list
val non_data_center : Gpu.t list -> Gpu.t list
val by_vendor : Gpu.vendor -> Gpu.t list -> Gpu.t list
val released_between : int -> int -> Gpu.t list -> Gpu.t list
