(** A real GPU product record, carrying the datasheet quantities the
    Advanced Computing Rules and the paper's classification studies need.

    TPP follows the paper's convention: dense (non-sparse) peak tensor
    throughput times operand bitwidth, using the format maximizing the
    product. For GeForce Ampere parts the standard-rate (FP32-accumulate)
    tensor figure is used, matching the dataset behaviour implied by the
    paper's Fig. 9 classification counts; Ada and data-center parts use
    their full-rate FP16 figures. *)

type vendor = Nvidia | Amd
type segment = Data_center | Consumer | Workstation

type t = {
  name : string;
  vendor : vendor;
  year : int;  (** launch year *)
  segment : segment;
  tpp : float;
  die_area_mm2 : float;  (** total silicon across the package *)
  die_count : int;
  process : Acs_hardware.Process.t;
  memory_gb : float;
  memory_bw_gb_s : float;
  device_bw_gb_s : float;  (** aggregate bidirectional interconnect *)
  in_survey : bool;
      (** member of the 65-device 2018-2024 dataset used for the paper's
          Figs. 9-10 marketing study (Fig. 1 flagship devices that predate
          or distort that study are kept with [in_survey = false]) *)
}

val performance_density : t -> float
val spec : t -> Acs_policy.Spec.t

val subject : t -> Acs_policy.Regime.subject
(** The datasheet quantities as a {!Acs_policy.Regime} subject: the spec
    plus memory capacity and bandwidth. Core-internal quantities
    (systolic dimensions, L1/L2) are not on datasheets and stay
    unreported — predicates over them never fire on real products. *)

val marketing_market : t -> Acs_policy.Acr_2023.market
(** [Data_center] for data-center-marketed devices, [Non_data_center] for
    consumer and workstation devices. *)

val architectural_market : t -> Acs_policy.Acr_2023.market
(** The Sec. 5.2 classifier applied to this device's memory system. *)

val classify_2022 : t -> Acs_policy.Acr_2022.classification
val classify_2023 : t -> Acs_policy.Acr_2023.tier
(** Classification under the marketing-based October 2023 rule. *)

val to_template : t -> Acs_hardware.Device.t
(** An LLMCompass-style template approximating this product: A100-like
    core organization (16x16 arrays, 4 lanes, 192 KB L1, 40 MB L2) with
    the core count chosen so the template's TPP matches the datasheet TPP
    at 1410 MHz, and the product's real memory and interconnect. Good for
    "simulate an H20" conveniences; not a microarchitectural model of the
    actual part. *)

val vendor_to_string : vendor -> string
val segment_to_string : segment -> string
val pp : Format.formatter -> t -> unit
