type vendor = Nvidia | Amd
type segment = Data_center | Consumer | Workstation

type t = {
  name : string;
  vendor : vendor;
  year : int;
  segment : segment;
  tpp : float;
  die_area_mm2 : float;
  die_count : int;
  process : Acs_hardware.Process.t;
  memory_gb : float;
  memory_bw_gb_s : float;
  device_bw_gb_s : float;
  in_survey : bool;
}

let performance_density t =
  if Acs_hardware.Process.non_planar t.process then t.tpp /. t.die_area_mm2
  else 0.

let spec t =
  Acs_policy.Spec.make
    ~non_planar:(Acs_hardware.Process.non_planar t.process)
    ~tpp:t.tpp ~device_bw_gb_s:t.device_bw_gb_s ~die_area_mm2:t.die_area_mm2
    ()

let marketing_market t =
  match t.segment with
  | Data_center -> Acs_policy.Acr_2023.Data_center
  | Consumer | Workstation -> Acs_policy.Acr_2023.Non_data_center

let architectural_market t =
  if
    Acs_policy.Proposals.architectural_data_center ~memory_gb:t.memory_gb
      ~memory_bw_gb_s:t.memory_bw_gb_s
  then Acs_policy.Acr_2023.Data_center
  else Acs_policy.Acr_2023.Non_data_center

let subject t =
  Acs_policy.Regime.subject
    ~memory_bw_tb_s:(t.memory_bw_gb_s /. 1000.)
    ~memory_gb:t.memory_gb (spec t)

let classify_2022 t = Acs_policy.Acr_2022.classify (spec t)
let classify_2023 t = Acs_policy.Acr_2023.classify (marketing_market t) (spec t)

let to_template t =
  let module D = Acs_hardware.Device in
  let systolic = Acs_hardware.Systolic.square 16 in
  let cores =
    max 1 (D.cores_for_tpp ~tpp:(t.tpp *. 1.0001) ~lanes_per_core:4 ~systolic ())
  in
  D.make ~name:(t.name ^ "-template") ~process:t.process ~core_count:cores
    ~lanes_per_core:4 ~systolic ~l1_kb:192. ~l2_mb:40.
    ~memory:
      (Acs_hardware.Memory.make ~capacity_gb:t.memory_gb
         ~bandwidth_tb_s:(t.memory_bw_gb_s /. 1000.))
    ~interconnect:(Acs_hardware.Interconnect.of_total_gb_s t.device_bw_gb_s)
    ()

let vendor_to_string = function Nvidia -> "NVIDIA" | Amd -> "AMD"

let segment_to_string = function
  | Data_center -> "data center"
  | Consumer -> "consumer"
  | Workstation -> "workstation"

let pp ppf t =
  Format.fprintf ppf
    "%s %s (%d, %s): TPP %.0f, %.0f mm^2 (PD %.2f), %.0f GB @ %.0f GB/s, dev \
     %.0f GB/s"
    (vendor_to_string t.vendor)
    t.name t.year
    (segment_to_string t.segment)
    t.tpp t.die_area_mm2 (performance_density t) t.memory_gb t.memory_bw_gb_s
    t.device_bw_gb_s
