open Gpu
module Process = Acs_hardware.Process

let gpu ?(dies = 1) ?(survey = true) name vendor year segment ~tpp ~area ~nm
    ~mem ~membw ~devbw =
  {
    name;
    vendor;
    year;
    segment;
    tpp;
    die_area_mm2 = area;
    die_count = dies;
    process = Process.of_nm nm;
    memory_gb = mem;
    memory_bw_gb_s = membw;
    device_bw_gb_s = devbw;
    in_survey = survey;
  }

let nvidia_data_center =
  [
    gpu "A100" Nvidia 2020 Data_center ~tpp:4992. ~area:826. ~nm:7 ~mem:80.
      ~membw:2039. ~devbw:600.;
    gpu "A800" Nvidia 2022 Data_center ~tpp:4992. ~area:826. ~nm:7 ~mem:80.
      ~membw:2039. ~devbw:400.;
    gpu "H100" Nvidia 2023 Data_center ~tpp:15824. ~area:814. ~nm:4 ~mem:80.
      ~membw:3350. ~devbw:900.;
    gpu "H800" Nvidia 2023 Data_center ~tpp:15824. ~area:814. ~nm:4 ~mem:80.
      ~membw:3350. ~devbw:400.;
    gpu "H20" Nvidia 2023 Data_center ~tpp:2368. ~area:814. ~nm:4 ~mem:96.
      ~membw:4000. ~devbw:900.;
    gpu "L40" Nvidia 2022 Data_center ~tpp:2897. ~area:608.5 ~nm:5 ~mem:48.
      ~membw:864. ~devbw:64.;
    gpu "L20" Nvidia 2023 Data_center ~tpp:1912. ~area:608.5 ~nm:5 ~mem:48.
      ~membw:864. ~devbw:64.;
    gpu "L4" Nvidia 2023 Data_center ~tpp:968. ~area:294.5 ~nm:5 ~mem:24.
      ~membw:300. ~devbw:64.;
    gpu "L2" Nvidia 2023 Data_center ~tpp:773. ~area:294.5 ~nm:5 ~mem:24.
      ~membw:300. ~devbw:64.;
    gpu "A40" Nvidia 2020 Data_center ~tpp:2395. ~area:628.4 ~nm:8 ~mem:48.
      ~membw:696. ~devbw:112.5;
    (* Fig. 1 flagships outside the 65-device marketing survey. *)
    gpu ~survey:false "A30" Nvidia 2021 Data_center ~tpp:2640. ~area:826.
      ~nm:7 ~mem:24. ~membw:933. ~devbw:200.;
    gpu ~survey:false "A10" Nvidia 2021 Data_center ~tpp:2000. ~area:628.4
      ~nm:8 ~mem:24. ~membw:600. ~devbw:64.;
    gpu ~survey:false "T4" Nvidia 2018 Data_center ~tpp:1040. ~area:545.
      ~nm:12 ~mem:16. ~membw:320. ~devbw:32.;
    gpu ~survey:false "V100S" Nvidia 2019 Data_center ~tpp:2096. ~area:815.
      ~nm:12 ~mem:32. ~membw:1134. ~devbw:300.;
    (* Post-survey or survey-distorting parts, kept for lookups and the
       CLI (see DESIGN.md on curation). *)
    gpu ~survey:false "L40S" Nvidia 2023 Data_center ~tpp:2930. ~area:608.5
      ~nm:5 ~mem:48. ~membw:864. ~devbw:64.;
    gpu ~survey:false "H200" Nvidia 2024 Data_center ~tpp:15824. ~area:814.
      ~nm:4 ~mem:141. ~membw:4800. ~devbw:900.;
    gpu ~survey:false ~dies:2 "B200" Nvidia 2024 Data_center ~tpp:36000.
      ~area:1628. ~nm:4 ~mem:192. ~membw:8000. ~devbw:1800.;
    gpu ~survey:false "RTX 5090" Nvidia 2025 Consumer ~tpp:6704. ~area:750.
      ~nm:4 ~mem:32. ~membw:1792. ~devbw:64.;
  ]

let amd_data_center =
  [
    gpu "MI100" Amd 2020 Data_center ~tpp:2954. ~area:750. ~nm:7 ~mem:32.
      ~membw:1228. ~devbw:276.;
    gpu "MI210" Amd 2021 Data_center ~tpp:2896. ~area:770. ~nm:6 ~mem:64.
      ~membw:1638. ~devbw:300.;
    gpu ~dies:2 "MI250X" Amd 2021 Data_center ~tpp:6128. ~area:1540. ~nm:6
      ~mem:128. ~membw:3277. ~devbw:800.;
    gpu ~dies:12 "MI300X" Amd 2023 Data_center ~tpp:20912. ~area:1017. ~nm:5
      ~mem:192. ~membw:5300. ~devbw:1024.;
    gpu ~survey:false ~dies:12 "MI325X" Amd 2024 Data_center ~tpp:20912.
      ~area:1017. ~nm:5 ~mem:256. ~membw:6000. ~devbw:1024.;
  ]

let nvidia_ada_consumer =
  [
    gpu "RTX 4090" Nvidia 2022 Consumer ~tpp:5285. ~area:608.5 ~nm:5 ~mem:24.
      ~membw:1008. ~devbw:32.;
    gpu "RTX 4090 D" Nvidia 2023 Consumer ~tpp:4708. ~area:608.5 ~nm:5
      ~mem:24. ~membw:1008. ~devbw:32.;
    gpu "RTX 4080 Super" Nvidia 2024 Consumer ~tpp:3342. ~area:378.6 ~nm:5
      ~mem:16. ~membw:736. ~devbw:32.;
    gpu "RTX 4080" Nvidia 2022 Consumer ~tpp:3118. ~area:378.6 ~nm:5 ~mem:16.
      ~membw:717. ~devbw:32.;
    gpu "RTX 4070 Ti Super" Nvidia 2024 Consumer ~tpp:2826. ~area:378.6 ~nm:5
      ~mem:16. ~membw:672. ~devbw:32.;
    gpu "RTX 4070 Ti" Nvidia 2023 Consumer ~tpp:2566. ~area:294.5 ~nm:5
      ~mem:12. ~membw:504. ~devbw:32.;
    gpu "RTX 4070" Nvidia 2023 Consumer ~tpp:1866. ~area:294.5 ~nm:5 ~mem:12.
      ~membw:504. ~devbw:32.;
    gpu "RTX 4060 Ti" Nvidia 2023 Consumer ~tpp:1413. ~area:187.8 ~nm:5
      ~mem:8. ~membw:288. ~devbw:32.;
    gpu "RTX 4060" Nvidia 2023 Consumer ~tpp:966. ~area:158.7 ~nm:5 ~mem:8.
      ~membw:272. ~devbw:32.;
  ]

let nvidia_ampere_consumer =
  [
    gpu "RTX 3090 Ti" Nvidia 2022 Consumer ~tpp:1280. ~area:628.4 ~nm:8
      ~mem:24. ~membw:1008. ~devbw:32.;
    gpu "RTX 3090" Nvidia 2020 Consumer ~tpp:1136. ~area:628.4 ~nm:8 ~mem:24.
      ~membw:936. ~devbw:32.;
    gpu "RTX 3080 Ti" Nvidia 2021 Consumer ~tpp:1093. ~area:628.4 ~nm:8
      ~mem:12. ~membw:912. ~devbw:32.;
    gpu "RTX 3080" Nvidia 2020 Consumer ~tpp:952. ~area:628.4 ~nm:8 ~mem:10.
      ~membw:760. ~devbw:32.;
    gpu "RTX 3070 Ti" Nvidia 2021 Consumer ~tpp:696. ~area:392.5 ~nm:8 ~mem:8.
      ~membw:608. ~devbw:32.;
    gpu "RTX 3070" Nvidia 2020 Consumer ~tpp:650. ~area:392.5 ~nm:8 ~mem:8.
      ~membw:448. ~devbw:32.;
    gpu "RTX 3060 Ti" Nvidia 2020 Consumer ~tpp:519. ~area:392.5 ~nm:8 ~mem:8.
      ~membw:448. ~devbw:32.;
    gpu "RTX 3060" Nvidia 2021 Consumer ~tpp:410. ~area:276. ~nm:8 ~mem:12.
      ~membw:360. ~devbw:32.;
    gpu "RTX 3050" Nvidia 2022 Consumer ~tpp:290. ~area:276. ~nm:8 ~mem:8.
      ~membw:224. ~devbw:32.;
  ]

let nvidia_turing_consumer =
  [
    gpu "TITAN RTX" Nvidia 2018 Consumer ~tpp:2088. ~area:754. ~nm:12 ~mem:24.
      ~membw:672. ~devbw:32.;
    gpu "RTX 2080 Ti" Nvidia 2018 Consumer ~tpp:1722. ~area:754. ~nm:12
      ~mem:11. ~membw:616. ~devbw:32.;
    gpu "RTX 2080 Super" Nvidia 2019 Consumer ~tpp:1427. ~area:545. ~nm:12
      ~mem:8. ~membw:496. ~devbw:32.;
    gpu "RTX 2080" Nvidia 2018 Consumer ~tpp:1357. ~area:545. ~nm:12 ~mem:8.
      ~membw:448. ~devbw:32.;
    gpu "RTX 2070 Super" Nvidia 2019 Consumer ~tpp:1160. ~area:545. ~nm:12
      ~mem:8. ~membw:448. ~devbw:32.;
    gpu "RTX 2070" Nvidia 2018 Consumer ~tpp:955. ~area:445. ~nm:12 ~mem:8.
      ~membw:448. ~devbw:32.;
    gpu "RTX 2060 Super" Nvidia 2019 Consumer ~tpp:918. ~area:445. ~nm:12
      ~mem:8. ~membw:448. ~devbw:32.;
    gpu "RTX 2060" Nvidia 2019 Consumer ~tpp:826. ~area:445. ~nm:12 ~mem:6.
      ~membw:336. ~devbw:32.;
    gpu "GTX 1660 Ti" Nvidia 2019 Consumer ~tpp:176. ~area:284. ~nm:12 ~mem:6.
      ~membw:288. ~devbw:32.;
    gpu "GTX 1660 Super" Nvidia 2019 Consumer ~tpp:160. ~area:284. ~nm:12
      ~mem:6. ~membw:336. ~devbw:32.;
    gpu "GTX 1650" Nvidia 2019 Consumer ~tpp:96. ~area:200. ~nm:12 ~mem:4.
      ~membw:128. ~devbw:32.;
  ]

let nvidia_workstation =
  [
    gpu "Quadro RTX 6000" Nvidia 2018 Workstation ~tpp:2088. ~area:754. ~nm:12
      ~mem:24. ~membw:672. ~devbw:100.;
    gpu "Quadro RTX 5000" Nvidia 2018 Workstation ~tpp:1427. ~area:545. ~nm:12
      ~mem:16. ~membw:448. ~devbw:100.;
    gpu "RTX A5000" Nvidia 2021 Workstation ~tpp:889. ~area:628.4 ~nm:8
      ~mem:24. ~membw:768. ~devbw:112.5;
    gpu "RTX A4000" Nvidia 2021 Workstation ~tpp:614. ~area:392.5 ~nm:8
      ~mem:16. ~membw:448. ~devbw:32.;
    gpu "RTX 4500 Ada" Nvidia 2023 Workstation ~tpp:1589. ~area:294.5 ~nm:5
      ~mem:24. ~membw:432. ~devbw:32.;
    gpu "RTX 4000 Ada" Nvidia 2023 Workstation ~tpp:1328. ~area:294.5 ~nm:5
      ~mem:20. ~membw:360. ~devbw:32.;
  ]

let amd_consumer =
  [
    gpu ~dies:7 "RX 7900 XTX" Amd 2022 Consumer ~tpp:1965. ~area:529. ~nm:5
      ~mem:24. ~membw:960. ~devbw:32.;
    gpu ~dies:7 "RX 7900 XT" Amd 2022 Consumer ~tpp:1648. ~area:529. ~nm:5
      ~mem:20. ~membw:800. ~devbw:32.;
    gpu ~dies:7 "RX 7900 GRE" Amd 2023 Consumer ~tpp:1471. ~area:529. ~nm:5
      ~mem:16. ~membw:576. ~devbw:32.;
    gpu ~dies:5 "RX 7800 XT" Amd 2023 Consumer ~tpp:1194. ~area:346. ~nm:5
      ~mem:16. ~membw:624. ~devbw:32.;
    gpu ~dies:5 "RX 7700 XT" Amd 2023 Consumer ~tpp:1125. ~area:346. ~nm:5
      ~mem:12. ~membw:432. ~devbw:32.;
    gpu "RX 7600" Amd 2023 Consumer ~tpp:696. ~area:204. ~nm:6 ~mem:8.
      ~membw:288. ~devbw:32.;
    gpu "RX 6950 XT" Amd 2022 Consumer ~tpp:757. ~area:520. ~nm:7 ~mem:16.
      ~membw:576. ~devbw:32.;
    gpu "RX 6900 XT" Amd 2020 Consumer ~tpp:737. ~area:520. ~nm:7 ~mem:16.
      ~membw:512. ~devbw:32.;
    gpu "RX 6800 XT" Amd 2020 Consumer ~tpp:663. ~area:520. ~nm:7 ~mem:16.
      ~membw:512. ~devbw:32.;
    gpu "RX 6800" Amd 2020 Consumer ~tpp:517. ~area:520. ~nm:7 ~mem:16.
      ~membw:512. ~devbw:32.;
    gpu "RX 6700 XT" Amd 2021 Consumer ~tpp:423. ~area:335. ~nm:7 ~mem:12.
      ~membw:384. ~devbw:32.;
    gpu "RX 6600 XT" Amd 2021 Consumer ~tpp:339. ~area:237. ~nm:7 ~mem:8.
      ~membw:256. ~devbw:32.;
    gpu "RX 6600" Amd 2021 Consumer ~tpp:286. ~area:237. ~nm:7 ~mem:8.
      ~membw:224. ~devbw:32.;
    gpu "RX 5700 XT" Amd 2019 Consumer ~tpp:312. ~area:251. ~nm:7 ~mem:8.
      ~membw:448. ~devbw:32.;
    gpu "RX 5600 XT" Amd 2020 Consumer ~tpp:231. ~area:251. ~nm:7 ~mem:6.
      ~membw:288. ~devbw:32.;
    gpu "Radeon VII" Amd 2019 Consumer ~tpp:430. ~area:331. ~nm:7 ~mem:16.
      ~membw:1024. ~devbw:32.;
  ]

let all =
  nvidia_data_center @ amd_data_center @ nvidia_ada_consumer
  @ nvidia_ampere_consumer @ nvidia_turing_consumer @ nvidia_workstation
  @ amd_consumer

let survey = List.filter (fun g -> g.in_survey) all

let of_names names =
  let find_exn name =
    match List.find_opt (fun g -> g.name = name) all with
    | Some g -> g
    | None -> invalid_arg ("Database: unknown device " ^ name)
  in
  List.map find_exn names

let flagships_2022 =
  of_names
    [
      "A100"; "A800"; "A30"; "H100"; "H800"; "H20"; "MI250X"; "MI210";
      "MI300X";
    ]

let flagships_2023 =
  of_names
    [
      "A100"; "A800"; "A30"; "H100"; "H800"; "H20"; "L40"; "L20"; "L4"; "L2";
      "MI250X"; "MI210"; "MI300X";
    ]

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun g -> norm g.name = norm name) all

let data_center gpus =
  List.filter (fun g -> g.segment = Data_center) gpus

let non_data_center gpus =
  List.filter (fun g -> g.segment <> Data_center) gpus

let by_vendor vendor gpus = List.filter (fun g -> g.vendor = vendor) gpus

let released_between lo hi gpus =
  List.filter (fun g -> g.year >= lo && g.year <= hi) gpus
