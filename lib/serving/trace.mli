(** Deterministic synthetic request traces for the serving simulator.

    Two entry points: {!synthetic} materializes a full request list (small
    traces, structural tests), and {!stream} yields requests one at a time
    so 10^6-10^7-request fleet traces never exist in memory. At equal
    parameters the two are bit-identical: [synthetic] {e is}
    [materialize (stream ...)]. *)

type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

val min_mean_len : int
(** The length floor (8 tokens): every sampled input/output length is at
    least this, and {!synthetic} rejects requested means below it. *)

(** Time-varying load: a nonnegative rate multiplier m(t) applied to the
    base Poisson rate, realized by Lewis-Shedler thinning (candidates at
    the peak rate, accepted with probability m(t)/peak). *)
type shape =
  | Constant  (** m(t) = 1: homogeneous Poisson, the legacy behavior. *)
  | Diurnal of { period_s : float; trough : float }
      (** Smooth day/night cycle: m(t) swings between [trough] (at t = 0)
          and 1, period [period_s]. [trough] in [0,1]. *)
  | Bursts of { every_s : float; width_s : float; factor : float }
      (** m(t) = [factor] during the first [width_s] seconds of every
          [every_s]-second window, 1 otherwise. *)
  | Compose of shape * shape  (** Pointwise product of two shapes. *)

val shape_multiplier : shape -> float -> float
(** [shape_multiplier shape t] is m(t); exposed for tests and plots. *)

type tenant = { share : float; mean_input : int; mean_output : int }
(** A traffic class: relative share (positive weight, normalized
    internally) and its own length means. *)

type stream
(** A pull-based request generator. O(1) state regardless of how many
    requests it has produced or will produce. Stateful: each {!next}
    advances it. *)

val stream :
  ?seed:int ->
  ?shape:shape ->
  ?tenants:tenant list ->
  ?limit:int ->
  ?duration_s:float ->
  rate_per_s:float ->
  mean_input:int ->
  mean_output:int ->
  unit ->
  stream
(** Poisson arrivals at [rate_per_s] modulated by [shape] (default
    {!Constant}); lengths are shifted-geometric with the given means, or
    per-tenant means drawn by [share] when [tenants] is non-empty. The
    stream ends after [duration_s] simulated seconds or [limit] requests,
    whichever comes first; at least one bound is required ([Invalid_argument]
    otherwise, as for non-positive parameters or means below
    {!min_mean_len}). Deterministic for a given seed (default 42); arrival
    times are strictly increasing and ids consecutive from 0. *)

val next : stream -> request option
(** The next request, or [None] once the stream is exhausted (and forever
    after). *)

val of_list : request list -> stream
(** View an already-materialized trace as a stream. *)

val materialize : stream -> request list
(** Drain a stream into a list. Only for bounded streams you can afford to
    hold; the point of {!stream} is not to call this on million-request
    traces. *)

val synthetic :
  ?seed:int ->
  rate_per_s:float ->
  duration_s:float ->
  mean_input:int ->
  mean_output:int ->
  unit ->
  request list
(** Poisson arrivals over [0, duration]; input/output lengths are shifted
    geometric - support [[min_mean_len, inf)] with realized mean equal to
    the requested mean (the old [max 8] clamp on a plain geometric
    silently inflated small means, overstating offered load). Raises
    [Invalid_argument] when a mean is below {!min_mean_len}. Deterministic
    for a given seed (default 42). Sorted by arrival time. Implemented as
    [materialize (stream ...)] with a constant shape: the two agree
    bit-for-bit at equal parameters. *)

val exponential_of_u : rate:float -> float -> float
(** The inverse-CDF transform behind the Poisson inter-arrival gaps,
    exposed for testing its edge cases. The uniform variate is clamped
    into the open unit interval, so the result is finite and positive for
    {e any} input, including the [u = 0.] that [Random.State.float]
    can return (which would otherwise yield an infinite gap that silently
    truncates the trace). *)

val geometric_of_u : mean:int -> float -> int
(** Geometric sample (support >= 1) from a uniform variate, exposed for
    testing: with [u] within one ulp of 1, the unclamped transform divides
    [-inf] by a negative constant and [int_of_float +inf] is undefined
    (huge or negative lengths). The clamp bounds the result to roughly
    [28 * mean]. [mean <= 1] degenerates to the constant 1. *)

val total_output_tokens : request list -> int
val pp : Format.formatter -> request -> unit
