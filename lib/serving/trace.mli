(** Deterministic synthetic request traces for the serving simulator. *)

type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

val min_mean_len : int
(** The length floor (8 tokens): every sampled input/output length is at
    least this, and {!synthetic} rejects requested means below it. *)

val synthetic :
  ?seed:int ->
  rate_per_s:float ->
  duration_s:float ->
  mean_input:int ->
  mean_output:int ->
  unit ->
  request list
(** Poisson arrivals over [0, duration]; input/output lengths are shifted
    geometric - support [[min_mean_len, inf)] with realized mean equal to
    the requested mean (the old [max 8] clamp on a plain geometric
    silently inflated small means, overstating offered load). Raises
    [Invalid_argument] when a mean is below {!min_mean_len}. Deterministic
    for a given seed (default 42). Sorted by arrival time. *)

val exponential_of_u : rate:float -> float -> float
(** The inverse-CDF transform behind the Poisson inter-arrival gaps,
    exposed for testing its edge cases. The uniform variate is clamped
    into the open unit interval, so the result is finite and positive for
    {e any} input, including the [u = 0.] that [Random.State.float]
    can return (which would otherwise yield an infinite gap that silently
    truncates the trace). *)

val geometric_of_u : mean:int -> float -> int
(** Geometric sample (support >= 1) from a uniform variate, exposed for
    testing: with [u] within one ulp of 1, the unclamped transform divides
    [-inf] by a negative constant and [int_of_float +inf] is undefined
    (huge or negative lengths). The clamp bounds the result to roughly
    [28 * mean]. [mean <= 1] degenerates to the constant 1. *)

val total_output_tokens : request list -> int
val pp : Format.formatter -> request -> unit
