(** Deterministic synthetic request traces for the serving simulator. *)

type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

val synthetic :
  ?seed:int ->
  rate_per_s:float ->
  duration_s:float ->
  mean_input:int ->
  mean_output:int ->
  unit ->
  request list
(** Poisson arrivals over [0, duration]; input/output lengths are
    geometric around their means with a floor of 8 tokens. Deterministic
    for a given seed (default 42). Sorted by arrival time. *)

val total_output_tokens : request list -> int
val pp : Format.formatter -> request -> unit
