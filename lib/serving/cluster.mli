(** Fleet-scale serving: N per-device {!Simulator.Instance}s behind a
    router, fed from one shared trace.

    A fleet is a list of {e pools}. Each pool is [count] identical
    tensor-parallel groups of one device type under one scheduler config;
    every group owns a private {!Simulator.stepper} (a shared step-shape
    memo would race once groups step on separate domains - the memo is
    pure, so this duplicates work, never results). Pools are either all
    {!Unified} (every group
    serves whole requests - homogeneous fleets are one pool,
    heterogeneous fleets several) or split into {!Prefill} and {!Decode}
    pools (disaggregated serving: prefill runs on one side, the KV cache
    is shipped across the interconnect, and decode continues on the
    other).

    Requests are dispatched in arrival order by a routing policy. Because
    each instance's schedule depends only on the set and order of
    requests submitted to it, routing in global arrival order while
    advancing candidate instances to the arrival time yields the same
    result as a fully synchronous co-simulation - and a 1-group unified
    fleet reproduces a bare {!Simulator.run} bit for bit (the property
    suite holds it to account).

    Disaggregated handoff is modeled as a transfer delay: when a
    request's prefill finishes, its full-model KV cache (input plus the
    first generated token, all layers) crosses the configured link, and
    the request arrives at the decode side [kv_bytes / link_bandwidth]
    later, joining the decode batch with no further prefill
    ({!Simulator.Instance.submit}[ ~prefilled:true]). End-to-end TTFT is
    the prefill-side TTFT; the inter-token time spreads the transfer and
    any decode-side queueing over the remaining tokens. *)

type role =
  | Unified  (** serves whole requests (prefill and decode) *)
  | Prefill  (** disaggregated: runs prefill only, then hands the KV off *)
  | Decode  (** disaggregated: receives KV handoffs, decodes to the end *)

type routing =
  | Round_robin  (** rotate over groups; oblivious but O(1) per request *)
  | Least_loaded
      (** fewest outstanding work tokens ({!Simulator.Instance.load})
          after advancing candidates to the arrival time *)
  | Phase_affine
      (** cheapest estimated completion: backlog drain time plus the
          request's own service time, both priced with the candidate's
          {!Simulator.stepper}. Prefill-heavy requests gravitate to
          FLOPs-strong devices and decode-heavy ones to
          bandwidth-strong devices, with the backlog term keeping
          identical devices balanced. *)

type pool = {
  name : string;
  device : Acs_hardware.Device.t;
  count : int;
      (** tensor-parallel {e groups} (independent schedulers), not dies:
          the pool holds [count * config.tp] physical devices *)
  role : role;
  config : Simulator.config;
}

type t = {
  pools : pool list;
  routing : routing;
  handoff_gb_s : float option;
      (** prefill-to-decode KV link bandwidth; [None] defaults to the
          slowest aggregate device interconnect across the fleet's pools *)
}

val pool :
  ?name:string ->
  ?role:role ->
  ?config:Simulator.config ->
  count:int ->
  Acs_hardware.Device.t ->
  pool
(** [name] defaults to the device name, prefixed with the role for
    prefill/decode pools. Raises [Invalid_argument] when [count < 1]. *)

val make : ?routing:routing -> ?handoff_gb_s:float -> pool list -> t
(** Validates the fleet shape: at least one pool, unique pool names,
    positive [handoff_gb_s], and roles either all [Unified] or a mix of
    [Prefill] and [Decode] with both sides present (raises
    [Invalid_argument] otherwise). Default routing is [Least_loaded]. *)

val disaggregated : t -> bool

val role_to_string : role -> string
val routing_to_string : routing -> string

type pool_stats = {
  pool_name : string;
  pool_role : role;
  pool_count : int;
  per_group : Simulator.stats array;
      (** one entry per group, in routing-index order; a 1-group unified
          fleet's single entry equals the bare {!Simulator.run} result *)
  pool_completed : int;
  pool_rejected : int;
  pool_produced_tokens : int;
      (** tokens this pool's schedulers generated step by step (prefill
          pools produce one per handed-off request) *)
  utilization : float;
      (** pool busy seconds over [count *] the fleet serving span: the
          fraction of the fleet's active period this pool's groups spent
          running batches. The disaggregation headroom signal - an idle
          decode pool shows up here, not in fleet throughput. *)
  occupancy : float;
      (** busy-time-weighted mean batch occupancy across the pool *)
}

type fleet_stats = {
  outcomes : Simulator.request_outcome list;
      (** one per completed {e original} request, sorted by finish time;
          disaggregated prefill/decode halves are merged (TTFT from the
          prefill side, TBT spreading transfer + decode over the
          remaining tokens) *)
  rejected : Trace.request list;
      (** original requests whose KV can never fit on any routed-to
          group (either side, for disaggregated fleets) *)
  completed : int;
      (** completed originals. Equals [List.length outcomes] for {!run};
          {!run_stream} keeps [outcomes = []] (bounded memory) and this
          counter is the only completion count. *)
  rejected_count : int;  (** likewise for [rejected] *)
  slo_attained : float option;
      (** filled by {!run_stream} when its [?slo] was given: the fraction
          of completed originals meeting both objectives, accumulated
          online ({!slo_attainment} needs the outcome list and so cannot
          be applied to streamed stats). [None] from {!run}. *)
  pools : pool_stats list;  (** in fleet pool order *)
  groups : int;  (** total scheduler instances across pools *)
  makespan_s : float;  (** latest group clock at drain *)
  serving_span_s : float;  (** makespan minus the first arrival *)
  generated_tokens : int;  (** sum of output_len over completed originals *)
  produced_tokens : int;
      (** sum of per-group produced tokens. Token conservation holds
          across the handoff: a disaggregated request produces 1 token on
          the prefill side and [output_len - 1] on the decode side, so
          this matches the unified count - it exceeds the sum of
          [max 1 output_len] over completed originals only when a request
          was rejected decode-side after its prefill ran *)
  throughput_tokens_per_s : float;  (** generated over the serving span *)
  requests_per_s : float;  (** completed originals over the serving span *)
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  handoff_transfers : int;  (** KV handoffs (0 for unified fleets) *)
  handoff_bytes : float;  (** total KV bytes shipped across the link *)
  mean_handoff_s : float;  (** mean per-request transfer delay *)
}

val run :
  ?calib:Acs_perfmodel.Calib.t ->
  t ->
  Acs_workload.Model.t ->
  Trace.request list ->
  fleet_stats
(** Simulates the whole trace against the fleet. Raises
    [Invalid_argument] on an empty trace or duplicate request ids (ids
    key the prefill-to-decode match), and {!Simulator.Infeasible} when
    any pool's weights alone exceed its device's HBM. Group drains shard
    across the {!Acs_util.Parallel} domain pool; results are independent
    of the job count. *)

val run_stream :
  ?calib:Acs_perfmodel.Calib.t ->
  ?epoch:int ->
  ?slo:float * float ->
  t ->
  Acs_workload.Model.t ->
  Trace.stream ->
  fleet_stats
(** Domain-parallel, bounded-memory fleet simulation for traces too large
    to materialize (consumes the stream destructively). The router
    alternates routing rounds of [epoch] requests (default 512; must be
    >= 1) with parallel advances of every group to the next round's first
    arrival, merging freshly finished outcomes into
    {!Acs_util.Stats.Online} accumulators in fixed group order - so
    results are bit-identical across [ACS_JOBS] settings, and peak memory
    is O(groups * backlog + epoch + sketch), independent of trace length.

    The returned stats carry empty [outcomes]/[rejected] lists; counts
    live in [completed]/[rejected_count], percentile fields come from the
    online sketches (nearest-rank within 1% relative error - see
    {!Acs_util.Stats.Online.quantile} - rather than the interpolated
    exact percentiles of {!run}), and [slo] (TTFT, TBT objectives in
    seconds) fills [slo_attained].

    Routing differences against {!run}: [Round_robin] streamed reproduces
    the materialized run exactly (same totals, steps and makespan);
    [Least_loaded]/[Phase_affine] price candidates with signals as of the
    last epoch boundary instead of advancing every group to each arrival,
    so their (deterministic) decisions can differ from the materialized
    router's. Raises like {!run}; also [Invalid_argument] on an SLO with
    non-positive objectives. *)

val slo_attainment : fleet_stats -> ttft_s:float -> tbt_s:float -> float
(** Fraction of completed originals meeting both objectives, with the
    same conventions as {!Simulator.slo_attainment} (vacuous 1 on an
    empty fleet, single-token requests trivially meet TBT). *)

val devices_for_qps : fleet_stats -> target_qps:float -> (string * int) list
(** First-order capacity plan: scales each pool's group count so the
    fleet would sustain [target_qps] completed requests per second,
    assuming request rate scales linearly with groups at fixed
    utilization - [ceil (target * utilization * count / achieved_qps)]
    per pool, floored at one group. Valid as a sizing estimate when the
    measured fleet is throughput-bound; it ignores queueing tails, so
    treat it as a lower bound near SLO limits. Returns [(pool_name,
    groups)] in fleet pool order; empty when nothing completed (no
    achieved rate to extrapolate from - the documented sentinel for
    "no measured throughput", preferred over a division by zero). Raises
    [Invalid_argument] on a non-positive or non-finite target. *)

val silicon_usd_per_mtok :
  ?lifetime_years:float ->
  die_cost_usd:(Acs_hardware.Device.t -> float) ->
  t ->
  fleet_stats ->
  float option
(** Fleet silicon cost per million generated tokens: every pool's
    [count * tp] dies priced by [die_cost_usd], amortized over
    [lifetime_years] (default 3) of the measured fleet throughput.
    [None] when the fleet sustained no tokens (zero or non-finite
    throughput) - there is no meaningful per-token cost to report, and
    the old [infinity] sentinel leaked into comparisons and tables. *)

val pp_fleet_stats : Format.formatter -> fleet_stats -> unit
