module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Stats = Acs_util.Stats
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

let m_routed = lazy (Metrics.counter "fleet_routed_total")
let m_handoffs = lazy (Metrics.counter "fleet_handoffs_total")
let m_handoff_s = lazy (Metrics.histogram "fleet_handoff_seconds")

type role = Unified | Prefill | Decode
type routing = Round_robin | Least_loaded | Phase_affine

type pool = {
  name : string;
  device : Device.t;
  count : int;
  role : role;
  config : Simulator.config;
}

type t = { pools : pool list; routing : routing; handoff_gb_s : float option }

let role_to_string = function
  | Unified -> "unified"
  | Prefill -> "prefill"
  | Decode -> "decode"

let routing_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Phase_affine -> "phase-affine"

let pool ?name ?(role = Unified) ?(config = Simulator.default_config) ~count
    device =
  if count < 1 then invalid_arg "Cluster.pool: count must be >= 1";
  let name =
    match name with
    | Some n -> n
    | None -> (
        match role with
        | Unified -> device.Device.name
        | Prefill -> "prefill:" ^ device.Device.name
        | Decode -> "decode:" ^ device.Device.name)
  in
  { name; device; count; role; config }

let disaggregated t = List.exists (fun p -> p.role = Prefill) t.pools

let make ?(routing = Least_loaded) ?handoff_gb_s pools =
  if pools = [] then invalid_arg "Cluster.make: at least one pool";
  (match handoff_gb_s with
  | Some b when b <= 0. ->
      invalid_arg "Cluster.make: handoff_gb_s must be positive"
  | _ -> ());
  let names = List.map (fun p -> p.name) pools in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg
      "Cluster.make: duplicate pool names (pass ~name to disambiguate)";
  let has r = List.exists (fun p -> p.role = r) pools in
  (match (has Unified, has Prefill, has Decode) with
  | _, false, false | false, true, true -> ()
  | _ ->
      invalid_arg
        "Cluster.make: pools must be all unified, or a prefill/decode split \
         with both sides present");
  { pools; routing; handoff_gb_s }

type pool_stats = {
  pool_name : string;
  pool_role : role;
  pool_count : int;
  per_group : Simulator.stats array;
  pool_completed : int;
  pool_rejected : int;
  pool_produced_tokens : int;
  utilization : float;
  occupancy : float;
}

type fleet_stats = {
  outcomes : Simulator.request_outcome list;
  rejected : Trace.request list;
  pools : pool_stats list;
  groups : int;
  makespan_s : float;
  serving_span_s : float;
  generated_tokens : int;
  produced_tokens : int;
  throughput_tokens_per_s : float;
  requests_per_s : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  handoff_transfers : int;
  handoff_bytes : float;
  mean_handoff_s : float;
}

(* --- routing ---

   A node is one scheduler instance plus the stepper it shares with its
   pool siblings (the router prices requests with it under
   [Phase_affine]). Routing happens in global arrival order; candidates
   are advanced to the arrival time first, so load signals reflect what
   each device will have finished by then. Stepping is otherwise deferred
   to the final drain - per-instance schedules depend only on the
   submitted set and order, so this is equivalent to a synchronous
   co-simulation (and makes a 1-group fleet reproduce {!Simulator.run}
   exactly). *)

type node = { inst : Simulator.Instance.t; stepper : Simulator.stepper }

type router = {
  nodes : node array;
  routing : routing;
  mutable cursor : int;
}

(* Single-request service time on a candidate: the phase-affinity signal.
   Batch-1 latencies overestimate amortized per-token cost, but they
   overestimate every candidate consistently, and ranking is all routing
   needs. *)
let est_service_s (st : Simulator.stepper) ~prefilled (r : Trace.request) =
  let prefill_t =
    if prefilled then 0.
    else st.Simulator.prefill_s ~batch:1 ~input_len:r.Trace.input_len
  in
  let decode_tokens = r.Trace.output_len - if prefilled then 0 else 1 in
  if decode_tokens <= 0 then prefill_t
  else
    prefill_t
    +. float_of_int decode_tokens
       *. st.Simulator.decode_s ~batch:1 ~context:r.Trace.input_len

let dispatch router ~prefilled (r : Trace.request) =
  let nodes = router.nodes in
  let n = Array.length nodes in
  let advance () =
    Array.iter
      (fun nd -> Simulator.Instance.run_until nd.inst r.Trace.arrival_s)
      nodes
  in
  let argmin score =
    let best = ref 0 and best_score = ref (score nodes.(0)) in
    for i = 1 to n - 1 do
      let s = score nodes.(i) in
      if s < !best_score then begin
        best := i;
        best_score := s
      end
    done;
    nodes.(!best)
  in
  let chosen =
    if n = 1 then nodes.(0)
    else
      match router.routing with
      | Round_robin ->
          let i = router.cursor mod n in
          router.cursor <- router.cursor + 1;
          nodes.(i)
      | Least_loaded ->
          advance ();
          argmin (fun nd -> float_of_int (Simulator.Instance.load nd.inst))
      | Phase_affine ->
          advance ();
          (* Estimated completion: backlog drain plus own service time,
             both priced with the candidate's stepper. Heterogeneous
             devices rank by phase-relevant speed; identical ones fall
             back to load balancing through the backlog term. *)
          argmin (fun nd ->
              float_of_int (Simulator.Instance.load nd.inst)
              *. nd.stepper.Simulator.decode_s ~batch:1
                   ~context:r.Trace.input_len
              +. est_service_s nd.stepper ~prefilled r)
  in
  Simulator.Instance.submit ~prefilled chosen.inst r;
  Metrics.incr (Lazy.force m_routed)

(* --- the fleet run --- *)

let by_arrival (a : Trace.request) (b : Trace.request) =
  compare a.Trace.arrival_s b.Trace.arrival_s

let by_arrival_id (a : Trace.request) (b : Trace.request) =
  compare (a.Trace.arrival_s, a.Trace.id) (b.Trace.arrival_s, b.Trace.id)

let handoff_bytes_per_s (t : t) =
  (match t.handoff_gb_s with
  | Some gb -> gb
  | None ->
      List.fold_left
        (fun acc p -> Float.min acc (Device.device_bandwidth_gb_s p.device))
        infinity t.pools)
  *. 1e9

(* Full-model KV for the prompt plus the prefill's token: every layer's
   cache crosses the link, regardless of how tp shards it at either
   end. *)
let handoff_kv_bytes (model : Model.t) ~input_len =
  Model.kv_cache_bytes_per_token model
  *. float_of_int model.Model.num_layers
  *. float_of_int (input_len + 1)

let run_fleet ?calib (t : t) model requests =
  if requests = [] then invalid_arg "Cluster.run: empty trace";
  let requests = List.stable_sort by_arrival requests in
  let originals : (int, Trace.request) Hashtbl.t =
    Hashtbl.create (List.length requests)
  in
  List.iter
    (fun (r : Trace.request) ->
      if Hashtbl.mem originals r.Trace.id then
        invalid_arg
          (Printf.sprintf
             "Cluster.run: duplicate request id %d (ids key the \
              prefill-to-decode handoff match)"
             r.Trace.id);
      Hashtbl.add originals r.Trace.id r)
    requests;
  let pools_nodes =
    List.map
      (fun p ->
        let stepper =
          Simulator.make_stepper ?calib ~config:p.config p.device model
        in
        ( p,
          Array.init p.count (fun _ ->
              {
                inst =
                  Simulator.Instance.create ~stepper ~config:p.config p.device
                    model;
                stepper;
              }) ))
      t.pools
  in
  let nodes_of_role want =
    Array.concat
      (List.filter_map
         (fun (p, nds) -> if p.role = want then Some nds else None)
         pools_nodes)
  in
  let all_nodes = Array.concat (List.map snd pools_nodes) in
  let drain nodes = Array.iter (fun nd -> Simulator.Instance.drain nd.inst) nodes in
  let handoff_transfers = ref 0 in
  let handoff_bytes = ref 0. in
  let handoff_seconds = ref 0. in
  (* Merged per-original outcomes and rejects, in whatever order the
     phases produce them; sorted once at the end. *)
  let merged : Simulator.request_outcome list ref = ref [] in
  let rejected : Trace.request list ref = ref [] in
  if not (disaggregated t) then begin
    let router = { nodes = all_nodes; routing = t.routing; cursor = 0 } in
    List.iter (dispatch router ~prefilled:false) requests;
    drain all_nodes;
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        merged := s.Simulator.outcomes @ !merged;
        rejected := s.Simulator.rejected @ !rejected)
      all_nodes
  end
  else begin
    let bw = handoff_bytes_per_s t in
    if (not (Float.is_finite bw)) || bw <= 0. then
      invalid_arg
        "Cluster.run: fleet has no positive interconnect bandwidth for the \
         KV handoff; pass ~handoff_gb_s";
    let p_nodes = nodes_of_role Prefill and d_nodes = nodes_of_role Decode in
    let p_router = { nodes = p_nodes; routing = t.routing; cursor = 0 } in
    (* Phase 1: every request runs prefill (plus its first token) on the
       prefill side. *)
    List.iter
      (fun (r : Trace.request) ->
        dispatch p_router ~prefilled:false { r with Trace.output_len = 1 })
      requests;
    drain p_nodes;
    let prefill_outcome : (int, Simulator.request_outcome) Hashtbl.t =
      Hashtbl.create (List.length requests)
    in
    let decode_reqs = ref [] in
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        List.iter
          (fun (r : Trace.request) ->
            rejected := Hashtbl.find originals r.Trace.id :: !rejected)
          s.Simulator.rejected;
        List.iter
          (fun (o : Simulator.request_outcome) ->
            let orig = Hashtbl.find originals o.Simulator.request.Trace.id in
            Hashtbl.add prefill_outcome orig.Trace.id o;
            if orig.Trace.output_len <= 1 then
              (* Nothing left to decode: the prefill outcome is the whole
                 request. *)
              merged :=
                {
                  Simulator.request = orig;
                  ttft_s = o.Simulator.ttft_s;
                  tbt_s = 0.;
                  finish_s = o.Simulator.finish_s;
                }
                :: !merged
            else begin
              (* Ship the KV and re-arrive on the decode side after the
                 transfer; the one prefill token is already in the
                 context, so the decode sub-request carries the remaining
                 output. *)
              let bytes = handoff_kv_bytes model ~input_len:orig.Trace.input_len in
              let transfer = bytes /. bw in
              incr handoff_transfers;
              handoff_bytes := !handoff_bytes +. bytes;
              handoff_seconds := !handoff_seconds +. transfer;
              Metrics.incr (Lazy.force m_handoffs);
              Metrics.observe (Lazy.force m_handoff_s) transfer;
              decode_reqs :=
                {
                  orig with
                  Trace.arrival_s = o.Simulator.finish_s +. transfer;
                  input_len = orig.Trace.input_len + 1;
                  output_len = orig.Trace.output_len - 1;
                }
                :: !decode_reqs
            end)
          s.Simulator.outcomes)
      p_nodes;
    (* Phase 2: decode-side continuation, arrivals in handoff order. *)
    let d_router = { nodes = d_nodes; routing = t.routing; cursor = 0 } in
    List.iter
      (dispatch d_router ~prefilled:true)
      (List.sort by_arrival_id !decode_reqs);
    drain d_nodes;
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        List.iter
          (fun (r : Trace.request) ->
            rejected := Hashtbl.find originals r.Trace.id :: !rejected)
          s.Simulator.rejected;
        List.iter
          (fun (o : Simulator.request_outcome) ->
            let orig = Hashtbl.find originals o.Simulator.request.Trace.id in
            let p = Hashtbl.find prefill_outcome orig.Trace.id in
            let rest = orig.Trace.output_len - 1 in
            merged :=
              {
                Simulator.request = orig;
                (* First token came off the prefill side; everything
                   after it - transfer, decode queueing, decode steps -
                   spreads over the remaining tokens. *)
                ttft_s = p.Simulator.ttft_s;
                tbt_s =
                  (o.Simulator.finish_s -. p.Simulator.finish_s)
                  /. float_of_int rest;
                finish_s = o.Simulator.finish_s;
              }
              :: !merged)
          s.Simulator.outcomes)
      d_nodes
  end;
  (* --- aggregate --- *)
  let outcomes =
    List.sort
      (fun (a : Simulator.request_outcome) (b : Simulator.request_outcome) ->
        compare
          (a.Simulator.finish_s, a.Simulator.request.Trace.id)
          (b.Simulator.finish_s, b.Simulator.request.Trace.id))
      !merged
  in
  let rejected = List.sort by_arrival_id !rejected in
  let stats_by_pool =
    List.map
      (fun (p, nds) ->
        (p, Array.map (fun nd -> Simulator.Instance.stats nd.inst) nds))
      pools_nodes
  in
  let makespan_s =
    List.fold_left
      (fun acc (_, sts) ->
        Array.fold_left
          (fun acc s -> Float.max acc s.Simulator.makespan_s)
          acc sts)
      0. stats_by_pool
  in
  let first_arrival = (List.hd requests).Trace.arrival_s in
  let span = makespan_s -. first_arrival in
  let span = if span > 0. && Float.is_finite span then span else 0. in
  let pools =
    List.map
      (fun (p, sts) ->
        let sum f = Array.fold_left (fun acc s -> acc + f s) 0 sts in
        let busy =
          Array.fold_left (fun acc s -> acc +. s.Simulator.busy_s) 0. sts
        in
        let occ_weighted =
          Array.fold_left
            (fun acc s ->
              acc +. (s.Simulator.mean_batch_occupancy *. s.Simulator.busy_s))
            0. sts
        in
        {
          pool_name = p.name;
          pool_role = p.role;
          pool_count = p.count;
          per_group = sts;
          pool_completed = sum (fun s -> List.length s.Simulator.outcomes);
          pool_rejected = sum (fun s -> List.length s.Simulator.rejected);
          pool_produced_tokens = sum (fun s -> s.Simulator.produced_tokens);
          utilization =
            (if span > 0. then busy /. (float_of_int p.count *. span) else 0.);
          occupancy = (if busy > 0. then occ_weighted /. busy else 0.);
        })
      stats_by_pool
  in
  let generated_tokens =
    List.fold_left
      (fun acc (o : Simulator.request_outcome) ->
        acc + o.Simulator.request.Trace.output_len)
      0 outcomes
  in
  let produced_tokens =
    List.fold_left (fun acc ps -> acc + ps.pool_produced_tokens) 0 pools
  in
  let completed = List.length outcomes in
  let ttfts = List.map (fun (o : Simulator.request_outcome) -> o.Simulator.ttft_s) outcomes in
  let ttfts = if ttfts = [] then [ 0. ] else ttfts in
  let tbts =
    List.filter_map
      (fun (o : Simulator.request_outcome) ->
        if o.Simulator.tbt_s > 0. then Some o.Simulator.tbt_s else None)
      outcomes
  in
  let tbts = if tbts = [] then [ 0. ] else tbts in
  {
    outcomes;
    rejected;
    pools;
    groups = Array.length all_nodes;
    makespan_s;
    serving_span_s = span;
    generated_tokens;
    produced_tokens;
    throughput_tokens_per_s =
      (if span > 0. then float_of_int generated_tokens /. span else 0.);
    requests_per_s =
      (if span > 0. then float_of_int completed /. span else 0.);
    p50_ttft_s = Stats.percentile 50. ttfts;
    p95_ttft_s = Stats.percentile 95. ttfts;
    p50_tbt_s = Stats.percentile 50. tbts;
    p95_tbt_s = Stats.percentile 95. tbts;
    handoff_transfers = !handoff_transfers;
    handoff_bytes = !handoff_bytes;
    mean_handoff_s =
      (if !handoff_transfers > 0 then
         !handoff_seconds /. float_of_int !handoff_transfers
       else 0.);
  }

let run ?calib (t : t) model requests =
  if not (Span.enabled ()) then run_fleet ?calib t model requests
  else
    Span.with_span "fleet.run"
      ~attrs:
        [ ("pools", Span.Int (List.length t.pools));
          ( "groups",
            Span.Int (List.fold_left (fun acc p -> acc + p.count) 0 t.pools) );
          ("routing", Span.Str (routing_to_string t.routing));
          ("disaggregated", Span.Str (string_of_bool (disaggregated t)));
          ("requests", Span.Int (List.length requests)) ]
      (fun () ->
        let s = run_fleet ?calib t model requests in
        Span.add_attr "generated_tokens" (Span.Int s.generated_tokens);
        Span.add_attr "makespan_s" (Span.Float s.makespan_s);
        s)

let slo_attainment fs ~ttft_s ~tbt_s =
  if ttft_s <= 0. || tbt_s <= 0. then
    invalid_arg "Cluster.slo_attainment: objectives must be positive";
  match fs.outcomes with
  | [] -> 1.
  | outcomes ->
      let ok (o : Simulator.request_outcome) =
        o.Simulator.ttft_s <= ttft_s
        && (o.Simulator.request.Trace.output_len <= 1
           || o.Simulator.tbt_s <= tbt_s)
      in
      float_of_int (List.length (List.filter ok outcomes))
      /. float_of_int (List.length outcomes)

let devices_for_qps fs ~target_qps =
  if target_qps <= 0. then
    invalid_arg "Cluster.devices_for_qps: target_qps must be positive";
  if fs.requests_per_s <= 0. then []
  else
    List.map
      (fun ps ->
        (* The pool sustained the fleet's request rate at its measured
           utilization, so its groups saturate at [rate / utilization];
           scale the group count to put [target_qps] at full busy. *)
        let need =
          int_of_float
            (ceil
               (target_qps *. ps.utilization *. float_of_int ps.pool_count
               /. fs.requests_per_s))
        in
        (ps.pool_name, max 1 need))
      fs.pools

let silicon_usd_per_mtok ?(lifetime_years = 3.) ~die_cost_usd (t : t) fs =
  let silicon =
    List.fold_left
      (fun acc p ->
        acc
        +. float_of_int (p.count * p.config.Simulator.tp)
           *. die_cost_usd p.device)
      0. t.pools
  in
  let tokens =
    fs.throughput_tokens_per_s *. lifetime_years *. 365.25 *. 86400.
  in
  if tokens <= 0. then infinity else silicon /. tokens *. 1e6

let pp_fleet_stats ppf fs =
  Format.fprintf ppf
    "%d requests%s, %d tokens in %.1f s (%.0f tok/s, %.2f req/s) on %d \
     groups; TTFT p50/p95 %.0f/%.0f ms; TBT p50/p95 %.1f/%.1f ms%s"
    (List.length fs.outcomes)
    (match List.length fs.rejected with
    | 0 -> ""
    | n -> Printf.sprintf " (+%d rejected)" n)
    fs.generated_tokens fs.makespan_s fs.throughput_tokens_per_s
    fs.requests_per_s fs.groups (1e3 *. fs.p50_ttft_s) (1e3 *. fs.p95_ttft_s)
    (1e3 *. fs.p50_tbt_s) (1e3 *. fs.p95_tbt_s)
    (if fs.handoff_transfers = 0 then ""
     else
       Printf.sprintf "; %d KV handoffs (%.1f GiB, mean %.2f ms)"
         fs.handoff_transfers
         (fs.handoff_bytes /. (1024. ** 3.))
         (1e3 *. fs.mean_handoff_s));
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "@\n  %-16s %-8s x%-3d util %4.0f%%  occ %5.1f  %6d done  %3d rej  \
         %9d tok"
        ps.pool_name
        (role_to_string ps.pool_role)
        ps.pool_count
        (100. *. ps.utilization)
        ps.occupancy ps.pool_completed ps.pool_rejected ps.pool_produced_tokens)
    fs.pools
