module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Stats = Acs_util.Stats
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics
module Parallel = Acs_util.Parallel
module Heap = Acs_util.Heap

let m_routed = lazy (Metrics.counter "fleet_routed_total")
let m_handoffs = lazy (Metrics.counter "fleet_handoffs_total")
let m_handoff_s = lazy (Metrics.histogram "fleet_handoff_seconds")

type role = Unified | Prefill | Decode
type routing = Round_robin | Least_loaded | Phase_affine

type pool = {
  name : string;
  device : Device.t;
  count : int;
  role : role;
  config : Simulator.config;
}

type t = { pools : pool list; routing : routing; handoff_gb_s : float option }

let role_to_string = function
  | Unified -> "unified"
  | Prefill -> "prefill"
  | Decode -> "decode"

let routing_to_string = function
  | Round_robin -> "round-robin"
  | Least_loaded -> "least-loaded"
  | Phase_affine -> "phase-affine"

let pool ?name ?(role = Unified) ?(config = Simulator.default_config) ~count
    device =
  if count < 1 then invalid_arg "Cluster.pool: count must be >= 1";
  let name =
    match name with
    | Some n -> n
    | None -> (
        match role with
        | Unified -> device.Device.name
        | Prefill -> "prefill:" ^ device.Device.name
        | Decode -> "decode:" ^ device.Device.name)
  in
  { name; device; count; role; config }

let disaggregated t = List.exists (fun p -> p.role = Prefill) t.pools

let make ?(routing = Least_loaded) ?handoff_gb_s pools =
  if pools = [] then invalid_arg "Cluster.make: at least one pool";
  (match handoff_gb_s with
  | Some b when b <= 0. ->
      invalid_arg "Cluster.make: handoff_gb_s must be positive"
  | _ -> ());
  let names = List.map (fun p -> p.name) pools in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg
      "Cluster.make: duplicate pool names (pass ~name to disambiguate)";
  let has r = List.exists (fun p -> p.role = r) pools in
  (match (has Unified, has Prefill, has Decode) with
  | _, false, false | false, true, true -> ()
  | _ ->
      invalid_arg
        "Cluster.make: pools must be all unified, or a prefill/decode split \
         with both sides present");
  { pools; routing; handoff_gb_s }

type pool_stats = {
  pool_name : string;
  pool_role : role;
  pool_count : int;
  per_group : Simulator.stats array;
  pool_completed : int;
  pool_rejected : int;
  pool_produced_tokens : int;
  utilization : float;
  occupancy : float;
}

type fleet_stats = {
  outcomes : Simulator.request_outcome list;
  rejected : Trace.request list;
  completed : int;
  rejected_count : int;
  slo_attained : float option;
  pools : pool_stats list;
  groups : int;
  makespan_s : float;
  serving_span_s : float;
  generated_tokens : int;
  produced_tokens : int;
  throughput_tokens_per_s : float;
  requests_per_s : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  handoff_transfers : int;
  handoff_bytes : float;
  mean_handoff_s : float;
}

(* --- routing ---

   A node is one scheduler instance plus its own stepper (the router
   prices requests with it under [Phase_affine]). Each node gets a
   private stepper rather than sharing one per pool: the compiled
   stepper's shape memo is a plain hash table, and private tables are
   what lets the drain and the epoch advance run nodes on separate
   domains without synchronization (the memo is pure, so per-node tables
   change cost, not results). Routing happens in global arrival order;
   in the materialized path candidates are advanced to the arrival time
   first, so load signals reflect what each device will have finished by
   then. Stepping is otherwise deferred to the drain - per-instance
   schedules depend only on the submitted set and order, so this is
   equivalent to a synchronous co-simulation (and makes a 1-group fleet
   reproduce {!Simulator.run} exactly). *)

type node = { inst : Simulator.Instance.t; stepper : Simulator.stepper }

type router = {
  nodes : node array;
  routing : routing;
  mutable cursor : int;
}

(* Single-request service time on a candidate: the phase-affinity signal.
   Batch-1 latencies overestimate amortized per-token cost, but they
   overestimate every candidate consistently, and ranking is all routing
   needs. *)
let est_service_s (st : Simulator.stepper) ~prefilled (r : Trace.request) =
  let prefill_t =
    if prefilled then 0.
    else st.Simulator.prefill_s ~batch:1 ~input_len:r.Trace.input_len
  in
  let decode_tokens = r.Trace.output_len - if prefilled then 0 else 1 in
  if decode_tokens <= 0 then prefill_t
  else
    prefill_t
    +. float_of_int decode_tokens
       *. st.Simulator.decode_s ~batch:1 ~context:r.Trace.input_len

(* [advance_to_arrival:false] is the streaming fleet's router: it must not
   step nodes itself (the epoch rounds do that in parallel), so
   least-loaded/phase-affine decisions price with signals as of the last
   epoch boundary instead of the exact arrival instant. Round-robin is
   unaffected. *)
let dispatch ?(advance_to_arrival = true) router ~prefilled
    (r : Trace.request) =
  let nodes = router.nodes in
  let n = Array.length nodes in
  let advance () =
    if advance_to_arrival then
      Array.iter
        (fun nd -> Simulator.Instance.run_until nd.inst r.Trace.arrival_s)
        nodes
  in
  let argmin score =
    let best = ref 0 and best_score = ref (score nodes.(0)) in
    for i = 1 to n - 1 do
      let s = score nodes.(i) in
      if s < !best_score then begin
        best := i;
        best_score := s
      end
    done;
    nodes.(!best)
  in
  let chosen =
    if n = 1 then nodes.(0)
    else
      match router.routing with
      | Round_robin ->
          let i = router.cursor mod n in
          router.cursor <- router.cursor + 1;
          nodes.(i)
      | Least_loaded ->
          advance ();
          argmin (fun nd -> float_of_int (Simulator.Instance.load nd.inst))
      | Phase_affine ->
          advance ();
          (* Estimated completion: backlog drain plus own service time,
             both priced with the candidate's stepper. Heterogeneous
             devices rank by phase-relevant speed; identical ones fall
             back to load balancing through the backlog term. *)
          argmin (fun nd ->
              float_of_int (Simulator.Instance.load nd.inst)
              *. nd.stepper.Simulator.decode_s ~batch:1
                   ~context:r.Trace.input_len
              +. est_service_s nd.stepper ~prefilled r)
  in
  Simulator.Instance.submit ~prefilled chosen.inst r;
  Metrics.incr (Lazy.force m_routed)

(* --- the fleet run --- *)

let by_arrival (a : Trace.request) (b : Trace.request) =
  compare a.Trace.arrival_s b.Trace.arrival_s

let by_arrival_id (a : Trace.request) (b : Trace.request) =
  compare (a.Trace.arrival_s, a.Trace.id) (b.Trace.arrival_s, b.Trace.id)

let handoff_bytes_per_s (t : t) =
  (match t.handoff_gb_s with
  | Some gb -> gb
  | None ->
      List.fold_left
        (fun acc p -> Float.min acc (Device.device_bandwidth_gb_s p.device))
        infinity t.pools)
  *. 1e9

(* Full-model KV for the prompt plus the prefill's token: every layer's
   cache crosses the link, regardless of how tp shards it at either
   end. *)
let handoff_kv_bytes (model : Model.t) ~input_len =
  Model.kv_cache_bytes_per_token model
  *. float_of_int model.Model.num_layers
  *. float_of_int (input_len + 1)

let make_nodes ?calib (t : t) model =
  List.map
    (fun p ->
      ( p,
        Array.init p.count (fun _ ->
            let stepper =
              Simulator.make_stepper ?calib ~config:p.config p.device model
            in
            {
              inst =
                Simulator.Instance.create ~stepper ~config:p.config p.device
                  model;
              stepper;
            }) ))
    t.pools

(* Nodes are independent between routing decisions, so draining (and
   horizon-bounded advancing) shards across the domain pool. [~chunk:1]
   because per-node work is large and node counts small; results merge on
   the calling domain afterwards, in node order, which keeps every
   aggregate bit-identical whatever ACS_JOBS says. *)
let drain_nodes nodes =
  ignore
    (Parallel.map_array ~chunk:1
       (fun nd -> Simulator.Instance.drain nd.inst)
       nodes)

let advance_nodes nodes horizon =
  ignore
    (Parallel.map_array ~chunk:1
       (fun nd -> Simulator.Instance.run_until nd.inst horizon)
       nodes)

let run_fleet ?calib (t : t) model requests =
  if requests = [] then invalid_arg "Cluster.run: empty trace";
  let requests = List.stable_sort by_arrival requests in
  let originals : (int, Trace.request) Hashtbl.t =
    Hashtbl.create (List.length requests)
  in
  List.iter
    (fun (r : Trace.request) ->
      if Hashtbl.mem originals r.Trace.id then
        invalid_arg
          (Printf.sprintf
             "Cluster.run: duplicate request id %d (ids key the \
              prefill-to-decode handoff match)"
             r.Trace.id);
      Hashtbl.add originals r.Trace.id r)
    requests;
  let pools_nodes = make_nodes ?calib t model in
  let nodes_of_role want =
    Array.concat
      (List.filter_map
         (fun (p, nds) -> if p.role = want then Some nds else None)
         pools_nodes)
  in
  let all_nodes = Array.concat (List.map snd pools_nodes) in
  let drain = drain_nodes in
  let handoff_transfers = ref 0 in
  let handoff_bytes = ref 0. in
  let handoff_seconds = ref 0. in
  (* Merged per-original outcomes and rejects, in whatever order the
     phases produce them; sorted once at the end. *)
  let merged : Simulator.request_outcome list ref = ref [] in
  let rejected : Trace.request list ref = ref [] in
  if not (disaggregated t) then begin
    let router = { nodes = all_nodes; routing = t.routing; cursor = 0 } in
    List.iter (dispatch router ~prefilled:false) requests;
    drain all_nodes;
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        merged := s.Simulator.outcomes @ !merged;
        rejected := s.Simulator.rejected @ !rejected)
      all_nodes
  end
  else begin
    let bw = handoff_bytes_per_s t in
    if (not (Float.is_finite bw)) || bw <= 0. then
      invalid_arg
        "Cluster.run: fleet has no positive interconnect bandwidth for the \
         KV handoff; pass ~handoff_gb_s";
    let p_nodes = nodes_of_role Prefill and d_nodes = nodes_of_role Decode in
    let p_router = { nodes = p_nodes; routing = t.routing; cursor = 0 } in
    (* Phase 1: every request runs prefill (plus its first token) on the
       prefill side. *)
    List.iter
      (fun (r : Trace.request) ->
        dispatch p_router ~prefilled:false { r with Trace.output_len = 1 })
      requests;
    drain p_nodes;
    let prefill_outcome : (int, Simulator.request_outcome) Hashtbl.t =
      Hashtbl.create (List.length requests)
    in
    let decode_reqs = ref [] in
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        List.iter
          (fun (r : Trace.request) ->
            rejected := Hashtbl.find originals r.Trace.id :: !rejected)
          s.Simulator.rejected;
        List.iter
          (fun (o : Simulator.request_outcome) ->
            let orig = Hashtbl.find originals o.Simulator.request.Trace.id in
            Hashtbl.add prefill_outcome orig.Trace.id o;
            if orig.Trace.output_len <= 1 then
              (* Nothing left to decode: the prefill outcome is the whole
                 request. *)
              merged :=
                {
                  Simulator.request = orig;
                  ttft_s = o.Simulator.ttft_s;
                  tbt_s = 0.;
                  finish_s = o.Simulator.finish_s;
                }
                :: !merged
            else begin
              (* Ship the KV and re-arrive on the decode side after the
                 transfer; the one prefill token is already in the
                 context, so the decode sub-request carries the remaining
                 output. *)
              let bytes = handoff_kv_bytes model ~input_len:orig.Trace.input_len in
              let transfer = bytes /. bw in
              incr handoff_transfers;
              handoff_bytes := !handoff_bytes +. bytes;
              handoff_seconds := !handoff_seconds +. transfer;
              Metrics.incr (Lazy.force m_handoffs);
              Metrics.observe (Lazy.force m_handoff_s) transfer;
              decode_reqs :=
                {
                  orig with
                  Trace.arrival_s = o.Simulator.finish_s +. transfer;
                  input_len = orig.Trace.input_len + 1;
                  output_len = orig.Trace.output_len - 1;
                }
                :: !decode_reqs
            end)
          s.Simulator.outcomes)
      p_nodes;
    (* Phase 2: decode-side continuation, arrivals in handoff order. *)
    let d_router = { nodes = d_nodes; routing = t.routing; cursor = 0 } in
    List.iter
      (dispatch d_router ~prefilled:true)
      (List.sort by_arrival_id !decode_reqs);
    drain d_nodes;
    Array.iter
      (fun nd ->
        let s = Simulator.Instance.stats nd.inst in
        List.iter
          (fun (r : Trace.request) ->
            rejected := Hashtbl.find originals r.Trace.id :: !rejected)
          s.Simulator.rejected;
        List.iter
          (fun (o : Simulator.request_outcome) ->
            let orig = Hashtbl.find originals o.Simulator.request.Trace.id in
            let p = Hashtbl.find prefill_outcome orig.Trace.id in
            let rest = orig.Trace.output_len - 1 in
            merged :=
              {
                Simulator.request = orig;
                (* First token came off the prefill side; everything
                   after it - transfer, decode queueing, decode steps -
                   spreads over the remaining tokens. *)
                ttft_s = p.Simulator.ttft_s;
                tbt_s =
                  (o.Simulator.finish_s -. p.Simulator.finish_s)
                  /. float_of_int rest;
                finish_s = o.Simulator.finish_s;
              }
              :: !merged)
          s.Simulator.outcomes)
      d_nodes
  end;
  (* --- aggregate --- *)
  let outcomes =
    List.sort
      (fun (a : Simulator.request_outcome) (b : Simulator.request_outcome) ->
        compare
          (a.Simulator.finish_s, a.Simulator.request.Trace.id)
          (b.Simulator.finish_s, b.Simulator.request.Trace.id))
      !merged
  in
  let rejected = List.sort by_arrival_id !rejected in
  let stats_by_pool =
    List.map
      (fun (p, nds) ->
        (p, Array.map (fun nd -> Simulator.Instance.stats nd.inst) nds))
      pools_nodes
  in
  let makespan_s =
    List.fold_left
      (fun acc (_, sts) ->
        Array.fold_left
          (fun acc s -> Float.max acc s.Simulator.makespan_s)
          acc sts)
      0. stats_by_pool
  in
  let first_arrival = (List.hd requests).Trace.arrival_s in
  let span = makespan_s -. first_arrival in
  let span = if span > 0. && Float.is_finite span then span else 0. in
  let pools =
    List.map
      (fun (p, sts) ->
        let sum f = Array.fold_left (fun acc s -> acc + f s) 0 sts in
        let busy =
          Array.fold_left (fun acc s -> acc +. s.Simulator.busy_s) 0. sts
        in
        let occ_weighted =
          Array.fold_left
            (fun acc s ->
              acc +. (s.Simulator.mean_batch_occupancy *. s.Simulator.busy_s))
            0. sts
        in
        {
          pool_name = p.name;
          pool_role = p.role;
          pool_count = p.count;
          per_group = sts;
          pool_completed = sum (fun s -> List.length s.Simulator.outcomes);
          pool_rejected = sum (fun s -> List.length s.Simulator.rejected);
          pool_produced_tokens = sum (fun s -> s.Simulator.produced_tokens);
          utilization =
            (if span > 0. then busy /. (float_of_int p.count *. span) else 0.);
          occupancy = (if busy > 0. then occ_weighted /. busy else 0.);
        })
      stats_by_pool
  in
  let generated_tokens =
    List.fold_left
      (fun acc (o : Simulator.request_outcome) ->
        acc + o.Simulator.request.Trace.output_len)
      0 outcomes
  in
  let produced_tokens =
    List.fold_left (fun acc ps -> acc + ps.pool_produced_tokens) 0 pools
  in
  let completed = List.length outcomes in
  let ttfts = List.map (fun (o : Simulator.request_outcome) -> o.Simulator.ttft_s) outcomes in
  let ttfts = if ttfts = [] then [ 0. ] else ttfts in
  let tbts =
    List.filter_map
      (fun (o : Simulator.request_outcome) ->
        if o.Simulator.tbt_s > 0. then Some o.Simulator.tbt_s else None)
      outcomes
  in
  let tbts = if tbts = [] then [ 0. ] else tbts in
  {
    outcomes;
    rejected;
    completed;
    rejected_count = List.length rejected;
    slo_attained = None;
    pools;
    groups = Array.length all_nodes;
    makespan_s;
    serving_span_s = span;
    generated_tokens;
    produced_tokens;
    throughput_tokens_per_s =
      (if span > 0. then float_of_int generated_tokens /. span else 0.);
    requests_per_s =
      (if span > 0. then float_of_int completed /. span else 0.);
    p50_ttft_s = Stats.percentile 50. ttfts;
    p95_ttft_s = Stats.percentile 95. ttfts;
    p50_tbt_s = Stats.percentile 50. tbts;
    p95_tbt_s = Stats.percentile 95. tbts;
    handoff_transfers = !handoff_transfers;
    handoff_bytes = !handoff_bytes;
    mean_handoff_s =
      (if !handoff_transfers > 0 then
         !handoff_seconds /. float_of_int !handoff_transfers
       else 0.);
  }

let run ?calib (t : t) model requests =
  if not (Span.enabled ()) then run_fleet ?calib t model requests
  else
    Span.with_span "fleet.run"
      ~attrs:
        [ ("pools", Span.Int (List.length t.pools));
          ( "groups",
            Span.Int (List.fold_left (fun acc p -> acc + p.count) 0 t.pools) );
          ("routing", Span.Str (routing_to_string t.routing));
          ("disaggregated", Span.Str (string_of_bool (disaggregated t)));
          ("requests", Span.Int (List.length requests)) ]
      (fun () ->
        let s = run_fleet ?calib t model requests in
        Span.add_attr "generated_tokens" (Span.Int s.generated_tokens);
        Span.add_attr "makespan_s" (Span.Float s.makespan_s);
        s)

(* --- the streaming fleet run ---

   Bounded-memory, domain-parallel execution for traces far too large to
   materialize. The router thread alternates two phases in rounds of
   [epoch] requests:

   - routing: pull the next [epoch] requests off the stream and submit
     them (sequentially, in arrival order - submission order is the FCFS
     contract);
   - stepping: advance every node in parallel to the arrival time of the
     first request of the next round (each node is an independent
     scheduler between routing decisions), then fold each node's freshly
     finished outcomes - delivered through instance sinks into per-node
     buffers - into online accumulators, walking nodes in fixed array
     order.

   Determinism: node executions depend only on their submitted sets (the
   router fixes those before any parallel work), and the merge walks
   nodes in array order on the calling domain, so every accumulated
   float sees the same operands in the same order whatever the job
   count - 1-job and N-job runs are bit-identical. Peak memory is
   O(groups * (resident batch + backlog) + epoch + sketch), independent
   of trace length. *)

type stream_acc = {
  acc_ttft : Stats.Online.t;
  acc_tbt : Stats.Online.t;
  mutable acc_completed : int;
  mutable acc_generated : int;
  mutable acc_rejected : int;
  mutable acc_slo_ok : int;
  slo : (float * float) option;
}

let note_outcome acc ~(orig : Trace.request) ~ttft ~tbt =
  acc.acc_completed <- acc.acc_completed + 1;
  acc.acc_generated <- acc.acc_generated + orig.Trace.output_len;
  Stats.Online.add acc.acc_ttft ttft;
  if tbt > 0. then Stats.Online.add acc.acc_tbt tbt;
  match acc.slo with
  | Some (slo_ttft, slo_tbt) ->
      if ttft <= slo_ttft && (orig.Trace.output_len <= 1 || tbt <= slo_tbt)
      then acc.acc_slo_ok <- acc.acc_slo_ok + 1
  | None -> ()

(* Per-node capture buffers fed by the instance sinks. A sink runs on
   whichever domain steps its node and touches only that node's buffer;
   the router thread empties the buffers between rounds. *)
type capture = {
  c_out : Simulator.request_outcome list ref;
  c_rej : Trace.request list ref;
}

let attach_captures nodes =
  Array.map
    (fun nd ->
      let c = { c_out = ref []; c_rej = ref [] } in
      Simulator.Instance.set_sinks
        ~on_outcome:(fun o -> c.c_out := o :: !(c.c_out))
        ~on_reject:(fun r -> c.c_rej := r :: !(c.c_rej))
        nd.inst;
      c)
    nodes

(* Drain a capture buffer in the node's own completion order. *)
let take_buffer buf =
  let l = List.rev !buf in
  buf := [];
  l

let run_stream ?calib ?(epoch = 512) ?slo (t : t) model stream =
  if epoch < 1 then invalid_arg "Cluster.run_stream: epoch must be >= 1";
  (match slo with
  | Some (ttft, tbt) when ttft <= 0. || tbt <= 0. ->
      invalid_arg "Cluster.run_stream: SLO objectives must be positive"
  | _ -> ());
  let pools_nodes = make_nodes ?calib t model in
  let all_nodes = Array.concat (List.map snd pools_nodes) in
  let acc =
    {
      acc_ttft = Stats.Online.create ();
      acc_tbt = Stats.Online.create ();
      acc_completed = 0;
      acc_generated = 0;
      acc_rejected = 0;
      acc_slo_ok = 0;
      slo;
    }
  in
  let handoff_transfers = ref 0 in
  let handoff_bytes = ref 0. in
  let handoff_seconds = ref 0. in
  let pending = ref (Trace.next stream) in
  let first_arrival =
    match !pending with
    | None -> invalid_arg "Cluster.run_stream: empty trace"
    | Some r -> r.Trace.arrival_s
  in
  (* Pull and submit up to [epoch] requests through [submit_one]; leaves
     [pending] holding the first unsubmitted request (the next round's
     horizon) or [None] at end of stream. *)
  let route_round submit_one =
    let n = ref 0 in
    let continue = ref true in
    while !continue do
      match !pending with
      | Some r when !n < epoch ->
          submit_one r;
          incr n;
          pending := Trace.next stream
      | _ -> continue := false
    done
  in
  if not (disaggregated t) then begin
    let captures = attach_captures all_nodes in
    let router = { nodes = all_nodes; routing = t.routing; cursor = 0 } in
    let merge_round () =
      Array.iteri
        (fun i _nd ->
          List.iter
            (fun (o : Simulator.request_outcome) ->
              note_outcome acc ~orig:o.Simulator.request
                ~ttft:o.Simulator.ttft_s ~tbt:o.Simulator.tbt_s)
            (take_buffer captures.(i).c_out);
          List.iter
            (fun (_ : Trace.request) ->
              acc.acc_rejected <- acc.acc_rejected + 1)
            (take_buffer captures.(i).c_rej))
        all_nodes
    in
    while !pending <> None do
      route_round (fun r ->
          dispatch ~advance_to_arrival:false router ~prefilled:false r);
      (match !pending with
      | Some next -> advance_nodes all_nodes next.Trace.arrival_s
      | None -> drain_nodes all_nodes);
      merge_round ()
    done
  end
  else begin
    let bw = handoff_bytes_per_s t in
    if (not (Float.is_finite bw)) || bw <= 0. then
      invalid_arg
        "Cluster.run_stream: fleet has no positive interconnect bandwidth \
         for the KV handoff; pass ~handoff_gb_s";
    let p_nodes =
      Array.concat
        (List.filter_map
           (fun (p, nds) -> if p.role = Prefill then Some nds else None)
           pools_nodes)
    in
    let d_nodes =
      Array.concat
        (List.filter_map
           (fun (p, nds) -> if p.role = Decode then Some nds else None)
           pools_nodes)
    in
    let p_captures = attach_captures p_nodes in
    let d_captures = attach_captures d_nodes in
    let p_router = { nodes = p_nodes; routing = t.routing; cursor = 0 } in
    let d_router = { nodes = d_nodes; routing = t.routing; cursor = 0 } in
    (* In-flight bookkeeping, bounded by resident requests: the original
       request while its prefill runs, then (original, prefill ttft,
       prefill finish) while its decode continuation runs. *)
    let pending_prefill : (int, Trace.request) Hashtbl.t =
      Hashtbl.create 1024
    in
    let pending_decode : (int, Trace.request * float * float) Hashtbl.t =
      Hashtbl.create 1024
    in
    (* Completed prefills waiting to re-arrive on the decode side, keyed
       (arrival after transfer, id): the min-heap replaces the
       sort-the-whole-phase step of the materialized path and holds only
       in-flight handoffs. *)
    let ready : (float * int, Trace.request * float * float) Heap.t =
      Heap.create ~cmp:compare
    in
    let merge_prefill_round () =
      Array.iteri
        (fun i _nd ->
          List.iter
            (fun (r : Trace.request) ->
              Hashtbl.remove pending_prefill r.Trace.id;
              acc.acc_rejected <- acc.acc_rejected + 1)
            (take_buffer p_captures.(i).c_rej);
          List.iter
            (fun (o : Simulator.request_outcome) ->
              let id = o.Simulator.request.Trace.id in
              let orig = Hashtbl.find pending_prefill id in
              Hashtbl.remove pending_prefill id;
              if orig.Trace.output_len <= 1 then
                note_outcome acc ~orig ~ttft:o.Simulator.ttft_s ~tbt:0.
              else begin
                let bytes =
                  handoff_kv_bytes model ~input_len:orig.Trace.input_len
                in
                let transfer = bytes /. bw in
                incr handoff_transfers;
                handoff_bytes := !handoff_bytes +. bytes;
                handoff_seconds := !handoff_seconds +. transfer;
                Metrics.incr (Lazy.force m_handoffs);
                Metrics.observe (Lazy.force m_handoff_s) transfer;
                Heap.push ready
                  (o.Simulator.finish_s +. transfer, id)
                  (orig, o.Simulator.ttft_s, o.Simulator.finish_s)
              end)
            (take_buffer p_captures.(i).c_out))
        p_nodes
    in
    let merge_decode_round () =
      Array.iteri
        (fun i _nd ->
          List.iter
            (fun (r : Trace.request) ->
              Hashtbl.remove pending_decode r.Trace.id;
              acc.acc_rejected <- acc.acc_rejected + 1)
            (take_buffer d_captures.(i).c_rej);
          List.iter
            (fun (o : Simulator.request_outcome) ->
              let id = o.Simulator.request.Trace.id in
              let orig, p_ttft, p_finish = Hashtbl.find pending_decode id in
              Hashtbl.remove pending_decode id;
              let rest = orig.Trace.output_len - 1 in
              note_outcome acc ~orig ~ttft:p_ttft
                ~tbt:
                  ((o.Simulator.finish_s -. p_finish) /. float_of_int rest))
            (take_buffer d_captures.(i).c_out))
        d_nodes
    in
    (* Dispatch every completed handoff that can no longer be preceded:
       once all prefill nodes have advanced to [watermark], any future
       completion finishes strictly after it, so heap entries at or below
       the watermark are final and pop in global (arrival, id) order -
       exactly the sorted dispatch order of the materialized path. *)
    let dispatch_ready watermark =
      let continue = ref true in
      while !continue do
        match Heap.min_key ready with
        | Some (arr, _) when arr <= watermark -> (
            match Heap.pop ready with
            | Some ((arr, id), (orig, p_ttft, p_finish)) ->
                Hashtbl.replace pending_decode id (orig, p_ttft, p_finish);
                dispatch ~advance_to_arrival:false d_router ~prefilled:true
                  {
                    orig with
                    Trace.arrival_s = arr;
                    input_len = orig.Trace.input_len + 1;
                    output_len = orig.Trace.output_len - 1;
                  }
            | None -> assert false)
        | _ -> continue := false
      done
    in
    while !pending <> None do
      route_round (fun r ->
          if Hashtbl.mem pending_prefill r.Trace.id then
            invalid_arg
              (Printf.sprintf
                 "Cluster.run_stream: duplicate request id %d (ids key the \
                  prefill-to-decode handoff match)"
                 r.Trace.id);
          Hashtbl.replace pending_prefill r.Trace.id r;
          dispatch ~advance_to_arrival:false p_router ~prefilled:false
            { r with Trace.output_len = 1 });
      match !pending with
      | Some next ->
          let horizon = next.Trace.arrival_s in
          advance_nodes p_nodes horizon;
          merge_prefill_round ();
          dispatch_ready horizon;
          advance_nodes d_nodes horizon;
          merge_decode_round ()
      | None ->
          drain_nodes p_nodes;
          merge_prefill_round ();
          dispatch_ready infinity;
          drain_nodes d_nodes;
          merge_decode_round ()
    done
  end;
  (* --- aggregate (from counters and sketches only) --- *)
  let stats_by_pool =
    List.map
      (fun (p, nds) ->
        (p, nds, Array.map (fun nd -> Simulator.Instance.stats nd.inst) nds))
      pools_nodes
  in
  let makespan_s =
    List.fold_left
      (fun m (_, _, sts) ->
        Array.fold_left
          (fun m s -> Float.max m s.Simulator.makespan_s)
          m sts)
      0. stats_by_pool
  in
  let span = makespan_s -. first_arrival in
  let span = if span > 0. && Float.is_finite span then span else 0. in
  let pools =
    List.map
      (fun (p, nds, sts) ->
        let busy =
          Array.fold_left (fun a s -> a +. s.Simulator.busy_s) 0. sts
        in
        let occ_weighted =
          Array.fold_left
            (fun a s ->
              a +. (s.Simulator.mean_batch_occupancy *. s.Simulator.busy_s))
            0. sts
        in
        let sum_nodes f = Array.fold_left (fun a nd -> a + f nd.inst) 0 nds in
        {
          pool_name = p.name;
          pool_role = p.role;
          pool_count = p.count;
          per_group = sts;
          pool_completed = sum_nodes Simulator.Instance.completed_count;
          pool_rejected = sum_nodes Simulator.Instance.rejected_count;
          pool_produced_tokens =
            Array.fold_left
              (fun a s -> a + s.Simulator.produced_tokens)
              0 sts;
          utilization =
            (if span > 0. then busy /. (float_of_int p.count *. span) else 0.);
          occupancy = (if busy > 0. then occ_weighted /. busy else 0.);
        })
      stats_by_pool
  in
  let produced_tokens =
    List.fold_left (fun a ps -> a + ps.pool_produced_tokens) 0 pools
  in
  let q sketch p =
    if Stats.Online.count sketch = 0 then 0. else Stats.Online.quantile sketch p
  in
  {
    outcomes = [];
    rejected = [];
    completed = acc.acc_completed;
    rejected_count = acc.acc_rejected;
    slo_attained =
      (match slo with
      | None -> None
      | Some _ ->
          Some
            (if acc.acc_completed = 0 then 1.
             else
               float_of_int acc.acc_slo_ok /. float_of_int acc.acc_completed));
    pools;
    groups = Array.length all_nodes;
    makespan_s;
    serving_span_s = span;
    generated_tokens = acc.acc_generated;
    produced_tokens;
    throughput_tokens_per_s =
      (if span > 0. then float_of_int acc.acc_generated /. span else 0.);
    requests_per_s =
      (if span > 0. then float_of_int acc.acc_completed /. span else 0.);
    p50_ttft_s = q acc.acc_ttft 50.;
    p95_ttft_s = q acc.acc_ttft 95.;
    p50_tbt_s = q acc.acc_tbt 50.;
    p95_tbt_s = q acc.acc_tbt 95.;
    handoff_transfers = !handoff_transfers;
    handoff_bytes = !handoff_bytes;
    mean_handoff_s =
      (if !handoff_transfers > 0 then
         !handoff_seconds /. float_of_int !handoff_transfers
       else 0.);
  }

let slo_attainment fs ~ttft_s ~tbt_s =
  if ttft_s <= 0. || tbt_s <= 0. then
    invalid_arg "Cluster.slo_attainment: objectives must be positive";
  match fs.outcomes with
  | [] -> 1.
  | outcomes ->
      let ok (o : Simulator.request_outcome) =
        o.Simulator.ttft_s <= ttft_s
        && (o.Simulator.request.Trace.output_len <= 1
           || o.Simulator.tbt_s <= tbt_s)
      in
      float_of_int (List.length (List.filter ok outcomes))
      /. float_of_int (List.length outcomes)

let devices_for_qps fs ~target_qps =
  if target_qps <= 0. || not (Float.is_finite target_qps) then
    invalid_arg "Cluster.devices_for_qps: target_qps must be finite and positive";
  if fs.requests_per_s <= 0. then []
  else
    List.map
      (fun ps ->
        (* The pool sustained the fleet's request rate at its measured
           utilization, so its groups saturate at [rate / utilization];
           scale the group count to put [target_qps] at full busy. *)
        let need =
          int_of_float
            (ceil
               (target_qps *. ps.utilization *. float_of_int ps.pool_count
               /. fs.requests_per_s))
        in
        (ps.pool_name, max 1 need))
      fs.pools

let silicon_usd_per_mtok ?(lifetime_years = 3.) ~die_cost_usd (t : t) fs =
  let silicon =
    List.fold_left
      (fun acc p ->
        acc
        +. float_of_int (p.count * p.config.Simulator.tp)
           *. die_cost_usd p.device)
      0. t.pools
  in
  let tokens =
    fs.throughput_tokens_per_s *. lifetime_years *. 365.25 *. 86400.
  in
  (* No sustained tokens means no meaningful per-token cost: say so with
     [None] rather than leaking [infinity] (or, with a zero-cost fleet,
     0/0 = NaN) into downstream arithmetic. *)
  if tokens > 0. && Float.is_finite tokens then Some (silicon /. tokens *. 1e6)
  else None

let pp_fleet_stats ppf fs =
  Format.fprintf ppf
    "%d requests%s, %d tokens in %.1f s (%.0f tok/s, %.2f req/s) on %d \
     groups; TTFT p50/p95 %.0f/%.0f ms; TBT p50/p95 %.1f/%.1f ms%s"
    fs.completed
    (match fs.rejected_count with
    | 0 -> ""
    | n -> Printf.sprintf " (+%d rejected)" n)
    fs.generated_tokens fs.makespan_s fs.throughput_tokens_per_s
    fs.requests_per_s fs.groups (1e3 *. fs.p50_ttft_s) (1e3 *. fs.p95_ttft_s)
    (1e3 *. fs.p50_tbt_s) (1e3 *. fs.p95_tbt_s)
    (if fs.handoff_transfers = 0 then ""
     else
       Printf.sprintf "; %d KV handoffs (%.1f GiB, mean %.2f ms)"
         fs.handoff_transfers
         (fs.handoff_bytes /. (1024. ** 3.))
         (1e3 *. fs.mean_handoff_s));
  List.iter
    (fun ps ->
      Format.fprintf ppf
        "@\n  %-16s %-8s x%-3d util %4.0f%%  occ %5.1f  %6d done  %3d rej  \
         %9d tok"
        ps.pool_name
        (role_to_string ps.pool_role)
        ps.pool_count
        (100. *. ps.utilization)
        ps.occupancy ps.pool_completed ps.pool_rejected ps.pool_produced_tokens)
    fs.pools
