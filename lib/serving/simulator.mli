(** Iteration-level (continuous-batching) serving simulator, in the style
    of Orca/vLLM schedulers, driven by the analytical per-layer latencies
    of {!Acs_perfmodel.Engine}.

    Each scheduler iteration either admits waiting requests (running their
    prefill as a batch) or generates one token for every active request;
    step latency comes from the device model at the current batch size and
    average context, times the layer count. Memory capacity bounds the
    resident KV cache and therefore the achievable batch.

    The simulator is instrumented: iteration counters, admitted-request
    totals and a batch-occupancy histogram always accumulate in
    {!Acs_util.Metrics}, and with {!Acs_util.Trace} enabled each prefill
    batch and decode step emits a span (admitted count, batch, context,
    KV headroom) nested under a per-run [serve.run] root. *)

type config = {
  tp : int;  (** tensor-parallel group size *)
  max_batch : int;  (** scheduler cap on concurrent requests *)
}

val default_config : config
(** tp = 4, max_batch = 64. *)

type request_outcome = {
  request : Trace.request;
  ttft_s : float;  (** first token latency, including queueing *)
  tbt_s : float;  (** mean time between subsequent tokens *)
  finish_s : float;
}

type stats = {
  outcomes : request_outcome list;
  makespan_s : float;
      (** absolute clock at the last completion (the trace starts at 0) *)
  generated_tokens : int;
  throughput_tokens_per_s : float;
      (** generated tokens over the serving span, i.e. from the first
          arrival to the last completion — idle time before the first
          request does not dilute it; 0 on a degenerate zero-length span *)
  mean_batch_occupancy : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  kv_limited_batch : int;
      (** the batch bound implied by HBM capacity at mean context; equals
          [max_batch] when memory is not the binder *)
}

val kv_capacity_batch :
  config -> Acs_hardware.Device.t -> Acs_workload.Model.t -> context:int -> int
(** How many requests fit in HBM once weights are resident. *)

val slo_attainment : stats -> ttft_s:float -> tbt_s:float -> float
(** Fraction of requests meeting both latency objectives (a single-token
    request trivially meets the TBT objective). Always in [0, 1]: an
    empty outcome list reports 1 (vacuously met) instead of 0/0 = nan. *)

val run :
  ?config:config ->
  ?calib:Acs_perfmodel.Calib.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Trace.request list ->
  stats
(** Simulates the whole trace; raises [Invalid_argument] on an empty
    trace. *)

val pp_stats : Format.formatter -> stats -> unit
