(** Iteration-level (continuous-batching) serving simulator, in the style
    of Orca/vLLM schedulers, driven by the analytical per-layer latencies
    of {!Acs_perfmodel.Engine} on its compiled fast path.

    The scheduler is event-driven: each iteration either admits waiting
    requests (running their prefill as one batch) or generates one token
    for every active request, and with nothing resident the clock jumps
    straight to the next arrival. Step latency comes from the device model
    at the step's batch size and (bucketed) context; on the default
    {!Compiled} engine each distinct (phase, batch, context-bucket) step
    is compiled once with {!Acs_perfmodel.Engine.compile}, evaluated with
    [simulate_compiled] and memoized, so long traces pay a few hundred
    engine calls instead of one per step.

    KV safety is by construction: admission reserves a request's whole KV
    trajectory (prompt plus every token it will generate), and a request
    is admitted only when that reservation fits in HBM next to the
    reservations of everything already resident (weights included).
    Admission is strictly FCFS - a non-fitting queue head blocks later
    arrivals rather than being bypassed. Requests whose KV can never fit
    even alone are reported in [rejected] instead of pinning the queue,
    and a deployment whose weights alone exceed HBM raises {!Infeasible}
    rather than simulating an impossible configuration.

    The simulator is instrumented: iteration counters, admitted/rejected
    totals and a batch-occupancy histogram (prefill and decode iterations
    alike) always accumulate in {!Acs_util.Metrics}, and with
    {!Acs_util.Trace} enabled each prefill batch and decode step emits a
    span (batch, context, free KV bytes) nested under a per-run
    [serve.run] root. *)

type policy =
  | Prefill_priority
      (** admit whenever anything fits; decode only when nothing is
          admissible. Minimizes TTFT under load. *)
  | Decode_fair
      (** strict interleave under contention: after a prefill batch, at
          least one decode step runs before the next admission. Bounds the
          TBT stalls that prefill bursts inject. *)

type engine =
  | Legacy  (** one {!Acs_perfmodel.Engine.simulate} call per step *)
  | Compiled
      (** {!Acs_perfmodel.Engine.compile} + [simulate_compiled], memoized
          per (phase, batch, context-bucket). Identical step times (the
          compiled engine is bit-identical per the PR 4 property suite);
          the [serving_throughput] bench records the speed gap. *)

type config = {
  tp : int;  (** tensor-parallel group size *)
  max_batch : int;  (** scheduler cap on concurrent requests *)
  policy : policy;
  engine : engine;
  context_bucket : int;
      (** step lengths are rounded up to this granularity before hitting
          the engine (and the memo); 1 disables bucketing. Both engines
          bucket identically, so the choice never splits their results. *)
}

val default_config : config
(** tp = 4, max_batch = 64, [Prefill_priority], [Compiled], bucket 64. *)

val policy_to_string : policy -> string
val engine_to_string : engine -> string

exception Infeasible of string
(** Raised by {!run} when the model's weights alone exceed the device's
    HBM at the configured [tp]: no KV cache fits, so no trace can be
    served. The message names the model, device and both byte totals. *)

type request_outcome = {
  request : Trace.request;
  ttft_s : float;  (** first token latency, including queueing *)
  tbt_s : float;  (** mean time between subsequent tokens *)
  finish_s : float;
}

type stats = {
  outcomes : request_outcome list;
      (** completed requests only; see [rejected] for the rest *)
  rejected : Trace.request list;
      (** requests whose KV trajectory exceeds free HBM even in an
          otherwise empty batch - the deployment can never serve them *)
  makespan_s : float;
      (** absolute clock at the last completion (the trace starts at 0) *)
  generated_tokens : int;
      (** sum of [output_len] over completed requests *)
  produced_tokens : int;
      (** tokens the scheduler actually generated, counted step by step
          (one per active request per decode iteration, plus the first
          token each prefill emits). Token conservation is
          [produced_tokens = sum of (max 1 output_len) over completed
          requests] - the property suite holds it to account. *)
  throughput_tokens_per_s : float;
      (** generated tokens over the serving span, i.e. from the first
          arrival to the last completion — idle time before the first
          request does not dilute it; 0 on a degenerate zero-length span *)
  mean_batch_occupancy : float;
      (** time-weighted mean batch size across {e all} iterations,
          prefill batches included *)
  busy_s : float;
      (** seconds the device spent running prefill batches or decode
          steps - the makespan minus empty-batch idle time. Utilization
          over a span is [busy_s / span]; {!Cluster} reports it per
          pool. *)
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  kv_limited_batch : int;
      (** informational: the batch bound HBM implies at the trace's mean
          context (0 when not even one such request fits). Admission no
          longer uses it - per-request reservations do - but it remains
          the right scale bar for [mean_batch_occupancy]. *)
  prefill_batches : int;
  decode_steps : int;
  peak_hbm_bytes : float;
      (** high-water mark of weights + live KV across the run; the KV
          safety invariant is [peak_hbm_bytes <= hbm_capacity_bytes] *)
  hbm_capacity_bytes : float;
}

val kv_capacity_batch :
  config -> Acs_hardware.Device.t -> Acs_workload.Model.t -> context:int -> int
(** How many requests of [context] tokens fit in HBM once weights are
    resident (0 when weights leave no room, or none fits). *)

val slo_attainment : stats -> ttft_s:float -> tbt_s:float -> float
(** Fraction of completed requests meeting both latency objectives (a
    single-token request trivially meets the TBT objective). Always in
    [0, 1]: an empty outcome list reports 1 (vacuously met) instead of
    0/0 = nan. *)

val run :
  ?config:config ->
  ?calib:Acs_perfmodel.Calib.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Trace.request list ->
  stats
(** Simulates the whole trace; raises [Invalid_argument] on an empty
    trace or a non-positive [tp]/[max_batch], and {!Infeasible} when the
    weights alone exceed HBM. [rejected] is reported in arrival order.
    Implemented as submit-everything-then-drain over {!Instance}. *)

val pp_stats : Format.formatter -> stats -> unit

(** {2 Incremental stepping (the fleet building block)}

    {!run} simulates one device against a complete trace. A fleet
    simulator ({!Cluster}) instead interleaves {e submission} with
    {e stepping} across many devices: requests are routed as they arrive,
    and each device advances its own clock one scheduler iteration at a
    time. [stepper] and [Instance] expose exactly that seam. *)

type stepper = {
  prefill_s : batch:int -> input_len:int -> float;
  decode_s : batch:int -> context:int -> float;
}
(** Step-latency oracle for one (config, device, model) triple: maps
    (phase, batch, length) to seconds through the configured engine,
    bucketing lengths per the config before evaluation. On the [Compiled]
    engine the memo lives inside the stepper value, so sharing one
    stepper across the instances of identical devices shares the memo - a
    fleet of N equal devices pays the engine once, not N times, per
    distinct step shape. The fields are exposed (rather than kept
    abstract) because {!Cluster}'s phase-affine router prices a request
    on each candidate device with them. *)

val make_stepper :
  ?calib:Acs_perfmodel.Calib.t ->
  config:config ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  stepper

module Instance : sig
  type t
  (** One device's scheduler state: FCFS waiting queue, resident batch,
      KV reservations and its own clock. *)

  val create :
    ?calib:Acs_perfmodel.Calib.t ->
    ?stepper:stepper ->
    config:config ->
    Acs_hardware.Device.t ->
    Acs_workload.Model.t ->
    t
  (** Validates like {!run} (raises [Invalid_argument] / {!Infeasible}).
      Pass [stepper] to share a step-time memo across instances of
      identical devices; it must have been built from the same
      (config, device, model). *)

  val submit : ?prefilled:bool -> t -> Trace.request -> unit
  (** Enqueue a request. Submissions must be in arrival order (the queue
      is FCFS by construction); a request whose KV can never fit is
      recorded as rejected immediately. [prefilled] marks a request whose
      KV already exists elsewhere (disaggregated handoff): admission
      reserves its KV trajectory but runs no prefill batch - it joins the
      decode set instantly and its first token is its first local decode
      step, so its [ttft_s] measures decode-side queueing from
      [arrival_s] (which the caller sets to prefill-finish plus transfer
      delay). *)

  val now : t -> float
  (** The instance's clock (last completed iteration). *)

  val idle : t -> bool
  (** No waiting and no resident requests. *)

  val load : t -> int
  (** Outstanding-work estimate in tokens (unprocessed prompt tokens plus
      tokens still to generate) - the least-loaded routing signal. *)

  val step : t -> unit
  (** One scheduler iteration: join prefilled arrivals, then either run a
      prefill batch, a decode step, or jump to the next arrival. *)

  val run_until : t -> float -> unit
  (** Step while work remains and [now] is before the horizon. The last
      step may overshoot the horizon (iterations are atomic). *)

  val drain : t -> unit
  (** Step until {!idle}. *)

  val set_sinks :
    ?on_outcome:(request_outcome -> unit) ->
    ?on_reject:(Trace.request -> unit) ->
    t ->
    unit
  (** Install bounded-memory delivery: finished outcomes and rejected
      requests are passed to the sinks at the moment they occur instead of
      being retained for {!stats} (whose [outcomes]/[rejected] then stay
      empty; the counters below and every other stats field remain
      exact). Sinks run on whichever domain is stepping the instance, so
      they must only touch state owned by this instance. *)

  val completed_count : t -> int
  val rejected_count : t -> int

  val generated_count : t -> int
  (** Sum of [output_len] over completed requests (equals the
      [generated_tokens] a full outcome list would yield). *)

  val stats : t -> stats
  (** Snapshot of the accounting; call after {!drain} for final stats. *)
end
