type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

(* [Random.State.float st 1.] draws from [0, 1): 0 is a real (if rare)
   return value and values within one ulp of 1 occur for some seeds.
   Both endpoints poison the inverse-CDF transforms below - [log 0.] is
   -inf, and [int_of_float] of an infinite quotient is undefined (it can
   come back huge or negative). Clamp the variate into the open interval
   before taking any logarithm. *)
let clamp_unit u = Float.max 1e-12 (Float.min u (1. -. 1e-12))

let exponential_of_u ~rate u = -.log (clamp_unit u) /. rate
let exponential state ~rate = exponential_of_u ~rate (Random.State.float state 1.)

let geometric_of_u ~mean u =
  (* Support >= 1 with the requested mean. *)
  if mean <= 1 then 1
  else begin
    let p = 1. /. float_of_int mean in
    let u = clamp_unit u in
    1 + int_of_float (log (1. -. u) /. log (1. -. p))
  end

let geometric state ~mean = geometric_of_u ~mean (Random.State.float state 1.)

let min_mean_len = 8

(* Lengths have a hard floor of [min_mean_len] tokens (a 0-token prompt or
   reply is not a request). The floor used to be applied as a [max 8] clamp
   on a plain geometric draw, which silently inflated the realized mean
   above the requested one (worst for small means: a requested mean of 8
   realized at ~11.6, +45% offered load). Shifting the distribution instead
   - floor - 1 plus a geometric with mean (mean - floor + 1) - keeps the
   support at [floor, inf) {e and} the realized mean at the requested mean,
   so the offered load of every serving experiment is what its parameters
   say. Means below the floor are rejected rather than rounded up. *)
let floored_geometric state ~mean =
  min_mean_len - 1 + geometric state ~mean:(mean - (min_mean_len - 1))

(* ------------------------------------------------------------------ *)
(* Rate shapes                                                        *)
(* ------------------------------------------------------------------ *)

type shape =
  | Constant
  | Diurnal of { period_s : float; trough : float }
  | Bursts of { every_s : float; width_s : float; factor : float }
  | Compose of shape * shape

let rec validate_shape = function
  | Constant -> ()
  | Diurnal { period_s; trough } ->
      if period_s <= 0. then invalid_arg "Trace.stream: diurnal period must be positive";
      if trough < 0. || trough > 1. then
        invalid_arg "Trace.stream: diurnal trough must be in [0,1]"
  | Bursts { every_s; width_s; factor } ->
      if every_s <= 0. then invalid_arg "Trace.stream: burst interval must be positive";
      if width_s < 0. || width_s > every_s then
        invalid_arg "Trace.stream: burst width must be in [0, interval]";
      if factor <= 0. || not (Float.is_finite factor) then
        invalid_arg "Trace.stream: burst factor must be finite and positive"
  | Compose (a, b) ->
      validate_shape a;
      validate_shape b

(* Instantaneous rate multiplier m(t) and its supremum over all t. The
   supremum drives the Lewis-Shedler thinning below: candidates arrive at
   the peak rate and survive with probability m(t)/peak. *)
let rec shape_multiplier shape t =
  match shape with
  | Constant -> 1.
  | Diurnal { period_s; trough } ->
      (* Smooth day/night swing: 1 at mid-period peaks, [trough] at t=0. *)
      trough
      +. ((1. -. trough) *. 0.5
          *. (1. -. cos (2. *. Float.pi *. t /. period_s)))
  | Bursts { every_s; width_s; factor } ->
      if Float.rem t every_s < width_s then factor else 1.
  | Compose (a, b) -> shape_multiplier a t *. shape_multiplier b t

let rec shape_peak = function
  | Constant -> 1.
  | Diurnal _ -> 1.
  | Bursts { factor; _ } -> Float.max factor 1.
  | Compose (a, b) -> shape_peak a *. shape_peak b

(* ------------------------------------------------------------------ *)
(* Tenants                                                            *)
(* ------------------------------------------------------------------ *)

type tenant = { share : float; mean_input : int; mean_output : int }

let check_mean name mean =
  if mean < min_mean_len then
    invalid_arg
      (Printf.sprintf
         "Trace.%s: mean lengths must be >= %d (the length floor; smaller \
          means cannot be realized)"
         name min_mean_len)

(* ------------------------------------------------------------------ *)
(* Pull-based generation                                              *)
(* ------------------------------------------------------------------ *)

type stream = { mutable pull : unit -> request option }

let next s = s.pull ()

let of_list requests =
  let rest = ref requests in
  {
    pull =
      (fun () ->
        match !rest with
        | [] -> None
        | r :: tl ->
            rest := tl;
            Some r);
  }

let stream ?(seed = 42) ?(shape = Constant) ?(tenants = []) ?limit ?duration_s
    ~rate_per_s ~mean_input ~mean_output () =
  if rate_per_s <= 0. || not (Float.is_finite rate_per_s) then
    invalid_arg "Trace.stream: rate must be finite and positive";
  (match duration_s with
  | Some d when d <= 0. -> invalid_arg "Trace.stream: duration must be positive"
  | _ -> ());
  (match limit with
  | Some n when n <= 0 -> invalid_arg "Trace.stream: limit must be positive"
  | _ -> ());
  if duration_s = None && limit = None then
    invalid_arg "Trace.stream: unbounded stream (give ~duration_s or ~limit)";
  check_mean "stream" mean_input;
  check_mean "stream" mean_output;
  validate_shape shape;
  List.iter
    (fun t ->
      if t.share <= 0. || not (Float.is_finite t.share) then
        invalid_arg "Trace.stream: tenant shares must be finite and positive";
      check_mean "stream" t.mean_input;
      check_mean "stream" t.mean_output)
    tenants;
  let total_share = List.fold_left (fun acc t -> acc +. t.share) 0. tenants in
  let peak = shape_peak shape in
  let state = Random.State.make [| seed |] in
  let id = ref 0 in
  let clock = ref 0. in
  let done_ = ref false in
  let beyond t = match duration_s with Some d -> t > d | None -> false in
  let at_limit () = match limit with Some n -> !id >= n | None -> false in
  (* Draw order per emitted request: inter-arrival gap, [thinning accept if
     the shape is non-constant], [tenant pick if tenants are given], input
     length, output length. With a constant shape and no tenants this is
     gap/input/output - exactly the legacy [synthetic] order, which is what
     keeps [materialize (stream ...)] bit-identical to the seed traces
     every recorded experiment used. *)
  let rec gen () =
    if !done_ || at_limit () then begin
      done_ := true;
      None
    end
    else begin
      let t = !clock +. exponential state ~rate:(rate_per_s *. peak) in
      clock := t;
      if beyond t then begin
        done_ := true;
        None
      end
      else begin
        let accept =
          match shape with
          | Constant -> true
          | _ ->
              Random.State.float state 1. *. peak <= shape_multiplier shape t
        in
        if not accept then gen ()
        else begin
          let mean_input, mean_output =
            match tenants with
            | [] -> (mean_input, mean_output)
            | _ :: _ ->
                let u = Random.State.float state 1. *. total_share in
                let rec pick acc = function
                  | [ ten ] -> ten
                  | ten :: rest ->
                      let acc = acc +. ten.share in
                      if u < acc then ten else pick acc rest
                  | [] -> assert false
                in
                let ten = pick 0. tenants in
                (ten.mean_input, ten.mean_output)
          in
          let request =
            {
              id = !id;
              arrival_s = t;
              input_len = floored_geometric state ~mean:mean_input;
              output_len = floored_geometric state ~mean:mean_output;
            }
          in
          incr id;
          Some request
        end
      end
    end
  in
  { pull = gen }

let materialize s =
  let rec go acc = match next s with None -> List.rev acc | Some r -> go (r :: acc) in
  go []

let synthetic ?(seed = 42) ~rate_per_s ~duration_s ~mean_input ~mean_output () =
  if rate_per_s <= 0. || duration_s <= 0. then
    invalid_arg "Trace.synthetic: rate and duration must be positive";
  check_mean "synthetic" mean_input;
  check_mean "synthetic" mean_output;
  materialize (stream ~seed ~duration_s ~rate_per_s ~mean_input ~mean_output ())

let total_output_tokens requests =
  List.fold_left (fun acc r -> acc + r.output_len) 0 requests

let pp ppf r =
  Format.fprintf ppf "req %d @ %.3fs: %d in / %d out" r.id r.arrival_s
    r.input_len r.output_len
