type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

(* [Random.State.float st 1.] draws from [0, 1): 0 is a real (if rare)
   return value and values within one ulp of 1 occur for some seeds.
   Both endpoints poison the inverse-CDF transforms below - [log 0.] is
   -inf, and [int_of_float] of an infinite quotient is undefined (it can
   come back huge or negative). Clamp the variate into the open interval
   before taking any logarithm. *)
let clamp_unit u = Float.max 1e-12 (Float.min u (1. -. 1e-12))

let exponential_of_u ~rate u = -.log (clamp_unit u) /. rate
let exponential state ~rate = exponential_of_u ~rate (Random.State.float state 1.)

let geometric_of_u ~mean u =
  (* Support >= 1 with the requested mean. *)
  if mean <= 1 then 1
  else begin
    let p = 1. /. float_of_int mean in
    let u = clamp_unit u in
    1 + int_of_float (log (1. -. u) /. log (1. -. p))
  end

let geometric state ~mean = geometric_of_u ~mean (Random.State.float state 1.)

let min_mean_len = 8

(* Lengths have a hard floor of [min_mean_len] tokens (a 0-token prompt or
   reply is not a request). The floor used to be applied as a [max 8] clamp
   on a plain geometric draw, which silently inflated the realized mean
   above the requested one (worst for small means: a requested mean of 8
   realized at ~11.6, +45% offered load). Shifting the distribution instead
   - floor - 1 plus a geometric with mean (mean - floor + 1) - keeps the
   support at [floor, inf) {e and} the realized mean at the requested mean,
   so the offered load of every serving experiment is what its parameters
   say. Means below the floor are rejected rather than rounded up. *)
let floored_geometric state ~mean =
  min_mean_len - 1 + geometric state ~mean:(mean - (min_mean_len - 1))

let synthetic ?(seed = 42) ~rate_per_s ~duration_s ~mean_input ~mean_output () =
  if rate_per_s <= 0. || duration_s <= 0. then
    invalid_arg "Trace.synthetic: rate and duration must be positive";
  if mean_input < min_mean_len || mean_output < min_mean_len then
    invalid_arg
      (Printf.sprintf
         "Trace.synthetic: mean lengths must be >= %d (the length floor; \
          smaller means cannot be realized)"
         min_mean_len);
  let state = Random.State.make [| seed |] in
  let rec collect acc id clock =
    let clock = clock +. exponential state ~rate:rate_per_s in
    if clock > duration_s then List.rev acc
    else begin
      let request =
        {
          id;
          arrival_s = clock;
          input_len = floored_geometric state ~mean:mean_input;
          output_len = floored_geometric state ~mean:mean_output;
        }
      in
      collect (request :: acc) (id + 1) clock
    end
  in
  collect [] 0 0.

let total_output_tokens requests =
  List.fold_left (fun acc r -> acc + r.output_len) 0 requests

let pp ppf r =
  Format.fprintf ppf "req %d @ %.3fs: %d in / %d out" r.id r.arrival_s
    r.input_len r.output_len
