type request = {
  id : int;
  arrival_s : float;
  input_len : int;
  output_len : int;
}

(* [Random.State.float st 1.] draws from [0, 1): 0 is a real (if rare)
   return value and values within one ulp of 1 occur for some seeds.
   Both endpoints poison the inverse-CDF transforms below - [log 0.] is
   -inf, and [int_of_float] of an infinite quotient is undefined (it can
   come back huge or negative). Clamp the variate into the open interval
   before taking any logarithm. *)
let clamp_unit u = Float.max 1e-12 (Float.min u (1. -. 1e-12))

let exponential_of_u ~rate u = -.log (clamp_unit u) /. rate
let exponential state ~rate = exponential_of_u ~rate (Random.State.float state 1.)

let geometric_of_u ~mean u =
  (* Support >= 1 with the requested mean. *)
  if mean <= 1 then 1
  else begin
    let p = 1. /. float_of_int mean in
    let u = clamp_unit u in
    1 + int_of_float (log (1. -. u) /. log (1. -. p))
  end

let geometric state ~mean = geometric_of_u ~mean (Random.State.float state 1.)

let synthetic ?(seed = 42) ~rate_per_s ~duration_s ~mean_input ~mean_output () =
  if rate_per_s <= 0. || duration_s <= 0. then
    invalid_arg "Trace.synthetic: rate and duration must be positive";
  if mean_input <= 0 || mean_output <= 0 then
    invalid_arg "Trace.synthetic: mean lengths must be positive";
  let state = Random.State.make [| seed |] in
  let rec collect acc id clock =
    let clock = clock +. exponential state ~rate:rate_per_s in
    if clock > duration_s then List.rev acc
    else begin
      let request =
        {
          id;
          arrival_s = clock;
          input_len = max 8 (geometric state ~mean:mean_input);
          output_len = max 8 (geometric state ~mean:mean_output);
        }
      in
      collect (request :: acc) (id + 1) clock
    end
  in
  collect [] 0 0.

let total_output_tokens requests =
  List.fold_left (fun acc r -> acc + r.output_len) 0 requests

let pp ppf r =
  Format.fprintf ppf "req %d @ %.3fs: %d in / %d out" r.id r.arrival_s
    r.input_len r.output_len
