module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Engine = Acs_perfmodel.Engine
module Stats = Acs_util.Stats
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

(* Registry metrics are always on (atomic bumps, far cheaper than the
   engine calls they count); spans and their attribute lists are built
   only when tracing is enabled. *)
let m_prefills = lazy (Metrics.counter "serving_prefill_batches_total")
let m_decodes = lazy (Metrics.counter "serving_decode_steps_total")
let m_admitted = lazy (Metrics.counter "serving_admitted_total")
let m_rejected = lazy (Metrics.counter "serving_rejected_total")
let m_occupancy = lazy (Metrics.histogram "serving_batch_occupancy")

type policy = Prefill_priority | Decode_fair
type engine = Legacy | Compiled

type config = {
  tp : int;
  max_batch : int;
  policy : policy;
  engine : engine;
  context_bucket : int;
}

let default_config =
  {
    tp = 4;
    max_batch = 64;
    policy = Prefill_priority;
    engine = Compiled;
    context_bucket = 64;
  }

let policy_to_string = function
  | Prefill_priority -> "prefill-priority"
  | Decode_fair -> "decode-fair"

let engine_to_string = function Legacy -> "legacy" | Compiled -> "compiled"

exception Infeasible of string

type request_outcome = {
  request : Trace.request;
  ttft_s : float;
  tbt_s : float;
  finish_s : float;
}

type stats = {
  outcomes : request_outcome list;
  rejected : Trace.request list;
  makespan_s : float;
  generated_tokens : int;
  produced_tokens : int;
  throughput_tokens_per_s : float;
  mean_batch_occupancy : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  kv_limited_batch : int;
  prefill_batches : int;
  decode_steps : int;
  peak_hbm_bytes : float;
  hbm_capacity_bytes : float;
}

let kv_bytes_per_token_per_device config (model : Model.t) =
  let kv_heads_per_dev =
    max 1 ((model.Model.n_kv_heads + config.tp - 1) / config.tp)
  in
  let fraction =
    float_of_int kv_heads_per_dev /. float_of_int model.Model.n_kv_heads
  in
  Model.kv_cache_bytes_per_token model
  *. float_of_int model.Model.num_layers
  *. fraction

let weight_bytes_per_device config (model : Model.t) =
  Model.total_params model *. model.Model.bytes_per_param
  /. float_of_int config.tp

let kv_capacity_batch config dev model ~context =
  if context <= 0 then invalid_arg "Simulator.kv_capacity_batch: context";
  let capacity = dev.Device.memory.Memory.capacity_bytes in
  let weights = weight_bytes_per_device config model in
  let per_request =
    kv_bytes_per_token_per_device config model *. float_of_int context
  in
  let free = capacity -. weights in
  if free <= 0. then 0
  else min config.max_batch (int_of_float (free /. per_request))

(* --- step latencies ---

   Every scheduler step is one engine evaluation at the step's (batch,
   length). The compiled engine flattens the (model, request, tp) context
   with [Engine.compile] and evaluates the device against the flat arrays
   ([simulate_compiled], bit-identical to [simulate] per the PR 4 property
   suite), then memoizes the whole-model step time keyed on
   (phase, batch, bucketed length): a long trace revisits the same few
   hundred keys, so almost every step is a hashtable hit. The legacy
   engine re-runs [Engine.simulate] per step - kept as the baseline the
   [serving_throughput] bench compares against. Both engines see the
   same bucketed lengths, so their schedules (and stats) are identical. *)

type stepper = {
  prefill_s : batch:int -> input_len:int -> float;
  decode_s : batch:int -> context:int -> float;
}

let bucketed config len =
  let b = config.context_bucket in
  let len = max 1 len in
  if b <= 1 then len else (len + b - 1) / b * b

let step_request ~prefill ~batch ~len =
  (* output_len 0 puts the decode phase exactly at context [len], matching
     the legacy per-step convention; prefill reads TTFT so its output
     length is irrelevant beyond being >= 1. *)
  Request.make ~batch ~input_len:len ~output_len:(if prefill then 1 else 0)

let make_stepper ~config ~calib dev model =
  let of_result ~prefill r =
    if prefill then Engine.model_ttft_s r else Engine.model_tbt_s r
  in
  let eval =
    match config.engine with
    | Legacy ->
        fun ~prefill ~batch ~len ->
          of_result ~prefill
            (Engine.simulate ?calib ~tp:config.tp
               ~request:(step_request ~prefill ~batch ~len)
               dev model)
    | Compiled ->
        let memo : (bool * int * int, float) Hashtbl.t = Hashtbl.create 256 in
        fun ~prefill ~batch ~len ->
          let key = (prefill, batch, len) in
          match Hashtbl.find_opt memo key with
          | Some t -> t
          | None ->
              let compiled =
                Engine.compile ~tp:config.tp
                  ~request:(step_request ~prefill ~batch ~len)
                  model
              in
              let t =
                of_result ~prefill (Engine.simulate_compiled ?calib compiled dev)
              in
              Hashtbl.add memo key t;
              t
  in
  {
    prefill_s =
      (fun ~batch ~input_len ->
        eval ~prefill:true ~batch ~len:(bucketed config input_len));
    decode_s =
      (fun ~batch ~context ->
        eval ~prefill:false ~batch ~len:(bucketed config context));
  }

(* Mutable per-request bookkeeping. *)
type active = {
  req : Trace.request;
  first_token_s : float;
  mutable produced : int;  (** tokens generated, including the first *)
  mutable context : int;
}

let run_sim ~config ~calib dev model requests =
  if requests = [] then invalid_arg "Simulator.run: empty trace";
  if config.tp < 1 then invalid_arg "Simulator.run: tp must be >= 1";
  if config.max_batch < 1 then invalid_arg "Simulator.run: max_batch must be >= 1";
  let capacity = dev.Device.memory.Memory.capacity_bytes in
  let weights = weight_bytes_per_device config model in
  if weights >= capacity then
    raise
      (Infeasible
         (Printf.sprintf
            "%s at tp=%d needs %.1f GiB of weights per device but %s has only \
             %.1f GiB of HBM - no KV cache can fit"
            model.Model.name config.tp
            (weights /. (1024. ** 3.))
            dev.Device.name
            (capacity /. (1024. ** 3.))));
  let kv_tok = kv_bytes_per_token_per_device config model in
  let free = capacity -. weights in
  (* A request's KV footprint peaks at completion: input_len prompt tokens
     plus every generated token stay resident until it finishes. Admission
     reserves that whole trajectory, so live KV can never outgrow HBM no
     matter how contexts evolve - KV-safe by construction, with no
     preemption path needed. *)
  let reserve (r : Trace.request) =
    kv_tok *. float_of_int (r.Trace.input_len + r.Trace.output_len)
  in
  (* Requests whose KV can never fit even alone would otherwise pin the
     FCFS queue head forever; mark them rejected up front instead. *)
  let feasible, rejected =
    List.partition (fun r -> reserve r <= free) requests
  in
  if rejected <> [] then
    Metrics.incr ~by:(List.length rejected) (Lazy.force m_rejected);
  let waiting =
    ref
      (List.sort
         (fun (a : Trace.request) b -> compare a.Trace.arrival_s b.Trace.arrival_s)
         feasible)
  in
  let active : active list ref = ref [] in
  let outcomes = ref [] in
  let clock = ref 0. in
  let busy_weighted = ref 0. in
  let busy_time = ref 0. in
  let prefill_batches = ref 0 in
  let decode_steps = ref 0 in
  let produced_tokens = ref 0 in
  let reserved = ref 0. in
  let peak = ref weights in
  let last_was_prefill = ref false in
  let stepper = make_stepper ~config ~calib dev model in
  let live_bytes () =
    weights
    +. (kv_tok
       *. float_of_int (List.fold_left (fun acc a -> acc + a.context) 0 !active))
  in
  let note_peak () = peak := Float.max !peak (live_bytes ()) in
  (* FCFS admission: walk the queue head while requests have arrived and
     their reservations fit next to everything already resident. The first
     non-fitting (or future) request blocks the rest - no head-of-line
     bypass, so admission order is exactly arrival order. *)
  let admissible () =
    let rec take acc res n queue =
      match queue with
      | (r : Trace.request) :: rest
        when n > 0 && r.Trace.arrival_s <= !clock && res +. reserve r <= free ->
          take (r :: acc) (res +. reserve r) (n - 1) rest
      | _ -> (List.rev acc, queue)
    in
    take [] !reserved (config.max_batch - List.length !active) !waiting
  in
  let finish (a : active) =
    let tokens_after_first = a.req.Trace.output_len - 1 in
    outcomes :=
      {
        request = a.req;
        ttft_s = a.first_token_s -. a.req.Trace.arrival_s;
        tbt_s =
          (if tokens_after_first <= 0 then 0.
           else (!clock -. a.first_token_s) /. float_of_int tokens_after_first);
        finish_s = !clock;
      }
      :: !outcomes;
    reserved := !reserved -. reserve a.req
  in
  while !waiting <> [] || !active <> [] do
    (* Float hygiene: releases are interleaved with later reservations, so
       [reserved] can drain to a tiny nonzero residue instead of exactly 0.
       Snapping it when the batch empties keeps admission exact there - a
       feasible queue head must always fit into an empty batch. *)
    if !active = [] then reserved := 0.;
    (* Event jump: with nothing resident, advance straight to the next
       arrival instead of spinning. *)
    (match (!active, !waiting) with
    | [], next :: _ when next.Trace.arrival_s > !clock ->
        clock := next.Trace.arrival_s
    | _ -> ());
    let admitted, rest = admissible () in
    let can_prefill = admitted <> [] in
    let can_decode = !active <> [] in
    let do_prefill =
      can_prefill
      && ((not can_decode)
         ||
         match config.policy with
         | Prefill_priority -> true
         | Decode_fair -> not !last_was_prefill)
    in
    if do_prefill then begin
      last_was_prefill := true;
      waiting := rest;
      List.iter (fun r -> reserved := !reserved +. reserve r) admitted;
      let batch = List.length admitted in
      let input_len =
        List.fold_left (fun acc r -> max acc r.Trace.input_len) 1 admitted
      in
      Metrics.incr (Lazy.force m_prefills);
      Metrics.incr ~by:batch (Lazy.force m_admitted);
      Metrics.observe (Lazy.force m_occupancy) (float_of_int batch);
      let t =
        let step () = stepper.prefill_s ~batch ~input_len in
        if not (Span.enabled ()) then step ()
        else
          Span.with_span "serve.prefill"
            ~attrs:
              [ ("admitted", Span.Int batch);
                ("input_len", Span.Int input_len);
                ("kv_free_bytes", Span.Float (free -. !reserved)) ]
            step
      in
      clock := !clock +. t;
      busy_weighted := !busy_weighted +. (float_of_int batch *. t);
      busy_time := !busy_time +. t;
      incr prefill_batches;
      produced_tokens := !produced_tokens + batch;
      List.iter
        (fun (r : Trace.request) ->
          let entry =
            {
              req = r;
              first_token_s = !clock;
              produced = 1;
              context = r.Trace.input_len + 1;
            }
          in
          if r.Trace.output_len <= 1 then finish entry
          else active := !active @ [ entry ])
        admitted;
      note_peak ()
    end
    else if can_decode then begin
      last_was_prefill := false;
      let batch_list = !active in
      let batch = List.length batch_list in
      let context =
        List.fold_left (fun acc a -> acc + a.context) 0 batch_list / batch
      in
      Metrics.incr (Lazy.force m_decodes);
      Metrics.observe (Lazy.force m_occupancy) (float_of_int batch);
      let t =
        let step () = stepper.decode_s ~batch ~context in
        if not (Span.enabled ()) then step ()
        else
          Span.with_span "serve.decode"
            ~attrs:
              [ ("batch", Span.Int batch);
                ("context", Span.Int context);
                ("kv_free_bytes", Span.Float (free -. !reserved)) ]
            step
      in
      clock := !clock +. t;
      busy_weighted := !busy_weighted +. (float_of_int batch *. t);
      busy_time := !busy_time +. t;
      incr decode_steps;
      produced_tokens := !produced_tokens + batch;
      List.iter
        (fun a ->
          a.produced <- a.produced + 1;
          a.context <- a.context + 1)
        batch_list;
      note_peak ();
      let finished, still_active =
        List.partition (fun a -> a.produced >= a.req.Trace.output_len) batch_list
      in
      List.iter finish finished;
      active := still_active
    end
    else begin
      (* Nothing resident and the queue head has not arrived; unreachable
         given the event jump above, but advance defensively rather than
         spin. *)
      match !waiting with
      | next :: _ -> clock := Float.max !clock next.Trace.arrival_s
      | [] -> ()
    end
  done;
  let outcomes = List.rev !outcomes in
  let generated_tokens =
    List.fold_left (fun acc o -> acc + o.request.Trace.output_len) 0 outcomes
  in
  (* Throughput over the span the server was actually serving: the clock
     starts at 0 but the first request may arrive arbitrarily late, and that
     idle lead-in says nothing about the hardware. *)
  let first_arrival =
    List.fold_left
      (fun acc (r : Trace.request) -> Float.min acc r.Trace.arrival_s)
      infinity requests
  in
  let serving_span = !clock -. first_arrival in
  let throughput =
    if serving_span > 0. then float_of_int generated_tokens /. serving_span
    else 0.
  in
  let ttfts = List.map (fun o -> o.ttft_s) outcomes in
  let ttfts = if ttfts = [] then [ 0. ] else ttfts in
  let tbts =
    List.filter_map
      (fun o -> if o.tbt_s > 0. then Some o.tbt_s else None)
      outcomes
  in
  let tbts = if tbts = [] then [ 0. ] else tbts in
  let mean_context =
    let n = float_of_int (List.length requests) in
    let sum =
      List.fold_left
        (fun acc (r : Trace.request) ->
          acc + r.Trace.input_len + (r.Trace.output_len / 2))
        0 requests
    in
    max 1 (int_of_float (float_of_int sum /. n))
  in
  {
    outcomes;
    rejected;
    makespan_s = !clock;
    generated_tokens;
    produced_tokens = !produced_tokens;
    throughput_tokens_per_s = throughput;
    mean_batch_occupancy =
      (if !busy_time > 0. then !busy_weighted /. !busy_time else 0.);
    p50_ttft_s = Stats.percentile 50. ttfts;
    p95_ttft_s = Stats.percentile 95. ttfts;
    p50_tbt_s = Stats.percentile 50. tbts;
    p95_tbt_s = Stats.percentile 95. tbts;
    kv_limited_batch = kv_capacity_batch config dev model ~context:mean_context;
    prefill_batches = !prefill_batches;
    decode_steps = !decode_steps;
    peak_hbm_bytes = !peak;
    hbm_capacity_bytes = capacity;
  }

let run ?(config = default_config) ?calib dev model requests =
  if not (Span.enabled ()) then run_sim ~config ~calib dev model requests
  else
    Span.with_span "serve.run"
      ~attrs:
        [ ("requests", Span.Int (List.length requests));
          ("tp", Span.Int config.tp);
          ("max_batch", Span.Int config.max_batch);
          ("policy", Span.Str (policy_to_string config.policy));
          ("engine", Span.Str (engine_to_string config.engine)) ]
      (fun () ->
        let s = run_sim ~config ~calib dev model requests in
        Span.add_attr "generated_tokens" (Span.Int s.generated_tokens);
        Span.add_attr "makespan_s" (Span.Float s.makespan_s);
        s)

let slo_attainment stats ~ttft_s ~tbt_s =
  if ttft_s <= 0. || tbt_s <= 0. then
    invalid_arg "Simulator.slo_attainment: objectives must be positive";
  match stats.outcomes with
  | [] ->
      (* Zero requests, zero violations: report full attainment rather
         than leaking 0/0 = nan into downstream arithmetic. *)
      1.
  | outcomes ->
      let ok o =
        o.ttft_s <= ttft_s
        && (o.request.Trace.output_len <= 1 || o.tbt_s <= tbt_s)
      in
      let met = List.length (List.filter ok outcomes) in
      float_of_int met /. float_of_int (List.length outcomes)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d requests%s, %d tokens in %.1f s (%.0f tok/s); %d prefill batches + \
     %d decode steps; batch occ %.1f (cap %d); peak HBM %.1f/%.1f GiB; TTFT \
     p50/p95 %.0f/%.0f ms; TBT p50/p95 %.1f/%.1f ms"
    (List.length s.outcomes)
    (match List.length s.rejected with
    | 0 -> ""
    | n -> Printf.sprintf " (+%d rejected: KV can never fit)" n)
    s.generated_tokens s.makespan_s s.throughput_tokens_per_s s.prefill_batches
    s.decode_steps s.mean_batch_occupancy s.kv_limited_batch
    (s.peak_hbm_bytes /. (1024. ** 3.))
    (s.hbm_capacity_bytes /. (1024. ** 3.))
    (1e3 *. s.p50_ttft_s) (1e3 *. s.p95_ttft_s) (1e3 *. s.p50_tbt_s)
    (1e3 *. s.p95_tbt_s)
