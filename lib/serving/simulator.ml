module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Engine = Acs_perfmodel.Engine
module Stats = Acs_util.Stats
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

(* Registry metrics are always on (atomic bumps, far cheaper than the
   engine calls they count); spans and their attribute lists are built
   only when tracing is enabled. *)
let m_prefills = lazy (Metrics.counter "serving_prefill_batches_total")
let m_decodes = lazy (Metrics.counter "serving_decode_steps_total")
let m_admitted = lazy (Metrics.counter "serving_admitted_total")
let m_rejected = lazy (Metrics.counter "serving_rejected_total")
let m_occupancy = lazy (Metrics.histogram "serving_batch_occupancy")

type policy = Prefill_priority | Decode_fair
type engine = Legacy | Compiled

type config = {
  tp : int;
  max_batch : int;
  policy : policy;
  engine : engine;
  context_bucket : int;
}

let default_config =
  {
    tp = 4;
    max_batch = 64;
    policy = Prefill_priority;
    engine = Compiled;
    context_bucket = 64;
  }

let policy_to_string = function
  | Prefill_priority -> "prefill-priority"
  | Decode_fair -> "decode-fair"

let engine_to_string = function Legacy -> "legacy" | Compiled -> "compiled"

exception Infeasible of string

type request_outcome = {
  request : Trace.request;
  ttft_s : float;
  tbt_s : float;
  finish_s : float;
}

type stats = {
  outcomes : request_outcome list;
  rejected : Trace.request list;
  makespan_s : float;
  generated_tokens : int;
  produced_tokens : int;
  throughput_tokens_per_s : float;
  mean_batch_occupancy : float;
  busy_s : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  kv_limited_batch : int;
  prefill_batches : int;
  decode_steps : int;
  peak_hbm_bytes : float;
  hbm_capacity_bytes : float;
}

let kv_bytes_per_token_per_device config (model : Model.t) =
  let kv_heads_per_dev =
    max 1 ((model.Model.n_kv_heads + config.tp - 1) / config.tp)
  in
  let fraction =
    float_of_int kv_heads_per_dev /. float_of_int model.Model.n_kv_heads
  in
  Model.kv_cache_bytes_per_token model
  *. float_of_int model.Model.num_layers
  *. fraction

let weight_bytes_per_device config (model : Model.t) =
  Model.total_params model *. model.Model.bytes_per_param
  /. float_of_int config.tp

let kv_capacity_batch config dev model ~context =
  if context <= 0 then invalid_arg "Simulator.kv_capacity_batch: context";
  let capacity = dev.Device.memory.Memory.capacity_bytes in
  let weights = weight_bytes_per_device config model in
  let per_request =
    kv_bytes_per_token_per_device config model *. float_of_int context
  in
  let free = capacity -. weights in
  if free <= 0. then 0
  else min config.max_batch (int_of_float (free /. per_request))

(* --- step latencies ---

   Every scheduler step is one engine evaluation at the step's (batch,
   length). The compiled engine flattens the (model, request, tp) context
   with [Engine.compile] and evaluates the device against the flat arrays
   ([simulate_compiled], bit-identical to [simulate] per the PR 4 property
   suite), then memoizes the whole-model step time keyed on
   (phase, batch, bucketed length): a long trace revisits the same few
   hundred keys, so almost every step is a hashtable hit. The legacy
   engine re-runs [Engine.simulate] per step - kept as the baseline the
   [serving_throughput] bench compares against. Both engines see the
   same bucketed lengths, so their schedules (and stats) are identical.

   A stepper is a value so a fleet of identical devices can share one:
   the memo inside is keyed purely on (phase, batch, length), which only
   depends on (config, device, model) - exactly the sharing key
   {!Cluster} uses. *)

type stepper = {
  prefill_s : batch:int -> input_len:int -> float;
  decode_s : batch:int -> context:int -> float;
}

let bucketed config len =
  let b = config.context_bucket in
  let len = max 1 len in
  if b <= 1 then len else (len + b - 1) / b * b

let step_request ~prefill ~batch ~len =
  (* output_len 0 puts the decode phase exactly at context [len], matching
     the legacy per-step convention; prefill reads TTFT so its output
     length is irrelevant beyond being >= 1. *)
  Request.make ~batch ~input_len:len ~output_len:(if prefill then 1 else 0)

let make_stepper ?calib ~config dev model =
  let of_result ~prefill r =
    if prefill then Engine.model_ttft_s r else Engine.model_tbt_s r
  in
  let eval =
    match config.engine with
    | Legacy ->
        fun ~prefill ~batch ~len ->
          of_result ~prefill
            (Engine.simulate ?calib ~tp:config.tp
               ~request:(step_request ~prefill ~batch ~len)
               dev model)
    | Compiled ->
        let memo : (bool * int * int, float) Hashtbl.t = Hashtbl.create 256 in
        fun ~prefill ~batch ~len ->
          let key = (prefill, batch, len) in
          match Hashtbl.find_opt memo key with
          | Some t -> t
          | None ->
              let compiled =
                Engine.compile ~tp:config.tp
                  ~request:(step_request ~prefill ~batch ~len)
                  model
              in
              let t =
                of_result ~prefill (Engine.simulate_compiled ?calib compiled dev)
              in
              Hashtbl.add memo key t;
              t
  in
  {
    prefill_s =
      (fun ~batch ~input_len ->
        eval ~prefill:true ~batch ~len:(bucketed config input_len));
    decode_s =
      (fun ~batch ~context ->
        eval ~prefill:false ~batch ~len:(bucketed config context));
  }

(* --- the per-device instance ---

   The event-driven scheduler as a steppable value: requests are submitted
   over (simulated) time, [step] runs one scheduler iteration, and [stats]
   snapshots the accounting. [run] below is submit-everything-then-drain;
   {!Cluster} interleaves submission with stepping to route a shared trace
   across many instances. *)

(* Mutable per-request bookkeeping. [prefilled] marks requests whose KV
   arrived from another device (disaggregated handoff): admission reserves
   their KV but runs no prefill batch - they join the decode set directly
   and their first token is the first local decode step. *)
type entry = {
  req : Trace.request;
  prefilled : bool;
  mutable first_token_s : float;  (** nan until the first token *)
  mutable produced : int;
  mutable context : int;
}

module Instance = struct
  (* The waiting queue is FCFS in submission (= arrival) order, stored as
     the classic two-list functional queue so both [submit] and admission
     pops are O(1) amortized even with a million-request backlog. *)
  type t = {
    config : config;
    stepper : stepper;
    capacity : float;
    weights : float;
    kv_tok : float;
    free : float;
    mutable q_front : (Trace.request * bool) list;
    mutable q_back : (Trace.request * bool) list;  (** newest first *)
    mutable active : entry list;
    mutable outcomes : request_outcome list;
    mutable rejected_rev : Trace.request list;
    mutable clock : float;
    mutable busy_weighted : float;
    mutable busy_time : float;
    mutable prefill_batches : int;
    mutable decode_steps : int;
    mutable produced_tokens : int;
    mutable reserved : float;
    mutable peak : float;
    mutable last_was_prefill : bool;
    (* Submission accounting for the final stats. *)
    mutable submitted : int;
    mutable first_arrival : float;
    mutable context_sum : int;
    (* Outstanding-work estimate for router load balancing. *)
    mutable work_tokens : int;
    (* Counters mirroring [outcomes]/[rejected_rev] so bounded-memory
       callers (the streaming fleet) can drop the lists entirely. *)
    mutable completed : int;
    mutable generated : int;
    mutable rejected_n : int;
    (* When set, finished/rejected requests are handed to the sink instead
       of being retained: memory stays O(resident batch + queue) no matter
       how many requests pass through. *)
    mutable on_outcome : (request_outcome -> unit) option;
    mutable on_reject : (Trace.request -> unit) option;
  }

  let reserve inst (r : Trace.request) =
    inst.kv_tok *. float_of_int (r.Trace.input_len + r.Trace.output_len)

  let create ?calib ?stepper ~config dev model =
    if config.tp < 1 then invalid_arg "Simulator.run: tp must be >= 1";
    if config.max_batch < 1 then
      invalid_arg "Simulator.run: max_batch must be >= 1";
    let capacity = dev.Device.memory.Memory.capacity_bytes in
    let weights = weight_bytes_per_device config model in
    if weights >= capacity then
      raise
        (Infeasible
           (Printf.sprintf
              "%s at tp=%d needs %.1f GiB of weights per device but %s has \
               only %.1f GiB of HBM - no KV cache can fit"
              model.Model.name config.tp
              (weights /. (1024. ** 3.))
              dev.Device.name
              (capacity /. (1024. ** 3.))));
    let stepper =
      match stepper with
      | Some s -> s
      | None -> make_stepper ?calib ~config dev model
    in
    let kv_tok = kv_bytes_per_token_per_device config model in
    {
      config;
      stepper;
      capacity;
      weights;
      kv_tok;
      free = capacity -. weights;
      q_front = [];
      q_back = [];
      active = [];
      outcomes = [];
      rejected_rev = [];
      clock = 0.;
      busy_weighted = 0.;
      busy_time = 0.;
      prefill_batches = 0;
      decode_steps = 0;
      produced_tokens = 0;
      reserved = 0.;
      peak = weights;
      last_was_prefill = false;
      submitted = 0;
      first_arrival = infinity;
      context_sum = 0;
      work_tokens = 0;
      completed = 0;
      generated = 0;
      rejected_n = 0;
      on_outcome = None;
      on_reject = None;
    }

  let set_sinks ?on_outcome ?on_reject inst =
    inst.on_outcome <- on_outcome;
    inst.on_reject <- on_reject

  (* Requests whose KV can never fit even alone would otherwise pin the
     FCFS queue head forever; mark them rejected at submission instead.
     Requests must be submitted in (fleet-wide) arrival order - the queue
     is FCFS by construction. *)
  let submit ?(prefilled = false) inst (r : Trace.request) =
    inst.submitted <- inst.submitted + 1;
    inst.first_arrival <- Float.min inst.first_arrival r.Trace.arrival_s;
    inst.context_sum <-
      inst.context_sum + r.Trace.input_len + (r.Trace.output_len / 2);
    if reserve inst r > inst.free then begin
      inst.rejected_n <- inst.rejected_n + 1;
      (match inst.on_reject with
      | Some sink -> sink r
      | None -> inst.rejected_rev <- r :: inst.rejected_rev);
      Metrics.incr (Lazy.force m_rejected)
    end
    else begin
      (* A prefilled request costs this device only its remaining decode
         tokens; a fresh one also has its whole prompt to process. *)
      inst.work_tokens <-
        inst.work_tokens + r.Trace.output_len
        + (if prefilled then 0 else r.Trace.input_len);
      inst.q_back <- (r, prefilled) :: inst.q_back
    end

  let queue_head inst =
    (match (inst.q_front, inst.q_back) with
    | [], (_ :: _ as back) ->
        inst.q_front <- List.rev back;
        inst.q_back <- []
    | _ -> ());
    match inst.q_front with [] -> None | head :: _ -> Some head

  let queue_pop inst =
    match inst.q_front with
    | head :: rest ->
        inst.q_front <- rest;
        head
    | [] -> assert false (* callers pop only after a successful peek *)

  let now inst = inst.clock
  let idle inst = inst.q_front = [] && inst.q_back = [] && inst.active = []
  let load inst = inst.work_tokens
  let completed_count inst = inst.completed
  let rejected_count inst = inst.rejected_n
  let generated_count inst = inst.generated

  let live_bytes inst =
    inst.weights
    +. inst.kv_tok
       *. float_of_int
            (List.fold_left (fun acc a -> acc + a.context) 0 inst.active)

  let note_peak inst = inst.peak <- Float.max inst.peak (live_bytes inst)

  let finish inst (a : entry) =
    let tokens_after_first = a.req.Trace.output_len - 1 in
    let outcome =
      {
        request = a.req;
        ttft_s = a.first_token_s -. a.req.Trace.arrival_s;
        tbt_s =
          (if tokens_after_first <= 0 then 0.
           else
             (inst.clock -. a.first_token_s) /. float_of_int tokens_after_first);
        finish_s = inst.clock;
      }
    in
    inst.completed <- inst.completed + 1;
    inst.generated <- inst.generated + a.req.Trace.output_len;
    (match inst.on_outcome with
    | Some sink -> sink outcome
    | None -> inst.outcomes <- outcome :: inst.outcomes);
    inst.reserved <- inst.reserved -. reserve inst a.req

  (* FCFS admission: walk the queue head while requests have arrived and
     their reservations fit next to everything already resident. The first
     non-fitting (or future) request blocks the rest - no head-of-line
     bypass, so admission order is exactly arrival order. A head request is
     admissible when it has arrived, its reservation fits, and a batch slot
     is open. *)
  let head_admissible inst ~slots =
    slots > 0
    &&
    match queue_head inst with
    | Some (r, _) ->
        r.Trace.arrival_s <= inst.clock
        && inst.reserved +. reserve inst r <= inst.free
    | None -> false

  (* Prefilled requests at the queue head join the decode set instantly:
     their KV is already materialized (the handoff delay was paid as
     arrival time), so admission costs reservation bookkeeping and nothing
     else - no prefill batch, no clock advance. Joins stop at the first
     fresh (or blocked) head, keeping admission strictly FCFS even in a
     mixed queue. *)
  let join_prefilled inst =
    let joined = ref 0 in
    let continue = ref true in
    while !continue do
      let slots = inst.config.max_batch - List.length inst.active in
      match queue_head inst with
      | Some (r, true) when head_admissible inst ~slots ->
          ignore (queue_pop inst);
          inst.reserved <- inst.reserved +. reserve inst r;
          incr joined;
          inst.active <-
            inst.active
            @ [
                {
                  req = r;
                  prefilled = true;
                  first_token_s = Float.nan;
                  produced = 0;
                  context = r.Trace.input_len;
                };
              ]
      | _ -> continue := false
    done;
    if !joined > 0 then begin
      Metrics.incr ~by:!joined (Lazy.force m_admitted);
      note_peak inst
    end

  (* Pop the maximal admissible run of fresh requests at the queue head,
     reserving as it goes. Called only once the policy has decided to run
     a prefill batch. *)
  let take_fresh inst =
    let rec take acc n =
      if n <= 0 then List.rev acc
      else
        match queue_head inst with
        | Some (r, false)
          when r.Trace.arrival_s <= inst.clock
               && inst.reserved +. reserve inst r <= inst.free ->
            ignore (queue_pop inst);
            inst.reserved <- inst.reserved +. reserve inst r;
            take (r :: acc) (n - 1)
        | _ -> List.rev acc
    in
    take [] (inst.config.max_batch - List.length inst.active)

  let step inst =
    (* Float hygiene: releases are interleaved with later reservations, so
       [reserved] can drain to a tiny nonzero residue instead of exactly 0.
       Snapping it when the batch empties keeps admission exact there - a
       feasible queue head must always fit into an empty batch. *)
    if inst.active = [] then inst.reserved <- 0.;
    (* Event jump: with nothing resident, advance straight to the next
       arrival instead of spinning. *)
    (match (inst.active, queue_head inst) with
    | [], Some (next, _) when next.Trace.arrival_s > inst.clock ->
        inst.clock <- next.Trace.arrival_s
    | _ -> ());
    join_prefilled inst;
    let slots = inst.config.max_batch - List.length inst.active in
    let can_prefill =
      head_admissible inst ~slots
      && match queue_head inst with Some (_, pre) -> not pre | None -> false
    in
    let can_decode = inst.active <> [] in
    let do_prefill =
      can_prefill
      && ((not can_decode)
         ||
         match inst.config.policy with
         | Prefill_priority -> true
         | Decode_fair -> not inst.last_was_prefill)
    in
    if do_prefill then begin
      inst.last_was_prefill <- true;
      let admitted = take_fresh inst in
      let batch = List.length admitted in
      let input_len =
        List.fold_left (fun acc r -> max acc r.Trace.input_len) 1 admitted
      in
      Metrics.incr (Lazy.force m_prefills);
      Metrics.incr ~by:batch (Lazy.force m_admitted);
      Metrics.observe (Lazy.force m_occupancy) (float_of_int batch);
      let t =
        let step () = inst.stepper.prefill_s ~batch ~input_len in
        if not (Span.enabled ()) then step ()
        else
          Span.with_span "serve.prefill"
            ~attrs:
              [ ("admitted", Span.Int batch);
                ("input_len", Span.Int input_len);
                ("kv_free_bytes", Span.Float (inst.free -. inst.reserved)) ]
            step
      in
      inst.clock <- inst.clock +. t;
      inst.busy_weighted <- inst.busy_weighted +. (float_of_int batch *. t);
      inst.busy_time <- inst.busy_time +. t;
      inst.prefill_batches <- inst.prefill_batches + 1;
      inst.produced_tokens <- inst.produced_tokens + batch;
      List.iter
        (fun (r : Trace.request) ->
          inst.work_tokens <-
            inst.work_tokens - r.Trace.input_len - min 1 r.Trace.output_len;
          let entry =
            {
              req = r;
              prefilled = false;
              first_token_s = inst.clock;
              produced = 1;
              context = r.Trace.input_len + 1;
            }
          in
          if r.Trace.output_len <= 1 then finish inst entry
          else inst.active <- inst.active @ [ entry ])
        admitted;
      note_peak inst
    end
    else if can_decode then begin
      inst.last_was_prefill <- false;
      let batch_list = inst.active in
      let batch = List.length batch_list in
      let context =
        List.fold_left (fun acc a -> acc + a.context) 0 batch_list / batch
      in
      Metrics.incr (Lazy.force m_decodes);
      Metrics.observe (Lazy.force m_occupancy) (float_of_int batch);
      let t =
        let step () = inst.stepper.decode_s ~batch ~context in
        if not (Span.enabled ()) then step ()
        else
          Span.with_span "serve.decode"
            ~attrs:
              [ ("batch", Span.Int batch);
                ("context", Span.Int context);
                ("kv_free_bytes", Span.Float (inst.free -. inst.reserved)) ]
            step
      in
      inst.clock <- inst.clock +. t;
      inst.busy_weighted <- inst.busy_weighted +. (float_of_int batch *. t);
      inst.busy_time <- inst.busy_time +. t;
      inst.decode_steps <- inst.decode_steps + 1;
      inst.produced_tokens <- inst.produced_tokens + batch;
      inst.work_tokens <- inst.work_tokens - batch;
      List.iter
        (fun a ->
          a.produced <- a.produced + 1;
          a.context <- a.context + 1;
          if Float.is_nan a.first_token_s then a.first_token_s <- inst.clock)
        batch_list;
      note_peak inst;
      let finished, still_active =
        List.partition
          (fun a -> a.produced >= a.req.Trace.output_len)
          batch_list
      in
      List.iter (finish inst) finished;
      inst.active <- still_active
    end
    else begin
      (* Nothing resident and the queue head has not arrived; unreachable
         given the event jump above, but advance defensively rather than
         spin. *)
      match queue_head inst with
      | Some (next, _) ->
          inst.clock <- Float.max inst.clock next.Trace.arrival_s
      | None -> ()
    end

  let run_until inst horizon =
    while (not (idle inst)) && inst.clock < horizon do
      step inst
    done

  let drain inst =
    while not (idle inst) do
      step inst
    done

  let stats inst =
    let outcomes = List.rev inst.outcomes in
    (* The counter, not the list: with sinks installed the list is empty
       by design; without sinks the two are equal. *)
    let generated_tokens = inst.generated in
    (* Throughput over the span the server was actually serving: the clock
       starts at 0 but the first request may arrive arbitrarily late, and
       that idle lead-in says nothing about the hardware. *)
    let serving_span = inst.clock -. inst.first_arrival in
    let throughput =
      if serving_span > 0. && Float.is_finite serving_span then
        float_of_int generated_tokens /. serving_span
      else 0.
    in
    let ttfts = List.map (fun o -> o.ttft_s) outcomes in
    let ttfts = if ttfts = [] then [ 0. ] else ttfts in
    let tbts =
      List.filter_map
        (fun o -> if o.tbt_s > 0. then Some o.tbt_s else None)
        outcomes
    in
    let tbts = if tbts = [] then [ 0. ] else tbts in
    let mean_context =
      if inst.submitted = 0 then 1
      else
        max 1
          (int_of_float
             (float_of_int inst.context_sum /. float_of_int inst.submitted))
    in
    let kv_limited_batch =
      (* The informational mean-context batch bound, inlined from
         [kv_capacity_batch] against the instance's own free-HBM figure. *)
      let per_request = inst.kv_tok *. float_of_int mean_context in
      if inst.free <= 0. then 0
      else min inst.config.max_batch (int_of_float (inst.free /. per_request))
    in
    {
      outcomes;
      rejected = List.rev inst.rejected_rev;
      makespan_s = inst.clock;
      generated_tokens;
      produced_tokens = inst.produced_tokens;
      throughput_tokens_per_s = throughput;
      mean_batch_occupancy =
        (if inst.busy_time > 0. then inst.busy_weighted /. inst.busy_time
         else 0.);
      busy_s = inst.busy_time;
      p50_ttft_s = Stats.percentile 50. ttfts;
      p95_ttft_s = Stats.percentile 95. ttfts;
      p50_tbt_s = Stats.percentile 50. tbts;
      p95_tbt_s = Stats.percentile 95. tbts;
      kv_limited_batch;
      prefill_batches = inst.prefill_batches;
      decode_steps = inst.decode_steps;
      peak_hbm_bytes = inst.peak;
      hbm_capacity_bytes = inst.capacity;
    }
end

let by_arrival (a : Trace.request) (b : Trace.request) =
  compare a.Trace.arrival_s b.Trace.arrival_s

let run_sim ~config ~calib dev model requests =
  if requests = [] then invalid_arg "Simulator.run: empty trace";
  let inst = Instance.create ?calib ~config dev model in
  List.iter (Instance.submit inst) (List.stable_sort by_arrival requests);
  Instance.drain inst;
  Instance.stats inst

let run ?(config = default_config) ?calib dev model requests =
  if not (Span.enabled ()) then run_sim ~config ~calib dev model requests
  else
    Span.with_span "serve.run"
      ~attrs:
        [ ("requests", Span.Int (List.length requests));
          ("tp", Span.Int config.tp);
          ("max_batch", Span.Int config.max_batch);
          ("policy", Span.Str (policy_to_string config.policy));
          ("engine", Span.Str (engine_to_string config.engine)) ]
      (fun () ->
        let s = run_sim ~config ~calib dev model requests in
        Span.add_attr "generated_tokens" (Span.Int s.generated_tokens);
        Span.add_attr "makespan_s" (Span.Float s.makespan_s);
        s)

let slo_attainment stats ~ttft_s ~tbt_s =
  if ttft_s <= 0. || tbt_s <= 0. then
    invalid_arg "Simulator.slo_attainment: objectives must be positive";
  match stats.outcomes with
  | [] ->
      (* Zero requests, zero violations: report full attainment rather
         than leaking 0/0 = nan into downstream arithmetic. *)
      1.
  | outcomes ->
      let ok o =
        o.ttft_s <= ttft_s
        && (o.request.Trace.output_len <= 1 || o.tbt_s <= tbt_s)
      in
      let met = List.length (List.filter ok outcomes) in
      float_of_int met /. float_of_int (List.length outcomes)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d requests%s, %d tokens in %.1f s (%.0f tok/s); %d prefill batches + \
     %d decode steps; batch occ %.1f (cap %d); peak HBM %.1f/%.1f GiB; TTFT \
     p50/p95 %.0f/%.0f ms; TBT p50/p95 %.1f/%.1f ms"
    (List.length s.outcomes)
    (match List.length s.rejected with
    | 0 -> ""
    | n -> Printf.sprintf " (+%d rejected: KV can never fit)" n)
    s.generated_tokens s.makespan_s s.throughput_tokens_per_s s.prefill_batches
    s.decode_steps s.mean_batch_occupancy s.kv_limited_batch
    (s.peak_hbm_bytes /. (1024. ** 3.))
    (s.hbm_capacity_bytes /. (1024. ** 3.))
    (1e3 *. s.p50_ttft_s) (1e3 *. s.p95_ttft_s) (1e3 *. s.p50_tbt_s)
    (1e3 *. s.p95_tbt_s)
