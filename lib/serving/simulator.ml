module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Engine = Acs_perfmodel.Engine
module Stats = Acs_util.Stats
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

(* Registry metrics are always on (atomic bumps, far cheaper than the
   engine calls they count); spans and their attribute lists are built
   only when tracing is enabled. *)
let m_prefills = lazy (Metrics.counter "serving_prefill_batches_total")
let m_decodes = lazy (Metrics.counter "serving_decode_steps_total")
let m_admitted = lazy (Metrics.counter "serving_admitted_total")
let m_occupancy = lazy (Metrics.histogram "serving_batch_occupancy")

type config = { tp : int; max_batch : int }

let default_config = { tp = 4; max_batch = 64 }

type request_outcome = {
  request : Trace.request;
  ttft_s : float;
  tbt_s : float;
  finish_s : float;
}

type stats = {
  outcomes : request_outcome list;
  makespan_s : float;
  generated_tokens : int;
  throughput_tokens_per_s : float;
  mean_batch_occupancy : float;
  p50_ttft_s : float;
  p95_ttft_s : float;
  p50_tbt_s : float;
  p95_tbt_s : float;
  kv_limited_batch : int;
}

let kv_bytes_per_token_per_device config (model : Model.t) =
  let kv_heads_per_dev =
    max 1 ((model.Model.n_kv_heads + config.tp - 1) / config.tp)
  in
  let fraction =
    float_of_int kv_heads_per_dev /. float_of_int model.Model.n_kv_heads
  in
  Model.kv_cache_bytes_per_token model
  *. float_of_int model.Model.num_layers
  *. fraction

let kv_capacity_batch config dev model ~context =
  if context <= 0 then invalid_arg "Simulator.kv_capacity_batch: context";
  let capacity = dev.Device.memory.Memory.capacity_bytes in
  let weights =
    Model.total_params model *. model.Model.bytes_per_param
    /. float_of_int config.tp
  in
  let per_request =
    kv_bytes_per_token_per_device config model *. float_of_int context
  in
  let free = capacity -. weights in
  if free <= 0. then 0
  else min config.max_batch (int_of_float (free /. per_request))

(* Mutable per-request bookkeeping. *)
type active = {
  req : Trace.request;
  first_token_s : float;
  mutable produced : int;  (** tokens generated, including the first *)
  mutable context : int;
}

let prefill_s ~calib ~config dev model ~batch ~input_len =
  let request = Request.make ~batch ~input_len ~output_len:1 in
  let r = Engine.simulate ?calib ~tp:config.tp ~request dev model in
  Engine.model_ttft_s r

let decode_step_s ~calib ~config dev model ~batch ~context =
  let request = Request.make ~batch ~input_len:(max 1 context) ~output_len:0 in
  let r = Engine.simulate ?calib ~tp:config.tp ~request dev model in
  Engine.model_tbt_s r

let run_sim ~config ~calib dev model requests =
  if requests = [] then invalid_arg "Simulator.run: empty trace";
  let mean_context =
    let n = float_of_int (List.length requests) in
    let sum =
      List.fold_left
        (fun acc (r : Trace.request) ->
          acc + r.Trace.input_len + (r.Trace.output_len / 2))
        0 requests
    in
    max 1 (int_of_float (float_of_int sum /. n))
  in
  let batch_bound =
    max 1 (kv_capacity_batch config dev model ~context:mean_context)
  in
  let waiting = ref (List.sort (fun a b -> compare a.Trace.arrival_s b.Trace.arrival_s) requests) in
  let active : active list ref = ref [] in
  let outcomes = ref [] in
  let clock = ref 0. in
  let busy_weighted = ref 0. in
  let busy_time = ref 0. in
  let admit_ready () =
    let rec take acc queue n =
      match queue with
      | r :: rest when n > 0 && r.Trace.arrival_s <= !clock ->
          take (r :: acc) rest (n - 1)
      | _ -> (List.rev acc, queue)
    in
    let slots = batch_bound - List.length !active in
    let admitted, rest = take [] !waiting slots in
    waiting := rest;
    admitted
  in
  let kv_headroom () = batch_bound - List.length !active in
  while !waiting <> [] || !active <> [] do
    (* Jump idle time. *)
    (match (!active, !waiting) with
    | [], next :: _ when next.Trace.arrival_s > !clock ->
        clock := next.Trace.arrival_s
    | _, _ -> ());
    let admitted = admit_ready () in
    if admitted <> [] then begin
      (* Batched prefill of the admitted requests (prefill-priority). *)
      let batch = List.length admitted in
      let input_len =
        List.fold_left (fun acc r -> max acc r.Trace.input_len) 1 admitted
      in
      Metrics.incr (Lazy.force m_prefills);
      Metrics.incr ~by:batch (Lazy.force m_admitted);
      let t =
        let step () = prefill_s ~calib ~config dev model ~batch ~input_len in
        if not (Span.enabled ()) then step ()
        else
          Span.with_span "serve.prefill"
            ~attrs:
              [ ("admitted", Span.Int batch);
                ("input_len", Span.Int input_len);
                ("kv_headroom", Span.Int (kv_headroom ())) ]
            step
      in
      clock := !clock +. t;
      List.iter
        (fun (r : Trace.request) ->
          let entry =
            {
              req = r;
              first_token_s = !clock;
              produced = 1;
              context = r.Trace.input_len + 1;
            }
          in
          if r.Trace.output_len <= 1 then
            outcomes :=
              {
                request = r;
                ttft_s = !clock -. r.Trace.arrival_s;
                tbt_s = 0.;
                finish_s = !clock;
              }
              :: !outcomes
          else active := entry :: !active)
        admitted
    end
    else begin
      match !active with
      | [] -> ()
      | batch_list ->
          let batch = List.length batch_list in
          let context =
            List.fold_left (fun acc a -> acc + a.context) 0 batch_list / batch
          in
          Metrics.incr (Lazy.force m_decodes);
          Metrics.observe (Lazy.force m_occupancy) (float_of_int batch);
          let t =
            let step () = decode_step_s ~calib ~config dev model ~batch ~context in
            if not (Span.enabled ()) then step ()
            else
              Span.with_span "serve.decode"
                ~attrs:
                  [ ("batch", Span.Int batch);
                    ("context", Span.Int context);
                    ("kv_headroom", Span.Int (kv_headroom ())) ]
                step
          in
          clock := !clock +. t;
          busy_weighted := !busy_weighted +. (float_of_int batch *. t);
          busy_time := !busy_time +. t;
          List.iter
            (fun a ->
              a.produced <- a.produced + 1;
              a.context <- a.context + 1)
            batch_list;
          let finished, still_active =
            List.partition (fun a -> a.produced >= a.req.Trace.output_len) batch_list
          in
          List.iter
            (fun a ->
              let tokens_after_first = a.req.Trace.output_len - 1 in
              outcomes :=
                {
                  request = a.req;
                  ttft_s = a.first_token_s -. a.req.Trace.arrival_s;
                  tbt_s =
                    (!clock -. a.first_token_s)
                    /. float_of_int (max 1 tokens_after_first);
                  finish_s = !clock;
                }
                :: !outcomes)
            finished;
          active := still_active
    end
  done;
  let outcomes = List.rev !outcomes in
  let generated_tokens =
    List.fold_left (fun acc o -> acc + o.request.Trace.output_len) 0 outcomes
  in
  (* Throughput over the span the server was actually serving: the clock
     starts at 0 but the first request may arrive arbitrarily late, and that
     idle lead-in says nothing about the hardware. *)
  let first_arrival =
    List.fold_left
      (fun acc (r : Trace.request) -> Float.min acc r.Trace.arrival_s)
      infinity requests
  in
  let serving_span = !clock -. first_arrival in
  let throughput =
    if serving_span > 0. then float_of_int generated_tokens /. serving_span
    else 0.
  in
  let ttfts = List.map (fun o -> o.ttft_s) outcomes in
  let tbts =
    List.filter_map
      (fun o -> if o.tbt_s > 0. then Some o.tbt_s else None)
      outcomes
  in
  let tbts = if tbts = [] then [ 0. ] else tbts in
  {
    outcomes;
    makespan_s = !clock;
    generated_tokens;
    throughput_tokens_per_s = throughput;
    mean_batch_occupancy =
      (if !busy_time > 0. then !busy_weighted /. !busy_time else 0.);
    p50_ttft_s = Stats.percentile 50. ttfts;
    p95_ttft_s = Stats.percentile 95. ttfts;
    p50_tbt_s = Stats.percentile 50. tbts;
    p95_tbt_s = Stats.percentile 95. tbts;
    kv_limited_batch = batch_bound;
  }

let run ?(config = default_config) ?calib dev model requests =
  if not (Span.enabled ()) then run_sim ~config ~calib dev model requests
  else
    Span.with_span "serve.run"
      ~attrs:
        [ ("requests", Span.Int (List.length requests));
          ("tp", Span.Int config.tp);
          ("max_batch", Span.Int config.max_batch) ]
      (fun () ->
        let s = run_sim ~config ~calib dev model requests in
        Span.add_attr "generated_tokens" (Span.Int s.generated_tokens);
        Span.add_attr "makespan_s" (Span.Float s.makespan_s);
        s)

let slo_attainment stats ~ttft_s ~tbt_s =
  if ttft_s <= 0. || tbt_s <= 0. then
    invalid_arg "Simulator.slo_attainment: objectives must be positive";
  match stats.outcomes with
  | [] ->
      (* Zero requests, zero violations: report full attainment rather
         than leaking 0/0 = nan into downstream arithmetic. *)
      1.
  | outcomes ->
      let ok o =
        o.ttft_s <= ttft_s
        && (o.request.Trace.output_len <= 1 || o.tbt_s <= tbt_s)
      in
      let met = List.length (List.filter ok outcomes) in
      float_of_int met /. float_of_int (List.length outcomes)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d requests, %d tokens in %.1f s (%.0f tok/s); batch occ %.1f (cap \
     %d); TTFT p50/p95 %.0f/%.0f ms; TBT p50/p95 %.1f/%.1f ms"
    (List.length s.outcomes) s.generated_tokens s.makespan_s
    s.throughput_tokens_per_s s.mean_batch_occupancy s.kv_limited_batch
    (1e3 *. s.p50_ttft_s) (1e3 *. s.p95_ttft_s) (1e3 *. s.p50_tbt_s)
    (1e3 *. s.p95_tbt_s)
