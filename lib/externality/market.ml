type t = {
  demand_choke_price : float;
  demand_slope : float;
  supply_reserve_price : float;
  supply_slope : float;
}

let make ~demand_choke_price ~demand_slope ~supply_reserve_price ~supply_slope =
  if demand_slope <= 0. || supply_slope <= 0. then
    invalid_arg "Market.make: slopes must be positive";
  if demand_choke_price <= supply_reserve_price then
    invalid_arg "Market.make: no positive-quantity equilibrium";
  { demand_choke_price; demand_slope; supply_reserve_price; supply_slope }

type equilibrium = { quantity : float; price : float }

let demand_price m ~quantity =
  m.demand_choke_price -. (m.demand_slope *. quantity)

let supply_price m ~quantity =
  m.supply_reserve_price +. (m.supply_slope *. quantity)

let equilibrium m =
  let quantity =
    (m.demand_choke_price -. m.supply_reserve_price)
    /. (m.demand_slope +. m.supply_slope)
  in
  { quantity; price = demand_price m ~quantity }

let check_quantity m quantity =
  if quantity < 0. then invalid_arg "Market: negative quantity";
  let eq = equilibrium m in
  Float.min quantity eq.quantity

let consumer_surplus m ~quantity =
  let q = check_quantity m quantity in
  (* Area between the demand curve and the buyers' price over [0, q]. *)
  0.5 *. m.demand_slope *. q *. q

let producer_surplus m ~quantity =
  let q = check_quantity m quantity in
  0.5 *. m.supply_slope *. q *. q
  +. ((demand_price m ~quantity:q -. supply_price m ~quantity:q) *. q)

let total_surplus m ~quantity =
  consumer_surplus m ~quantity +. producer_surplus m ~quantity

type restriction_outcome = {
  restricted_quantity : float;
  buyer_price : float;
  seller_price : float;
  deadweight_loss : float;
  price_increase : float;
}

let restrict m ~max_quantity =
  if max_quantity < 0. then invalid_arg "Market.restrict: negative quota";
  let eq = equilibrium m in
  let q = Float.min max_quantity eq.quantity in
  let buyer_price = demand_price m ~quantity:q in
  let seller_price = supply_price m ~quantity:q in
  {
    restricted_quantity = q;
    buyer_price;
    seller_price;
    deadweight_loss =
      0.5 *. (eq.quantity -. q) *. (buyer_price -. seller_price);
    price_increase = buyer_price -. eq.price;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "Q=%.3g, buyers pay %.3g (sellers' cost %.3g, +%.3g vs free market), \
     deadweight loss %.3g"
    o.restricted_quantity o.buyer_price o.seller_price o.price_increase
    o.deadweight_loss
