module Design = Acs_dse.Design
module Optimum = Acs_dse.Optimum

type point = {
  design : Design.t;
  ttft_cost : float;
  tbt_cost : float;
  valid : bool;
}

let point_of design =
  {
    design;
    ttft_cost = Design.ttft_cost_product design;
    tbt_cost = Design.tbt_cost_product design;
    valid = Design.compliant_2023 design && Design.manufacturable design;
  }

let points designs = Acs_util.Parallel.map point_of designs

type ratio = { objective : Optimum.objective; compliant_over_free : float }

let compliance_penalty objective designs =
  let compliant d = Design.compliant_2023 d && Design.manufacturable d in
  let non_compliant d =
    (not (Design.compliant_2023 d)) && Design.manufacturable d
  in
  match
    ( Optimum.best ~filters:[ compliant ] objective designs,
      Optimum.best ~filters:[ non_compliant ] objective designs )
  with
  | Some c, Some n ->
      Some
        {
          objective;
          compliant_over_free =
            Optimum.objective_value objective c
            /. Optimum.objective_value objective n;
        }
  | _ -> None

let compliance_penalty_exn objective designs =
  match compliance_penalty objective designs with
  | Some r -> r.compliant_over_free
  | None ->
      invalid_arg
        "Latency_cost.compliance_penalty_exn: need at least one compliant \
         and one non-compliant manufacturable design"
