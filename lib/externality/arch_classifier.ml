module Gpu = Acs_devicedb.Gpu
module Acr = Acs_policy.Acr_2023

type status = Consistent | False_data_center | False_non_data_center

let status gpu =
  match (Gpu.marketing_market gpu, Gpu.architectural_market gpu) with
  | Acr.Data_center, Acr.Data_center
  | Acr.Non_data_center, Acr.Non_data_center ->
      Consistent
  | Acr.Data_center, Acr.Non_data_center -> False_data_center
  | Acr.Non_data_center, Acr.Data_center -> False_non_data_center

type analysis = {
  consistent_dc : Gpu.t list;
  false_dc : Gpu.t list;
  consistent_ndc : Gpu.t list;
  false_ndc : Gpu.t list;
}

let analyze gpus =
  let dc, ndc =
    List.partition (fun g -> Gpu.marketing_market g = Acr.Data_center) gpus
  in
  let false_dc, consistent_dc =
    List.partition (fun g -> status g = False_data_center) dc
  in
  let false_ndc, consistent_ndc =
    List.partition (fun g -> status g = False_non_data_center) ndc
  in
  { consistent_dc; false_dc; consistent_ndc; false_ndc }

let status_to_string = function
  | Consistent -> "Consistent"
  | False_data_center -> "False DC"
  | False_non_data_center -> "False NDC"
