(** Textbook linear supply/demand model of the accelerator market, used to
    quantify the paper's Sec. 2.4 vocabulary: export restrictions reduce
    the quantity traded, prices no longer clear the market, and the lost
    gains-from-trade are deadweight loss; restrictions that also capture
    non-target (gaming) devices add further loss - the negative
    externality.

    Demand: P = choke - d_slope * Q. Supply: P = reserve + s_slope * Q. *)

type t

val make :
  demand_choke_price:float ->
  demand_slope:float ->
  supply_reserve_price:float ->
  supply_slope:float ->
  t
(** Raises [Invalid_argument] unless slopes are positive and the choke
    price exceeds the reserve price (so the market clears at positive
    quantity). *)

type equilibrium = { quantity : float; price : float }

val equilibrium : t -> equilibrium
val demand_price : t -> quantity:float -> float
val supply_price : t -> quantity:float -> float

val consumer_surplus : t -> quantity:float -> float
(** Surplus when [quantity] trades at the supply-clearing... at the
    buyers' marginal price; at the free-market quantity this is the
    standard triangle. *)

val producer_surplus : t -> quantity:float -> float
val total_surplus : t -> quantity:float -> float

type restriction_outcome = {
  restricted_quantity : float;
  buyer_price : float;  (** what buyers pay at the restricted quantity *)
  seller_price : float;  (** sellers' marginal cost there *)
  deadweight_loss : float;
  price_increase : float;  (** buyer price minus free-market price *)
}

val restrict : t -> max_quantity:float -> restriction_outcome
(** Effect of capping traded quantity (an export quota / supply removal).
    A cap at or above the equilibrium quantity is a no-op with zero
    deadweight loss. *)

val pp_outcome : Format.formatter -> restriction_outcome -> unit
