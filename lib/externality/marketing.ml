module Gpu = Acs_devicedb.Gpu
module Acr = Acs_policy.Acr_2023

type status = Consistent | False_data_center | False_non_data_center

let opposite = function
  | Acr.Data_center -> Acr.Non_data_center
  | Acr.Non_data_center -> Acr.Data_center

let rebranded_tier gpu =
  Acr.classify (opposite (Gpu.marketing_market gpu)) (Gpu.spec gpu)

let status gpu =
  let current = Gpu.classify_2023 gpu in
  let rebranded = rebranded_tier gpu in
  let regulated t = t <> Acr.Not_applicable in
  match Gpu.marketing_market gpu with
  | Acr.Data_center ->
      if regulated current && not (regulated rebranded) then False_data_center
      else Consistent
  | Acr.Non_data_center ->
      if (not (regulated current)) && regulated rebranded then
        False_non_data_center
      else Consistent

type analysis = {
  consistent_dc : Gpu.t list;
  false_dc : Gpu.t list;
  consistent_ndc : Gpu.t list;
  false_ndc : Gpu.t list;
}

let analyze gpus =
  let is_dc g = Gpu.marketing_market g = Acr.Data_center in
  let part pred = List.partition pred in
  let dc, ndc = part is_dc gpus in
  let false_dc, consistent_dc =
    part (fun g -> status g = False_data_center) dc
  in
  let false_ndc, consistent_ndc =
    part (fun g -> status g = False_non_data_center) ndc
  in
  { consistent_dc; false_dc; consistent_ndc; false_ndc }

let status_to_string = function
  | Consistent -> "Consistent"
  | False_data_center -> "False DC"
  | False_non_data_center -> "False NDC"
