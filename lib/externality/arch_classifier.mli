(** The Sec. 5.2 architecture-based segment classifier (Fig. 10): classify
    a device as data-center when its memory system looks like a
    data-center memory system (capacity >= 32 GB or bandwidth >
    1600 GB/s), and compare against the marketing segment.

    "False data center": marketed as data center but architecturally
    classified as non-data center (the classifier misses it); "false
    non-data center": the reverse. *)

type status =
  | Consistent
  | False_data_center
  | False_non_data_center

val status : Acs_devicedb.Gpu.t -> status

type analysis = {
  consistent_dc : Acs_devicedb.Gpu.t list;
  false_dc : Acs_devicedb.Gpu.t list;
  consistent_ndc : Acs_devicedb.Gpu.t list;
  false_ndc : Acs_devicedb.Gpu.t list;
}

val analyze : Acs_devicedb.Gpu.t list -> analysis
val status_to_string : status -> string
