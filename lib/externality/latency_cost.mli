(** Latency - die-cost products over an evaluated design set (Fig. 8 and
    the Sec. 4.4 compliance-penalty ratios).

    The paper's externality argument: under the October 2023 PD floor, the
    cheapest-and-fastest compliant design is ~2.6-2.9x worse on the
    latency x cost product than the unconstrained optimum. *)

type point = {
  design : Acs_dse.Design.t;
  ttft_cost : float;  (** TTFT(ms) x die cost($) *)
  tbt_cost : float;  (** TBT(ms) x die cost($) *)
  valid : bool;
      (** unregulated under Oct-2023 data-center rules and within the
          reticle limit *)
}

val point_of : Acs_dse.Design.t -> point

val points : Acs_dse.Design.t list -> point list
(** One point per design, computed in parallel, order preserved. *)

type ratio = {
  objective : Acs_dse.Optimum.objective;
  compliant_over_free : float;
      (** best compliant product / best non-compliant product; > 1 means
          compliance costs performance-per-dollar *)
}

val compliance_penalty :
  Acs_dse.Optimum.objective -> Acs_dse.Design.t list -> ratio option
(** [None] when either side of the ratio has no manufacturable design. *)

val compliance_penalty_exn :
  Acs_dse.Optimum.objective -> Acs_dse.Design.t list -> float
