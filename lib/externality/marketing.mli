(** The Sec. 5.2 marketing-based classification study (Fig. 9).

    A device is {e consistently classified} when swapping its marketing
    segment would not move it between "unregulated" and "regulated"
    (regulated = NAC-eligible or license-required, since NAC licenses may
    be denied). A "false data center" device is data-center-marketed,
    currently regulated, but would be unregulated as a consumer part; a
    "false non-data center" device is consumer/workstation-marketed,
    currently unregulated, but would be regulated as a data-center part. *)

type status =
  | Consistent
  | False_data_center
  | False_non_data_center

val rebranded_tier : Acs_devicedb.Gpu.t -> Acs_policy.Acr_2023.tier
(** Classification the device would receive under the opposite market
    segment. *)

val status : Acs_devicedb.Gpu.t -> status

type analysis = {
  consistent_dc : Acs_devicedb.Gpu.t list;
  false_dc : Acs_devicedb.Gpu.t list;
  consistent_ndc : Acs_devicedb.Gpu.t list;
  false_ndc : Acs_devicedb.Gpu.t list;
}

val analyze : Acs_devicedb.Gpu.t list -> analysis
val status_to_string : status -> string
