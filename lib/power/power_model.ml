module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic
module Memory = Acs_hardware.Memory
module Layer = Acs_workload.Layer
module Op = Acs_workload.Op
module Op_model = Acs_perfmodel.Op_model
module Area_model = Acs_area.Area_model

type coefficients = {
  mac_pj : float;
  vector_op_pj : float;
  l1_pj_per_byte : float;
  l2_pj_per_byte : float;
  hbm_pj_per_byte : float;
  link_pj_per_byte : float;
  logic_leak_w_per_mm2 : float;
  sram_leak_w_per_mb : float;
  other_leak_w_per_mm2 : float;
}

let default =
  {
    mac_pj = 1.1;
    vector_op_pj = 1.8;
    l1_pj_per_byte = 0.9;
    l2_pj_per_byte = 2.2;
    hbm_pj_per_byte = 31.;  (* ~3.9 pJ/bit, HBM2e class *)
    link_pj_per_byte = 10.;  (* ~1.3 pJ/bit serdes *)
    logic_leak_w_per_mm2 = 0.045;
    sram_leak_w_per_mb = 0.30;
    other_leak_w_per_mm2 = 0.015;
  }

let pj = 1e-12

let static_watts ?(coeff = default) dev =
  let b = Area_model.breakdown dev in
  let sram_mb = Area_model.sram_mb dev in
  (coeff.logic_leak_w_per_mm2 *. b.Area_model.compute_mm2)
  +. (coeff.sram_leak_w_per_mb *. sram_mb)
  +. coeff.other_leak_w_per_mm2
     *. (b.Area_model.hbm_phy_mm2 +. b.Area_model.device_phy_mm2
        +. b.Area_model.fixed_mm2)

let peak_dynamic_watts ?(coeff = default) dev =
  let macs_per_s =
    float_of_int (Device.total_macs_per_cycle dev) *. dev.Device.frequency_hz
  in
  let vector_ops_per_s = Device.peak_vector_flops dev in
  (* Operand feeding at full rate: each MAC draws (1/dx + 1/dy) operand
     bytes-pairs from L1 with full in-array reuse. *)
  let dx = float_of_int dev.Device.systolic.Systolic.dim_x in
  let dy = float_of_int dev.Device.systolic.Systolic.dim_y in
  let l1_bytes_per_s = macs_per_s *. ((1. /. dx) +. (1. /. dy)) *. 2. in
  (macs_per_s *. coeff.mac_pj *. pj)
  +. (vector_ops_per_s *. coeff.vector_op_pj *. pj)
  +. (l1_bytes_per_s *. coeff.l1_pj_per_byte *. pj)
  +. (Device.memory_bandwidth dev *. coeff.hbm_pj_per_byte *. pj)
  +. Acs_hardware.Interconnect.total_bandwidth dev.Device.interconnect
     *. coeff.link_pj_per_byte *. pj

let tdp_watts ?(coeff = default) dev =
  static_watts ~coeff dev +. peak_dynamic_watts ~coeff dev

type phase_energy = {
  compute_j : float;
  sram_j : float;
  dram_j : float;
  interconnect_j : float;
  static_j : float;
  total_j : float;
}

let op_energies ~coeff ~calib dev op =
  let dram = Op_model.dram_traffic_bytes ~calib dev op in
  let dram_j = dram *. coeff.hbm_pj_per_byte *. pj in
  (* Everything that reaches DRAM also crosses L2 once each way. *)
  let l2_j = 2. *. dram *. coeff.l2_pj_per_byte *. pj in
  match op with
  | Op.Matmul mm ->
      let macs = Op.matmul_macs mm in
      let dx = float_of_int dev.Device.systolic.Systolic.dim_x in
      let dy = float_of_int dev.Device.systolic.Systolic.dim_y in
      let l1_bytes = macs *. ((1. /. dx) +. (1. /. dy)) *. 2. in
      let compute_j = macs *. coeff.mac_pj *. pj in
      let sram_j = l2_j +. (l1_bytes *. coeff.l1_pj_per_byte *. pj) in
      (compute_j, sram_j, dram_j, 0.)
  | Op.Elementwise ew ->
      let compute_j =
        ew.Op.elements *. ew.Op.flops_per_element *. coeff.vector_op_pj *. pj
      in
      (compute_j, l2_j, dram_j, 0.)
  | Op.All_reduce c ->
      (* Each device sends and receives ~2x the payload in a ring. *)
      let link_j = 4. *. c.Op.bytes *. coeff.link_pj_per_byte *. pj in
      (0., 0., 0., link_j)

let phase_energy ?(coeff = default) ?(calib = Acs_perfmodel.Calib.default)
    ?(tp = 4) ?(request = Acs_workload.Request.default) dev model phase =
  let ops = Layer.ops model request ~tp phase in
  let compute_j, sram_j, dram_j, interconnect_j =
    List.fold_left
      (fun (c, s, d, i) op ->
        let c', s', d', i' = op_energies ~coeff ~calib dev op in
        (c +. c', s +. s', d +. d', i +. i'))
      (0., 0., 0., 0.) ops
  in
  let latency =
    List.fold_left
      (fun acc op ->
        acc +. (Op_model.latency ~calib dev ~tp op).Op_model.total_s)
      0. ops
  in
  let static_j = static_watts ~coeff dev *. latency in
  {
    compute_j;
    sram_j;
    dram_j;
    interconnect_j;
    static_j;
    total_j = compute_j +. sram_j +. dram_j +. interconnect_j +. static_j;
  }

let phase_latency ~calib ~tp ~request dev model phase =
  let ops = Layer.ops model request ~tp phase in
  List.fold_left
    (fun acc op -> acc +. (Op_model.latency ~calib dev ~tp op).Op_model.total_s)
    0. ops

let average_watts ?(coeff = default) ?(calib = Acs_perfmodel.Calib.default)
    ?(tp = 4) ?(request = Acs_workload.Request.default) dev model phase =
  let e = phase_energy ~coeff ~calib ~tp ~request dev model phase in
  e.total_j /. phase_latency ~calib ~tp ~request dev model phase

let decode_energy_per_token_j ?(coeff = default)
    ?(calib = Acs_perfmodel.Calib.default) ?(tp = 4)
    ?(request = Acs_workload.Request.default) dev model =
  let e = phase_energy ~coeff ~calib ~tp ~request dev model Layer.Decode in
  let layers = float_of_int model.Acs_workload.Model.num_layers in
  let batch = float_of_int request.Acs_workload.Request.batch in
  e.total_j *. layers *. float_of_int tp /. batch

let electricity_usd_per_mtok ?(usd_per_kwh = 0.10) ?coeff ?calib ?tp ?request
    dev model =
  let per_token =
    decode_energy_per_token_j ?coeff ?calib ?tp ?request dev model
  in
  per_token *. 1e6 /. 3.6e6 *. usd_per_kwh

let pp_phase_energy ppf e =
  Format.fprintf ppf
    "compute %.3g J + SRAM %.3g J + DRAM %.3g J + links %.3g J + leakage \
     %.3g J = %.3g J"
    e.compute_j e.sram_j e.dram_j e.interconnect_j e.static_j e.total_j
