(** Power and energy model for the hardware template.

    Supports the paper's Sec. 4.4 observation that PD-compliant designs pad
    dies with SRAM whose static and dynamic power raises operating costs.
    Coefficients are 7 nm-class estimates (energy per FP16 MAC, per vector
    op, per byte of L1/L2/HBM/interconnect traffic; leakage per mm² of logic
    and SRAM); as with the rest of the simulator, comparisons between
    designs are the meaningful output, not absolute watts. *)

type coefficients = {
  mac_pj : float;  (** per FP16 multiply-accumulate, including local wires *)
  vector_op_pj : float;  (** per vector FLOP *)
  l1_pj_per_byte : float;
  l2_pj_per_byte : float;
  hbm_pj_per_byte : float;
  link_pj_per_byte : float;  (** device-to-device interconnect *)
  logic_leak_w_per_mm2 : float;
  sram_leak_w_per_mb : float;
  other_leak_w_per_mm2 : float;  (** PHYs and the fixed region *)
}

val default : coefficients

val static_watts : ?coeff:coefficients -> Acs_hardware.Device.t -> float
(** Leakage when idle, from the area model's floorplan; grows with padded
    SRAM exactly as Sec. 4.4 argues. *)

val peak_dynamic_watts : ?coeff:coefficients -> Acs_hardware.Device.t -> float
(** All systolic arrays, vector units and memory interfaces at full rate. *)

val tdp_watts : ?coeff:coefficients -> Acs_hardware.Device.t -> float
(** [static + peak dynamic]. *)

type phase_energy = {
  compute_j : float;
  sram_j : float;
  dram_j : float;
  interconnect_j : float;
  static_j : float;  (** leakage integrated over the phase latency *)
  total_j : float;
}

val phase_energy :
  ?coeff:coefficients ->
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Acs_workload.Layer.phase ->
  phase_energy
(** Energy one device spends executing one Transformer layer of the phase
    (defaults match {!Acs_perfmodel.Engine.simulate}: tp = 4, the paper's
    request). *)

val average_watts :
  ?coeff:coefficients ->
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Acs_workload.Layer.phase ->
  float

val decode_energy_per_token_j :
  ?coeff:coefficients ->
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  float
(** Whole-model, whole-tensor-parallel-group energy to decode one token of
    one request (per-layer energy x layers x tp / batch). *)

val electricity_usd_per_mtok :
  ?usd_per_kwh:float ->
  ?coeff:coefficients ->
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  float
(** Electricity cost of generating one million tokens (decode only),
    default $0.10/kWh. *)

val pp_phase_energy : Format.formatter -> phase_energy -> unit
