(** Architecture-first performance indicators (paper Sec. 5.3, Figs. 11-12).

    Given a design-space exploration, fixing one architectural parameter
    and looking at the resulting latency distribution tells how strongly
    that parameter predicts performance: the narrower the distribution,
    the better the indicator. *)

type t = { label : string; matches : Acs_dse.Design.t -> bool }

val all_designs : t
(** The "TPP only" column: every design matches. *)

val lanes_fixed : int -> t
val l1_fixed_kb : float -> t
val l2_fixed_mb : float -> t
val memory_bw_fixed_tb_s : float -> t
val device_bw_fixed_gb_s : float -> t
val systolic_fixed : int -> t

val both : t -> t -> t
(** Conjunction: designs matching both groupings. This is the paper's
    "combined metrics" construction (e.g. a TPP ceiling together with a
    memory-bandwidth cap and an L1 cap). *)

type report = {
  grouping : string;
  count : int;
  summary : Acs_util.Stats.summary;
  narrowing_vs_all : float;
      (** range of the full DSE divided by this group's range *)
  median_change_vs_baseline : float option;
      (** (median - baseline)/baseline when a baseline latency (e.g. the
          modeled A100) is supplied *)
}

val analyze :
  ?baseline:float ->
  metric:(Acs_dse.Design.t -> float) ->
  designs:Acs_dse.Design.t list ->
  t list ->
  report list
(** The first report covers all designs; one further report per grouping.
    Raises [Invalid_argument] when [designs] is empty or a grouping matches
    nothing. *)

val pp_report : Format.formatter -> report -> unit
