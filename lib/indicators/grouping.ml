module Design = Acs_dse.Design
module Space = Acs_dse.Space
module Stats = Acs_util.Stats

type t = { label : string; matches : Design.t -> bool }

let all_designs = { label = "TPP only"; matches = (fun _ -> true) }

let param_eq label f = { label; matches = (fun d -> f d.Design.params) }

let lanes_fixed n =
  param_eq (Printf.sprintf "%d lane" n) (fun p -> p.Space.lanes = n)

let l1_fixed_kb kb =
  param_eq (Printf.sprintf "%.0f KB L1" kb) (fun p -> p.Space.l1 = kb)

let l2_fixed_mb mb =
  param_eq (Printf.sprintf "%.0f MB L2" mb) (fun p -> p.Space.l2 = mb)

let memory_bw_fixed_tb_s tb =
  param_eq (Printf.sprintf "%.1f TB/s M.BW" tb) (fun p -> p.Space.memory_bw = tb)

let device_bw_fixed_gb_s gb =
  param_eq (Printf.sprintf "%.0f GB/s D.BW" gb) (fun p -> p.Space.device_bw = gb)

let systolic_fixed dim =
  param_eq (Printf.sprintf "%dx%d array" dim dim)
    (fun p -> p.Space.systolic_dim = dim)

let both a b =
  {
    label = a.label ^ " + " ^ b.label;
    matches = (fun d -> a.matches d && b.matches d);
  }

type report = {
  grouping : string;
  count : int;
  summary : Stats.summary;
  narrowing_vs_all : float;
  median_change_vs_baseline : float option;
}

let analyze ?baseline ~metric ~designs groupings =
  if designs = [] then invalid_arg "Grouping.analyze: no designs";
  let all_values = List.map metric designs in
  let report g =
    let values =
      List.filter_map
        (fun d -> if g.matches d then Some (metric d) else None)
        designs
    in
    if values = [] then
      invalid_arg
        (Printf.sprintf "Grouping.analyze: grouping %S matches no design"
           g.label);
    {
      grouping = g.label;
      count = List.length values;
      summary = Stats.summarize values;
      narrowing_vs_all = Stats.narrowing_factor ~baseline:all_values values;
      median_change_vs_baseline =
        Option.map
          (fun b -> Stats.relative_change ~baseline:b (Stats.median values))
          baseline;
    }
  in
  (* One report per grouping, computed in parallel (each report filters and
     summarizes the full design list); order is preserved. *)
  Acs_util.Parallel.map ~chunk:1 report (all_designs :: groupings)

let pp_report ppf r =
  Format.fprintf ppf "%-16s n=%-5d med=%.4g range=%.4g narrowing=%.3gx"
    r.grouping r.count r.summary.Stats.median
    (r.summary.Stats.max -. r.summary.Stats.min)
    r.narrowing_vs_all;
  match r.median_change_vs_baseline with
  | Some c -> Format.fprintf ppf " med-vs-A100=%+.1f%%" (100. *. c)
  | None -> ()
