(** Multi-chip (chiplet) packages.

    The Advanced Computing Rules aggregate TPP over every die in a package
    and Performance Density over the total applicable die area, which is
    what makes chiplets a compliance instrument (paper Secs. 2.3 and 2.5):
    a 4799-TPP device can only escape the October 2023 rules with more than
    3000 mm^2 of silicon - impossible monolithically (reticle: 860 mm^2)
    but straightforward as a multi-chip module. Conversely, dropping
    compute chiplets lowers TPP {e and} area together, leaving PD
    unchanged, so chiplet designs may still have to disable cores inside
    each die.

    Performance is not modeled at package granularity; the paper's chiplet
    analysis is about classification, area and cost, which is what this
    module (with {!Acs_cost.Cost_model}) provides. *)

type t = {
  name : string;
  compute_die : Device.t;  (** one compute chiplet *)
  compute_die_area_mm2 : float;
  compute_dies : int;
  io_die_area_mm2 : float;  (** 0 when there is no separate IO die *)
  io_dies : int;
}

val make :
  ?name:string ->
  ?io_die_area_mm2:float ->
  ?io_dies:int ->
  compute_die:Device.t ->
  compute_die_area_mm2:float ->
  compute_dies:int ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive dies/areas, or when a die
    exceeds the 860 mm^2 reticle limit (each chiplet must itself be
    manufacturable). *)

val total_tpp : t -> float
(** Sum over compute dies, per the rules. *)

val total_area_mm2 : t -> float
(** All dies: the October 2023 "applicable die area". *)

val performance_density : t -> float

val die_areas : t -> float list
(** One entry per physical die, for yield/cost aggregation. *)

val with_compute_dies : t -> int -> t
(** The "remove chiplets" knob; raises on non-positive count. *)

val monolithic_equivalent_area : t -> float
(** Total area if the same silicon were one die (often > reticle). *)

val pp : Format.formatter -> t -> unit
