type t = N4 | N5 | N6 | N7 | N8 | N12 | N16 | N28

let nm = function
  | N4 -> 4
  | N5 -> 5
  | N6 -> 6
  | N7 -> 7
  | N8 -> 8
  | N12 -> 12
  | N16 -> 16
  | N28 -> 28

let non_planar t = nm t <= 16
let to_string t = Printf.sprintf "%dnm" (nm t)

let of_nm = function
  | 4 -> N4
  | 5 -> N5
  | 6 -> N6
  | 7 -> N7
  | 8 -> N8
  | 12 -> N12
  | 16 -> N16
  | 28 -> N28
  | n -> invalid_arg (Printf.sprintf "Process.of_nm: unsupported node %dnm" n)
