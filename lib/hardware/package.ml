type t = {
  name : string;
  compute_die : Device.t;
  compute_die_area_mm2 : float;
  compute_dies : int;
  io_die_area_mm2 : float;
  io_dies : int;
}

let make ?(name = "package") ?(io_die_area_mm2 = 0.) ?(io_dies = 0)
    ~compute_die ~compute_die_area_mm2 ~compute_dies () =
  if compute_dies <= 0 then
    invalid_arg "Package.make: need at least one compute die";
  if compute_die_area_mm2 <= 0. then
    invalid_arg "Package.make: compute die area must be positive";
  if io_dies < 0 || (io_dies > 0 && io_die_area_mm2 <= 0.) then
    invalid_arg "Package.make: inconsistent IO dies";
  let reticle = Presets.reticle_limit_mm2 in
  if compute_die_area_mm2 > reticle || io_die_area_mm2 > reticle then
    invalid_arg "Package.make: a chiplet exceeds the reticle limit";
  {
    name;
    compute_die;
    compute_die_area_mm2;
    compute_dies;
    io_die_area_mm2;
    io_dies;
  }

let total_tpp t = float_of_int t.compute_dies *. Device.tpp t.compute_die

let total_area_mm2 t =
  (float_of_int t.compute_dies *. t.compute_die_area_mm2)
  +. (float_of_int t.io_dies *. t.io_die_area_mm2)

let performance_density t = total_tpp t /. total_area_mm2 t

let die_areas t =
  List.init t.compute_dies (fun _ -> t.compute_die_area_mm2)
  @ List.init t.io_dies (fun _ -> t.io_die_area_mm2)

let with_compute_dies t compute_dies =
  if compute_dies <= 0 then
    invalid_arg "Package.with_compute_dies: need at least one compute die";
  { t with compute_dies }

let monolithic_equivalent_area = total_area_mm2

let pp ppf t =
  Format.fprintf ppf
    "%s: %d x %.0f mm^2 compute dies%s = %.0f mm^2, TPP %.0f (PD %.2f)"
    t.name t.compute_dies t.compute_die_area_mm2
    (if t.io_dies > 0 then
       Printf.sprintf " + %d x %.0f mm^2 IO" t.io_dies t.io_die_area_mm2
     else "")
    (total_area_mm2 t) (total_tpp t) (performance_density t)
