(** Reference device configurations used throughout the paper. *)

val a100 : Device.t
(** The modeled NVIDIA A100 (SXM 80 GB): 108 cores x 4 lanes x 16x16
    systolic arrays at 1410 MHz (TPP 4992), 192 KB L1 per core, 40 MB L2,
    2 TB/s HBM, 600 GB/s NVLink, 7 nm. *)

val a100_die_area_mm2 : float
(** 826 mm^2 (GA100); the paper uses the real die area for the A100
    baseline instead of the model output. *)

val capped_tpp_4759 : Device.t
(** The Fig. 5 fixed-TPP configuration: 103 cores (TPP 4759), otherwise
    A100-like. *)

val reticle_limit_mm2 : float
(** 860 mm^2, the single-die manufacturability limit. *)
