type t = { dim_x : int; dim_y : int }

let make ~dim_x ~dim_y =
  if dim_x <= 0 || dim_y <= 0 then
    invalid_arg "Systolic.make: dimensions must be positive";
  { dim_x; dim_y }

let square n = make ~dim_x:n ~dim_y:n
let macs_per_cycle t = t.dim_x * t.dim_y
let ops_per_cycle t = 2 * macs_per_cycle t
let to_string t = Printf.sprintf "%dx%d" t.dim_x t.dim_y
let equal a b = a.dim_x = b.dim_x && a.dim_y = b.dim_y
let compare a b = compare (a.dim_x, a.dim_y) (b.dim_x, b.dim_y)
