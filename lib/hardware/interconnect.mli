(** Device-to-device interconnect (NVLink-style).

    The October 2022 rule regulates the aggregate bidirectional transfer
    rate, which is what [total_bandwidth] reports. Links come in 50 GB/s
    increments to mirror NVLink 3 (A100: 12 links = 600 GB/s). *)

type t = private { links : int; link_bandwidth_bytes_per_s : float }

val link_bandwidth_default : float
(** 50 GB/s. *)

val make : links:int -> ?link_gb_s:float -> unit -> t

val of_total_gb_s : float -> t
(** Builds an interconnect with default-width links whose count reaches the
    requested total; when the total is not a multiple of 50 GB/s the
    per-link bandwidth is scaled down so the aggregate matches exactly
    (the paper caps bandwidth by "reducing per device-to-device PHY
    bandwidth"). *)

val total_bandwidth : t -> float
(** Aggregate bidirectional bytes/second. *)

val pp : Format.formatter -> t -> unit
