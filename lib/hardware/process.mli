(** Semiconductor process nodes, as relevant to the October 2023 rule's
    "applicable die area": only dies manufactured with a non-planar
    transistor architecture (FinFET/GAA, i.e. 16 nm and below) count toward
    Performance Density. *)

type t =
  | N4
  | N5
  | N6
  | N7
  | N8   (** Samsung 8N, used by NVIDIA Ampere consumer dies *)
  | N12
  | N16
  | N28  (** planar; kept for completeness *)

val non_planar : t -> bool
(** True for FinFET-class nodes (16 nm and below). *)

val nm : t -> int
val to_string : t -> string
val of_nm : int -> t
(** Raises [Invalid_argument] for unsupported node sizes. *)
