type t = {
  name : string;
  core_count : int;
  lanes_per_core : int;
  systolic : Systolic.t;
  vector_width : int;
  l1_bytes : float;
  l2_bytes : float;
  frequency_hz : float;
  memory : Memory.t;
  interconnect : Interconnect.t;
  process : Process.t;
  op_bitwidth : int;
}

let default_frequency_mhz = 1410.

let make ?(name = "custom") ?(vector_width = 32)
    ?(frequency_mhz = default_frequency_mhz) ?(process = Process.N7)
    ?(op_bitwidth = 16) ~core_count ~lanes_per_core ~systolic ~l1_kb ~l2_mb
    ~memory ~interconnect () =
  let check_pos what v = if v <= 0 then invalid_arg ("Device.make: " ^ what) in
  check_pos "core_count must be positive" core_count;
  check_pos "lanes_per_core must be positive" lanes_per_core;
  check_pos "vector_width must be positive" vector_width;
  if l1_kb <= 0. || l2_mb <= 0. then
    invalid_arg "Device.make: buffer sizes must be positive";
  if frequency_mhz <= 0. then
    invalid_arg "Device.make: frequency must be positive";
  {
    name;
    core_count;
    lanes_per_core;
    systolic;
    vector_width;
    l1_bytes = Acs_util.Units.kb l1_kb;
    l2_bytes = Acs_util.Units.mb l2_mb;
    frequency_hz = Acs_util.Units.mhz frequency_mhz;
    memory;
    interconnect;
    process;
    op_bitwidth;
  }

let total_macs_per_cycle t =
  Systolic.macs_per_cycle t.systolic * t.lanes_per_core * t.core_count

let peak_tensor_flops t =
  2. *. float_of_int (total_macs_per_cycle t) *. t.frequency_hz

let peak_vector_flops t =
  (* A vector ALU performs one FMA per cycle = 2 FLOPs. *)
  2.
  *. float_of_int (t.vector_width * t.lanes_per_core * t.core_count)
  *. t.frequency_hz

let tops t = peak_tensor_flops t /. Acs_util.Units.tera
let tpp t = tops t *. float_of_int t.op_bitwidth

let device_bandwidth_gb_s t =
  Interconnect.total_bandwidth t.interconnect /. Acs_util.Units.giga

let memory_bandwidth t = t.memory.Memory.bandwidth_bytes_per_s
let l1_per_lane t = t.l1_bytes /. float_of_int t.lanes_per_core

let fp_max ~tpp ~frequency_hz =
  if tpp <= 0. || frequency_hz <= 0. then
    invalid_arg "Device.fp_max: arguments must be positive";
  (* TPP = 16 * 2 * macs * freq / 1e12, solved for macs. *)
  int_of_float (Float.floor (tpp *. Acs_util.Units.tera /. (16. *. 2. *. frequency_hz)))

let cores_for_tpp ~tpp ~lanes_per_core ~systolic
    ?(frequency_mhz = default_frequency_mhz) () =
  let frequency_hz = Acs_util.Units.mhz frequency_mhz in
  let max_macs = fp_max ~tpp ~frequency_hz in
  let macs_per_core = Systolic.macs_per_cycle systolic * lanes_per_core in
  max 1 (max_macs / macs_per_core)

let pp ppf t =
  Format.fprintf ppf
    "%s: %d cores x %d lanes x %s @ %.0f MHz, L1 %a/core, L2 %a, %a, dev %a, \
     TPP %.0f"
    t.name t.core_count t.lanes_per_core
    (Systolic.to_string t.systolic)
    (t.frequency_hz /. Acs_util.Units.mega)
    Acs_util.Units.pp_bytes t.l1_bytes Acs_util.Units.pp_bytes t.l2_bytes
    Memory.pp t.memory Interconnect.pp t.interconnect (tpp t)

let summary t = Format.asprintf "%a" pp t
