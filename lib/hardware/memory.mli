(** Off-chip HBM memory system of a device.

    The DSE follows the paper's convention that bandwidth scales in
    400 GB/s HBM-stack increments (2 TB/s = 5 stacks, 3.2 TB/s = 8). *)

type t = private {
  capacity_bytes : float;
  bandwidth_bytes_per_s : float;
  stacks : int;
}

val stack_bandwidth : float
(** Bandwidth contributed by one HBM stack: 400 GB/s. *)

val make : capacity_gb:float -> bandwidth_tb_s:float -> t
(** Stack count is derived as [bandwidth / stack_bandwidth], rounded up.
    Raises [Invalid_argument] on non-positive capacity or bandwidth. *)

val with_bandwidth : t -> bandwidth_tb_s:float -> t

val bandwidth_density : t -> package_area_mm2:float -> float
(** Memory bandwidth density in GB/s/mm^2 as defined by the December 2024
    HBM export control (package bandwidth / package area). *)

val pp : Format.formatter -> t -> unit
