(** The LLMCompass-style hardware template (paper Fig. 4): a device is a set
    of identical cores sharing a global buffer (L2) connected to HBM and the
    device-to-device interconnect; each core has lanes sharing a local buffer
    (L1); each lane pairs one systolic array with one vector unit.

    Derived performance metrics follow the Advanced Computing Rule
    conventions: TPP = peak TOPS x operand bitwidth, with a fused
    multiply-accumulate counted as two operations. *)

type t = {
  name : string;
  core_count : int;
  lanes_per_core : int;
  systolic : Systolic.t;
  vector_width : int;  (** FP32 ALUs per vector unit *)
  l1_bytes : float;  (** local buffer per core, shared by its lanes *)
  l2_bytes : float;  (** global buffer *)
  frequency_hz : float;
  memory : Memory.t;
  interconnect : Interconnect.t;
  process : Process.t;
  op_bitwidth : int;  (** bitwidth of the peak-TPP operand format (FP16) *)
}

val default_frequency_mhz : float
(** 1410 MHz - the modeled A100 clock, the default for {!make} and
    {!cores_for_tpp}. *)

val make :
  ?name:string ->
  ?vector_width:int ->
  ?frequency_mhz:float ->
  ?process:Process.t ->
  ?op_bitwidth:int ->
  core_count:int ->
  lanes_per_core:int ->
  systolic:Systolic.t ->
  l1_kb:float ->
  l2_mb:float ->
  memory:Memory.t ->
  interconnect:Interconnect.t ->
  unit ->
  t
(** Defaults mirror the paper's modeled A100: 1410 MHz, 7 nm, FP16
    (bitwidth 16), 32-wide vector units. Raises [Invalid_argument] on
    non-positive parameters. *)

val total_macs_per_cycle : t -> int
(** Systolic MACs per cycle across the whole device
    (DIMX * DIMY * lanes/core * cores, Eq. 1's right-hand side). *)

val peak_tensor_flops : t -> float
(** Peak dense FP16 tensor FLOP/s (2 ops per MAC). *)

val peak_vector_flops : t -> float

val tops : t -> float
(** Peak tera-operations per second at the TPP operand format. *)

val tpp : t -> float
(** Total Processing Performance: [tops * op_bitwidth]. *)

val device_bandwidth_gb_s : t -> float
(** Aggregate bidirectional interconnect bandwidth in GB/s (the October
    2022 metric). *)

val memory_bandwidth : t -> float
val l1_per_lane : t -> float

val fp_max : tpp:float -> frequency_hz:float -> int
(** Eq. 1: the maximum systolic-array MAC (FPU) count whose TPP at
    [frequency_hz] does not exceed [tpp], assuming FP16 operands. *)

val cores_for_tpp :
  tpp:float -> lanes_per_core:int -> systolic:Systolic.t -> ?frequency_mhz:float -> unit -> int
(** Largest core count that keeps the configuration at or under the TPP
    target (at least 1). *)

val pp : Format.formatter -> t -> unit
val summary : t -> string
