type t = { links : int; link_bandwidth_bytes_per_s : float }

let link_bandwidth_default = Acs_util.Units.gbps 50.

let make ~links ?(link_gb_s = 50.) () =
  if links <= 0 then invalid_arg "Interconnect.make: links must be positive";
  if link_gb_s <= 0. then
    invalid_arg "Interconnect.make: link bandwidth must be positive";
  { links; link_bandwidth_bytes_per_s = Acs_util.Units.gbps link_gb_s }

let of_total_gb_s total =
  if total <= 0. then
    invalid_arg "Interconnect.of_total_gb_s: bandwidth must be positive";
  let links = int_of_float (Float.ceil (total /. 50.)) in
  make ~links ~link_gb_s:(total /. float_of_int links) ()

let total_bandwidth t =
  float_of_int t.links *. t.link_bandwidth_bytes_per_s

let pp ppf t =
  Format.fprintf ppf "%d links, %a total" t.links Acs_util.Units.pp_bandwidth
    (total_bandwidth t)
