let a100_memory = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:2.
let a100_interconnect = Interconnect.make ~links:12 ()

let a100 =
  Device.make ~name:"modeled-A100" ~core_count:108 ~lanes_per_core:4
    ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:40. ~memory:a100_memory
    ~interconnect:a100_interconnect ()

let a100_die_area_mm2 = 826.

let capped_tpp_4759 =
  Device.make ~name:"capped-4759" ~core_count:103 ~lanes_per_core:4
    ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:40. ~memory:a100_memory
    ~interconnect:a100_interconnect ()

let reticle_limit_mm2 = 860.
