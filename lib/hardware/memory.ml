type t = {
  capacity_bytes : float;
  bandwidth_bytes_per_s : float;
  stacks : int;
}

let stack_bandwidth = Acs_util.Units.gbps 400.

let make ~capacity_gb ~bandwidth_tb_s =
  if capacity_gb <= 0. then invalid_arg "Memory.make: capacity must be positive";
  if bandwidth_tb_s <= 0. then
    invalid_arg "Memory.make: bandwidth must be positive";
  let bandwidth = Acs_util.Units.tbps bandwidth_tb_s in
  let stacks = int_of_float (Float.ceil (bandwidth /. stack_bandwidth)) in
  {
    capacity_bytes = Acs_util.Units.gb capacity_gb;
    bandwidth_bytes_per_s = bandwidth;
    stacks;
  }

let with_bandwidth t ~bandwidth_tb_s =
  make ~capacity_gb:(t.capacity_bytes /. Acs_util.Units.giga) ~bandwidth_tb_s

let bandwidth_density t ~package_area_mm2 =
  if package_area_mm2 <= 0. then
    invalid_arg "Memory.bandwidth_density: area must be positive";
  t.bandwidth_bytes_per_s /. Acs_util.Units.giga /. package_area_mm2

let pp ppf t =
  Format.fprintf ppf "%a HBM @ %a (%d stacks)" Acs_util.Units.pp_bytes
    t.capacity_bytes Acs_util.Units.pp_bandwidth t.bandwidth_bytes_per_s
    t.stacks
