(** Systolic array description (the tensor/matrix compute unit of a lane).

    Each array computes [dim_x * dim_y] multiply-accumulates per cycle; a MAC
    counts as two operations under the Advanced Computing Rule's TPP
    definition ("tensor operations ... as two operations"). *)

type t = private { dim_x : int; dim_y : int }

val make : dim_x:int -> dim_y:int -> t
(** Raises [Invalid_argument] unless both dims are positive. *)

val square : int -> t
(** [square n] is an [n x n] array. *)

val macs_per_cycle : t -> int
val ops_per_cycle : t -> int
(** [2 * macs_per_cycle]. *)

val to_string : t -> string
(** e.g. ["16x16"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
