module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Layer = Acs_workload.Layer

type result = {
  device : Device.t;
  model : Model.t;
  request : Request.t;
  tp : int;
  ttft_s : float;
  tbt_s : float;
  prefill : Op_model.breakdown;
  decode : Op_model.breakdown;
}

let phase_breakdown ~calib ~tp ~request device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.fold_left
    (fun acc op -> Op_model.add acc (Op_model.latency ~calib device ~tp op))
    Op_model.zero ops

let op_latencies ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.map (fun op -> (op, Op_model.latency ~calib device ~tp op)) ops

let simulate ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model =
  let prefill =
    phase_breakdown ~calib ~tp ~request device model Layer.Prefill
  in
  let decode = phase_breakdown ~calib ~tp ~request device model Layer.Decode in
  {
    device;
    model;
    request;
    tp;
    ttft_s = prefill.Op_model.total_s;
    tbt_s = decode.Op_model.total_s;
    prefill;
    decode;
  }

let layers r = float_of_int r.model.Model.num_layers
let model_ttft_s r = r.ttft_s *. layers r
let model_tbt_s r = r.tbt_s *. layers r

let end_to_end_s r =
  let output = max 1 r.request.Request.output_len in
  model_ttft_s r +. (model_tbt_s r *. float_of_int (output - 1))

let throughput_tokens_per_s r =
  let output = float_of_int (max 1 r.request.Request.output_len) in
  float_of_int r.request.Request.batch *. output /. end_to_end_s r

let mfu phase_flops latency r =
  let cluster_peak =
    Device.peak_tensor_flops r.device *. float_of_int r.tp
  in
  phase_flops /. latency /. cluster_peak

let mfu_prefill r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Prefill
    *. float_of_int r.tp
  in
  mfu flops r.ttft_s r

let mfu_decode r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Decode
    *. float_of_int r.tp
  in
  mfu flops r.tbt_s r

let pp_result ppf r =
  Format.fprintf ppf
    "%s on %s (tp=%d, %a): TTFT %.4g ms, TBT %.4g ms/layer (MFU %.1f%% / \
     %.1f%%)"
    r.model.Model.name r.device.Device.name r.tp Request.pp r.request
    (Acs_util.Units.to_ms r.ttft_s)
    (Acs_util.Units.to_ms r.tbt_s)
    (100. *. mfu_prefill r)
    (100. *. mfu_decode r)
