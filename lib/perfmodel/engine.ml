module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Layer = Acs_workload.Layer

type result = {
  device : Device.t;
  model : Model.t;
  request : Request.t;
  tp : int;
  ttft_s : float;
  tbt_s : float;
  prefill : Op_model.breakdown;
  decode : Op_model.breakdown;
}

let phase_breakdown ~calib ~tp ~request device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.fold_left
    (fun acc op -> Op_model.add acc (Op_model.latency ~calib device ~tp op))
    Op_model.zero ops

let op_latencies ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.map (fun op -> (op, Op_model.latency ~calib device ~tp op)) ops

module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

let dominant_bound (b : Op_model.breakdown) =
  if b.Op_model.comm_s >= b.Op_model.compute_s
     && b.Op_model.comm_s >= b.Op_model.memory_s
  then "communication"
  else if b.Op_model.compute_s >= b.Op_model.memory_s then "compute"
  else "memory"

let phase_histogram phase =
  Metrics.histogram "engine_phase_seconds"
    ~labels:[ ("phase", Layer.phase_to_string phase) ]

(* Instrumented per-phase evaluation: one span per phase carrying the
   modeled flops/bytes/bound, plus a per-phase histogram of the modeled
   layer latency. Everything is behind one [Span.enabled] branch so the
   disabled cost stays branch-only (the speed bench's [trace] group holds
   this to account). *)
let observed_phase_breakdown ~calib ~tp ~request device model phase =
  if not (Span.enabled ()) then
    phase_breakdown ~calib ~tp ~request device model phase
  else
    Span.with_span
      ("engine." ^ Layer.phase_to_string phase)
      ~attrs:[ ("model", Span.Str model.Model.name); ("tp", Span.Int tp) ]
      (fun () ->
        let b = phase_breakdown ~calib ~tp ~request device model phase in
        let flops = Layer.total_flops model request ~tp phase in
        let bytes =
          List.fold_left
            (fun acc op -> acc +. Op_model.dram_traffic_bytes ~calib device op)
             0.
            (Layer.ops model request ~tp phase)
        in
        Span.add_attr "flops" (Span.Float flops);
        Span.add_attr "dram_bytes" (Span.Float bytes);
        Span.add_attr "bound" (Span.Str (dominant_bound b));
        Span.add_attr "layer_s" (Span.Float b.Op_model.total_s);
        Metrics.observe (phase_histogram phase) b.Op_model.total_s;
        b)

let simulate ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model =
  let prefill =
    observed_phase_breakdown ~calib ~tp ~request device model Layer.Prefill
  in
  let decode =
    observed_phase_breakdown ~calib ~tp ~request device model Layer.Decode
  in
  {
    device;
    model;
    request;
    tp;
    ttft_s = prefill.Op_model.total_s;
    tbt_s = decode.Op_model.total_s;
    prefill;
    decode;
  }

let layers r = float_of_int r.model.Model.num_layers
let model_ttft_s r = r.ttft_s *. layers r
let model_tbt_s r = r.tbt_s *. layers r

let end_to_end_s r =
  let output = max 1 r.request.Request.output_len in
  model_ttft_s r +. (model_tbt_s r *. float_of_int (output - 1))

let throughput_tokens_per_s r =
  let output = float_of_int (max 1 r.request.Request.output_len) in
  float_of_int r.request.Request.batch *. output /. end_to_end_s r

let mfu phase_flops latency r =
  let cluster_peak =
    Device.peak_tensor_flops r.device *. float_of_int r.tp
  in
  phase_flops /. latency /. cluster_peak

let mfu_prefill r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Prefill
    *. float_of_int r.tp
  in
  mfu flops r.ttft_s r

let mfu_decode r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Decode
    *. float_of_int r.tp
  in
  mfu flops r.tbt_s r

let pp_result ppf r =
  Format.fprintf ppf
    "%s on %s (tp=%d, %a): TTFT %.4g ms, TBT %.4g ms/layer (MFU %.1f%% / \
     %.1f%%)"
    r.model.Model.name r.device.Device.name r.tp Request.pp r.request
    (Acs_util.Units.to_ms r.ttft_s)
    (Acs_util.Units.to_ms r.tbt_s)
    (100. *. mfu_prefill r)
    (100. *. mfu_decode r)
