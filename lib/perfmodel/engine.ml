module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Layer = Acs_workload.Layer

type result = {
  device : Device.t;
  model : Model.t;
  request : Request.t;
  tp : int;
  ttft_s : float;
  tbt_s : float;
  prefill : Op_model.breakdown;
  decode : Op_model.breakdown;
}

let phase_breakdown ~calib ~tp ~request device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.fold_left
    (fun acc op -> Op_model.add acc (Op_model.latency ~calib device ~tp op))
    Op_model.zero ops

let op_latencies ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model phase =
  let ops = Layer.ops model request ~tp phase in
  List.map (fun op -> (op, Op_model.latency ~calib device ~tp op)) ops

module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

let dominant_bound (b : Op_model.breakdown) =
  if b.Op_model.comm_s >= b.Op_model.compute_s
     && b.Op_model.comm_s >= b.Op_model.memory_s
  then "communication"
  else if b.Op_model.compute_s >= b.Op_model.memory_s then "compute"
  else "memory"

let phase_histogram phase =
  Metrics.histogram "engine_phase_seconds"
    ~labels:[ ("phase", Layer.phase_to_string phase) ]

(* Instrumented per-phase evaluation: one span per phase carrying the
   modeled flops/bytes/bound, plus a per-phase histogram of the modeled
   layer latency. Everything is behind one [Span.enabled] branch so the
   disabled cost stays branch-only (the speed bench's [trace] group holds
   this to account). *)
let observed_phase_breakdown ~calib ~tp ~request device model phase =
  if not (Span.enabled ()) then
    phase_breakdown ~calib ~tp ~request device model phase
  else
    Span.with_span
      ("engine." ^ Layer.phase_to_string phase)
      ~attrs:[ ("model", Span.Str model.Model.name); ("tp", Span.Int tp) ]
      (fun () ->
        let b = phase_breakdown ~calib ~tp ~request device model phase in
        let flops = Layer.total_flops model request ~tp phase in
        let bytes =
          List.fold_left
            (fun acc op -> acc +. Op_model.dram_traffic_bytes ~calib device op)
             0.
            (Layer.ops model request ~tp phase)
        in
        Span.add_attr "flops" (Span.Float flops);
        Span.add_attr "dram_bytes" (Span.Float bytes);
        Span.add_attr "bound" (Span.Str (dominant_bound b));
        Span.add_attr "layer_s" (Span.Float b.Op_model.total_s);
        Metrics.observe (phase_histogram phase) b.Op_model.total_s;
        b)

let simulate ?(calib = Calib.default) ?(tp = 4) ?(request = Request.default)
    device model =
  let prefill =
    observed_phase_breakdown ~calib ~tp ~request device model Layer.Prefill
  in
  let decode =
    observed_phase_breakdown ~calib ~tp ~request device model Layer.Decode
  in
  {
    device;
    model;
    request;
    tp;
    ttft_s = prefill.Op_model.total_s;
    tbt_s = decode.Op_model.total_s;
    prefill;
    decode;
  }

(* --- the compiled fast path ---

   [compile] runs [Layer.ops] once per evaluation context;
   [simulate_compiled] evaluates a device against the flat arrays. Every
   per-device quantity the legacy path recomputes per op (effective DRAM
   bandwidth, peak MAC rate, the L2 tile, the vector-unit denominator, the
   per-device matmul-efficiency terms, the all-reduce ring constants) is
   hoisted to one computation per call; since each is the same float the
   per-op path would produce, the summed breakdowns are bit-identical to
   [simulate]'s (the property suite checks every field). *)

module Compiled = Acs_workload.Compiled

let compile ?tp ?request model =
  Compiled.compile ?tp ?request ~bytes_per_value:Op_model.bytes_per_value model

let compiled_phase_breakdown ~calib ~tp device (ph : Compiled.phase) =
  let peak_macs =
    float_of_int (Device.total_macs_per_cycle device)
    *. device.Device.frequency_hz
  in
  let bw = Op_model.effective_dram_bandwidth ~calib device in
  let tile = sqrt (device.Device.l2_bytes /. calib.Calib.l2_reuse_bytes) in
  let menv = Op_model.matmul_env ~calib device in
  let vector_denom =
    Device.peak_vector_flops device *. calib.Calib.vector_efficiency
  in
  let overhead_s = calib.Calib.kernel_overhead_s in
  let leak = calib.Calib.overlap_leak in
  (* Ring all-reduce constants; [steps_over_n] is 0 at tp = 1 (no
     communication), matching the legacy guard. *)
  let n = float_of_int tp in
  let steps = 2. *. (n -. 1.) in
  let steps_over_n = steps /. n in
  let per_direction =
    Acs_hardware.Interconnect.total_bandwidth device.Device.interconnect /. 2.
  in
  let ar_latency_s = steps *. calib.Calib.hop_latency_s in
  let compute = ref 0.
  and memory = ref 0.
  and comm = ref 0.
  and overhead = ref 0.
  and total = ref 0.
  and dram_bytes = ref 0. in
  let overlapped compute_s memory_s =
    Float.max compute_s memory_s +. (leak *. Float.min compute_s memory_s)
  in
  Array.iter
    (fun op ->
      match op with
      | Compiled.Matmul mm ->
          let compute_s =
            mm.Compiled.macs /. peak_macs
            /. Op_model.matmul_efficiency_in menv ~m:mm.Compiled.m
                 ~n:mm.Compiled.n
          in
          let bytes =
            Float.max mm.Compiled.compulsory_bytes
              ((mm.Compiled.mac_bytes /. tile) +. mm.Compiled.out_bytes)
          in
          let ramp_bytes =
            if mm.Compiled.weights_streamed then calib.Calib.dram_ramp_bytes
            else 0.
          in
          let memory_s = (bytes +. ramp_bytes) /. bw in
          compute := !compute +. compute_s;
          memory := !memory +. memory_s;
          overhead := !overhead +. overhead_s;
          total := !total +. (overlapped compute_s memory_s +. overhead_s);
          dram_bytes := !dram_bytes +. bytes
      | Compiled.Elementwise ew ->
          let compute_s = ew.flops /. vector_denom in
          let memory_s = ew.bytes /. bw in
          compute := !compute +. compute_s;
          memory := !memory +. memory_s;
          overhead := !overhead +. overhead_s;
          total := !total +. (overlapped compute_s memory_s +. overhead_s);
          dram_bytes := !dram_bytes +. ew.bytes
      | Compiled.All_reduce c ->
          let comm_s =
            if tp <= 1 then 0.
            else (steps_over_n *. c.bytes /. per_direction) +. ar_latency_s
          in
          comm := !comm +. comm_s;
          overhead := !overhead +. overhead_s;
          total := !total +. (comm_s +. overhead_s))
    ph.Compiled.ops;
  ( {
      Op_model.compute_s = !compute;
      memory_s = !memory;
      comm_s = !comm;
      overhead_s = !overhead;
      total_s = !total;
    },
    !dram_bytes )

let observed_compiled_breakdown ~calib (c : Compiled.t) device phase =
  let ph =
    match phase with
    | Layer.Prefill -> c.Compiled.prefill
    | Layer.Decode -> c.Compiled.decode
  in
  if not (Span.enabled ()) then
    fst (compiled_phase_breakdown ~calib ~tp:c.Compiled.tp device ph)
  else
    Span.with_span
      ("engine." ^ Layer.phase_to_string phase)
      ~attrs:
        [
          ("model", Span.Str c.Compiled.model.Model.name);
          ("tp", Span.Int c.Compiled.tp);
        ]
      (fun () ->
        let b, bytes =
          compiled_phase_breakdown ~calib ~tp:c.Compiled.tp device ph
        in
        Span.add_attr "flops" (Span.Float ph.Compiled.flops);
        Span.add_attr "dram_bytes" (Span.Float bytes);
        Span.add_attr "bound" (Span.Str (dominant_bound b));
        Span.add_attr "layer_s" (Span.Float b.Op_model.total_s);
        Metrics.observe (phase_histogram phase) b.Op_model.total_s;
        b)

let simulate_compiled ?(calib = Calib.default) (c : Compiled.t) device =
  let prefill = observed_compiled_breakdown ~calib c device Layer.Prefill in
  let decode = observed_compiled_breakdown ~calib c device Layer.Decode in
  {
    device;
    model = c.Compiled.model;
    request = c.Compiled.request;
    tp = c.Compiled.tp;
    ttft_s = prefill.Op_model.total_s;
    tbt_s = decode.Op_model.total_s;
    prefill;
    decode;
  }

let layers r = float_of_int r.model.Model.num_layers
let model_ttft_s r = r.ttft_s *. layers r
let model_tbt_s r = r.tbt_s *. layers r

let end_to_end_s r =
  let output = max 1 r.request.Request.output_len in
  model_ttft_s r +. (model_tbt_s r *. float_of_int (output - 1))

let throughput_tokens_per_s r =
  let output = float_of_int (max 1 r.request.Request.output_len) in
  float_of_int r.request.Request.batch *. output /. end_to_end_s r

let mfu phase_flops latency r =
  let cluster_peak =
    Device.peak_tensor_flops r.device *. float_of_int r.tp
  in
  phase_flops /. latency /. cluster_peak

let mfu_prefill r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Prefill
    *. float_of_int r.tp
  in
  mfu flops r.ttft_s r

let mfu_decode r =
  let flops =
    Layer.total_flops r.model r.request ~tp:r.tp Layer.Decode
    *. float_of_int r.tp
  in
  mfu flops r.tbt_s r

let pp_result ppf r =
  Format.fprintf ppf
    "%s on %s (tp=%d, %a): TTFT %.4g ms, TBT %.4g ms/layer (MFU %.1f%% / \
     %.1f%%)"
    r.model.Model.name r.device.Device.name r.tp Request.pp r.request
    (Acs_util.Units.to_ms r.ttft_s)
    (Acs_util.Units.to_ms r.tbt_s)
    (100. *. mfu_prefill r)
    (100. *. mfu_decode r)
