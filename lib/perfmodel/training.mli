(** Training-step model.

    The export rules are motivated by training compute even though the
    paper evaluates inference; this module extends the same per-operator
    machinery to a data/tensor-parallel training step so the benches can
    ask "what do compliant devices do to a training timeline?".

    A step on one data-parallel rank is modeled as: forward pass = the
    prefill of one microbatch; backward pass = [backward_factor] (2x) the
    forward compute plus the same memory traffic; a gradient all-reduce of
    the rank's weight shard across the data-parallel group over the device
    interconnect; and an optimizer update streaming weights, gradients and
    Adam state through HBM. *)

type config = {
  tp : int;  (** tensor-parallel group size *)
  dp : int;  (** data-parallel replicas *)
  micro_batch : int;  (** sequences per rank per microbatch *)
  accumulation : int;  (** microbatches accumulated per optimizer step *)
  seq_len : int;
}

val default_config : config
(** tp 4, dp 32, micro batch 4, accumulation 8, sequence 2048. *)

val devices : config -> int

type step = {
  forward_s : float;
  backward_s : float;
  grad_allreduce_s : float;
  optimizer_s : float;
  step_s : float;  (** whole optimizer step (all microbatches) *)
  tokens_per_step : int;  (** global batch x sequence length *)
  tokens_per_s : float;
  mfu : float;  (** model FLOPs utilization across the cluster *)
}

val step :
  ?calib:Calib.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  config ->
  step
(** Raises [Invalid_argument] on a config the model cannot shard. *)

val optimizer_state_bytes_per_device :
  Acs_workload.Model.t -> config -> float
(** Mixed-precision Adam: FP16 weights and gradients plus FP32 master
    weights and two moments (16 bytes/param), ZeRO-1 sharded over the
    data-parallel group, plus the tensor-parallel shard split. *)

val memory_fits : Acs_hardware.Device.t -> Acs_workload.Model.t -> config -> bool

val days_to_train :
  ?calib:Calib.t ->
  tokens:float ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  config ->
  float
(** Wall-clock days to stream [tokens] training tokens. *)

val pp_step : Format.formatter -> step -> unit
