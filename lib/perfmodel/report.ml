module Layer = Acs_workload.Layer
module Op = Acs_workload.Op

type bound = Compute_bound | Memory_bound | Communication_bound | Overhead_bound

type op_report = {
  label : string;
  flops : float;
  dram_bytes : float;
  latency : Op_model.breakdown;
  bound : bound;
  share : float;
}

type phase_report = {
  phase : Layer.phase;
  ops : op_report list;
  total_s : float;
  compute_share : float;
  memory_share : float;
  communication_share : float;
  overhead_share : float;
}

let classify (b : Op_model.breakdown) =
  let streams =
    [
      (Compute_bound, b.Op_model.compute_s);
      (Memory_bound, b.Op_model.memory_s);
      (Communication_bound, b.Op_model.comm_s);
      (Overhead_bound, b.Op_model.overhead_s);
    ]
  in
  fst (Acs_util.Stats.argmax snd streams)

let phase_report ?(calib = Calib.default) ?(tp = 4)
    ?(request = Acs_workload.Request.default) device model phase =
  let pairs = Engine.op_latencies ~calib ~tp ~request device model phase in
  let total_s =
    List.fold_left (fun acc (_, b) -> acc +. b.Op_model.total_s) 0. pairs
  in
  let ops =
    List.map
      (fun (op, b) ->
        {
          label = Op.label op;
          flops = Op.flops op;
          dram_bytes = Op_model.dram_traffic_bytes ~calib device op;
          latency = b;
          bound = classify b;
          share = b.Op_model.total_s /. total_s;
        })
      pairs
  in
  let share_of bound =
    List.fold_left
      (fun acc r -> if r.bound = bound then acc +. r.share else acc)
      0. ops
  in
  {
    phase;
    ops;
    total_s;
    compute_share = share_of Compute_bound;
    memory_share = share_of Memory_bound;
    communication_share = share_of Communication_bound;
    overhead_share = share_of Overhead_bound;
  }

let bound_to_string = function
  | Compute_bound -> "compute"
  | Memory_bound -> "memory"
  | Communication_bound -> "communication"
  | Overhead_bound -> "overhead"

let pp_phase_report ppf r =
  Format.fprintf ppf "%s: %a total@."
    (Layer.phase_to_string r.phase)
    Acs_util.Units.pp_time r.total_s;
  List.iter
    (fun o ->
      Format.fprintf ppf "  %-18s %6.2f%%  %a  (%s; %.3g GFLOP, %.3g MB)@."
        o.label (100. *. o.share) Acs_util.Units.pp_time
        o.latency.Op_model.total_s (bound_to_string o.bound) (o.flops /. 1e9)
        (o.dram_bytes /. 1e6))
    r.ops;
  Format.fprintf ppf
    "  bound shares: compute %.0f%%, memory %.0f%%, comm %.0f%%, overhead \
     %.0f%%"
    (100. *. r.compute_share) (100. *. r.memory_share)
    (100. *. r.communication_share)
    (100. *. r.overhead_share)
