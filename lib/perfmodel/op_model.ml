module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic
module Op = Acs_workload.Op

type breakdown = {
  compute_s : float;
  memory_s : float;
  comm_s : float;
  overhead_s : float;
  total_s : float;
}

let zero =
  { compute_s = 0.; memory_s = 0.; comm_s = 0.; overhead_s = 0.; total_s = 0. }

let add a b =
  {
    compute_s = a.compute_s +. b.compute_s;
    memory_s = a.memory_s +. b.memory_s;
    comm_s = a.comm_s +. b.comm_s;
    overhead_s = a.overhead_s +. b.overhead_s;
    total_s = a.total_s +. b.total_s;
  }

let effective_dram_bandwidth ?(calib = Calib.default) (dev : Device.t) =
  let peak = Device.memory_bandwidth dev *. calib.Calib.dram_efficiency in
  let sink =
    float_of_int dev.Device.core_count *. calib.Calib.per_core_dram_bw
  in
  Float.min peak sink

let round_up_to x multiple = (x + multiple - 1) / multiple * multiple

(* The matmul efficiency model splits into per-device terms (control,
   scheduling, the L1 share and full feed demand) and per-shape terms
   (rounding, fill, the skinny-feed derate). [matmul_env] hoists the
   per-device terms so a compiled sweep computes them once per design
   point instead of once per op; [matmul_efficiency_in] combines them with
   a shape in exactly the legacy expression order, keeping the product
   bit-identical. *)
type matmul_env = {
  dx : int;
  dy : int;
  control : float;
  scheduling : float;
  l1_share : float;  (** L1 bytes per lane *)
  feed_full : float;  (** feed bytes wanted by a non-skinny product *)
  feed_knee_ratio : float;
  feed_knee_power : float;
}

let matmul_env ?(calib = Calib.default) (dev : Device.t) =
  let dx = dev.Device.systolic.Systolic.dim_x in
  let dy = dev.Device.systolic.Systolic.dim_y in
  {
    dx;
    dy;
    control =
      1.
      /. (1.
         +. calib.Calib.control_overhead
            *. ((1. /. float_of_int dx) +. (1. /. float_of_int dy))
         +. (calib.Calib.drain_overhead *. float_of_int (dx * dy)));
    scheduling =
      1.
      /. (1.
         +. (calib.Calib.sched_overhead_per_core
            *. float_of_int dev.Device.core_count));
    l1_share = Device.l1_per_lane dev;
    feed_full = Calib.feed_bytes calib dev.Device.systolic;
    feed_knee_ratio = calib.Calib.feed_knee_ratio;
    feed_knee_power = calib.Calib.feed_knee_power;
  }

let matmul_efficiency_in env ~m ~n =
  let dx = env.dx and dy = env.dy in
  let rounding =
    let f actual dim =
      float_of_int actual /. float_of_int (round_up_to actual dim)
    in
    f m dx *. f n dy
  in
  let fill =
    let m' = float_of_int (round_up_to m dx) in
    m' /. (m' +. float_of_int dx)
  in
  let feed =
    let share = env.l1_share in
    (* Skinny products (decode GEMVs) stream short row chunks and need
       proportionally less double-buffer capacity. *)
    let skinny = Float.min 1. (float_of_int m /. float_of_int (8 * dx)) in
    let need = skinny *. env.feed_full in
    let soft = share /. (share +. need) in
    let knee = env.feed_knee_ratio *. need in
    let hard =
      if knee <= 0. then 1.
      else Float.min 1. ((share /. knee) ** env.feed_knee_power)
    in
    soft *. hard
  in
  rounding *. fill *. env.control *. feed *. env.scheduling

let matmul_compute_efficiency ?(calib = Calib.default) (dev : Device.t)
    (mm : Op.matmul) =
  matmul_efficiency_in (matmul_env ~calib dev) ~m:mm.Op.m ~n:mm.Op.n

let bytes_per_value = 2.

let matmul_dram_bytes ?(calib = Calib.default) (dev : Device.t)
    (mm : Op.matmul) =
  let compulsory =
    Op.matmul_weight_bytes mm ~bytes_per_value
    +. Op.matmul_activation_bytes mm ~bytes_per_value
  in
  let tile = sqrt (dev.Device.l2_bytes /. calib.Calib.l2_reuse_bytes) in
  let tiled =
    2. *. Op.matmul_macs mm *. bytes_per_value /. tile
    +. (float_of_int (mm.Op.m * mm.Op.n * mm.Op.batch_count) *. bytes_per_value)
  in
  Float.max compulsory tiled

let dram_traffic_bytes ?(calib = Calib.default) dev op =
  match op with
  | Op.Matmul mm -> matmul_dram_bytes ~calib dev mm
  | Op.Elementwise ew -> Op.elementwise_bytes ew
  | Op.All_reduce _ -> 0.

let matmul_latency ~calib dev mm =
  let peak_macs =
    float_of_int (Device.total_macs_per_cycle dev) *. dev.Device.frequency_hz
  in
  let compute_s =
    Op.matmul_macs mm /. peak_macs /. matmul_compute_efficiency ~calib dev mm
  in
  let bw = effective_dram_bandwidth ~calib dev in
  let ramp_bytes =
    if mm.Op.weights_streamed then calib.Calib.dram_ramp_bytes else 0.
  in
  let memory_s = (matmul_dram_bytes ~calib dev mm +. ramp_bytes) /. bw in
  (compute_s, memory_s)

let elementwise_latency ~calib dev (ew : Op.elementwise) =
  let compute_s =
    ew.Op.elements *. ew.Op.flops_per_element
    /. (Device.peak_vector_flops dev *. calib.Calib.vector_efficiency)
  in
  let memory_s =
    Op.elementwise_bytes ew /. effective_dram_bandwidth ~calib dev
  in
  (compute_s, memory_s)

let all_reduce_latency ~calib dev ~tp (c : Op.collective) =
  if tp <= 1 then 0.
  else begin
    let n = float_of_int tp in
    let steps = 2. *. (n -. 1.) in
    (* The interconnect figure is aggregate bidirectional bandwidth; a ring
       step uses one direction of one link's worth per device. *)
    let per_direction =
      Acs_hardware.Interconnect.total_bandwidth dev.Device.interconnect /. 2.
    in
    let bandwidth_s = steps /. n *. c.Op.bytes /. per_direction in
    let latency_s = steps *. calib.Calib.hop_latency_s in
    bandwidth_s +. latency_s
  end

let latency ?(calib = Calib.default) dev ~tp op =
  if tp <= 0 then invalid_arg "Op_model.latency: tp must be positive";
  let overhead_s = calib.Calib.kernel_overhead_s in
  let overlapped compute_s memory_s =
    Float.max compute_s memory_s
    +. (calib.Calib.overlap_leak *. Float.min compute_s memory_s)
  in
  match op with
  | Op.Matmul mm ->
      let compute_s, memory_s = matmul_latency ~calib dev mm in
      {
        compute_s;
        memory_s;
        comm_s = 0.;
        overhead_s;
        total_s = overlapped compute_s memory_s +. overhead_s;
      }
  | Op.Elementwise ew ->
      let compute_s, memory_s = elementwise_latency ~calib dev ew in
      {
        compute_s;
        memory_s;
        comm_s = 0.;
        overhead_s;
        total_s = overlapped compute_s memory_s +. overhead_s;
      }
  | Op.All_reduce c ->
      let comm_s = all_reduce_latency ~calib dev ~tp c in
      {
        compute_s = 0.;
        memory_s = 0.;
        comm_s;
        overhead_s;
        total_s = comm_s +. overhead_s;
      }
