(** Whole-layer and whole-model inference simulation.

    Following the paper, [simulate] reports the latency of {e one}
    Transformer layer: TTFT is the prefill latency of a layer processing
    [batch * input_len] tokens, and TBT is the per-output-token latency of
    a layer at mid-generation context. Whole-model quantities multiply by
    the layer count. *)

type result = {
  device : Acs_hardware.Device.t;
  model : Acs_workload.Model.t;
  request : Acs_workload.Request.t;
  tp : int;
  ttft_s : float;  (** one-layer prefill latency (paper's TTFT) *)
  tbt_s : float;  (** one-layer decode latency (paper's TBT) *)
  prefill : Op_model.breakdown;
  decode : Op_model.breakdown;
}

val simulate :
  ?calib:Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  result
(** Defaults: the paper's setting of 4-way tensor parallelism and
    batch 32 / input 2048 / output 1024. *)

val compile :
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_workload.Model.t ->
  Acs_workload.Compiled.t
(** Flatten the (model, request, tp) context once (see
    {!Acs_workload.Compiled}); defaults match {!simulate}. *)

val simulate_compiled :
  ?calib:Calib.t -> Acs_workload.Compiled.t -> Acs_hardware.Device.t -> result
(** [simulate_compiled ?calib (compile ?tp ?request model) device] is
    bit-identical to [simulate ?calib ?tp ?request device model] - every
    breakdown field, not just the totals - but hoists all per-device terms
    out of the op loop and walks flat arrays instead of rebuilding the op
    list, which is what makes cold sweeps fast. The property suite holds
    the identity to account. *)

val op_latencies :
  ?calib:Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Acs_workload.Layer.phase ->
  (Acs_workload.Op.t * Op_model.breakdown) list
(** Per-operator breakdown, for inspection and the examples. *)

val model_ttft_s : result -> float
(** Whole-model prefill latency ([ttft_s * num_layers]). *)

val model_tbt_s : result -> float

val end_to_end_s : result -> float
(** Whole-model latency to produce the full output sequence. *)

val throughput_tokens_per_s : result -> float
(** Generated tokens per second across the batch. *)

val mfu_prefill : result -> float
(** Model FLOPs utilization of the prefill phase: achieved FLOP/s over the
    device's peak tensor FLOP/s. *)

val mfu_decode : result -> float
val pp_result : Format.formatter -> result -> unit
