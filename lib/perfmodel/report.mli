(** Per-operator bottleneck reports: where a phase's time actually goes.

    Used by the examples and the CLI's verbose mode; also the quickest way
    to see the paper's central asymmetry (prefill ~compute bound, decode
    ~bandwidth bound) at operator granularity. *)

type bound = Compute_bound | Memory_bound | Communication_bound | Overhead_bound

type op_report = {
  label : string;
  flops : float;
  dram_bytes : float;
  latency : Op_model.breakdown;
  bound : bound;
  share : float;  (** fraction of the phase total *)
}

type phase_report = {
  phase : Acs_workload.Layer.phase;
  ops : op_report list;
  total_s : float;
  compute_share : float;
      (** fraction of phase time in ops that are compute bound *)
  memory_share : float;
  communication_share : float;
  overhead_share : float;
}

val phase_report :
  ?calib:Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  Acs_workload.Layer.phase ->
  phase_report

val bound_to_string : bound -> string
val pp_phase_report : Format.formatter -> phase_report -> unit
(** Multi-line: one row per op plus the summary shares. *)
