(** Frame-rate model for {!Acs_workload.Graphics} scenes.

    Intentionally systolic-array-blind: shading runs on the vector units,
    textures stream at a low irregular-access efficiency, and ray
    traversal is a latency-bound chain of dependent memory accesses hidden
    only by thread-level parallelism. This realizes the paper's Sec. 5.4
    claim that AI-scoped limits (tensor TPP, L1 size, peak bandwidth) need
    not reduce gaming performance. *)

type breakdown = {
  shading_s : float;
  texture_s : float;
  raytracing_s : float;
  fixed_s : float;  (** per-frame driver/present overhead *)
  frame_s : float;
}

val texture_efficiency : float
(** Fraction of peak DRAM bandwidth reachable by irregular texture reads
    (0.35). *)

val memory_latency_s : float
(** DRAM round-trip latency for dependent accesses (350 ns). *)

val frame_breakdown :
  Acs_hardware.Device.t -> Acs_workload.Graphics.scene -> breakdown
(** Shading and texture streams overlap (the longer wins); ray traversal
    and the fixed overhead are additive. *)

val fps : Acs_hardware.Device.t -> Acs_workload.Graphics.scene -> float

val pp_breakdown : Format.formatter -> breakdown -> unit
