module Device = Acs_hardware.Device
module Memory = Acs_hardware.Memory
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Layer = Acs_workload.Layer

type plan = { tp : int; pp : int }

let devices plan = plan.tp * plan.pp

type memory_check = {
  weight_bytes_per_device : float;
  kv_bytes_per_device : float;
  activation_reserve_bytes : float;
  required_bytes : float;
  capacity_bytes : float;
  fits : bool;
}

let validate_plan model request plan =
  if plan.tp <= 0 || plan.pp <= 0 then
    invalid_arg "Cluster: plan sizes must be positive";
  if model.Model.n_heads mod plan.tp <> 0 then
    invalid_arg "Cluster: tp must divide the model's head count";
  if model.Model.num_layers mod plan.pp <> 0 then
    invalid_arg "Cluster: pp must divide the layer count";
  if plan.pp > request.Request.batch then
    invalid_arg "Cluster: pp exceeds the batch (empty pipeline stages)"

let memory_check ?(request = Request.default) dev model plan =
  validate_plan model request plan;
  let layers_per_stage =
    float_of_int (model.Model.num_layers / plan.pp)
  in
  let weight_bytes_per_device =
    Layer.weight_bytes_per_device model ~tp:plan.tp *. layers_per_stage
  in
  let kv_bytes_per_device =
    Layer.kv_bytes_per_device model request ~tp:plan.tp *. layers_per_stage
  in
  (* Activations, collective buffers, fragmentation: a flat 10% reserve. *)
  let capacity_bytes = dev.Device.memory.Memory.capacity_bytes in
  let activation_reserve_bytes = 0.10 *. capacity_bytes in
  let required_bytes =
    weight_bytes_per_device +. kv_bytes_per_device +. activation_reserve_bytes
  in
  {
    weight_bytes_per_device;
    kv_bytes_per_device;
    activation_reserve_bytes;
    required_bytes;
    capacity_bytes;
    fits = required_bytes <= capacity_bytes;
  }

type result = {
  plan : plan;
  ttft_s : float;
  token_latency_s : float;
  throughput_tokens_per_s : float;
  memory : memory_check;
}

let simulate ?calib ?(request = Request.default) dev model plan =
  validate_plan model request plan;
  let layers_per_stage = float_of_int (model.Model.num_layers / plan.pp) in
  (* Prefill: split the batch into [pp] microbatches; a stage-step
     processes one microbatch through one stage. *)
  let micro_batch = max 1 (request.Request.batch / plan.pp) in
  let micro_request =
    Request.make ~batch:micro_batch ~input_len:request.Request.input_len
      ~output_len:request.Request.output_len
  in
  let micro =
    Engine.simulate ?calib ~tp:plan.tp ~request:micro_request dev model
  in
  let stage_prefill_s = micro.Engine.ttft_s *. layers_per_stage in
  let ttft_s = float_of_int ((2 * plan.pp) - 1) *. stage_prefill_s in
  (* Decoding: a token still traverses every layer sequentially; pipeline
     stages meanwhile work on other requests/tokens. *)
  let full = Engine.simulate ?calib ~tp:plan.tp ~request dev model in
  let token_latency_s =
    full.Engine.tbt_s *. float_of_int model.Model.num_layers
  in
  let stage_decode_s = full.Engine.tbt_s *. layers_per_stage in
  let throughput_tokens_per_s =
    float_of_int request.Request.batch /. stage_decode_s
  in
  {
    plan;
    ttft_s;
    token_latency_s;
    throughput_tokens_per_s;
    memory = memory_check ~request dev model plan;
  }

let divisors n = List.filter (fun d -> n mod d = 0) (List.init n (fun i -> i + 1))

let choose_plan ?calib ?(request = Request.default) ?(max_tp = 8) ~max_devices
    dev model =
  if max_devices <= 0 then invalid_arg "Cluster.choose_plan: max_devices";
  let tps =
    List.filter (fun tp -> tp <= max_tp) (divisors model.Model.n_heads)
  in
  let pps =
    List.filter
      (fun pp -> pp <= request.Request.batch)
      (divisors model.Model.num_layers)
  in
  let candidates =
    List.concat_map
      (fun tp ->
        List.filter_map
          (fun pp ->
            let plan = { tp; pp } in
            if devices plan > max_devices then None
            else if (memory_check ~request dev model plan).fits then Some plan
            else None)
          pps)
      tps
  in
  match candidates with
  | [] -> None
  | _ :: _ ->
      let results = List.map (simulate ?calib ~request dev model) candidates in
      let better a b =
        let da = devices a.plan and db = devices b.plan in
        if da <> db then da < db
        else a.throughput_tokens_per_s > b.throughput_tokens_per_s
      in
      Some
        (List.fold_left
           (fun best r -> if better r best then r else best)
           (List.hd results) (List.tl results))

let pp_result ppf r =
  Format.fprintf ppf
    "tp=%d x pp=%d (%d devices): TTFT %a, token latency %a, %.0f tok/s; \
     memory %.1f/%.1f GB per device%s"
    r.plan.tp r.plan.pp (devices r.plan) Acs_util.Units.pp_time r.ttft_s
    Acs_util.Units.pp_time r.token_latency_s r.throughput_tokens_per_s
    (r.memory.required_bytes /. 1e9)
    (r.memory.capacity_bytes /. 1e9)
    (if r.memory.fits then "" else " (DOES NOT FIT)")
