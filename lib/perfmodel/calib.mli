(** Calibration constants of the analytical performance model.

    The model is calibrated against the anchor points the paper reports for
    its modeled NVIDIA A100 (per-layer GPT-3 175B TTFT ~283 ms / TBT
    ~1.43 ms and Llama 3 8B TTFT ~47 ms / TBT ~0.65 ms at batch 32, input
    2048, output 1024, 4-way tensor parallelism), and against the
    sensitivity claims of Figs. 5-7 and 12 (see DESIGN.md). Constants are
    grouped here so that the calibration bench can print every knob. *)

type t = {
  dram_efficiency : float;
      (** fraction of peak HBM bandwidth achievable by large streaming
          transfers *)
  dram_ramp_bytes : float;
      (** equivalent extra bytes charged to every streamed-weight transfer
          (DRAM page activation / ramp); penalizes small transfers, making
          small models relatively less efficient at using bandwidth, as the
          paper's Llama 3 results show *)
  per_core_dram_bw : float;
      (** bytes/s of DRAM bandwidth one core can sink; devices with few
          cores cannot saturate a very wide memory system *)
  kernel_overhead_s : float;  (** launch/dependency overhead per operator *)
  feed_bytes_16x16 : float;
      (** L1 working set (bytes per lane) a 16x16 systolic array needs for
          full-rate operand feeding; scales linearly with MAC count *)
  feed_knee_ratio : float;
      (** below [feed_knee_ratio * feed_bytes] of L1 per lane the array can
          no longer double-buffer operand tiles and throughput collapses *)
  feed_knee_power : float;
      (** exponent of the collapse below the knee *)
  control_overhead : float;
      (** per-pass issue/control overhead coefficient, penalizing small
          arrays: the control term of the matmul efficiency is
          1/(1 + control_overhead*(1/dim_x + 1/dim_y)
               + drain_overhead*dim_x*dim_y) *)
  drain_overhead : float;
      (** wavefront skew / drain coefficient, penalizing very large arrays;
          together with [control_overhead] this makes 16x16 the sweet spot,
          as in LLMCompass *)
  sched_overhead_per_core : float;
      (** work-distribution/synchronization derating per core:
          1/(1 + c*cores); dominates for designs that need thousands of
          tiny cores (e.g. 4x4 arrays under a TPP target) *)
  overlap_leak : float;
      (** fraction of the shorter of {compute, memory} streams that is not
          hidden by the longer one; gives prefill its (mild) sensitivity to
          L2 capacity and memory bandwidth *)
  l2_reuse_bytes : float;
      (** L2 tile footprint coefficient used to derive DRAM traffic of
          activation-resident matmuls *)
  hop_latency_s : float;  (** per-hop interconnect latency of collectives *)
  vector_efficiency : float;  (** achieved fraction of peak vector FLOPs *)
}

val default : t

val feed_bytes : t -> Acs_hardware.Systolic.t -> float
(** Feed requirement for an arbitrary array size. *)

val to_json : t -> Acs_util.Json.t
(** All fourteen knobs, one member each. *)

val of_json : Acs_util.Json.t -> t
(** Knobs absent from the object keep their {!default} value, so a
    manifest can override a single constant; unknown members raise
    {!Acs_util.Json.Error} (a typo must not silently calibrate nothing).
    [of_json (to_json c) = c]. *)
