type t = {
  dram_efficiency : float;
  dram_ramp_bytes : float;
  per_core_dram_bw : float;
  kernel_overhead_s : float;
  feed_bytes_16x16 : float;
  feed_knee_ratio : float;
  feed_knee_power : float;
  control_overhead : float;
  drain_overhead : float;
  sched_overhead_per_core : float;
  overlap_leak : float;
  l2_reuse_bytes : float;
  hop_latency_s : float;
  vector_efficiency : float;
}

let default =
  {
    dram_efficiency = 0.95;
    dram_ramp_bytes = 32e6;
    per_core_dram_bw = 256e9;
    kernel_overhead_s = 19e-6;
    feed_bytes_16x16 = 3.0e3;
    feed_knee_ratio = 6.;
    feed_knee_power = 0.75;
    control_overhead = 0.65;
    drain_overhead = 1.22e-4;
    sched_overhead_per_core = 3.33e-4;
    overlap_leak = 0.15;
    l2_reuse_bytes = 6.;
    hop_latency_s = 1e-6;
    vector_efficiency = 0.8;
  }

module Json = Acs_util.Json

(* One row per knob keeps the codec honest: adding a field to [t] without
   extending this list is a type error in [to_json]/[of_json] below. *)
let fields =
  [
    ("dram_efficiency", (fun t -> t.dram_efficiency),
     fun t v -> { t with dram_efficiency = v });
    ("dram_ramp_bytes", (fun t -> t.dram_ramp_bytes),
     fun t v -> { t with dram_ramp_bytes = v });
    ("per_core_dram_bw", (fun t -> t.per_core_dram_bw),
     fun t v -> { t with per_core_dram_bw = v });
    ("kernel_overhead_s", (fun t -> t.kernel_overhead_s),
     fun t v -> { t with kernel_overhead_s = v });
    ("feed_bytes_16x16", (fun t -> t.feed_bytes_16x16),
     fun t v -> { t with feed_bytes_16x16 = v });
    ("feed_knee_ratio", (fun t -> t.feed_knee_ratio),
     fun t v -> { t with feed_knee_ratio = v });
    ("feed_knee_power", (fun t -> t.feed_knee_power),
     fun t v -> { t with feed_knee_power = v });
    ("control_overhead", (fun t -> t.control_overhead),
     fun t v -> { t with control_overhead = v });
    ("drain_overhead", (fun t -> t.drain_overhead),
     fun t v -> { t with drain_overhead = v });
    ("sched_overhead_per_core", (fun t -> t.sched_overhead_per_core),
     fun t v -> { t with sched_overhead_per_core = v });
    ("overlap_leak", (fun t -> t.overlap_leak),
     fun t v -> { t with overlap_leak = v });
    ("l2_reuse_bytes", (fun t -> t.l2_reuse_bytes),
     fun t v -> { t with l2_reuse_bytes = v });
    ("hop_latency_s", (fun t -> t.hop_latency_s),
     fun t v -> { t with hop_latency_s = v });
    ("vector_efficiency", (fun t -> t.vector_efficiency),
     fun t v -> { t with vector_efficiency = v });
  ]

let to_json t =
  Json.obj (List.map (fun (name, get, _) -> (name, Json.float (get t))) fields)

let of_json j =
  (match j with
  | Json.Obj members ->
      List.iter
        (fun (k, _) ->
          if not (List.exists (fun (name, _, _) -> name = k) fields) then
            raise
              (Json.Error (Printf.sprintf "unknown calibration knob %S" k)))
        members
  | _ -> raise (Json.Error "calibration must be a JSON object"));
  List.fold_left
    (fun t (name, _, set) ->
      match Json.member name j with
      | Json.Null -> t
      | v -> set t (Json.to_float v))
    default fields

let feed_bytes t systolic =
  (* Operand tiles scale with the array edge (dim_x + dim_y), i.e. with the
     square root of the MAC count for square arrays. *)
  t.feed_bytes_16x16
  *. sqrt (float_of_int (Acs_hardware.Systolic.macs_per_cycle systolic) /. 256.)
