type t = {
  dram_efficiency : float;
  dram_ramp_bytes : float;
  per_core_dram_bw : float;
  kernel_overhead_s : float;
  feed_bytes_16x16 : float;
  feed_knee_ratio : float;
  feed_knee_power : float;
  control_overhead : float;
  drain_overhead : float;
  sched_overhead_per_core : float;
  overlap_leak : float;
  l2_reuse_bytes : float;
  hop_latency_s : float;
  vector_efficiency : float;
}

let default =
  {
    dram_efficiency = 0.95;
    dram_ramp_bytes = 32e6;
    per_core_dram_bw = 256e9;
    kernel_overhead_s = 19e-6;
    feed_bytes_16x16 = 3.0e3;
    feed_knee_ratio = 6.;
    feed_knee_power = 0.75;
    control_overhead = 0.65;
    drain_overhead = 1.22e-4;
    sched_overhead_per_core = 3.33e-4;
    overlap_leak = 0.15;
    l2_reuse_bytes = 6.;
    hop_latency_s = 1e-6;
    vector_efficiency = 0.8;
  }

let feed_bytes t systolic =
  (* Operand tiles scale with the array edge (dim_x + dim_y), i.e. with the
     square root of the MAC count for square arrays. *)
  t.feed_bytes_16x16
  *. sqrt (float_of_int (Acs_hardware.Systolic.macs_per_cycle systolic) /. 256.)
