(** Latency model for a single operator on one device.

    Each operator is modeled as overlapped compute and memory streams (the
    slower one wins) plus a fixed launch overhead; collectives are modeled
    as a ring all-reduce. The matmul compute model follows the systolic
    template: ideal MAC throughput derated by

    - {b rounding}: dimensions rounded up to array multiples,
    - {b fill/drain}: streaming [m] rows through a [dim_x]-deep array wastes
      [dim_x] cycles per pass ([m/(m+dim_x)]), which is what makes skinny
      decode matmuls inefficient on big arrays,
    - {b control}: per-pass issue overhead [1/(1+c*(1/dim_x+1/dim_y))],
      penalizing small arrays,
    - {b operand feed}: an L1 share per lane below {!Calib.feed_bytes}
      starves the array ([share/(share+need)]).

    DRAM traffic of a matmul is the maximum of the compulsory traffic
    (operands once) and the L2-tiled traffic [2*m*k*n*(1/T+1/T)] with
    [T = sqrt(l2/l2_reuse_bytes)]; streamed weights additionally pay a
    fixed ramp ({!Calib.t.dram_ramp_s} expressed in bytes through the
    bandwidth), so small transfers see lower effective bandwidth. *)

type breakdown = {
  compute_s : float;
  memory_s : float;
  comm_s : float;
  overhead_s : float;
  total_s : float;
}

val zero : breakdown
val add : breakdown -> breakdown -> breakdown

val effective_dram_bandwidth : ?calib:Calib.t -> Acs_hardware.Device.t -> float
(** [min (peak * dram_efficiency) (cores * per_core_dram_bw)]: a device
    with few cores cannot saturate a wide HBM system. *)

val matmul_compute_efficiency :
  ?calib:Calib.t -> Acs_hardware.Device.t -> Acs_workload.Op.matmul -> float
(** Product of the four derating factors, in (0, 1]. *)

type matmul_env
(** The per-device terms of the matmul efficiency model (control,
    scheduling, L1 share, feed demand), hoisted so a compiled sweep
    computes them once per design point instead of once per op. *)

val matmul_env : ?calib:Calib.t -> Acs_hardware.Device.t -> matmul_env

val matmul_efficiency_in : matmul_env -> m:int -> n:int -> float
(** [matmul_efficiency_in (matmul_env ~calib dev) ~m ~n] is bit-identical
    to [matmul_compute_efficiency ~calib dev mm] for a matmul with those
    row/column counts (the per-shape and per-device factors are multiplied
    in the same order). *)

val bytes_per_value : float
(** FP16 operand width assumed throughout the traffic model. *)

val dram_traffic_bytes :
  ?calib:Calib.t -> Acs_hardware.Device.t -> Acs_workload.Op.t -> float
(** Modeled DRAM bytes moved by one operator (zero for collectives), as
    used by the latency model; exposed for the energy model. *)

val latency :
  ?calib:Calib.t ->
  Acs_hardware.Device.t ->
  tp:int ->
  Acs_workload.Op.t ->
  breakdown
(** Latency of one operator; [tp] is the tensor-parallel group size (used
    by collectives). *)
