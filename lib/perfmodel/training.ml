module Device = Acs_hardware.Device
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Layer = Acs_workload.Layer

type config = {
  tp : int;
  dp : int;
  micro_batch : int;
  accumulation : int;
  seq_len : int;
}

let default_config =
  { tp = 4; dp = 32; micro_batch = 4; accumulation = 8; seq_len = 2048 }

let devices c = c.tp * c.dp

let backward_factor = 2.

type step = {
  forward_s : float;
  backward_s : float;
  grad_allreduce_s : float;
  optimizer_s : float;
  step_s : float;
  tokens_per_step : int;
  tokens_per_s : float;
  mfu : float;
}

let validate c =
  if c.tp <= 0 || c.dp <= 0 || c.micro_batch <= 0 || c.accumulation <= 0
     || c.seq_len <= 0
  then invalid_arg "Training: config fields must be positive"

let optimizer_state_bytes_per_device model c =
  validate c;
  (* 2 (fp16 weights) + 2 (fp16 grads) stay per rank; the 12-byte Adam
     master/moment state is ZeRO-1 sharded across data parallel ranks. *)
  let params_per_rank = Model.total_params model /. float_of_int c.tp in
  (params_per_rank *. 4.)
  +. (params_per_rank *. 12. /. float_of_int c.dp)

let activation_bytes_per_device model c =
  (* One microbatch of activations per layer kept for backward (with
     standard selective recompute this is ~2 x hidden state per layer). *)
  let per_layer =
    2. *. float_of_int (c.micro_batch * c.seq_len * model.Model.d_model) *. 2.
  in
  per_layer *. float_of_int model.Model.num_layers /. float_of_int c.tp

let memory_fits dev model c =
  optimizer_state_bytes_per_device model c
  +. activation_bytes_per_device model c
  <= dev.Device.memory.Acs_hardware.Memory.capacity_bytes

let step ?(calib = Calib.default) dev model c =
  validate c;
  let request =
    Request.make ~batch:c.micro_batch ~input_len:c.seq_len ~output_len:1
  in
  let forward_layer =
    Engine.simulate ~calib ~tp:c.tp ~request dev model
  in
  let layers = float_of_int model.Model.num_layers in
  let forward_s = forward_layer.Engine.ttft_s *. layers in
  let backward_s = backward_factor *. forward_s in
  let grad_allreduce_s =
    if c.dp = 1 then 0.
    else begin
      let bytes = Model.total_params model *. 2. /. float_of_int c.tp in
      let per_direction =
        Acs_hardware.Interconnect.total_bandwidth dev.Device.interconnect /. 2.
      in
      let n = float_of_int c.dp in
      (2. *. (n -. 1.) /. n *. bytes /. per_direction)
      +. (2. *. (n -. 1.) *. calib.Calib.hop_latency_s)
    end
  in
  let optimizer_s =
    (* Stream weights + gradients + sharded Adam state once through HBM. *)
    let bytes =
      (Model.total_params model /. float_of_int c.tp *. 4.)
      +. optimizer_state_bytes_per_device model c
    in
    bytes /. Op_model.effective_dram_bandwidth ~calib dev
  in
  let micro_s = forward_s +. backward_s in
  let step_s =
    (micro_s *. float_of_int c.accumulation) +. grad_allreduce_s +. optimizer_s
  in
  let tokens_per_step = c.micro_batch * c.accumulation * c.dp * c.seq_len in
  let tokens_per_s = float_of_int tokens_per_step /. step_s in
  let mfu =
    (* 6 flops per parameter per token is the standard training count. *)
    let flops_per_token = 6. *. Model.total_params model in
    tokens_per_s *. flops_per_token
    /. (Device.peak_tensor_flops dev *. float_of_int (devices c))
  in
  {
    forward_s;
    backward_s;
    grad_allreduce_s;
    optimizer_s;
    step_s;
    tokens_per_step;
    tokens_per_s;
    mfu;
  }

let days_to_train ?calib ~tokens dev model c =
  if tokens <= 0. then invalid_arg "Training.days_to_train: tokens";
  let s = step ?calib dev model c in
  tokens /. s.tokens_per_s /. 86400.

let pp_step ppf s =
  Format.fprintf ppf
    "step %a (fwd %a + bwd %a + allreduce %a + optimizer %a): %.3g tokens/s, \
     MFU %.1f%%"
    Acs_util.Units.pp_time s.step_s Acs_util.Units.pp_time s.forward_s
    Acs_util.Units.pp_time s.backward_s Acs_util.Units.pp_time
    s.grad_allreduce_s Acs_util.Units.pp_time s.optimizer_s s.tokens_per_s
    (100. *. s.mfu)
