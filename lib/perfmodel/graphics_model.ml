module Device = Acs_hardware.Device
module Graphics = Acs_workload.Graphics

type breakdown = {
  shading_s : float;
  texture_s : float;
  raytracing_s : float;
  fixed_s : float;
  frame_s : float;
}

let texture_efficiency = 0.35
let memory_latency_s = 350e-9
let shading_efficiency = 0.60
let fixed_frame_s = 0.8e-3
let threads_per_lane = 48.  (* outstanding misses the SIMT scheduler hides *)

let frame_breakdown dev (scene : Graphics.scene) =
  let shading_s =
    Graphics.frame_flops scene
    /. (Device.peak_vector_flops dev *. shading_efficiency)
  in
  let texture_s =
    Graphics.frame_texture_bytes scene
    /. (Device.memory_bandwidth dev *. texture_efficiency)
  in
  let raytracing_s =
    let rays = Graphics.frame_rays scene in
    if rays = 0. then 0.
    else begin
      let chains = rays *. scene.Graphics.rt_round_trips_per_ray in
      let concurrency =
        float_of_int (dev.Device.core_count * dev.Device.lanes_per_core)
        *. threads_per_lane
      in
      chains *. memory_latency_s /. concurrency
    end
  in
  let frame_s =
    Float.max shading_s texture_s +. raytracing_s +. fixed_frame_s
  in
  { shading_s; texture_s; raytracing_s; fixed_s = fixed_frame_s; frame_s }

let fps dev scene = 1. /. (frame_breakdown dev scene).frame_s

let pp_breakdown ppf b =
  Format.fprintf ppf
    "shade %.2f ms | texture %.2f ms | rt %.2f ms | fixed %.2f ms -> %.1f fps"
    (1e3 *. b.shading_s) (1e3 *. b.texture_s) (1e3 *. b.raytracing_s)
    (1e3 *. b.fixed_s) (1. /. b.frame_s)
