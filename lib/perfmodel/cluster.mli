(** Multi-device execution plans: tensor parallelism within a group and
    pipeline parallelism across groups.

    Pipeline parallelism does not accelerate a token's journey (decoding
    is sequential through every layer) but it multiplies serving
    throughput and, crucially for sanctioned markets, it is how a model
    that does not fit a compliant device's memory is run at all. TTFT uses
    the standard microbatched-fill model: the batch is split into [pp]
    microbatches, so prefill costs [(2 pp - 1)] stage-steps. *)

type plan = {
  tp : int;  (** tensor-parallel group size *)
  pp : int;  (** pipeline stages *)
}

val devices : plan -> int

type memory_check = {
  weight_bytes_per_device : float;
  kv_bytes_per_device : float;  (** at the request's decode context *)
  activation_reserve_bytes : float;
  required_bytes : float;
  capacity_bytes : float;
  fits : bool;
}

val memory_check :
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  plan ->
  memory_check

type result = {
  plan : plan;
  ttft_s : float;  (** whole-model first-token latency *)
  token_latency_s : float;  (** whole-model per-token decode latency *)
  throughput_tokens_per_s : float;
      (** steady-state decode tokens/s across the batch with all stages
          busy (requires batch >= pp concurrent work) *)
  memory : memory_check;
}

val simulate :
  ?calib:Calib.t ->
  ?request:Acs_workload.Request.t ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  plan ->
  result
(** Raises [Invalid_argument] when the plan's tp does not divide the
    model's heads, pp does not divide the layer count, or pp exceeds the
    batch (no microbatches to fill the pipeline). *)

val choose_plan :
  ?calib:Calib.t ->
  ?request:Acs_workload.Request.t ->
  ?max_tp:int ->
  max_devices:int ->
  Acs_hardware.Device.t ->
  Acs_workload.Model.t ->
  result option
(** Cheapest feasible plan: among (tp, pp) combinations within
    [max_devices] (tp at most [max_tp], default 8) whose memory check
    passes, the one using the fewest devices, breaking ties by throughput.
    [None] when nothing fits. *)

val pp_result : Format.formatter -> result -> unit
