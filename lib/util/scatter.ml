type point = { marker : char; x : float; y : float }

type t = {
  width : int;
  height : int;
  xlabel : string;
  ylabel : string;
  mutable points : point list;
}

let create ?(width = 72) ?(height = 24) ~xlabel ~ylabel () =
  if width < 8 || height < 4 then invalid_arg "Scatter.create: canvas too small";
  { width; height; xlabel; ylabel; points = [] }

let add t ~marker ~x ~y =
  if not (Float.is_finite x && Float.is_finite y) then
    invalid_arg
      (Printf.sprintf "Scatter.add: non-finite point (%g, %g)" x y);
  t.points <- { marker; x; y } :: t.points

let add_series t ~marker pts =
  List.iter (fun (x, y) -> add t ~marker ~x ~y) pts

let bounds t =
  let xs = List.map (fun p -> p.x) t.points in
  let ys = List.map (fun p -> p.y) t.points in
  let lo l = List.fold_left min (List.hd l) l in
  let hi l = List.fold_left max (List.hd l) l in
  let pad lo' hi' = if lo' = hi' then (lo' -. 1., hi' +. 1.) else (lo', hi') in
  let xmin, xmax = pad (lo xs) (hi xs) in
  let ymin, ymax = pad (lo ys) (hi ys) in
  (xmin, xmax, ymin, ymax)

let render t =
  match t.points with
  | [] -> "(empty plot)"
  | _ :: _ ->
      let xmin, xmax, ymin, ymax = bounds t in
      let grid = Array.make_matrix t.height t.width ' ' in
      let place p =
        (* [bounds] pads degenerate (zero-range) axes, but clamp the
           normalized fractions anyway: a 0/0 division would otherwise
           reach [int_of_float] as NaN, which is undefined in OCaml. *)
        let frac v lo hi =
          let f = (v -. lo) /. (hi -. lo) in
          if Float.is_finite f then Float.min 1. (Float.max 0. f) else 0.
        in
        let fx = frac p.x xmin xmax in
        let fy = frac p.y ymin ymax in
        let col =
          min (t.width - 1)
            (max 0 (int_of_float (fx *. float_of_int (t.width - 1))))
        in
        let row_from_bottom =
          min (t.height - 1)
            (max 0 (int_of_float (fy *. float_of_int (t.height - 1))))
        in
        grid.(t.height - 1 - row_from_bottom).(col) <- p.marker
      in
      List.iter place (List.rev t.points);
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "%s: %.4g .. %.4g (bottom to top)\n" t.ylabel ymin ymax);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_char buf '+';
      Buffer.add_string buf (String.make t.width '-');
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Printf.sprintf "%s: %.4g .. %.4g (left to right)" t.xlabel xmin xmax);
      Buffer.contents buf

let print ?title ~legend t =
  (match title with
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_endline (render t);
  let describe (m, name) = Printf.sprintf "'%c' = %s" m name in
  if legend <> [] then
    print_endline ("legend: " ^ String.concat ", " (List.map describe legend));
  print_newline ()
