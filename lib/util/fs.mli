(** Filesystem helpers on the [unix] stdlib library (the daemon links it
    anyway, so nothing shells out any more). *)

val mkdir_p : string -> unit
(** Create a directory and any missing parents, like [mkdir -p]:
    EEXIST-tolerant, safe against concurrent creation races. Raises
    [Sys_error] with the underlying [Unix] error message when creation
    genuinely fails (permissions, a plain file in the way, ...). *)
