(** Hierarchical span tracing with near-zero disabled cost.

    A span is a named, timed region of execution with key/value attributes
    and the domain it ran on. Spans nest: {!with_span} pushes a frame on a
    per-domain stack, runs the body, and records the completed span into a
    process-wide ring buffer - also when the body raises, so a raising
    evaluation still closes its span (the exception is re-raised).

    Tracing is {e disabled by default}. When disabled, {!with_span} is a
    single atomic-flag load and a branch before calling the body directly;
    instrumented hot paths additionally gate their attribute construction
    on {!enabled} so the disabled cost stays branch-only (the bench's
    [trace] group measures exactly this). When enabled, each span costs two
    monotonic-clock reads plus one mutex-protected ring-buffer write.

    The buffer is a fixed-capacity ring: once full, the oldest spans are
    overwritten ({!dropped} says how many) and memory use stays bounded no
    matter how long a traced run lasts.

    Traces export as Chrome trace format JSON ({!to_chrome_json} /
    {!write}) - load the file in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}. Span nesting is reconstructed by
    the viewer from containment of [ts]/[dur] intervals per thread, which
    holds by construction: a child span opens after and closes before its
    parent on the same domain. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  start_ns : int64;  (** relative to the process trace epoch *)
  dur_ns : int64;
  domain : int;  (** id of the domain that ran the span *)
  depth : int;  (** nesting depth when the span opened; 0 = root *)
  attrs : (string * attr) list;
}

val enabled : unit -> bool
(** One atomic load; instrumentation sites branch on this before building
    attribute lists. *)

val set_enabled : bool -> unit
(** Turns recording on/off globally (all domains). Spans already open keep
    recording when they close; spans opened while disabled are never
    recorded. *)

val with_tracing : bool -> (unit -> 'a) -> 'a
(** [with_tracing on f] runs [f] with tracing forced on/off, restoring the
    previous setting afterwards (also on raise). *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f] as a span. Exception-safe: a raising [f]
    still closes and records the span, then the exception propagates. When
    tracing is disabled this is just [f ()]. *)

val add_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span of the calling domain
    (no-op when tracing is disabled or no span is open). Lets a body
    record values it only knows after doing the work. *)

val instant : ?attrs:(string * attr) list -> string -> unit
(** A zero-duration marker span at the current time. *)

val spans : unit -> span list
(** The buffered spans, oldest first (recording order: spans appear when
    they {e close}). *)

val recorded : unit -> int
(** Spans recorded since the last {!clear}, including overwritten ones. *)

val dropped : unit -> int
(** [recorded () - |spans ()|]: spans lost to ring-buffer overwrite. *)

val clear : unit -> unit
(** Empty the buffer and reset the counters (keeps the enabled flag). *)

val set_capacity : int -> unit
(** Resize the ring buffer (>= 1; default 65536). Implies {!clear}. *)

val to_chrome_json : unit -> Json.t
(** The buffer as a Chrome trace: [{"traceEvents": [{"ph": "X", "ts": ...,
    "dur": ..., "tid": <domain>, "args": {attrs}}, ...]}]. Timestamps are
    microseconds from the trace epoch. Non-finite float attributes are
    stringified (JSON has no literal for them). *)

val write : string -> unit
(** [to_chrome_json] serialized to a file. *)
