(** Stable binary min-heap.

    Replaces the linear next-event scans in the fleet simulator: pools push
    future events keyed by time and pop them in nondecreasing order. The heap
    is stable — entries whose keys compare equal drain in insertion order —
    which is what makes event-driven replay deterministic when several
    completions land on the same timestamp. *)

type ('k, 'v) t

val create : cmp:('k -> 'k -> int) -> ('k, 'v) t
(** Empty heap ordered by [cmp] (a total order on keys; smallest pops
    first). *)

val length : ('k, 'v) t -> int
val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val min_key : ('k, 'v) t -> 'k option
(** Key of the next entry to pop, without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the minimum entry; among equal keys, the one pushed
    earliest. [None] on an empty heap. *)

val drain : ('k, 'v) t -> ('k * 'v) list
(** Pop everything, in order. *)
