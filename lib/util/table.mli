(** Aligned plain-text tables for benchmark and experiment output. *)

type align = Left | Right

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] makes a table with the given column headers. [aligns]
    defaults to [Right] for every column. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer rows
    raise [Invalid_argument]. *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> unit
(** [add_float_row t label xs] adds a row whose first cell is [label] and
    remaining cells are formatted floats ([%.4g] by default). *)

val to_string : t -> string
val print : ?title:string -> t -> unit
(** Prints to stdout with an optional underlined title and trailing blank
    line. *)

val fmt_g : float -> string
(** Compact float formatting used across the benches: [%.4g]. *)

val fmt_pct : float -> string
(** Formats a ratio as a signed percentage, e.g. [-0.27] -> ["-27.0%"]. *)
