(* A process-wide pool of worker domains. Workers block on a condition
   variable waiting for jobs; each parallel map enqueues one job per helper
   and participates in the work itself, so an effective job count of [n]
   uses the calling domain plus [n - 1] pool workers. The pool grows to the
   largest helper count ever requested and is torn down at exit. *)

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> n
  | Some _ | None ->
      invalid_arg "Parallel: ACS_JOBS must be a positive integer"

let env_jobs =
  lazy
    (match Sys.getenv_opt "ACS_JOBS" with
    | Some s -> parse_jobs s
    | None -> max 1 (Domain.recommended_domain_count () - 1))

(* [with_jobs] override. Domain-local state, not a shared ref: the
   documented contract is that the override is only visible to calls made
   from the current domain, and the evaluation daemon relies on it - each
   of its worker domains pins its own job count while running a job, and
   concurrent workers must not clobber each other (a shared ref would race
   on the save/restore). *)
let forced_jobs : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let jobs () =
  match Domain.DLS.get forced_jobs with
  | Some n -> n
  | None -> Lazy.force env_jobs

let with_jobs n f =
  if n < 1 then invalid_arg "Parallel.with_jobs: job count must be >= 1";
  let prev = Domain.DLS.get forced_jobs in
  Domain.DLS.set forced_jobs (Some n);
  Fun.protect ~finally:(fun () -> Domain.DLS.set forced_jobs prev) f

(* --- observability --- *)

let m_pool_size = lazy (Metrics.gauge "parallel_pool_size")
let m_maps = lazy (Metrics.counter "parallel_maps_total")
let m_chunks = lazy (Metrics.counter "parallel_chunks_total")

let busy_gauge () =
  Metrics.gauge "parallel_busy_seconds"
    ~labels:[ ("domain", string_of_int (Domain.self () :> int)) ]

(* --- the pool --- *)

let pool_mutex = Mutex.create ()
let pending : (unit -> unit) Queue.t = Queue.create ()
let has_work = Condition.create ()
let worker_count = ref 0
let workers : unit Domain.t list ref = ref []
let shutdown = ref false
let teardown_registered = ref false

let worker_loop () =
  let rec next () =
    Mutex.lock pool_mutex;
    while Queue.is_empty pending && not !shutdown do
      Condition.wait has_work pool_mutex
    done;
    if Queue.is_empty pending then Mutex.unlock pool_mutex
    else begin
      let job = Queue.pop pending in
      Mutex.unlock pool_mutex;
      job ();
      next ()
    end
  in
  next ()

let ensure_workers n =
  Mutex.lock pool_mutex;
  let missing = n - !worker_count in
  if missing > 0 then worker_count := n;
  if not !teardown_registered then begin
    teardown_registered := true;
    at_exit (fun () ->
        Mutex.lock pool_mutex;
        shutdown := true;
        Condition.broadcast has_work;
        Mutex.unlock pool_mutex;
        List.iter Domain.join !workers)
  end;
  Mutex.unlock pool_mutex;
  (* Spawning outside the lock: only the calling domain spawns (callers are
     serialized through the maps below in practice, and a harmless
     over-spawn is the worst concurrent case). *)
  for _ = 1 to missing do
    workers := Domain.spawn worker_loop :: !workers
  done

let submit job =
  Mutex.lock pool_mutex;
  Queue.push job pending;
  Condition.signal has_work;
  Mutex.unlock pool_mutex

(* Run [process lo hi c] for every chunk [c] covering [lo..hi], distributing
   contiguous chunks over [jobs] domains (the caller plus [jobs - 1] pool
   workers). Chunk indices are dense in [0, n_chunks). *)
let run_chunks ~jobs ~chunk ~total process =
  let n_chunks = (total + chunk - 1) / chunk in
  let helpers = min (jobs - 1) (n_chunks - 1) in
  if helpers <= 0 then
    for c = 0 to n_chunks - 1 do
      let lo = c * chunk in
      process ~lo ~hi:(min total (lo + chunk) - 1) c
    done
  else begin
    ensure_workers helpers;
    Metrics.incr (Lazy.force m_maps);
    Metrics.set_gauge (Lazy.force m_pool_size) (float_of_int !worker_count);
    let next_chunk = Atomic.make 0 in
    let failure = Atomic.make None in
    let work () =
      (* Per-domain busy time: the window each participating domain spends
         claiming and processing chunks of this map. *)
      let busy = busy_gauge () in
      let t0 = Monotonic_clock.now () in
      let rec loop () =
        let c = Atomic.fetch_and_add next_chunk 1 in
        if c < n_chunks then begin
          Metrics.incr (Lazy.force m_chunks);
          (if Atomic.get failure = None then
             try
               let lo = c * chunk in
               process ~lo ~hi:(min total (lo + chunk) - 1) c
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
          loop ()
        end
      in
      loop ();
      Metrics.add_gauge busy
        (Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9)
    in
    let remaining = Atomic.make helpers in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let traced_work () =
      if Trace.enabled () then Trace.with_span "parallel.worker" work
      else work ()
    in
    let helper () =
      Fun.protect ~finally:(fun () ->
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock done_mutex;
            Condition.broadcast all_done;
            Mutex.unlock done_mutex
          end)
        traced_work
    in
    let dispatch_and_wait () =
      for _ = 1 to helpers do
        submit helper
      done;
      work ();
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait all_done done_mutex
      done;
      Mutex.unlock done_mutex
    in
    (if Trace.enabled () then
       Trace.with_span "parallel.map"
         ~attrs:
           [ ("jobs", Trace.Int jobs); ("chunks", Trace.Int n_chunks);
             ("items", Trace.Int total) ]
         dispatch_and_wait
     else dispatch_and_wait ());
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end

let run_chunked ~jobs ~chunk ~total apply =
  run_chunks ~jobs ~chunk ~total (fun ~lo ~hi _c ->
      for i = lo to hi do
        apply i
      done)

let resolve_jobs = function
  | Some n when n >= 1 -> n
  | Some _ -> invalid_arg "Parallel: job count must be >= 1"
  | None -> jobs ()

(* Auto-tuned chunk size. Chunks are claimed dynamically, so more chunks
   per domain smooths load imbalance (design evaluations vary several-fold
   in cost across a sweep), but every claim pays an atomic fetch-and-add
   plus a metrics bump. Instead of a fixed 4 chunks per domain, target a
   chunk count that grows with the per-domain share (log2) and stays within
   [2, 16] chunks per domain: short inputs are not shredded into one-item
   chunks and huge inputs do not queue thousands of claims. *)
let resolve_chunk chunk ~jobs ~total =
  match chunk with
  | Some c when c >= 1 -> c
  | Some _ | None ->
      let per_domain = max 1 ((total + jobs - 1) / jobs) in
      let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
      let target_chunks = min 16 (max 2 (log2 per_domain 0)) in
      max 1 (per_domain / target_chunks)

(* Results are staged through an option array so every element type gets a
   uniform boxed representation (no flat-float-array write hazards) and
   [filter_map] falls out of the same code path. *)
let map_options ~jobs ~chunk f a =
  let total = Array.length a in
  let out = Array.make total None in
  let chunk = resolve_chunk chunk ~jobs ~total in
  run_chunked ~jobs ~chunk ~total (fun i -> out.(i) <- Some (f a.(i)));
  out

let map_array ?jobs ?chunk f a =
  let jobs = resolve_jobs jobs in
  if jobs <= 1 || Array.length a <= 1 then Array.map f a
  else
    Array.map
      (function Some v -> v | None -> assert false)
      (map_options ~jobs ~chunk f a)

let filter_map_array ?jobs ?chunk f a =
  let jobs = resolve_jobs jobs in
  if jobs <= 1 || Array.length a <= 1 then
    Array.of_list (List.filter_map f (Array.to_list a))
  else begin
    let out = map_options ~jobs ~chunk f a in
    let result = ref [] in
    for i = Array.length out - 1 downto 0 do
      match out.(i) with
      | Some (Some v) -> result := v :: !result
      | Some None -> ()
      | None -> assert false
    done;
    Array.of_list !result
  end

(* Per-chunk partials land in a dense array indexed by chunk id and are
   folded on the calling domain in chunk order, so for an associative
   [combine] the result is independent of which domain ran which chunk. *)
let map_reduce_array ?jobs ?chunk ~map:f ~combine init a =
  let jobs = resolve_jobs jobs in
  let total = Array.length a in
  if total = 0 then init
  else if jobs <= 1 || total <= 1 then
    Array.fold_left (fun acc x -> combine acc (f x)) init a
  else begin
    let chunk = resolve_chunk chunk ~jobs ~total in
    let n_chunks = (total + chunk - 1) / chunk in
    let partials = Array.make n_chunks None in
    run_chunks ~jobs ~chunk ~total (fun ~lo ~hi c ->
        let acc = ref (f a.(lo)) in
        for i = lo + 1 to hi do
          acc := combine !acc (f a.(i))
        done;
        partials.(c) <- Some !acc);
    Array.fold_left
      (fun acc -> function Some p -> combine acc p | None -> assert false)
      init partials
  end

let map_reduce ?jobs ?chunk ~map:f ~combine init l =
  match l with
  | [] -> init
  | l -> map_reduce_array ?jobs ?chunk ~map:f ~combine init (Array.of_list l)

let map ?jobs ?chunk f l =
  let n = resolve_jobs jobs in
  if n <= 1 then List.map f l
  else Array.to_list (map_array ~jobs:n ?chunk f (Array.of_list l))

let filter_map ?jobs ?chunk f l =
  let n = resolve_jobs jobs in
  if n <= 1 then List.filter_map f l
  else Array.to_list (filter_map_array ~jobs:n ?chunk f (Array.of_list l))
