(* Small filesystem helpers on the unix stdlib library. This replaces the
   old [Unix_stub] module, which shelled out to `mkdir -p` via
   [Sys.command] and could only report failure through its exit code. *)

let rec mkdir_p dir =
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      (* Tolerate pre-existing directories (including a concurrent
         creation race), but a plain file in the way is a real error. *)
      if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": exists and is not a directory"))
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      let parent = Filename.dirname dir in
      if parent = dir then
        raise (Sys_error (dir ^ ": cannot create root directory"));
      mkdir_p parent;
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | exception Unix.Unix_error (e, _, _) ->
      raise
        (Sys_error (Printf.sprintf "mkdir %s: %s" dir (Unix.error_message e)))
