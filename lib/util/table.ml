type align = Left | Right

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : string list list;  (* stored in reverse insertion order *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a ->
        if List.length a <> List.length headers then
          invalid_arg "Table.create: aligns/headers length mismatch"
        else a
    | None -> List.map (fun _ -> Right) headers
  in
  { headers; aligns; rows = [] }

let width t = List.length t.headers

let add_row t cells =
  let n = List.length cells in
  if n > width t then invalid_arg "Table.add_row: too many cells"
  else begin
    let padded = cells @ List.init (width t - n) (fun _ -> "") in
    t.rows <- padded :: t.rows
  end

let fmt_g x = Printf.sprintf "%.4g" x
let fmt_pct x = Printf.sprintf "%+.1f%%" (100. *. x)

let add_float_row ?(fmt = fmt_g) t label xs =
  add_row t (label :: List.map fmt xs)

let to_string t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc row -> max acc (String.length (List.nth row i)))
          0 all)
      t.headers
  in
  let pad align w s =
    let gap = w - String.length s in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let render_row row =
    let cells =
      List.map2
        (fun (w, a) cell -> pad a w cell)
        (List.combine widths t.aligns)
        row
    in
    String.concat "  " cells
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let print ?title t =
  (match title with
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '=')
  | None -> ());
  print_endline (to_string t);
  print_newline ()
