type series = { label : string; values : float list }

let render ?(width = 60) series_list =
  if series_list = [] then invalid_arg "Boxplot.render: no series";
  if width < 10 then invalid_arg "Boxplot.render: width too small";
  List.iter
    (fun s ->
      if not (List.for_all Float.is_finite s.values) then
        invalid_arg
          (Printf.sprintf "Boxplot.render: non-finite value in series %S"
             s.label))
    series_list;
  let summaries =
    List.map (fun s -> (s.label, Stats.summarize s.values)) series_list
  in
  let axis_min =
    List.fold_left (fun acc (_, s) -> Float.min acc s.Stats.min) infinity summaries
  in
  let axis_max =
    List.fold_left (fun acc (_, s) -> Float.max acc s.Stats.max) neg_infinity summaries
  in
  let span = if axis_max > axis_min then axis_max -. axis_min else 1. in
  let col v =
    (* Clamp the normalized fraction before the int conversion: on a
       degenerate (zero-range) axis the division can produce 0/0 = NaN,
       and [int_of_float] of a non-finite float is undefined in OCaml. *)
    let f = (v -. axis_min) /. span in
    let f = if Float.is_finite f then Float.min 1. (Float.max 0. f) else 0. in
    min (width - 1) (max 0 (int_of_float (f *. float_of_int (width - 1))))
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 summaries
  in
  let buf = Buffer.create 1024 in
  let render_one (label, (s : Stats.summary)) =
    let line = Bytes.make width ' ' in
    let set i c = Bytes.set line i c in
    (* Whiskers first, then the box, then the markers on top. *)
    for i = col s.Stats.min to col s.Stats.max do
      set i '-'
    done;
    for i = col s.Stats.p25 to col s.Stats.p75 do
      set i '='
    done;
    set (col s.Stats.min) '|';
    set (col s.Stats.max) '|';
    set (col s.Stats.p25) '[';
    set (col s.Stats.p75) ']';
    set (col s.Stats.median) '#';
    Buffer.add_string buf
      (Printf.sprintf "%-*s %s (med %.4g)\n" label_width label
         (Bytes.to_string line) s.Stats.median)
  in
  List.iter render_one summaries;
  Buffer.add_string buf
    (Printf.sprintf "%-*s %s\n" label_width ""
       (Printf.sprintf "%-*.4g%*.4g" (width / 2) axis_min
          (width - (width / 2)) axis_max));
  Buffer.contents buf

let print ?title ?width series_list =
  (match title with
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '-')
  | None -> ());
  print_string (render ?width series_list);
  print_newline ()
