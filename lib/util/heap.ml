(* Array-backed binary min-heap. Stability comes from a monotonically
   increasing sequence number attached at push time and used as the
   tie-break, so equal keys behave like a FIFO. *)

type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  cmp : 'k -> 'k -> int;
  mutable data : ('k, 'v) entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~cmp = { cmp; data = [||]; size = 0; next_seq = 0 }
let length h = h.size
let is_empty h = h.size = 0

let before h a b =
  let c = h.cmp a.key b.key in
  if c <> 0 then c < 0 else a.seq < b.seq

let grow h entry =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let data = Array.make (max 8 (2 * cap)) entry in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let push h key value =
  let entry = { key; seq = h.next_seq; value } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  (* Sift up. *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before h entry h.data.(parent) then begin
      h.data.(!i) <- h.data.(parent);
      i := parent
    end
    else continue := false
  done;
  h.data.(!i) <- entry

let min_key h = if h.size = 0 then None else Some h.data.(0).key

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    let last = h.data.(h.size) in
    if h.size > 0 then begin
      (* Sift the displaced last entry down from the root. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        let cur j = if j = !i then last else h.data.(j) in
        if l < h.size && before h h.data.(l) (cur !smallest) then smallest := l;
        if r < h.size && before h h.data.(r) (cur !smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          h.data.(!i) <- h.data.(!smallest);
          i := !smallest
        end
      done;
      h.data.(!i) <- last
    end;
    Some (top.key, top.value)
  end

let drain h =
  let rec go acc = match pop h with None -> List.rev acc | Some e -> go (e :: acc) in
  go []
