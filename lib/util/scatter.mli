(** Terminal scatter plots for figure reproduction.

    Each point carries a single marker character (one per series). When
    several points share a cell the marker of the latest-added point wins,
    matching overplotting in the paper's figures. *)

type t

val create : ?width:int -> ?height:int -> xlabel:string -> ylabel:string -> unit -> t
(** Default canvas is 72x24 character cells. *)

val add : t -> marker:char -> x:float -> y:float -> unit
(** Raises [Invalid_argument] on a non-finite coordinate: the renderer
    normalizes against the data range, and a NaN/infinite bound would
    reach [int_of_float] as a non-finite fraction (undefined in OCaml). *)

val add_series : t -> marker:char -> (float * float) list -> unit

val render : t -> string
(** Renders the canvas with axis ranges annotated; returns an empty-plot
    message when no points were added. *)

val print : ?title:string -> legend:(char * string) list -> t -> unit
