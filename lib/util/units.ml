let kilo = 1e3
let mega = 1e6
let giga = 1e9
let tera = 1e12
let gb x = x *. giga
let gbps x = x *. giga
let tbps x = x *. tera
let mb x = x *. mega
let kb x = x *. kilo
let mhz x = x *. mega
let ghz x = x *. giga
let to_ms t = t *. 1e3
let to_us t = t *. 1e6

let pp_scaled ppf ~unit_ scales x =
  let rec pick = function
    | [] -> Format.fprintf ppf "%g %s" x unit_
    | (factor, prefix) :: rest ->
        if Float.abs x >= factor then
          Format.fprintf ppf "%g %s%s" (x /. factor) prefix unit_
        else pick rest
  in
  pick scales

let pp_bytes ppf x =
  pp_scaled ppf ~unit_:"B" [ (tera, "T"); (giga, "G"); (mega, "M"); (kilo, "K") ] x

let pp_bandwidth ppf x =
  pp_scaled ppf ~unit_:"B/s" [ (tera, "T"); (giga, "G"); (mega, "M") ] x

let pp_time ppf t =
  if Float.abs t >= 1. then Format.fprintf ppf "%.3g s" t
  else if Float.abs t >= 1e-3 then Format.fprintf ppf "%.4g ms" (to_ms t)
  else Format.fprintf ppf "%.4g us" (to_us t)
