(** Process-wide metrics registry: counters, gauges and log-scale
    histograms, with optional labels.

    Instrumented subsystems ({!Parallel}, the evaluation engine, the
    serving simulator) register metrics lazily by name; registration is
    get-or-create, so the handle returned for a given (name, labels) pair
    is always the same underlying metric and increments from any module or
    domain accumulate in one place. Counters and histogram buckets are
    atomics - safe and cheap to bump from worker domains; sums use a
    compare-and-set loop.

    Histograms are log-scale: buckets at four per decade from 1 ns to
    1000 s (values at or below the floor land in an underflow bucket,
    values beyond the range in the top bucket). That spans kernel-level
    nanoseconds to sweep-level minutes with a bounded 50-slot array, which
    is what latency distributions need. {!quantile} answers from bucket
    upper bounds (a <= factor-of-1.78 overestimate).

    Everything exports as JSON ({!export}) and as an aligned summary table
    ({!summary_table}) - the end-of-run table [acs profile] prints. *)

type labels = (string * string) list

type counter
type gauge
type histogram

(** {2 Counters (monotone integers)} *)

val counter : ?labels:labels -> string -> counter
(** Get or create. Raises [Invalid_argument] if (name, labels) is already
    registered as a different metric kind. *)

val incr : ?by:int -> counter -> unit
(** [by] defaults to 1 and must be >= 0 (counters are monotone). *)

val counter_value : counter -> int

(** {2 Gauges (floats that can also accumulate)} *)

val gauge : ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms (log-scale, seconds-oriented)} *)

val histogram : ?labels:labels -> string -> histogram

val observe : histogram -> float -> unit
(** NaN observations are counted in the underflow bucket (they carry no
    magnitude) and excluded from the sum. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the body and observe its wall-clock duration in seconds.
    Exception-safe: a raising body is still observed, then the exception
    propagates. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1]: the upper bound of the bucket
    holding the [q]-th observation; [nan] on an empty histogram. Raises
    [Invalid_argument] outside [0, 1]. *)

val buckets : histogram -> (float * int) list
(** (upper bound in seconds, count) per non-empty bucket, ascending. The
    underflow bucket reports the range floor as its bound. *)

(** {2 Registry} *)

val reset : unit -> unit
(** Zero every registered metric in place. Handles stay valid (the
    registry keeps its entries), so instrumented modules that cached a
    metric keep reporting into it - this is what tests use for
    isolation. *)

val export : unit -> Json.t
(** [{"counters": [...], "gauges": [...], "histograms": [...]}], each
    entry carrying name, labels and current values; deterministic order
    (sorted by name, then labels). *)

val summary_table : unit -> Table.t
(** One row per metric: name{labels}, kind, value (count for histograms)
    and mean/p50/p95 in seconds for histograms. Rows are sorted like
    {!export}. *)
