type attr = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  start_ns : int64;
  dur_ns : int64;
  domain : int;
  depth : int;
  attrs : (string * attr) list;
}

let now () = Monotonic_clock.now ()

(* All span timestamps are relative to this so exported microsecond values
   stay small regardless of the raw clock origin. *)
let epoch = now ()

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled on = Atomic.set enabled_flag on

let with_tracing on f =
  let prev = enabled () in
  set_enabled on;
  Fun.protect ~finally:(fun () -> set_enabled prev) f

(* --- ring buffer --- *)

let buffer_mutex = Mutex.create ()
let capacity = ref 65536
let buffer : span option array ref = ref (Array.make !capacity None)
let total = ref 0 (* spans ever recorded since the last clear *)

let clear () =
  Mutex.lock buffer_mutex;
  buffer := Array.make !capacity None;
  total := 0;
  Mutex.unlock buffer_mutex

let set_capacity n =
  if n < 1 then invalid_arg "Trace.set_capacity: capacity must be >= 1";
  Mutex.lock buffer_mutex;
  capacity := n;
  buffer := Array.make n None;
  total := 0;
  Mutex.unlock buffer_mutex

let record s =
  Mutex.lock buffer_mutex;
  !buffer.(!total mod !capacity) <- Some s;
  incr total;
  Mutex.unlock buffer_mutex

let spans () =
  Mutex.lock buffer_mutex;
  let buf = Array.copy !buffer and n = !total and cap = !capacity in
  Mutex.unlock buffer_mutex;
  (* Oldest first: the ring wraps at [total mod capacity]. *)
  let count = min n cap in
  List.filter_map
    (fun i -> buf.((n - count + i) mod cap))
    (List.init count Fun.id)

let recorded () =
  Mutex.lock buffer_mutex;
  let n = !total in
  Mutex.unlock buffer_mutex;
  n

let dropped () =
  Mutex.lock buffer_mutex;
  let d = max 0 (!total - !capacity) in
  Mutex.unlock buffer_mutex;
  d

(* --- per-domain span stacks --- *)

type frame = {
  f_name : string;
  f_start : int64;
  f_depth : int;
  mutable f_attrs : (string * attr) list;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let domain_id () = (Domain.self () :> int)

let close_frame frame =
  let stack = Domain.DLS.get stack_key in
  (match !stack with
  | top :: rest when top == frame -> stack := rest
  | other -> stack := List.filter (fun f -> f != frame) other);
  record
    {
      name = frame.f_name;
      start_ns = Int64.sub frame.f_start epoch;
      dur_ns = Int64.sub (now ()) frame.f_start;
      domain = domain_id ();
      depth = frame.f_depth;
      attrs = frame.f_attrs;
    }

let with_span ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let frame =
      { f_name = name; f_start = now (); f_depth = List.length !stack;
        f_attrs = attrs }
    in
    stack := frame :: !stack;
    (* A raising body must still close its span: close in [finally], then
       let the exception propagate. *)
    Fun.protect ~finally:(fun () -> close_frame frame) f
  end

let add_attr key value =
  if enabled () then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | frame :: _ -> frame.f_attrs <- frame.f_attrs @ [ (key, value) ]

let instant ?(attrs = []) name =
  if enabled () then begin
    let stack = !(Domain.DLS.get stack_key) in
    record
      {
        name;
        start_ns = Int64.sub (now ()) epoch;
        dur_ns = 0L;
        domain = domain_id ();
        depth = List.length stack;
        attrs;
      }
  end

(* --- Chrome trace export --- *)

let attr_json = function
  | Int i -> Json.int i
  | Float f ->
      if Float.is_finite f then Json.float f
      else Json.string (string_of_float f)
  | Str s -> Json.string s
  | Bool b -> Json.bool b

let event_json s =
  Json.obj
    [
      ("name", Json.string s.name);
      ("cat", Json.string "acs");
      ("ph", Json.string "X");
      ("ts", Json.float (Int64.to_float s.start_ns /. 1e3));
      ("dur", Json.float (Int64.to_float s.dur_ns /. 1e3));
      ("pid", Json.int 1);
      ("tid", Json.int s.domain);
      ( "args",
        Json.obj (List.map (fun (k, v) -> (k, attr_json v)) s.attrs) );
    ]

let to_chrome_json () =
  Json.obj
    [
      ("traceEvents", Json.List (List.map event_json (spans ())));
      ("displayTimeUnit", Json.string "ms");
    ]

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Json.to_channel ~indent:1 oc (to_chrome_json ());
      output_char oc '\n')
