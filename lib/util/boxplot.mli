(** Horizontal ASCII box-and-whisker plots, for the Fig. 11/12-style
    latency distribution panels.

    Each series renders as [min |---[ p25 | median | p75 ]---| max] scaled
    to a shared axis across all series. *)

type series = { label : string; values : float list }

val render : ?width:int -> series list -> string
(** Raises [Invalid_argument] when a series is empty, contains a
    non-finite value (the axis normalization would otherwise feed an
    undefined [int_of_float nan] into the column mapping) or none are
    given. Zero-range data (all values equal) renders on a degenerate
    one-unit axis. Default box width 60 characters. *)

val print : ?title:string -> ?width:int -> series list -> unit
