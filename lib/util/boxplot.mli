(** Horizontal ASCII box-and-whisker plots, for the Fig. 11/12-style
    latency distribution panels.

    Each series renders as [min |---[ p25 | median | p75 ]---| max] scaled
    to a shared axis across all series. *)

type series = { label : string; values : float list }

val render : ?width:int -> series list -> string
(** Raises [Invalid_argument] when a series is empty or none are given.
    Default box width 60 characters. *)

val print : ?title:string -> ?width:int -> series list -> unit
