(** Fixed domain pool for data-parallel sweeps.

    OCaml 5 gives us true shared-memory parallelism through [Domain]; this
    module keeps a process-wide pool of worker domains and distributes
    array/list work over it in contiguous chunks, preserving result order.
    The pool size comes from the [ACS_JOBS] environment variable (a positive
    integer), defaulting to [Domain.recommended_domain_count () - 1]; at an
    effective job count <= 1 every entry point degrades to the plain
    sequential [Array.map]/[List.map] code path, guaranteeing deterministic
    behaviour with zero domain machinery.

    All mapped functions must be pure: they run concurrently on arbitrary
    domains and their results are written into a shared result slot exactly
    once per index. Exceptions raised by the mapped function are caught on
    the worker, the remaining chunks are abandoned, and the first exception
    is re-raised (with its backtrace) on the calling domain. *)

val jobs : unit -> int
(** The effective job count: the innermost [with_jobs] override if any,
    otherwise [ACS_JOBS], otherwise [recommended_domain_count () - 1]
    (never below 1). Raises [Invalid_argument] if [ACS_JOBS] is set to
    anything but a positive integer. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs n f] runs [f] with the effective job count forced to [n]
    (>= 1), restoring the previous setting afterwards. The override is only
    visible to calls made from the current domain, which is what tests need
    to compare sequential and parallel runs in-process. *)

val map_array : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. [?jobs] overrides the effective
    job count for this call; [?chunk] sets the chunk size (default: spread
    the input over ~4 chunks per job, at least 1 element each). *)

val filter_map_array :
  ?jobs:int -> ?chunk:int -> ('a -> 'b option) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map] followed by dropping [None]s. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val filter_map : ?jobs:int -> ?chunk:int -> ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving parallel [List.filter_map]. *)
