(** Fixed domain pool for data-parallel sweeps.

    OCaml 5 gives us true shared-memory parallelism through [Domain]; this
    module keeps a process-wide pool of worker domains and distributes
    array/list work over it in contiguous chunks, preserving result order.
    The pool size comes from the [ACS_JOBS] environment variable (a positive
    integer), defaulting to [Domain.recommended_domain_count () - 1]; at an
    effective job count <= 1 every entry point degrades to the plain
    sequential [Array.map]/[List.map] code path, guaranteeing deterministic
    behaviour with zero domain machinery.

    All mapped functions must be pure: they run concurrently on arbitrary
    domains and their results are written into a shared result slot exactly
    once per index. Exceptions raised by the mapped function are caught on
    the worker, the remaining chunks are abandoned, and the first exception
    is re-raised (with its backtrace) on the calling domain. *)

val jobs : unit -> int
(** The effective job count: the innermost [with_jobs] override if any,
    otherwise [ACS_JOBS], otherwise [recommended_domain_count () - 1]
    (never below 1). Raises [Invalid_argument] if [ACS_JOBS] is set to
    anything but a positive integer. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs n f] runs [f] with the effective job count forced to [n]
    (>= 1), restoring the previous setting afterwards. The override is only
    visible to calls made from the current domain, which is what tests need
    to compare sequential and parallel runs in-process. *)

val map_array : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map]. [?jobs] overrides the effective
    job count for this call; [?chunk] sets the chunk size. The default
    chunk size is auto-tuned from [total / jobs]: the target chunks-per-
    domain grows with the log of the per-domain share and is bounded to
    [2, 16], so dynamic chunk claiming can smooth uneven per-item cost
    without shredding short inputs or queueing thousands of claims. *)

val filter_map_array :
  ?jobs:int -> ?chunk:int -> ('a -> 'b option) -> 'a array -> 'b array
(** Order-preserving parallel [Array.map] followed by dropping [None]s. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val filter_map : ?jobs:int -> ?chunk:int -> ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving parallel [List.filter_map]. *)

val map_reduce_array :
  ?jobs:int ->
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'b ->
  'a array ->
  'b
(** [map_reduce_array ~map ~combine init a] folds [combine] over the mapped
    elements without materializing the intermediate array: each worker folds
    its chunk into one partial, and the partials are folded into [init] on
    the calling domain in chunk order. [combine] must be associative; given
    that, the result equals the sequential
    [Array.fold_left (fun acc x -> combine acc (map x)) init a] and is
    deterministic for a fixed chunking. Sweeps use this to fold
    best-so-far designs or row counts without building per-point lists. *)

val map_reduce :
  ?jobs:int ->
  ?chunk:int ->
  map:('a -> 'b) ->
  combine:('b -> 'b -> 'b) ->
  'b ->
  'a list ->
  'b
(** List version of {!map_reduce_array}. *)
