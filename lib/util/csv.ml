let escape field =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row_to_string cells = String.concat "," (List.map escape cells)

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Unix_stub.mkdir dir with Sys_error _ -> ())
  end

let write ~path ~header rows =
  mkdir_p (Filename.dirname path);
  let oc = open_out path in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () ->
      output_string oc (row_to_string header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let float_cell = Printf.sprintf "%.6g"
