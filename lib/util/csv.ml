let escape field =
  (* CR must be quoted too: a bare CR inside a field splits the row for any
     reader treating CRLF (or lone CR) as a record separator. *)
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quote then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let row_to_string cells = String.concat "," (List.map escape cells)

let parse_row line =
  (* Inverse of [row_to_string] for a single record (the string may contain
     newlines inside quoted fields). Tolerates malformed input by treating
     a lone quote as literal text. *)
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  let rec unquoted i =
    if i >= n then flush ()
    else
      match line.[i] with
      | ',' ->
          flush ();
          unquoted (i + 1)
      | '"' -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          unquoted (i + 1)
  and quoted i =
    if i >= n then flush ()
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> unquoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  unquoted 0;
  List.rev !cells

let write ~path ~header rows =
  (match Filename.dirname path with
  | "" | "." | "/" -> ()
  | dir -> Fs.mkdir_p dir);
  let oc = open_out path in
  let finally () = close_out oc in
  Fun.protect ~finally (fun () ->
      output_string oc (row_to_string header);
      output_char oc '\n';
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let float_cell = Printf.sprintf "%.6g"
