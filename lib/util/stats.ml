type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  median : float;
  stddev : float;
  p25 : float;
  p75 : float;
}

let require_non_empty name = function
  | [] -> invalid_arg (Printf.sprintf "Stats.%s: empty input" name)
  | _ :: _ -> ()

let reject_nan name xs =
  if List.exists Float.is_nan xs then
    invalid_arg (Printf.sprintf "Stats.%s: NaN in input" name)

let mean xs =
  require_non_empty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sorted_array xs =
  let a = Array.of_list xs in
  (* [Float.compare], not polymorphic [compare]: it is specialized for
     floats and totally ordered (polymorphic compare silently misorders
     around NaN, which the entry points below reject anyway). *)
  Array.sort Float.compare a;
  a

let percentile_of_sorted p a =
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (* Exact-integer ranks must index directly: interpolating would compute
       [inf *. 0.] = NaN when an endpoint is infinite. *)
    if lo = hi then a.(lo)
    else (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let percentile p xs =
  require_non_empty "percentile" xs;
  reject_nan "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  percentile_of_sorted p (sorted_array xs)

let median xs =
  require_non_empty "median" xs;
  reject_nan "median" xs;
  percentile_of_sorted 50. (sorted_array xs)

let stddev xs =
  require_non_empty "stddev" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
  sqrt (sq /. float_of_int (List.length xs))

let range xs =
  require_non_empty "range" xs;
  let a = sorted_array xs in
  a.(Array.length a - 1) -. a.(0)

let iqr xs =
  require_non_empty "iqr" xs;
  let a = sorted_array xs in
  percentile_of_sorted 75. a -. percentile_of_sorted 25. a

let summarize xs =
  require_non_empty "summarize" xs;
  reject_nan "summarize" xs;
  (* Sort once and derive every statistic from the same array (the previous
     version re-sorted the input for the median and each percentile). *)
  let a = sorted_array xs in
  let n = Array.length a in
  let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
  let sq =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
  in
  {
    count = n;
    min = a.(0);
    max = a.(n - 1);
    mean;
    median = percentile_of_sorted 50. a;
    stddev = sqrt (sq /. float_of_int n);
    p25 = percentile_of_sorted 25. a;
    p75 = percentile_of_sorted 75. a;
  }

let narrowing_factor ~baseline xs =
  let rb = range baseline and rx = range xs in
  if rx = 0. then if rb = 0. then 1. else infinity else rb /. rx

let relative_change ~baseline x =
  if baseline = 0. then invalid_arg "Stats.relative_change: zero baseline";
  (x -. baseline) /. baseline

let correlation pairs =
  if List.length pairs < 2 then
    invalid_arg "Stats.correlation: need at least two pairs";
  let n = float_of_int (List.length pairs) in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0. pairs in
  let mean_x = sum fst /. n and mean_y = sum snd /. n in
  let cov = sum (fun (x, y) -> (x -. mean_x) *. (y -. mean_y)) in
  let var_x = sum (fun (x, _) -> (x -. mean_x) ** 2.) in
  let var_y = sum (fun (_, y) -> (y -. mean_y) ** 2.) in
  if var_x = 0. || var_y = 0. then 0. else cov /. sqrt (var_x *. var_y)

let arg_by better key = function
  | [] -> invalid_arg "Stats.argmin/argmax: empty input"
  | x :: xs ->
      let step (best, best_k) y =
        let k = key y in
        if better k best_k then (y, k) else (best, best_k)
      in
      fst (List.fold_left step (x, key x) xs)

let argmin key xs = arg_by ( < ) key xs
let argmax key xs = arg_by ( > ) key xs

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g sd=%.4g"
    s.count s.min s.p25 s.median s.p75 s.max s.mean s.stddev

(* Bounded-memory quantile sketch: a DDSketch-style log-binned histogram.
   Samples land in geometric buckets [gamma^(i-1), gamma^i) with
   gamma = (1+alpha)/(1-alpha), so every bucket representative is within
   relative error alpha of any sample it absorbs. Memory is O(log(max/min))
   buckets regardless of sample count, and two sketches built with the same
   alpha merge by adding bucket counts — which is what makes the fleet's
   per-epoch accumulation order-independent and bit-identical across job
   counts. *)
module Online = struct
  type t = {
    alpha : float;
    gamma : float;
    log_gamma : float;
    pos : (int, int ref) Hashtbl.t;  (* bucket index -> count, x > 0 *)
    neg : (int, int ref) Hashtbl.t;  (* bucket index of -x, x < 0 *)
    mutable zeros : int;
    mutable count : int;
    mutable sum : float;
    mutable sum_sq : float;
    mutable min : float;
    mutable max : float;
  }

  let create ?(alpha = 0.01) () =
    if not (alpha > 0. && alpha < 1.) then
      invalid_arg "Stats.Online.create: alpha outside (0,1)";
    let gamma = (1. +. alpha) /. (1. -. alpha) in
    {
      alpha;
      gamma;
      log_gamma = log gamma;
      pos = Hashtbl.create 64;
      neg = Hashtbl.create 8;
      zeros = 0;
      count = 0;
      sum = 0.;
      sum_sq = 0.;
      min = infinity;
      max = neg_infinity;
    }

  let alpha t = t.alpha
  let count t = t.count

  let bucket t x = int_of_float (Float.ceil (log x /. t.log_gamma))

  let incr_bucket tbl i =
    match Hashtbl.find_opt tbl i with
    | Some r -> incr r
    | None -> Hashtbl.add tbl i (ref 1)

  let add t x =
    (* Non-finite samples are rejected like NaN: an infinity would reach
       [bucket] as [int_of_float (log infinity)], which is undefined in
       OCaml and silently corrupts the bucket table (and anything the
       sketch is later merged into). *)
    if not (Float.is_finite x) then
      invalid_arg "Stats.Online.add: non-finite sample";
    t.count <- t.count + 1;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    if x > 0. then incr_bucket t.pos (bucket t x)
    else if x < 0. then incr_bucket t.neg (bucket t (-.x))
    else t.zeros <- t.zeros + 1

  let merge t other =
    if t.alpha <> other.alpha then
      invalid_arg "Stats.Online.merge: mismatched alpha";
    let blend tbl (i, r) =
      match Hashtbl.find_opt tbl i with
      | Some dst -> dst := !dst + !r
      | None -> Hashtbl.add tbl i (ref !r)
    in
    Hashtbl.iter (fun i r -> blend t.pos (i, r)) other.pos;
    Hashtbl.iter (fun i r -> blend t.neg (i, r)) other.neg;
    t.zeros <- t.zeros + other.zeros;
    t.count <- t.count + other.count;
    t.sum <- t.sum +. other.sum;
    t.sum_sq <- t.sum_sq +. other.sum_sq;
    if other.min < t.min then t.min <- other.min;
    if other.max > t.max then t.max <- other.max

  let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count

  let stddev t =
    if t.count = 0 then nan
    else
      let n = float_of_int t.count in
      let m = t.sum /. n in
      sqrt (Float.max 0. ((t.sum_sq /. n) -. (m *. m)))

  let min_sample t = if t.count = 0 then nan else t.min
  let max_sample t = if t.count = 0 then nan else t.max

  (* Sorted (key, count) view of the sketch. Negative buckets come first,
     largest magnitude first, then zeros, then positive buckets ascending —
     the same order a sort of the raw samples would produce. *)
  let sorted_buckets tbl =
    let l = Hashtbl.fold (fun i r acc -> (i, !r) :: acc) tbl [] in
    List.sort (fun (a, _) (b, _) -> compare a b) l

  let quantile t p =
    if p < 0. || p > 100. then invalid_arg "Stats.Online.quantile: p outside [0,100]";
    if t.count = 0 then invalid_arg "Stats.Online.quantile: empty sketch";
    (* Nearest-rank convention: the k-th order statistic with
       k = max 1 (ceil (p/100 * n)). The exact-comparison tests use the same
       convention, so agreement is within the alpha relative-error bound of
       the bucket representative (interpolated percentiles cannot be
       reproduced from a histogram without an interpolation error term). *)
    let k =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100. *. float_of_int t.count)))
    in
    let representative i =
      (* Midpoint of [gamma^(i-1), gamma^i] in relative terms. *)
      2. *. (t.gamma ** float_of_int i) /. (t.gamma +. 1.)
    in
    let clamp v = Float.min t.max (Float.max t.min v) in
    let rec scan remaining = function
      | [] -> 0 (* unreachable: counts sum to [t.count] >= remaining *)
      | (i, c) :: rest ->
          if remaining <= c then i else scan (remaining - c) rest
    in
    (* Negative samples sort ascending as magnitude descending. *)
    let neg_list = List.rev (sorted_buckets t.neg) in
    let nneg = Hashtbl.fold (fun _ r acc -> acc + !r) t.neg 0 in
    if k <= nneg then clamp (-.representative (scan k neg_list))
    else if k <= nneg + t.zeros then 0.
    else
      clamp (representative (scan (k - nneg - t.zeros) (sorted_buckets t.pos)))
end
