type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  median : float;
  stddev : float;
  p25 : float;
  p75 : float;
}

let require_non_empty name = function
  | [] -> invalid_arg (Printf.sprintf "Stats.%s: empty input" name)
  | _ :: _ -> ()

let reject_nan name xs =
  if List.exists Float.is_nan xs then
    invalid_arg (Printf.sprintf "Stats.%s: NaN in input" name)

let mean xs =
  require_non_empty "mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let sorted_array xs =
  let a = Array.of_list xs in
  (* [Float.compare], not polymorphic [compare]: it is specialized for
     floats and totally ordered (polymorphic compare silently misorders
     around NaN, which the entry points below reject anyway). *)
  Array.sort Float.compare a;
  a

let percentile_of_sorted p a =
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (* Exact-integer ranks must index directly: interpolating would compute
       [inf *. 0.] = NaN when an endpoint is infinite. *)
    if lo = hi then a.(lo)
    else (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
  end

let percentile p xs =
  require_non_empty "percentile" xs;
  reject_nan "percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0,100]";
  percentile_of_sorted p (sorted_array xs)

let median xs =
  require_non_empty "median" xs;
  reject_nan "median" xs;
  percentile_of_sorted 50. (sorted_array xs)

let stddev xs =
  require_non_empty "stddev" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
  sqrt (sq /. float_of_int (List.length xs))

let range xs =
  require_non_empty "range" xs;
  let a = sorted_array xs in
  a.(Array.length a - 1) -. a.(0)

let iqr xs =
  require_non_empty "iqr" xs;
  let a = sorted_array xs in
  percentile_of_sorted 75. a -. percentile_of_sorted 25. a

let summarize xs =
  require_non_empty "summarize" xs;
  reject_nan "summarize" xs;
  (* Sort once and derive every statistic from the same array (the previous
     version re-sorted the input for the median and each percentile). *)
  let a = sorted_array xs in
  let n = Array.length a in
  let mean = Array.fold_left ( +. ) 0. a /. float_of_int n in
  let sq =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. a
  in
  {
    count = n;
    min = a.(0);
    max = a.(n - 1);
    mean;
    median = percentile_of_sorted 50. a;
    stddev = sqrt (sq /. float_of_int n);
    p25 = percentile_of_sorted 25. a;
    p75 = percentile_of_sorted 75. a;
  }

let narrowing_factor ~baseline xs =
  let rb = range baseline and rx = range xs in
  if rx = 0. then if rb = 0. then 1. else infinity else rb /. rx

let relative_change ~baseline x =
  if baseline = 0. then invalid_arg "Stats.relative_change: zero baseline";
  (x -. baseline) /. baseline

let correlation pairs =
  if List.length pairs < 2 then
    invalid_arg "Stats.correlation: need at least two pairs";
  let n = float_of_int (List.length pairs) in
  let sum f = List.fold_left (fun acc p -> acc +. f p) 0. pairs in
  let mean_x = sum fst /. n and mean_y = sum snd /. n in
  let cov = sum (fun (x, y) -> (x -. mean_x) *. (y -. mean_y)) in
  let var_x = sum (fun (x, _) -> (x -. mean_x) ** 2.) in
  let var_y = sum (fun (_, y) -> (y -. mean_y) ** 2.) in
  if var_x = 0. || var_y = 0. then 0. else cov /. sqrt (var_x *. var_y)

let arg_by better key = function
  | [] -> invalid_arg "Stats.argmin/argmax: empty input"
  | x :: xs ->
      let step (best, best_k) y =
        let k = key y in
        if better k best_k then (y, k) else (best, best_k)
      in
      fst (List.fold_left step (x, key x) xs)

let argmin key xs = arg_by ( < ) key xs
let argmax key xs = arg_by ( > ) key xs

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g sd=%.4g"
    s.count s.min s.p25 s.median s.p75 s.max s.mean s.stddev
