(* Directory creation without depending on the unix library: shell out via
   Sys.command, which the stdlib provides on all platforms we target. *)

let mkdir dir =
  let quoted = Filename.quote dir in
  let rc = Sys.command (Printf.sprintf "mkdir -p %s" quoted) in
  if rc <> 0 then raise (Sys_error (Printf.sprintf "mkdir %s failed" dir))
