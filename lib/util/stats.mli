(** Descriptive statistics over float samples.

    All functions operate on non-empty lists or arrays of finite floats;
    [Invalid_argument] is raised on empty input. The implementations are
    self-contained because no numerical library is available offline. *)

type summary = {
  count : int;
  min : float;
  max : float;
  mean : float;
  median : float;
  stddev : float;  (** population standard deviation *)
  p25 : float;
  p75 : float;
}

val mean : float list -> float
val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile (0. <= p <= 100.) using
    linear interpolation between closest ranks. Raises [Invalid_argument]
    if any input is NaN (as do [median] and [summarize]): a NaN would
    silently misorder the underlying sort. *)

val stddev : float list -> float
val range : float list -> float
(** [range xs] is [max xs -. min xs]. *)

val iqr : float list -> float
(** Interquartile range, [p75 - p25]. *)

val summarize : float list -> summary

val narrowing_factor : baseline:float list -> float list -> float
(** [narrowing_factor ~baseline xs] is [range baseline /. range xs]: how many
    times narrower the distribution [xs] is compared to [baseline]. This is
    the metric the paper uses for "N x narrower distributions". Returns
    [infinity] when [xs] has zero spread and baseline does not. *)

val relative_change : baseline:float -> float -> float
(** [relative_change ~baseline x] is [(x -. baseline) /. baseline], e.g.
    [-0.27] for a 27% improvement. *)

val correlation : (float * float) list -> float
(** Pearson correlation coefficient of paired samples; raises
    [Invalid_argument] on fewer than two pairs. Returns 0 when either
    variable is constant (no linear association measurable). *)

val argmin : ('a -> float) -> 'a list -> 'a
(** Element minimizing the key; [Invalid_argument] on empty list. *)

val argmax : ('a -> float) -> 'a list -> 'a

val pp_summary : Format.formatter -> summary -> unit

(** Bounded-memory streaming moments and quantiles.

    A DDSketch-style log-binned histogram: memory is O(log(max/min))
    buckets independent of how many samples are added, and every quantile
    is within relative error [alpha] of the true nearest-rank order
    statistic (for positive samples; zero is exact, negative samples get
    the same bound on magnitude). Sketches with equal [alpha] merge by
    bucket-count addition, so a merged sketch is independent of merge
    order and identical to a sketch fed all samples directly — the
    property the parallel fleet relies on for 1-vs-N-job bit-identity. *)
module Online : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** [alpha] is the relative quantile error bound, default [0.01] (1%).
      Raises [Invalid_argument] outside (0,1). *)

  val add : t -> float -> unit
  (** Raises [Invalid_argument] on any non-finite sample (NaN, like the
      exact estimators, and ±infinity, whose log-bucket index is an
      undefined [int_of_float] that would silently corrupt the sketch).
      A rejected sample leaves the sketch unchanged. *)

  val merge : t -> t -> unit
  (** [merge t other] folds [other] into [t]; [other] is unchanged.
      Raises [Invalid_argument] when the two sketches' [alpha] differ. *)

  val count : t -> int
  val alpha : t -> float

  val mean : t -> float
  (** Exact (running sum); NaN on an empty sketch. *)

  val stddev : t -> float
  (** Exact population stddev via running moments; NaN when empty. *)

  val min_sample : t -> float
  val max_sample : t -> float

  val quantile : t -> float -> float
  (** [quantile t p] for p in [0,100] approximates the nearest-rank order
      statistic [k = max 1 (ceil (p/100 * n))] within relative error
      [alpha], clamped into [[min_sample, max_sample]]. Note the
      convention differs from {!percentile}, which interpolates between
      ranks; the two agree as n grows. Raises [Invalid_argument] on an
      empty sketch or p outside [0,100]. *)
end
