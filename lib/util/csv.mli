(** Minimal CSV writer so every reproduced figure can also be dumped as
    machine-readable series (the benches write under [results/]). *)

val escape : string -> string
(** RFC-4180 style quoting of a single field. *)

val row_to_string : string list -> string

val write : path:string -> header:string list -> string list list -> unit
(** Writes header plus rows to [path], creating parent directories as
    needed. *)

val float_cell : float -> string
