(** Minimal CSV writer so every reproduced figure can also be dumped as
    machine-readable series (the benches write under [results/]). *)

val escape : string -> string
(** RFC-4180 style quoting of a single field: commas, quotes, LF and CR
    all force the field into double quotes. *)

val row_to_string : string list -> string

val parse_row : string -> string list
(** Inverse of [row_to_string]: splits one record into its unescaped
    fields (quoted fields may contain separators, quotes and newlines).
    [parse_row (row_to_string cells) = cells] for every non-empty [cells]
    list; used by the round-trip tests and by consumers of [results/]. *)

val write : path:string -> header:string list -> string list list -> unit
(** Writes header plus rows to [path], creating parent directories as
    needed. *)

val float_cell : float -> string
