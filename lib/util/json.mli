(** Dependency-free JSON: a small AST, a round-trip-stable printer and a
    recursive-descent parser.

    This is the serialization substrate of the scenario layer
    ({!Acs_dse.Scenario}): experiment manifests must survive
    [parse (print v) = v] exactly, so the printer chooses the shortest
    decimal representation that reads back to the same float, and object
    member order is preserved on both sides. No opam dependency is pulled
    in ([dune-project] stays lang-only). *)

type t =
  | Null
  | Bool of bool
  | Number of float
      (** Integral values within 2^53 print without a decimal point. *)
  | String of string
  | List of t list
  | Obj of (string * t) list  (** member order is preserved *)

exception Error of string
(** Raised by the parser on malformed input and by the accessors on a
    type/shape mismatch. The payload says what was expected where. *)

(** {2 Printing} *)

val float_repr : float -> string
(** Shortest decimal string [s] with [float_of_string s = f]. Integral
    floats of magnitude below 2^53 render as plain integers ("4800", not
    "4800."). Raises [Invalid_argument] on nan/infinity - JSON has no
    literal for them and a manifest must never contain one silently. *)

val to_string : ?indent:int -> t -> string
(** Serialize. [indent > 0] pretty-prints with that step ([indent = 0],
    the default, is compact one-line output). *)

val to_channel : ?indent:int -> out_channel -> t -> unit

(** {2 Parsing} *)

val of_string : string -> t
(** Parse one JSON value (surrounding whitespace allowed; trailing
    non-space input is an error). Numbers follow RFC 8259; strings decode
    the standard escapes including [\uXXXX] (encoded back as UTF-8).
    Raises {!Error} with a character position on malformed input. *)

val of_file : string -> t
(** [of_string] over a whole file's contents; raises [Sys_error] if the
    file cannot be read. *)

(** {2 Builders} *)

val int : int -> t
val float : float -> t
val string : string -> t
val bool : bool -> t
val list : ('a -> t) -> 'a list -> t
val option : ('a -> t) -> 'a option -> t
(** [option f None = Null]. *)

val obj : (string * t) list -> t
(** [Obj] with [Null]-valued members dropped, so optional fields vanish
    from manifests instead of printing as "field": null. *)

(** {2 Accessors} *)

val member : string -> t -> t
(** Field of an object; [Null] when absent. Raises {!Error} on
    non-objects. *)

val mem : string -> t -> bool
(** Does the object have this field (with any value, including null)? *)

val to_bool : t -> bool
val to_float : t -> float
(** Accepts any [Number]. *)

val to_int : t -> int
(** Accepts only integral [Number]s (raises {!Error} on 2.5). *)

val to_str : t -> string
(** The payload of a [String] (not a serialization). *)

val to_list : t -> t list
val to_option : (t -> 'a) -> t -> 'a option
(** [Null] maps to [None]. *)
