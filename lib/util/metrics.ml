type labels = (string * string) list

let rec atomic_add_float cell x =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (old +. x)) then
    atomic_add_float cell x

type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

(* Log-scale buckets: [buckets_per_decade] per decade from [range_floor]
   to [range_floor * 10^(n_value_buckets / buckets_per_decade)]. Index 0
   is the underflow bucket (<= floor, and NaN); the last index absorbs
   overflow. *)
let buckets_per_decade = 4
let decades = 12
let range_floor = 1e-9
let n_value_buckets = buckets_per_decade * decades
let n_buckets = n_value_buckets + 2

type histogram = { h_counts : int Atomic.t array; h_sum : float Atomic.t }

type metric = C of counter | G of gauge | H of histogram

let registry : (string * labels, metric) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name labels make expect =
  let key = (name, List.sort compare labels) in
  Mutex.lock registry_mutex;
  let metric =
    match Hashtbl.find_opt registry key with
    | Some m -> m
    | None ->
        let m = make () in
        Hashtbl.add registry key m;
        m
  in
  Mutex.unlock registry_mutex;
  match expect metric with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already registered as a %s" name
           (kind_name metric))

let counter ?(labels = []) name =
  register name labels
    (fun () -> C { c_value = Atomic.make 0 })
    (function C c -> Some c | G _ | H _ -> None)

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_value by)

let counter_value c = Atomic.get c.c_value

let gauge ?(labels = []) name =
  register name labels
    (fun () -> G { g_value = Atomic.make 0. })
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g x = Atomic.set g.g_value x
let add_gauge g x = atomic_add_float g.g_value x
let gauge_value g = Atomic.get g.g_value

let histogram ?(labels = []) name =
  register name labels
    (fun () ->
      H
        {
          h_counts = Array.init n_buckets (fun _ -> Atomic.make 0);
          h_sum = Atomic.make 0.;
        })
    (function H h -> Some h | C _ | G _ -> None)

let bucket_index v =
  if not (v > range_floor) then 0 (* also NaN *)
  else
    let i =
      1
      + int_of_float
          (Float.floor
             (float_of_int buckets_per_decade *. Float.log10 (v /. range_floor)))
    in
    min (max i 1) (n_buckets - 1)

let bucket_upper_bound i =
  if i = 0 then range_floor
  else
    range_floor
    *. (10. ** (float_of_int i /. float_of_int buckets_per_decade))

let observe h v =
  ignore (Atomic.fetch_and_add h.h_counts.(bucket_index v) 1);
  if not (Float.is_nan v) then atomic_add_float h.h_sum v

let time h f =
  let t0 = Monotonic_clock.now () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9 in
      observe h dt)
    f

let hist_count h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.h_counts

let hist_sum h = Atomic.get h.h_sum

let quantile h q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Metrics.quantile: q must be in [0, 1]";
  let count = hist_count h in
  if count = 0 then Float.nan
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int count))) in
    let rec walk i seen =
      let seen = seen + Atomic.get h.h_counts.(i) in
      if seen >= rank || i = n_buckets - 1 then bucket_upper_bound i
      else walk (i + 1) seen
    in
    walk 0 0
  end

let buckets h =
  List.filter_map
    (fun i ->
      let c = Atomic.get h.h_counts.(i) in
      if c = 0 then None else Some (bucket_upper_bound i, c))
    (List.init n_buckets Fun.id)

(* --- registry-wide views --- *)

let entries () =
  Mutex.lock registry_mutex;
  let all = Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare (List.map (fun ((n, l), m) -> ((n, l), m)) all)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ -> function
      | C c -> Atomic.set c.c_value 0
      | G g -> Atomic.set g.g_value 0.
      | H h ->
          Array.iter (fun cell -> Atomic.set cell 0) h.h_counts;
          Atomic.set h.h_sum 0.)
    registry;
  Mutex.unlock registry_mutex

let label_string labels =
  match labels with
  | [] -> ""
  | labels ->
      Printf.sprintf "{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let labels_json labels =
  Json.obj (List.map (fun (k, v) -> (k, Json.string v)) labels)

let finite_float f = if Float.is_finite f then Json.float f else Json.Null

let export () =
  let entry name labels fields =
    Json.obj
      ([ ("name", Json.string name) ]
      @ (if labels = [] then [] else [ ("labels", labels_json labels) ])
      @ fields)
  in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) ((name, labels), m) ->
        match m with
        | C c ->
            ( entry name labels [ ("value", Json.int (counter_value c)) ] :: cs,
              gs, hs )
        | G g ->
            ( cs,
              entry name labels [ ("value", finite_float (gauge_value g)) ] :: gs,
              hs )
        | H h ->
            let bs =
              List.map
                (fun (le, count) ->
                  Json.obj [ ("le", Json.float le); ("count", Json.int count) ])
                (buckets h)
            in
            ( cs, gs,
              entry name labels
                [
                  ("count", Json.int (hist_count h));
                  ("sum", finite_float (hist_sum h));
                  ("buckets", Json.List bs);
                ]
              :: hs ))
      ([], [], []) (entries ())
  in
  Json.obj
    [
      ("counters", Json.List (List.rev counters));
      ("gauges", Json.List (List.rev gauges));
      ("histograms", Json.List (List.rev histograms));
    ]

let summary_table () =
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
                Table.Right ]
      [ "metric"; "kind"; "value"; "mean"; "p50"; "p95" ]
  in
  List.iter
    (fun ((name, labels), m) ->
      let id = name ^ label_string labels in
      match m with
      | C c ->
          Table.add_row t
            [ id; "counter"; string_of_int (counter_value c); ""; ""; "" ]
      | G g ->
          Table.add_row t
            [ id; "gauge"; Table.fmt_g (gauge_value g); ""; ""; "" ]
      | H h ->
          let count = hist_count h in
          let cell v = if count = 0 then "-" else Table.fmt_g v in
          Table.add_row t
            [
              id; "histogram"; string_of_int count;
              cell (if count = 0 then 0. else hist_sum h /. float_of_int count);
              cell (quantile h 0.5); cell (quantile h 0.95);
            ])
    (entries ());
  t
