(** Unit conversions and formatting shared across the library.

    Conventions, matching the paper and vendor datasheets:
    - bandwidths are bytes/second (GB = 1e9 bytes for bandwidth),
    - memory capacities are bytes (GiB-style powers of two are NOT used;
      an "80 GB" HBM device is 80e9 bytes, as datasheets do),
    - areas are mm^2, frequencies Hz, times seconds. *)

val giga : float
val tera : float
val mega : float
val kilo : float

val gb : float -> float
(** [gb x] converts x gigabytes to bytes. *)

val gbps : float -> float
(** Gigabytes/second to bytes/second. *)

val tbps : float -> float
val mb : float -> float
val kb : float -> float
val mhz : float -> float
val ghz : float -> float

val to_ms : float -> float
(** Seconds to milliseconds. *)

val to_us : float -> float

val pp_bytes : Format.formatter -> float -> unit
(** Human formatting: "192 KB", "40 MB", "80 GB". *)

val pp_bandwidth : Format.formatter -> float -> unit
(** "600 GB/s", "2 TB/s". *)

val pp_time : Format.formatter -> float -> unit
(** Picks ms/us/s automatically. *)
