type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* --- printing --- *)

(* 2^53: beyond it consecutive integers are no longer representable, and
   "%.0f" would print misleading exact-looking digits. *)
let max_plain_int = 9007199254740992.

let float_repr f =
  if Float.is_nan f || Float.abs f = infinity then
    invalid_arg "Json.float_repr: nan/infinity have no JSON encoding"
  else if Float.is_integer f && Float.abs f < max_plain_int then
    Printf.sprintf "%.0f" f
  else
    (* Shortest of the round-trippable decimal forms. *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let to_buffer ?(indent = 0) b v =
  let nl depth =
    if indent > 0 then begin
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (indent * depth) ' ')
    end
  in
  let rec go depth = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Number f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            nl (depth + 1);
            go (depth + 1) item)
          items;
        nl depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj members ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            nl (depth + 1);
            escape_string b k;
            Buffer.add_char b ':';
            if indent > 0 then Buffer.add_char b ' ';
            go (depth + 1) item)
          members;
        nl depth;
        Buffer.add_char b '}'
  in
  go 0 v

let to_string ?indent v =
  let b = Buffer.create 256 in
  to_buffer ?indent b v;
  Buffer.contents b

let to_channel ?indent oc v = output_string oc (to_string ?indent v)

(* --- parsing --- *)

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let fail st fmt =
  Printf.ksprintf
    (fun msg -> error "JSON parse error at offset %d: %s" st.pos msg)
    fmt

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance st;
        true
    | _ -> false
  do
    ()
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail st "expected %C, found %C" c d
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.input
    && String.sub st.input st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal (expected %s)" word

let parse_number st =
  let start = st.pos in
  let consume_while p =
    while (match peek st with Some c -> p c | None -> false) do
      advance st
    done
  in
  if peek st = Some '-' then advance st;
  consume_while (function '0' .. '9' -> true | _ -> false);
  if peek st = Some '.' then begin
    advance st;
    consume_while (function '0' .. '9' -> true | _ -> false)
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      consume_while (function '0' .. '9' -> true | _ -> false)
  | _ -> ());
  let text = String.sub st.input start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> Number f
  | None -> fail st "malformed number %S" text

let utf8_of_code b code =
  (* Encode one Unicode scalar value as UTF-8. *)
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 st =
  let digit () =
    match peek st with
    | Some c -> begin
        advance st;
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail st "invalid hex digit %C in \\u escape" c
      end
    | None -> fail st "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
        advance st;
        (match peek st with
        | None -> fail st "unterminated escape"
        | Some c ->
            advance st;
            (match c with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                let code = hex4 st in
                (* Surrogate pair: a high surrogate must be followed by
                   \uDC00-\uDFFF; combine them into one scalar value. *)
                if code >= 0xD800 && code <= 0xDBFF then begin
                  expect st '\\';
                  expect st 'u';
                  let low = hex4 st in
                  if low < 0xDC00 || low > 0xDFFF then
                    fail st "unpaired surrogate \\u%04X" code;
                  utf8_of_code b
                    (0x10000
                    + ((code - 0xD800) lsl 10)
                    + (low - 0xDC00))
                end
                else if code >= 0xDC00 && code <= 0xDFFF then
                  fail st "unpaired surrogate \\u%04X" code
                else utf8_of_code b code
            | c -> fail st "invalid escape \\%C" c));
        loop ()
      end
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Buffer.contents b

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some ']' ->
          advance st;
          List []
      | _ ->
          let rec items acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                items (v :: acc)
            | Some ']' ->
                advance st;
                List (List.rev (v :: acc))
            | _ -> fail st "expected ',' or ']' in array"
          in
          items []
    end
  | Some '{' -> begin
      advance st;
      skip_ws st;
      match peek st with
      | Some '}' ->
          advance st;
          Obj []
      | _ ->
          let member () =
            skip_ws st;
            let k = parse_string st in
            skip_ws st;
            expect st ':';
            (k, parse_value st)
          in
          let rec members acc =
            let kv = member () in
            skip_ws st;
            match peek st with
            | Some ',' ->
                advance st;
                members (kv :: acc)
            | Some '}' ->
                advance st;
                Obj (List.rev (kv :: acc))
            | _ -> fail st "expected ',' or '}' in object"
          in
          members []
    end
  | Some c -> fail st "unexpected character %C" c

let of_string s =
  let st = { input = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  (match peek st with
  | Some c -> fail st "trailing input starting with %C" c
  | None -> ());
  v

let of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

(* --- builders --- *)

let int i = Number (float_of_int i)
let float f = Number f
let string s = String s
let bool b = Bool b
let list f xs = List (List.map f xs)
let option f = function None -> Null | Some x -> f x
let obj members = Obj (List.filter (fun (_, v) -> v <> Null) members)

(* --- accessors --- *)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Number _ -> "number"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member k = function
  | Obj members -> ( match List.assoc_opt k members with Some v -> v | None -> Null)
  | v -> error "expected an object with field %S, found %s" k (type_name v)

let mem k = function
  | Obj members -> List.mem_assoc k members
  | _ -> false

let to_bool = function
  | Bool b -> b
  | v -> error "expected a bool, found %s" (type_name v)

let to_float = function
  | Number f -> f
  | v -> error "expected a number, found %s" (type_name v)

let to_int = function
  | Number f when Float.is_integer f && Float.abs f <= max_plain_int ->
      int_of_float f
  | Number f -> error "expected an integer, found %s" (float_repr f)
  | v -> error "expected an integer, found %s" (type_name v)

let to_str = function
  | String s -> s
  | v -> error "expected a string, found %s" (type_name v)

let to_list = function
  | List items -> items
  | v -> error "expected an array, found %s" (type_name v)

let to_option f = function Null -> None | v -> Some (f v)
