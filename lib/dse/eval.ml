module Parallel = Acs_util.Parallel
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

type stats = { lookups : int; hits : int; evaluations : int }

(* Registry metrics mirroring the local atomics: the atomics feed
   [stats ()] (and [Common.timed]); the registry feeds `acs profile`'s
   summary and the metrics export. *)
let m_lookups = lazy (Metrics.counter "dse_cache_lookups_total")
let m_hits = lazy (Metrics.counter "dse_cache_hits_total")
let m_evals = lazy (Metrics.counter "dse_evaluations_total")
let m_eval_seconds = lazy (Metrics.histogram "dse_eval_seconds")

(* The memo cache is keyed on scenarios directly: one {!Scenario.t} per
   design point (the point scenario's [target] is [Point p]). Equality and
   hashing come from [Scenario.Key] - explicit, context-only, with
   documented nan/-0. float semantics - rather than the polymorphic
   [Hashtbl.hash]/[(=)], under which a nan-bearing key (e.g. a probing
   sweep with [memory_gb = nan]) would never hit. *)
module Cache = Hashtbl.Make (Scenario.Key)

let cache : Design.t Cache.t = Cache.create 4096
let cache_mutex = Mutex.create ()
let lookups = Atomic.make 0
let hits = Atomic.make 0
let evaluations = Atomic.make 0

let stats () =
  {
    lookups = Atomic.get lookups;
    hits = Atomic.get hits;
    evaluations = Atomic.get evaluations;
  }

let clear () =
  Mutex.lock cache_mutex;
  Cache.reset cache;
  Mutex.unlock cache_mutex;
  Atomic.set lookups 0;
  Atomic.set hits 0;
  Atomic.set evaluations 0

let point_key (s : Scenario.t) p = { s with Scenario.target = Scenario.Point p }

let find_opt key =
  Mutex.lock cache_mutex;
  let r = Cache.find_opt cache key in
  Mutex.unlock cache_mutex;
  Atomic.incr lookups;
  Metrics.incr (Lazy.force m_lookups);
  let hit_counter = Lazy.force m_hits in
  if r <> None then begin
    Atomic.incr hits;
    Metrics.incr hit_counter
  end;
  r

let insert key design =
  Mutex.lock cache_mutex;
  if not (Cache.mem cache key) then Cache.add cache key design;
  Mutex.unlock cache_mutex

let evaluate_point (s : Scenario.t) p =
  Atomic.incr evaluations;
  Metrics.incr (Lazy.force m_evals);
  let eval () =
    Design.evaluate ?calib:s.Scenario.calib ?tp:s.Scenario.tp
      ?request:s.Scenario.request ~model:s.Scenario.model p
      (Space.build ?memory_gb:s.Scenario.memory_gb
         ~tpp_target:s.Scenario.tpp_target p)
  in
  Metrics.time (Lazy.force m_eval_seconds) (fun () ->
      if not (Span.enabled ()) then eval ()
      else
        Span.with_span "eval.point"
          ~attrs:
            [ ("systolic", Span.Int p.Space.systolic_dim);
              ("lanes", Span.Int p.Space.lanes);
              ("l1_kb", Span.Float p.Space.l1);
              ("l2_mb", Span.Float p.Space.l2);
              ("membw_tb_s", Span.Float p.Space.memory_bw);
              ("devbw_gb_s", Span.Float p.Space.device_bw) ]
          eval)

let run ?(cache = true) (s : Scenario.t) =
  let points =
    match s.Scenario.target with
    | Scenario.Point p -> [| p |]
    | Scenario.Space sweep -> Array.of_list (Space.enumerate sweep)
  in
  let run_points () =
    if not cache then
      Array.to_list (Parallel.map_array (evaluate_point s) points)
    else begin
      let keys = Array.map (point_key s) points in
      let found = Array.map find_opt keys in
      let missing = ref [] in
      Array.iteri
        (fun i -> function None -> missing := i :: !missing | Some _ -> ())
        found;
      let missing = Array.of_list (List.rev !missing) in
      let computed =
        Parallel.map_array (fun i -> evaluate_point s points.(i)) missing
      in
      Array.iteri
        (fun j i ->
          insert keys.(i) computed.(j);
          found.(i) <- Some computed.(j))
        missing;
      Array.to_list
        (Array.map (function Some d -> d | None -> assert false) found)
    end
  in
  if not (Span.enabled ()) then run_points ()
  else
    Span.with_span "eval.run"
      ~attrs:
        [ ( "scenario",
            Span.Str
              (if s.Scenario.name = "" then "<anonymous>" else s.Scenario.name)
          );
          ("points", Span.Int (Array.length points));
          ("cache", Span.Bool cache) ]
      run_points

(* Legacy optional-argument entry points: thin wrappers that build an
   anonymous scenario. They share the cache with registry scenarios of
   the same context ([Scenario.equal] ignores name/description/regime). *)

let scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target target =
  Scenario.make ?request ?calib ?tp ?memory_gb ~name:"" ~model ~tpp_target
    target

let evaluate ?calib ?tp ?request ?memory_gb ~model ~tpp_target params =
  match
    run
      (scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target
         (Scenario.Point params))
  with
  | [ d ] -> d
  | _ -> assert false

let sweep ?calib ?tp ?request ?memory_gb ?cache ~model ~tpp_target sweep_def =
  run ?cache
    (scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target
       (Scenario.Space sweep_def))
