module Parallel = Acs_util.Parallel

type stats = { lookups : int; hits : int; evaluations : int }

(* The key captures everything [Design.evaluate]'s result depends on. All
   components are closure-free records (floats/ints/strings), so structural
   equality and the polymorphic hash are both safe. *)
type key = {
  params : Space.params;
  tpp_target : float;
  memory_gb : float option;
  model : Acs_workload.Model.t;
  calib : Acs_perfmodel.Calib.t option;
  tp : int option;
  request : Acs_workload.Request.t option;
}

let cache : (key, Design.t) Hashtbl.t = Hashtbl.create 4096
let cache_mutex = Mutex.create ()
let lookups = Atomic.make 0
let hits = Atomic.make 0
let evaluations = Atomic.make 0

let stats () =
  {
    lookups = Atomic.get lookups;
    hits = Atomic.get hits;
    evaluations = Atomic.get evaluations;
  }

let clear () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex;
  Atomic.set lookups 0;
  Atomic.set hits 0;
  Atomic.set evaluations 0

let key_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target params =
  { params; tpp_target; memory_gb; model; calib; tp; request }

let find_opt key =
  Mutex.lock cache_mutex;
  let r = Hashtbl.find_opt cache key in
  Mutex.unlock cache_mutex;
  Atomic.incr lookups;
  if r <> None then Atomic.incr hits;
  r

let insert key design =
  Mutex.lock cache_mutex;
  if not (Hashtbl.mem cache key) then Hashtbl.add cache key design;
  Mutex.unlock cache_mutex

let evaluate_raw ?calib ?tp ?request ?memory_gb ~model ~tpp_target params =
  Atomic.incr evaluations;
  Design.evaluate ?calib ?tp ?request ~model params
    (Space.build ?memory_gb ~tpp_target params)

let evaluate ?calib ?tp ?request ?memory_gb ~model ~tpp_target params =
  let key = key_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target params in
  match find_opt key with
  | Some d -> d
  | None ->
      let d =
        evaluate_raw ?calib ?tp ?request ?memory_gb ~model ~tpp_target params
      in
      insert key d;
      d

let sweep ?calib ?tp ?request ?memory_gb ?(cache = true) ~model ~tpp_target
    sweep_def =
  let params = Array.of_list (Space.enumerate sweep_def) in
  let eval_one p =
    evaluate_raw ?calib ?tp ?request ?memory_gb ~model ~tpp_target p
  in
  if not cache then Array.to_list (Parallel.map_array eval_one params)
  else begin
    let keys =
      Array.map
        (fun p -> key_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target p)
        params
    in
    let found = Array.map find_opt keys in
    let missing = ref [] in
    Array.iteri
      (fun i -> function None -> missing := i :: !missing | Some _ -> ())
      found;
    let missing = Array.of_list (List.rev !missing) in
    let computed =
      Parallel.map_array (fun i -> eval_one params.(i)) missing
    in
    Array.iteri
      (fun j i ->
        insert keys.(i) computed.(j);
        found.(i) <- Some computed.(j))
      missing;
    Array.to_list
      (Array.map (function Some d -> d | None -> assert false) found)
  end
