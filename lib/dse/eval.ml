module Parallel = Acs_util.Parallel
module Span = Acs_util.Trace
module Metrics = Acs_util.Metrics

type stats = { lookups : int; hits : int; evaluations : int }

(* Registry metrics mirroring the local atomics: the atomics feed
   [stats ()] (and [Common.timed]); the registry feeds `acs profile`'s
   summary and the metrics export. *)
let m_lookups = lazy (Metrics.counter "dse_cache_lookups_total")
let m_hits = lazy (Metrics.counter "dse_cache_hits_total")
let m_evals = lazy (Metrics.counter "dse_evaluations_total")
let m_eval_seconds = lazy (Metrics.histogram "dse_eval_seconds")

(* The memo cache is keyed per design point: the sweep's shared context
   (a {!Scenario.t}; [Scenario.context_equal] ignores name, description,
   regime and the target) paired with the raw point [params]. The hash is
   computed once per point - [Scenario.point_hash] over a context hash
   computed once per sweep - stored in the key, and reused by lookup,
   shard selection and insertion; building a full per-point scenario
   value, as the first cut of this cache did, is no longer needed.
   Equality and hashing keep the documented nan/-0. float semantics of
   [Scenario.Key] (under the polymorphic [(=)], a nan-bearing key - e.g.
   a probing sweep with [memory_gb = nan] - would never hit). *)
module Pkey = struct
  type t = {
    ctx : Scenario.t;
    params : Space.params;
    hash : int;  (** [Scenario.point_hash], precomputed *)
  }

  let equal a b =
    (* params first: the cheap field-by-field compare almost always
       decides within one bucket. *)
    Space.params_equal a.params b.params && Scenario.context_equal a.ctx b.ctx

  let hash k = k.hash
end

module Pcache = Hashtbl.Make (Pkey)

(* The cache is sharded N ways, each shard a table behind its own mutex,
   so concurrent domains probing a warm cache do not serialize on one
   global lock (they did, and the lock was held across the full
   scenario hash + equality walk). The shard index comes from bits 24+ of
   the key hash: [Hashtbl] buckets on the low bits, so taking high bits
   keeps the two choices uncorrelated. *)
let n_shards = 16

type shard = { lock : Mutex.t; table : Design.t Pcache.t }

let shards =
  Array.init n_shards (fun _ ->
      { lock = Mutex.create (); table = Pcache.create 512 })

let shard_of hash = shards.((hash lsr 24) land (n_shards - 1))
let lookups = Atomic.make 0
let hits = Atomic.make 0
let evaluations = Atomic.make 0

let stats () =
  {
    lookups = Atomic.get lookups;
    hits = Atomic.get hits;
    evaluations = Atomic.get evaluations;
  }

let clear () =
  Array.iter
    (fun s ->
      Mutex.lock s.lock;
      Pcache.reset s.table;
      Mutex.unlock s.lock)
    shards;
  Atomic.set lookups 0;
  Atomic.set hits 0;
  Atomic.set evaluations 0

let point_key ~ctx_hash (s : Scenario.t) p =
  {
    Pkey.ctx = s;
    params = p;
    hash = Scenario.point_hash ~context_hash:ctx_hash p;
  }

let find_opt (key : Pkey.t) =
  let shard = shard_of key.Pkey.hash in
  Mutex.lock shard.lock;
  let r = Pcache.find_opt shard.table key in
  Mutex.unlock shard.lock;
  Atomic.incr lookups;
  Metrics.incr (Lazy.force m_lookups);
  if Option.is_some r then begin
    Atomic.incr hits;
    Metrics.incr (Lazy.force m_hits)
  end;
  r

let insert (key : Pkey.t) design =
  let shard = shard_of key.Pkey.hash in
  Mutex.lock shard.lock;
  if not (Pcache.mem shard.table key) then Pcache.add shard.table key design;
  Mutex.unlock shard.lock

let probe (s : Scenario.t) p =
  Option.is_some
    (find_opt (point_key ~ctx_hash:(Scenario.context_hash s) s p))

let compile_scenario (s : Scenario.t) =
  Acs_perfmodel.Engine.compile ?tp:s.Scenario.tp ?request:s.Scenario.request
    s.Scenario.model

let evaluate_point (s : Scenario.t) compiled p =
  Atomic.incr evaluations;
  Metrics.incr (Lazy.force m_evals);
  let eval () =
    Design.evaluate_compiled ?calib:s.Scenario.calib compiled p
      (Space.build ?memory_gb:s.Scenario.memory_gb
         ~tpp_target:s.Scenario.tpp_target p)
  in
  Metrics.time (Lazy.force m_eval_seconds) (fun () ->
      if not (Span.enabled ()) then eval ()
      else
        Span.with_span "eval.point"
          ~attrs:
            [ ("systolic", Span.Int p.Space.systolic_dim);
              ("lanes", Span.Int p.Space.lanes);
              ("l1_kb", Span.Float p.Space.l1);
              ("l2_mb", Span.Float p.Space.l2);
              ("membw_tb_s", Span.Float p.Space.memory_bw);
              ("devbw_gb_s", Span.Float p.Space.device_bw) ]
          eval)

(* Shared evaluation core over an explicit point array: [run] feeds it
   the scenario's target, [points] an arbitrary list (the adaptive
   search asks for exactly the lattice points a strategy selected). *)
let eval_array ~cache (s : Scenario.t) (points : Space.params array) =
  let run_points () =
    if not cache then begin
      let compiled = compile_scenario s in
      Array.to_list (Parallel.map_array (evaluate_point s compiled) points)
    end
    else begin
      let ctx_hash = Scenario.context_hash s in
      let keys = Array.map (point_key ~ctx_hash s) points in
      let found = Array.map find_opt keys in
      let missing = ref [] in
      Array.iteri
        (fun i -> function None -> missing := i :: !missing | Some _ -> ())
        found;
      let missing = Array.of_list (List.rev !missing) in
      if Array.length missing > 0 then begin
        (* Compile the shared context once, on the caller, and only when
           something actually needs evaluating: a warm run pays nothing,
           and the workers just read the compiled value ([Lazy.force]
           would not be safe to share across domains). *)
        let compiled = compile_scenario s in
        let computed =
          Parallel.map_array
            (fun i -> evaluate_point s compiled points.(i))
            missing
        in
        Array.iteri
          (fun j i ->
            insert keys.(i) computed.(j);
            found.(i) <- Some computed.(j))
          missing
      end;
      Array.to_list
        (Array.map (function Some d -> d | None -> assert false) found)
    end
  in
  if not (Span.enabled ()) then run_points ()
  else
    Span.with_span "eval.run"
      ~attrs:
        [ ( "scenario",
            Span.Str
              (if s.Scenario.name = "" then "<anonymous>" else s.Scenario.name)
          );
          ("points", Span.Int (Array.length points));
          ("cache", Span.Bool cache) ]
      run_points

let run ?(cache = true) (s : Scenario.t) =
  let points =
    match s.Scenario.target with
    | Scenario.Point p -> [| p |]
    | Scenario.Space sweep -> Array.of_list (Space.enumerate sweep)
  in
  eval_array ~cache s points

let points ?(cache = true) (s : Scenario.t) ps =
  eval_array ~cache s (Array.of_list ps)

let seed (s : Scenario.t) p d =
  insert (point_key ~ctx_hash:(Scenario.context_hash s) s p) d

(* Legacy optional-argument entry points: thin wrappers that build an
   anonymous scenario. They share the cache with registry scenarios of
   the same context ([Scenario.context_equal] ignores
   name/description/regime). *)

let scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target target =
  Scenario.make ?request ?calib ?tp ?memory_gb ~name:"" ~model ~tpp_target
    target

let evaluate ?calib ?tp ?request ?memory_gb ~model ~tpp_target params =
  match
    run
      (scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target
         (Scenario.Point params))
  with
  | [ d ] -> d
  | _ -> assert false

let sweep ?calib ?tp ?request ?memory_gb ?cache ~model ~tpp_target sweep_def =
  run ?cache
    (scenario_of ?calib ?tp ?request ?memory_gb ~model ~tpp_target
       (Scenario.Space sweep_def))
