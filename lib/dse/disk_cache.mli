(** Persistent on-disk eval-cache tier (under the in-memory {!Eval}
    cache).

    One JSON record per evaluated (context, point) pair, content-addressed
    by {!Scenario.context_hash} and {!Space.params_hash}, conventionally
    under [results/cache/]. A handle is bound to one scenario's evaluation
    context at {!open_dir}: records from other contexts in the same
    directory are ignored, records from the same context load into an
    in-memory index keyed by {!Space.params_equal}.

    Durability contract:
    - writes are atomic (temp file + rename in the same directory);
    - records carry a {!version} header - entries written by a different
      version are skipped on load, which is how a perf-model change
      invalidates a stale cache;
    - corrupt, truncated or otherwise unreadable records are counted in
      [stats.skipped] and ignored; {!open_dir} never raises on bad cache
      contents.

    Only (params, ttft, tbt) are stored; the rest of a {!Design.t} is
    rebuilt via {!Space.build} and {!Design.of_latencies}, producing a
    bitwise-equal design (latency bits are stored exactly, as IEEE-754 bit
    patterns). *)

type t

type stats = {
  loaded : int;  (** healthy same-context records found at {!open_dir} *)
  hits : int;  (** {!find} calls answered from the loaded index *)
  stores : int;  (** new records written by {!store} *)
  skipped : int;  (** corrupt or version-stale records ignored on load *)
}

val version : int
(** Record-format/model generation. Bump to orphan every existing cache
    entry. *)

val default_dir : string
(** [results/cache] - where the CLI puts the cache unless told otherwise. *)

val open_dir : dir:string -> Scenario.t -> t
(** Create [dir] if needed (recursively) and index every healthy record
    matching the scenario's evaluation context. Never raises on cache
    contents; an unreadable directory simply yields an empty cache. *)

val find : t -> Space.params -> Design.t option
(** Lookup in the loaded index (no disk I/O after {!open_dir}); counts a
    hit when found. *)

val store : t -> Space.params -> Design.t -> unit
(** Write one record (atomic rename) and add it to the index. A point
    already present - loaded or stored earlier - is left untouched, so
    warm runs do no I/O. *)

val stats : t -> stats
