(** Design-space definitions and design-point generation.

    Each parameter combination is turned into a device whose core count is
    the largest that keeps TPP strictly below the target (Eq. 1), mirroring
    how the paper's "4800 TPP" sweep actually lands at 4759 TPP with
    103 cores. *)

type sweep = {
  systolic_dims : int list;  (** square array sizes *)
  lanes_per_core : int list;
  l1_kb : float list;
  l2_mb : float list;
  memory_bw_tb_s : float list;
  device_bw_gb_s : float list;
  clock_mhz : float list;  (** core clock; the paper fixes 1410 MHz *)
}

val default_clock_mhz : float
(** 1410 MHz - the A100 clock every paper sweep runs at (equals
    {!Acs_hardware.Device.default_frequency_mhz}, so singleton-clock
    sweeps build bit-identical devices to the pre-widening code). *)

val oct2022 : sweep
(** Table 3 with fixed 600 GB/s device bandwidth: 512 designs. *)

val oct2023 : sweep
(** Table 3 with device bandwidth in {500, 700, 900}: 1536 designs per TPP
    target. *)

val restricted : sweep
(** Table 5 (parameters at or below the A100's): 2304 designs. *)

val widened : sweep
(** Every axis widened into a fine lattice - clock 900..2100 MHz in 25 MHz
    steps, ten systolic sizes, eight lane counts, 32-step L1/L2 grids,
    1..16 HBM stacks (the memory-bw axis quantized to whole 400 GB/s
    stacks) and 16 device bandwidths: ~1.03e9 implicit designs. Meant for
    {!Adaptive} search, never for enumeration. *)

val size : sweep -> int

val named : (string * sweep) list
(** The sweeps by manifest name: oct2022, oct2023, restricted, widened. *)

val find_named : string -> sweep option
(** Case-insensitive lookup in {!named}. *)

val name_of : sweep -> string option
(** Reverse lookup: the manifest name of a structurally-equal named
    sweep. *)

type params = {
  systolic_dim : int;
  lanes : int;
  l1 : float;  (** KB *)
  l2 : float;  (** MB *)
  memory_bw : float;  (** TB/s *)
  device_bw : float;  (** GB/s *)
  clock_mhz : float;  (** MHz *)
}

val enumerate : sweep -> params list
(** Cartesian product in a deterministic order. *)

(** {2 Structural equality and hashing (the [Eval] cache keys)}

    Floats compare by [Float.compare] - nan equals nan and [-0.] equals
    [0.], unlike the polymorphic [(=)] (under which a nan-bearing cache
    key could never be found again). The hashes normalize the same two
    cases (all nans hash alike, [-0.] hashes as [0.]), keeping them
    consistent with the equalities. *)

val params_equal : params -> params -> bool
val params_hash : params -> int
val sweep_equal : sweep -> sweep -> bool
val sweep_hash : sweep -> int

val build : ?memory_gb:float -> tpp_target:float -> params -> Acs_hardware.Device.t
(** Instantiate a device under the TPP target (strictly below it).
    Memory capacity defaults to 80 GB. *)

val designs : ?memory_gb:float -> tpp_target:float -> sweep -> Acs_hardware.Device.t list
(** Devices for every swept combination, in [enumerate] order; built in
    parallel over the {!Acs_util.Parallel} pool. *)

val constrain :
  ?market:Acs_policy.Regime.market ->
  ?memory_gb:float ->
  regime:Acs_policy.Regime.t ->
  tpp_target:float ->
  sweep ->
  params list
(** The sweep's points whose built device is fully unregulated under the
    regime, in [enumerate] order: the compliance pre-filter (device
    construction and the area model are cheap; no simulation runs).
    Agrees with filtering evaluated designs by {!Design.compliant} —
    the regime sees the same spec either way. [market] defaults to
    [Data_center]. *)

(** {2 JSON codecs (scenario manifests)} *)

val params_to_json : params -> Acs_util.Json.t
val params_of_json : Acs_util.Json.t -> params

val sweep_to_json : sweep -> Acs_util.Json.t
(** Sweeps structurally equal to a {!named} one serialize as their name;
    anything else as the full per-axis lists. *)

val sweep_of_json : Acs_util.Json.t -> sweep
(** Accepts a name from {!named} or the full per-axis form. Raises
    {!Acs_util.Json.Error} on unknown names and empty axes.
    [sweep_of_json (sweep_to_json s) = s]. *)
