(** Design-space definitions and design-point generation.

    Each parameter combination is turned into a device whose core count is
    the largest that keeps TPP strictly below the target (Eq. 1), mirroring
    how the paper's "4800 TPP" sweep actually lands at 4759 TPP with
    103 cores. *)

type sweep = {
  systolic_dims : int list;  (** square array sizes *)
  lanes_per_core : int list;
  l1_kb : float list;
  l2_mb : float list;
  memory_bw_tb_s : float list;
  device_bw_gb_s : float list;
}

val oct2022 : sweep
(** Table 3 with fixed 600 GB/s device bandwidth: 512 designs. *)

val oct2023 : sweep
(** Table 3 with device bandwidth in {500, 700, 900}: 1536 designs per TPP
    target. *)

val restricted : sweep
(** Table 5 (parameters at or below the A100's): 2304 designs. *)

val size : sweep -> int

type params = {
  systolic_dim : int;
  lanes : int;
  l1 : float;  (** KB *)
  l2 : float;  (** MB *)
  memory_bw : float;  (** TB/s *)
  device_bw : float;  (** GB/s *)
}

val enumerate : sweep -> params list
(** Cartesian product in a deterministic order. *)

val build : ?memory_gb:float -> tpp_target:float -> params -> Acs_hardware.Device.t
(** Instantiate a device under the TPP target (strictly below it).
    Memory capacity defaults to 80 GB. *)

val designs : ?memory_gb:float -> tpp_target:float -> sweep -> Acs_hardware.Device.t list
(** Devices for every swept combination, in [enumerate] order; built in
    parallel over the {!Acs_util.Parallel} pool. *)
