(** Local search over the discrete design grid.

    Exhaustive sweeps (1536-4608 simulations) are cheap for this analytical
    model, but a designer iterating on constraints wants answers in a
    handful of evaluations. [local_search] runs steepest-descent hill
    climbing over the sweep's parameter lattice (one step changes one
    parameter to an adjacent swept value); [optimize] restarts it from a
    deterministic set of corners plus the lattice center. *)

val adjacent : ?cmp:('a -> 'a -> int) -> 'a list -> 'a -> 'a list
(** [adjacent values current]: the previous and next swept value around
    [current] in the sorted deduplicated [values] — both for an interior
    value, one at either end, and none when [current] is not swept.
    Ordering, dedup and membership all use [cmp] (default the polymorphic
    [compare]); pass [Float.compare] for float dimensions so that values
    equal after sorting dedup consistently and nan is findable. *)

val neighbors : Space.sweep -> Space.params -> Space.params list
(** Lattice neighbors: for each dimension, the previous and next swept
    value (other dimensions unchanged). Parameters whose value is not in
    the sweep contribute no neighbors for that dimension. *)

val corners : Space.sweep -> Space.params list
(** The deterministic multi-start set: the all-low corner, the all-high
    corner and the lattice center (not deduplicated — {!optimize} and the
    adaptive strategies dedup with {!Space.params_equal} themselves). *)

type outcome = {
  best : Design.t;
  evaluated : int;  (** design evaluations performed *)
  steps : int;  (** accepted moves *)
}

val local_search :
  ?max_steps:int ->
  ?calib:Acs_perfmodel.Calib.t ->
  sweep:Space.sweep ->
  tpp_target:float ->
  model:Acs_workload.Model.t ->
  objective:(Design.t -> float) ->
  feasible:(Design.t -> bool) ->
  Space.params ->
  outcome option
(** Minimizes [objective] over feasible designs starting from the given
    point; [None] when the start itself is infeasible and no feasible
    neighbor exists. Default [max_steps] 100. *)

val optimize :
  ?calib:Acs_perfmodel.Calib.t ->
  sweep:Space.sweep ->
  tpp_target:float ->
  model:Acs_workload.Model.t ->
  objective:(Design.t -> float) ->
  feasible:(Design.t -> bool) ->
  unit ->
  outcome option
(** Multi-start local search from the lattice corners and center. The
    start set is deduplicated with {!Space.params_equal} first (on sweeps
    with singleton axes the corners coincide), so a shared start point is
    evaluated - and counted in [evaluated] - once, not once per restart.
    The restarts run in parallel over the {!Acs_util.Parallel} pool and
    share the {!Eval} memo cache, so neighbor evaluations common to
    several restarts are simulated once. *)
