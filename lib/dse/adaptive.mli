(** Adaptive design-space search over the compiled engine.

    The paper's own sweeps (512-9216 points) are enumerable; the widened
    lattice ({!Space.widened}, ~1e9 implicit points) is not. Each strategy
    here finds a near-optimal feasible design while evaluating only a
    budgeted subset of the lattice, using three fidelity levels:

    + {b bound}: an analytic roofline lower bound on the engine's phase
      latency, computed from the built device alone (no simulation). The
      bound is sound - never above the true engine latency - so a
      candidate whose bound exceeds the incumbent's true objective can be
      discarded exactly (branch-and-bound). {!bounds} exposes it and the
      property suite asserts soundness against the real engine.
    + {b engine}: {!Eval.points}, i.e.
      {!Acs_perfmodel.Engine.simulate_compiled} through the shared memo
      cache and - when [cache_dir] is given - the {!Disk_cache} tier.
    + {b refine} (optional): a caller-supplied re-ranking of the top
      evaluated designs, e.g. a serving-simulator pass injected by the
      CLI (this library does not depend on the serving simulator).

    Determinism: given (scenario, strategy, objective, budget, seed) the
    outcome's [best], [evaluated] and [rungs] are identical regardless of
    cache state (cold, warm-memory or warm-disk) and of [ACS_JOBS] - all
    decisions depend only on evaluated design values, and all randomness
    is drawn from a seeded PRNG before any evaluation. Only the
    {!provenance} triple varies. When [budget >= Space.size sweep], every
    strategy degenerates to exhaustive enumeration, so its result equals
    the {!Optimum.best} oracle bit for bit (the adaptive suite pins
    this). *)

type strategy =
  | Halving
      (** Successive halving: coarse grid probed at bound fidelity,
          survivors simulated in lower-bound order in waves, with exact
          branch-and-bound pruning against the incumbent between waves. *)
  | Pareto_front
      (** Like [Halving], but a candidate is pruned when an already
          evaluated feasible design is at or below both its objective
          lower bound and its exact die cost - i.e. it can neither win
          nor extend the (objective, cost) frontier. *)
  | Descent
      (** Multi-start coordinate descent generalizing {!Search.optimize}:
          deduplicated lattice corners plus seeded random starts; each
          pass scans one full axis at a time. *)
  | Zoom
      (** Space refinement: a coarse subgrid of the full box, then
          repeatedly zoom the box onto the incumbent's lattice cell, with
          the finer axes rotating across levels. *)

val strategies : (string * strategy) list
(** CLI-facing names, e.g. [("halving", Halving)]. *)

val strategy_to_string : strategy -> string
val strategy_of_string : string -> strategy option

type rung = {
  fidelity : string;  (** e.g. ["bound"], ["engine0"], ["zoom3"] *)
  candidates : int;  (** points entering this rung *)
  evaluated : int;  (** fresh engine evaluations spent in it *)
  promoted : int;  (** survivors carried to the next rung *)
  pruned : int;  (** candidates discarded by bound/dominance/prescreen *)
}

type provenance = { memory : int; disk : int; cold : int }
(** Where the budget-charged evaluations were answered from: the
    in-memory {!Eval} cache, the on-disk tier, or a cold simulation. The
    three always sum to [outcome.evaluated]. *)

type outcome = {
  best : Design.t option;  (** [None] when no feasible design was found *)
  objective : Optimum.objective;
  strategy : strategy;
  budget : int;
  evaluated : int;  (** engine evaluations charged; [<= budget] always *)
  bounded : int;  (** bound-fidelity probes (not budget-charged) *)
  implicit : float;  (** [Space.size] of the sweep *)
  pruned : float;  (** implicit points never simulated *)
  rungs : rung list;  (** in execution order *)
  provenance : provenance;
  disk : Disk_cache.stats option;  (** when [cache_dir] was given *)
}

val search :
  ?budget:int ->
  ?seed:int ->
  ?objective:Optimum.objective ->
  ?feasible:(Design.t -> bool) ->
  ?refine:(Design.t -> float) ->
  ?cache_dir:string ->
  strategy:strategy ->
  Scenario.t ->
  outcome
(** Search the scenario's sweep. Defaults: [budget] 1024 engine
    evaluations (the hard ceiling - never exceeded), [seed] 42,
    [objective] {!Optimum.Tbt}, [feasible] the scenario's compliance test
    plus {!Design.manufacturable}. A custom [feasible] may read the
    simulated latencies; it is then only applied at engine fidelity
    (the spec-level prescreen is skipped, since probes carry nan
    latencies). [refine], when given, re-ranks the top evaluated designs
    as a final fidelity level and [best] becomes its winner.

    @raise Invalid_argument on a [Point]-target scenario or [budget < 1]. *)

val bounds : Scenario.t -> Space.params -> float * float
(** [(ttft_bound, tbt_bound)]: the analytic roofline lower bounds on the
    engine's prefill and decode phase latencies for this point's built
    device. Sound: each is [<=] the corresponding simulated latency
    (asserted by the property suite). Exposed for tests; [search]
    amortizes the compile internally. *)
