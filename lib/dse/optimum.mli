(** Optimal-design selection under compliance filters (the per-experiment
    winners the paper reports, e.g. Fig. 6's "optimized design" and
    Table 4's compliant/non-compliant pair). *)

type objective = Ttft | Tbt | Ttft_cost | Tbt_cost

val objective_value : objective -> Design.t -> float

val best :
  ?filters:(Design.t -> bool) list -> objective -> Design.t list -> Design.t option
(** Minimizer of the objective among designs passing all filters. *)

val best_exn :
  ?filters:(Design.t -> bool) list -> objective -> Design.t list -> Design.t

val improvement_vs : baseline:float -> float -> float
(** Relative change, negative = faster than the baseline. *)
