(* Persistent on-disk tier under the in-memory [Eval] cache: one JSON
   record per evaluated (context, point) pair, so repeated studies - and
   separate processes - resume instead of re-simulating. Only the
   latencies are stored; everything else in a [Design.t] is derived
   deterministically from the built device, so [Design.of_latencies]
   reconstitutes a bitwise-equal value on load (the test suite asserts
   it). Latencies are stored as the hex of their IEEE-754 bits - exact by
   construction, and immune to any printer subtlety - with a readable
   decimal duplicate alongside for humans.

   Writes go to a temp file in the same directory followed by a
   [Sys.rename], so a crash mid-write leaves at worst a [.part] file the
   loader never looks at; a truncated or garbage record is counted in
   [stats.skipped] and ignored, never fatal. Records carry a version
   field: bumping [version] orphans every existing entry (skipped on
   load), which is the invalidation story when the perf model changes. *)

module Json = Acs_util.Json

let version = 1
let default_dir = Filename.concat "results" "cache"

type stats = { loaded : int; hits : int; stores : int; skipped : int }

module Ptable = Hashtbl.Make (struct
  type t = Space.params

  let equal = Space.params_equal
  let hash = Space.params_hash
end)

type t = {
  dir : string;
  ctx_tag : string;  (** hex of [Scenario.context_hash], for filenames *)
  ctx_str : string;  (** canonical context JSON, compared on load *)
  scenario : Scenario.t;
  table : Design.t Ptable.t;
  mutable loaded : int;
  mutable hits : int;
  mutable stores : int;
  mutable skipped : int;
}

(* The canonical context string: the scenario manifest restricted to the
   members [Scenario.context_equal] actually compares (model, request,
   calib, tp, tpp_target, memory_gb) - name, description, regime and the
   target are sliced off, so e.g. table4 and fig7-gpt3-2400 share disk
   entries exactly as they share the in-memory cache. *)
let context_keys = [ "model"; "request"; "calib"; "tp"; "tpp_target"; "memory_gb" ]

let context_string (s : Scenario.t) =
  let j = Scenario.to_json s in
  Json.to_string
    (Json.Obj
       (List.filter_map
          (fun k -> if Json.mem k j then Some (k, Json.member k j) else None)
          context_keys))

let float_bits f = Printf.sprintf "%016Lx" (Int64.bits_of_float f)
let bits_float s = Int64.float_of_bits (Int64.of_string ("0x" ^ s))

let entry_path t p =
  (* Content-addressed name: context hash, then two independent hashes of
     the point (the lattice hash plus a string hash of its JSON), so
     distinct points collide with negligible probability and a rewrite of
     the same point lands on the same file (idempotent). *)
  let pj = Json.to_string (Space.params_to_json p) in
  Printf.sprintf "acs-%s-%015x%08x.json" t.ctx_tag
    (Space.params_hash p land 0xfff_ffff_ffff_ffff)
    (Hashtbl.hash pj land 0xffff_ffff)
  |> Filename.concat t.dir

let mkdirs = Acs_util.Fs.mkdir_p

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One record off disk. [Error `Other_context] is a healthy entry that
   belongs to a different evaluation context (or cache generation) and is
   silently ignored; every malformed/stale shape is [`Skip]. *)
let parse_entry t text =
  match Json.of_string text with
  | exception Json.Error _ -> Error `Skip
  | j -> (
      match Json.to_int (Json.member "version" j) with
      | exception Json.Error _ -> Error `Skip
      | v when v <> version -> Error `Skip
      | _ -> (
          match Json.to_str (Json.member "context" j) with
          | exception Json.Error _ -> Error `Skip
          | ctx when ctx <> t.ctx_str -> Error `Other_context
          | _ -> (
              try
                let p = Space.params_of_json (Json.member "params" j) in
                let ttft_s = bits_float (Json.to_str (Json.member "ttft_bits" j)) in
                let tbt_s = bits_float (Json.to_str (Json.member "tbt_bits" j)) in
                let s = t.scenario in
                let device =
                  Space.build ?memory_gb:s.Scenario.memory_gb
                    ~tpp_target:s.Scenario.tpp_target p
                in
                Ok (p, Design.of_latencies p device ~ttft_s ~tbt_s)
              with _ -> Error `Skip)))

let open_dir ~dir scenario =
  mkdirs dir;
  let t =
    {
      dir;
      ctx_tag = Printf.sprintf "%015x" (Scenario.context_hash scenario land max_int);
      ctx_str = context_string scenario;
      scenario;
      table = Ptable.create 256;
      loaded = 0;
      hits = 0;
      stores = 0;
      skipped = 0;
    }
  in
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.iter
    (fun name ->
      if
        String.length name > 4
        && String.sub name 0 4 = "acs-"
        && Filename.check_suffix name ".json"
      then
        let path = Filename.concat dir name in
        match parse_entry t (read_file path) with
        | Ok (p, d) ->
            if not (Ptable.mem t.table p) then begin
              Ptable.add t.table p d;
              t.loaded <- t.loaded + 1
            end
        | Error `Other_context -> ()
        | Error `Skip | (exception Sys_error _) ->
            t.skipped <- t.skipped + 1)
    entries;
  t

let find t p =
  match Ptable.find_opt t.table p with
  | Some d ->
      t.hits <- t.hits + 1;
      Some d
  | None -> None

let store t p (d : Design.t) =
  if not (Ptable.mem t.table p) then begin
    Ptable.add t.table p d;
    let finite_or_null f = if Float.is_finite f then Json.float f else Json.Null in
    let record =
      Json.obj
        [
          ("version", Json.int version);
          ("context", Json.string t.ctx_str);
          ("params", Space.params_to_json p);
          ("ttft_bits", Json.string (float_bits d.Design.ttft_s));
          ("tbt_bits", Json.string (float_bits d.Design.tbt_s));
          (* Readable duplicates, informational only (dropped when not
             finite - JSON has no literal for nan/infinity). *)
          ("ttft_s", finite_or_null d.Design.ttft_s);
          ("tbt_s", finite_or_null d.Design.tbt_s);
        ]
    in
    let tmp = Filename.temp_file ~temp_dir:t.dir "acs_write" ".part" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Json.to_string ~indent:2 record));
    Sys.rename tmp (entry_path t p);
    t.stores <- t.stores + 1
  end

let stats t =
  { loaded = t.loaded; hits = t.hits; stores = t.stores; skipped = t.skipped }
