module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic

(* The paper's sweeps fix the clock at the A100's 1410 MHz; the widened
   space below makes it a first-class axis. Keeping the default exactly
   [Device.default_frequency_mhz] means every pre-existing sweep builds
   bit-identical devices. *)
let default_clock_mhz = Device.default_frequency_mhz

type sweep = {
  systolic_dims : int list;
  lanes_per_core : int list;
  l1_kb : float list;
  l2_mb : float list;
  memory_bw_tb_s : float list;
  device_bw_gb_s : float list;
  clock_mhz : float list;
}

let table3 ~device_bw =
  {
    systolic_dims = [ 16; 32 ];
    lanes_per_core = [ 1; 2; 4; 8 ];
    l1_kb = [ 192.; 256.; 512.; 1024. ];
    l2_mb = [ 32.; 48.; 64.; 80. ];
    memory_bw_tb_s = [ 2.; 2.4; 2.8; 3.2 ];
    device_bw_gb_s = device_bw;
    clock_mhz = [ default_clock_mhz ];
  }

let oct2022 = table3 ~device_bw:[ 600. ]
let oct2023 = table3 ~device_bw:[ 500.; 700.; 900. ]

let restricted =
  {
    systolic_dims = [ 4; 8; 16 ];
    lanes_per_core = [ 1; 2; 4; 8 ];
    l1_kb = [ 32.; 64.; 128.; 192. ];
    l2_mb = [ 8.; 16.; 32.; 40. ];
    memory_bw_tb_s = [ 0.8; 1.2; 1.6; 2. ];
    device_bw_gb_s = [ 400.; 500.; 600. ];
    clock_mhz = [ default_clock_mhz ];
  }

(* Axis generators for the widened space. HBM stacks are the memory-bw
   axis quantized to whole 400 GB/s stacks ([Memory.make] derives the
   stack count back from the bandwidth); dividing by 1000 after the
   integer multiply keeps the values on the same floats the hand-written
   sweeps use (e.g. [1.2], not [3. *. 0.4]). *)
let lin_axis ~lo ~step n = List.init n (fun i -> lo +. (step *. float_of_int i))

let hbm_stack_axis n =
  let stack_gb_s = Acs_hardware.Memory.stack_bandwidth /. Acs_util.Units.giga in
  List.init n (fun i -> float_of_int (i + 1) *. stack_gb_s /. 1000.)

let widened =
  {
    systolic_dims = [ 4; 8; 12; 16; 20; 24; 28; 32; 48; 64 ];
    lanes_per_core = [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    l1_kb = lin_axis ~lo:32. ~step:32. 32;
    l2_mb = lin_axis ~lo:4. ~step:4. 32;
    memory_bw_tb_s = hbm_stack_axis 16;
    device_bw_gb_s = lin_axis ~lo:100. ~step:100. 16;
    clock_mhz = lin_axis ~lo:900. ~step:25. 49;
  }

let named =
  [
    ("oct2022", oct2022);
    ("oct2023", oct2023);
    ("restricted", restricted);
    ("widened", widened);
  ]
let find_named name = List.assoc_opt (String.lowercase_ascii (String.trim name)) named
let name_of s = List.find_map (fun (n, s') -> if s = s' then Some n else None) named

let size (s : sweep) =
  List.length s.systolic_dims * List.length s.lanes_per_core
  * List.length s.l1_kb * List.length s.l2_mb
  * List.length s.memory_bw_tb_s
  * List.length s.device_bw_gb_s
  * List.length s.clock_mhz

type params = {
  systolic_dim : int;
  lanes : int;
  l1 : float;
  l2 : float;
  memory_bw : float;
  device_bw : float;
  clock_mhz : float;
}

(* The clock loop is innermost so pre-existing (singleton-clock) sweeps
   keep their historical enumeration order - the golden CSVs pin it. *)
let enumerate (s : sweep) =
  let acc = ref [] in
  List.iter
    (fun systolic_dim ->
      List.iter
        (fun lanes ->
          List.iter
            (fun l1 ->
              List.iter
                (fun l2 ->
                  List.iter
                    (fun memory_bw ->
                      List.iter
                        (fun device_bw ->
                          List.iter
                            (fun clock_mhz ->
                              acc :=
                                {
                                  systolic_dim;
                                  lanes;
                                  l1;
                                  l2;
                                  memory_bw;
                                  device_bw;
                                  clock_mhz;
                                }
                                :: !acc)
                            s.clock_mhz)
                        s.device_bw_gb_s)
                    s.memory_bw_tb_s)
                s.l2_mb)
            s.l1_kb)
        s.lanes_per_core)
    s.systolic_dims;
  List.rev !acc

(* --- structural equality and hashing ---

   The [Eval] cache keys on these; they live here (not in [Scenario]) so a
   per-point key can hash raw [params] without allocating a scenario.
   Floats go through [Float.compare], making nan equal to itself and [-0.]
   equal to [0.] - the polymorphic [=] returns false on nan, which would
   make a nan-bearing key unfindable. The hash normalizes the same two
   cases (every nan to one constant, [-0.] folded onto [0.] by adding [0.]
   before taking its bits), keeping it consistent with equality. *)

let float_eq a b = Float.compare a b = 0
let list_eq eq a b = List.compare_lengths a b = 0 && List.for_all2 eq a b

(* Hash combination: h <+> x folds one component in; [land max_int] keeps
   the value non-negative on 63-bit ints. *)
let ( <+> ) h x = ((h * 31) + x) land max_int

let float_hash f =
  if Float.is_nan f then 0x7ff8
  else Int64.to_int (Int64.bits_of_float (f +. 0.)) land max_int

let list_hash hash xs = List.fold_left (fun h x -> h <+> hash x) 23 xs

let params_equal (a : params) (b : params) =
  a.systolic_dim = b.systolic_dim
  && a.lanes = b.lanes
  && float_eq a.l1 b.l1
  && float_eq a.l2 b.l2
  && float_eq a.memory_bw b.memory_bw
  && float_eq a.device_bw b.device_bw
  && float_eq a.clock_mhz b.clock_mhz

let params_hash (p : params) =
  p.systolic_dim <+> p.lanes <+> float_hash p.l1 <+> float_hash p.l2
  <+> float_hash p.memory_bw <+> float_hash p.device_bw
  <+> float_hash p.clock_mhz

let sweep_equal (a : sweep) (b : sweep) =
  list_eq ( = ) a.systolic_dims b.systolic_dims
  && list_eq ( = ) a.lanes_per_core b.lanes_per_core
  && list_eq float_eq a.l1_kb b.l1_kb
  && list_eq float_eq a.l2_mb b.l2_mb
  && list_eq float_eq a.memory_bw_tb_s b.memory_bw_tb_s
  && list_eq float_eq a.device_bw_gb_s b.device_bw_gb_s
  && list_eq float_eq a.clock_mhz b.clock_mhz

let sweep_hash (s : sweep) =
  list_hash Fun.id s.systolic_dims
  <+> list_hash Fun.id s.lanes_per_core
  <+> list_hash float_hash s.l1_kb
  <+> list_hash float_hash s.l2_mb
  <+> list_hash float_hash s.memory_bw_tb_s
  <+> list_hash float_hash s.device_bw_gb_s
  <+> list_hash float_hash s.clock_mhz

let build ?(memory_gb = 80.) ~tpp_target p =
  let systolic = Systolic.square p.systolic_dim in
  let cores =
    Device.cores_for_tpp ~tpp:tpp_target ~lanes_per_core:p.lanes ~systolic
      ~frequency_mhz:p.clock_mhz ()
  in
  (* [cores_for_tpp] keeps TPP <= target; the rules use ">= threshold", so
     back off one core when the bound is hit exactly. *)
  let probe c =
    Device.make ~name:(Printf.sprintf "dse-%.0f" tpp_target) ~core_count:c
      ~lanes_per_core:p.lanes ~systolic ~l1_kb:p.l1 ~l2_mb:p.l2
      ~frequency_mhz:p.clock_mhz
      ~memory:(Acs_hardware.Memory.make ~capacity_gb:memory_gb ~bandwidth_tb_s:p.memory_bw)
      ~interconnect:(Acs_hardware.Interconnect.of_total_gb_s p.device_bw)
      ()
  in
  let dev = probe cores in
  if Device.tpp dev >= tpp_target && cores > 1 then probe (cores - 1) else dev

let designs ?memory_gb ~tpp_target s =
  Acs_util.Parallel.map (build ?memory_gb ~tpp_target) (enumerate s)

let constrain ?market ?memory_gb ~regime ~tpp_target s =
  (* Building a device and its area model is cheap next to simulating it,
     so compliance prunes the sweep before any evaluation happens. *)
  let keep p =
    not
      (Acs_policy.Regime.regulated ?market regime
         (Acs_policy.Regime.of_device (build ?memory_gb ~tpp_target p)))
  in
  List.filter keep (enumerate s)

(* --- JSON codecs --- *)

module Json = Acs_util.Json

(* The clock member is emitted only away from the 1410 MHz default so
   pre-widening manifests and dumps stay byte-stable; reading defaults it
   back, which keeps the codec an exact round-trip either way. *)
let params_to_json p =
  Json.obj
    [
      ("systolic_dim", Json.int p.systolic_dim);
      ("lanes", Json.int p.lanes);
      ("l1_kb", Json.float p.l1);
      ("l2_mb", Json.float p.l2);
      ("memory_bw_tb_s", Json.float p.memory_bw);
      ("device_bw_gb_s", Json.float p.device_bw);
      ( "clock_mhz",
        if float_eq p.clock_mhz default_clock_mhz then Json.Null
        else Json.float p.clock_mhz );
    ]

let params_of_json j =
  {
    systolic_dim = Json.to_int (Json.member "systolic_dim" j);
    lanes = Json.to_int (Json.member "lanes" j);
    l1 = Json.to_float (Json.member "l1_kb" j);
    l2 = Json.to_float (Json.member "l2_mb" j);
    memory_bw = Json.to_float (Json.member "memory_bw_tb_s" j);
    device_bw = Json.to_float (Json.member "device_bw_gb_s" j);
    clock_mhz =
      (if Json.mem "clock_mhz" j then Json.to_float (Json.member "clock_mhz" j)
       else default_clock_mhz);
  }

let sweep_to_json s =
  (* The three paper sweeps serialize by name, keeping manifests readable
     and diff-stable against future parameter edits. *)
  match name_of s with
  | Some n -> Json.string n
  | None ->
      Json.obj
        [
          ("systolic_dims", Json.list Json.int s.systolic_dims);
          ("lanes_per_core", Json.list Json.int s.lanes_per_core);
          ("l1_kb", Json.list Json.float s.l1_kb);
          ("l2_mb", Json.list Json.float s.l2_mb);
          ("memory_bw_tb_s", Json.list Json.float s.memory_bw_tb_s);
          ("device_bw_gb_s", Json.list Json.float s.device_bw_gb_s);
          ( "clock_mhz",
            if list_eq float_eq s.clock_mhz [ default_clock_mhz ] then Json.Null
            else Json.list Json.float s.clock_mhz );
        ]

let sweep_of_json = function
  | Json.String name -> begin
      match find_named name with
      | Some s -> s
      | None ->
          raise
            (Json.Error
               (Printf.sprintf "unknown design space %S (known: %s)" name
                  (String.concat ", " (List.map fst named))))
    end
  | j ->
      let ints k = List.map Json.to_int (Json.to_list (Json.member k j)) in
      let floats k = List.map Json.to_float (Json.to_list (Json.member k j)) in
      let s =
        {
          systolic_dims = ints "systolic_dims";
          lanes_per_core = ints "lanes_per_core";
          l1_kb = floats "l1_kb";
          l2_mb = floats "l2_mb";
          memory_bw_tb_s = floats "memory_bw_tb_s";
          device_bw_gb_s = floats "device_bw_gb_s";
          clock_mhz =
            (if Json.mem "clock_mhz" j then floats "clock_mhz"
             else [ default_clock_mhz ]);
        }
      in
      if size s = 0 then raise (Json.Error "design space has an empty axis");
      s
