module Device = Acs_hardware.Device
module Systolic = Acs_hardware.Systolic

type sweep = {
  systolic_dims : int list;
  lanes_per_core : int list;
  l1_kb : float list;
  l2_mb : float list;
  memory_bw_tb_s : float list;
  device_bw_gb_s : float list;
}

let table3 ~device_bw =
  {
    systolic_dims = [ 16; 32 ];
    lanes_per_core = [ 1; 2; 4; 8 ];
    l1_kb = [ 192.; 256.; 512.; 1024. ];
    l2_mb = [ 32.; 48.; 64.; 80. ];
    memory_bw_tb_s = [ 2.; 2.4; 2.8; 3.2 ];
    device_bw_gb_s = device_bw;
  }

let oct2022 = table3 ~device_bw:[ 600. ]
let oct2023 = table3 ~device_bw:[ 500.; 700.; 900. ]

let restricted =
  {
    systolic_dims = [ 4; 8; 16 ];
    lanes_per_core = [ 1; 2; 4; 8 ];
    l1_kb = [ 32.; 64.; 128.; 192. ];
    l2_mb = [ 8.; 16.; 32.; 40. ];
    memory_bw_tb_s = [ 0.8; 1.2; 1.6; 2. ];
    device_bw_gb_s = [ 400.; 500.; 600. ];
  }

let named = [ ("oct2022", oct2022); ("oct2023", oct2023); ("restricted", restricted) ]
let find_named name = List.assoc_opt (String.lowercase_ascii (String.trim name)) named
let name_of s = List.find_map (fun (n, s') -> if s = s' then Some n else None) named

let size s =
  List.length s.systolic_dims * List.length s.lanes_per_core
  * List.length s.l1_kb * List.length s.l2_mb
  * List.length s.memory_bw_tb_s
  * List.length s.device_bw_gb_s

type params = {
  systolic_dim : int;
  lanes : int;
  l1 : float;
  l2 : float;
  memory_bw : float;
  device_bw : float;
}

let enumerate s =
  let acc = ref [] in
  List.iter
    (fun systolic_dim ->
      List.iter
        (fun lanes ->
          List.iter
            (fun l1 ->
              List.iter
                (fun l2 ->
                  List.iter
                    (fun memory_bw ->
                      List.iter
                        (fun device_bw ->
                          acc :=
                            { systolic_dim; lanes; l1; l2; memory_bw; device_bw }
                            :: !acc)
                        s.device_bw_gb_s)
                    s.memory_bw_tb_s)
                s.l2_mb)
            s.l1_kb)
        s.lanes_per_core)
    s.systolic_dims;
  List.rev !acc

(* --- structural equality and hashing ---

   The [Eval] cache keys on these; they live here (not in [Scenario]) so a
   per-point key can hash raw [params] without allocating a scenario.
   Floats go through [Float.compare], making nan equal to itself and [-0.]
   equal to [0.] - the polymorphic [=] returns false on nan, which would
   make a nan-bearing key unfindable. The hash normalizes the same two
   cases (every nan to one constant, [-0.] folded onto [0.] by adding [0.]
   before taking its bits), keeping it consistent with equality. *)

let float_eq a b = Float.compare a b = 0
let list_eq eq a b = List.compare_lengths a b = 0 && List.for_all2 eq a b

(* Hash combination: h <+> x folds one component in; [land max_int] keeps
   the value non-negative on 63-bit ints. *)
let ( <+> ) h x = ((h * 31) + x) land max_int

let float_hash f =
  if Float.is_nan f then 0x7ff8
  else Int64.to_int (Int64.bits_of_float (f +. 0.)) land max_int

let list_hash hash xs = List.fold_left (fun h x -> h <+> hash x) 23 xs

let params_equal (a : params) (b : params) =
  a.systolic_dim = b.systolic_dim
  && a.lanes = b.lanes
  && float_eq a.l1 b.l1
  && float_eq a.l2 b.l2
  && float_eq a.memory_bw b.memory_bw
  && float_eq a.device_bw b.device_bw

let params_hash (p : params) =
  p.systolic_dim <+> p.lanes <+> float_hash p.l1 <+> float_hash p.l2
  <+> float_hash p.memory_bw <+> float_hash p.device_bw

let sweep_equal (a : sweep) (b : sweep) =
  list_eq ( = ) a.systolic_dims b.systolic_dims
  && list_eq ( = ) a.lanes_per_core b.lanes_per_core
  && list_eq float_eq a.l1_kb b.l1_kb
  && list_eq float_eq a.l2_mb b.l2_mb
  && list_eq float_eq a.memory_bw_tb_s b.memory_bw_tb_s
  && list_eq float_eq a.device_bw_gb_s b.device_bw_gb_s

let sweep_hash (s : sweep) =
  list_hash Fun.id s.systolic_dims
  <+> list_hash Fun.id s.lanes_per_core
  <+> list_hash float_hash s.l1_kb
  <+> list_hash float_hash s.l2_mb
  <+> list_hash float_hash s.memory_bw_tb_s
  <+> list_hash float_hash s.device_bw_gb_s

let build ?(memory_gb = 80.) ~tpp_target p =
  let systolic = Systolic.square p.systolic_dim in
  let cores =
    Device.cores_for_tpp ~tpp:tpp_target ~lanes_per_core:p.lanes ~systolic ()
  in
  (* [cores_for_tpp] keeps TPP <= target; the rules use ">= threshold", so
     back off one core when the bound is hit exactly. *)
  let probe c =
    Device.make ~name:(Printf.sprintf "dse-%.0f" tpp_target) ~core_count:c
      ~lanes_per_core:p.lanes ~systolic ~l1_kb:p.l1 ~l2_mb:p.l2
      ~memory:(Acs_hardware.Memory.make ~capacity_gb:memory_gb ~bandwidth_tb_s:p.memory_bw)
      ~interconnect:(Acs_hardware.Interconnect.of_total_gb_s p.device_bw)
      ()
  in
  let dev = probe cores in
  if Device.tpp dev >= tpp_target && cores > 1 then probe (cores - 1) else dev

let designs ?memory_gb ~tpp_target s =
  Acs_util.Parallel.map (build ?memory_gb ~tpp_target) (enumerate s)

let constrain ?market ?memory_gb ~regime ~tpp_target s =
  (* Building a device and its area model is cheap next to simulating it,
     so compliance prunes the sweep before any evaluation happens. *)
  let keep p =
    not
      (Acs_policy.Regime.regulated ?market regime
         (Acs_policy.Regime.of_device (build ?memory_gb ~tpp_target p)))
  in
  List.filter keep (enumerate s)

(* --- JSON codecs --- *)

module Json = Acs_util.Json

let params_to_json p =
  Json.obj
    [
      ("systolic_dim", Json.int p.systolic_dim);
      ("lanes", Json.int p.lanes);
      ("l1_kb", Json.float p.l1);
      ("l2_mb", Json.float p.l2);
      ("memory_bw_tb_s", Json.float p.memory_bw);
      ("device_bw_gb_s", Json.float p.device_bw);
    ]

let params_of_json j =
  {
    systolic_dim = Json.to_int (Json.member "systolic_dim" j);
    lanes = Json.to_int (Json.member "lanes" j);
    l1 = Json.to_float (Json.member "l1_kb" j);
    l2 = Json.to_float (Json.member "l2_mb" j);
    memory_bw = Json.to_float (Json.member "memory_bw_tb_s" j);
    device_bw = Json.to_float (Json.member "device_bw_gb_s" j);
  }

let sweep_to_json s =
  (* The three paper sweeps serialize by name, keeping manifests readable
     and diff-stable against future parameter edits. *)
  match name_of s with
  | Some n -> Json.string n
  | None ->
      Json.obj
        [
          ("systolic_dims", Json.list Json.int s.systolic_dims);
          ("lanes_per_core", Json.list Json.int s.lanes_per_core);
          ("l1_kb", Json.list Json.float s.l1_kb);
          ("l2_mb", Json.list Json.float s.l2_mb);
          ("memory_bw_tb_s", Json.list Json.float s.memory_bw_tb_s);
          ("device_bw_gb_s", Json.list Json.float s.device_bw_gb_s);
        ]

let sweep_of_json = function
  | Json.String name -> begin
      match find_named name with
      | Some s -> s
      | None ->
          raise
            (Json.Error
               (Printf.sprintf "unknown design space %S (known: %s)" name
                  (String.concat ", " (List.map fst named))))
    end
  | j ->
      let ints k = List.map Json.to_int (Json.to_list (Json.member k j)) in
      let floats k = List.map Json.to_float (Json.to_list (Json.member k j)) in
      let s =
        {
          systolic_dims = ints "systolic_dims";
          lanes_per_core = ints "lanes_per_core";
          l1_kb = floats "l1_kb";
          l2_mb = floats "l2_mb";
          memory_bw_tb_s = floats "memory_bw_tb_s";
          device_bw_gb_s = floats "device_bw_gb_s";
        }
      in
      if size s = 0 then raise (Json.Error "design space has an empty axis");
      s
