type objective = Ttft | Tbt | Ttft_cost | Tbt_cost

let objective_value obj (d : Design.t) =
  match obj with
  | Ttft -> d.Design.ttft_s
  | Tbt -> d.Design.tbt_s
  | Ttft_cost -> Design.ttft_cost_product d
  | Tbt_cost -> Design.tbt_cost_product d

let best ?(filters = []) obj designs =
  let pass d = List.for_all (fun f -> f d) filters in
  match List.filter pass designs with
  | [] -> None
  | survivors -> Some (Acs_util.Stats.argmin (objective_value obj) survivors)

let best_exn ?filters obj designs =
  match best ?filters obj designs with
  | Some d -> d
  | None -> invalid_arg "Optimum.best_exn: no design passes the filters"

let improvement_vs ~baseline value =
  Acs_util.Stats.relative_change ~baseline value
