module Area_model = Acs_area.Area_model
module Cost_model = Acs_cost.Cost_model

type t = {
  params : Space.params;
  device : Acs_hardware.Device.t;
  area_mm2 : float;
  sram_mb : float;
  within_reticle : bool;
  spec : Acs_policy.Spec.t;
  acr2022 : Acs_policy.Acr_2022.classification;
  acr2023_dc : Acs_policy.Acr_2023.tier;
  die_cost_usd : float;
  good_die_cost_usd : float;
  ttft_s : float;
  tbt_s : float;
}

let evaluate ?calib ?tp ?request ~model params device =
  let area_mm2 = Area_model.total_mm2 device in
  let spec = Acs_policy.Spec.of_device ~area_mm2 device in
  let result = Acs_perfmodel.Engine.simulate ?calib ?tp ?request device model in
  let process = Cost_model.n7 in
  (* Designs far beyond the reticle limit may not even fit a wafer; give
     them infinite cost instead of failing (they are filtered out as
     non-manufacturable anyway). *)
  let die_cost_usd, good_die_cost_usd =
    match Cost_model.die_cost_usd ~process ~die_area_mm2:area_mm2 with
    | cost ->
        (cost, Cost_model.good_die_cost_usd ~process ~die_area_mm2:area_mm2 ())
    | exception Invalid_argument _ -> (infinity, infinity)
  in
  {
    params;
    device;
    area_mm2;
    sram_mb = Area_model.sram_mb device;
    within_reticle = area_mm2 <= Acs_hardware.Presets.reticle_limit_mm2;
    spec;
    acr2022 = Acs_policy.Acr_2022.classify spec;
    acr2023_dc = Acs_policy.Acr_2023.classify Acs_policy.Acr_2023.Data_center spec;
    die_cost_usd;
    good_die_cost_usd;
    ttft_s = result.Acs_perfmodel.Engine.ttft_s;
    tbt_s = result.Acs_perfmodel.Engine.tbt_s;
  }

let evaluate_sweep ?calib ?tp ?request ~model ~tpp_target sweep =
  let params = Space.enumerate sweep in
  List.map
    (fun p -> evaluate ?calib ?tp ?request ~model p (Space.build ~tpp_target p))
    params

let compliant_2022 d = d.acr2022 = Acs_policy.Acr_2022.Not_applicable
let compliant_2023 d = d.acr2023_dc = Acs_policy.Acr_2023.Not_applicable
let manufacturable d = d.within_reticle

let ttft_cost_product d = Acs_util.Units.to_ms d.ttft_s *. d.die_cost_usd
let tbt_cost_product d = Acs_util.Units.to_ms d.tbt_s *. d.die_cost_usd

let pp ppf d =
  Format.fprintf ppf
    "%dx%d x%d lanes, L1 %.0fKB, L2 %.0fMB, %.1fTB/s, %.0fGB/s: %.0f mm^2, \
     TTFT %.4g ms, TBT %.4g ms, $%.0f"
    d.params.Space.systolic_dim d.params.Space.systolic_dim
    d.params.Space.lanes d.params.Space.l1 d.params.Space.l2
    d.params.Space.memory_bw d.params.Space.device_bw d.area_mm2
    (Acs_util.Units.to_ms d.ttft_s)
    (Acs_util.Units.to_ms d.tbt_s)
    d.die_cost_usd
