module Area_model = Acs_area.Area_model
module Cost_model = Acs_cost.Cost_model

type t = {
  params : Space.params;
  device : Acs_hardware.Device.t;
  area_mm2 : float;
  sram_mb : float;
  within_reticle : bool;
  spec : Acs_policy.Spec.t;
  acr2022 : Acs_policy.Acr_2022.classification;
  acr2023_dc : Acs_policy.Acr_2023.tier;
  die_cost_usd : float;
  good_die_cost_usd : float;
  ttft_s : float;
  tbt_s : float;
}

(* Everything except the latencies is derived deterministically from the
   device, so a design can be reconstituted from (params, device, ttft,
   tbt) alone - the on-disk eval cache stores exactly that and rebuilds a
   bitwise-equal value here. *)
let of_latencies params device ~ttft_s ~tbt_s =
  let area_mm2 = Area_model.total_mm2 device in
  let spec = Acs_policy.Spec.of_device ~area_mm2 device in
  let process = Cost_model.n7 in
  (* Designs far beyond the reticle limit may not even fit a wafer; give
     them infinite cost instead of failing (they are filtered out as
     non-manufacturable anyway). *)
  let die_cost_usd, good_die_cost_usd =
    match Cost_model.die_cost_usd ~process ~die_area_mm2:area_mm2 with
    | cost ->
        (cost, Cost_model.good_die_cost_usd ~process ~die_area_mm2:area_mm2 ())
    | exception Invalid_argument _ -> (infinity, infinity)
  in
  {
    params;
    device;
    area_mm2;
    sram_mb = Area_model.sram_mb device;
    within_reticle = area_mm2 <= Acs_hardware.Presets.reticle_limit_mm2;
    spec;
    acr2022 = Acs_policy.Acr_2022.classify spec;
    acr2023_dc = Acs_policy.Acr_2023.classify Acs_policy.Acr_2023.Data_center spec;
    die_cost_usd;
    good_die_cost_usd;
    ttft_s;
    tbt_s;
  }

let of_result params device (result : Acs_perfmodel.Engine.result) =
  of_latencies params device ~ttft_s:result.Acs_perfmodel.Engine.ttft_s
    ~tbt_s:result.Acs_perfmodel.Engine.tbt_s

let evaluate ?calib ?tp ?request ~model params device =
  of_result params device
    (Acs_perfmodel.Engine.simulate ?calib ?tp ?request device model)

let evaluate_compiled ?calib compiled params device =
  of_result params device
    (Acs_perfmodel.Engine.simulate_compiled ?calib compiled device)

let evaluate_sweep ?calib ?tp ?request ~model ~tpp_target sweep =
  let params = Space.enumerate sweep in
  List.map
    (fun p -> evaluate ?calib ?tp ?request ~model p (Space.build ~tpp_target p))
    params

let compliant_2022 d = d.acr2022 = Acs_policy.Acr_2022.Not_applicable
let compliant_2023 d = d.acr2023_dc = Acs_policy.Acr_2023.Not_applicable
let manufacturable d = d.within_reticle

(* The subject reuses the design's own spec bit-exactly (rather than the
   equal one [Regime.of_device] would recompute), so regime verdicts and
   the stored [acr2022]/[acr2023_dc] fields can never disagree. *)
let subject d =
  {
    (Acs_policy.Regime.of_device ~area_mm2:d.area_mm2 d.device) with
    Acs_policy.Regime.spec = d.spec;
  }

let verdict ?market regime d =
  Acs_policy.Regime.verdict ?market regime (subject d)

let compliant ?market regime d =
  not (Acs_policy.Regime.regulated ?market regime (subject d))

let ttft_cost_product d = Acs_util.Units.to_ms d.ttft_s *. d.die_cost_usd
let tbt_cost_product d = Acs_util.Units.to_ms d.tbt_s *. d.die_cost_usd

(* The standard design CSV: one row per evaluated design point. Shared by
   the bench sections and `acs run` so a registry scenario and its bench
   section emit byte-identical rows. *)

let csv_header =
  [
    "systolic"; "lanes"; "l1_kb"; "l2_mb"; "membw_tb_s"; "devbw_gb_s";
    "area_mm2"; "pd"; "ttft_ms"; "tbt_ms"; "die_cost_usd"; "acr2023_dc";
    "within_reticle";
  ]

let csv_row d =
  let ms s = Acs_util.Units.to_ms s in
  [
    string_of_int d.params.Space.systolic_dim;
    string_of_int d.params.Space.lanes;
    Printf.sprintf "%.0f" d.params.Space.l1;
    Printf.sprintf "%.0f" d.params.Space.l2;
    Printf.sprintf "%.1f" d.params.Space.memory_bw;
    Printf.sprintf "%.0f" d.params.Space.device_bw;
    Printf.sprintf "%.1f" d.area_mm2;
    Printf.sprintf "%.2f" (Acs_policy.Spec.performance_density d.spec);
    Printf.sprintf "%.4f" (ms d.ttft_s);
    Printf.sprintf "%.5f" (ms d.tbt_s);
    Printf.sprintf "%.2f" d.die_cost_usd;
    Acs_policy.Acr_2023.tier_to_string d.acr2023_dc;
    string_of_bool d.within_reticle;
  ]

let pp ppf d =
  Format.fprintf ppf
    "%dx%d x%d lanes, L1 %.0fKB, L2 %.0fMB, %.1fTB/s, %.0fGB/s: %.0f mm^2, \
     TTFT %.4g ms, TBT %.4g ms, $%.0f"
    d.params.Space.systolic_dim d.params.Space.systolic_dim
    d.params.Space.lanes d.params.Space.l1 d.params.Space.l2
    d.params.Space.memory_bw d.params.Space.device_bw d.area_mm2
    (Acs_util.Units.to_ms d.ttft_s)
    (Acs_util.Units.to_ms d.tbt_s)
    d.die_cost_usd
