(** Parallel, memoized design evaluation.

    Every headline figure re-runs [Design.evaluate] over 512-4800-point
    sweeps, and several sections re-evaluate the very same design set
    (Figs. 7, 8, 11, Table 4 and the scorecard all share the Fig-7 sweep).
    This module is the shared evaluation engine. The (model, request, tp)
    context is compiled once per run ({!Acs_perfmodel.Engine.compile}),
    design points are simulated against it in parallel over the
    {!Acs_util.Parallel} domain pool via
    {!Acs_perfmodel.Engine.simulate_compiled} - bit-identical to the
    per-op path, which the test suite asserts - and the results are
    cached process-wide.

    Cache keys pair the sweep's shared context (a {!Scenario.t} under
    {!Scenario.context_equal}, which ignores name/description/regime and
    the target) with the raw point [Space.params]; the key hash is
    precomputed ({!Scenario.point_hash} over one per-sweep context hash)
    and stored, so probes never re-hash. Equality keeps the written-down
    nan/-0. float semantics of {!Scenario.equal}. The table is sharded 16
    ways on the high hash bits, each shard behind its own mutex, so
    concurrent domains probing a warm cache do not serialize on a global
    lock; it stays safe to share between domains. *)

type stats = {
  lookups : int;  (** cache probes *)
  hits : int;  (** probes answered from the cache *)
  evaluations : int;  (** [Design.evaluate] runs actually performed *)
}

val run : ?cache:bool -> Scenario.t -> Design.t list
(** Evaluates the scenario's target - every sweep point in
    [Space.enumerate] order, or the single [Point] - through the cache
    and the parallel pool. This is the primary entry point; the
    optional-argument functions below are thin wrappers that build an
    anonymous scenario and share the same cache. [~cache:false] skips
    both lookup and insertion (used by the speed benchmarks). *)

val evaluate :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  ?memory_gb:float ->
  model:Acs_workload.Model.t ->
  tpp_target:float ->
  Space.params ->
  Design.t
(** Memoized single-point evaluation (builds the device under the TPP
    target, then simulates it). *)

val sweep :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  ?memory_gb:float ->
  ?cache:bool ->
  model:Acs_workload.Model.t ->
  tpp_target:float ->
  Space.sweep ->
  Design.t list
(** Evaluates the whole sweep, in [Space.enumerate] order. Cached points
    are returned directly; the missing ones are evaluated in parallel and
    inserted. [~cache:false] skips both lookup and insertion (used by the
    speed benchmarks to measure raw evaluation throughput). *)

val points : ?cache:bool -> Scenario.t -> Space.params list -> Design.t list
(** Evaluates an explicit point list under the scenario's context, in the
    given order, through the same cache and parallel pool as {!run} (the
    scenario's own target is ignored). The adaptive search uses this to
    evaluate exactly the lattice points a strategy selected. *)

val seed : Scenario.t -> Space.params -> Design.t -> unit
(** Inserts an already-computed design into the memo cache without
    counting an evaluation - the disk-cache tier uses it to promote
    on-disk entries into memory. First insertion wins, as with {!run}. *)

val probe : Scenario.t -> Space.params -> bool
(** Lookup only - no evaluation, no insertion: is this context + point
    cached? Keys exactly as {!run} does (context hash plus
    {!Scenario.point_hash}) and counts in {!stats} as a lookup, so the
    speed bench can measure contended lookup throughput against a
    single-mutex baseline. *)

val stats : unit -> stats
(** Cumulative counters since start (or the last [clear]). *)

val clear : unit -> unit
(** Drops every cache entry and resets the counters. *)
