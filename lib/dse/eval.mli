(** Parallel, memoized design evaluation.

    Every headline figure re-runs [Design.evaluate] over 512-4800-point
    sweeps, and several sections re-evaluate the very same design set
    (Figs. 7, 8, 11, Table 4 and the scorecard all share the Fig-7 sweep).
    This module is the shared evaluation engine: design points are
    simulated in parallel over the {!Acs_util.Parallel} domain pool and
    the results are cached process-wide, keyed on per-point
    {!Scenario.t} values (the scenario {e is} the evaluation context:
    design parameters, TPP target, memory capacity, model, calibration,
    parallelism and request shape). The cache is an explicit
    [Hashtbl.Make (Scenario.Key)] - see {!Scenario.equal} for the
    written-down equality, including its nan/-0. float semantics.

    [Design.evaluate] is pure, so parallel evaluation is bit-identical to
    the sequential path (the test suite asserts this); the cache is
    protected by a mutex and safe to share between domains. *)

type stats = {
  lookups : int;  (** cache probes *)
  hits : int;  (** probes answered from the cache *)
  evaluations : int;  (** [Design.evaluate] runs actually performed *)
}

val run : ?cache:bool -> Scenario.t -> Design.t list
(** Evaluates the scenario's target - every sweep point in
    [Space.enumerate] order, or the single [Point] - through the cache
    and the parallel pool. This is the primary entry point; the
    optional-argument functions below are thin wrappers that build an
    anonymous scenario and share the same cache. [~cache:false] skips
    both lookup and insertion (used by the speed benchmarks). *)

val evaluate :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  ?memory_gb:float ->
  model:Acs_workload.Model.t ->
  tpp_target:float ->
  Space.params ->
  Design.t
(** Memoized single-point evaluation (builds the device under the TPP
    target, then simulates it). *)

val sweep :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  ?memory_gb:float ->
  ?cache:bool ->
  model:Acs_workload.Model.t ->
  tpp_target:float ->
  Space.sweep ->
  Design.t list
(** Evaluates the whole sweep, in [Space.enumerate] order. Cached points
    are returned directly; the missing ones are evaluated in parallel and
    inserted. [~cache:false] skips both lookup and insertion (used by the
    speed benchmarks to measure raw evaluation throughput). *)

val stats : unit -> stats
(** Cumulative counters since start (or the last [clear]). *)

val clear : unit -> unit
(** Drops every cache entry and resets the counters. *)
