(** Evaluated design points: hardware + simulated performance + area +
    cost + regulatory classification. *)

type t = {
  params : Space.params;
  device : Acs_hardware.Device.t;
  area_mm2 : float;
  sram_mb : float;
  within_reticle : bool;
  spec : Acs_policy.Spec.t;
  acr2022 : Acs_policy.Acr_2022.classification;
  acr2023_dc : Acs_policy.Acr_2023.tier;
      (** tier under the data-center rules, which is how the paper judges
          simulated designs *)
  die_cost_usd : float;
  good_die_cost_usd : float;
  ttft_s : float;
  tbt_s : float;
}

val of_latencies :
  Space.params -> Acs_hardware.Device.t -> ttft_s:float -> tbt_s:float -> t
(** Reconstitute a design from its parameters, built device and simulated
    latencies: every other field (area, spec, tiers, cost) is derived
    deterministically from the device, so the result is structurally
    identical to what {!evaluate} would have produced with those
    latencies. The on-disk eval cache stores exactly this tuple and uses
    it to rebuild bitwise-equal designs on load. *)

val evaluate :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  model:Acs_workload.Model.t ->
  Space.params ->
  Acs_hardware.Device.t ->
  t

val evaluate_compiled :
  ?calib:Acs_perfmodel.Calib.t ->
  Acs_workload.Compiled.t ->
  Space.params ->
  Acs_hardware.Device.t ->
  t
(** [evaluate_compiled ?calib (Engine.compile ?tp ?request model) p dev]
    produces the same design (bit-identical latencies) as
    [evaluate ?calib ?tp ?request ~model p dev], via
    {!Acs_perfmodel.Engine.simulate_compiled}; the compilation cost is
    paid once per sweep rather than once per point. *)

val evaluate_sweep :
  ?calib:Acs_perfmodel.Calib.t ->
  ?tp:int ->
  ?request:Acs_workload.Request.t ->
  model:Acs_workload.Model.t ->
  tpp_target:float ->
  Space.sweep ->
  t list

val compliant_2022 : t -> bool
(** Not regulated by the October 2022 rule. *)

val compliant_2023 : t -> bool
(** Fully unregulated under October 2023 data-center rules (the paper
    excludes NAC-eligible designs since NAC licenses may be denied). *)

val manufacturable : t -> bool
(** Within the 860 mm^2 reticle limit. *)

val subject : t -> Acs_policy.Regime.subject
(** The design as a regime subject: the stored spec (bit-exact) plus the
    template's architectural quantities (memory, systolic, L1/L2). *)

val verdict :
  ?market:Acs_policy.Regime.market ->
  Acs_policy.Regime.t ->
  t ->
  Acs_policy.Regime.verdict
(** Verdict under an arbitrary regime value; [market] defaults to
    [Data_center], how the paper judges simulated designs. *)

val compliant : ?market:Acs_policy.Regime.market -> Acs_policy.Regime.t -> t -> bool
(** Fully unregulated under the regime: [compliant Regime.acr_2022] is
    {!compliant_2022} and [compliant Regime.acr_2023] is
    {!compliant_2023} (the test suite pins both). *)

val ttft_cost_product : t -> float
(** TTFT(ms) x die cost($): Fig. 8's y-axis. *)

val tbt_cost_product : t -> float
val pp : Format.formatter -> t -> unit

val csv_header : string list
val csv_row : t -> string list
(** The standard design CSV (parameters, area, PD, latencies, cost,
    classification), shared by the bench sections and [acs run]. *)
