(** First-class experiment scenarios: typed, serializable manifests.

    Every experiment in the reproduction is "one evaluation context run
    over one design target": a workload model and request shape, optional
    calibration and tensor-parallel overrides, the TPP target and memory
    capacity, a design space (or a single design point), and the policy
    regime the results are judged under. Until this module existed that
    7-tuple was threaded as ad-hoc optional arguments through
    [Design.evaluate], [Eval.evaluate]/[Eval.sweep], twenty bench sections
    and the CLI - and duplicated once more as the memo-cache key inside
    [Eval]. A {!t} is that tuple as one value: the bench sections draw
    their contexts from the {!registry} of canonical paper scenarios,
    [acs run] executes a manifest loaded from JSON, and {!Eval}'s cache is
    keyed on scenarios directly.

    Scenarios serialize with {!to_json}/{!of_json}, and the round trip is
    exact: [of_json (to_json s) = s] structurally, for every value
    (the test suite asserts it for the whole registry and for generated
    scenarios). *)

module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Calib = Acs_perfmodel.Calib
module Regime = Acs_policy.Regime

type target =
  | Space of Space.sweep  (** evaluate every point of the sweep *)
  | Point of Space.params  (** evaluate one design *)

type t = {
  name : string;  (** registry/manifest identifier; "" for anonymous *)
  description : string;
  model : Model.t;
  request : Request.t option;  (** [None]: the engine's default request *)
  calib : Calib.t option;  (** [None]: {!Calib.default} *)
  tp : int option;  (** tensor-parallel degree; [None]: engine default *)
  tpp_target : float;
  memory_gb : float option;  (** HBM capacity; [None]: 80 GB *)
  target : target;
  regime : Regime.t;
      (** the sanction regime the results are judged under — any
          {!Acs_policy.Regime} value, not just the shipped eras *)
}

val make :
  ?description:string ->
  ?request:Request.t ->
  ?calib:Calib.t ->
  ?tp:int ->
  ?memory_gb:float ->
  ?regime:Regime.t ->
  name:string ->
  model:Model.t ->
  tpp_target:float ->
  target ->
  t
(** [regime] defaults to {!Acs_policy.Regime.acr_2023} (the rules in
    force). Raises
    [Invalid_argument] on a non-positive/non-finite [tpp_target],
    [memory_gb] or [tp]. *)

val size : t -> int
(** Number of design points the scenario evaluates (1 for a [Point]). *)

val compliant : t -> Design.t -> bool
(** Compliance of a design under the scenario's {!field-regime}
    ([Design.compliant]): fully unregulated. Under [Regime.acr_2022] /
    [Regime.acr_2023] this coincides with [Design.compliant_2022] /
    [Design.compliant_2023]; under [Regime.pre_acr] everything is
    compliant. *)

(** {2 Context equality and hashing (the [Eval] cache key)}

    [equal]/[hash] compare the {e evaluation context} only - [name],
    [description] and [regime] are ignored (none of them changes what
    [Design.evaluate] computes), so e.g. the [table4] scenario hits cache
    entries populated by [fig7-gpt3-2400] (same sweep, same context).
    Floats compare by [Float.compare]: nan {e equals} nan and [-0.]
    equals [0.], unlike the polymorphic [(=)] (under which a nan-bearing
    key could never be found again); hashing normalizes accordingly
    (all nans hash alike, [-0.] hashes as [0.]), keeping [hash]
    consistent with [equal]. *)

val equal : t -> t -> bool
val hash : t -> int

val context_equal : t -> t -> bool
(** {!equal} without the target: the part of the key shared by every point
    of one sweep. [equal a b] is [context_equal a b] plus target
    equality. *)

val context_hash : t -> int
(** {!hash} without the target folded in; [hash t] extends it with the
    target, so a sweep's points can reuse one context hash. *)

val point_hash : context_hash:int -> Space.params -> int
(** [point_hash ~context_hash:(context_hash s) p
    = hash { s with target = Point p }], computed without allocating the
    scenario - the [Eval] cache hashes sweep points this way. *)

module Key : Hashtbl.HashedType with type t = t
(** The above pair, packaged for [Hashtbl.Make]. *)

(** {2 JSON manifests} *)

val to_json : t -> Acs_util.Json.t
(** Models matching a preset and the three paper sweeps serialize by
    name; [None] fields are omitted. *)

val of_json : Acs_util.Json.t -> t
(** Accepts the {!to_json} form: required members [model], [tpp_target]
    and exactly one of [space] (a name or full axes) / [point]; optional
    [name], [description], [request], [calib] (partial - missing knobs
    keep their defaults), [tp], [memory_gb], [regime] (a registry name
    such as "acr-2023" — the legacy tokens "pre-acr"/"oct2022"/"oct2023"
    still resolve — or an inline {!Acs_policy.Regime} object; default
    [Regime.acr_2023]). Raises {!Acs_util.Json.Error} on malformed
    manifests. *)

val regime_token : Regime.t -> string
(** The regime's registry/manifest name ("acr-2023"), or "custom" for an
    anonymous value. *)

(** {2 The registry of canonical paper scenarios} *)

val registry : t list
(** Named manifests for the paper's sweep-driven sections: [fig6-*],
    [fig7-*] (per TPP target, with [fig7-gpt3]/[fig7-llama3] as the
    2400-TPP headlines), [fig8-*], [fig11-*], [fig12-*], [table4],
    [table5], [scorecard], and the [a100-proxy] single-point scenario.
    Names are unique. *)

val find : string -> t option
(** Case-insensitive registry lookup. *)

val names : unit -> string list
(** Registry names, in registry order. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name, model, target size, TPP target, regime. *)
