(* Adaptive search over the compiled-engine evaluation path.

   The paper's own spaces (512-9216 points) are cheap to enumerate; the
   widened lattice ([Space.widened], ~1e9 implicit points) is not. Each
   strategy here walks that lattice evaluating only a budgeted subset,
   exploiting two facts:

   - feasibility (compliance + reticle) and die cost are computable from
     the built device alone, without simulating ([Space.constrain]
     already relies on this); and
   - a sound analytic lower bound on the engine's phase latency exists:
     per op the engine charges at least max(compute, memory) with
     efficiencies <= 1 and actual DRAM traffic >= compulsory bytes, so
        max(sum_op compute_lb, sum_op memory_lb) <= engine latency
     (sum of maxes dominates max of sums; the property suite asserts the
     inequality against the real engine). A candidate whose bound already
     exceeds the incumbent's true objective can therefore be discarded
     without ever simulating it - branch-and-bound, exact.

   Every strategy is deterministic given (scenario, strategy, budget,
   seed): decisions depend only on evaluated design values, never on
   cache state or the parallel pool size, so warm/cold and 1-job/4-job
   runs return identical outcomes (the adaptive suite pins this). When
   the budget covers the whole sweep, every strategy degenerates to the
   exhaustive oracle. *)

module Engine = Acs_perfmodel.Engine
module Compiled = Acs_workload.Compiled
module Device = Acs_hardware.Device
module Units = Acs_util.Units

type strategy = Halving | Pareto_front | Descent | Zoom

let strategies =
  [ ("halving", Halving); ("pareto", Pareto_front); ("descent", Descent);
    ("zoom", Zoom) ]

let strategy_to_string s =
  List.find_map (fun (n, s') -> if s = s' then Some n else None) strategies
  |> Option.get

let strategy_of_string name =
  List.assoc_opt (String.lowercase_ascii (String.trim name)) strategies

type rung = {
  fidelity : string;
  candidates : int;
  evaluated : int;
  promoted : int;
  pruned : int;
}

type provenance = { memory : int; disk : int; cold : int }

type outcome = {
  best : Design.t option;
  objective : Optimum.objective;
  strategy : strategy;
  budget : int;
  evaluated : int;
  bounded : int;
  implicit : float;
  pruned : float;
  rungs : rung list;
  provenance : provenance;
  disk : Disk_cache.stats option;
}

(* --- fidelity 0: the analytic roofline lower bound --- *)

type phase_totals = { macs : float; vec_flops : float; min_bytes : float }

let totals_of_phase (ph : Compiled.phase) =
  Array.fold_left
    (fun t op ->
      match op with
      | Compiled.Matmul mm ->
          {
            t with
            macs = t.macs +. mm.Compiled.macs;
            min_bytes = t.min_bytes +. mm.Compiled.compulsory_bytes;
          }
      | Compiled.Elementwise e ->
          {
            t with
            vec_flops = t.vec_flops +. e.flops;
            min_bytes = t.min_bytes +. e.bytes;
          }
      | Compiled.All_reduce _ ->
          (* Interconnect traffic only adds time; ignoring it keeps the
             bound a lower bound. *)
          t)
    { macs = 0.; vec_flops = 0.; min_bytes = 0. }
    ph.Compiled.ops

let phase_bound totals device =
  let peak_macs =
    float_of_int (Device.total_macs_per_cycle device)
    *. device.Device.frequency_hz
  in
  let compute =
    (totals.macs /. peak_macs)
    +. (totals.vec_flops /. Device.peak_vector_flops device)
  in
  let memory = totals.min_bytes /. Device.memory_bandwidth device in
  Float.max compute memory

let compile_of (s : Scenario.t) =
  Engine.compile ?tp:s.Scenario.tp ?request:s.Scenario.request
    s.Scenario.model

let bounds (s : Scenario.t) p =
  let c = compile_of s in
  let device =
    Space.build ?memory_gb:s.Scenario.memory_gb
      ~tpp_target:s.Scenario.tpp_target p
  in
  ( phase_bound (totals_of_phase c.Compiled.prefill) device,
    phase_bound (totals_of_phase c.Compiled.decode) device )

(* --- per-run search context --- *)

module Ptable = Hashtbl.Make (struct
  type t = Space.params

  let equal = Space.params_equal
  let hash = Space.params_hash
end)

type ctx = {
  scenario : Scenario.t;
  objective : Optimum.objective;
  feasible : Design.t -> bool;
  budget : int;
  disk : Disk_cache.t option;
  results : Design.t Ptable.t;
  pre : phase_totals;
  dec : phase_totals;
  mutable log : Design.t list;  (** reverse evaluation order *)
  mutable evaluated : int;
  mutable bounded : int;
  mutable mem : int;
  mutable dsk : int;
  mutable cold : int;
  mutable best : Design.t option;
  mutable rungs : rung list;  (** reversed *)
}

let remaining ctx = ctx.budget - ctx.evaluated
let obj_value ctx d = Optimum.objective_value ctx.objective d
let push_rung ctx r = ctx.rungs <- r :: ctx.rungs

let consider ctx d =
  if ctx.feasible d then
    match ctx.best with
    | Some b when obj_value ctx b <= obj_value ctx d -> ()
    | _ -> ctx.best <- Some d

(* A probe: the design's device, area, spec, classification and cost -
   everything except the simulated latencies, which stay nan and must
   never be read. Cheap relative to a simulation; charged to [bounded],
   not the evaluation budget. *)
let probe ctx p =
  ctx.bounded <- ctx.bounded + 1;
  let device =
    Space.build ?memory_gb:ctx.scenario.Scenario.memory_gb
      ~tpp_target:ctx.scenario.Scenario.tpp_target p
  in
  Design.of_latencies p device ~ttft_s:Float.nan ~tbt_s:Float.nan

let objective_bound ctx (pr : Design.t) =
  match ctx.objective with
  | Optimum.Ttft -> phase_bound ctx.pre pr.Design.device
  | Optimum.Tbt -> phase_bound ctx.dec pr.Design.device
  | Optimum.Ttft_cost ->
      Units.to_ms (phase_bound ctx.pre pr.Design.device)
      *. pr.Design.die_cost_usd
  | Optimum.Tbt_cost ->
      Units.to_ms (phase_bound ctx.dec pr.Design.device)
      *. pr.Design.die_cost_usd

(* The only path that spends evaluation budget. Deduplicates against
   everything already evaluated this run, truncates to the remaining
   budget (in list order, so truncation is deterministic), classifies
   provenance, promotes disk entries into the in-memory cache, evaluates
   the rest through [Eval.points] (one shared compile, parallel over the
   pool) and writes cold results through to disk. Returns the designs now
   known for the requested points, in request order. *)
let require ctx ps =
  let tmp = Ptable.create 64 in
  let fresh =
    List.filter
      (fun p ->
        if Ptable.mem ctx.results p || Ptable.mem tmp p then false
        else begin
          Ptable.add tmp p ();
          true
        end)
      ps
  in
  let take = min (remaining ctx) (List.length fresh) in
  let chosen = List.filteri (fun i _ -> i < take) fresh in
  if chosen <> [] then begin
    List.iter
      (fun p ->
        if Eval.probe ctx.scenario p then ctx.mem <- ctx.mem + 1
        else
          match Option.bind ctx.disk (fun dc -> Disk_cache.find dc p) with
          | Some d ->
              Eval.seed ctx.scenario p d;
              ctx.dsk <- ctx.dsk + 1
          | None -> ctx.cold <- ctx.cold + 1)
      chosen;
    let designs = Eval.points ctx.scenario chosen in
    ctx.evaluated <- ctx.evaluated + List.length chosen;
    List.iter2
      (fun p d ->
        Ptable.add ctx.results p d;
        ctx.log <- d :: ctx.log;
        (match ctx.disk with
        | Some dc -> Disk_cache.store dc p d
        | None -> ());
        consider ctx d)
      chosen designs
  end;
  List.filter_map (fun p -> Ptable.find_opt ctx.results p) ps

(* --- the index lattice --- *)

type axes = {
  dims : int array;
  lanes : int array;
  l1 : float array;
  l2 : float array;
  membw : float array;
  devbw : float array;
  clock : float array;
}

let n_axes = 7

let axes_of (s : Space.sweep) =
  let ia l = Array.of_list (List.sort_uniq Int.compare l) in
  let fa l = Array.of_list (List.sort_uniq Float.compare l) in
  {
    dims = ia s.Space.systolic_dims;
    lanes = ia s.Space.lanes_per_core;
    l1 = fa s.Space.l1_kb;
    l2 = fa s.Space.l2_mb;
    membw = fa s.Space.memory_bw_tb_s;
    devbw = fa s.Space.device_bw_gb_s;
    clock = fa s.Space.clock_mhz;
  }

let axis_lengths a =
  [|
    Array.length a.dims; Array.length a.lanes; Array.length a.l1;
    Array.length a.l2; Array.length a.membw; Array.length a.devbw;
    Array.length a.clock;
  |]

let params_at a (ix : int array) =
  {
    Space.systolic_dim = a.dims.(ix.(0));
    lanes = a.lanes.(ix.(1));
    l1 = a.l1.(ix.(2));
    l2 = a.l2.(ix.(3));
    memory_bw = a.membw.(ix.(4));
    device_bw = a.devbw.(ix.(5));
    clock_mhz = a.clock.(ix.(6));
  }

let find_index eq arr v =
  let r = ref (-1) in
  Array.iteri (fun i x -> if !r < 0 && eq x v then r := i) arr;
  if !r < 0 then invalid_arg "Adaptive: point off the sweep lattice";
  !r

let index_of a (p : Space.params) =
  let fi = find_index (fun x y -> Float.compare x y = 0) in
  [|
    find_index Int.equal a.dims p.Space.systolic_dim;
    find_index Int.equal a.lanes p.Space.lanes;
    fi a.l1 p.Space.l1;
    fi a.l2 p.Space.l2;
    fi a.membw p.Space.memory_bw;
    fi a.devbw p.Space.device_bw;
    fi a.clock p.Space.clock_mhz;
  |]

(* All swept values along axis [k] through [p]. *)
let axis_line a k (p : Space.params) =
  match k with
  | 0 ->
      List.map (fun v -> { p with Space.systolic_dim = v })
        (Array.to_list a.dims)
  | 1 -> List.map (fun v -> { p with Space.lanes = v }) (Array.to_list a.lanes)
  | 2 -> List.map (fun v -> { p with Space.l1 = v }) (Array.to_list a.l1)
  | 3 -> List.map (fun v -> { p with Space.l2 = v }) (Array.to_list a.l2)
  | 4 ->
      List.map (fun v -> { p with Space.memory_bw = v })
        (Array.to_list a.membw)
  | 5 ->
      List.map (fun v -> { p with Space.device_bw = v })
        (Array.to_list a.devbw)
  | _ ->
      List.map (fun v -> { p with Space.clock_mhz = v })
        (Array.to_list a.clock)

type box = { lo : int array; hi : int array }  (* inclusive, per axis *)

let full_box lens = { lo = Array.make n_axes 0; hi = Array.map pred lens }

(* Per-axis sample counts whose product stays within [target]: start at
   two per axis (the endpoints), shed axes - round-robin from [offset] -
   if even that is too many, then grow round-robin while the grid still
   fits. Rotating [offset] across zoom levels lets every axis take a turn
   at the finer resolution. *)
let allocate ~target ~offset lens =
  let n = Array.length lens in
  let counts = Array.map (fun l -> min l 2) lens in
  let product () = Array.fold_left ( * ) 1 counts in
  let k = ref 0 in
  while product () > target && !k < n do
    counts.((offset + !k) mod n) <- 1;
    incr k
  done;
  let grew = ref true in
  while !grew do
    grew := false;
    for j = 0 to n - 1 do
      let i = (offset + j) mod n in
      if counts.(i) < lens.(i) && product () / counts.(i) * (counts.(i) + 1) <= target
      then begin
        counts.(i) <- counts.(i) + 1;
        grew := true
      end
    done
  done;
  counts

let axis_samples lo hi k =
  let n = hi - lo + 1 in
  if k >= n then List.init n (fun i -> lo + i)
  else if k <= 1 then [ lo + ((n - 1) / 2) ]
  else
    List.sort_uniq Int.compare
      (List.init k (fun j -> lo + (((j * (n - 1)) + ((k - 1) / 2)) / (k - 1))))

let box_samples box counts =
  Array.init n_axes (fun k -> axis_samples box.lo.(k) box.hi.(k) counts.(k))

let cartesian (samples : int list array) =
  let rec cart k =
    if k = n_axes then [ [] ]
    else
      let rest = cart (k + 1) in
      List.concat_map (fun i -> List.map (fun tl -> i :: tl) rest) samples.(k)
  in
  List.map Array.of_list (cart 0)

(* --- strategies --- *)

let exhaustive ctx sweep =
  let before = ctx.evaluated in
  ignore (require ctx (Space.enumerate sweep));
  push_rung ctx
    {
      fidelity = "exhaustive";
      candidates = Space.size sweep;
      evaluated = ctx.evaluated - before;
      promoted = (if Option.is_some ctx.best then 1 else 0);
      pruned = 0;
    }

(* Shared first rung of halving/pareto: a coarse candidate grid probed at
   bound fidelity - cheap-infeasible candidates pruned (when the default
   feasibility test is in force), survivors sorted by their objective
   lower bound, ties kept in grid order. *)
let bound_rung ctx axes sweep ~prescreen =
  let lens = axis_lengths axes in
  let target = min (Space.size sweep) (min 4096 (max 64 (ctx.budget * 4))) in
  let counts = allocate ~target ~offset:0 lens in
  let cands =
    List.map (params_at axes) (cartesian (box_samples (full_box lens) counts))
  in
  let probes = List.map (fun p -> (p, probe ctx p)) cands in
  let alive, dead =
    match prescreen with
    | None -> (probes, [])
    | Some f -> List.partition (fun (_, pr) -> f pr) probes
  in
  let scored = List.map (fun (p, pr) -> (p, pr, objective_bound ctx pr)) alive in
  let sorted =
    List.stable_sort (fun (_, _, a) (_, _, b) -> Float.compare a b) scored
  in
  push_rung ctx
    {
      fidelity = "bound";
      candidates = List.length cands;
      evaluated = 0;
      promoted = List.length sorted;
      pruned = List.length dead;
    };
  sorted

let wave_size ctx = max 8 (ctx.budget / 8)

let halving ctx axes sweep ~prescreen =
  let queue = ref (bound_rung ctx axes sweep ~prescreen) in
  let w = ref 0 in
  while !queue <> [] && remaining ctx > 0 do
    (* Sound prune: a candidate whose lower bound exceeds the incumbent's
       true objective cannot win. *)
    let kept, pruned =
      match ctx.best with
      | None -> (!queue, 0)
      | Some b ->
          let s = obj_value ctx b in
          let kept = List.filter (fun (_, _, lb) -> lb <= s) !queue in
          (kept, List.length !queue - List.length kept)
    in
    let wave = wave_size ctx in
    let now = List.filteri (fun i _ -> i < wave) kept in
    let later = List.filteri (fun i _ -> i >= wave) kept in
    let before = ctx.evaluated in
    ignore (require ctx (List.map (fun (p, _, _) -> p) now));
    push_rung ctx
      {
        fidelity = Printf.sprintf "engine%d" !w;
        candidates = List.length kept;
        evaluated = ctx.evaluated - before;
        promoted = List.length later;
        pruned;
      };
    queue := later;
    incr w
  done

let pareto ctx axes sweep ~prescreen =
  let queue = ref (bound_rung ctx axes sweep ~prescreen) in
  let w = ref 0 in
  while !queue <> [] && remaining ctx > 0 do
    (* Frontier prune: candidate [p] is discarded when some already
       evaluated feasible design is at or below [p]'s objective lower
       bound AND at or below its exact die cost - [p] can then neither
       beat that design on the objective nor extend the (objective, cost)
       frontier. *)
    let front =
      Pareto.frontier ~fx:(obj_value ctx)
        ~fy:(fun d -> d.Design.die_cost_usd)
        (List.filter ctx.feasible ctx.log)
    in
    let dominated (_, pr, lb) =
      List.exists
        (fun d ->
          obj_value ctx d <= lb
          && d.Design.die_cost_usd <= pr.Design.die_cost_usd)
        front
    in
    let kept, pruned =
      if front = [] then (!queue, 0)
      else
        let kept = List.filter (fun c -> not (dominated c)) !queue in
        (kept, List.length !queue - List.length kept)
    in
    let wave = wave_size ctx in
    let now = List.filteri (fun i _ -> i < wave) kept in
    let later = List.filteri (fun i _ -> i >= wave) kept in
    let before = ctx.evaluated in
    ignore (require ctx (List.map (fun (p, _, _) -> p) now));
    push_rung ctx
      {
        fidelity = Printf.sprintf "pareto%d" !w;
        candidates = List.length kept;
        evaluated = ctx.evaluated - before;
        promoted = List.length later;
        pruned;
      };
    queue := later;
    incr w
  done

let descent ctx axes sweep ~prescreen ~seed =
  (* Multi-start coordinate descent: the deduplicated lattice corners
     (generalizing [Search.optimize]) plus seeded random starts. All
     randomness is drawn up front, before any evaluation, so the start
     set is independent of cache state. *)
  let rng = Random.State.make [| seed; 0x5eed |] in
  let lens = axis_lengths axes in
  let random_start () =
    params_at axes (Array.map (fun l -> Random.State.int rng l) lens)
  in
  let starts =
    Search.corners sweep @ List.init 4 (fun _ -> random_start ())
    |> List.fold_left
         (fun acc p ->
           if List.exists (Space.params_equal p) acc then acc else p :: acc)
         []
    |> List.rev
  in
  List.iteri
    (fun si start ->
      if remaining ctx > 0 then begin
        let before = ctx.evaluated in
        let moves = ref 0 in
        (match require ctx [ start ] with
        | [] -> () (* budget exhausted mid-start *)
        | d0 :: _ ->
            (* Lexicographic score: feasible designs always beat
               infeasible ones, then lower objective wins. *)
            let score d =
              ((if ctx.feasible d then 0 else 1), obj_value ctx d)
            in
            let current = ref d0 in
            let improved = ref true in
            while !improved && remaining ctx > 0 do
              improved := false;
              for k = 0 to n_axes - 1 do
                let line = axis_line axes k !current.Design.params in
                let line =
                  match prescreen with
                  | None -> line
                  | Some f ->
                      List.filter
                        (fun p ->
                          Space.params_equal p !current.Design.params
                          || f (probe ctx p))
                        line
                in
                let ds = require ctx line in
                List.iter
                  (fun d ->
                    if score d < score !current then begin
                      current := d;
                      improved := true;
                      incr moves
                    end)
                  ds
              done
            done);
        push_rung ctx
          {
            fidelity = Printf.sprintf "start%d" si;
            candidates = 1;
            evaluated = ctx.evaluated - before;
            promoted = !moves;
            pruned = 0;
          }
      end)
    starts

let zoom ctx axes ~prescreen =
  let lens = axis_lengths axes in
  let box = ref (full_box lens) in
  let level = ref 0 in
  let stop = ref false in
  while (not !stop) && remaining ctx > 0 && !level < 64 do
    let blens =
      Array.init n_axes (fun k -> !box.hi.(k) - !box.lo.(k) + 1)
    in
    let target = max 16 (min (remaining ctx) (max 64 (ctx.budget / 4))) in
    let counts = allocate ~target ~offset:(!level mod n_axes) blens in
    (* [allocate] works on box-relative lengths; samples are absolute. *)
    let samples = box_samples !box counts in
    let cands = List.map (params_at axes) (cartesian samples) in
    let kept, dropped =
      match prescreen with
      | None -> (cands, [])
      | Some f -> List.partition (fun p -> f (probe ctx p)) cands
    in
    let before = ctx.evaluated in
    ignore (require ctx kept);
    let news = ctx.evaluated - before in
    push_rung ctx
      {
        fidelity = Printf.sprintf "zoom%d" !level;
        candidates = List.length cands;
        evaluated = news;
        promoted = (if Option.is_some ctx.best then 1 else 0);
        pruned = List.length dropped;
      };
    (match ctx.best with
    | None -> if news = 0 then stop := true
    | Some b ->
        (* Shrink to the incumbent's cell: per axis, the sampled indices
           bracketing the incumbent's own index. *)
        let bi = index_of axes b.Design.params in
        let nlo = Array.copy !box.lo and nhi = Array.copy !box.hi in
        for k = 0 to n_axes - 1 do
          let below = List.filter (fun i -> i < bi.(k)) samples.(k) in
          let above = List.filter (fun i -> i > bi.(k)) samples.(k) in
          nlo.(k) <- (match List.rev below with x :: _ -> x | [] -> bi.(k));
          nhi.(k) <- (match above with x :: _ -> x | [] -> bi.(k))
        done;
        let unchanged = nlo = !box.lo && nhi = !box.hi in
        box := { lo = nlo; hi = nhi };
        if unchanged && news = 0 then stop := true);
    incr level
  done

(* --- entry point --- *)

let search ?(budget = 1024) ?(seed = 42) ?(objective = Optimum.Tbt) ?feasible
    ?refine ?cache_dir ~strategy (s : Scenario.t) =
  if budget < 1 then invalid_arg "Adaptive.search: budget must be positive";
  let sweep =
    match s.Scenario.target with
    | Scenario.Space sw -> sw
    | Scenario.Point _ ->
        invalid_arg
          "Adaptive.search: scenario targets a single point; search needs a \
           design space"
  in
  let default_feasibility = feasible = None in
  let feasible =
    match feasible with
    | Some f -> f
    | None -> fun d -> Scenario.compliant s d && Design.manufacturable d
  in
  (* The prescreen applies the same test to un-simulated probes; a custom
     feasibility function may read the latencies, so only the default
     (spec-only) test is safe to run at bound fidelity. *)
  let prescreen = if default_feasibility then Some feasible else None in
  let disk = Option.map (fun dir -> Disk_cache.open_dir ~dir s) cache_dir in
  let compiled = compile_of s in
  let ctx =
    {
      scenario = s;
      objective;
      feasible;
      budget;
      disk;
      results = Ptable.create 1024;
      pre = totals_of_phase compiled.Compiled.prefill;
      dec = totals_of_phase compiled.Compiled.decode;
      log = [];
      evaluated = 0;
      bounded = 0;
      mem = 0;
      dsk = 0;
      cold = 0;
      best = None;
      rungs = [];
    }
  in
  let axes = axes_of sweep in
  if budget >= Space.size sweep then exhaustive ctx sweep
  else begin
    match strategy with
    | Halving -> halving ctx axes sweep ~prescreen
    | Pareto_front -> pareto ctx axes sweep ~prescreen
    | Descent -> descent ctx axes sweep ~prescreen ~seed
    | Zoom -> zoom ctx axes ~prescreen
  end;
  (* Optional final fidelity: re-rank the evaluated top designs with a
     caller-supplied refinement metric (e.g. a serving-simulator pass). *)
  (match refine with
  | None -> ()
  | Some f ->
      let ranked =
        List.filter ctx.feasible (List.rev ctx.log)
        |> List.stable_sort (fun a b ->
               Float.compare (obj_value ctx a) (obj_value ctx b))
      in
      let top = List.filteri (fun i _ -> i < 8) ranked in
      (match top with
      | [] -> ()
      | first :: rest ->
          let best_refined =
            List.fold_left
              (fun (d, v) d' ->
                let v' = f d' in
                if v' < v then (d', v') else (d, v))
              (first, f first) rest
            |> fst
          in
          ctx.best <- Some best_refined;
          push_rung ctx
            {
              fidelity = "refine";
              candidates = List.length top;
              evaluated = 0;
              promoted = 1;
              pruned = List.length top - 1;
            }));
  let implicit = float_of_int (Space.size sweep) in
  {
    best = ctx.best;
    objective;
    strategy;
    budget;
    evaluated = ctx.evaluated;
    bounded = ctx.bounded;
    implicit;
    pruned = implicit -. float_of_int ctx.evaluated;
    rungs = List.rev ctx.rungs;
    provenance = { memory = ctx.mem; disk = ctx.dsk; cold = ctx.cold };
    disk = Option.map Disk_cache.stats ctx.disk;
  }
