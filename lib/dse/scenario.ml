module Json = Acs_util.Json
module Model = Acs_workload.Model
module Request = Acs_workload.Request
module Calib = Acs_perfmodel.Calib
module Regime = Acs_policy.Regime

type target = Space of Space.sweep | Point of Space.params

type t = {
  name : string;
  description : string;
  model : Model.t;
  request : Request.t option;
  calib : Calib.t option;
  tp : int option;
  tpp_target : float;
  memory_gb : float option;
  target : target;
  regime : Regime.t;
}

let make ?(description = "") ?request ?calib ?tp ?memory_gb
    ?(regime = Regime.acr_2023) ~name ~model ~tpp_target target =
  let pos what v =
    if not (v > 0. && Float.abs v < infinity) then
      invalid_arg (Printf.sprintf "Scenario.make: %s must be positive and finite" what)
  in
  pos "tpp_target" tpp_target;
  Option.iter (pos "memory_gb") memory_gb;
  Option.iter
    (fun tp -> if tp <= 0 then invalid_arg "Scenario.make: tp must be positive")
    tp;
  { name; description; model; request; calib; tp; tpp_target; memory_gb;
    target; regime }

let size t =
  match t.target with Space s -> Space.size s | Point _ -> 1

let compliant t = Design.compliant t.regime

(* --- context equality and hashing ---

   The cache key must treat two scenarios as interchangeable exactly when
   [Design.evaluate] would produce the same result for them, so [name],
   [description] and [regime] are excluded (the regime changes how
   results are judged, not what is computed). All float comparisons go
   through
   [Float.compare]: nan = nan and -0. = 0. (the polymorphic [=] returns
   false on nan, which would make a nan-bearing key unfindable and the
   cache silently useless). The hash normalizes the same two cases -
   every nan hashes to one constant, and -0. is folded onto 0. by adding
   0. before taking its bits - keeping it consistent with [equal]. *)

let float_eq a b = Float.compare a b = 0

let opt_eq eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> eq x y
  | None, Some _ | Some _, None -> false

let model_eq (a : Model.t) (b : Model.t) =
  String.equal a.Model.name b.Model.name
  && a.Model.num_layers = b.Model.num_layers
  && a.Model.d_model = b.Model.d_model
  && a.Model.ffn_dim = b.Model.ffn_dim
  && a.Model.n_heads = b.Model.n_heads
  && a.Model.n_kv_heads = b.Model.n_kv_heads
  && a.Model.activation = b.Model.activation
  && opt_eq
       (fun (x : Model.moe) (y : Model.moe) ->
         x.Model.num_experts = y.Model.num_experts
         && x.Model.top_k = y.Model.top_k)
       a.Model.moe b.Model.moe
  && float_eq a.Model.bytes_per_param b.Model.bytes_per_param

let request_eq (a : Request.t) (b : Request.t) =
  a.Request.batch = b.Request.batch
  && a.Request.input_len = b.Request.input_len
  && a.Request.output_len = b.Request.output_len

let calib_eq (a : Calib.t) (b : Calib.t) =
  float_eq a.Calib.dram_efficiency b.Calib.dram_efficiency
  && float_eq a.Calib.dram_ramp_bytes b.Calib.dram_ramp_bytes
  && float_eq a.Calib.per_core_dram_bw b.Calib.per_core_dram_bw
  && float_eq a.Calib.kernel_overhead_s b.Calib.kernel_overhead_s
  && float_eq a.Calib.feed_bytes_16x16 b.Calib.feed_bytes_16x16
  && float_eq a.Calib.feed_knee_ratio b.Calib.feed_knee_ratio
  && float_eq a.Calib.feed_knee_power b.Calib.feed_knee_power
  && float_eq a.Calib.control_overhead b.Calib.control_overhead
  && float_eq a.Calib.drain_overhead b.Calib.drain_overhead
  && float_eq a.Calib.sched_overhead_per_core b.Calib.sched_overhead_per_core
  && float_eq a.Calib.overlap_leak b.Calib.overlap_leak
  && float_eq a.Calib.l2_reuse_bytes b.Calib.l2_reuse_bytes
  && float_eq a.Calib.hop_latency_s b.Calib.hop_latency_s
  && float_eq a.Calib.vector_efficiency b.Calib.vector_efficiency

let target_eq a b =
  match (a, b) with
  | Space x, Space y -> Space.sweep_equal x y
  | Point x, Point y -> Space.params_equal x y
  | Space _, Point _ | Point _, Space _ -> false

(* Everything but the target: the part of the key shared by every point
   of one sweep. [Eval]'s per-point cache key pairs this with raw
   [Space.params]. *)
let context_equal a b =
  float_eq a.tpp_target b.tpp_target
  && opt_eq float_eq a.memory_gb b.memory_gb
  && opt_eq ( = ) a.tp b.tp
  && model_eq a.model b.model
  && opt_eq request_eq a.request b.request
  && opt_eq calib_eq a.calib b.calib

let equal a b = context_equal a b && target_eq a.target b.target

(* Hash combination: h <+> x folds one component in; [land max_int]
   keeps the value non-negative on 63-bit ints. *)
let ( <+> ) h x = ((h * 31) + x) land max_int

let float_hash f =
  if Float.is_nan f then 0x7ff8
  else Int64.to_int (Int64.bits_of_float (f +. 0.)) land max_int

let opt_hash hash = function None -> 17 | Some x -> 19 <+> hash x

let model_hash (m : Model.t) =
  Hashtbl.hash m.Model.name
  <+> m.Model.num_layers <+> m.Model.d_model <+> m.Model.ffn_dim
  <+> m.Model.n_heads <+> m.Model.n_kv_heads
  <+> (match m.Model.activation with Model.Gelu -> 0 | Model.Swiglu -> 1)
  <+> opt_hash
        (fun (x : Model.moe) -> x.Model.num_experts <+> x.Model.top_k)
        m.Model.moe
  <+> float_hash m.Model.bytes_per_param

let request_hash (r : Request.t) =
  r.Request.batch <+> r.Request.input_len <+> r.Request.output_len

let calib_hash (c : Calib.t) =
  List.fold_left
    (fun h f -> h <+> float_hash f)
    29
    [
      c.Calib.dram_efficiency; c.Calib.dram_ramp_bytes;
      c.Calib.per_core_dram_bw; c.Calib.kernel_overhead_s;
      c.Calib.feed_bytes_16x16; c.Calib.feed_knee_ratio;
      c.Calib.feed_knee_power; c.Calib.control_overhead;
      c.Calib.drain_overhead; c.Calib.sched_overhead_per_core;
      c.Calib.overlap_leak; c.Calib.l2_reuse_bytes; c.Calib.hop_latency_s;
      c.Calib.vector_efficiency;
    ]

let target_hash = function
  | Space s -> 2 <+> Space.sweep_hash s
  | Point p -> 3 <+> Space.params_hash p

let context_hash t =
  float_hash t.tpp_target
  <+> opt_hash float_hash t.memory_gb
  <+> opt_hash Fun.id t.tp
  <+> model_hash t.model
  <+> opt_hash request_hash t.request
  <+> opt_hash calib_hash t.calib

let hash t = context_hash t <+> target_hash t.target

let point_hash ~context_hash p = context_hash <+> (3 <+> Space.params_hash p)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

(* --- JSON --- *)

let regime_token (r : Regime.t) =
  if r.Regime.name = "" then "custom" else r.Regime.name

(* Regimes that are (structurally) registry values serialize by name;
   anything else inlines the full Regime JSON. *)
let regime_to_json (r : Regime.t) =
  match Regime.find r.Regime.name with
  | Some canonical when Regime.equal canonical r ->
      Json.string r.Regime.name
  | Some _ | None -> Regime.to_json r

let regime_of_json = function
  | Json.String s -> (
      match Regime.find s with
      | Some r -> r
      | None ->
          raise
            (Json.Error
               (Printf.sprintf "unknown regime %S (known: %s)" s
                  (String.concat ", " (Regime.names ())))))
  | j -> Regime.of_json j

let model_to_json m =
  (* Presets serialize by name - the manifest stays readable and robust
     to preset-parameter edits. *)
  match Model.find_preset m.Model.name with
  | Some preset when model_eq preset m -> Json.string m.Model.name
  | Some _ | None -> Model.to_json m

let to_json t =
  Json.obj
    [
      ("name", if t.name = "" then Json.Null else Json.string t.name);
      ( "description",
        if t.description = "" then Json.Null else Json.string t.description );
      ("model", model_to_json t.model);
      ("request", Json.option Request.to_json t.request);
      ("calib", Json.option Calib.to_json t.calib);
      ("tp", Json.option Json.int t.tp);
      ("tpp_target", Json.float t.tpp_target);
      ("memory_gb", Json.option Json.float t.memory_gb);
      ( "space",
        match t.target with
        | Space s -> Space.sweep_to_json s
        | Point _ -> Json.Null );
      ( "point",
        match t.target with
        | Point p -> Space.params_to_json p
        | Space _ -> Json.Null );
      ("regime", regime_to_json t.regime);
    ]

let of_json j =
  let opt f k = Json.to_option f (Json.member k j) in
  let target =
    match (Json.member "space" j, Json.member "point" j) with
    | Json.Null, Json.Null ->
        raise (Json.Error "scenario needs a \"space\" or a \"point\"")
    | s, Json.Null -> Space (Space.sweep_of_json s)
    | Json.Null, p -> Point (Space.params_of_json p)
    | _, _ -> raise (Json.Error "scenario has both \"space\" and \"point\"")
  in
  let scenario =
    make
      ?description:(opt Json.to_str "description")
      ?request:(opt Request.of_json "request")
      ?calib:(opt Calib.of_json "calib")
      ?tp:(opt Json.to_int "tp")
      ?memory_gb:(opt Json.to_float "memory_gb")
      ?regime:(opt regime_of_json "regime")
      ~name:(Option.value ~default:"" (opt Json.to_str "name"))
      ~model:(Model.of_json (Json.member "model" j))
      ~tpp_target:(Json.to_float (Json.member "tpp_target" j))
      target
  in
  scenario

(* --- registry --- *)

let sweep_scenario ~name ~description ~model ~tpp_target ~regime space =
  make ~name ~description ~model ~tpp_target ~regime (Space space)

let fig7_family ~fig ~description_of model tag =
  List.map
    (fun (tpp, headline) ->
      let name =
        if headline then Printf.sprintf "%s-%s" fig tag
        else Printf.sprintf "%s-%s-%.0f" fig tag tpp
      in
      sweep_scenario ~name
        ~description:(description_of tpp)
        ~model ~tpp_target:tpp ~regime:Regime.acr_2023 Space.oct2023)
    [ (1600., false); (2400., false); (4800., false); (2400., true) ]

let registry =
  let gpt3 = Model.gpt3_175b and llama3 = Model.llama3_8b in
  [
    sweep_scenario ~name:"fig6-gpt3"
      ~description:
        "Fig 6 / Table 3: October 2022 DSE at 4800 TPP, GPT-3 175B"
      ~model:gpt3 ~tpp_target:4800. ~regime:Regime.acr_2022
      Space.oct2022;
    sweep_scenario ~name:"fig6-llama3"
      ~description:
        "Fig 6 / Table 3: October 2022 DSE at 4800 TPP, Llama 3 8B"
      ~model:llama3 ~tpp_target:4800. ~regime:Regime.acr_2022
      Space.oct2022;
  ]
  @ fig7_family ~fig:"fig7"
      ~description_of:(fun tpp ->
        Printf.sprintf "Fig 7: October 2023 DSE at %.0f TPP, GPT-3 175B" tpp)
      gpt3 "gpt3"
  @ fig7_family ~fig:"fig7"
      ~description_of:(fun tpp ->
        Printf.sprintf "Fig 7: October 2023 DSE at %.0f TPP, Llama 3 8B" tpp)
      llama3 "llama3"
  @ [
      sweep_scenario ~name:"fig8-gpt3"
        ~description:
          "Fig 8: latency x die-cost products over the 2400-TPP Fig 7 \
           sweep, GPT-3 175B"
        ~model:gpt3 ~tpp_target:2400. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"fig8-llama3"
        ~description:
          "Fig 8: latency x die-cost products over the 2400-TPP Fig 7 \
           sweep, Llama 3 8B"
        ~model:llama3 ~tpp_target:2400. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"table4"
        ~description:
          "Table 4: PD-compliance cost at the 2400 TPP target, GPT-3 175B"
        ~model:gpt3 ~tpp_target:2400. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"fig11-gpt3"
        ~description:
          "Fig 11: indicator distributions over the 4800-TPP Fig 7 sweep, \
           GPT-3 175B"
        ~model:gpt3 ~tpp_target:4800. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"fig11-llama3"
        ~description:
          "Fig 11: indicator distributions over the 4800-TPP Fig 7 sweep, \
           Llama 3 8B"
        ~model:llama3 ~tpp_target:4800. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"fig12-gpt3"
        ~description:
          "Fig 12 / Table 5: restricted (at-or-below-A100) DSE, GPT-3 175B"
        ~model:gpt3 ~tpp_target:4800. ~regime:Regime.acr_2023
        Space.restricted;
      sweep_scenario ~name:"fig12-llama3"
        ~description:
          "Fig 12 / Table 5: restricted (at-or-below-A100) DSE, Llama 3 8B"
        ~model:llama3 ~tpp_target:4800. ~regime:Regime.acr_2023
        Space.restricted;
      sweep_scenario ~name:"table5"
        ~description:
          "Table 5 alias of fig12-gpt3: the restricted design space"
        ~model:gpt3 ~tpp_target:4800. ~regime:Regime.acr_2023
        Space.restricted;
      sweep_scenario ~name:"scorecard"
        ~description:
          "Scorecard: the 2400-TPP October 2023 sweep most paper claims \
           are measured on, GPT-3 175B"
        ~model:gpt3 ~tpp_target:2400. ~regime:Regime.acr_2023
        Space.oct2023;
      sweep_scenario ~name:"search-widened"
        ~description:
          "Adaptive search demo: the ~1e9-point widened lattice at the \
           2400 TPP October 2023 target, Llama 3 8B (never enumerated - \
           use `acs search`)"
        ~model:llama3 ~tpp_target:2400. ~regime:Regime.acr_2023
        Space.widened;
      make ~name:"a100-proxy"
        ~description:
          "Single point: the 16x16 x4-lane 103-core A100-like anchor of \
           Fig 5 (4759 TPP under the 4800 target)"
        ~model:gpt3 ~tpp_target:4800. ~regime:Regime.pre_acr
        (Point
           {
             Space.systolic_dim = 16;
             lanes = 4;
             l1 = 192.;
             l2 = 40.;
             memory_bw = 2.;
             device_bw = 600.;
             clock_mhz = Space.default_clock_mhz;
           });
    ]

let () =
  (* Registry names must be unique - [find] depends on it. *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun s ->
      if Hashtbl.mem seen s.name then
        invalid_arg (Printf.sprintf "Scenario.registry: duplicate name %S" s.name)
      else Hashtbl.add seen s.name ())
    registry

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun s -> norm s.name = norm name) registry

let names () = List.map (fun s -> s.name) registry

let pp ppf t =
  let target_descr =
    match t.target with
    | Space s -> (
        match Space.name_of s with
        | Some n -> Printf.sprintf "%s (%d designs)" n (Space.size s)
        | None -> Printf.sprintf "custom space (%d designs)" (Space.size s))
    | Point _ -> "single point"
  in
  Format.fprintf ppf "%s: %s, %s @@ %.0f TPP, %s%s"
    (if t.name = "" then "(anonymous)" else t.name)
    t.model.Model.name target_descr t.tpp_target
    (regime_token t.regime)
    (match t.tp with
    | Some tp -> Printf.sprintf ", tp=%d" tp
    | None -> "")
