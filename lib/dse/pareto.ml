let dominates ~fx ~fy a b =
  (* [a] dominates [b]. *)
  fx a <= fx b && fy a <= fy b && (fx a < fx b || fy a < fy b)

let dominated ~fx ~fy p points =
  List.exists (fun q -> dominates ~fx ~fy q p) points

let frontier ~fx ~fy points =
  let keep = List.filter (fun p -> not (dominated ~fx ~fy p points)) points in
  List.sort (fun a b -> compare (fx a, fy a) (fx b, fy b)) keep
