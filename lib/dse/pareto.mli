(** Pareto-frontier extraction for two-objective minimization. *)

val frontier : fx:('a -> float) -> fy:('a -> float) -> 'a list -> 'a list
(** Points not strictly dominated by any other (dominated = another point
    is <= on both objectives and < on at least one). Result is sorted by
    [fx] ascending. *)

val dominated : fx:('a -> float) -> fy:('a -> float) -> 'a -> 'a list -> bool
