let adjacent ?(cmp = compare) values current =
  (* Previous and next swept value around [current]: both for an interior
     value, one at either end of the sweep, none when [current] is not a
     swept value at all. [walk] handles every list shape, including the
     empty and singleton sweeps. Sorting, dedup and the membership test
     all go through [cmp], so float dimensions can pass [Float.compare]
     and keep nan findable (the polymorphic [=] is false on [nan = nan],
     which would silently drop a dimension's neighbors). *)
  let eq a b = cmp a b = 0 in
  let rec walk = function
    | a :: b :: rest ->
        if eq b current then
          match rest with [] -> [ a ] | c :: _ -> [ a; c ]
        else if eq a current then [ b ]
        else walk (b :: rest)
    | [ _ ] | [] -> []
  in
  walk (List.sort_uniq cmp values)

let neighbors (sweep : Space.sweep) (p : Space.params) =
  let with_dim ~cmp values current rebuild =
    List.map rebuild (adjacent ~cmp values current)
  in
  with_dim ~cmp:Int.compare sweep.Space.systolic_dims p.Space.systolic_dim
    (fun v -> { p with Space.systolic_dim = v })
  @ with_dim ~cmp:Int.compare sweep.Space.lanes_per_core p.Space.lanes (fun v ->
        { p with Space.lanes = v })
  @ with_dim ~cmp:Float.compare sweep.Space.l1_kb p.Space.l1 (fun v ->
        { p with Space.l1 = v })
  @ with_dim ~cmp:Float.compare sweep.Space.l2_mb p.Space.l2 (fun v ->
        { p with Space.l2 = v })
  @ with_dim ~cmp:Float.compare sweep.Space.memory_bw_tb_s p.Space.memory_bw
      (fun v -> { p with Space.memory_bw = v })
  @ with_dim ~cmp:Float.compare sweep.Space.device_bw_gb_s p.Space.device_bw
      (fun v -> { p with Space.device_bw = v })
  @ with_dim ~cmp:Float.compare sweep.Space.clock_mhz p.Space.clock_mhz
      (fun v -> { p with Space.clock_mhz = v })

type outcome = { best : Design.t; evaluated : int; steps : int }

let local_search ?(max_steps = 100) ?calib ~sweep ~tpp_target ~model ~objective
    ~feasible start =
  let evaluated = ref 0 in
  let eval p =
    incr evaluated;
    Eval.evaluate ?calib ~model ~tpp_target p
  in
  let score d = if feasible d then Some (objective d) else None in
  let rec climb current current_score steps =
    if steps >= max_steps then (current, steps)
    else begin
      let candidates =
        List.filter_map
          (fun p ->
            let d = eval p in
            Option.map (fun s -> (d, s)) (score d))
          (neighbors sweep current.Design.params)
      in
      match candidates with
      | [] -> (current, steps)
      | _ :: _ ->
          let best, best_score =
            Acs_util.Stats.argmin snd
              (List.map (fun (d, s) -> ((d, s), s)) candidates)
            |> fst
          in
          if best_score < current_score then climb best best_score (steps + 1)
          else (current, steps)
    end
  in
  let start_design = eval start in
  match score start_design with
  | Some s ->
      let best, steps = climb start_design s 0 in
      Some { best; evaluated = !evaluated; steps }
  | None -> begin
      (* Start from the best feasible neighbor instead, if any. *)
      let feasible_neighbors =
        List.filter_map
          (fun p ->
            let d = eval p in
            Option.map (fun s -> (d, s)) (score d))
          (neighbors sweep start)
      in
      match feasible_neighbors with
      | [] -> None
      | _ :: _ ->
          let d, s =
            Acs_util.Stats.argmin snd
              (List.map (fun (d, s) -> ((d, s), s)) feasible_neighbors)
            |> fst
          in
          let best, steps = climb d s 1 in
          Some { best; evaluated = !evaluated; steps }
    end

type picker = { pick : 'a. 'a list -> 'a }

let lo = { pick = (fun l -> List.hd l) }

let hi =
  {
    pick =
      (let rec last = function
         | [ x ] -> x
         | _ :: tl -> last tl
         | [] -> invalid_arg "Search.hi: empty sweep dimension"
       in
       last);
  }

let mid =
  {
    pick =
      (let rec nth_of ~len ~seen = function
         | [] -> invalid_arg "Search.mid: empty sweep dimension"
         | x :: tl -> if seen >= len / 2 then x else nth_of ~len ~seen:(seen + 1) tl
       in
       fun l -> nth_of ~len:(List.length l) ~seen:0 l);
  }

let corners (sweep : Space.sweep) =
  let corner f =
    {
      Space.systolic_dim = f.pick sweep.Space.systolic_dims;
      lanes = f.pick sweep.Space.lanes_per_core;
      l1 = f.pick sweep.Space.l1_kb;
      l2 = f.pick sweep.Space.l2_mb;
      memory_bw = f.pick sweep.Space.memory_bw_tb_s;
      device_bw = f.pick sweep.Space.device_bw_gb_s;
      clock_mhz = f.pick sweep.Space.clock_mhz;
    }
  in
  [ corner lo; corner hi; corner mid ]

let dedup_starts starts =
  (* On sweeps with singleton (or near-singleton) axes the lo/hi/mid
     corners coincide; without dedup each duplicate would rerun the whole
     restart and recount the shared start point once per copy in
     [outcome.evaluated]. *)
  List.fold_left
    (fun acc p ->
      if List.exists (Space.params_equal p) acc then acc else p :: acc)
    [] starts
  |> List.rev

let optimize ?calib ~sweep ~tpp_target ~model ~objective ~feasible () =
  (* The restarts are independent hill climbs, so they run in parallel over
     the domain pool (each chunk is one whole restart); the memo cache in
     [Eval] deduplicates neighbor evaluations shared between restarts. *)
  let outcomes =
    Acs_util.Parallel.filter_map ~chunk:1
      (fun start ->
        local_search ?calib ~sweep ~tpp_target ~model ~objective ~feasible
          start)
      (dedup_starts (corners sweep))
  in
  match outcomes with
  | [] -> None
  | first :: rest ->
      let total_evals =
        List.fold_left (fun acc o -> acc + o.evaluated) 0 outcomes
      in
      let best =
        List.fold_left
          (fun acc o ->
            if objective o.best < objective acc.best then o else acc)
          first rest
      in
      Some { best with evaluated = total_evals }
