(** Thin client for the evaluation daemon: one short-lived connection
    per call over the daemon's Unix-domain socket.

    Everything returns the raw [(status, body)] pair so callers (the CLI
    verbs, the test suite) decide how to render errors; only transport
    and protocol failures raise {!Error}. *)

module Json = Acs_util.Json

exception Error of string
(** Connection failures (daemon not running, stale socket) and protocol
    violations (malformed framing or JSON in a reply). *)

type response = { status : int; body : Json.t }
(** [body] is [Json.Null] for empty response bodies. *)

val request :
  socket:string -> ?body:Json.t -> meth:string -> target:string -> unit -> response
(** One request/response round trip. The general form behind the
    conveniences below. *)

val health : socket:string -> response
val metrics : socket:string -> response
val jobs : socket:string -> response
val job : socket:string -> int -> response
val cancel : socket:string -> int -> response

val submit : socket:string -> Json.t -> response
(** [POST /jobs], detached: on 202 the body is the queued job record.
    The payload may be a registry name ([Json.String]), a
    [{"scenario": name}] object, or a full scenario manifest. *)

val submit_wait :
  socket:string -> ?on_event:(Json.t -> unit) -> Json.t -> response
(** [POST /jobs?wait=1]: streams the job's progress, calling [on_event]
    once per ndjson event, and returns the final job record (from the
    terminating ["summary"] event) with the stream's 200 status.
    Rejections (429 queue-full, 503 draining, 400 malformed) come back
    as plain responses without invoking [on_event]. *)
