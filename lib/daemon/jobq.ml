module Scenario = Acs_dse.Scenario
module Json = Acs_util.Json

type status = Queued | Running | Done | Failed of string | Cancelled

let status_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled -> "cancelled"

type result = {
  designs : int;
  compliant : int;
  best_ttft_s : float;
  best_tbt_s : float;
  wall_s : float;
}

type job = {
  id : int;
  scenario : Scenario.t;
  submitted_at : float;
  total : int;
  cancel_requested : bool Atomic.t;
  mutable status : status;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable progress : int;
  mutable memo_hits : int;
  mutable disk_hits : int;
  mutable cold : int;
  mutable result : result option;
  mutable seq : int;
  mutable events : (int * Json.t) list;
}

let finished j =
  match j.status with
  | Done | Failed _ | Cancelled -> true
  | Queued | Running -> false

let warm_hit_rate j =
  let looked = j.memo_hits + j.disk_hits + j.cold in
  if looked = 0 then nan
  else float_of_int (j.memo_hits + j.disk_hits) /. float_of_int looked

(* JSON floats must be finite; drop nan-valued optional members. *)
let finite_member name v =
  if Float.is_finite v then [ (name, Json.float v) ] else []

let job_to_json j =
  let base =
    [
      ("id", Json.int j.id);
      ( "scenario",
        Json.string
          (if j.scenario.Scenario.name = "" then "(anonymous)"
           else j.scenario.Scenario.name) );
      ("status", Json.string (status_to_string j.status));
      ( "error",
        match j.status with Failed msg -> Json.string msg | _ -> Json.Null );
      ("total", Json.int j.total);
      ("progress", Json.int j.progress);
      ("submitted_at", Json.float j.submitted_at);
      ("started_at", Json.option Json.float j.started_at);
      ("finished_at", Json.option Json.float j.finished_at);
      ( "cache",
        Json.obj
          [
            ("memo", Json.int j.memo_hits);
            ("disk", Json.int j.disk_hits);
            ("cold", Json.int j.cold);
          ] );
    ]
    @ finite_member "warm_hit_rate" (warm_hit_rate j)
  in
  let result =
    match j.result with
    | None -> []
    | Some r ->
        [
          ( "result",
            Json.obj
              ([
                 ("designs", Json.int r.designs);
                 ("compliant", Json.int r.compliant);
                 ("wall_s", Json.float r.wall_s);
               ]
              @ finite_member "best_ttft_s" r.best_ttft_s
              @ finite_member "best_tbt_s" r.best_tbt_s) );
        ]
  in
  Json.obj (base @ result)

(* --- the queue --- *)

type t = {
  capacity : int;
  m : Mutex.t;
  changed : Condition.t;  (* any job/queue state change *)
  pending : job Queue.t;
  mutable all : job list;  (* newest first *)
  mutable next_id : int;
  mutable draining : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be >= 1";
  {
    capacity;
    m = Mutex.create ();
    changed = Condition.create ();
    pending = Queue.create ();
    all = [];
    next_id = 1;
    draining = false;
  }

let capacity t = t.capacity

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let depth t = locked t (fun () -> Queue.length t.pending)

(* Event log bound: progress events are advisory (streamers also check
   job status on every wake), so a lagging reader losing old entries is
   fine; terminal events are always the newest. *)
let max_events = 64

let emit_locked t job ev =
  job.seq <- job.seq + 1;
  let ev =
    match ev with
    | Json.Obj members ->
        Json.Obj
          (("seq", Json.int job.seq) :: ("id", Json.int job.id) :: members)
    | other -> other
  in
  job.events <- (job.seq, ev) :: job.events;
  (match job.events with
  | _ :: _ :: _ when List.length job.events > max_events ->
      job.events <- List.filteri (fun i _ -> i < max_events) job.events
  | _ -> ());
  Condition.broadcast t.changed

let emit t job ev = locked t (fun () -> emit_locked t job ev)

let submit t scenario =
  locked t (fun () ->
      if t.draining then Error `Draining
      else if Queue.length t.pending >= t.capacity then
        Error (`Full (Queue.length t.pending))
      else begin
        let job =
          {
            id = t.next_id;
            scenario;
            submitted_at = Unix.gettimeofday ();
            total = Scenario.size scenario;
            cancel_requested = Atomic.make false;
            status = Queued;
            started_at = None;
            finished_at = None;
            progress = 0;
            memo_hits = 0;
            disk_hits = 0;
            cold = 0;
            result = None;
            seq = 0;
            events = [];
          }
        in
        t.next_id <- t.next_id + 1;
        Queue.push job t.pending;
        t.all <- job :: t.all;
        emit_locked t job
          (Json.obj
             [
               ("event", Json.string "queued");
               ("total", Json.int job.total);
               ("queue_depth", Json.int (Queue.length t.pending));
             ]);
        Ok job
      end)

let claim t =
  locked t (fun () ->
      let rec next () =
        match Queue.take_opt t.pending with
        | Some job when job.status = Queued ->
            (* Flip to Running under the lock: a cancel arriving between
               the claim and the runner's first instruction must see
               Running (and set the flag) rather than Queued (and mark a
               job Cancelled that is about to run anyway). *)
            job.status <- Running;
            job.started_at <- Some (Unix.gettimeofday ());
            Some job
        | Some _ -> next () (* cancelled while queued *)
        | None ->
            if t.draining then None
            else begin
              Condition.wait t.changed t.m;
              next ()
            end
      in
      next ())

let find t id = locked t (fun () -> List.find_opt (fun j -> j.id = id) t.all)
let jobs t = locked t (fun () -> List.rev t.all)

let cancel t id =
  locked t (fun () ->
      match List.find_opt (fun j -> j.id = id) t.all with
      | None -> `Unknown
      | Some job -> (
          match job.status with
          | Done | Failed _ | Cancelled -> `Already_finished
          | Queued ->
              job.status <- Cancelled;
              job.finished_at <- Some (Unix.gettimeofday ());
              emit_locked t job
                (Json.obj [ ("event", Json.string "cancelled") ]);
              `Cancelled
          | Running ->
              Atomic.set job.cancel_requested true;
              `Cancelling))

let drain t =
  locked t (fun () ->
      t.draining <- true;
      Condition.broadcast t.changed)

let draining t = locked t (fun () -> t.draining)

let events_after ?(timeout_s = 1.0) t job seq =
  locked t (fun () ->
      let fresh () =
        List.filter (fun (s, _) -> s > seq) job.events |> List.rev
      in
      match fresh () with
      | _ :: _ as evs -> evs
      | [] ->
          if finished job then []
          else begin
            (* [Condition] has no timed wait, so the bound comes from the
               waker side: every state change broadcasts, and the
               server's accept loop calls {!tick} on each poll interval,
               so a wait never outlives roughly [timeout_s] even when a
               job stalls. Callers loop on an empty return. *)
            ignore timeout_s;
            Condition.wait t.changed t.m;
            fresh ()
          end)

let tick t = locked t (fun () -> Condition.broadcast t.changed)
