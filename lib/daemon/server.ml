module Json = Acs_util.Json
module Metrics = Acs_util.Metrics
module Parallel = Acs_util.Parallel
module Scenario = Acs_dse.Scenario
module Space = Acs_dse.Space
module Design = Acs_dse.Design
module Eval = Acs_dse.Eval
module Disk_cache = Acs_dse.Disk_cache

type config = {
  socket : string;
  workers : int;
  queue : int;
  batch : int;
  throttle_s : float;
  eval_jobs : int option;
  cache_dir : string option;
}

let default_config =
  {
    socket = "acs.sock";
    workers = 2;
    queue = 8;
    batch = 64;
    throttle_s = 0.;
    eval_jobs = None;
    cache_dir = Some Disk_cache.default_dir;
  }

type t = {
  cfg : config;
  q : Jobq.t;
  sock : Unix.file_descr;
  accept_stop : bool Atomic.t;  (* accept-loop exit flag *)
  stop_requested : bool Atomic.t;  (* set by signal handlers via request_stop *)
  mutable accept_thread : Thread.t option;
  mutable workers : unit Domain.t array;
  mutable stopped : bool;
}

let socket_path t = t.cfg.socket
let queue t = t.q

(* --- observability --- *)

let m_requests = lazy (Metrics.counter "daemon_requests_total")
let m_jobs_done = lazy (Metrics.counter "daemon_jobs_total")
let m_points = lazy (Metrics.counter "daemon_points_total")
let m_queue_depth = lazy (Metrics.gauge "daemon_queue_depth")
let m_job_time = lazy (Metrics.histogram "daemon_job_seconds")

(* --- job execution --- *)

let split_batch n pts =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | p :: rest -> go (n - 1) (p :: acc) rest
  in
  go n [] pts

(* One job: enumerate the scenario's points once, then per batch - check
   the cancel flag, classify each point's provenance (memo hit / disk
   promotion / cold), evaluate through the shared [Eval] cache and the
   [Parallel] pool, write cold results through to the disk tier, and emit
   a progress event. The provenance classification is what the warm-cache
   acceptance rate is measured from. *)
let run_job t (job : Jobq.job) =
  let sc = job.scenario in
  Jobq.emit t.q job
    (Json.obj
       [ ("event", Json.string "started"); ("total", Json.int job.total) ]);
  let t0 = Unix.gettimeofday () in
  match
    let disk =
      Option.map (fun dir -> Disk_cache.open_dir ~dir sc) t.cfg.cache_dir
    in
    let points =
      match sc.Scenario.target with
      | Scenario.Space sw -> Space.enumerate sw
      | Scenario.Point p -> [ p ]
    in
    let compliant = ref 0 in
    let best_ttft = ref infinity and best_tbt = ref infinity in
    let cancelled = ref false in
    let rec batches = function
      | [] -> ()
      | pts when Atomic.get job.cancel_requested ->
          ignore pts;
          cancelled := true
      | pts ->
          let batch, rest = split_batch t.cfg.batch pts in
          List.iter
            (fun p ->
              if Eval.probe sc p then job.memo_hits <- job.memo_hits + 1
              else
                match Option.bind disk (fun d -> Disk_cache.find d p) with
                | Some design ->
                    Eval.seed sc p design;
                    job.disk_hits <- job.disk_hits + 1
                | None -> job.cold <- job.cold + 1)
            batch;
          let eval () = Eval.points sc batch in
          let designs =
            match t.cfg.eval_jobs with
            | Some n -> Parallel.with_jobs n eval
            | None -> eval ()
          in
          (match disk with
          | Some d -> List.iter2 (fun p dsg -> Disk_cache.store d p dsg) batch designs
          | None -> ());
          List.iter
            (fun dsg ->
              if Scenario.compliant sc dsg && Design.manufacturable dsg then begin
                incr compliant;
                if dsg.Design.ttft_s < !best_ttft then best_ttft := dsg.Design.ttft_s;
                if dsg.Design.tbt_s < !best_tbt then best_tbt := dsg.Design.tbt_s
              end)
            designs;
          job.progress <- job.progress + List.length batch;
          Metrics.incr ~by:(List.length batch) (Lazy.force m_points);
          Jobq.emit t.q job
            (Json.obj
               [
                 ("event", Json.string "progress");
                 ("progress", Json.int job.progress);
                 ("total", Json.int job.total);
                 ("memo", Json.int job.memo_hits);
                 ("disk", Json.int job.disk_hits);
                 ("cold", Json.int job.cold);
               ]);
          if t.cfg.throttle_s > 0. then Unix.sleepf t.cfg.throttle_s;
          batches rest
    in
    batches points;
    (!cancelled, !compliant, !best_ttft, !best_tbt)
  with
  | cancelled, compliant, best_ttft, best_tbt ->
      let wall = Unix.gettimeofday () -. t0 in
      Metrics.observe (Lazy.force m_job_time) wall;
      job.finished_at <- Some (Unix.gettimeofday ());
      if cancelled then begin
        job.status <- Jobq.Cancelled;
        Jobq.emit t.q job
          (Json.obj
             [
               ("event", Json.string "cancelled");
               ("progress", Json.int job.progress);
             ])
      end
      else begin
        job.result <-
          Some
            {
              Jobq.designs = job.progress;
              compliant;
              best_ttft_s = (if compliant > 0 then best_ttft else nan);
              best_tbt_s = (if compliant > 0 then best_tbt else nan);
              wall_s = wall;
            };
        job.status <- Jobq.Done;
        Metrics.incr (Lazy.force m_jobs_done);
        let rate = Jobq.warm_hit_rate job in
        Jobq.emit t.q job
          (Json.obj
             ([
                ("event", Json.string "done");
                ("designs", Json.int job.progress);
                ("compliant", Json.int compliant);
                ("memo", Json.int job.memo_hits);
                ("disk", Json.int job.disk_hits);
                ("cold", Json.int job.cold);
                ("wall_s", Json.float wall);
              ]
             @ if Float.is_finite rate then [ ("warm_hit_rate", Json.float rate) ] else []))
      end
  | exception e ->
      let msg = Printexc.to_string e in
      job.finished_at <- Some (Unix.gettimeofday ());
      job.status <- Jobq.Failed msg;
      Jobq.emit t.q job
        (Json.obj
           [ ("event", Json.string "failed"); ("error", Json.string msg) ])

let worker_loop t =
  let rec loop () =
    match Jobq.claim t.q with
    | None -> () (* draining and empty: the worker exit signal *)
    | Some job ->
        run_job t job;
        loop ()
  in
  loop ()

(* --- request routing --- *)

let scenario_of_body body =
  let j =
    try Json.of_string body
    with Json.Error m -> raise (Http.Bad_request ("malformed JSON: " ^ m))
  in
  let by_name n =
    match Scenario.find n with
    | Some sc -> sc
    | None -> raise (Http.Bad_request (Printf.sprintf "unknown scenario %S" n))
  in
  match j with
  | Json.String n -> by_name n
  | Json.Obj members when List.mem_assoc "scenario" members -> (
      match List.assoc "scenario" members with
      | Json.String n -> by_name n
      | _ -> raise (Http.Bad_request "\"scenario\" must be a registry name"))
  | Json.Obj _ -> (
      try Scenario.of_json j
      with Json.Error m ->
        raise (Http.Bad_request ("malformed manifest: " ^ m)))
  | _ ->
      raise
        (Http.Bad_request
           "expected a scenario name, {\"scenario\": name} or a full manifest")

let segments path = String.split_on_char '/' path |> List.filter (( <> ) "")

let respond_error fd status msg =
  Http.respond_json ~status fd (Http.error_json msg)

let handle_submit t fd (req : Http.request) =
  let sc = scenario_of_body req.body in
  match Jobq.submit t.q sc with
  | Error (`Full depth) ->
      Http.respond_json ~status:429 fd
        (Json.obj
           [
             ("error", Json.string "queue full");
             ("queue_depth", Json.int depth);
             ("queue_capacity", Json.int (Jobq.capacity t.q));
           ])
  | Error `Draining ->
      Http.respond_json ~status:503 fd
        (Json.obj [ ("error", Json.string "draining: not accepting jobs") ])
  | Ok job -> (
      let wants_wait =
        match Http.query_param req "wait" with
        | Some ("1" | "true" | "") -> true
        | Some _ | None -> false
      in
      if not wants_wait then Http.respond_json ~status:202 fd (Jobq.job_to_json job)
      else
        (* Stream the job's event log as chunked ndjson until the job
           finishes, then a final summary event carrying the whole job
           record. A client hanging up raises EPIPE (SIGPIPE is
           ignored), which just ends the stream - the job keeps
           running. *)
        try
          Http.start_chunked ~status:200 fd;
          let seq = ref 0 in
          let finished = ref false in
          while not !finished do
            let evs = Jobq.events_after t.q job !seq in
            List.iter
              (fun (s, ev) ->
                seq := s;
                Http.write_chunk fd (Json.to_string ev ^ "\n"))
              evs;
            if evs = [] && Jobq.finished job then finished := true
          done;
          Http.write_chunk fd
            (Json.to_string
               (Json.obj
                  [
                    ("event", Json.string "summary");
                    ("job", Jobq.job_to_json job);
                  ])
            ^ "\n");
          Http.finish_chunked fd
        with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())

let route t fd (req : Http.request) =
  Metrics.incr (Lazy.force m_requests);
  match segments req.path with
  | [ "healthz" ] ->
      if req.meth <> "GET" then respond_error fd 405 "use GET"
      else
        Http.respond_json ~status:200 fd
          (Json.obj
             [
               ("status", Json.string "ok");
               ("draining", Json.bool (Jobq.draining t.q));
               ("queue_depth", Json.int (Jobq.depth t.q));
               ("queue_capacity", Json.int (Jobq.capacity t.q));
               ("workers", Json.int t.cfg.workers);
             ])
  | [ "metrics" ] ->
      if req.meth <> "GET" then respond_error fd 405 "use GET"
      else Http.respond_json ~status:200 fd (Metrics.export ())
  | [ "jobs" ] -> (
      match req.meth with
      | "GET" ->
          Http.respond_json ~status:200 fd
            (Json.obj
               [
                 ( "jobs",
                   Json.List (List.map Jobq.job_to_json (Jobq.jobs t.q)) );
               ])
      | "POST" -> handle_submit t fd req
      | _ -> respond_error fd 405 "use GET or POST")
  | [ "jobs"; id ] -> (
      match int_of_string_opt id with
      | None -> respond_error fd 404 (Printf.sprintf "no such job %S" id)
      | Some id -> (
          match req.meth with
          | "GET" -> (
              match Jobq.find t.q id with
              | Some job -> Http.respond_json ~status:200 fd (Jobq.job_to_json job)
              | None -> respond_error fd 404 (Printf.sprintf "no such job %d" id))
          | "DELETE" -> (
              match Jobq.cancel t.q id with
              | `Cancelled ->
                  Http.respond_json ~status:200 fd
                    (Json.obj [ ("status", Json.string "cancelled") ])
              | `Cancelling ->
                  Http.respond_json ~status:202 fd
                    (Json.obj [ ("status", Json.string "cancelling") ])
              | `Already_finished -> respond_error fd 409 "job already finished"
              | `Unknown -> respond_error fd 404 (Printf.sprintf "no such job %d" id))
          | _ -> respond_error fd 405 "use GET or DELETE"))
  | _ -> respond_error fd 404 (Printf.sprintf "no route for %s" req.path)

(* One connection: one request, one response, close. Protocol errors map
   to a 400 and everything else to a 500 - a malformed or malicious
   request must never take the daemon down. *)
let handle t fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let r = Http.reader fd in
      match Http.read_request r with
      | None -> ()
      | Some req -> (
          try route t fd req
          with
          | Http.Bad_request msg -> (
              try respond_error fd 400 msg
              with Unix.Unix_error _ -> ())
          | Json.Error msg -> (
              try respond_error fd 400 msg
              with Unix.Unix_error _ -> ())
          | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
          | e -> (
              try respond_error fd 500 (Printexc.to_string e)
              with Unix.Unix_error _ -> ()))
      | exception Http.Bad_request msg -> (
          try respond_error fd 400 msg with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ())

(* --- accept loop --- *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.accept_stop) then begin
      (* The poll tick doubles as the liveness heartbeat for progress
         streamers blocked in [Jobq.events_after]. *)
      Jobq.tick t.q;
      Metrics.set_gauge (Lazy.force m_queue_depth)
        (float_of_int (Jobq.depth t.q));
      (match Unix.select [ t.sock ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ :: _, _, _ -> (
          match Unix.accept t.sock with
          | fd, _ -> ignore (Thread.create (fun () -> handle t fd) ())
          | exception
              Unix.Unix_error
                ( ( Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK
                  | Unix.ECONNABORTED ),
                  _,
                  _ ) ->
              ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()

(* --- lifecycle --- *)

let start (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if cfg.batch < 1 then invalid_arg "Server.start: batch must be >= 1";
  if String.length cfg.socket > 100 then
    invalid_arg "Server.start: socket path too long for sun_path";
  (* A client disappearing mid-write must surface as EPIPE, not kill the
     process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind sock (Unix.ADDR_UNIX cfg.socket);
     Unix.listen sock 64
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      cfg;
      q = Jobq.create ~capacity:cfg.queue;
      sock;
      accept_stop = Atomic.make false;
      stop_requested = Atomic.make false;
      accept_thread = None;
      workers = [||];
      stopped = false;
    }
  in
  t.workers <- Array.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let request_stop t = Atomic.set t.stop_requested true

let wait t =
  while not (Atomic.get t.stop_requested || t.stopped) do
    try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let stop ?(drain = true) t =
  if not t.stopped then begin
    t.stopped <- true;
    request_stop t;
    (* Reject new submissions; queued jobs still run under [drain]. *)
    Jobq.drain t.q;
    if not drain then
      List.iter
        (fun (j : Jobq.job) -> ignore (Jobq.cancel t.q j.id))
        (Jobq.jobs t.q);
    (* Workers exit once the queue is empty; the accept loop keeps
       serving status requests while they finish, then stops. *)
    Array.iter Domain.join t.workers;
    Atomic.set t.accept_stop true;
    Option.iter Thread.join t.accept_thread;
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket with Unix.Unix_error _ -> ())
  end
