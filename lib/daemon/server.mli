(** The evaluation daemon: a persistent server that accepts scenario
    jobs over a Unix-domain socket speaking minimal HTTP/1.1.

    One {!start} spawns [workers] job-runner domains plus an accept
    thread; each accepted connection is handled on its own thread
    (connections are short-lived: one request each). Jobs flow through
    the bounded {!Jobq}, so a full queue rejects with a structured
    429-style payload instead of blocking the client. Because the
    process is long-lived, the sharded {!Acs_dse.Eval} memo cache and
    the {!Acs_dse.Disk_cache} tier stay warm across requests - the whole
    point of running a daemon instead of one [acs run] per scenario.

    Endpoints:
    - [GET /healthz] - liveness, queue depth, draining flag;
    - [GET /metrics] - the {!Acs_util.Metrics} registry as JSON;
    - [GET /jobs], [GET /jobs/<id>] - job listings/records;
    - [POST /jobs] - submit a scenario (a registry name, ["{\"scenario\":
      name}"], or a full manifest); [?wait=1] streams progress as
      chunked ndjson events ending in a ["summary"] event;
    - [DELETE /jobs/<id>] - cancel (immediate when queued, flagged when
      running).

    Shutdown is graceful by default: {!stop} drains - submissions are
    rejected with 503 while queued and running jobs finish - then joins
    every worker domain and the accept thread. *)

type config = {
  socket : string;
      (** Unix-domain socket path. Keep it short: [sun_path] caps out
          around 100 bytes. *)
  workers : int;  (** job-runner domains (>= 1) *)
  queue : int;  (** bounded queue capacity (>= 1) *)
  batch : int;
      (** points evaluated between cancellation checks and progress
          events (>= 1) *)
  throttle_s : float;
      (** sleep between batches; 0 in production, positive in tests that
          need a job to stay running long enough to be observed *)
  eval_jobs : int option;
      (** per-worker {!Acs_util.Parallel.with_jobs} override for the
          evaluation inside a job; [None] uses the pool default *)
  cache_dir : string option;
      (** disk-cache tier directory; [None] runs memo-only *)
}

val default_config : config
(** [{socket = "acs.sock"; workers = 2; queue = 8; batch = 64;
    throttle_s = 0.; eval_jobs = None;
    cache_dir = Some Acs_dse.Disk_cache.default_dir}]. *)

type t

val start : config -> t
(** Bind the socket (an existing socket file is replaced), spawn the
    worker domains and the accept thread, and return immediately.
    Raises [Invalid_argument] on a bad config and [Unix.Unix_error] if
    the socket cannot be bound. [SIGPIPE] is set to ignore - a client
    hanging up mid-stream must not kill the daemon. *)

val socket_path : t -> string
val queue : t -> Jobq.t
(** The underlying job queue (tests observe and steer it directly). *)

val request_stop : t -> unit
(** Flag the server for shutdown. Async-signal-safe (one atomic store):
    this is what the CLI's SIGTERM/SIGINT handlers call; the actual
    teardown happens on whichever thread calls {!stop} after {!wait}
    returns. *)

val wait : t -> unit
(** Block until {!request_stop} is called (or the server was already
    stopped). The CLI parks its main thread here. *)

val stop : ?drain:bool -> t -> unit
(** Shut down. [drain] (default [true]) rejects new submissions but lets
    queued and running jobs finish; [~drain:false] additionally cancels
    queued jobs and flags running ones, so workers exit at the next
    batch boundary. Joins the worker domains and the accept thread,
    closes and unlinks the socket. Idempotent. *)
