(** The daemon's bounded job queue and job registry.

    Jobs are submitted by connection-handler threads, claimed FIFO by
    worker domains, and observed (listings, progress streams) by other
    handler threads - every transition goes through one internal mutex,
    and every state change broadcasts a condition the progress streamers
    wait on. Backpressure is explicit: {!submit} on a full queue returns
    [`Full] with the current depth instead of blocking, which the server
    turns into a structured 429-style rejection. *)

module Scenario = Acs_dse.Scenario
module Json = Acs_util.Json

type status = Queued | Running | Done | Failed of string | Cancelled

val status_to_string : status -> string
(** "queued" / "running" / "done" / "failed" / "cancelled". *)

type result = {
  designs : int;  (** points evaluated *)
  compliant : int;  (** compliant and manufacturable designs *)
  best_ttft_s : float;  (** nan when no design was evaluated *)
  best_tbt_s : float;
  wall_s : float;  (** running time, excluding queue wait *)
}

type job = {
  id : int;
  scenario : Scenario.t;
  submitted_at : float;  (** epoch seconds *)
  total : int;  (** points this job evaluates *)
  cancel_requested : bool Atomic.t;
      (** set by [DELETE /jobs/<id>]; the runner polls it between
          batches *)
  mutable status : status;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable progress : int;  (** points evaluated so far *)
  mutable memo_hits : int;  (** points answered by the warm in-memory tier *)
  mutable disk_hits : int;  (** points promoted from the disk tier *)
  mutable cold : int;  (** points actually simulated *)
  mutable result : result option;
  mutable seq : int;  (** sequence number of the newest event *)
  mutable events : (int * Json.t) list;  (** newest first, bounded *)
}

val finished : job -> bool

val warm_hit_rate : job -> float
(** (memo + disk hits) / looked-up points so far; nan before any point
    was looked up. *)

val job_to_json : job -> Json.t
(** The wire shape of a job: id, scenario name, status, progress/total,
    timestamps, per-tier cache provenance, warm hit rate and (when
    finished) the result summary. *)

(** {2 The queue} *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] unless [capacity >= 1]. *)

val capacity : t -> int

val depth : t -> int
(** Jobs queued and not yet claimed (running jobs excluded). *)

val submit : t -> Scenario.t -> (job, [ `Full of int | `Draining ]) Stdlib.result
(** Enqueue a new job (FIFO). [`Full depth] when the queue is at
    capacity - the caller rejects, never blocks; [`Draining] after
    {!drain}. *)

val claim : t -> job option
(** Block until a queued job is available and mark it [Running] (under
    the queue lock, so a concurrent cancel always observes a definite
    state); skips jobs cancelled while queued. [None] once the queue is
    empty and draining - the worker exit signal. *)

val find : t -> int -> job option
val jobs : t -> job list
(** Every job the daemon has seen (bounded history), oldest first. *)

val cancel : t -> int -> [ `Cancelled | `Cancelling | `Already_finished | `Unknown ]
(** Queued jobs cancel immediately ([`Cancelled], with a terminal event
    emitted); running jobs get their flag set ([`Cancelling]) and the
    runner emits the terminal event when it notices. *)

val drain : t -> unit
(** Stop accepting submissions and wake every {!claim}er; already-queued
    jobs still run to completion (the graceful-shutdown contract). *)

val draining : t -> bool

(** {2 Progress events} *)

val emit : t -> job -> Json.t -> unit
(** Append an event to the job's bounded event log (the event object
    gains ["seq"] and ["id"] members) and wake all waiters. *)

val events_after : ?timeout_s:float -> t -> job -> int -> (int * Json.t) list
(** Events with sequence number beyond the given one, oldest first.
    Blocks until at least one arrives, the job reaches a terminal
    status, or a waker arrives (every state change broadcasts; the
    server's poll loop calls {!tick} about every [timeout_s]) - callers
    loop, so a spurious empty return is fine. *)

val tick : t -> unit
(** Wake every waiter (the liveness heartbeat behind
    {!events_after}). *)
