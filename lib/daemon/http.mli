(** Minimal HTTP/1.1 over file descriptors, hand-rolled on the [unix]
    stdlib library.

    Just enough protocol for the evaluation daemon and its thin client:
    one request per connection ([Connection: close] semantics),
    [Content-Length] bodies both ways, and [Transfer-Encoding: chunked]
    responses for streaming job progress. No TLS, no keep-alive, no
    content negotiation - the transport is a Unix-domain socket between
    processes on one machine. *)

exception Bad_request of string
(** Malformed request or response framing. The server maps it to a 400;
    the client surfaces it as a protocol error. *)

(** {2 Buffered reading} *)

type reader
(** A buffered reader over a file descriptor (CRLF line framing needs
    lookahead that raw [Unix.read] cannot give). *)

val reader : Unix.file_descr -> reader

(** {2 Server side} *)

type request = {
  meth : string;  (** verb, uppercased: GET, POST, DELETE, ... *)
  path : string;  (** request target without the query string *)
  query : (string * string) list;  (** decoded [k=v] pairs, in order *)
  headers : (string * string) list;  (** names lowercased *)
  body : string;  (** [Content-Length] bytes; "" when absent *)
}

val read_request : reader -> request option
(** [None] on a clean EOF before any byte of a request (client closed an
    idle connection). Raises {!Bad_request} on framing errors and bodies
    over 8 MB, [Unix.Unix_error] on transport failures. *)

val header : request -> string -> string option
(** Case-insensitive header lookup. *)

val query_param : request -> string -> string option

val respond :
  ?content_type:string -> status:int -> Unix.file_descr -> string -> unit
(** Write a complete response with [Content-Length]. The default content
    type is [application/json] - every daemon payload is JSON. *)

val respond_json : status:int -> Unix.file_descr -> Acs_util.Json.t -> unit

val error_json : string -> Acs_util.Json.t
(** [{"error": msg}] - the uniform error payload shape. *)

(** {2 Chunked streaming (server)} *)

val start_chunked :
  ?content_type:string -> status:int -> Unix.file_descr -> unit
(** Write the response head with [Transfer-Encoding: chunked]. Follow
    with {!write_chunk} calls and exactly one {!finish_chunked}. *)

val write_chunk : Unix.file_descr -> string -> unit
(** One chunk (empty strings are skipped: an empty chunk would terminate
    the stream). *)

val finish_chunked : Unix.file_descr -> unit

(** {2 Client side} *)

val write_request :
  ?body:string -> meth:string -> target:string -> Unix.file_descr -> unit

type head = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;  (** names lowercased *)
}

val read_head : reader -> head

val chunked : head -> bool

val read_body : reader -> head -> string
(** The full body: [Content-Length] bytes, a de-chunked stream, or
    read-to-EOF when neither framing header is present. *)

val iter_chunks : reader -> (string -> unit) -> unit
(** Decode a chunked body, invoking the callback once per chunk, until
    the terminating zero-length chunk. *)

val status_reason : int -> string
(** Canonical reason phrase ("OK", "Too Many Requests", ...). *)
