module Json = Acs_util.Json

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type response = { status : int; body : Json.t }

let with_conn ~socket f =
  let fd =
    try Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    with Unix.Unix_error (e, _, _) -> err "socket: %s" (Unix.error_message e)
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.connect fd (Unix.ADDR_UNIX socket)
       with Unix.Unix_error (e, _, _) ->
         err "cannot reach daemon at %s: %s (is `acs daemon` running?)" socket
           (Unix.error_message e));
      f fd)

let parse_reply s =
  let s = String.trim s in
  if s = "" then Json.Null
  else try Json.of_string s with Json.Error m -> err "malformed reply: %s" m

let request ~socket ?body ~meth ~target () =
  let body = Option.map (fun j -> Json.to_string j ^ "\n") body in
  with_conn ~socket (fun fd ->
      match
        Http.write_request ?body ~meth ~target fd;
        let r = Http.reader fd in
        let h = Http.read_head r in
        (h.Http.status, Http.read_body r h)
      with
      | status, reply -> { status; body = parse_reply reply }
      | exception Http.Bad_request m -> err "protocol error: %s" m
      | exception Unix.Unix_error (e, _, _) ->
          err "daemon i/o: %s" (Unix.error_message e))

let health ~socket = request ~socket ~meth:"GET" ~target:"/healthz" ()
let metrics ~socket = request ~socket ~meth:"GET" ~target:"/metrics" ()
let jobs ~socket = request ~socket ~meth:"GET" ~target:"/jobs" ()

let job ~socket id =
  request ~socket ~meth:"GET" ~target:(Printf.sprintf "/jobs/%d" id) ()

let cancel ~socket id =
  request ~socket ~meth:"DELETE" ~target:(Printf.sprintf "/jobs/%d" id) ()

let submit ~socket manifest =
  request ~socket ~body:manifest ~meth:"POST" ~target:"/jobs" ()

let submit_wait ~socket ?(on_event = fun _ -> ()) manifest =
  with_conn ~socket (fun fd ->
      match
        Http.write_request
          ~body:(Json.to_string manifest ^ "\n")
          ~meth:"POST" ~target:"/jobs?wait=1" fd;
        let r = Http.reader fd in
        let h = Http.read_head r in
        if not (Http.chunked h) then
          (* Rejected before streaming started (429/503/400). *)
          { status = h.Http.status; body = parse_reply (Http.read_body r h) }
        else begin
          (* Each chunk is one ndjson event line; the stream ends with a
             "summary" event carrying the finished job record. *)
          let final = ref Json.Null in
          Http.iter_chunks r (fun chunk ->
              String.split_on_char '\n' chunk
              |> List.iter (fun line ->
                     let line = String.trim line in
                     if line <> "" then begin
                       let ev =
                         try Json.of_string line
                         with Json.Error m -> err "malformed event: %s" m
                       in
                       match Json.member "event" ev with
                       | Json.String "summary" -> final := Json.member "job" ev
                       | _ -> on_event ev
                     end));
          { status = h.Http.status; body = !final }
        end
      with
      | resp -> resp
      | exception Http.Bad_request m -> err "protocol error: %s" m
      | exception Unix.Unix_error (e, _, _) ->
          err "daemon i/o: %s" (Unix.error_message e))
