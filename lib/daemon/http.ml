module Json = Acs_util.Json

exception Bad_request of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad_request s)) fmt

(* Requests and responses cross a local socket between cooperating
   processes, but cap the body anyway so a corrupt length header cannot
   ask the server to allocate gigabytes. *)
let max_body = 8 * 1024 * 1024

(* --- EINTR-safe primitives --- *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let send fd s = write_all fd s 0 (String.length s)

(* --- buffered reader --- *)

type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;  (* next unread byte *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable eof : bool;
}

let reader fd = { fd; buf = Bytes.create 8192; pos = 0; len = 0; eof = false }

let refill r =
  if r.pos >= r.len && not r.eof then begin
    let n =
      try Unix.read r.fd r.buf 0 (Bytes.length r.buf)
      with Unix.Unix_error (Unix.EINTR, _, _) -> -1
    in
    if n = 0 then r.eof <- true
    else if n > 0 then begin
      r.pos <- 0;
      r.len <- n
    end
  end

let read_byte r =
  refill r;
  if r.pos >= r.len then None
  else begin
    let c = Bytes.get r.buf r.pos in
    r.pos <- r.pos + 1;
    Some c
  end

(* One CRLF-terminated line, tolerant of a bare LF; [None] on EOF before
   any byte. *)
let read_line r =
  let b = Buffer.create 64 in
  let rec go () =
    match read_byte r with
    | None -> if Buffer.length b = 0 then None else Some (Buffer.contents b)
    | Some '\n' ->
        let s = Buffer.contents b in
        let n = String.length s in
        Some (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
    | Some c ->
        if Buffer.length b > 16384 then bad "header line too long";
        Buffer.add_char b c;
        go ()
  in
  go ()

let read_exact r n =
  if n > max_body then bad "body too large (%d bytes, max %d)" n max_body;
  let out = Bytes.create n in
  let rec go filled =
    if filled >= n then Bytes.unsafe_to_string out
    else begin
      refill r;
      if r.pos >= r.len then bad "unexpected EOF in body (%d/%d bytes)" filled n;
      let take = min (n - filled) (r.len - r.pos) in
      Bytes.blit r.buf r.pos out filled take;
      r.pos <- r.pos + take;
      go (filled + take)
    end
  in
  go 0

let read_to_eof r =
  let b = Buffer.create 256 in
  let rec go () =
    refill r;
    if r.pos < r.len then begin
      if Buffer.length b + (r.len - r.pos) > max_body then bad "body too large";
      Buffer.add_subbytes b r.buf r.pos (r.len - r.pos);
      r.pos <- r.len;
      go ()
    end
  in
  go ();
  Buffer.contents b

(* --- shared header machinery --- *)

let read_headers r =
  let rec go acc =
    match read_line r with
    | None -> bad "unexpected EOF in headers"
    | Some "" -> List.rev acc
    | Some line -> (
        match String.index_opt line ':' with
        | None -> bad "malformed header line %S" line
        | Some i ->
            let name = String.lowercase_ascii (String.sub line 0 i) in
            let value =
              String.trim (String.sub line (i + 1) (String.length line - i - 1))
            in
            go ((name, value) :: acc))
  in
  go []

let lookup headers name = List.assoc_opt (String.lowercase_ascii name) headers

let content_length headers =
  match lookup headers "content-length" with
  | None -> 0
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> n
      | Some _ | None -> bad "malformed Content-Length %S" v)

(* --- server side --- *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (kv, "")
             | Some i ->
                 Some
                   ( String.sub kv 0 i,
                     String.sub kv (i + 1) (String.length kv - i - 1) ))

let read_request r =
  match read_line r with
  | None -> None
  | Some line ->
      let meth, target =
        match String.split_on_char ' ' line with
        | [ m; t; v ] when v = "HTTP/1.1" || v = "HTTP/1.0" ->
            (String.uppercase_ascii m, t)
        | _ -> bad "malformed request line %S" line
      in
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
      in
      let headers = read_headers r in
      let body = read_exact r (content_length headers) in
      Some { meth; path; query; headers; body }

let header req name = lookup req.headers name
let query_param req name = List.assoc_opt name req.query

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 409 -> "Conflict"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c -> if c < 300 then "OK" else "Error"

let head_string ~status ~content_type extra =
  Printf.sprintf "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nConnection: close\r\n%s\r\n"
    status (status_reason status) content_type extra

let respond ?(content_type = "application/json") ~status fd body =
  send fd
    (head_string ~status ~content_type
       (Printf.sprintf "Content-Length: %d\r\n" (String.length body)));
  send fd body

let respond_json ~status fd j = respond ~status fd (Json.to_string j ^ "\n")
let error_json msg = Json.obj [ ("error", Json.string msg) ]

let start_chunked ?(content_type = "application/x-ndjson") ~status fd =
  send fd (head_string ~status ~content_type "Transfer-Encoding: chunked\r\n")

let write_chunk fd s =
  if s <> "" then
    send fd (Printf.sprintf "%x\r\n%s\r\n" (String.length s) s)

let finish_chunked fd = send fd "0\r\n\r\n"

(* --- client side --- *)

let write_request ?(body = "") ~meth ~target fd =
  let head =
    Printf.sprintf
      "%s %s HTTP/1.1\r\nHost: acs-daemon\r\nConnection: close\r\n%s\r\n"
      meth target
      (if body = "" && meth <> "POST" then ""
       else Printf.sprintf "Content-Length: %d\r\n" (String.length body))
  in
  send fd head;
  if body <> "" then send fd body

type head = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
}

let read_head r =
  match read_line r with
  | None -> bad "unexpected EOF before status line"
  | Some line ->
      let status, reason =
        match String.split_on_char ' ' line with
        | version :: code :: rest
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
          -> (
            match int_of_string_opt code with
            | Some c -> (c, String.concat " " rest)
            | None -> bad "malformed status line %S" line)
        | _ -> bad "malformed status line %S" line
      in
      { status; reason; resp_headers = read_headers r }

let chunked h =
  match lookup h.resp_headers "transfer-encoding" with
  | Some v -> String.lowercase_ascii (String.trim v) = "chunked"
  | None -> false

let iter_chunks r f =
  let rec go () =
    match read_line r with
    | None -> bad "unexpected EOF in chunked body"
    | Some size_line -> (
        let size =
          (* Chunk extensions (";...") are allowed by the grammar. *)
          let s =
            match String.index_opt size_line ';' with
            | None -> size_line
            | Some i -> String.sub size_line 0 i
          in
          match int_of_string_opt ("0x" ^ String.trim s) with
          | Some n when n >= 0 -> n
          | Some _ | None -> bad "malformed chunk size %S" size_line
        in
        if size = 0 then
          (* Trailer section: lines until the final blank. *)
          let rec trailers () =
            match read_line r with
            | None | Some "" -> ()
            | Some _ -> trailers ()
          in
          trailers ()
        else begin
          f (read_exact r size);
          (match read_line r with
          | Some "" -> ()
          | _ -> bad "missing CRLF after chunk");
          go ()
        end)
  in
  go ()

let read_body r h =
  if chunked h then begin
    let b = Buffer.create 256 in
    iter_chunks r (Buffer.add_string b);
    Buffer.contents b
  end
  else
    match lookup h.resp_headers "content-length" with
    | Some _ -> read_exact r (content_length h.resp_headers)
    | None -> read_to_eof r
