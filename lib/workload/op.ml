type matmul = {
  label : string;
  m : int;
  k : int;
  n : int;
  batch_count : int;
  weights_streamed : bool;
}

type elementwise = {
  label : string;
  elements : float;
  flops_per_element : float;
  memory_passes : float;
}

type collective = { label : string; bytes : float }

type t =
  | Matmul of matmul
  | Elementwise of elementwise
  | All_reduce of collective

let matmul_macs mm =
  float_of_int mm.m *. float_of_int mm.k *. float_of_int mm.n
  *. float_of_int mm.batch_count

let matmul_flops mm = 2. *. matmul_macs mm

let matmul_weight_bytes mm ~bytes_per_value =
  if mm.weights_streamed then
    float_of_int mm.k *. float_of_int mm.n *. float_of_int mm.batch_count
    *. bytes_per_value
  else 0.

let matmul_activation_bytes mm ~bytes_per_value =
  let m = float_of_int mm.m
  and k = float_of_int mm.k
  and n = float_of_int mm.n
  and b = float_of_int mm.batch_count in
  ((m *. k) +. (m *. n)) *. b *. bytes_per_value

let elementwise_bytes ew = ew.elements *. 2. *. ew.memory_passes

let flops = function
  | Matmul mm -> matmul_flops mm
  | Elementwise ew -> ew.elements *. ew.flops_per_element
  | All_reduce _ -> 0.

let label = function
  | Matmul { label; _ } | Elementwise { label; _ } | All_reduce { label; _ } ->
      label

let pp ppf = function
  | Matmul mm ->
      Format.fprintf ppf "matmul %s: [%d x %d x %d] x%d%s" mm.label mm.m mm.k
        mm.n mm.batch_count
        (if mm.weights_streamed then " (streamed B)" else "")
  | Elementwise ew ->
      Format.fprintf ppf "elementwise %s: %.3g elems, %.1f flops/elem"
        ew.label ew.elements ew.flops_per_element
  | All_reduce c -> Format.fprintf ppf "all-reduce %s: %.3g bytes" c.label c.bytes
