(** Builds the per-device operator list for one Transformer layer under
    tensor parallelism (Megatron-style: attention heads and FFN columns are
    split across [tp] devices, with an all-reduce after the attention output
    projection and after the FFN down projection).

    Grouped-query attention is modeled by batching the query heads that
    share a K/V head into the row dimension of the attention matmuls, so
    FLOPs count every query head while K/V traffic counts only K/V heads. *)

type phase = Prefill | Decode

val phase_to_string : phase -> string

val ops : Model.t -> Request.t -> tp:int -> phase -> Op.t list
(** Raises [Invalid_argument] when [tp] is not positive or does not divide
    [Model.n_heads]. *)

val total_flops : Model.t -> Request.t -> tp:int -> phase -> float
(** Sum of op FLOPs on one device. *)

val weight_bytes_per_device : Model.t -> tp:int -> float
(** Layer weights resident on each device. *)

val kv_bytes_per_device : Model.t -> Request.t -> tp:int -> float
(** KV-cache bytes read by the modeled decode step on each device. *)
