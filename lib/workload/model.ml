type activation = Gelu | Swiglu

type moe = { num_experts : int; top_k : int }

type t = {
  name : string;
  num_layers : int;
  d_model : int;
  ffn_dim : int;
  n_heads : int;
  n_kv_heads : int;
  activation : activation;
  moe : moe option;
  bytes_per_param : float;
}

let make ?(bytes_per_param = 2.) ?moe ~name ~num_layers ~d_model ~ffn_dim
    ~n_heads ~n_kv_heads ~activation () =
  let check_pos what v = if v <= 0 then invalid_arg ("Model.make: " ^ what) in
  check_pos "num_layers must be positive" num_layers;
  check_pos "d_model must be positive" d_model;
  check_pos "ffn_dim must be positive" ffn_dim;
  check_pos "n_heads must be positive" n_heads;
  check_pos "n_kv_heads must be positive" n_kv_heads;
  if d_model mod n_heads <> 0 then
    invalid_arg "Model.make: d_model must be divisible by n_heads";
  if n_heads mod n_kv_heads <> 0 then
    invalid_arg "Model.make: n_heads must be divisible by n_kv_heads";
  (match moe with
  | Some { num_experts; top_k } ->
      if num_experts <= 0 || top_k <= 0 || top_k > num_experts then
        invalid_arg "Model.make: invalid MoE configuration"
  | None -> ());
  {
    name;
    num_layers;
    d_model;
    ffn_dim;
    n_heads;
    n_kv_heads;
    activation;
    moe;
    bytes_per_param;
  }

let head_dim t = t.d_model / t.n_heads
let kv_dim t = t.n_kv_heads * head_dim t
let uses_gqa t = t.n_kv_heads < t.n_heads

let ffn_matrices t = match t.activation with Gelu -> 2 | Swiglu -> 3
let active_experts t = match t.moe with Some m -> m.top_k | None -> 1
let ffn_weight_instances t = match t.moe with Some m -> m.num_experts | None -> 1

let params_per_layer t =
  let d = float_of_int t.d_model in
  let kv = float_of_int (kv_dim t) in
  let ffn = float_of_int t.ffn_dim in
  (* Q and output projections are d x d; K and V are d x kv. *)
  let attention = (2. *. d *. d) +. (2. *. d *. kv) in
  let feed_forward =
    float_of_int (ffn_matrices t) *. d *. ffn
    *. float_of_int (ffn_weight_instances t)
  in
  let router =
    match t.moe with
    | Some m -> d *. float_of_int m.num_experts
    | None -> 0.
  in
  attention +. feed_forward +. router

let total_params t = float_of_int t.num_layers *. params_per_layer t

let kv_cache_bytes_per_token t =
  2. *. float_of_int (kv_dim t) *. t.bytes_per_param

let flops_per_token t ~context =
  if context < 0 then invalid_arg "Model.flops_per_token: negative context";
  (* Only [top_k] of the expert FFNs compute per token. *)
  let d = float_of_int t.d_model and ffn = float_of_int t.ffn_dim in
  let attention = (2. *. d *. d) +. (2. *. d *. float_of_int (kv_dim t)) in
  let feed_forward =
    float_of_int (ffn_matrices t) *. d *. ffn
    *. float_of_int (active_experts t)
  in
  let router =
    match t.moe with Some m -> d *. float_of_int m.num_experts | None -> 0.
  in
  let weight_flops = 2. *. (attention +. feed_forward +. router) in
  (* Attention scores and value aggregation over the context, for all query
     heads (GQA shares K/V but not the dot products). *)
  let attn_flops =
    2. *. 2.
    *. float_of_int t.n_heads
    *. float_of_int context
    *. float_of_int (head_dim t)
  in
  weight_flops +. attn_flops

let gpt3_175b =
  make ~name:"GPT-3 175B" ~num_layers:96 ~d_model:12288 ~ffn_dim:49152
    ~n_heads:96 ~n_kv_heads:96 ~activation:Gelu ()

let llama3_8b =
  make ~name:"Llama 3 8B" ~num_layers:32 ~d_model:4096 ~ffn_dim:14336
    ~n_heads:32 ~n_kv_heads:8 ~activation:Swiglu ()

let llama2_70b =
  make ~name:"Llama 2 70B" ~num_layers:80 ~d_model:8192 ~ffn_dim:28672
    ~n_heads:64 ~n_kv_heads:8 ~activation:Swiglu ()

let llama3_70b =
  make ~name:"Llama 3 70B" ~num_layers:80 ~d_model:8192 ~ffn_dim:28672
    ~n_heads:64 ~n_kv_heads:8 ~activation:Swiglu ()

let gpt2_xl =
  make ~name:"GPT-2 XL" ~num_layers:48 ~d_model:1600 ~ffn_dim:6400 ~n_heads:25
    ~n_kv_heads:25 ~activation:Gelu ()

let mixtral_8x7b =
  make ~name:"Mixtral 8x7B" ~num_layers:32 ~d_model:4096 ~ffn_dim:14336
    ~n_heads:32 ~n_kv_heads:8 ~activation:Swiglu
    ~moe:{ num_experts = 8; top_k = 2 }
    ()

let presets =
  [ gpt3_175b; llama3_8b; llama2_70b; llama3_70b; gpt2_xl; mixtral_8x7b ]

let find_preset name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun m -> norm m.name = norm name) presets

(* --- JSON codec --- *)

module Json = Acs_util.Json

let activation_to_string = function Gelu -> "gelu" | Swiglu -> "swiglu"

let activation_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "gelu" -> Gelu
  | "swiglu" -> Swiglu
  | other -> raise (Json.Error (Printf.sprintf "unknown activation %S" other))

let to_json t =
  Json.obj
    [
      ("name", Json.string t.name);
      ("num_layers", Json.int t.num_layers);
      ("d_model", Json.int t.d_model);
      ("ffn_dim", Json.int t.ffn_dim);
      ("n_heads", Json.int t.n_heads);
      ("n_kv_heads", Json.int t.n_kv_heads);
      ("activation", Json.string (activation_to_string t.activation));
      ( "moe",
        Json.option
          (fun m ->
            Json.obj
              [
                ("num_experts", Json.int m.num_experts);
                ("top_k", Json.int m.top_k);
              ])
          t.moe );
      ("bytes_per_param", Json.float t.bytes_per_param);
    ]

let of_json = function
  | Json.String name -> begin
      match find_preset name with
      | Some m -> m
      | None ->
          raise
            (Json.Error
               (Printf.sprintf "unknown model preset %S (known: %s)" name
                  (String.concat ", " (List.map (fun m -> m.name) presets))))
    end
  | j ->
      let field k = Json.member k j in
      let moe =
        Json.to_option
          (fun m ->
            {
              num_experts = Json.to_int (Json.member "num_experts" m);
              top_k = Json.to_int (Json.member "top_k" m);
            })
          (field "moe")
      in
      let bytes_per_param =
        match field "bytes_per_param" with
        | Json.Null -> 2.
        | v -> Json.to_float v
      in
      make ~bytes_per_param ?moe
        ~name:(Json.to_str (field "name"))
        ~num_layers:(Json.to_int (field "num_layers"))
        ~d_model:(Json.to_int (field "d_model"))
        ~ffn_dim:(Json.to_int (field "ffn_dim"))
        ~n_heads:(Json.to_int (field "n_heads"))
        ~n_kv_heads:(Json.to_int (field "n_kv_heads"))
        ~activation:(activation_of_string (Json.to_str (field "activation")))
        ()

let pp ppf t =
  Format.fprintf ppf
    "%s: %d layers, d=%d, ffn=%d, heads=%d (kv=%d), %s, %.3g params" t.name
    t.num_layers t.d_model t.ffn_dim t.n_heads t.n_kv_heads
    (match t.activation with Gelu -> "GELU" | Swiglu -> "SwiGLU")
    (total_params t)
