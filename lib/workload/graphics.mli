(** Rasterization/ray-tracing workload descriptions.

    The paper's Sec. 5.4 argument is that gaming performance rests on the
    SIMT (vector) units, texture access latency and moderate bandwidth -
    not on systolic arrays - so policy can throttle AI while leaving gaming
    intact. This module gives that argument a quantitative counterpart: a
    frame is [pixels * shading FLOPs] of vector work, [pixels * texture
    bytes] of irregular memory traffic and optionally ray-traversal round
    trips, evaluated by {!Acs_perfmodel.Graphics_model}. *)

type scene = {
  name : string;
  width : int;
  height : int;
  overdraw : float;  (** average shaded fragments per visible pixel *)
  shading_flops_per_pixel : float;  (** vector FLOPs, geometry amortized in *)
  texture_bytes_per_pixel : float;  (** irregular reads per shaded pixel *)
  rt_rays_per_pixel : float;  (** 0 for pure raster *)
  rt_round_trips_per_ray : float;  (** dependent BVH memory accesses *)
}

val make :
  ?overdraw:float ->
  ?rt_rays_per_pixel:float ->
  ?rt_round_trips_per_ray:float ->
  name:string ->
  width:int ->
  height:int ->
  shading_flops_per_pixel:float ->
  texture_bytes_per_pixel:float ->
  unit ->
  scene

val esports_1080p : scene
(** Light shading at 1920x1080 - a CS/Valorant-class load. *)

val aaa_1440p : scene
(** Heavy raster shading at 2560x1440. *)

val raytraced_4k : scene
(** 3840x2160 hybrid rendering with 2 rays/pixel. *)

val presets : scene list
val shaded_pixels : scene -> float
val frame_flops : scene -> float
val frame_texture_bytes : scene -> float
val frame_rays : scene -> float
val pp : Format.formatter -> scene -> unit
