(** Inference workload settings.

    The paper simulates one Transformer layer with batch 32, input sequence
    2048 and output sequence 1024, and reports per-layer prefill (TTFT) and
    decoding (TBT) latencies. For decoding we model the mid-generation
    step, i.e. a KV context of [input + output/2] tokens. *)

type t = { batch : int; input_len : int; output_len : int }

val make : batch:int -> input_len:int -> output_len:int -> t
val default : t
(** batch 32, input 2048, output 1024. *)

val prefill_tokens : t -> int
(** [batch * input_len]. *)

val decode_context : t -> int
(** KV length of the modeled decode step: [input_len + output_len / 2]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Acs_util.Json.t
val of_json : Acs_util.Json.t -> t
(** [of_json (to_json r) = r]; validation as in {!make}. *)
