(** Precompiled workloads: the device-independent part of a layer's op
    list, flattened once per evaluation context.

    A design-space sweep evaluates thousands of devices against the {e
    same} (model, request, tp) context, yet [Layer.ops] re-derives the op
    list - allocating every op record and converting every dimension to
    float - per design point. [compile] runs the derivation once and
    reduces each op to the prefactors the latency model actually needs;
    [Engine.simulate_compiled] then evaluates a device against the flat
    arrays with no list traversal or re-derivation.

    All prefactors are computed with the exact expressions of the per-op
    path ({!Op.matmul_macs}, {!Op.matmul_weight_bytes},
    {!Op.elementwise_bytes}, ...), so compiled evaluation is bit-identical
    to the legacy path. *)

type matmul = {
  m : int;  (** rows, for the rounding/fill/feed efficiency terms *)
  n : int;  (** columns, for the rounding efficiency term *)
  macs : float;  (** [Op.matmul_macs] *)
  compulsory_bytes : float;
      (** weight + activation DRAM bytes ([Op.matmul_weight_bytes +.
          Op.matmul_activation_bytes]) *)
  mac_bytes : float;  (** [2 *. macs *. bytes_per_value], for L2 tiling *)
  out_bytes : float;  (** output operand bytes, for L2 tiling *)
  weights_streamed : bool;
}

type op =
  | Matmul of matmul
  | Elementwise of { flops : float; bytes : float }
  | All_reduce of { bytes : float }

type phase = {
  ops : op array;  (** in [Layer.ops] order *)
  flops : float;  (** [Layer.total_flops] of the phase *)
}

type t = {
  model : Model.t;
  request : Request.t;
  tp : int;
  prefill : phase;
  decode : phase;
}

val compile : ?tp:int -> ?request:Request.t -> bytes_per_value:float -> Model.t -> t
(** Defaults match [Engine.simulate]: [tp = 4] and [Request.default].
    Raises [Invalid_argument] (from [Layer.ops]) when [tp] is not positive
    or does not divide the model's head count. *)
