type scene = {
  name : string;
  width : int;
  height : int;
  overdraw : float;
  shading_flops_per_pixel : float;
  texture_bytes_per_pixel : float;
  rt_rays_per_pixel : float;
  rt_round_trips_per_ray : float;
}

let make ?(overdraw = 2.) ?(rt_rays_per_pixel = 0.)
    ?(rt_round_trips_per_ray = 12.) ~name ~width ~height
    ~shading_flops_per_pixel ~texture_bytes_per_pixel () =
  if width <= 0 || height <= 0 then
    invalid_arg "Graphics.make: resolution must be positive";
  if overdraw < 1. then invalid_arg "Graphics.make: overdraw below 1";
  if shading_flops_per_pixel <= 0. || texture_bytes_per_pixel < 0. then
    invalid_arg "Graphics.make: non-positive work per pixel";
  if rt_rays_per_pixel < 0. || rt_round_trips_per_ray < 0. then
    invalid_arg "Graphics.make: negative ray tracing parameters";
  {
    name;
    width;
    height;
    overdraw;
    shading_flops_per_pixel;
    texture_bytes_per_pixel;
    rt_rays_per_pixel;
    rt_round_trips_per_ray;
  }

let esports_1080p =
  make ~name:"esports-1080p" ~width:1920 ~height:1080 ~overdraw:1.6
    ~shading_flops_per_pixel:2_500. ~texture_bytes_per_pixel:48. ()

let aaa_1440p =
  make ~name:"AAA-1440p" ~width:2560 ~height:1440 ~overdraw:2.4
    ~shading_flops_per_pixel:14_000. ~texture_bytes_per_pixel:120. ()

let raytraced_4k =
  make ~name:"raytraced-4k" ~width:3840 ~height:2160 ~overdraw:2.
    ~shading_flops_per_pixel:10_000. ~texture_bytes_per_pixel:96.
    ~rt_rays_per_pixel:2. ()

let presets = [ esports_1080p; aaa_1440p; raytraced_4k ]

let shaded_pixels s = float_of_int (s.width * s.height) *. s.overdraw
let frame_flops s = shaded_pixels s *. s.shading_flops_per_pixel
let frame_texture_bytes s = shaded_pixels s *. s.texture_bytes_per_pixel

let frame_rays s =
  float_of_int (s.width * s.height) *. s.rt_rays_per_pixel

let pp ppf s =
  Format.fprintf ppf "%s (%dx%d, %.2g GFLOP + %.2g MB texture%s per frame)"
    s.name s.width s.height
    (frame_flops s /. 1e9)
    (frame_texture_bytes s /. 1e6)
    (if s.rt_rays_per_pixel > 0. then
       Printf.sprintf " + %.2g Mrays" (frame_rays s /. 1e6)
     else "")
