(** Per-device operators of one Transformer layer.

    Dimensions are already partitioned for tensor parallelism: a layer
    builder (see {!Layer}) emits the shapes each device executes, plus the
    collective operations between devices. *)

type matmul = {
  label : string;
  m : int;  (** rows of A / output *)
  k : int;  (** contraction dimension *)
  n : int;  (** columns of B / output *)
  batch_count : int;  (** independent instances (e.g. per attention head) *)
  weights_streamed : bool;
      (** true when the B operand is layer weights or KV cache resident in
          HBM and must be streamed in (dominates decode latency); false for
          activation-activation products whose operands were just
          produced. *)
}

type elementwise = {
  label : string;
  elements : float;  (** values processed, per device *)
  flops_per_element : float;
  memory_passes : float;
      (** DRAM traffic in multiples of [elements * 2 bytes]; e.g. softmax
          makes ~5 passes (max, subtract-exp, sum, divide), an activation
          function ~3 (read, read gate, write). *)
}

type collective = {
  label : string;
  bytes : float;  (** payload per participating device *)
}

type t =
  | Matmul of matmul
  | Elementwise of elementwise
  | All_reduce of collective

val matmul_flops : matmul -> float
(** [2 * m * k * n * batch_count]. *)

val matmul_macs : matmul -> float

val matmul_weight_bytes : matmul -> bytes_per_value:float -> float
(** Bytes of the streamed B operand ([k * n * batch_count * bytes]); zero
    when [weights_streamed] is false. *)

val matmul_activation_bytes : matmul -> bytes_per_value:float -> float
(** A-operand reads plus C writes. *)

val elementwise_bytes : elementwise -> float
val flops : t -> float
(** Arithmetic work of the op (collectives report zero). *)

val label : t -> string
val pp : Format.formatter -> t -> unit
