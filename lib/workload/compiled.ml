(* Device-independent precompilation of a layer's operator list.

   [Layer.ops] rebuilds the full op list - with per-op record and list
   allocation and a dozen [float_of_int] conversions each - for every
   design point a sweep evaluates, even though the ops depend only on
   (model, request, tp, phase) and never on the device. This module runs
   [Layer.ops] once per evaluation context and flattens each phase into an
   array of ops whose device-independent prefactors (MAC counts, operand
   bytes, elementwise flops and traffic, collective bytes) are already
   reduced to floats. The per-device latency model then only combines
   these prefactors with per-device terms.

   Every prefactor is computed by the exact expression the legacy per-op
   path uses (via the {!Op} helpers), so a compiled evaluation is
   bit-identical to the list-walking one - the property suite asserts
   this against [Engine.simulate]. *)

type matmul = {
  m : int;  (** rows, for the rounding/fill/feed efficiency terms *)
  n : int;  (** columns, for the rounding efficiency term *)
  macs : float;  (** [Op.matmul_macs] *)
  compulsory_bytes : float;  (** weight + activation DRAM traffic *)
  mac_bytes : float;  (** [2 * macs * bytes_per_value], for L2 tiling *)
  out_bytes : float;  (** output operand bytes, for L2 tiling *)
  weights_streamed : bool;
}

type op =
  | Matmul of matmul
  | Elementwise of { flops : float; bytes : float }
  | All_reduce of { bytes : float }

type phase = {
  ops : op array;  (** in [Layer.ops] order *)
  flops : float;  (** [Layer.total_flops] of the phase *)
}

type t = {
  model : Model.t;
  request : Request.t;
  tp : int;
  prefill : phase;
  decode : phase;
}

let compile_op ~bytes_per_value = function
  | Op.Matmul mm ->
      Matmul
        {
          m = mm.Op.m;
          n = mm.Op.n;
          macs = Op.matmul_macs mm;
          compulsory_bytes =
            Op.matmul_weight_bytes mm ~bytes_per_value
            +. Op.matmul_activation_bytes mm ~bytes_per_value;
          mac_bytes = 2. *. Op.matmul_macs mm *. bytes_per_value;
          out_bytes =
            float_of_int (mm.Op.m * mm.Op.n * mm.Op.batch_count)
            *. bytes_per_value;
          weights_streamed = mm.Op.weights_streamed;
        }
  | Op.Elementwise ew ->
      Elementwise
        {
          flops = ew.Op.elements *. ew.Op.flops_per_element;
          bytes = Op.elementwise_bytes ew;
        }
  | Op.All_reduce c -> All_reduce { bytes = c.Op.bytes }

let compile_phase ~bytes_per_value model request ~tp phase =
  let ops = Layer.ops model request ~tp phase in
  {
    ops = Array.of_list (List.map (compile_op ~bytes_per_value) ops);
    flops = List.fold_left (fun acc op -> acc +. Op.flops op) 0. ops;
  }

let compile ?(tp = 4) ?(request = Request.default) ~bytes_per_value model =
  {
    model;
    request;
    tp;
    prefill = compile_phase ~bytes_per_value model request ~tp Layer.Prefill;
    decode = compile_phase ~bytes_per_value model request ~tp Layer.Decode;
  }
