type phase = Prefill | Decode

let phase_to_string = function Prefill -> "prefill" | Decode -> "decode"

let ceil_div a b = (a + b - 1) / b

type shard = {
  heads : int;  (** query heads per device *)
  kv_heads : int;
  d_shard : int;  (** d_model / tp *)
  ffn_shard : int;
}

let shard model ~tp =
  if tp <= 0 then invalid_arg "Layer.ops: tp must be positive";
  if model.Model.n_heads mod tp <> 0 then
    invalid_arg "Layer.ops: tp must divide the model's head count";
  {
    heads = model.Model.n_heads / tp;
    kv_heads = max 1 (ceil_div model.Model.n_kv_heads tp);
    d_shard = ceil_div model.Model.d_model tp;
    ffn_shard = ceil_div model.Model.ffn_dim tp;
  }

let ops model request ~tp phase =
  let s = shard model ~tp in
  let d = model.Model.d_model in
  let hd = Model.head_dim model in
  let batch = request.Request.batch in
  let q_len =
    match phase with Prefill -> request.Request.input_len | Decode -> 1
  in
  let kv_len =
    match phase with
    | Prefill -> request.Request.input_len
    | Decode -> Request.decode_context request
  in
  let tokens = batch * q_len in
  let group = model.Model.n_heads / model.Model.n_kv_heads in
  let norm label =
    (* Norms are computed redundantly on each device over the full hidden
       dimension (standard tensor parallelism). *)
    Op.Elementwise
      {
        label;
        elements = float_of_int tokens *. float_of_int d;
        flops_per_element = 6.;
        memory_passes = 3.;
      }
  in
  let residual label =
    Op.Elementwise
      {
        label;
        elements = float_of_int tokens *. float_of_int d;
        flops_per_element = 1.;
        memory_passes = 3.;
      }
  in
  let qkv =
    Op.Matmul
      {
        label = "qkv_proj";
        m = tokens;
        k = d;
        n = s.d_shard + (2 * s.kv_heads * hd);
        batch_count = 1;
        weights_streamed = true;
      }
  in
  let kv_write =
    (* Appending this step's K and V to the cache. *)
    Op.Elementwise
      {
        label = "kv_cache_write";
        elements = float_of_int tokens *. float_of_int (2 * s.kv_heads * hd);
        flops_per_element = 0.;
        memory_passes = 2.;
      }
  in
  let scores =
    Op.Matmul
      {
        label = "attn_scores";
        m = q_len * group;
        k = hd;
        n = kv_len;
        batch_count = batch * s.kv_heads;
        weights_streamed = true;
      }
  in
  let softmax =
    Op.Elementwise
      {
        label = "softmax";
        elements =
          float_of_int (batch * s.heads)
          *. float_of_int q_len *. float_of_int kv_len;
        flops_per_element = 8.;
        memory_passes = 5.;
      }
  in
  let attn_value =
    Op.Matmul
      {
        label = "attn_value";
        m = q_len * group;
        k = kv_len;
        n = hd;
        batch_count = batch * s.kv_heads;
        weights_streamed = true;
      }
  in
  let out_proj =
    Op.Matmul
      {
        label = "out_proj";
        m = tokens;
        k = s.heads * hd;
        n = d;
        batch_count = 1;
        weights_streamed = true;
      }
  in
  let all_reduce label =
    Op.All_reduce
      { label; bytes = float_of_int tokens *. float_of_int d *. 2. }
  in
  let ffn_up_cols =
    match model.Model.activation with
    | Model.Gelu -> s.ffn_shard
    | Model.Swiglu -> 2 * s.ffn_shard
  in
  (* Mixture-of-experts: tokens route to [top_k] of [num_experts] expert
     FFNs. Each expert processes tokens*top_k/num_experts rows on average
     but its full weight matrix must stream in, which is why MoE decoding
     is so bandwidth hungry. Dense models are the 1-expert special case. *)
  let experts = Model.ffn_weight_instances model in
  let rows_per_expert =
    max 1 (tokens * Model.active_experts model / experts)
  in
  let router =
    match model.Model.moe with
    | None -> []
    | Some { Model.num_experts; _ } ->
        [
          Op.Matmul
            {
              label = "moe_router";
              m = tokens;
              k = d;
              n = num_experts;
              batch_count = 1;
              weights_streamed = true;
            };
        ]
  in
  let ffn_up =
    Op.Matmul
      {
        label = "ffn_up";
        m = rows_per_expert;
        k = d;
        n = ffn_up_cols;
        batch_count = experts;
        weights_streamed = true;
      }
  in
  let activation =
    let label, passes, flops =
      match model.Model.activation with
      | Model.Gelu -> ("gelu", 2., 8.)
      | Model.Swiglu -> ("swiglu", 3., 6.)
    in
    Op.Elementwise
      {
        label;
        elements =
          float_of_int (rows_per_expert * experts) *. float_of_int s.ffn_shard;
        flops_per_element = flops;
        memory_passes = passes;
      }
  in
  let ffn_down =
    Op.Matmul
      {
        label = "ffn_down";
        m = rows_per_expert;
        k = s.ffn_shard;
        n = d;
        batch_count = experts;
        weights_streamed = true;
      }
  in
  [
    norm "norm_attn";
    qkv;
    kv_write;
    scores;
    softmax;
    attn_value;
    out_proj;
    all_reduce "all_reduce_attn";
    residual "residual_attn";
    norm "norm_ffn";
  ]
  @ router
  @ [
      ffn_up;
      activation;
      ffn_down;
      all_reduce "all_reduce_ffn";
      residual "residual_ffn";
    ]

let total_flops model request ~tp phase =
  List.fold_left (fun acc op -> acc +. Op.flops op) 0.
    (ops model request ~tp phase)

let weight_bytes_per_device model ~tp =
  Model.params_per_layer model *. model.Model.bytes_per_param
  /. float_of_int tp

let kv_bytes_per_device model request ~tp =
  let s = shard model ~tp in
  let hd = Model.head_dim model in
  float_of_int (Request.decode_context request)
  *. float_of_int request.Request.batch
  *. float_of_int (2 * s.kv_heads * hd)
  *. model.Model.bytes_per_param
