(** Decoder-only Transformer model descriptions (paper Table 2). *)

type activation =
  | Gelu  (** one up-projection of width [ffn_dim], as in GPT-3 *)
  | Swiglu  (** gate + up projections of width [ffn_dim], as in Llama *)

type moe = {
  num_experts : int;
  top_k : int;  (** experts activated per token *)
}
(** Mixture-of-experts feed-forward: the FFN weights are replicated
    [num_experts] times but each token only computes through [top_k] of
    them - the Switch/Mixtral-style scaling the paper's introduction cites
    as the driver of trillion-parameter models. *)

type t = {
  name : string;
  num_layers : int;
  d_model : int;
  ffn_dim : int;
  n_heads : int;
  n_kv_heads : int;  (** < n_heads means grouped-query attention *)
  activation : activation;
  moe : moe option;
  bytes_per_param : float;  (** 2.0 for FP16 inference *)
}

val make :
  ?bytes_per_param:float ->
  ?moe:moe ->
  name:string ->
  num_layers:int ->
  d_model:int ->
  ffn_dim:int ->
  n_heads:int ->
  n_kv_heads:int ->
  activation:activation ->
  unit ->
  t
(** Raises [Invalid_argument] when [d_model] is not divisible by [n_heads],
    [n_heads] not divisible by [n_kv_heads], or an MoE config has
    [top_k > num_experts] or non-positive fields. *)

val active_experts : t -> int
(** [top_k] for MoE models, 1 for dense ones. *)

val ffn_weight_instances : t -> int
(** [num_experts] for MoE models, 1 for dense ones. *)

val head_dim : t -> int
val kv_dim : t -> int
(** [n_kv_heads * head_dim], the width of the K and V projections. *)

val uses_gqa : t -> bool

val params_per_layer : t -> float
(** Weight parameters in one Transformer layer (attention projections plus
    FFN; biases and norm scales are negligible and excluded). *)

val total_params : t -> float
(** [num_layers *. params_per_layer]; embeddings excluded, which is why
    e.g. GPT-3 reports ~174e9 rather than 175e9. *)

val kv_cache_bytes_per_token : t -> float
(** K and V bytes appended per token per layer. *)

val flops_per_token : t -> context:int -> float
(** Dense FLOPs to process one token of one layer at a given attention
    context length (2 FLOPs per MAC). *)

(* Presets (paper Table 2 plus extras used by the examples). *)

val gpt3_175b : t
val llama3_8b : t
val llama2_70b : t
val llama3_70b : t
val gpt2_xl : t
val mixtral_8x7b : t
(** 8-expert top-2 MoE over a Mistral-7B-shaped backbone. *)

val presets : t list
val find_preset : string -> t option
val pp : Format.formatter -> t -> unit

(** {2 JSON codec (scenario manifests)} *)

val activation_to_string : activation -> string

val to_json : t -> Acs_util.Json.t
(** Full record encoding; [moe] is omitted for dense models. *)

val of_json : Acs_util.Json.t -> t
(** Accepts either a preset name (a JSON string such as ["GPT-3 175B"]) or
    the full record form emitted by {!to_json} ([bytes_per_param]
    defaults to 2 when absent). [of_json (to_json m) = m]. Raises
    {!Acs_util.Json.Error} on unknown presets and malformed records,
    [Invalid_argument] on shape violations (via {!make}). *)
