type t = { batch : int; input_len : int; output_len : int }

let make ~batch ~input_len ~output_len =
  if batch <= 0 || input_len <= 0 || output_len < 0 then
    invalid_arg "Request.make: sizes must be positive";
  { batch; input_len; output_len }

let default = make ~batch:32 ~input_len:2048 ~output_len:1024
let prefill_tokens t = t.batch * t.input_len
let decode_context t = t.input_len + (t.output_len / 2)

let pp ppf t =
  Format.fprintf ppf "batch %d, input %d, output %d" t.batch t.input_len
    t.output_len

module Json = Acs_util.Json

let to_json t =
  Json.obj
    [
      ("batch", Json.int t.batch);
      ("input_len", Json.int t.input_len);
      ("output_len", Json.int t.output_len);
    ]

let of_json j =
  make
    ~batch:(Json.to_int (Json.member "batch" j))
    ~input_len:(Json.to_int (Json.member "input_len" j))
    ~output_len:(Json.to_int (Json.member "output_len" j))
