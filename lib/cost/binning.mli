(** Die binning and salvage economics.

    The paper (Secs. 2.2-2.3, 6.3) describes how export-compliant SKUs are
    built from the same dies as flagships: partially defective dies are
    salvaged by disabling cores (A100 -> A30-style) or by shipping dies
    whose interconnect did not meet flagship spec as bandwidth-capped
    export parts (H100 -> H800-style). This module models that pipeline:

    Defects are Poisson with the process defect density over the die area.
    Each defect lands in the core region (disabling one core), the IO
    region (losing the flagship interconnect spec), or the uncore region
    (fatal), with probabilities proportional to the configured area
    fractions. A SKU is a minimum good-core count, an intact-IO
    requirement, and a price; each die sells as the highest-priced SKU it
    qualifies for. *)

type regions = {
  core_fraction : float;  (** area share where a defect disables one core *)
  io_fraction : float;  (** area share where a defect breaks the IO spec *)
}
(** The remaining area share is fatal. Fractions must be non-negative and
    sum to at most 1. *)

type die_spec = {
  die_area_mm2 : float;
  total_cores : int;
  regions : regions;
}

type sku = {
  sku_name : string;
  min_good_cores : int;
  requires_io : bool;
  price_usd : float;
}

type state = { good_cores : int; io_intact : bool }

val state_distribution :
  process:Cost_model.process_cost -> die_spec -> (state * float) list
(** Probability of each non-dead die state; probabilities sum to the die's
    survival probability (< 1). Core-defect counts are truncated once the
    tail probability is negligible. *)

val survival_probability :
  process:Cost_model.process_cost -> die_spec -> float

val assign : sku list -> state -> sku option
(** Highest-priced SKU the state qualifies for. *)

type economics = {
  sku_mix : (string * float) list;  (** probability a die sells as each SKU *)
  scrap_fraction : float;  (** dead or unsellable *)
  revenue_per_wafer_usd : float;
  profit_per_wafer_usd : float;  (** revenue minus wafer cost *)
}

val wafer_economics :
  process:Cost_model.process_cost -> die_spec -> sku list -> economics
(** Raises [Invalid_argument] on an empty SKU list or invalid spec. *)

val pp_economics : Format.formatter -> economics -> unit
