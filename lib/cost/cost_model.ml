type process_cost = {
  wafer_cost_usd : float;
  wafer_diameter_mm : float;
  defect_density_per_cm2 : float;
}

let n7 =
  {
    wafer_cost_usd = 9346.;
    wafer_diameter_mm = 300.;
    defect_density_per_cm2 = 0.13;
  }

let n5 =
  {
    wafer_cost_usd = 16988.;
    wafer_diameter_mm = 300.;
    defect_density_per_cm2 = 0.10;
  }

type yield_model = Seeds | Murphy | Negative_binomial of float

let pi = 4. *. atan 1.

let dies_per_wafer ~process ~die_area_mm2 =
  if die_area_mm2 <= 0. then
    invalid_arg "Cost_model.dies_per_wafer: area must be positive";
  let d = process.wafer_diameter_mm in
  let r = d /. 2. in
  let gross =
    (pi *. r *. r /. die_area_mm2) -. (pi *. d /. sqrt (2. *. die_area_mm2))
  in
  if gross < 1. then
    invalid_arg "Cost_model.dies_per_wafer: die does not fit the wafer";
  int_of_float gross

let yield_ ?(model = Seeds) ~process ~die_area_mm2 () =
  if die_area_mm2 <= 0. then
    invalid_arg "Cost_model.yield_: area must be positive";
  let defects = die_area_mm2 /. 100. *. process.defect_density_per_cm2 in
  match model with
  | Seeds -> exp (-.defects)
  | Murphy ->
      if defects = 0. then 1.
      else ((1. -. exp (-.defects)) /. defects) ** 2.
  | Negative_binomial alpha ->
      if alpha <= 0. then
        invalid_arg "Cost_model.yield_: alpha must be positive"
      else (1. +. (defects /. alpha)) ** -.alpha

let die_cost_usd ~process ~die_area_mm2 =
  process.wafer_cost_usd
  /. float_of_int (dies_per_wafer ~process ~die_area_mm2)

let good_die_cost_usd ?(model = Seeds) ~process ~die_area_mm2 () =
  die_cost_usd ~process ~die_area_mm2
  /. yield_ ~model ~process ~die_area_mm2 ()

let cost_of_good_dies_usd ?(model = Seeds) ~process ~die_area_mm2 ~count () =
  if count < 0 then
    invalid_arg "Cost_model.cost_of_good_dies_usd: negative count";
  float_of_int count *. good_die_cost_usd ~model ~process ~die_area_mm2 ()

let package_cost_usd ?(model = Seeds) ?(assembly_yield_per_die = 0.99)
    ?(substrate_usd_per_mm2 = 0.08) ?(assembly_fixed_usd = 25.) ~process
    ~die_areas_mm2 () =
  if die_areas_mm2 = [] then
    invalid_arg "Cost_model.package_cost_usd: no dies";
  if assembly_yield_per_die <= 0. || assembly_yield_per_die > 1. then
    invalid_arg "Cost_model.package_cost_usd: assembly yield outside (0,1]";
  let silicon =
    List.fold_left
      (fun acc area ->
        acc +. good_die_cost_usd ~model ~process ~die_area_mm2:area ())
      0. die_areas_mm2
  in
  let dies = List.length die_areas_mm2 in
  let assembly_yield = assembly_yield_per_die ** float_of_int dies in
  let total_area = List.fold_left ( +. ) 0. die_areas_mm2 in
  (silicon /. assembly_yield)
  +. (substrate_usd_per_mm2 *. total_area)
  +. assembly_fixed_usd

let chiplet_advantage ?(model = Seeds) ~process ~total_area_mm2 ~dies () =
  if dies <= 0 then invalid_arg "Cost_model.chiplet_advantage: dies";
  let split =
    List.init dies (fun _ -> total_area_mm2 /. float_of_int dies)
  in
  match
    package_cost_usd ~model ~process ~die_areas_mm2:[ total_area_mm2 ] ()
  with
  | monolithic ->
      Some (monolithic /. package_cost_usd ~model ~process ~die_areas_mm2:split ())
  | exception Invalid_argument _ -> None
