type regions = { core_fraction : float; io_fraction : float }

type die_spec = {
  die_area_mm2 : float;
  total_cores : int;
  regions : regions;
}

type sku = {
  sku_name : string;
  min_good_cores : int;
  requires_io : bool;
  price_usd : float;
}

type state = { good_cores : int; io_intact : bool }

let validate spec =
  if spec.die_area_mm2 <= 0. then invalid_arg "Binning: die area";
  if spec.total_cores <= 0 then invalid_arg "Binning: core count";
  let { core_fraction; io_fraction } = spec.regions in
  if core_fraction < 0. || io_fraction < 0.
     || core_fraction +. io_fraction > 1. +. 1e-9
  then invalid_arg "Binning: region fractions must be in [0,1] and sum <= 1"

let poisson_pmf lambda n =
  (* Computed iteratively to avoid overflow for moderate n. *)
  let rec go i acc =
    if i > n then acc else go (i + 1) (acc *. lambda /. float_of_int i)
  in
  go 1 (exp (-.lambda))

let state_distribution ~process spec =
  validate spec;
  let lambda =
    spec.die_area_mm2 /. 100.
    *. process.Cost_model.defect_density_per_cm2
  in
  let lambda_core = lambda *. spec.regions.core_fraction in
  let lambda_io = lambda *. spec.regions.io_fraction in
  let lambda_fatal = lambda -. lambda_core -. lambda_io in
  let p_no_fatal = exp (-.lambda_fatal) in
  let p_io_intact = exp (-.lambda_io) in
  (* Independent thinned Poisson processes per region. Truncate the
     core-defect count when the remaining tail is negligible (and never
     beyond the physical core count - more defects than cores lands in the
     all-cores-dead bucket, which no SKU can use anyway). *)
  let max_n =
    min spec.total_cores
      (int_of_float (Float.ceil ((4. *. lambda_core) +. 20.)))
  in
  let states = ref [] in
  for n = 0 to max_n do
    let p_cores = poisson_pmf lambda_core n in
    let good_cores = spec.total_cores - n in
    let base = p_no_fatal *. p_cores in
    states :=
      ({ good_cores; io_intact = false }, base *. (1. -. p_io_intact))
      :: ({ good_cores; io_intact = true }, base *. p_io_intact)
      :: !states
  done;
  List.filter (fun (_, p) -> p > 0.) (List.rev !states)

let survival_probability ~process spec =
  List.fold_left (fun acc (_, p) -> acc +. p) 0.
    (state_distribution ~process spec)

let assign skus state =
  let eligible =
    List.filter
      (fun sku ->
        state.good_cores >= sku.min_good_cores
        && ((not sku.requires_io) || state.io_intact))
      skus
  in
  match eligible with
  | [] -> None
  | first :: rest ->
      Some
        (List.fold_left
           (fun best sku -> if sku.price_usd > best.price_usd then sku else best)
           first rest)

type economics = {
  sku_mix : (string * float) list;
  scrap_fraction : float;
  revenue_per_wafer_usd : float;
  profit_per_wafer_usd : float;
}

let wafer_economics ~process spec skus =
  if skus = [] then invalid_arg "Binning.wafer_economics: no SKUs";
  validate spec;
  let states = state_distribution ~process spec in
  let tally = Hashtbl.create (List.length skus) in
  let sellable = ref 0. in
  let revenue_per_die = ref 0. in
  List.iter
    (fun (state, p) ->
      match assign skus state with
      | Some sku ->
          sellable := !sellable +. p;
          revenue_per_die := !revenue_per_die +. (p *. sku.price_usd);
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt tally sku.sku_name)
          in
          Hashtbl.replace tally sku.sku_name (prev +. p)
      | None -> ())
    states;
  let dies =
    float_of_int
      (Cost_model.dies_per_wafer ~process ~die_area_mm2:spec.die_area_mm2)
  in
  let revenue = dies *. !revenue_per_die in
  {
    sku_mix =
      List.filter_map
        (fun sku -> Option.map (fun p -> (sku.sku_name, p)) (Hashtbl.find_opt tally sku.sku_name))
        (List.sort_uniq compare skus);
    scrap_fraction = 1. -. !sellable;
    revenue_per_wafer_usd = revenue;
    profit_per_wafer_usd = revenue -. process.Cost_model.wafer_cost_usd;
  }

let pp_economics ppf e =
  Format.fprintf ppf "revenue $%.0f/wafer (profit $%.0f), scrap %.1f%%; mix:"
    e.revenue_per_wafer_usd e.profit_per_wafer_usd (100. *. e.scrap_fraction);
  List.iter
    (fun (name, p) -> Format.fprintf ppf " %s %.1f%%" name (100. *. p))
    e.sku_mix
