(** Silicon manufacturing cost model.

    Reverse-engineered from the paper's Table 4 (see DESIGN.md): a 300 mm
    7 nm wafer at $9,346, the circular dies-per-wafer approximation
    [pi r^2 / A - pi d / sqrt(2 A)], and a Seeds yield model
    [exp(-area_cm2 * d0)] with defect density 0.13 /cm^2. These reproduce
    the paper's $134 / $88 die costs and $350M / $177M per-million-good-dies
    figures within ~1%. *)

type process_cost = {
  wafer_cost_usd : float;
  wafer_diameter_mm : float;
  defect_density_per_cm2 : float;
}

val n7 : process_cost
(** The 7 nm point used throughout the paper. *)

val n5 : process_cost
(** A 5 nm point ($16,988 wafer, 0.10 /cm^2) for what-if studies. *)

type yield_model =
  | Seeds  (** Y = exp(-A D0); the paper's implied model *)
  | Murphy  (** Y = ((1 - exp(-A D0)) / (A D0))^2 *)
  | Negative_binomial of float  (** alpha clustering parameter *)

val dies_per_wafer : process:process_cost -> die_area_mm2:float -> int
(** Raises [Invalid_argument] when the die does not fit the wafer or the
    area is non-positive. *)

val yield_ : ?model:yield_model -> process:process_cost -> die_area_mm2:float -> unit -> float
(** Fraction of dies that are defect-free, in (0, 1]. Defaults to
    [Seeds]. *)

val die_cost_usd : process:process_cost -> die_area_mm2:float -> float
(** Wafer cost divided by dies per wafer ("silicon die cost" in Table 4:
    not yield-adjusted). *)

val good_die_cost_usd :
  ?model:yield_model -> process:process_cost -> die_area_mm2:float -> unit -> float
(** [die_cost / yield]. *)

val cost_of_good_dies_usd :
  ?model:yield_model ->
  process:process_cost ->
  die_area_mm2:float ->
  count:int ->
  unit ->
  float
(** Total silicon cost to obtain [count] good dies (Table 4's "1M Good
    Dies Cost"). *)

val package_cost_usd :
  ?model:yield_model ->
  ?assembly_yield_per_die:float ->
  ?substrate_usd_per_mm2:float ->
  ?assembly_fixed_usd:float ->
  process:process_cost ->
  die_areas_mm2:float list ->
  unit ->
  float
(** Cost of one known-good multi-die package: the good-die cost of every
    die, divided by the compound assembly yield (default 99% per die
    placed), plus an interposer/substrate charge (default $0.08/mm^2 of
    total silicon) and a fixed assembly-and-test charge (default $25).
    A singleton list gives the monolithic packaged cost. Raises
    [Invalid_argument] on an empty list. *)

val chiplet_advantage :
  ?model:yield_model ->
  process:process_cost ->
  total_area_mm2:float ->
  dies:int ->
  unit ->
  float option
(** Ratio (monolithic packaged cost) / (cost split over [dies] equal
    chiplets) for the same total silicon; [None] when the monolithic die
    cannot be manufactured (beyond wafer/reticle practicality the caller
    checks reticle separately - this returns [None] only when the die does
    not fit the wafer at all). *)
