(* Command-line front end: classify devices, simulate designs, run DSEs and
   inspect the device survey without writing any OCaml. *)

open Cmdliner
open Core

(* --- shared argument converters --- *)

let model_conv =
  let parse s =
    match Model.find_preset s with
    | Some m -> Ok m
    | None ->
        let known = String.concat ", " (List.map (fun m -> m.Model.name) Model.presets) in
        Error (`Msg (Printf.sprintf "unknown model %S (known: %s)" s known))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf m.Model.name)

let model_arg =
  Arg.(
    value
    & opt model_conv Model.gpt3_175b
    & info [ "model" ] ~docv:"MODEL" ~doc:"LLM preset, e.g. 'GPT-3 175B' or 'Llama 3 8B'.")

let gpu_conv =
  let parse s =
    match Database.find s with
    | Some g -> Ok g
    | None -> Error (`Msg (Printf.sprintf "unknown device %S (see `acs survey`)" s))
  in
  Arg.conv (parse, fun ppf g -> Format.pp_print_string ppf g.Gpu.name)

let device_args =
  let like =
    Arg.(value & opt (some gpu_conv) None
         & info [ "like" ]
             ~doc:"Approximate a real product from the database (e.g. 'H20') \
                   instead of specifying template parameters.")
  in
  let cores = Arg.(value & opt int 108 & info [ "cores" ] ~doc:"Core count.") in
  let lanes = Arg.(value & opt int 4 & info [ "lanes" ] ~doc:"Lanes per core.") in
  let dim = Arg.(value & opt int 16 & info [ "systolic" ] ~doc:"Systolic array dimension (square).") in
  let l1 = Arg.(value & opt float 192. & info [ "l1" ] ~doc:"L1 per core, KB.") in
  let l2 = Arg.(value & opt float 40. & info [ "l2" ] ~doc:"Shared L2, MB.") in
  let membw = Arg.(value & opt float 2. & info [ "membw" ] ~doc:"HBM bandwidth, TB/s.") in
  let memgb = Arg.(value & opt float 80. & info [ "memgb" ] ~doc:"HBM capacity, GB.") in
  let devbw = Arg.(value & opt float 600. & info [ "devbw" ] ~doc:"Device interconnect, GB/s.") in
  let build like cores lanes dim l1 l2 membw memgb devbw =
    match like with
    | Some gpu -> Gpu.to_template gpu
    | None ->
        Device.make ~name:"cli-device" ~core_count:cores ~lanes_per_core:lanes
          ~systolic:(Systolic.square dim) ~l1_kb:l1 ~l2_mb:l2
          ~memory:(Memory.make ~capacity_gb:memgb ~bandwidth_tb_s:membw)
          ~interconnect:(Interconnect.of_total_gb_s devbw)
          ()
  in
  Term.(const build $ like $ cores $ lanes $ dim $ l1 $ l2 $ membw $ memgb $ devbw)

(* --- classify --- *)

let classify_spec spec =
  Format.printf "spec: %a@." Spec.pp spec;
  Format.printf "October 2022: %s@."
    (Acr_2022.classification_to_string (Acr_2022.classify spec));
  List.iter
    (fun market ->
      Format.printf "October 2023 (%s): %s@."
        (Acr_2023.market_to_string market)
        (Acr_2023.tier_to_string (Acr_2023.classify market spec)))
    [ Acr_2023.Data_center; Acr_2023.Non_data_center ];
  (match Acr_2023.min_area_unregulated ~tpp:spec.Spec.tpp with
  | Some floor_ when floor_ > spec.Spec.die_area_mm2 ->
      Format.printf "area floor to be unregulated (DC): %.0f mm^2@." floor_
  | Some _ | None -> ());
  Format.printf "timeline (as a data-center part):@.";
  List.iter
    (fun (regime, ruling) ->
      Format.printf "  %-18s %s@."
        (Timeline.regime_to_string regime)
        (Timeline.ruling_to_string ruling))
    (Timeline.history ~market:Acr_2023.Data_center spec)

let classify_cmd =
  let device_name =
    Arg.(value & opt (some string) None & info [ "device" ] ~doc:"Classify a real device from the database by name, e.g. 'H100'.")
  in
  let tpp = Arg.(value & opt (some float) None & info [ "tpp" ] ~doc:"TPP of a hypothetical device.") in
  let bw = Arg.(value & opt float 600. & info [ "bw" ] ~doc:"Device bandwidth, GB/s.") in
  let area = Arg.(value & opt float 800. & info [ "area" ] ~doc:"Die area, mm^2.") in
  let run device_name tpp bw area =
    match (device_name, tpp) with
    | Some n, _ -> begin
        match Database.find n with
        | Some g ->
            Format.printf "%a@." Gpu.pp g;
            classify_spec (Gpu.spec g);
            `Ok ()
        | None -> `Error (false, Printf.sprintf "unknown device %S" n)
      end
    | None, Some tpp ->
        classify_spec (Spec.make ~tpp ~device_bw_gb_s:bw ~die_area_mm2:area ());
        `Ok ()
    | None, None -> `Error (true, "pass either --device or --tpp")
  in
  Cmd.v (Cmd.info "classify" ~doc:"Classify a device under the Advanced Computing Rules.")
    Term.(ret (const run $ device_name $ tpp $ bw $ area))

(* --- simulate --- *)

let simulate_cmd =
  let tp = Arg.(value & opt int 4 & info [ "tp" ] ~doc:"Tensor-parallel devices.") in
  let batch = Arg.(value & opt int 32 & info [ "batch" ] ~doc:"Batch size.") in
  let input = Arg.(value & opt int 2048 & info [ "input" ] ~doc:"Input sequence length.") in
  let output = Arg.(value & opt int 1024 & info [ "output" ] ~doc:"Output sequence length.") in
  let report = Arg.(value & flag & info [ "report" ] ~doc:"Print per-operator bottleneck reports.") in
  let run device model tp batch input output report =
    let request = Request.make ~batch ~input_len:input ~output_len:output in
    let r = Engine.simulate ~tp ~request device model in
    if report then
      List.iter
        (fun phase ->
          Format.printf "%a@."
            Report.pp_phase_report
            (Report.phase_report ~tp ~request device model phase))
        [ Layer.Prefill; Layer.Decode ];
    Format.printf "%a@." Device.pp device;
    Format.printf "%a@." Engine.pp_result r;
    Format.printf "whole model: TTFT %a, TBT %a, e2e %a, %.0f tokens/s@."
      Units.pp_time (Engine.model_ttft_s r) Units.pp_time (Engine.model_tbt_s r)
      Units.pp_time (Engine.end_to_end_s r)
      (Engine.throughput_tokens_per_s r);
    let area = Area_model.total_mm2 device in
    Format.printf "area %.0f mm^2, die cost $%.0f, good-die cost $%.0f@." area
      (Cost_model.die_cost_usd ~process:Cost_model.n7 ~die_area_mm2:area)
      (Cost_model.good_die_cost_usd ~process:Cost_model.n7 ~die_area_mm2:area ());
    classify_spec (Spec.of_device ~area_mm2:area device)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate LLM inference on a template device.")
    Term.(const run $ device_args $ model_arg $ tp $ batch $ input $ output
          $ report)

(* --- dse --- *)

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:"Worker domains for the sweep (overrides \\$(b,ACS_JOBS)).")

let with_jobs_opt jobs f =
  match jobs with
  | Some n when n >= 1 -> Parallel.with_jobs n f
  | Some n -> invalid_arg (Printf.sprintf "--jobs %d: must be >= 1" n)
  | None -> f ()

(* --- observability helpers --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Enable span tracing and write a Chrome-trace JSON to \\$(docv) \
              (load it in chrome://tracing or https://ui.perfetto.dev).")

(* End-of-run throughput summary for the sweep verbs (`acs dse`, `acs
   run`): wall-clock points/s plus cache effectiveness, both read from
   the metrics registry the evaluation engine already feeds (the same
   counters `acs profile` summarizes). *)
let wall_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let eval_counters () =
  let v name = Metrics.counter_value (Metrics.counter name) in
  ( v "dse_cache_lookups_total",
    v "dse_cache_hits_total",
    v "dse_evaluations_total" )

let summarized_run f =
  let l0, h0, e0 = eval_counters () in
  let t0 = wall_s () in
  let designs = f () in
  let dt = wall_s () -. t0 in
  let l1, h1, e1 = eval_counters () in
  let lookups = l1 - l0 and hits = h1 - h0 and evals = e1 - e0 in
  let points = List.length designs in
  Format.printf "evaluated %d designs in %.2f s%s: %d simulated%s@." points dt
    (if dt > 0. then
       Printf.sprintf " (%.0f points/s)" (float_of_int points /. dt)
     else "")
    evals
    (if lookups > 0 then
       Printf.sprintf ", cache %d/%d hits (%.0f%%)" hits lookups
         (100. *. float_of_int hits /. float_of_int lookups)
     else "");
  designs

let eval_cache_note () =
  let s = Eval.stats () in
  if s.Eval.lookups > 0 then
    Format.printf "eval cache: %d/%d hits (%.0f%%), %d evaluations@."
      s.Eval.hits s.Eval.lookups
      (100. *. float_of_int s.Eval.hits /. float_of_int s.Eval.lookups)
      s.Eval.evaluations

let metrics_summary () =
  eval_cache_note ();
  Table.print ~title:"metrics" (Metrics.summary_table ())

let write_trace path =
  Tracing.write path;
  Format.printf "wrote trace %s (%d spans%s)@." path
    (List.length (Tracing.spans ()))
    (let d = Tracing.dropped () in
     if d = 0 then "" else Printf.sprintf ", %d overwritten" d)

(* [--trace FILE]: run the body with tracing on, dump the Chrome trace and
   finish with the metrics summary table. Without the flag the body runs
   untouched (tracing stays branch-only-disabled). *)
let with_trace_opt trace f =
  match trace with
  | None -> f ()
  | Some path ->
      let result = Tracing.with_tracing true f in
      write_trace path;
      metrics_summary ();
      result

let scenario_of_target target =
  if Sys.file_exists target && not (Sys.is_directory target) then
    try Ok (Scenario.of_json (Json.of_file target))
    with Json.Error msg -> Error (Printf.sprintf "%s: %s" target msg)
  else
    match Scenario.find target with
    | Some s -> Ok s
    | None ->
        Error
          (Printf.sprintf
             "%S is neither a manifest file nor a registry scenario (run \
              `acs scenarios` for the list)"
             target)

let dse_cmd =
  let rule =
    Arg.(value & opt (enum [ ("oct2022", `Oct2022); ("oct2023", `Oct2023); ("restricted", `Restricted) ]) `Oct2022
         & info [ "space" ] ~doc:"Sweep: oct2022, oct2023 or restricted.")
  in
  let target = Arg.(value & opt float 4800. & info [ "tpp-target" ] ~doc:"TPP target.") in
  let top = Arg.(value & opt int 5 & info [ "top" ] ~doc:"How many designs to print.") in
  let objective =
    Arg.(value & opt (enum [ ("ttft", Optimum.Ttft); ("tbt", Optimum.Tbt);
                             ("ttft-cost", Optimum.Ttft_cost); ("tbt-cost", Optimum.Tbt_cost) ])
           Optimum.Tbt
         & info [ "objective" ] ~doc:"ttft, tbt, ttft-cost or tbt-cost.")
  in
  let run space model target top objective jobs trace =
    with_trace_opt trace @@ fun () ->
    let sweep =
      match space with
      | `Oct2022 -> Space.oct2022
      | `Oct2023 -> Space.oct2023
      | `Restricted -> Space.restricted
    in
    let designs =
      summarized_run (fun () ->
          with_jobs_opt jobs (fun () ->
              Eval.sweep ~model ~tpp_target:target sweep))
    in
    let compliant =
      match space with
      | `Oct2022 | `Restricted -> Design.compliant_2022
      | `Oct2023 -> Design.compliant_2023
    in
    let ok =
      List.filter (fun d -> compliant d && Design.manufacturable d) designs
    in
    Format.printf "%d designs, %d compliant and manufacturable@."
      (List.length designs) (List.length ok);
    let sorted =
      List.sort
        (fun a b -> compare (Optimum.objective_value objective a) (Optimum.objective_value objective b))
        ok
    in
    List.iteri
      (fun i d -> if i < top then Format.printf "%2d. %a@." (i + 1) Design.pp d)
      sorted;
    let base = Engine.simulate Presets.a100 model in
    match sorted with
    | best :: _ ->
        Format.printf "best vs modeled A100: TTFT %+.1f%%, TBT %+.1f%%@."
          (100. *. (best.Design.ttft_s -. base.Engine.ttft_s) /. base.Engine.ttft_s)
          (100. *. (best.Design.tbt_s -. base.Engine.tbt_s) /. base.Engine.tbt_s)
    | [] -> Format.printf "no compliant designs@."
  in
  Cmd.v (Cmd.info "dse" ~doc:"Run a design space exploration and print the best compliant designs.")
    Term.(const run $ rule $ model_arg $ target $ top $ objective $ jobs_arg
          $ trace_arg)

(* --- scenarios --- *)

let scenarios_cmd =
  let dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump" ] ~docv:"NAME"
          ~doc:"Print the JSON manifest of one registry scenario (a starting \
                point for custom manifests) instead of the listing.")
  in
  let run dump =
    match dump with
    | Some name -> begin
        match Scenario.find name with
        | Some s ->
            print_endline (Json.to_string ~indent:2 (Scenario.to_json s));
            `Ok ()
        | None ->
            `Error (false, Printf.sprintf "unknown scenario %S (run `acs scenarios` for the list)" name)
      end
    | None ->
        let t =
          Table.create
            ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Left ]
            [ "name"; "model"; "designs"; "TPP target"; "regime" ]
        in
        List.iter
          (fun s ->
            Table.add_row t
              [
                s.Scenario.name;
                s.Scenario.model.Model.name;
                string_of_int (Scenario.size s);
                Printf.sprintf "%.0f" s.Scenario.tpp_target;
                Scenario.regime_token s.Scenario.regime;
              ])
          Scenario.registry;
        Table.print t;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "scenarios"
       ~doc:"List the registry of canonical experiment scenarios.")
    Term.(ret (const run $ dump))

(* --- run --- *)

let run_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"A JSON manifest file, or the name of a registry scenario \
                (see `acs scenarios`).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Write \\$(docv)/<name>.csv with one row per evaluated design \
                (the same columns the bench emits).")
  in
  let exec scenario jobs out trace =
    with_jobs_opt jobs @@ fun () ->
    with_trace_opt trace @@ fun () ->
    Format.printf "%a@." Scenario.pp scenario;
    Format.printf "domain pool: %d job%s@." (Parallel.jobs ())
      (if Parallel.jobs () = 1 then "" else "s");
    let designs = summarized_run (fun () -> Eval.run scenario) in
    let ok =
      List.filter
        (fun d -> Scenario.compliant scenario d && Design.manufacturable d)
        designs
    in
    Format.printf "%d designs, %d compliant (%s) and manufacturable@."
      (List.length designs) (List.length ok)
      (Scenario.regime_token scenario.Scenario.regime);
    let base = Engine.simulate Presets.a100 scenario.Scenario.model in
    List.iter
      (fun (label, objective, metric, baseline) ->
        match Optimum.best objective ok with
        | Some d ->
            Format.printf "best %s: %a (%+.1f%% vs modeled A100)@." label
              Design.pp d
              (100. *. (metric d -. baseline) /. baseline)
        | None -> ())
      [
        ("TTFT", Optimum.Ttft, (fun d -> d.Design.ttft_s), base.Engine.ttft_s);
        ("TBT", Optimum.Tbt, (fun d -> d.Design.tbt_s), base.Engine.tbt_s);
      ];
    (match out with
    | None -> ()
    | Some dir ->
        let name =
          if scenario.Scenario.name = "" then "scenario" else scenario.Scenario.name
        in
        let path = Filename.concat dir (name ^ ".csv") in
        Csv.write ~path ~header:Design.csv_header (List.map Design.csv_row designs);
        Format.printf "wrote %s (%d rows)@." path (List.length designs))
  in
  let run target jobs out trace =
    match scenario_of_target target with
    | Error msg -> `Error (false, msg)
    | Ok s -> (
        try
          exec s jobs out trace;
          `Ok ()
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Evaluate a scenario manifest (file or registry name) and dump \
             its designs.")
    Term.(ret (const run $ target $ jobs_arg $ out $ trace_arg))

(* --- search --- *)

let objective_token = function
  | Optimum.Ttft -> "ttft"
  | Optimum.Tbt -> "tbt"
  | Optimum.Ttft_cost -> "ttft-cost"
  | Optimum.Tbt_cost -> "tbt-cost"

let search_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"A JSON manifest file, or the name of a registry scenario \
                with a sweep target (see `acs scenarios`; 'search-widened' \
                is the ~1e9-point lattice this verb exists for).")
  in
  let strategy =
    Arg.(
      value
      & opt (enum Adaptive.strategies) Adaptive.Halving
      & info [ "strategy" ]
          ~doc:"Search strategy: halving, pareto, descent or zoom.")
  in
  let budget =
    Arg.(
      value & opt int 1024
      & info [ "budget" ]
          ~doc:"Engine-evaluation budget (hard ceiling, never exceeded). A \
                budget covering the whole sweep degenerates to exhaustive \
                enumeration.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Search RNG seed.")
  in
  let objective =
    Arg.(value & opt (enum [ ("ttft", Optimum.Ttft); ("tbt", Optimum.Tbt);
                             ("ttft-cost", Optimum.Ttft_cost); ("tbt-cost", Optimum.Tbt_cost) ])
           Optimum.Tbt
         & info [ "objective" ] ~doc:"ttft, tbt, ttft-cost or tbt-cost.")
  in
  let cache_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:(Printf.sprintf
                  "Persistent on-disk eval cache: evaluations are written \
                   through and later runs (any process) resume from them. \
                   The conventional location is %S."
                  Disk_cache.default_dir))
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write a key,value CSV of the outcome (deterministic for a \
                fixed scenario/strategy/budget/seed: cache state and \
                --jobs do not change a byte of it).")
  in
  let refine_serving =
    Arg.(
      value & flag
      & info [ "refine-serving" ]
          ~doc:"Add a final fidelity level: re-rank the top evaluated \
                designs by p95 latency under a short synthetic \
                continuous-batching serving trace.")
  in
  let exec scenario strategy budget seed objective cache_dir report
      refine_serving jobs trace =
    with_trace_opt trace @@ fun () ->
    Format.printf "%a@." Scenario.pp scenario;
    Format.printf "strategy %s, objective %s, budget %d, seed %d@."
      (Adaptive.strategy_to_string strategy)
      (objective_token objective) budget seed;
    let refine =
      if not refine_serving then None
      else begin
        let model = scenario.Scenario.model in
        let config =
          {
            Simulator.default_config with
            Simulator.tp =
              Option.value scenario.Scenario.tp
                ~default:Simulator.default_config.Simulator.tp;
          }
        in
        let trace =
          Trace.synthetic ~seed ~rate_per_s:2. ~duration_s:20.
            ~mean_input:256 ~mean_output:64 ()
        in
        Some
          (fun (d : Design.t) ->
            match Simulator.run ~config d.Design.device model trace with
            | stats -> begin
                match objective with
                | Optimum.Ttft | Optimum.Ttft_cost -> stats.Simulator.p95_ttft_s
                | Optimum.Tbt | Optimum.Tbt_cost -> stats.Simulator.p95_tbt_s
              end
            | exception Simulator.Infeasible _ -> infinity)
      end
    in
    let t0 = wall_s () in
    let o =
      with_jobs_opt jobs (fun () ->
          Adaptive.search ~budget ~seed ~objective ?refine ?cache_dir
            ~strategy scenario)
    in
    Format.printf "search finished in %.2f s@." (wall_s () -. t0);
    Format.printf
      "implicit space: %.4g designs; evaluated %d (%.2g%%), %d bound \
       probes, %.4g never simulated@."
      o.Adaptive.implicit o.Adaptive.evaluated
      (100. *. float_of_int o.Adaptive.evaluated /. o.Adaptive.implicit)
      o.Adaptive.bounded o.Adaptive.pruned;
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
        [ "fidelity"; "candidates"; "evaluated"; "promoted"; "pruned" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            r.Adaptive.fidelity;
            string_of_int r.Adaptive.candidates;
            string_of_int r.Adaptive.evaluated;
            string_of_int r.Adaptive.promoted;
            string_of_int r.Adaptive.pruned;
          ])
      o.Adaptive.rungs;
    Table.print t;
    let pv = o.Adaptive.provenance in
    Format.printf "eval provenance: %d memory, %d disk, %d cold@."
      pv.Adaptive.memory pv.Adaptive.disk pv.Adaptive.cold;
    (match o.Adaptive.disk with
    | None -> ()
    | Some st ->
        Format.printf
          "disk cache: %d loaded, %d hits, %d stores, %d skipped@."
          st.Disk_cache.loaded st.Disk_cache.hits st.Disk_cache.stores
          st.Disk_cache.skipped);
    (match o.Adaptive.best with
    | None -> Format.printf "no feasible design found within budget@."
    | Some d ->
        Format.printf "best: %a@." Design.pp d;
        Format.printf "      clock %.0f MHz, %s = %g@."
          d.Design.params.Space.clock_mhz (objective_token objective)
          (Optimum.objective_value objective d));
    match report with
    | None -> ()
    | Some path ->
        (* Key,value rows; everything here is deterministic for a fixed
           (scenario, strategy, objective, budget, seed) - provenance and
           disk/wall-clock stats are deliberately excluded, so the golden
           test can byte-compare across cache states and job counts.
           Float values use %h (hex bits): exact, locale-proof. *)
        let rows =
          [
            [ "scenario"; scenario.Scenario.name ];
            [ "strategy"; Adaptive.strategy_to_string strategy ];
            [ "objective"; objective_token objective ];
            [ "budget"; string_of_int budget ];
            [ "seed"; string_of_int seed ];
            [ "implicit"; Printf.sprintf "%.0f" o.Adaptive.implicit ];
            [ "evaluated"; string_of_int o.Adaptive.evaluated ];
            [ "bounded"; string_of_int o.Adaptive.bounded ];
            [ "pruned"; Printf.sprintf "%.0f" o.Adaptive.pruned ];
          ]
          @ List.mapi
              (fun i r ->
                [
                  Printf.sprintf "rung%d" i;
                  Printf.sprintf
                    "%s candidates=%d evaluated=%d promoted=%d pruned=%d"
                    r.Adaptive.fidelity r.Adaptive.candidates
                    r.Adaptive.evaluated r.Adaptive.promoted r.Adaptive.pruned;
                ])
              o.Adaptive.rungs
          @ (match o.Adaptive.best with
            | None -> [ [ "best"; "none" ] ]
            | Some d ->
                let p = d.Design.params in
                [
                  [ "best"; "found" ];
                  [ "best.systolic_dim"; string_of_int p.Space.systolic_dim ];
                  [ "best.lanes"; string_of_int p.Space.lanes ];
                  [ "best.l1_kb"; Printf.sprintf "%g" p.Space.l1 ];
                  [ "best.l2_mb"; Printf.sprintf "%g" p.Space.l2 ];
                  [ "best.memory_bw_tb_s"; Printf.sprintf "%g" p.Space.memory_bw ];
                  [ "best.device_bw_gb_s"; Printf.sprintf "%g" p.Space.device_bw ];
                  [ "best.clock_mhz"; Printf.sprintf "%g" p.Space.clock_mhz ];
                  [ "best.ttft_bits"; Printf.sprintf "%h" d.Design.ttft_s ];
                  [ "best.tbt_bits"; Printf.sprintf "%h" d.Design.tbt_s ];
                  [
                    "best.objective_bits";
                    Printf.sprintf "%h" (Optimum.objective_value objective d);
                  ];
                ])
        in
        Csv.write ~path ~header:[ "key"; "value" ] rows;
        Format.printf "wrote %s (%d rows)@." path (List.length rows)
  in
  let run target strategy budget seed objective cache_dir report
      refine_serving jobs trace =
    match scenario_of_target target with
    | Error msg -> `Error (false, msg)
    | Ok s -> (
        try
          exec s strategy budget seed objective cache_dir report
            refine_serving jobs trace;
          `Ok ()
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Adaptively search a design space under an evaluation budget \
             (billion-point lattices welcome), with an optional persistent \
             disk cache.")
    Term.(
      ret
        (const run $ target $ strategy $ budget $ seed $ objective $ cache_dir
       $ report $ refine_serving $ jobs_arg $ trace_arg))

(* --- policy-lab --- *)

let policy_lab_cmd =
  let regimes_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "regime" ] ~docv:"NAME|FILE"
          ~doc:"A regime to sweep: a registry name (e.g. acr-2023) or a \
                JSON regime file. Repeatable; default: the whole registry.")
  in
  let scenario_arg =
    Arg.(
      value
      & opt string "scorecard"
      & info [ "scenario" ] ~docv:"SCENARIO"
          ~doc:"The design-space scenario (JSON manifest file or registry \
                name) whose sweep the regimes are applied to.")
  in
  let market_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("marketing", `Marketing); ("architectural", `Architectural) ])
          `Marketing
      & info [ "market" ]
          ~doc:"How survey devices get their market segment for \
                market-scoped rules: by marketing segment (the rules as \
                written) or by the Sec 5.2 architectural classifier.")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the regime comparison as CSV to \\$(docv).")
  in
  let dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-registry" ] ~docv:"FILE"
          ~doc:"Also write the full regime registry (every rule set as \
                JSON) to \\$(docv).")
  in
  let resolve_regime name =
    if Sys.file_exists name && not (Sys.is_directory name) then
      try Ok (Regime.of_json (Json.of_file name))
      with Json.Error msg -> Error (Printf.sprintf "%s: %s" name msg)
    else
      match Regime.find name with
      | Some r -> Ok r
      | None ->
          Error
            (Printf.sprintf
               "%S is neither a regime file nor a registry regime (known: %s)"
               name
               (String.concat ", " (Regime.names ())))
  in
  let exec regimes scenario market jobs csv dump trace =
    with_jobs_opt jobs @@ fun () ->
    with_trace_opt trace @@ fun () ->
    (match dump with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Json.to_channel ~indent:2 oc (Json.list Regime.to_json Regime.registry);
        output_char oc '\n';
        close_out oc;
        Format.printf "wrote regime registry %s (%d regimes)@." path
          (List.length Regime.registry));
    List.iter
      (fun (r : Regime.t) ->
        Format.printf "%-26s %s@." r.Regime.name r.Regime.description)
      regimes;
    Format.printf "%a@." Scenario.pp scenario;
    let designs = summarized_run (fun () -> Eval.run scenario) in
    let base = Engine.simulate Presets.a100 scenario.Scenario.model in
    let market_of g =
      match market with
      | `Marketing -> Gpu.marketing_market g
      | `Architectural -> Gpu.architectural_market g
    in
    let dc, ndc =
      List.partition (fun g -> g.Gpu.segment = Gpu.Data_center) Database.survey
    in
    let header =
      [
        "regime"; "scope"; "dc_captured"; "dc_total"; "collateral";
        "nondc_total"; "designs"; "compliant"; "compliant_mfg";
        "best_ttft_ms"; "ttft_vs_a100_pct"; "best_tbt_ms"; "tbt_vs_a100_pct";
      ]
    in
    let rows =
      List.map
        (fun (r : Regime.t) ->
          let captured gs =
            List.length
              (List.filter
                 (fun g ->
                   Regime.regulated ~market:(market_of g) r (Gpu.subject g))
                 gs)
          in
          let compliant = List.filter (fun d -> Design.compliant r d) designs in
          let ok = List.filter Design.manufacturable compliant in
          let best objective metric baseline =
            match Optimum.best objective ok with
            | Some d ->
                let v = Units.to_ms (metric d) in
                ( Printf.sprintf "%.4f" v,
                  Printf.sprintf "%+.1f"
                    (100. *. (metric d -. baseline) /. baseline) )
            | None -> ("-", "-")
          in
          let ttft, dttft =
            best Optimum.Ttft (fun d -> d.Design.ttft_s) base.Engine.ttft_s
          in
          let tbt, dtbt =
            best Optimum.Tbt (fun d -> d.Design.tbt_s) base.Engine.tbt_s
          in
          [
            r.Regime.name;
            (match r.Regime.scope with
            | Regime.Per_die -> "per-die"
            | Regime.Per_package -> "per-package");
            string_of_int (captured dc);
            string_of_int (List.length dc);
            string_of_int (captured ndc);
            string_of_int (List.length ndc);
            string_of_int (List.length designs);
            string_of_int (List.length compliant);
            string_of_int (List.length ok);
            ttft; dttft; tbt; dtbt;
          ])
        regimes
    in
    let t =
      Table.create
        ~aligns:
          [
            Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
            Table.Right; Table.Right; Table.Right; Table.Right; Table.Right;
            Table.Right; Table.Right; Table.Right;
          ]
        header
    in
    List.iter (Table.add_row t) rows;
    Table.print ~title:"regimes x survey devices x design space" t;
    Format.printf
      "captured: survey devices regulated (any verdict above unregulated); \
       collateral: captured non-data-center devices.@.";
    match csv with
    | None -> ()
    | Some path ->
        Csv.write ~path ~header rows;
        Format.printf "wrote %s (%d rows)@." path (List.length rows)
  in
  let run regimes scenario market jobs csv dump trace =
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match resolve_regime name with
          | Ok r -> resolve (r :: acc) rest
          | Error _ as e -> e)
    in
    let regimes =
      if regimes = [] then Ok Regime.registry
      else resolve [] regimes
    in
    match (regimes, scenario_of_target scenario) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok regimes, Ok scenario -> (
        try
          exec regimes scenario market jobs csv dump trace;
          `Ok ()
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "policy-lab"
       ~doc:"Sweep sanction regimes over the device survey and a design \
             space: capture counts, collateral damage and the best \
             compliant design under each rule set.")
    Term.(
      ret
        (const run $ regimes_arg $ scenario_arg $ market_arg $ jobs_arg
       $ csv_arg $ dump_arg $ trace_arg))

(* --- profile --- *)

let profile_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"A JSON manifest file, or the name of a registry scenario \
                (see `acs scenarios`).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Also write the full metrics registry (counters, gauges, \
                histogram buckets) as JSON to \\$(docv).")
  in
  let exec scenario jobs trace metrics_out =
    with_jobs_opt jobs @@ fun () ->
    Format.printf "%a@." Scenario.pp scenario;
    Format.printf "domain pool: %d job%s@." (Parallel.jobs ())
      (if Parallel.jobs () = 1 then "" else "s");
    let root =
      "profile:"
      ^ (if scenario.Scenario.name = "" then "scenario" else scenario.Scenario.name)
    in
    (* Tracing is always on for a profile run - that is the point of the
       verb - so the engine's per-phase spans and histograms populate even
       when no --trace file was requested. *)
    let designs =
      Tracing.with_tracing true (fun () ->
          Tracing.with_span root (fun () -> Eval.run scenario))
    in
    Format.printf "%d designs evaluated@." (List.length designs);
    Option.iter write_trace trace;
    (match metrics_out with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            Json.to_channel ~indent:2 oc (Metrics.export ());
            output_char oc '\n');
        Format.printf "wrote metrics %s@." path);
    metrics_summary ()
  in
  let run target jobs trace metrics_out =
    match scenario_of_target target with
    | Error msg -> `Error (false, msg)
    | Ok s -> (
        try
          exec s jobs trace metrics_out;
          `Ok ()
        with Invalid_argument msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Evaluate a scenario with span tracing on and report where the \
             time went (metrics summary, optional Chrome trace and metrics \
             JSON).")
    Term.(ret (const run $ target $ jobs_arg $ trace_arg $ metrics_out))

(* --- fps --- *)

let fps_cmd =
  let run device =
    Format.printf "%a@." Device.pp device;
    List.iter
      (fun scene ->
        Format.printf "%-14s %a@." scene.Graphics.name
          Graphics_model.pp_breakdown
          (Graphics_model.frame_breakdown device scene))
      Graphics.presets
  in
  Cmd.v
    (Cmd.info "fps" ~doc:"Estimate gaming frame rates of a template device.")
    Term.(const run $ device_args)

(* --- shared serving flags (serve + fleet) ---

   Both verbs drive the same synthetic traces and scheduler configs, so
   the flag vocabulary is one term: a spec that either command turns into
   a trace with [synthesize]. *)

type trace_spec = {
  rate : float;
  duration : float;
  mean_input : int;
  mean_output : int;
  seed : int;
}

let trace_spec_term =
  let rate = Arg.(value & opt float 3. & info [ "rate" ] ~doc:"Requests per second.") in
  let duration = Arg.(value & opt float 60. & info [ "duration" ] ~doc:"Trace duration, seconds.") in
  let mean_input = Arg.(value & opt int 512 & info [ "mean-input" ] ~doc:"Mean prompt length.") in
  let mean_output = Arg.(value & opt int 128 & info [ "mean-output" ] ~doc:"Mean generation length.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Trace RNG seed.") in
  let build rate duration mean_input mean_output seed =
    { rate; duration; mean_input; mean_output; seed }
  in
  Term.(const build $ rate $ duration $ mean_input $ mean_output $ seed)

let synthesize spec =
  Trace.synthetic ~seed:spec.seed ~rate_per_s:spec.rate
    ~duration_s:spec.duration ~mean_input:spec.mean_input
    ~mean_output:spec.mean_output ()

let tp_arg =
  Arg.(value & opt int Simulator.default_config.Simulator.tp
       & info [ "tp" ] ~doc:"Tensor-parallel group size.")

let max_batch_arg =
  Arg.(value & opt int Simulator.default_config.Simulator.max_batch
       & info [ "max-batch" ] ~doc:"Scheduler cap on concurrent requests.")

let policy_arg =
  Arg.(value
       & opt (enum [ ("prefill", Simulator.Prefill_priority);
                     ("decode-fair", Simulator.Decode_fair) ])
           Simulator.default_config.Simulator.policy
       & info [ "policy" ]
           ~doc:"Scheduling policy: 'prefill' admits whenever anything \
                 fits (lowest TTFT); 'decode-fair' interleaves a decode \
                 step between admissions (bounded TBT stalls).")

let engine_arg =
  Arg.(value
       & opt (enum [ ("compiled", Simulator.Compiled);
                     ("legacy", Simulator.Legacy) ])
           Simulator.default_config.Simulator.engine
       & info [ "engine" ]
           ~doc:"Step-latency engine: 'compiled' (memoized \
                 Engine.compile/simulate_compiled fast path) or 'legacy' \
                 (one Engine.simulate per step). Identical results; see \
                 the serving_throughput bench for the speed gap.")

let slo_ttft_arg =
  Arg.(value & opt (some float) None
       & info [ "slo-ttft" ] ~docv:"SECONDS"
           ~doc:"TTFT objective; with --slo-tbt (or alone) prints SLO \
                 attainment over completed requests.")

let slo_tbt_arg =
  Arg.(value & opt (some float) None
       & info [ "slo-tbt" ] ~docv:"SECONDS"
           ~doc:"Time-between-tokens objective; see --slo-ttft.")

(* A single-sided objective leaves the other side unconstrained. *)
let print_slo attainment = function
  | None, None -> ()
  | slo_ttft, slo_tbt ->
      let ttft_s = Option.value slo_ttft ~default:infinity in
      let tbt_s = Option.value slo_tbt ~default:infinity in
      Format.printf "SLO attainment (TTFT <= %g s, TBT <= %g s): %.1f%%@."
        ttft_s tbt_s
        (100. *. attainment ~ttft_s ~tbt_s)

(* --- serve --- *)

let serve_cmd =
  let exec device model spec trace_file tp max_batch policy engine slo_ttft
      slo_tbt =
    let config =
      { Simulator.default_config with Simulator.tp; max_batch; policy; engine }
    in
    let trace = synthesize spec in
    Format.printf "%a@." Device.pp device;
    Format.printf "trace: %d requests, %d output tokens@." (List.length trace)
      (Trace.total_output_tokens trace);
    Format.printf "scheduler: tp=%d, max batch %d, %s policy, %s engine@."
      config.Simulator.tp config.Simulator.max_batch
      (Simulator.policy_to_string config.Simulator.policy)
      (Simulator.engine_to_string config.Simulator.engine);
    with_trace_opt trace_file @@ fun () ->
    let stats = Simulator.run ~config device model trace in
    Format.printf "%a@." Simulator.pp_stats stats;
    print_slo (Simulator.slo_attainment stats) (slo_ttft, slo_tbt)
  in
  let run device model spec trace_file tp max_batch policy engine slo_ttft
      slo_tbt =
    match
      exec device model spec trace_file tp max_batch policy engine slo_ttft
        slo_tbt
    with
    | () -> `Ok ()
    | exception Simulator.Infeasible msg -> `Error (false, msg)
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Simulate continuous-batching serving of a synthetic trace.")
    Term.(ret (const run $ device_args $ model_arg $ trace_spec_term
           $ trace_arg $ tp_arg $ max_batch_arg $ policy_arg $ engine_arg
           $ slo_ttft_arg $ slo_tbt_arg))

(* --- fleet --- *)

let fleet_cmd =
  (* [role=]DEVICE:COUNT, where DEVICE is a database name and COUNT a
     number of tensor-parallel groups. The count is split off the last
     colon so device names containing colons keep working. *)
  let pool_spec_conv =
    let parse s =
      let role, rest =
        match String.index_opt s '=' with
        | Some i ->
            let role = String.sub s 0 i in
            let rest = String.sub s (i + 1) (String.length s - i - 1) in
            (match role with
            | "unified" -> Ok Fleet.Unified
            | "prefill" -> Ok Fleet.Prefill
            | "decode" -> Ok Fleet.Decode
            | r ->
                Error
                  (Printf.sprintf
                     "unknown pool role %S (unified, prefill or decode)" r))
            |> fun role -> (role, rest)
        | None -> (Ok Fleet.Unified, s)
      in
      match role with
      | Error msg -> Error (`Msg msg)
      | Ok role -> (
          match String.rindex_opt rest ':' with
          | None ->
              Error
                (`Msg
                   (Printf.sprintf "pool %S: expected [role=]DEVICE:COUNT" s))
          | Some i -> (
              let name = String.sub rest 0 i in
              let count = String.sub rest (i + 1) (String.length rest - i - 1) in
              match (Database.find name, int_of_string_opt count) with
              | None, _ ->
                  Error
                    (`Msg
                       (Printf.sprintf "unknown device %S (see `acs survey`)"
                          name))
              | _, None ->
                  Error (`Msg (Printf.sprintf "pool count %S: not a number" count))
              | Some gpu, Some count -> Ok (role, Gpu.to_template gpu, count)))
    in
    let print ppf (role, dev, count) =
      Format.fprintf ppf "%s=%s:%d" (Fleet.role_to_string role)
        dev.Device.name count
    in
    Arg.conv (parse, print)
  in
  let pools_arg =
    Arg.(value & opt_all pool_spec_conv []
         & info [ "pool" ] ~docv:"[ROLE=]DEVICE:COUNT"
             ~doc:"Add a pool of \\$(docv) tensor-parallel groups (repeat \
                   for heterogeneous or disaggregated fleets), e.g. \
                   'H100:4' or 'prefill=H100:2' with 'decode=H20:6'.")
  in
  let routing_arg =
    Arg.(value
         & opt (enum [ ("round-robin", Fleet.Round_robin);
                       ("least-loaded", Fleet.Least_loaded);
                       ("phase-affine", Fleet.Phase_affine) ])
             Fleet.Least_loaded
         & info [ "routing" ]
             ~doc:"Dispatch policy: 'round-robin' rotates, 'least-loaded' \
                   picks the fewest outstanding tokens, 'phase-affine' \
                   prices each request on each candidate and picks the \
                   cheapest estimated completion.")
  in
  let handoff_arg =
    Arg.(value & opt (some float) None
         & info [ "handoff-gb-s" ] ~docv:"GB_S"
             ~doc:"Prefill-to-decode KV link bandwidth; defaults to the \
                   slowest pool device interconnect.")
  in
  let target_qps_arg =
    Arg.(value & opt (some float) None
         & info [ "target-qps" ] ~docv:"QPS"
             ~doc:"Also print the per-pool group counts needed to sustain \
                   \\$(docv) completed requests per second.")
  in
  let requests_arg =
    Arg.(value & opt (some int) None
         & info [ "requests" ] ~docv:"N"
             ~doc:"Bound the trace by request count instead of --duration \
                   (which is then ignored); with --stream, traces of \
                   millions of requests run in memory independent of \
                   \\$(docv).")
  in
  let stream_arg =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:"Use the bounded-memory streamed engine: requests are \
                   routed in epochs and the groups advance in parallel \
                   across the ACS_JOBS domain pool, with results \
                   bit-identical across job counts. Percentiles come from \
                   online sketches (1% relative error) and the per-request \
                   outcome list is not retained.")
  in
  let epoch_arg =
    Arg.(value & opt int 512
         & info [ "epoch" ] ~docv:"N"
             ~doc:"Streamed router epoch: requests routed per round \
                   between parallel group advances (only with --stream).")
  in
  (* Rate-shape flags compose into one Trace.shape: a diurnal cycle, a
     burst overlay, or their product. *)
  let shape_term =
    let diurnal_period =
      Arg.(value & opt (some float) None
           & info [ "diurnal-period" ] ~docv:"SECONDS"
               ~doc:"Modulate the arrival rate over a diurnal cycle of \
                     \\$(docv) (trough at t=0, peak rate mid-cycle).")
    in
    let diurnal_trough =
      Arg.(value & opt float 0.25
           & info [ "diurnal-trough" ] ~docv:"FRACTION"
               ~doc:"Trough-to-peak rate ratio for --diurnal-period.")
    in
    let burst_every =
      Arg.(value & opt (some float) None
           & info [ "burst-every" ] ~docv:"SECONDS"
               ~doc:"Overlay a rate burst every \\$(docv).")
    in
    let burst_width =
      Arg.(value & opt float 1.
           & info [ "burst-width" ] ~docv:"SECONDS"
               ~doc:"Duration of each --burst-every burst.")
    in
    let burst_factor =
      Arg.(value & opt float 3.
           & info [ "burst-factor" ] ~docv:"X"
               ~doc:"Rate multiplier inside a burst.")
    in
    let build period trough every width factor =
      let diurnal =
        Option.map (fun period_s -> Trace.Diurnal { period_s; trough }) period
      in
      let bursts =
        Option.map
          (fun every_s -> Trace.Bursts { every_s; width_s = width; factor })
          every
      in
      match (diurnal, bursts) with
      | None, None -> None
      | (Some _ as s), None | None, (Some _ as s) -> s
      | Some d, Some b -> Some (Trace.Compose (d, b))
    in
    Term.(const build $ diurnal_period $ diurnal_trough $ burst_every
          $ burst_width $ burst_factor)
  in
  let exec model spec trace_file pools routing handoff_gb_s target_qps tp
      max_batch policy engine slo_ttft slo_tbt requests stream_mode epoch
      shape =
    if pools = [] then
      invalid_arg "pass at least one --pool, e.g. --pool H100:4";
    let config =
      { Simulator.default_config with Simulator.tp; max_batch; policy; engine }
    in
    let fleet =
      Fleet.make ~routing ?handoff_gb_s
        (List.map
           (fun (role, dev, count) -> Fleet.pool ~role ~config ~count dev)
           pools)
    in
    (* --requests replaces the duration bound (otherwise the default
       --duration would silently cap a long --requests run). *)
    let mk_stream () =
      Trace.stream ~seed:spec.seed ?shape ?limit:requests
        ?duration_s:(if requests = None then Some spec.duration else None)
        ~rate_per_s:spec.rate ~mean_input:spec.mean_input
        ~mean_output:spec.mean_output ()
    in
    Format.printf "fleet: %s routing, %s; pools: %s@."
      (Fleet.routing_to_string routing)
      (if Fleet.disaggregated fleet then "disaggregated" else "unified")
      (String.concat ", "
         (List.map
            (fun (p : Fleet.pool) ->
              Printf.sprintf "%s x%d (tp=%d)" p.Fleet.name p.Fleet.count
                config.Simulator.tp)
            fleet.Fleet.pools));
    let slo =
      match (slo_ttft, slo_tbt) with
      | None, None -> None
      | a, b ->
          Some
            (Option.value a ~default:infinity, Option.value b ~default:infinity)
    in
    let fs =
      if stream_mode then (
        Format.printf "stream: %g req/s (%s rate), %s; epoch %d@." spec.rate
          (match shape with None -> "constant" | Some _ -> "shaped")
          (match requests with
          | Some n -> Printf.sprintf "up to %d requests" n
          | None -> Printf.sprintf "%g s" spec.duration)
          epoch;
        with_trace_opt trace_file @@ fun () ->
        Fleet.run_stream ~epoch ?slo fleet model (mk_stream ()))
      else
        let trace = Trace.materialize (mk_stream ()) in
        Format.printf "trace: %d requests, %d output tokens@."
          (List.length trace)
          (Trace.total_output_tokens trace);
        with_trace_opt trace_file @@ fun () -> Fleet.run fleet model trace
    in
    Format.printf "%a@." Fleet.pp_fleet_stats fs;
    (match (fs.Fleet.slo_attained, slo) with
    | Some a, Some (ttft_s, tbt_s) ->
        Format.printf "SLO attainment (TTFT <= %g s, TBT <= %g s): %.1f%%@."
          ttft_s tbt_s (100. *. a)
    | _ -> print_slo (Fleet.slo_attainment fs) (slo_ttft, slo_tbt));
    (* A stable, greppable one-liner: CI diffs it across ACS_JOBS settings
       to hold the streamed engine to its determinism contract. *)
    let sum f =
      List.fold_left
        (fun acc ps ->
          Array.fold_left (fun a s -> a + f s) acc ps.Fleet.per_group)
        0 fs.Fleet.pools
    in
    Format.printf
      "totals: completed=%d rejected=%d generated=%d produced=%d \
       prefill_batches=%d decode_steps=%d@."
      fs.Fleet.completed fs.Fleet.rejected_count fs.Fleet.generated_tokens
      fs.Fleet.produced_tokens
      (sum (fun s -> s.Simulator.prefill_batches))
      (sum (fun s -> s.Simulator.decode_steps));
    let die_cost dev =
      Cost_model.die_cost_usd ~process:Cost_model.n7
        ~die_area_mm2:(Area_model.total_mm2 dev)
    in
    (match Fleet.silicon_usd_per_mtok ~die_cost_usd:die_cost fleet fs with
    | Some cost ->
        Format.printf "silicon: $%.2f per million tokens (N7 dies, 3-year \
                       amortization)@."
          cost
    | None -> ());
    match target_qps with
    | None -> ()
    | Some q -> (
        match Fleet.devices_for_qps fs ~target_qps:q with
        | [] ->
            Format.printf
              "no completed requests - cannot size the fleet for %g req/s@." q
        | plan ->
            let groups = List.fold_left (fun acc (_, n) -> acc + n) 0 plan in
            Format.printf "groups for %g req/s: %s (%d groups, %d dies)@." q
              (String.concat ", "
                 (List.map (fun (n, c) -> Printf.sprintf "%s x%d" n c) plan))
              groups
              (groups * config.Simulator.tp))
  in
  let run model spec trace_file pools routing handoff target_qps tp max_batch
      policy engine slo_ttft slo_tbt requests stream_mode epoch shape =
    match
      exec model spec trace_file pools routing handoff target_qps tp max_batch
        policy engine slo_ttft slo_tbt requests stream_mode epoch shape
    with
    | () -> `Ok ()
    | exception Simulator.Infeasible msg -> `Error (false, msg)
    | exception Invalid_argument msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:"Simulate a multi-device serving fleet (homogeneous, \
             heterogeneous or disaggregated prefill/decode) against one \
             shared trace, materialized or streamed in bounded memory.")
    Term.(ret (const run $ model_arg $ trace_spec_term $ trace_arg
           $ pools_arg $ routing_arg $ handoff_arg $ target_qps_arg $ tp_arg
           $ max_batch_arg $ policy_arg $ engine_arg $ slo_ttft_arg
           $ slo_tbt_arg $ requests_arg $ stream_arg $ epoch_arg
           $ shape_term))

(* --- daemon / submit / jobs / cancel ---

   The long-running evaluation service and its thin client verbs. All
   four share one --socket flag; the client verbs open one short-lived
   connection per call. *)

let socket_arg =
  Arg.(
    value
    & opt string Daemon.Server.default_config.Daemon.Server.socket
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket the daemon listens on. Keep the path \
              short (sun_path caps out near 100 bytes).")

let daemon_cmd =
  let workers =
    Arg.(
      value
      & opt int Daemon.Server.default_config.Daemon.Server.workers
      & info [ "workers" ] ~docv:"N" ~doc:"Job-runner domains.")
  in
  let queue =
    Arg.(
      value
      & opt int Daemon.Server.default_config.Daemon.Server.queue
      & info [ "queue" ] ~docv:"N"
          ~doc:"Bounded job-queue capacity; submissions beyond it are \
                rejected with a structured queue-full error, never \
                blocked.")
  in
  let batch =
    Arg.(
      value
      & opt int Daemon.Server.default_config.Daemon.Server.batch
      & info [ "batch" ] ~docv:"N"
          ~doc:"Design points evaluated between cancellation checks and \
                progress events.")
  in
  let throttle =
    Arg.(
      value & opt float 0.
      & info [ "throttle" ] ~docv:"SECONDS"
          ~doc:"Sleep between batches (a testing aid to keep jobs \
                observable; leave at 0 in production).")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Disk_cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Persistent disk-cache tier kept warm across jobs.")
  in
  let no_disk =
    Arg.(
      value & flag
      & info [ "no-disk-cache" ]
          ~doc:"Run with the in-memory memo tier only (no disk writes).")
  in
  let run socket workers queue batch throttle cache_dir no_disk jobs =
    try
      let cfg =
        {
          Daemon.Server.socket;
          workers;
          queue;
          batch;
          throttle_s = throttle;
          eval_jobs = jobs;
          cache_dir = (if no_disk then None else Some cache_dir);
        }
      in
      let t = Daemon.Server.start cfg in
      Format.printf "acs daemon listening on %s (%d worker%s, queue %d%s)@."
        socket workers
        (if workers = 1 then "" else "s")
        queue
        (match cfg.Daemon.Server.cache_dir with
        | Some d -> ", disk cache " ^ d
        | None -> ", memo tier only");
      (* SIGTERM/SIGINT request a graceful drain: stop accepting, let
         queued and running jobs finish, then exit cleanly. The handler
         only flips an atomic - the teardown runs here on the main
         thread. *)
      let handler = Sys.Signal_handle (fun _ -> Daemon.Server.request_stop t) in
      (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
      Daemon.Server.wait t;
      Format.printf "draining: rejecting new jobs, finishing queued ones@.";
      Daemon.Server.stop ~drain:true t;
      Format.printf "daemon stopped cleanly@.";
      `Ok ()
    with
    | Invalid_argument msg | Failure msg -> `Error (false, msg)
    | Unix.Unix_error (e, fn, arg) ->
        `Error
          (false, Printf.sprintf "%s %s: %s" fn arg (Unix.error_message e))
  in
  Cmd.v
    (Cmd.info "daemon"
       ~doc:"Run the long-lived evaluation service: scenario jobs over a \
             Unix-domain socket, bounded queue with explicit \
             backpressure, and eval caches kept warm across requests.")
    Term.(
      ret
        (const run $ socket_arg $ workers $ queue $ batch $ throttle
       $ cache_dir $ no_disk $ jobs_arg))

(* Client-side helpers over the daemon's JSON payloads. *)

let json_int_m name j = Json.to_option Json.to_int (Json.member name j)
let json_str_m name j = Json.to_option Json.to_str (Json.member name j)

let daemon_error (r : Daemon.Client.response) =
  match json_str_m "error" r.Daemon.Client.body with
  | Some m -> m
  | None | (exception Json.Error _) ->
      Json.to_string r.Daemon.Client.body

(* The greppable warm-cache provenance line (the CI smoke step asserts
   it on a repeated submission). *)
let print_cache_line j =
  match Json.member "cache" j with
  | Json.Obj _ as c ->
      let v n = Option.value ~default:0 (json_int_m n c) in
      let memo = v "memo" and disk = v "disk" and cold = v "cold" in
      let looked = memo + disk + cold in
      if looked > 0 then
        Format.printf "warm cache: %.1f%% (%d memo + %d disk of %d points)@."
          (100. *. float_of_int (memo + disk) /. float_of_int looked)
          memo disk looked
  | _ | (exception Json.Error _) -> ()

let job_summary j =
  let v n = Option.value ~default:0 (json_int_m n j) in
  Format.printf "job %d [%s]: %s, %d/%d points@." (v "id")
    (Option.value ~default:"?" (json_str_m "scenario" j))
    (Option.value ~default:"?" (json_str_m "status" j))
    (v "progress") (v "total");
  (match json_str_m "error" j with
  | Some m -> Format.printf "error: %s@." m
  | None -> ());
  (match Json.member "result" j with
  | Json.Obj _ as r ->
      Format.printf "result: %d designs, %d compliant, %.2f s wall@."
        (Option.value ~default:0 (json_int_m "designs" r))
        (Option.value ~default:0 (json_int_m "compliant" r))
        (Option.value ~default:nan
           (Json.to_option Json.to_float (Json.member "wall_s" r)))
  | _ -> ());
  print_cache_line j

let submit_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:"A JSON manifest file, or the name of a registry scenario \
                (see `acs scenarios`).")
  in
  let detach =
    Arg.(
      value & flag
      & info [ "detach" ]
          ~doc:"Queue the job and return its id immediately instead of \
                streaming progress until it finishes.")
  in
  let run socket target detach =
    match scenario_of_target target with
    | Error msg -> `Error (false, msg)
    | Ok sc -> (
        let manifest = Scenario.to_json sc in
        try
          if detach then begin
            let r = Daemon.Client.submit ~socket manifest in
            if r.Daemon.Client.status = 202 then begin
              let j = r.Daemon.Client.body in
              Format.printf "queued job %d (%d points)@."
                (Option.value ~default:0 (json_int_m "id" j))
                (Option.value ~default:0 (json_int_m "total" j));
              `Ok ()
            end
            else
              `Error
                (false,
                 Printf.sprintf "daemon rejected the job (%d): %s"
                   r.Daemon.Client.status (daemon_error r))
          end
          else begin
            let on_event ev =
              match json_str_m "event" ev with
              | Some "progress" ->
                  Format.printf "job %d: %d/%d points (memo %d, disk %d, \
                                 cold %d)@."
                    (Option.value ~default:0 (json_int_m "id" ev))
                    (Option.value ~default:0 (json_int_m "progress" ev))
                    (Option.value ~default:0 (json_int_m "total" ev))
                    (Option.value ~default:0 (json_int_m "memo" ev))
                    (Option.value ~default:0 (json_int_m "disk" ev))
                    (Option.value ~default:0 (json_int_m "cold" ev))
              | Some e ->
                  Format.printf "job %d: %s@."
                    (Option.value ~default:0 (json_int_m "id" ev))
                    e
              | None -> ()
            in
            let r = Daemon.Client.submit_wait ~socket ~on_event manifest in
            if r.Daemon.Client.status <> 200 then
              `Error
                (false,
                 Printf.sprintf "daemon rejected the job (%d): %s"
                   r.Daemon.Client.status (daemon_error r))
            else begin
              job_summary r.Daemon.Client.body;
              match json_str_m "status" r.Daemon.Client.body with
              | Some "done" -> `Ok ()
              | Some other ->
                  `Error (false, Printf.sprintf "job finished %s" other)
              | None -> `Error (false, "daemon returned no job record")
            end
          end
        with Daemon.Client.Error msg -> `Error (false, msg))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a scenario to a running `acs daemon` (streams progress \
             by default; --detach to just queue).")
    Term.(ret (const run $ socket_arg $ target $ detach))

let daemon_jobs_cmd =
  let run socket =
    try
      let r = Daemon.Client.jobs ~socket in
      if r.Daemon.Client.status <> 200 then
        `Error
          (false,
           Printf.sprintf "daemon returned %d: %s" r.Daemon.Client.status
             (daemon_error r))
      else begin
        let jobs = Json.to_list (Json.member "jobs" r.Daemon.Client.body) in
        if jobs = [] then Format.printf "no jobs@."
        else begin
          let t =
            Table.create
              ~aligns:
                [ Table.Right; Table.Left; Table.Left; Table.Right;
                  Table.Right ]
              [ "id"; "scenario"; "status"; "progress"; "warm%" ]
          in
          List.iter
            (fun j ->
              let v n = Option.value ~default:0 (json_int_m n j) in
              Table.add_row t
                [
                  string_of_int (v "id");
                  Option.value ~default:"?" (json_str_m "scenario" j);
                  Option.value ~default:"?" (json_str_m "status" j);
                  Printf.sprintf "%d/%d" (v "progress") (v "total");
                  (match
                     Json.to_option Json.to_float
                       (Json.member "warm_hit_rate" j)
                   with
                  | Some rate -> Printf.sprintf "%.1f" (100. *. rate)
                  | None -> "-");
                ])
            jobs;
          Table.print t
        end;
        `Ok ()
      end
    with Daemon.Client.Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "jobs" ~doc:"List the jobs of a running `acs daemon`.")
    Term.(ret (const run $ socket_arg))

let cancel_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"ID" ~doc:"Job id (see `acs jobs`).")
  in
  let run socket id =
    try
      let r = Daemon.Client.cancel ~socket id in
      match r.Daemon.Client.status with
      | 200 | 202 ->
          Format.printf "job %d: %s@." id
            (Option.value ~default:"cancelled"
               (json_str_m "status" r.Daemon.Client.body));
          `Ok ()
      | s ->
          `Error
            (false, Printf.sprintf "daemon returned %d: %s" s (daemon_error r))
    with Daemon.Client.Error msg -> `Error (false, msg)
  in
  Cmd.v
    (Cmd.info "cancel"
       ~doc:"Cancel a daemon job (immediate when queued; a running job \
             stops at its next batch boundary).")
    Term.(ret (const run $ socket_arg $ id))

(* --- package --- *)

let package_cmd =
  let dies = Arg.(value & opt int 4 & info [ "dies" ] ~doc:"Compute chiplets.") in
  let die_area = Arg.(value & opt float 750. & info [ "die-area" ] ~doc:"Area per chiplet, mm^2.") in
  let die_tpp = Arg.(value & opt float 1199. & info [ "die-tpp" ] ~doc:"TPP target per chiplet.") in
  let run dies die_area die_tpp =
    let cores =
      Device.cores_for_tpp ~tpp:die_tpp ~lanes_per_core:2
        ~systolic:(Systolic.square 16) ()
    in
    let die =
      Device.make ~name:"chiplet" ~core_count:cores ~lanes_per_core:2
        ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:16.
        ~memory:(Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8)
        ~interconnect:(Interconnect.of_total_gb_s 200.)
        ()
    in
    let pkg =
      Package.make ~compute_die:die ~compute_die_area_mm2:die_area
        ~compute_dies:dies ()
    in
    Format.printf "%a@." Package.pp pkg;
    let spec =
      Spec.make ~tpp:(Package.total_tpp pkg) ~device_bw_gb_s:400.
        ~die_area_mm2:(Package.total_area_mm2 pkg) ()
    in
    Format.printf "October 2023 (data center): %s@."
      (Acr_2023.tier_to_string (Acr_2023.classify Acr_2023.Data_center spec));
    Format.printf "package cost: $%.0f@."
      (Cost_model.package_cost_usd ~process:Cost_model.n7
         ~die_areas_mm2:(Package.die_areas pkg) ())
  in
  Cmd.v
    (Cmd.info "package"
       ~doc:"Build a multi-chip module and classify/cost it.")
    Term.(const run $ dies $ die_area $ die_tpp)

(* --- plan --- *)

let plan_cmd =
  let max_devices = Arg.(value & opt int 64 & info [ "max-devices" ] ~doc:"Device budget.") in
  let max_tp = Arg.(value & opt int 8 & info [ "max-tp" ] ~doc:"Largest tensor-parallel group.") in
  let run device model max_devices max_tp =
    match Cluster.choose_plan ~max_tp ~max_devices device model with
    | Some r ->
        Format.printf "%a@." Device.pp device;
        Format.printf "%a@." Cluster.pp_result r;
        `Ok ()
    | None ->
        `Error
          (false,
           Printf.sprintf "%s does not fit on %d of these devices"
             model.Core.Model.name max_devices)
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Pick a tensor/pipeline-parallel plan that fits the model.")
    Term.(ret (const run $ device_args $ model_arg $ max_devices $ max_tp))

(* --- survey --- *)

let survey_cmd =
  let only =
    Arg.(value & opt (some (enum [ ("dc", `Dc); ("consumer", `Consumer) ])) None
         & info [ "only" ] ~doc:"Restrict to 'dc' or 'consumer'.")
  in
  let run only =
    let gpus =
      match only with
      | Some `Dc -> Database.data_center Database.survey
      | Some `Consumer -> Database.non_data_center Database.survey
      | None -> Database.survey
    in
    let t =
      Table.create
        ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Left; Table.Left; Table.Left ]
        [ "device"; "segment"; "TPP"; "PD"; "Oct 2022"; "Oct 2023"; "marketing vs arch" ]
    in
    List.iter
      (fun g ->
        Table.add_row t
          [
            g.Gpu.name;
            Gpu.segment_to_string g.Gpu.segment;
            Printf.sprintf "%.0f" g.Gpu.tpp;
            Printf.sprintf "%.2f" (Gpu.performance_density g);
            Acr_2022.classification_to_string (Gpu.classify_2022 g);
            Acr_2023.tier_to_string (Gpu.classify_2023 g);
            Arch_classifier.status_to_string (Arch_classifier.status g);
          ])
      gpus;
    Table.print t
  in
  Cmd.v (Cmd.info "survey" ~doc:"Print the 65-device survey with classifications.")
    Term.(const run $ only)

let main =
  let info =
    Cmd.info "acs" ~version:"1.0.0"
      ~doc:"Chip architectures under advanced computing sanctions: simulator, policy engine and DSE."
  in
  Cmd.group info
    [ classify_cmd; simulate_cmd; dse_cmd; scenarios_cmd; run_cmd;
      search_cmd; policy_lab_cmd; profile_cmd; survey_cmd; fps_cmd;
      serve_cmd; fleet_cmd; daemon_cmd; submit_cmd; daemon_jobs_cmd;
      cancel_cmd; package_cmd; plan_cmd ]


