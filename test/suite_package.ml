open Core
open Helpers

let die tpp =
  let cores =
    Device.cores_for_tpp ~tpp ~lanes_per_core:2 ~systolic:(Systolic.square 16) ()
  in
  Device.make ~name:"chiplet" ~core_count:cores ~lanes_per_core:2
    ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:16.
    ~memory:(Memory.make ~capacity_gb:16. ~bandwidth_tb_s:0.8)
    ~interconnect:(Interconnect.of_total_gb_s 100.)
    ()

let t_aggregation () =
  let d = die 1200. in
  let pkg =
    Package.make ~compute_die:d ~compute_die_area_mm2:740. ~compute_dies:4 ()
  in
  check_close "tpp sums" (4. *. Device.tpp d) (Package.total_tpp pkg);
  check_close "area sums" 2960. (Package.total_area_mm2 pkg);
  check_close "pd" (Package.total_tpp pkg /. 2960.)
    (Package.performance_density pkg);
  Alcotest.(check int) "die list" 4 (List.length (Package.die_areas pkg))

let t_io_dies () =
  let pkg =
    Package.make ~compute_die:(die 1200.) ~compute_die_area_mm2:400.
      ~compute_dies:2 ~io_die_area_mm2:300. ~io_dies:1 ()
  in
  check_close "area includes io" 1100. (Package.total_area_mm2 pkg);
  Alcotest.(check int) "three dies" 3 (List.length (Package.die_areas pkg));
  (* The IO die contributes area but not TPP, lowering PD. *)
  let no_io =
    Package.make ~compute_die:(die 1200.) ~compute_die_area_mm2:400.
      ~compute_dies:2 ()
  in
  Alcotest.(check bool) "io die lowers pd" true
    (Package.performance_density pkg < Package.performance_density no_io)

let t_removing_chiplets_keeps_pd () =
  (* Paper Sec. 2.3: dropping compute chiplets cuts TPP and area together,
     so PD is unchanged. *)
  let pkg =
    Package.make ~compute_die:(die 1200.) ~compute_die_area_mm2:500.
      ~compute_dies:4 ()
  in
  let smaller = Package.with_compute_dies pkg 2 in
  check_close "pd preserved"
    (Package.performance_density pkg)
    (Package.performance_density smaller);
  Alcotest.(check bool) "tpp halves" true
    (Package.total_tpp smaller < Package.total_tpp pkg)

let t_validation () =
  let d = die 1200. in
  check_raises_invalid "zero dies" (fun () ->
      ignore (Package.make ~compute_die:d ~compute_die_area_mm2:400. ~compute_dies:0 ()));
  check_raises_invalid "reticle-busting chiplet" (fun () ->
      ignore (Package.make ~compute_die:d ~compute_die_area_mm2:900. ~compute_dies:2 ()));
  check_raises_invalid "bad io" (fun () ->
      ignore
        (Package.make ~compute_die:d ~compute_die_area_mm2:400. ~compute_dies:2
           ~io_dies:1 ~io_die_area_mm2:0. ()));
  check_raises_invalid "with_compute_dies 0" (fun () ->
      ignore
        (Package.with_compute_dies
           (Package.make ~compute_die:d ~compute_die_area_mm2:400. ~compute_dies:2 ())
           0))

let t_escape_via_area () =
  (* The Sec. 2.5 headline: a 4799-TPP device needs > 3000 mm^2, which only
     a multi-chip module can provide. *)
  let d = die 1199. in
  let pkg =
    Package.make ~compute_die:d ~compute_die_area_mm2:755. ~compute_dies:4 ()
  in
  let spec =
    Spec.make ~tpp:(Package.total_tpp pkg) ~device_bw_gb_s:400.
      ~die_area_mm2:(Package.total_area_mm2 pkg) ()
  in
  check_between "tpp near 4796" 4700. 4799.9 (Package.total_tpp pkg);
  Alcotest.(check bool) "unregulated" true
    (Acr_2023.classify Acr_2023.Data_center spec = Acr_2023.Not_applicable);
  (* The same silicon as one die is not manufacturable. *)
  Alcotest.(check bool) "monolithic impossible" true
    (Package.monolithic_equivalent_area pkg > Presets.reticle_limit_mm2);
  (* Spec.of_package agrees with the manual construction. *)
  let auto = Spec.of_package ~device_bw_gb_s:400. pkg in
  check_close "of_package tpp" (Package.total_tpp pkg) auto.Spec.tpp;
  check_close "of_package area" (Package.total_area_mm2 pkg)
    auto.Spec.die_area_mm2;
  Alcotest.(check bool) "same classification" true
    (Acr_2023.classify Acr_2023.Data_center auto = Acr_2023.Not_applicable)

(* Package cost. *)

let t_package_cost () =
  let n7 = Cost_model.n7 in
  let mono = Cost_model.package_cost_usd ~process:n7 ~die_areas_mm2:[ 600. ] () in
  let split =
    Cost_model.package_cost_usd ~process:n7 ~die_areas_mm2:[ 300.; 300. ] ()
  in
  Alcotest.(check bool) "chiplets cheaper at 600mm2" true (split < mono);
  check_raises_invalid "empty" (fun () ->
      ignore (Cost_model.package_cost_usd ~process:n7 ~die_areas_mm2:[] ()));
  check_raises_invalid "bad assembly yield" (fun () ->
      ignore
        (Cost_model.package_cost_usd ~assembly_yield_per_die:0. ~process:n7
           ~die_areas_mm2:[ 100. ] ()))

let t_chiplet_advantage () =
  let n7 = Cost_model.n7 in
  (match Cost_model.chiplet_advantage ~process:n7 ~total_area_mm2:1600. ~dies:4 () with
  | Some adv -> Alcotest.(check bool) "large die advantage > 2x" true (adv > 2.)
  | None -> Alcotest.fail "1600mm2 fits a wafer");
  match Cost_model.chiplet_advantage ~process:n7 ~total_area_mm2:69000. ~dies:4 () with
  | None -> ()
  | Some _ -> Alcotest.fail "die larger than the wafer must be None"

let prop_package_cost_increases_with_dies_of_same_size =
  qcheck ~count:60 "adding a die adds cost"
    QCheck.(pair (float_range 50. 700.) (int_range 1 6))
    (fun (area, dies) ->
      let n7 = Cost_model.n7 in
      let areas n = List.init n (fun _ -> area) in
      Cost_model.package_cost_usd ~process:n7 ~die_areas_mm2:(areas (dies + 1)) ()
      > Cost_model.package_cost_usd ~process:n7 ~die_areas_mm2:(areas dies) ())

let suite =
  [
    test "TPP and area aggregate" t_aggregation;
    test "io dies" t_io_dies;
    test "removing chiplets keeps PD" t_removing_chiplets_keeps_pd;
    test "validation" t_validation;
    test "4799-TPP escape needs a multi-chip module" t_escape_via_area;
    test "package cost" t_package_cost;
    test "chiplet advantage" t_chiplet_advantage;
    prop_package_cost_increases_with_dies_of_same_size;
  ]
