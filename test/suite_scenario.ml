open Core
open Helpers

(* --- the registry --- *)

let t_registry_round_trip () =
  List.iter
    (fun s ->
      let back = Scenario.of_json (Scenario.to_json s) in
      if back <> s then
        Alcotest.failf "registry scenario %S does not round-trip" s.Scenario.name;
      (* ... and through the actual text representation. *)
      let j = Scenario.to_json s in
      if Json.of_string (Json.to_string ~indent:2 j) <> j then
        Alcotest.failf "manifest text of %S does not round-trip" s.Scenario.name)
    Scenario.registry

let t_registry_lookup () =
  Alcotest.(check bool) "find is case-insensitive" true
    (Scenario.find "FIG7-GPT3" <> None);
  Alcotest.(check bool) "unknown name" true (Scenario.find "fig99" = None);
  Alcotest.(check int) "names match registry" (List.length Scenario.registry)
    (List.length (Scenario.names ()));
  let uniq = List.sort_uniq compare (Scenario.names ()) in
  Alcotest.(check int) "names unique" (List.length Scenario.registry)
    (List.length uniq)

let t_registry_shapes () =
  let get name = Option.get (Scenario.find name) in
  Alcotest.(check int) "fig6 sweep size" 512 (Scenario.size (get "fig6-gpt3"));
  Alcotest.(check int) "fig7 sweep size" 1536 (Scenario.size (get "fig7-gpt3"));
  Alcotest.(check int) "fig12 sweep size" 2304 (Scenario.size (get "fig12-gpt3"));
  Alcotest.(check int) "point scenario" 1 (Scenario.size (get "a100-proxy"));
  (* The headline alias has the same evaluation context as its per-target
     sibling - that is what lets them share cache entries. *)
  Alcotest.(check bool) "fig7-gpt3 == fig7-gpt3-2400 (context)" true
    (Scenario.equal (get "fig7-gpt3") (get "fig7-gpt3-2400"));
  Alcotest.(check bool) "distinct TPP targets differ" false
    (Scenario.equal (get "fig7-gpt3-2400") (get "fig7-gpt3-4800"))

let t_compliance_regimes () =
  let fig6 = Option.get (Scenario.find "fig6-gpt3") in
  let fig7 = Option.get (Scenario.find "fig7-gpt3") in
  let d = List.hd (Eval.run fig6) in
  Alcotest.(check bool) "oct2022 regime uses 2022 rule" (Design.compliant_2022 d)
    (Scenario.compliant fig6 d);
  Alcotest.(check bool) "oct2023 regime uses 2023 rule" (Design.compliant_2023 d)
    (Scenario.compliant fig7 d);
  let pre = { fig7 with Scenario.regime = Regime.pre_acr } in
  Alcotest.(check bool) "pre-ACR: everything compliant" true
    (Scenario.compliant pre d)

(* --- manifest parsing --- *)

let t_manifest_minimal () =
  let s =
    Scenario.of_json
      (Json.of_string {|{"model": "GPT-3 175B", "tpp_target": 2400, "space": "oct2023"}|})
  in
  Alcotest.(check string) "anonymous" "" s.Scenario.name;
  Alcotest.(check bool) "preset model" true (s.Scenario.model = Model.gpt3_175b);
  Alcotest.(check bool) "defaults to the acr-2023 regime" true
    (Regime.equal s.Scenario.regime Regime.acr_2023);
  Alcotest.(check bool) "optional fields default" true
    (s.Scenario.request = None && s.Scenario.calib = None && s.Scenario.tp = None
    && s.Scenario.memory_gb = None)

let t_manifest_errors () =
  let fails what text =
    match Scenario.of_json (Json.of_string text) with
    | exception Json.Error _ -> ()
    | _ -> Alcotest.failf "%s: expected Json.Error" what
  in
  fails "missing model" {|{"tpp_target": 2400, "space": "oct2023"}|};
  fails "missing tpp_target" {|{"model": "GPT-3 175B", "space": "oct2023"}|};
  fails "missing target" {|{"model": "GPT-3 175B", "tpp_target": 2400}|};
  fails "both targets"
    {|{"model": "GPT-3 175B", "tpp_target": 2400, "space": "oct2023",
       "point": {"systolic_dim": 16, "lanes": 4, "l1_kb": 192, "l2_mb": 40,
                 "memory_bw_tb_s": 2, "device_bw_gb_s": 600}}|};
  fails "unknown model" {|{"model": "GPT-5", "tpp_target": 2400, "space": "oct2023"}|};
  fails "unknown sweep" {|{"model": "GPT-3 175B", "tpp_target": 2400, "space": "oct2024"}|};
  fails "unknown regime"
    {|{"model": "GPT-3 175B", "tpp_target": 2400, "space": "oct2023", "regime": "perestroika"}|};
  fails "unknown calibration knob"
    {|{"model": "GPT-3 175B", "tpp_target": 2400, "space": "oct2023",
       "calib": {"dram_eficiency": 0.8}}|}

(* --- generated scenarios --- *)

let scenario_gen =
  let open QCheck.Gen in
  let custom_model =
    Model.make ~name:"tiny-moe" ~num_layers:4 ~d_model:512 ~ffn_dim:1024
      ~n_heads:8 ~n_kv_heads:4 ~activation:Model.Swiglu
      ~moe:{ Model.num_experts = 8; top_k = 2 }
      ~bytes_per_param:1. ()
  in
  let model = oneof [ oneofl Model.presets; return custom_model ] in
  let request =
    opt
      (let* batch = int_range 1 64 in
       let* input_len = int_range 1 4096 in
       let* output_len = int_range 1 2048 in
       return (Request.make ~batch ~input_len ~output_len))
  in
  let calib =
    opt
      (let* eff = float_range 0.1 1.0 in
       let* leak = float_range 0.0 0.5 in
       return
         (Calib.of_json
            (Json.Obj
               [ ("dram_efficiency", Json.Number eff);
                 ("overlap_leak", Json.Number leak) ])))
  in
  let params =
    let* systolic_dim = oneofl [ 4; 8; 16; 32 ] in
    let* lanes = oneofl [ 1; 2; 4; 8 ] in
    let* l1 = oneofl [ 32.; 192.; 1024. ] in
    let* l2 = oneofl [ 8.; 40.; 80. ] in
    let* memory_bw = oneofl [ 0.8; 2.; 3.2 ] in
    let* device_bw = oneofl [ 400.; 600.; 900. ] in
    let* clock_mhz = oneofl [ Space.default_clock_mhz; 1000.; 1800. ] in
    return { Space.systolic_dim; lanes; l1; l2; memory_bw; device_bw; clock_mhz }
  in
  let custom_sweep =
    let axis g = list_size (int_range 1 3) g in
    let* systolic_dims = axis (oneofl [ 4; 8; 16 ]) in
    let* lanes_per_core = axis (oneofl [ 1; 2; 4 ]) in
    let* l1_kb = axis (oneofl [ 32.; 192. ]) in
    let* l2_mb = axis (oneofl [ 8.; 40. ]) in
    let* memory_bw_tb_s = axis (oneofl [ 0.8; 2. ]) in
    let* device_bw_gb_s = axis (oneofl [ 400.; 600. ]) in
    let* clock_mhz = axis (oneofl [ Space.default_clock_mhz; 1100. ]) in
    return
      { Space.systolic_dims; lanes_per_core; l1_kb; l2_mb; memory_bw_tb_s;
        device_bw_gb_s; clock_mhz }
  in
  let target =
    oneof
      [
        map (fun (_, s) -> Scenario.Space s) (oneofl Space.named);
        map (fun s -> Scenario.Space s) custom_sweep;
        map (fun p -> Scenario.Point p) params;
      ]
  in
  let* name = oneofl [ ""; "custom"; "Fig 7 (re-run)" ] in
  let* description = oneofl [ ""; "a generated scenario" ] in
  let* model = model in
  let* request = request in
  let* calib = calib in
  let* tp = opt (int_range 1 8) in
  let* memory_gb = opt (oneofl [ 24.; 80.; 141. ]) in
  let* tpp_target = oneofl [ 123.456; 1600.; 2400.; 4800. ] in
  let* target = target in
  let* regime =
    oneofl
      [ Regime.pre_acr; Regime.acr_2022; Regime.acr_2023; Regime.hbm_2024;
        Regime.proposal_ai_targeted;
        Regime.make ~description:"an inline counterfactual" "memwall"
          [ Regime.rule Regime.License
              (Regime.any_of
                 [ Regime.above Regime.Memory_bw_tb_s 1.2;
                   Regime.all_of
                     [ Regime.at_least Regime.Tpp 1600.;
                       Regime.not_ (Regime.at_least Regime.L1_kb 32.) ] ]) ] ]
  in
  return
    (Scenario.make ~name ~description ?request ?calib ?tp ?memory_gb ~regime
       ~model ~tpp_target target)

let scenario_arb =
  QCheck.make ~print:(fun s -> Json.to_string ~indent:2 (Scenario.to_json s))
    scenario_gen

let prop_scenario_round_trip =
  qcheck "Scenario.of_json (to_json s) = s" scenario_arb (fun s ->
      Scenario.of_json (Scenario.to_json s) = s)

let prop_scenario_equal_hash =
  qcheck "equal scenarios hash alike" (QCheck.pair scenario_arb scenario_arb)
    (fun (a, b) ->
      Scenario.equal a a
      && Scenario.hash a = Scenario.hash (Scenario.of_json (Scenario.to_json a))
      && (not (Scenario.equal a b) || Scenario.hash a = Scenario.hash b))

(* --- cache-key float semantics (the written-down Hashtbl equality) --- *)

let t_key_float_semantics () =
  let base = Option.get (Scenario.find "a100-proxy") in
  let with_mem m = { base with Scenario.memory_gb = Some m } in
  (* nan = nan under the cache key: a nan-bearing key must be able to hit
     its own entry (polymorphic (=) would say nan <> nan and miss
     forever). *)
  Alcotest.(check bool) "nan key equals itself" true
    (Scenario.equal (with_mem Float.nan) (with_mem Float.nan));
  Alcotest.(check bool) "(=) disagrees on nan (the bug being designed out)"
    false
    (with_mem Float.nan = with_mem Float.nan);
  Alcotest.(check int) "nan keys hash alike"
    (Scenario.hash (with_mem Float.nan))
    (Scenario.hash (with_mem (Float.of_string "nan")));
  (* -0. = 0.: both spellings are the same capacity, one cache entry. *)
  Alcotest.(check bool) "-0. equals 0." true
    (Scenario.equal (with_mem (-0.)) (with_mem 0.));
  Alcotest.(check int) "-0. hashes as 0."
    (Scenario.hash (with_mem 0.))
    (Scenario.hash (with_mem (-0.)));
  (* name/description/regime are not part of the evaluation context. *)
  let renamed =
    { base with Scenario.name = "other"; description = "x";
      regime = Regime.pre_acr }
  in
  Alcotest.(check bool) "name/description/regime excluded" true
    (Scenario.equal base renamed);
  Alcotest.(check int) "... and hash agrees" (Scenario.hash base)
    (Scenario.hash renamed)

let t_cache_shares_context () =
  Eval.clear ();
  let base = Option.get (Scenario.find "a100-proxy") in
  let s0 = Eval.stats () in
  let a = Eval.run base in
  let s1 = Eval.stats () in
  (* Same context under a different name and regime: all hits, no work. *)
  let b =
    Eval.run
      { base with Scenario.name = "renamed"; regime = Regime.acr_2022 }
  in
  let s2 = Eval.stats () in
  Alcotest.(check bool) "identical designs" true (a = b);
  Alcotest.(check int) "cold run evaluates" 1
    (s1.Eval.evaluations - s0.Eval.evaluations);
  Alcotest.(check int) "warm run hits" 1 (s2.Eval.hits - s1.Eval.hits);
  Alcotest.(check int) "warm run evaluates nothing" 0
    (s2.Eval.evaluations - s1.Eval.evaluations)

(* --- registry scenarios vs the legacy optional-argument API --- *)

let t_registry_matches_legacy () =
  let s = Option.get (Scenario.find "fig7-gpt3") in
  let via_scenario = Eval.run s in
  let via_legacy =
    Eval.sweep ~model:Model.gpt3_175b ~tpp_target:2400. Space.oct2023
  in
  Alcotest.(check int) "sweep size" 1536 (List.length via_scenario);
  Alcotest.(check bool) "bit-identical to the legacy entry point" true
    (via_scenario = via_legacy);
  (* And the ground truth, bypassing both cache and pool. *)
  let ground =
    Design.evaluate_sweep ~model:Model.gpt3_175b ~tpp_target:2400. Space.oct2023
  in
  Alcotest.(check bool) "bit-identical to Design.evaluate_sweep" true
    (via_scenario = ground)

(* --- Design CSV rows (shared by bench and `acs run`) --- *)

let t_csv_row_shape () =
  let s = Option.get (Scenario.find "a100-proxy") in
  let d = List.hd (Eval.run s) in
  Alcotest.(check int) "row width matches header"
    (List.length Design.csv_header)
    (List.length (Design.csv_row d));
  Alcotest.(check string) "header leads with the swept params" "systolic"
    (List.hd Design.csv_header)

(* --- bench helpers match models by name, not physical identity --- *)

let t_model_matching_by_name () =
  let copy = { Model.gpt3_175b with Model.name = "GPT-3 175B" } in
  Alcotest.(check bool) "copy is not physically equal" false
    (copy == Model.gpt3_175b);
  Alcotest.(check string) "model_tag finds the copy" "gpt3"
    (Acs_experiments.Common.model_tag copy);
  Alcotest.(check string) "llama tag" "llama3"
    (Acs_experiments.Common.model_tag Model.llama3_8b);
  Alcotest.(check string) "unknown models get a sanitized tag" "gpt-2-xl"
    (Acs_experiments.Common.model_tag Model.gpt2_xl);
  let a = Acs_experiments.Common.baseline copy in
  let b = Acs_experiments.Common.baseline Model.gpt3_175b in
  Alcotest.(check bool) "baseline works on structural copies" true (a = b)

let suite =
  [
    test "registry round-trips through JSON" t_registry_round_trip;
    test "registry lookup" t_registry_lookup;
    test "registry shapes" t_registry_shapes;
    test "compliance follows the regime" t_compliance_regimes;
    test "minimal manifest" t_manifest_minimal;
    test "malformed manifests" t_manifest_errors;
    prop_scenario_round_trip;
    prop_scenario_equal_hash;
    test "cache-key float semantics" t_key_float_semantics;
    test "cache shared across renamed contexts" t_cache_shares_context;
    test "registry scenario == legacy sweep" t_registry_matches_legacy;
    test "design csv row shape" t_csv_row_shape;
    test "bench matches models by name" t_model_matching_by_name;
  ]
