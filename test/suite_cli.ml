open Helpers

(* The CLI is a library (lib/cli) so its command tree can be driven
   in-process; stdout goes to alcotest's capture. *)

let run args =
  Cmdliner.Cmd.eval ~argv:(Array.of_list ("acs" :: args)) Acs_cli.Cli.main

let ok name args () = Alcotest.(check int) name 0 (run args)

let t_errors () =
  Alcotest.(check bool) "unknown device fails" true
    (run [ "classify"; "--device"; "RTX 9999" ] <> 0);
  Alcotest.(check bool) "classify needs input" true
    (run [ "classify" ] <> 0);
  Alcotest.(check bool) "unknown subcommand fails" true
    (run [ "frobnicate" ] <> 0);
  Alcotest.(check bool) "unknown model fails" true
    (run [ "simulate"; "--model"; "GPT-9" ] <> 0);
  Alcotest.(check bool) "unknown --like fails" true
    (run [ "simulate"; "--like"; "RTX 9999" ] <> 0)

let t_plan_infeasible () =
  Alcotest.(check bool) "impossible plan fails" true
    (run [ "plan"; "--model"; "GPT-3 175B"; "--max-devices"; "1"; "--memgb"; "16" ] <> 0)

let suite =
  [
    test "classify by device" (ok "classify" [ "classify"; "--device"; "H20" ]);
    test "classify hypothetical"
      (ok "classify" [ "classify"; "--tpp"; "2399"; "--area"; "760" ]);
    test "simulate defaults" (ok "simulate" [ "simulate" ]);
    test "simulate --like with report"
      (ok "simulate" [ "simulate"; "--like"; "H20"; "--model"; "Llama 3 8B"; "--report" ]);
    test "dse quick"
      (ok "dse" [ "dse"; "--space"; "oct2022"; "--model"; "Llama 3 8B"; "--top"; "2" ]);
    test "survey" (ok "survey" [ "survey"; "--only"; "dc" ]);
    test "fps" (ok "fps" [ "fps"; "--like"; "RTX 4090" ]);
    test "serve short"
      (ok "serve"
         [ "serve"; "--model"; "Llama 3 8B"; "--rate"; "2"; "--duration"; "5" ]);
    test "package" (ok "package" [ "package"; "--dies"; "4"; "--die-area"; "755" ]);
    test "plan" (ok "plan" [ "plan"; "--model"; "Llama 3 8B" ]);
    test "error handling" t_errors;
    test "infeasible plan" t_plan_infeasible;
  ]
