open Helpers

(* The CLI is a library (lib/cli) so its command tree can be driven
   in-process; stdout goes to alcotest's capture. *)

let run args =
  Cmdliner.Cmd.eval ~argv:(Array.of_list ("acs" :: args)) Acs_cli.Cli.main

let ok name args () = Alcotest.(check int) name 0 (run args)

let t_errors () =
  Alcotest.(check bool) "unknown device fails" true
    (run [ "classify"; "--device"; "RTX 9999" ] <> 0);
  Alcotest.(check bool) "classify needs input" true
    (run [ "classify" ] <> 0);
  Alcotest.(check bool) "unknown subcommand fails" true
    (run [ "frobnicate" ] <> 0);
  Alcotest.(check bool) "unknown model fails" true
    (run [ "simulate"; "--model"; "GPT-9" ] <> 0);
  Alcotest.(check bool) "unknown --like fails" true
    (run [ "simulate"; "--like"; "RTX 9999" ] <> 0)

let t_scenarios_errors () =
  Alcotest.(check bool) "unknown --dump fails" true
    (run [ "scenarios"; "--dump"; "fig99" ] <> 0)

let t_run_verb () =
  let out = Filename.temp_file "acs_run" "" in
  Sys.remove out;
  (* a100-proxy is a single-point scenario: fast enough for a unit test. *)
  Alcotest.(check int) "run registry scenario" 0
    (run [ "run"; "a100-proxy"; "--jobs"; "2"; "--out"; out ]);
  let csv = Filename.concat out "a100-proxy.csv" in
  Alcotest.(check bool) "csv written" true (Sys.file_exists csv);
  let ic = open_in csv in
  let header = input_line ic in
  let row = input_line ic in
  close_in ic;
  Alcotest.(check string) "bench-identical header"
    (String.concat "," Core.Design.csv_header)
    header;
  Alcotest.(check bool) "row present" true (String.length row > 0);
  (* The same scenario as a manifest file. *)
  let manifest = Filename.temp_file "acs_scenario" ".json" in
  let oc = open_out manifest in
  output_string oc
    (Core.Json.to_string
       (Core.Scenario.to_json (Option.get (Core.Scenario.find "a100-proxy"))));
  close_out oc;
  Alcotest.(check int) "run manifest file" 0 (run [ "run"; manifest ]);
  Sys.remove manifest

let t_run_errors () =
  Alcotest.(check bool) "unknown scenario fails" true
    (run [ "run"; "no-such-scenario" ] <> 0);
  Alcotest.(check bool) "--jobs 0 fails" true
    (run [ "run"; "a100-proxy"; "--jobs"; "0" ] <> 0);
  let bad = Filename.temp_file "acs_bad" ".json" in
  let oc = open_out bad in
  output_string oc {|{"model": "GPT-3 175B"}|};
  close_out oc;
  Alcotest.(check bool) "malformed manifest fails" true (run [ "run"; bad ] <> 0);
  Sys.remove bad

let t_profile_verb () =
  let trace = Filename.temp_file "acs_trace" ".json" in
  let metrics = Filename.temp_file "acs_metrics" ".json" in
  Alcotest.(check int) "profile a scenario" 0
    (run
       [ "profile"; "a100-proxy"; "--jobs"; "2"; "--trace"; trace;
         "--metrics"; metrics ]);
  (* The trace file is valid Chrome trace format with at least one span. *)
  let t = Core.Json.of_file trace in
  Alcotest.(check bool) "trace has events" true
    (Core.Json.to_list (Core.Json.member "traceEvents" t) <> []);
  (* The metrics export carries the eval histogram fed by the profile. *)
  let m = Core.Json.of_file metrics in
  let hist_names =
    List.map
      (fun e -> Core.Json.to_str (Core.Json.member "name" e))
      (Core.Json.to_list (Core.Json.member "histograms" m))
  in
  Alcotest.(check bool) "eval latencies exported" true
    (List.mem "dse_eval_seconds" hist_names);
  Sys.remove trace;
  Sys.remove metrics;
  Alcotest.(check bool) "profile unknown scenario fails" true
    (run [ "profile"; "no-such-scenario" ] <> 0);
  Alcotest.(check bool) "tracing left disabled" true
    (not (Core.Tracing.enabled ()))

let t_run_trace_flag () =
  let trace = Filename.temp_file "acs_run_trace" ".json" in
  Alcotest.(check int) "run --trace" 0
    (run [ "run"; "a100-proxy"; "--jobs"; "2"; "--trace"; trace ]);
  let t = Core.Json.of_file trace in
  Alcotest.(check bool) "trace written by run" true
    (Core.Json.to_list (Core.Json.member "traceEvents" t) <> []);
  Sys.remove trace

let t_plan_infeasible () =
  Alcotest.(check bool) "impossible plan fails" true
    (run [ "plan"; "--model"; "GPT-3 175B"; "--max-devices"; "1"; "--memgb"; "16" ] <> 0)

let suite =
  [
    test "classify by device" (ok "classify" [ "classify"; "--device"; "H20" ]);
    test "classify hypothetical"
      (ok "classify" [ "classify"; "--tpp"; "2399"; "--area"; "760" ]);
    test "simulate defaults" (ok "simulate" [ "simulate" ]);
    test "simulate --like with report"
      (ok "simulate" [ "simulate"; "--like"; "H20"; "--model"; "Llama 3 8B"; "--report" ]);
    test "dse quick"
      (ok "dse"
         [ "dse"; "--space"; "oct2022"; "--model"; "Llama 3 8B"; "--top"; "2";
           "--jobs"; "2" ]);
    test "scenarios listing" (ok "scenarios" [ "scenarios" ]);
    test "scenarios --dump"
      (ok "scenarios" [ "scenarios"; "--dump"; "fig7-gpt3" ]);
    test "scenarios errors" t_scenarios_errors;
    test "run verb" t_run_verb;
    test "run error handling" t_run_errors;
    test "survey" (ok "survey" [ "survey"; "--only"; "dc" ]);
    test "fps" (ok "fps" [ "fps"; "--like"; "RTX 4090" ]);
    test "serve short"
      (ok "serve"
         [ "serve"; "--model"; "Llama 3 8B"; "--rate"; "2"; "--duration"; "5" ]);
    test "package" (ok "package" [ "package"; "--dies"; "4"; "--die-area"; "755" ]);
    test "plan" (ok "plan" [ "plan"; "--model"; "Llama 3 8B" ]);
    test "profile verb" t_profile_verb;
    test "run --trace" t_run_trace_flag;
    test "error handling" t_errors;
    test "infeasible plan" t_plan_infeasible;
  ]
