open Core
open Helpers

(* Model *)

let t_gpt3 () =
  let m = Model.gpt3_175b in
  Alcotest.(check int) "layers" 96 m.Model.num_layers;
  Alcotest.(check int) "head dim" 128 (Model.head_dim m);
  Alcotest.(check int) "kv dim" 12288 (Model.kv_dim m);
  Alcotest.(check bool) "no gqa" false (Model.uses_gqa m);
  (* 4*d^2 + 2*d*ffn = 604M + 1208M *)
  check_within "params/layer" ~tolerance:0.001 1.812e9 (Model.params_per_layer m);
  check_within "total params" ~tolerance:0.01 174e9 (Model.total_params m)

let t_llama3 () =
  let m = Model.llama3_8b in
  Alcotest.(check int) "kv heads" 8 m.Model.n_kv_heads;
  Alcotest.(check int) "head dim" 128 (Model.head_dim m);
  Alcotest.(check int) "kv dim" 1024 (Model.kv_dim m);
  Alcotest.(check bool) "gqa" true (Model.uses_gqa m);
  (* 2*4096^2 + 2*4096*1024 + 3*4096*14336 *)
  check_within "params/layer" ~tolerance:0.001 218.1e6 (Model.params_per_layer m)

let t_kv_cache () =
  check_close "gpt3 kv/token/layer" (2. *. 12288. *. 2.)
    (Model.kv_cache_bytes_per_token Model.gpt3_175b);
  check_close "llama kv/token/layer" (2. *. 1024. *. 2.)
    (Model.kv_cache_bytes_per_token Model.llama3_8b)

let t_flops_per_token () =
  let m = Model.gpt3_175b in
  let base = Model.flops_per_token m ~context:0 in
  check_close "weights only" (2. *. Model.params_per_layer m) base;
  let with_ctx = Model.flops_per_token m ~context:1000 in
  Alcotest.(check bool) "context adds attention flops" true (with_ctx > base);
  check_raises_invalid "negative context" (fun () ->
      ignore (Model.flops_per_token m ~context:(-1)))

let t_model_validation () =
  check_raises_invalid "heads not dividing d" (fun () ->
      ignore
        (Model.make ~name:"bad" ~num_layers:1 ~d_model:100 ~ffn_dim:400
           ~n_heads:3 ~n_kv_heads:3 ~activation:Model.Gelu ()));
  check_raises_invalid "kv heads not dividing heads" (fun () ->
      ignore
        (Model.make ~name:"bad" ~num_layers:1 ~d_model:128 ~ffn_dim:512
           ~n_heads:8 ~n_kv_heads:3 ~activation:Model.Gelu ()))

let t_presets () =
  Alcotest.(check int) "preset count" 6 (List.length Model.presets);
  Alcotest.(check bool) "find gpt-3" true
    (Model.find_preset "gpt-3 175b" <> None);
  Alcotest.(check bool) "find missing" true (Model.find_preset "nope" = None)

(* Request *)

let t_request () =
  let r = Request.default in
  Alcotest.(check int) "prefill tokens" 65536 (Request.prefill_tokens r);
  Alcotest.(check int) "decode context" 2560 (Request.decode_context r);
  check_raises_invalid "bad batch" (fun () ->
      ignore (Request.make ~batch:0 ~input_len:1 ~output_len:1))

(* Op accounting *)

let t_matmul_accounting () =
  let mm =
    {
      Op.label = "t";
      m = 4;
      k = 8;
      n = 16;
      batch_count = 2;
      weights_streamed = true;
    }
  in
  check_close "macs" 1024. (Op.matmul_macs mm);
  check_close "flops" 2048. (Op.matmul_flops mm);
  check_close "weight bytes" (8. *. 16. *. 2. *. 2.)
    (Op.matmul_weight_bytes mm ~bytes_per_value:2.);
  check_close "activation bytes" (((4. *. 8.) +. (4. *. 16.)) *. 2. *. 2.)
    (Op.matmul_activation_bytes mm ~bytes_per_value:2.);
  let mm' = { mm with Op.weights_streamed = false } in
  check_close "no streamed weights" 0.
    (Op.matmul_weight_bytes mm' ~bytes_per_value:2.)

let t_elementwise_accounting () =
  let ew =
    { Op.label = "softmax"; elements = 100.; flops_per_element = 8.; memory_passes = 5. }
  in
  check_close "bytes" 1000. (Op.elementwise_bytes ew);
  check_close "flops" 800. (Op.flops (Op.Elementwise ew));
  check_close "allreduce flops" 0.
    (Op.flops (Op.All_reduce { label = "ar"; bytes = 10. }))

(* Layer builder *)

let ops_gpt3 phase = Layer.ops Model.gpt3_175b Request.default ~tp:4 phase

let find_matmul label ops =
  List.find_map
    (function
      | Op.Matmul mm when mm.Op.label = label -> Some mm
      | Op.Matmul _ | Op.Elementwise _ | Op.All_reduce _ -> None)
    ops
  |> function
  | Some mm -> mm
  | None -> Alcotest.failf "matmul %s not found" label

let t_layer_prefill_shapes () =
  let ops = ops_gpt3 Layer.Prefill in
  Alcotest.(check int) "op count" 15 (List.length ops);
  let qkv = find_matmul "qkv_proj" ops in
  Alcotest.(check int) "qkv m" 65536 qkv.Op.m;
  Alcotest.(check int) "qkv k" 12288 qkv.Op.k;
  Alcotest.(check int) "qkv n (sharded)" 9216 qkv.Op.n;
  let scores = find_matmul "attn_scores" ops in
  Alcotest.(check int) "scores m" 2048 scores.Op.m;
  Alcotest.(check int) "scores n" 2048 scores.Op.n;
  Alcotest.(check int) "scores batch" (32 * 24) scores.Op.batch_count

let t_layer_decode_shapes () =
  let ops = ops_gpt3 Layer.Decode in
  let qkv = find_matmul "qkv_proj" ops in
  Alcotest.(check int) "qkv m = batch" 32 qkv.Op.m;
  let scores = find_matmul "attn_scores" ops in
  Alcotest.(check int) "scores kv len" 2560 scores.Op.n;
  let ffn = find_matmul "ffn_up" ops in
  Alcotest.(check int) "ffn up n" 12288 ffn.Op.n

let t_layer_gqa () =
  (* GQA folds query-head groups into m and cuts K/V traffic. *)
  let ops = Layer.ops Model.llama3_8b Request.default ~tp:4 Layer.Decode in
  let scores = find_matmul "attn_scores" ops in
  Alcotest.(check int) "group folded into m" 4 scores.Op.m;
  Alcotest.(check int) "kv-head batch" (32 * 2) scores.Op.batch_count;
  let kv = Layer.kv_bytes_per_device Model.llama3_8b Request.default ~tp:4 in
  (* 2560 ctx * 32 batch * 2 (K and V) * 2 kv heads * 128 dim * 2 bytes *)
  check_close "kv bytes" (2560. *. 32. *. 2. *. 2. *. 128. *. 2.) kv

let t_layer_swiglu_vs_gelu () =
  let gelu_ops = ops_gpt3 Layer.Prefill in
  let swiglu_ops = Layer.ops Model.llama3_8b Request.default ~tp:4 Layer.Prefill in
  let up_g = find_matmul "ffn_up" gelu_ops in
  let up_s = find_matmul "ffn_up" swiglu_ops in
  Alcotest.(check int) "gelu: one up matrix" (49152 / 4) up_g.Op.n;
  Alcotest.(check int) "swiglu: gate+up matrices" (2 * 14336 / 4) up_s.Op.n

let t_layer_weight_bytes () =
  check_within "gpt3 weights/device" ~tolerance:0.001 (1.812e9 *. 2. /. 4.)
    (Layer.weight_bytes_per_device Model.gpt3_175b ~tp:4)

let t_layer_flops () =
  (* Prefill flops per device should be ~2 * params * tokens / tp plus
     attention. *)
  let flops = Layer.total_flops Model.gpt3_175b Request.default ~tp:4 Layer.Prefill in
  let weights = 2. *. 1.812e9 *. 65536. /. 4. in
  Alcotest.(check bool) "at least weight flops" true (flops > weights);
  Alcotest.(check bool) "within 10% above" true (flops < weights *. 1.10)

let t_moe_model () =
  let m = Model.mixtral_8x7b in
  Alcotest.(check int) "active experts" 2 (Model.active_experts m);
  Alcotest.(check int) "weight instances" 8 (Model.ffn_weight_instances m);
  Alcotest.(check int) "dense model single expert" 1
    (Model.active_experts Model.llama3_8b);
  (* ~46.7B parameters: attention + 8 expert FFNs per layer. *)
  check_within "total params" ~tolerance:0.02 46.7e9 (Model.total_params m);
  (* Active flops per token track ~12.6B parameters (attn + 2 experts):
     per layer 41.9M attention + 2 x 176.2M expert + router. *)
  check_within "active flops" ~tolerance:0.01 (2. *. 394.3e6)
    (Model.flops_per_token m ~context:0);
  check_raises_invalid "top_k > experts" (fun () ->
      ignore
        (Model.make ~name:"bad" ~num_layers:1 ~d_model:128 ~ffn_dim:512
           ~n_heads:8 ~n_kv_heads:8 ~activation:Model.Swiglu
           ~moe:{ Model.num_experts = 2; top_k = 3 } ()))

let t_moe_layer_ops () =
  let ops = Layer.ops Model.mixtral_8x7b Request.default ~tp:4 Layer.Decode in
  Alcotest.(check int) "router adds an op" 16 (List.length ops);
  let router = find_matmul "moe_router" ops in
  Alcotest.(check int) "router n = experts" 8 router.Op.n;
  let up = find_matmul "ffn_up" ops in
  Alcotest.(check int) "one instance per expert" 8 up.Op.batch_count;
  (* 32 tokens x top-2 over 8 experts = 8 rows per expert. *)
  Alcotest.(check int) "rows per expert" 8 up.Op.m;
  (* Decode weight traffic covers all 8 expert matrices: *)
  let moe_bytes = Op.matmul_weight_bytes up ~bytes_per_value:2. in
  let dense_ops = Layer.ops Model.llama3_8b Request.default ~tp:4 Layer.Decode in
  let dense_bytes =
    Op.matmul_weight_bytes (find_matmul "ffn_up" dense_ops) ~bytes_per_value:2.
  in
  check_close "8x the dense expert weights" (8. *. dense_bytes) moe_bytes

let t_layer_validation () =
  check_raises_invalid "tp 0" (fun () ->
      ignore (Layer.ops Model.gpt3_175b Request.default ~tp:0 Layer.Prefill));
  check_raises_invalid "tp not dividing heads" (fun () ->
      ignore (Layer.ops Model.gpt3_175b Request.default ~tp:7 Layer.Prefill))

let prop_flops_scale_with_tp =
  qcheck ~count:50 "per-device flops shrink with tp"
    (QCheck.make QCheck.Gen.(oneofl [ 1; 2; 4; 8 ]))
    (fun tp ->
      let f tp = Layer.total_flops Model.gpt3_175b Request.default ~tp Layer.Prefill in
      tp = 1 || f tp < f 1)

let prop_decode_less_flops =
  qcheck ~count:20 "decode flops << prefill flops"
    (QCheck.make QCheck.Gen.(oneofl [ 1; 2; 4 ]))
    (fun tp ->
      Layer.total_flops Model.llama3_8b Request.default ~tp Layer.Decode
      < Layer.total_flops Model.llama3_8b Request.default ~tp Layer.Prefill)

let suite =
  [
    test "gpt-3 config" t_gpt3;
    test "llama 3 config" t_llama3;
    test "kv cache sizing" t_kv_cache;
    test "flops per token" t_flops_per_token;
    test "model validation" t_model_validation;
    test "model presets" t_presets;
    test "request derived sizes" t_request;
    test "matmul accounting" t_matmul_accounting;
    test "elementwise accounting" t_elementwise_accounting;
    test "prefill shapes" t_layer_prefill_shapes;
    test "decode shapes" t_layer_decode_shapes;
    test "gqa folding" t_layer_gqa;
    test "swiglu vs gelu ffn" t_layer_swiglu_vs_gelu;
    test "weight bytes per device" t_layer_weight_bytes;
    test "prefill flops sanity" t_layer_flops;
    test "moe model accounting" t_moe_model;
    test "moe layer ops" t_moe_layer_ops;
    test "layer validation" t_layer_validation;
    prop_flops_scale_with_tp;
    prop_decode_less_flops;
  ]
