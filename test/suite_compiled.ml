(* The compiled workload fast path must be *bit*-identical to the per-op
   engine: [Eval] now runs every sweep through it, and the golden CSVs
   (table4, scorecard) are byte-compared, so even a last-ulp deviation -
   e.g. from reassociating the efficiency product or hoisting a term into
   a different expression shape - would surface as a golden diff. The
   property here holds every breakdown field to exact equality over
   random devices, models, parallelism degrees and request shapes. *)

open Core
open Helpers

let bits = Int64.bits_of_float

let breakdown_eq (a : Op_model.breakdown) (b : Op_model.breakdown) =
  bits a.Op_model.compute_s = bits b.Op_model.compute_s
  && bits a.Op_model.memory_s = bits b.Op_model.memory_s
  && bits a.Op_model.comm_s = bits b.Op_model.comm_s
  && bits a.Op_model.overhead_s = bits b.Op_model.overhead_s
  && bits a.Op_model.total_s = bits b.Op_model.total_s

let result_eq (a : Engine.result) (b : Engine.result) =
  bits a.Engine.ttft_s = bits b.Engine.ttft_s
  && bits a.Engine.tbt_s = bits b.Engine.tbt_s
  && breakdown_eq a.Engine.prefill b.Engine.prefill
  && breakdown_eq a.Engine.decode b.Engine.decode

(* Presets whose head counts every tp in {1,2,4,8} divides (gpt2_xl's 25
   heads would make [Layer.ops] reject most of them). *)
let models =
  [ Model.gpt3_175b; Model.llama3_8b; Model.llama3_70b; Model.mixtral_8x7b ]

let ctx_gen =
  let open QCheck.Gen in
  let* model = oneofl models in
  let* tp = oneofl [ 1; 2; 4; 8 ] in
  let* batch = int_range 1 64 in
  let* input_len = int_range 1 4096 in
  let* output_len = int_range 1 2048 in
  return (model, tp, Request.make ~batch ~input_len ~output_len)

let ctx_device_arb =
  QCheck.make
    ~print:(fun ((m, tp, r), d) ->
      Printf.sprintf "%s tp=%d batch=%d in=%d out=%d on %s" m.Model.name tp
        r.Request.batch r.Request.input_len r.Request.output_len
        (Device.summary d))
    QCheck.Gen.(pair ctx_gen device_gen)

let prop_simulate_identity =
  qcheck "simulate_compiled bit-identical to simulate" ctx_device_arb
    (fun ((model, tp, request), device) ->
      let legacy = Engine.simulate ~tp ~request device model in
      let compiled =
        Engine.simulate_compiled (Engine.compile ~tp ~request model) device
      in
      result_eq legacy compiled)

let t_defaults_identity () =
  (* The compile defaults must be the simulate defaults (tp 4, the
     paper's request). *)
  let d = Presets.a100 in
  List.iter
    (fun m ->
      Alcotest.(check bool)
        (m.Model.name ^ " under defaults") true
        (result_eq (Engine.simulate d m)
           (Engine.simulate_compiled (Engine.compile m) d)))
    models

let t_traced_identity () =
  (* The instrumented path (spans + phase histograms) must not perturb
     the numbers either. *)
  Tracing.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Tracing.set_enabled false)
    (fun () ->
      let d = Presets.a100 in
      Alcotest.(check bool)
        "traced compiled == traced legacy" true
        (result_eq
           (Engine.simulate d Model.gpt3_175b)
           (Engine.simulate_compiled (Engine.compile Model.gpt3_175b) d)))

let t_compile_validates_tp () =
  check_raises_invalid "tp 0" (fun () ->
      ignore (Engine.compile ~tp:0 Model.llama3_8b));
  check_raises_invalid "tp not dividing heads" (fun () ->
      ignore (Engine.compile ~tp:7 Model.llama3_8b))

(* Full-sweep identity through [Eval] (which evaluates via the compiled
   path) against the legacy [Design.evaluate_sweep], sequential and
   parallel, with tp/request overrides exercised. *)

let thinned =
  {
    Space.systolic_dims = [ 16; 32 ];
    lanes_per_core = [ 2; 4 ];
    l1_kb = [ 192.; 256. ];
    l2_mb = [ 32.; 48. ];
    memory_bw_tb_s = [ 2.; 2.4 ];
    device_bw_gb_s = [ 600. ];
    clock_mhz = [ Space.default_clock_mhz ];
  }

let t_sweep_identity () =
  let model = Model.llama3_8b in
  let request = Request.make ~batch:8 ~input_len:512 ~output_len:256 in
  let ground =
    Design.evaluate_sweep ~tp:2 ~request ~model ~tpp_target:2400. thinned
  in
  let run jobs =
    Parallel.with_jobs jobs (fun () ->
        Eval.sweep ~cache:false ~tp:2 ~request ~model ~tpp_target:2400.
          thinned)
  in
  Alcotest.(check bool)
    "1 job == legacy sweep (bit-identical)" true
    (run 1 = ground);
  Alcotest.(check bool)
    "4 jobs == legacy sweep (bit-identical)" true
    (run 4 = ground)

let suite =
  [
    prop_simulate_identity;
    test "identity under engine defaults" t_defaults_identity;
    test "identity with tracing enabled" t_traced_identity;
    test "compile validates tp" t_compile_validates_tp;
    test "full-sweep identity, sequential and parallel" t_sweep_identity;
  ]
