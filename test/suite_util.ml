open Core
open Helpers

(* Table *)

let t_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check string) "header" "name  value" (List.nth lines 0);
  Alcotest.(check string) "row 1" "a         1" (List.nth lines 2);
  Alcotest.(check string) "row 2" "bb       22" (List.nth lines 3)

let t_table_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  check_raises_invalid "too many cells" (fun () ->
      Table.add_row t [ "1"; "2"; "3"; "4" ])

let t_table_float_rows () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_float_row t "pi" [ 3.14159 ];
  Alcotest.(check bool) "formats" true
    (String.length (Table.to_string t) > 0);
  Alcotest.(check string) "fmt_g" "3.142" (Table.fmt_g 3.14159);
  Alcotest.(check string) "fmt_pct" "-27.0%" (Table.fmt_pct (-0.27));
  Alcotest.(check string) "fmt_pct positive" "+4.0%" (Table.fmt_pct 0.04)

let t_table_align_mismatch () =
  check_raises_invalid "aligns mismatch" (fun () ->
      Table.create ~aligns:[ Table.Left ] [ "a"; "b" ])

(* Scatter *)

let t_scatter_empty () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Alcotest.(check string) "empty" "(empty plot)" (Scatter.render p)

let t_scatter_points () =
  let p = Scatter.create ~width:20 ~height:8 ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add p ~marker:'o' ~x:0. ~y:0.;
  Scatter.add p ~marker:'x' ~x:10. ~y:5.;
  let s = Scatter.render p in
  Alcotest.(check bool) "has o" true (String.contains s 'o');
  Alcotest.(check bool) "has x" true (String.contains s 'x');
  Alcotest.(check bool) "axis range" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length > 8)

let t_scatter_degenerate () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add p ~marker:'*' ~x:5. ~y:5.;
  (* A single point must not divide by a zero extent. *)
  Alcotest.(check bool) "renders" true (String.contains (Scatter.render p) '*')

let t_scatter_series () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add_series p ~marker:'+' [ (1., 1.); (2., 2.); (3., 3.) ];
  Alcotest.(check bool) "renders" true (String.contains (Scatter.render p) '+');
  check_raises_invalid "too small" (fun () ->
      Scatter.create ~width:2 ~height:2 ~xlabel:"x" ~ylabel:"y" ())

(* Boxplot *)

let t_boxplot_renders () =
  let series =
    [
      { Boxplot.label = "all"; values = [ 1.; 2.; 3.; 4.; 10. ] };
      { Boxplot.label = "narrow"; values = [ 5.; 5.1; 5.2 ] };
    ]
  in
  let s = Boxplot.render ~width:40 series in
  let lines = String.split_on_char '\n' s in
  (* Two series lines plus the axis line (and a trailing empty split). *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check bool) "median marker" true (String.contains s '#');
  Alcotest.(check bool) "box edges" true
    (String.contains s '[' && String.contains s ']');
  Alcotest.(check bool) "labels present" true
    (String.length s > 0
    && List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "all") lines)

let t_boxplot_degenerate () =
  (* A constant series must not divide by a zero span. *)
  let s =
    Boxplot.render [ { Boxplot.label = "const"; values = [ 7.; 7.; 7. ] } ]
  in
  Alcotest.(check bool) "renders" true (String.contains s '#');
  check_raises_invalid "empty series list" (fun () -> ignore (Boxplot.render []));
  check_raises_invalid "empty values" (fun () ->
      ignore (Boxplot.render [ { Boxplot.label = "x"; values = [] } ]));
  check_raises_invalid "tiny width" (fun () ->
      ignore
        (Boxplot.render ~width:4 [ { Boxplot.label = "x"; values = [ 1. ] } ]))

let t_scatter_nonfinite () =
  (* A non-finite coordinate would reach [int_of_float] through the
     placement fraction (undefined in OCaml), so [add] must reject it
     up front. *)
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  check_raises_invalid "nan x" (fun () ->
      Scatter.add p ~marker:'o' ~x:nan ~y:1.);
  check_raises_invalid "inf y" (fun () ->
      Scatter.add p ~marker:'o' ~x:1. ~y:infinity);
  check_raises_invalid "-inf x" (fun () ->
      Scatter.add p ~marker:'o' ~x:neg_infinity ~y:1.);
  (* The rejected points left no state behind. *)
  Alcotest.(check string) "still empty" "(empty plot)" (Scatter.render p)

let t_scatter_zero_range () =
  (* Degenerate on one axis only: every x equal, y spread (and the
     transpose). The zero-extent axis must clamp, not divide to nan. *)
  let p = Scatter.create ~width:20 ~height:8 ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add p ~marker:'a' ~x:3. ~y:1.;
  Scatter.add p ~marker:'b' ~x:3. ~y:9.;
  let s = Scatter.render p in
  Alcotest.(check bool) "both markers" true
    (String.contains s 'a' && String.contains s 'b');
  let q = Scatter.create ~width:20 ~height:8 ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add q ~marker:'c' ~x:1. ~y:4.;
  Scatter.add q ~marker:'d' ~x:9. ~y:4.;
  let s = Scatter.render q in
  Alcotest.(check bool) "flat y renders" true
    (String.contains s 'c' && String.contains s 'd')

let t_boxplot_nonfinite () =
  check_raises_invalid "nan value" (fun () ->
      ignore
        (Boxplot.render [ { Boxplot.label = "x"; values = [ 1.; nan ] } ]));
  check_raises_invalid "inf value" (fun () ->
      ignore
        (Boxplot.render
           [ { Boxplot.label = "x"; values = [ 1.; infinity ] } ]));
  check_raises_invalid "-inf value" (fun () ->
      ignore
        (Boxplot.render
           [ { Boxplot.label = "x"; values = [ neg_infinity; 1. ] } ]))

(* Fs *)

let t_mkdir_p () =
  with_cache_dir @@ fun dir ->
  let deep = Filename.concat (Filename.concat dir "a") "b/c" in
  Fs.mkdir_p deep;
  Alcotest.(check bool) "created" true (Sys.is_directory deep);
  (* Idempotent on an existing tree. *)
  Fs.mkdir_p deep;
  Alcotest.(check bool) "still there" true (Sys.is_directory deep);
  (* A file in the way is an error, not a silent success. *)
  let file = Filename.concat dir "plain" in
  let oc = open_out file in
  close_out oc;
  (match Fs.mkdir_p file with
  | () -> Alcotest.fail "mkdir_p over a file: expected Sys_error"
  | exception Sys_error _ -> ());
  match Fs.mkdir_p (Filename.concat file "sub") with
  | () -> Alcotest.fail "mkdir_p under a file: expected Sys_error"
  | exception Sys_error _ -> ()

(* Csv *)

let t_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv.row_to_string [ "a"; "b,c"; "d" ])

let t_csv_cr_escape () =
  (* A bare CR splits the record for CRLF-aware readers, so it must force
     quoting just like LF does. *)
  Alcotest.(check string) "cr" "\"a\rb\"" (Csv.escape "a\rb");
  Alcotest.(check string) "lf" "\"a\nb\"" (Csv.escape "a\nb");
  Alcotest.(check string) "crlf" "\"a\r\nb\"" (Csv.escape "a\r\nb")

let t_csv_parse_row () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ]
    (Csv.parse_row "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ]
    (Csv.parse_row "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ]
    (Csv.parse_row "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty cells" [ ""; ""; "" ]
    (Csv.parse_row ",,")

let cell_gen =
  (* Printable ASCII plus the separators/quotes/newlines that exercise the
     quoting rules. *)
  QCheck.Gen.(
    string_size (int_range 0 12)
      ~gen:
        (frequency
           [ (6, printable); (2, oneofl [ ','; '"'; '\n'; '\r' ]) ]))

let prop_csv_round_trip =
  qcheck "parse_row (row_to_string cells) == cells"
    QCheck.(
      make
        ~print:(fun cs -> String.concat "|" cs)
        Gen.(list_size (int_range 1 8) cell_gen))
    (fun cells -> Csv.parse_row (Csv.row_to_string cells) = cells)

let t_csv_write () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "acs_test/out.csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let line1 = input_line ic in
  let line2 = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "x,y" line1;
  Alcotest.(check string) "row" "1,2" line2

(* Json *)

let t_json_parse () =
  let v =
    Json.of_string
      {| { "a": [1, 2.5, -3e2], "b": "x\ny \u0041\uD83D\uDE00", "c": {"d": null, "e": true} } |}
  in
  Alcotest.(check bool) "array" true
    (Json.member "a" v = Json.List [ Json.Number 1.; Json.Number 2.5; Json.Number (-300.) ]);
  Alcotest.(check string) "escapes + surrogate pair" "x\ny A\xF0\x9F\x98\x80"
    (Json.to_str (Json.member "b" v));
  Alcotest.(check bool) "null member" true
    (Json.member "d" (Json.member "c" v) = Json.Null);
  Alcotest.(check bool) "absent member is Null" true
    (Json.member "zzz" v = Json.Null);
  Alcotest.(check bool) "mem" true
    (Json.mem "d" (Json.member "c" v) && not (Json.mem "zzz" v))

let t_json_errors () =
  let fails s =
    match Json.of_string s with
    | exception Json.Error _ -> ()
    | _ -> Alcotest.failf "expected Json.Error on %S" s
  in
  List.iter fails
    [
      ""; "{"; "[1,]"; "{\"a\" 1}"; "nul"; "\"unterminated"; "1 2";
      "\"\\uD800x\""; "\"\\q\""; "01a";
    ];
  (match Json.to_int (Json.Number 1.5) with
  | exception Json.Error _ -> ()
  | _ -> Alcotest.fail "to_int on 1.5 must fail");
  check_raises_invalid "nan has no encoding" (fun () ->
      ignore (Json.to_string (Json.Number Float.nan)))

let t_json_print () =
  let v = Json.obj [ ("keep", Json.int 1); ("drop", Json.option Json.float None) ] in
  Alcotest.(check string) "obj drops Null members" {|{"keep":1}|}
    (Json.to_string v);
  Alcotest.(check string) "indent"
    "{\n  \"keep\": 1\n}"
    (Json.to_string ~indent:2 v)

let json_arb =
  let open QCheck.Gen in
  let finite_float =
    oneof
      [
        float_bound_inclusive 1e6;
        map float_of_int int;
        map (fun f -> if Float.is_finite f then f else 0.) float;
        oneofl [ 0.; -0.; 1e-7; 2.5; max_float; -1.0000000000000002 ];
      ]
  in
  let key = string_size ~gen:printable (int_range 0 6) in
  let gen =
    sized
    @@ fix (fun self n ->
           let scalar =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun f -> Json.Number f) finite_float;
                 map (fun s -> Json.String s) (string_size (int_range 0 8));
               ]
           in
           if n = 0 then scalar
           else
             frequency
               [
                 (2, scalar);
                 (1, map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2))));
                 (1, map (fun l -> Json.Obj l)
                       (list_size (int_range 0 4) (pair key (self (n / 2)))));
               ])
  in
  QCheck.make ~print:(fun v -> Json.to_string ~indent:2 v) gen

let prop_json_round_trip =
  qcheck "Json.of_string (to_string v) = v" json_arb (fun v ->
      Json.of_string (Json.to_string v) = v
      && Json.of_string (Json.to_string ~indent:2 v) = v)

(* Units *)

let t_units () =
  check_close "gb" 80e9 (Units.gb 80.);
  check_close "tbps" 2e12 (Units.tbps 2.);
  check_close "kb" 192e3 (Units.kb 192.);
  check_close "mhz" 1.41e9 (Units.mhz 1410.);
  check_close "to_ms" 1.5 (Units.to_ms 0.0015);
  check_close "to_us" 25. (Units.to_us 25e-6)

let t_units_pp () =
  Alcotest.(check string) "bytes" "40 MB" (Format.asprintf "%a" Units.pp_bytes 40e6);
  Alcotest.(check string) "bw" "600 GB/s"
    (Format.asprintf "%a" Units.pp_bandwidth 600e9);
  Alcotest.(check string) "time ms" "1.43 ms"
    (Format.asprintf "%a" Units.pp_time 0.00143)

(* Heap *)

let t_heap_basics () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  Alcotest.(check (option unit)) "pop empty" None
    (Option.map (fun _ -> ()) (Heap.pop h));
  Heap.push h 3 "c";
  Heap.push h 1 "a";
  Heap.push h 2 "b";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "min key peek" (Some 1) (Heap.min_key h);
  Alcotest.(check (list (pair int string)))
    "ordered drain"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (Heap.drain h);
  Alcotest.(check bool) "drained empty" true (Heap.is_empty h)

let t_heap_stability () =
  (* Equal keys must drain in insertion order: the fleet's decode
     re-arrivals tie on time and the tie-break decides routing order. *)
  let h = Heap.create ~cmp:(fun (a : float) b -> compare a b) in
  List.iteri (fun i k -> Heap.push h k i) [ 1.; 0.5; 1.; 0.5; 1.; 0.5 ];
  Alcotest.(check (list (pair (float 0.) int)))
    "ties drain FIFO"
    [ (0.5, 1); (0.5, 3); (0.5, 5); (1., 0); (1., 2); (1., 4) ]
    (Heap.drain h)

let prop_heap_sorts =
  qcheck "heap drains sorted and complete"
    QCheck.(list (int_range (-1000) 1000))
    (fun keys ->
      let h = Heap.create ~cmp:compare in
      List.iteri (fun i k -> Heap.push h k i) keys;
      let drained = Heap.drain h in
      let ks = List.map fst drained in
      ks = List.sort compare keys
      &&
      (* Stability, in general: equal keys carry increasing payloads
         (payload = push index). *)
      let rec stable = function
        | (k1, v1) :: ((k2, v2) :: _ as rest) ->
            (k1 < k2 || v1 < v2) && stable rest
        | _ -> true
      in
      stable drained)

let prop_heap_interleaved =
  qcheck "heap pop is min under interleaved push/pop"
    QCheck.(list (option (int_range 0 100)))
    (fun ops ->
      (* Some k = push k, None = pop; mirror against a sorted list. *)
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some k ->
              Heap.push h k ();
              model := List.merge compare [ k ] !model;
              true
          | None -> (
              match (Heap.pop h, !model) with
              | None, [] -> true
              | Some (k, ()), m :: rest ->
                  model := rest;
                  k = m
              | _ -> false))
        ops
      && Heap.length h = List.length !model)

let suite =
  [
    test "heap basics" t_heap_basics;
    test "heap equal keys drain FIFO" t_heap_stability;
    prop_heap_sorts;
    prop_heap_interleaved;
    test "table renders aligned" t_table_render;
    test "table pads short rows" t_table_padding;
    test "table float rows" t_table_float_rows;
    test "table align mismatch" t_table_align_mismatch;
    test "scatter empty" t_scatter_empty;
    test "scatter places markers" t_scatter_points;
    test "scatter single point" t_scatter_degenerate;
    test "scatter series" t_scatter_series;
    test "scatter rejects non-finite points" t_scatter_nonfinite;
    test "scatter zero-range axes" t_scatter_zero_range;
    test "boxplot rendering" t_boxplot_renders;
    test "boxplot edge cases" t_boxplot_degenerate;
    test "boxplot rejects non-finite values" t_boxplot_nonfinite;
    test "mkdir_p" t_mkdir_p;
    test "csv escaping" t_csv_escape;
    test "csv CR escaping" t_csv_cr_escape;
    test "csv row parsing" t_csv_parse_row;
    prop_csv_round_trip;
    test "csv writes files" t_csv_write;
    test "json parsing" t_json_parse;
    test "json malformed inputs" t_json_errors;
    test "json printing" t_json_print;
    prop_json_round_trip;
    test "unit conversions" t_units;
    test "unit pretty printing" t_units_pp;
  ]
