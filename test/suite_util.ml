open Core
open Helpers

(* Table *)

let t_table_render () =
  let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "name"; "value" ] in
  Table.add_row t [ "a"; "1" ];
  Table.add_row t [ "bb"; "22" ];
  let s = Table.to_string t in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check string) "header" "name  value" (List.nth lines 0);
  Alcotest.(check string) "row 1" "a         1" (List.nth lines 2);
  Alcotest.(check string) "row 2" "bb       22" (List.nth lines 3)

let t_table_padding () =
  let t = Table.create [ "a"; "b"; "c" ] in
  Table.add_row t [ "x" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "renders" true (String.length s > 0);
  check_raises_invalid "too many cells" (fun () ->
      Table.add_row t [ "1"; "2"; "3"; "4" ])

let t_table_float_rows () =
  let t = Table.create [ "k"; "v" ] in
  Table.add_float_row t "pi" [ 3.14159 ];
  Alcotest.(check bool) "formats" true
    (String.length (Table.to_string t) > 0);
  Alcotest.(check string) "fmt_g" "3.142" (Table.fmt_g 3.14159);
  Alcotest.(check string) "fmt_pct" "-27.0%" (Table.fmt_pct (-0.27));
  Alcotest.(check string) "fmt_pct positive" "+4.0%" (Table.fmt_pct 0.04)

let t_table_align_mismatch () =
  check_raises_invalid "aligns mismatch" (fun () ->
      Table.create ~aligns:[ Table.Left ] [ "a"; "b" ])

(* Scatter *)

let t_scatter_empty () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Alcotest.(check string) "empty" "(empty plot)" (Scatter.render p)

let t_scatter_points () =
  let p = Scatter.create ~width:20 ~height:8 ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add p ~marker:'o' ~x:0. ~y:0.;
  Scatter.add p ~marker:'x' ~x:10. ~y:5.;
  let s = Scatter.render p in
  Alcotest.(check bool) "has o" true (String.contains s 'o');
  Alcotest.(check bool) "has x" true (String.contains s 'x');
  Alcotest.(check bool) "axis range" true
    (String.length s > 0
    && String.split_on_char '\n' s |> List.length > 8)

let t_scatter_degenerate () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add p ~marker:'*' ~x:5. ~y:5.;
  (* A single point must not divide by a zero extent. *)
  Alcotest.(check bool) "renders" true (String.contains (Scatter.render p) '*')

let t_scatter_series () =
  let p = Scatter.create ~xlabel:"x" ~ylabel:"y" () in
  Scatter.add_series p ~marker:'+' [ (1., 1.); (2., 2.); (3., 3.) ];
  Alcotest.(check bool) "renders" true (String.contains (Scatter.render p) '+');
  check_raises_invalid "too small" (fun () ->
      Scatter.create ~width:2 ~height:2 ~xlabel:"x" ~ylabel:"y" ())

(* Boxplot *)

let t_boxplot_renders () =
  let series =
    [
      { Boxplot.label = "all"; values = [ 1.; 2.; 3.; 4.; 10. ] };
      { Boxplot.label = "narrow"; values = [ 5.; 5.1; 5.2 ] };
    ]
  in
  let s = Boxplot.render ~width:40 series in
  let lines = String.split_on_char '\n' s in
  (* Two series lines plus the axis line (and a trailing empty split). *)
  Alcotest.(check int) "line count" 4 (List.length lines);
  Alcotest.(check bool) "median marker" true (String.contains s '#');
  Alcotest.(check bool) "box edges" true
    (String.contains s '[' && String.contains s ']');
  Alcotest.(check bool) "labels present" true
    (String.length s > 0
    && List.exists (fun l -> String.length l >= 3 && String.sub l 0 3 = "all") lines)

let t_boxplot_degenerate () =
  (* A constant series must not divide by a zero span. *)
  let s =
    Boxplot.render [ { Boxplot.label = "const"; values = [ 7.; 7.; 7. ] } ]
  in
  Alcotest.(check bool) "renders" true (String.contains s '#');
  check_raises_invalid "empty series list" (fun () -> ignore (Boxplot.render []));
  check_raises_invalid "empty values" (fun () ->
      ignore (Boxplot.render [ { Boxplot.label = "x"; values = [] } ]));
  check_raises_invalid "tiny width" (fun () ->
      ignore
        (Boxplot.render ~width:4 [ { Boxplot.label = "x"; values = [ 1. ] } ]))

(* Csv *)

let t_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Csv.row_to_string [ "a"; "b,c"; "d" ])

let t_csv_cr_escape () =
  (* A bare CR splits the record for CRLF-aware readers, so it must force
     quoting just like LF does. *)
  Alcotest.(check string) "cr" "\"a\rb\"" (Csv.escape "a\rb");
  Alcotest.(check string) "lf" "\"a\nb\"" (Csv.escape "a\nb");
  Alcotest.(check string) "crlf" "\"a\r\nb\"" (Csv.escape "a\r\nb")

let t_csv_parse_row () =
  Alcotest.(check (list string)) "plain" [ "a"; "b"; "c" ]
    (Csv.parse_row "a,b,c");
  Alcotest.(check (list string)) "quoted comma" [ "a,b"; "c" ]
    (Csv.parse_row "\"a,b\",c");
  Alcotest.(check (list string)) "escaped quote" [ "a\"b" ]
    (Csv.parse_row "\"a\"\"b\"");
  Alcotest.(check (list string)) "empty cells" [ ""; ""; "" ]
    (Csv.parse_row ",,")

let cell_gen =
  (* Printable ASCII plus the separators/quotes/newlines that exercise the
     quoting rules. *)
  QCheck.Gen.(
    string_size (int_range 0 12)
      ~gen:
        (frequency
           [ (6, printable); (2, oneofl [ ','; '"'; '\n'; '\r' ]) ]))

let prop_csv_round_trip =
  qcheck "parse_row (row_to_string cells) == cells"
    QCheck.(
      make
        ~print:(fun cs -> String.concat "|" cs)
        Gen.(list_size (int_range 1 8) cell_gen))
    (fun cells -> Csv.parse_row (Csv.row_to_string cells) = cells)

let t_csv_write () =
  let path = Filename.concat (Filename.get_temp_dir_name ()) "acs_test/out.csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4" ] ];
  let ic = open_in path in
  let line1 = input_line ic in
  let line2 = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "x,y" line1;
  Alcotest.(check string) "row" "1,2" line2

(* Units *)

let t_units () =
  check_close "gb" 80e9 (Units.gb 80.);
  check_close "tbps" 2e12 (Units.tbps 2.);
  check_close "kb" 192e3 (Units.kb 192.);
  check_close "mhz" 1.41e9 (Units.mhz 1410.);
  check_close "to_ms" 1.5 (Units.to_ms 0.0015);
  check_close "to_us" 25. (Units.to_us 25e-6)

let t_units_pp () =
  Alcotest.(check string) "bytes" "40 MB" (Format.asprintf "%a" Units.pp_bytes 40e6);
  Alcotest.(check string) "bw" "600 GB/s"
    (Format.asprintf "%a" Units.pp_bandwidth 600e9);
  Alcotest.(check string) "time ms" "1.43 ms"
    (Format.asprintf "%a" Units.pp_time 0.00143)

let suite =
  [
    test "table renders aligned" t_table_render;
    test "table pads short rows" t_table_padding;
    test "table float rows" t_table_float_rows;
    test "table align mismatch" t_table_align_mismatch;
    test "scatter empty" t_scatter_empty;
    test "scatter places markers" t_scatter_points;
    test "scatter single point" t_scatter_degenerate;
    test "scatter series" t_scatter_series;
    test "boxplot rendering" t_boxplot_renders;
    test "boxplot edge cases" t_boxplot_degenerate;
    test "csv escaping" t_csv_escape;
    test "csv CR escaping" t_csv_cr_escape;
    test "csv row parsing" t_csv_parse_row;
    prop_csv_round_trip;
    test "csv writes files" t_csv_write;
    test "unit conversions" t_units;
    test "unit pretty printing" t_units_pp;
  ]
