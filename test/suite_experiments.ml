(* Integration smoke tests: every experiment of the harness must run to
   completion (their printed output lands in alcotest's capture). This
   catches regressions a unit test on a single module would miss - e.g. a
   sweep that starts raising on some design point. *)

open Helpers

let exp name run = test name (fun () -> run ())

let t_results_csvs () =
  (* Experiments write their CSV series; spot-check one. *)
  Acs_experiments.Exp_fig5.run ();
  let path = Filename.concat Acs_experiments.Common.results_dir "fig5.csv" in
  Alcotest.(check bool) "fig5.csv exists" true (Sys.file_exists path);
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Alcotest.(check string) "header" "series,tpp,devbw_gb_s,ttft_ms,tbt_ms" header

let suite =
  [
    exp "table1" Acs_experiments.Exp_table1.run;
    exp "fig1" Acs_experiments.Exp_fig1.run;
    exp "fig5" Acs_experiments.Exp_fig5.run;
    exp "fig6" Acs_experiments.Exp_fig6.run;
    exp "fig7" Acs_experiments.Exp_fig7.run;
    exp "table4" Acs_experiments.Exp_table4.run;
    exp "fig8" Acs_experiments.Exp_fig8.run;
    exp "fig9-10" Acs_experiments.Exp_fig9_10.run;
    exp "fig11" Acs_experiments.Exp_fig11.run;
    exp "fig12" Acs_experiments.Exp_fig12.run;
    exp "sec54" Acs_experiments.Exp_sec54.run;
    exp "chiplet" Acs_experiments.Exp_chiplet.run;
    exp "history" Acs_experiments.Exp_history.run;
    exp "power" Acs_experiments.Exp_power.run;
    exp "serving" Acs_experiments.Exp_serving.run;
    exp "newrules" Acs_experiments.Exp_newrules.run;
    exp "economics" Acs_experiments.Exp_economics.run;
    exp "workload" Acs_experiments.Exp_workload.run;
    exp "training" Acs_experiments.Exp_training.run;
    exp "scorecard" Acs_experiments.Exp_scorecard.run;
    test "csv output" t_results_csvs;
  ]
