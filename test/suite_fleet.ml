(* Fleet simulator (Cluster): routing, disaggregated handoff, and the
   invariants that tie fleet accounting back to the per-device simulator. *)

open Core
open Helpers

let model = Model.llama3_8b
let dev = Presets.a100

let small_trace =
  Trace.synthetic ~rate_per_s:4. ~duration_s:10. ~mean_input:256
    ~mean_output:32 ()

(* An overload trace: more offered work than a couple of groups serve in
   the window, so routing decisions and queueing actually matter. *)
let heavy_trace =
  Trace.synthetic ~rate_per_s:20. ~duration_s:8. ~mean_input:256
    ~mean_output:32 ()

let unified ?(routing = Fleet.Least_loaded) ?(count = 2) () =
  Fleet.make ~routing [ Fleet.pool ~count dev ]

let disagg ?(routing = Fleet.Least_loaded) () =
  Fleet.make ~routing
    [
      Fleet.pool ~role:Fleet.Prefill ~count:1 dev;
      Fleet.pool ~role:Fleet.Decode ~count:2 dev;
    ]

let sum_groups fs f =
  List.fold_left
    (fun acc ps -> Array.fold_left (fun acc s -> acc + f s) acc ps.Fleet.per_group)
    0 fs.Fleet.pools

(* Every fleet run must conserve requests and tokens against its own
   per-group stats, and no group may overcommit its HBM. *)
let check_fleet_invariants ~trace fs =
  let n_trace = List.length trace in
  Alcotest.(check int)
    "every request completes or is rejected" n_trace
    (List.length fs.Fleet.outcomes + List.length fs.Fleet.rejected);
  Alcotest.(check int)
    "produced tokens = sum of per-group produced"
    (sum_groups fs (fun s -> s.Simulator.produced_tokens))
    fs.Fleet.produced_tokens;
  Alcotest.(check int)
    "completed = sum of per-pool completed"
    (List.fold_left (fun acc ps -> acc + ps.Fleet.pool_completed) 0 fs.Fleet.pools)
    (sum_groups fs (fun s -> List.length s.Simulator.outcomes));
  List.iter
    (fun ps ->
      Array.iter
        (fun s ->
          if s.Simulator.peak_hbm_bytes > s.Simulator.hbm_capacity_bytes then
            Alcotest.failf "group in %s overcommitted HBM: %.3g > %.3g"
              ps.Fleet.pool_name s.Simulator.peak_hbm_bytes
              s.Simulator.hbm_capacity_bytes;
          check_between
            (ps.Fleet.pool_name ^ " utilization")
            0. 1.000001 ps.Fleet.utilization)
        ps.Fleet.per_group)
    fs.Fleet.pools;
  (* Each original request id appears exactly once across outcomes and
     rejects. *)
  let seen = Hashtbl.create n_trace in
  List.iter
    (fun (o : Simulator.request_outcome) ->
      Hashtbl.replace seen o.Simulator.request.Trace.id ())
    fs.Fleet.outcomes;
  List.iter (fun (r : Trace.request) -> Hashtbl.replace seen r.Trace.id ()) fs.Fleet.rejected;
  Alcotest.(check int) "no request lost or duplicated" n_trace (Hashtbl.length seen)

let t_single_group_identity () =
  (* The acceptance bar: a 1-group unified fleet is the bare simulator,
     bit for bit - same outcomes, same clocks, same peaks. *)
  let fs = Fleet.run (unified ~count:1 ()) model small_trace in
  let solo = Simulator.run dev model small_trace in
  match fs.Fleet.pools with
  | [ ps ] ->
      Alcotest.(check int) "one group" 1 (Array.length ps.Fleet.per_group);
      Alcotest.(check bool)
        "1-group fleet stats = Simulator.run stats" true
        (ps.Fleet.per_group.(0) = solo);
      Alcotest.(check int)
        "fleet outcome count matches" (List.length solo.Simulator.outcomes)
        (List.length fs.Fleet.outcomes);
      check_close "fleet generated = solo generated"
        (float_of_int solo.Simulator.generated_tokens)
        (float_of_int fs.Fleet.generated_tokens)
  | _ -> Alcotest.fail "expected exactly one pool"

let t_unified_conservation () =
  let fs = Fleet.run (unified ()) model heavy_trace in
  check_fleet_invariants ~trace:heavy_trace fs;
  (* Unified fleets complete everything that fits, and generated tokens
     split exactly across groups. *)
  Alcotest.(check int)
    "generated = sum of per-group generated"
    (sum_groups fs (fun s -> s.Simulator.generated_tokens))
    fs.Fleet.generated_tokens

let t_heterogeneous_conservation () =
  let slow =
    { dev with
      Device.name = "slow-a100";
      memory = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:1. }
  in
  let fleet =
    Fleet.make ~routing:Fleet.Phase_affine
      [ Fleet.pool ~count:1 dev; Fleet.pool ~count:2 slow ]
  in
  let fs = Fleet.run fleet model heavy_trace in
  check_fleet_invariants ~trace:heavy_trace fs;
  Alcotest.(check int) "three groups" 3 fs.Fleet.groups;
  (* Phase-affine routing must still use every group under overload. *)
  List.iter
    (fun ps ->
      if ps.Fleet.pool_completed + ps.Fleet.pool_rejected = 0 then
        Alcotest.failf "pool %s never routed to" ps.Fleet.pool_name)
    fs.Fleet.pools

let t_round_robin_balances () =
  let fs = Fleet.run (unified ~routing:Fleet.Round_robin ()) model heavy_trace in
  match fs.Fleet.pools with
  | [ ps ] ->
      let counts =
        Array.map
          (fun s ->
            List.length s.Simulator.outcomes + List.length s.Simulator.rejected)
          ps.Fleet.per_group
      in
      let diff = abs (counts.(0) - counts.(1)) in
      if diff > 1 then
        Alcotest.failf "round-robin split %d/%d" counts.(0) counts.(1)
  | _ -> Alcotest.fail "expected one pool"

let t_disaggregated_conservation () =
  let fs = Fleet.run (disagg ()) model heavy_trace in
  check_fleet_invariants ~trace:heavy_trace fs;
  (* Every completed multi-token request shipped its KV exactly once. *)
  let multi =
    List.length
      (List.filter
         (fun (o : Simulator.request_outcome) ->
           o.Simulator.request.Trace.output_len > 1)
         fs.Fleet.outcomes)
  in
  if fs.Fleet.handoff_transfers < multi then
    Alcotest.failf "%d completions but only %d handoffs" multi
      fs.Fleet.handoff_transfers;
  Alcotest.(check bool) "handoff bytes accumulated" true (fs.Fleet.handoff_bytes > 0.);
  Alcotest.(check bool) "handoff delay positive" true (fs.Fleet.mean_handoff_s > 0.);
  (* Token conservation across the split: prefill contributes one token
     per handed-off request, decode the rest, so the per-group sum equals
     the unified count (no decode-side rejects here - the pools share one
     device type). *)
  Alcotest.(check int)
    "produced = generated across the handoff" fs.Fleet.generated_tokens
    fs.Fleet.produced_tokens;
  (* The merged outcome timeline is causally ordered: first token before
     finish, decode finish after the prefill-side handoff. *)
  List.iter
    (fun (o : Simulator.request_outcome) ->
      if o.Simulator.ttft_s <= 0. then Alcotest.fail "non-positive ttft";
      if o.Simulator.finish_s < o.Simulator.request.Trace.arrival_s then
        Alcotest.fail "finished before arrival";
      if o.Simulator.request.Trace.output_len > 1 && o.Simulator.tbt_s <= 0.
      then Alcotest.fail "multi-token request with non-positive tbt")
    fs.Fleet.outcomes

let t_disagg_slower_ttft_than_idle_decode () =
  (* The decode pool adds transfer delay to the token stream, never to
     TTFT: first tokens come off the prefill side. With an idle prefill
     pool, disaggregated p50 TTFT should be close to (and not wildly above)
     a unified fleet of the same prefill silicon. *)
  let light =
    Trace.synthetic ~rate_per_s:1. ~duration_s:10. ~mean_input:256
      ~mean_output:16 ()
  in
  let fs_u = Fleet.run (unified ~count:1 ()) model light in
  let fs_d = Fleet.run (disagg ()) model light in
  check_between "disagg p50 ttft vs unified" (0.5 *. fs_u.Fleet.p50_ttft_s)
    (2. *. fs_u.Fleet.p50_ttft_s) fs_d.Fleet.p50_ttft_s

let t_fleet_validation () =
  check_raises_invalid "no pools" (fun () -> ignore (Fleet.make []));
  check_raises_invalid "bad count" (fun () ->
      ignore (Fleet.pool ~count:0 dev));
  check_raises_invalid "duplicate names" (fun () ->
      ignore (Fleet.make [ Fleet.pool ~count:1 dev; Fleet.pool ~count:2 dev ]));
  check_raises_invalid "prefill without decode" (fun () ->
      ignore (Fleet.make [ Fleet.pool ~role:Fleet.Prefill ~count:1 dev ]));
  check_raises_invalid "unified mixed with prefill/decode" (fun () ->
      ignore
        (Fleet.make
           [
             Fleet.pool ~name:"u" ~count:1 dev;
             Fleet.pool ~role:Fleet.Prefill ~count:1 dev;
             Fleet.pool ~role:Fleet.Decode ~count:1 dev;
           ]));
  check_raises_invalid "non-positive handoff bandwidth" (fun () ->
      ignore (Fleet.make ~handoff_gb_s:0. [ Fleet.pool ~count:1 dev ]));
  check_raises_invalid "empty trace" (fun () ->
      ignore (Fleet.run (unified ()) model []));
  check_raises_invalid "duplicate request ids" (fun () ->
      let r = { Trace.id = 1; arrival_s = 0.; input_len = 64; output_len = 8 } in
      ignore (Fleet.run (unified ()) model [ r; r ]))

let t_devices_for_qps () =
  let fs = Fleet.run (unified ()) model heavy_trace in
  check_raises_invalid "non-positive target" (fun () ->
      ignore (Fleet.devices_for_qps fs ~target_qps:0.));
  let achieved = fs.Fleet.requests_per_s in
  Alcotest.(check bool) "fleet achieved a rate" true (achieved > 0.);
  (* Sizing for the achieved rate can only shrink the fleet (utilization
     <= 1); doubling the target is monotone. *)
  let at_achieved = Fleet.devices_for_qps fs ~target_qps:achieved in
  List.iter2
    (fun (p : Fleet.pool) (name, n) ->
      Alcotest.(check string) "plan order follows pools" p.Fleet.name name;
      check_between "groups at achieved rate" 1. (float_of_int p.Fleet.count)
        (float_of_int n))
    (unified ()).Fleet.pools at_achieved;
  let doubled = Fleet.devices_for_qps fs ~target_qps:(2. *. achieved) in
  List.iter2
    (fun (_, n1) (_, n2) ->
      if n2 < n1 then Alcotest.failf "doubling the target shrank the fleet")
    at_achieved doubled

let t_cost_per_mtok () =
  let fleet = unified () in
  let fs = Fleet.run fleet model heavy_trace in
  let unwrap what = function
    | Some c -> c
    | None -> Alcotest.failf "%s: expected Some cost" what
  in
  let cost =
    unwrap "measured fleet"
      (Fleet.silicon_usd_per_mtok ~die_cost_usd:(fun _ -> 1000.) fleet fs)
  in
  Alcotest.(check bool) "cost positive and finite" true
    (cost > 0. && Float.is_finite cost);
  (* Double the die price, double the rate. *)
  let cost2 =
    unwrap "doubled die price"
      (Fleet.silicon_usd_per_mtok ~die_cost_usd:(fun _ -> 2000.) fleet fs)
  in
  check_close "cost scales with die price" (2. *. cost) cost2;
  (* Regression: a fleet that sustained nothing has no per-token cost -
     the old API returned [infinity] here (and NaN for a zero-cost
     fleet), which leaked straight into comparisons and tables. *)
  let dead = { fs with Fleet.throughput_tokens_per_s = 0. } in
  (match Fleet.silicon_usd_per_mtok ~die_cost_usd:(fun _ -> 1000.) fleet dead with
  | None -> ()
  | Some c -> Alcotest.failf "zero-throughput fleet costed at %g/Mtok" c);
  (match
     Fleet.silicon_usd_per_mtok ~die_cost_usd:(fun _ -> 1000.) fleet
       { fs with Fleet.throughput_tokens_per_s = infinity }
   with
  | None -> ()
  | Some c -> Alcotest.failf "non-finite throughput costed at %g/Mtok" c)

let t_fleet_slo () =
  let fs = Fleet.run (unified ()) model small_trace in
  let a = Fleet.slo_attainment fs ~ttft_s:1e9 ~tbt_s:1e9 in
  check_close "loose objectives met" 1. a;
  let z = Fleet.slo_attainment fs ~ttft_s:1e-12 ~tbt_s:1e-12 in
  check_close "impossible objectives missed" 0. z;
  check_raises_invalid "bad objective" (fun () ->
      ignore (Fleet.slo_attainment fs ~ttft_s:0. ~tbt_s:1.))

(* Property: over random fleet shapes, routings and traces, the
   conservation and KV-safety invariants hold - including across the
   disaggregated handoff. *)
let t_fleet_properties =
  let gen =
    QCheck.make
      ~print:(fun (count, routing, disagg, seed) ->
        Printf.sprintf "count=%d routing=%d disagg=%b seed=%d" count routing
          disagg seed)
      QCheck.Gen.(
        quad (int_range 1 3) (int_range 0 2) bool (int_range 0 1000))
  in
  qcheck ~count:10 "fleet invariants hold over random fleets" gen
    (fun (count, routing, disaggregated, seed) ->
      let routing =
        match routing with
        | 0 -> Fleet.Round_robin
        | 1 -> Fleet.Least_loaded
        | _ -> Fleet.Phase_affine
      in
      let fleet =
        if disaggregated then
          Fleet.make ~routing
            [
              Fleet.pool ~role:Fleet.Prefill ~count:1 dev;
              Fleet.pool ~role:Fleet.Decode ~count dev;
            ]
        else Fleet.make ~routing [ Fleet.pool ~count dev ]
      in
      let trace =
        Trace.synthetic ~seed ~rate_per_s:6. ~duration_s:5. ~mean_input:128
          ~mean_output:16 ()
      in
      match trace with
      | [] -> true
      | trace ->
          let fs = Fleet.run fleet model trace in
          check_fleet_invariants ~trace fs;
          true)

(* ---- streamed (bounded-memory, domain-parallel) execution ---- *)

(* Totals that both execution modes must agree on. Streamed stats keep no
   outcome lists, so the comparison is over counters, per-group step
   counts and clocks. *)
let totals fs =
  ( fs.Fleet.completed,
    fs.Fleet.rejected_count,
    fs.Fleet.generated_tokens,
    fs.Fleet.produced_tokens,
    fs.Fleet.handoff_transfers,
    fs.Fleet.makespan_s,
    sum_groups fs (fun s -> s.Simulator.prefill_batches),
    sum_groups fs (fun s -> s.Simulator.decode_steps) )

let t_stream_equals_run_round_robin () =
  (* Round-robin routing is epoch-independent, so the streamed engine
     must reproduce the materialized run exactly - unified and across the
     disaggregated handoff, at several epoch sizes including one smaller
     than the trace. *)
  List.iter
    (fun fleet ->
      let fs_run = Fleet.run fleet model heavy_trace in
      List.iter
        (fun epoch ->
          let fs_stream =
            Fleet.run_stream ~epoch fleet model (Trace.of_list heavy_trace)
          in
          Alcotest.(check bool)
            (Printf.sprintf "streamed totals = run totals (epoch %d)" epoch)
            true
            (totals fs_stream = totals fs_run);
          Alcotest.(check (list int))
            "no outcome list retained" []
            (List.map
               (fun (o : Simulator.request_outcome) ->
                 o.Simulator.request.Trace.id)
               fs_stream.Fleet.outcomes))
        [ 1; 7; 512 ])
    [ unified ~routing:Fleet.Round_robin (); disagg ~routing:Fleet.Round_robin () ]

let t_stream_single_group_identity () =
  (* 1-group streamed fleet vs the bare simulator: same counters, steps
     and makespan, with the percentile fields within the online sketch's
     1% relative error of the exact ones. *)
  let solo = Simulator.run dev model small_trace in
  let fs =
    Fleet.run_stream (unified ~count:1 ()) model (Trace.of_list small_trace)
  in
  Alcotest.(check int) "completed" (List.length solo.Simulator.outcomes)
    fs.Fleet.completed;
  Alcotest.(check int) "generated" solo.Simulator.generated_tokens
    fs.Fleet.generated_tokens;
  Alcotest.(check int) "produced" solo.Simulator.produced_tokens
    fs.Fleet.produced_tokens;
  check_close "makespan" solo.Simulator.makespan_s fs.Fleet.makespan_s;
  (* nearest-rank vs interpolated differ by at most one order statistic;
     on these small samples 20% head-room is ample without being vacuous *)
  check_within "p50 ttft" ~tolerance:0.2 solo.Simulator.p50_ttft_s
    fs.Fleet.p50_ttft_s;
  check_within "p50 tbt" ~tolerance:0.2 solo.Simulator.p50_tbt_s
    fs.Fleet.p50_tbt_s

let t_stream_slo_online () =
  let fs_run = Fleet.run (unified ()) model small_trace in
  let exact = Fleet.slo_attainment fs_run ~ttft_s:0.5 ~tbt_s:0.05 in
  let fs =
    Fleet.run_stream ~slo:(0.5, 0.05) (unified ()) model
      (Trace.of_list small_trace)
  in
  (match fs.Fleet.slo_attained with
  | Some a -> check_close "online slo = exact slo" exact a
  | None -> Alcotest.fail "streamed run with ?slo reported no attainment");
  let fs_none = Fleet.run_stream (unified ()) model (Trace.of_list small_trace) in
  Alcotest.(check bool) "no slo requested, none reported" true
    (fs_none.Fleet.slo_attained = None);
  check_raises_invalid "bad slo objective" (fun () ->
      ignore
        (Fleet.run_stream ~slo:(0., 1.) (unified ()) model
           (Trace.of_list small_trace)))

let t_stream_validation () =
  check_raises_invalid "empty stream" (fun () ->
      ignore (Fleet.run_stream (unified ()) model (Trace.of_list [])));
  check_raises_invalid "bad epoch" (fun () ->
      ignore
        (Fleet.run_stream ~epoch:0 (unified ()) model
           (Trace.of_list small_trace)));
  check_raises_invalid "duplicate ids in stream" (fun () ->
      let r = { Trace.id = 1; arrival_s = 0.; input_len = 64; output_len = 8 } in
      ignore (Fleet.run_stream (disagg ()) model (Trace.of_list [ r; r ])))

(* The acceptance bar for the parallel engine: the merged stats are
   bit-identical whether the groups step on 1 domain or 4, over random
   fleet shapes, routings and epoch sizes. *)
let t_stream_jobs_identity =
  let gen =
    QCheck.make
      ~print:(fun (count, routing, disagg, epoch, seed) ->
        Printf.sprintf "count=%d routing=%d disagg=%b epoch=%d seed=%d" count
          routing disagg epoch seed)
      QCheck.Gen.(
        tup5 (int_range 1 3) (int_range 0 2) bool (int_range 1 64)
          (int_range 0 1000))
  in
  qcheck ~count:10 "streamed fleet is job-count independent" gen
    (fun (count, routing, disaggregated, epoch, seed) ->
      let routing =
        match routing with
        | 0 -> Fleet.Round_robin
        | 1 -> Fleet.Least_loaded
        | _ -> Fleet.Phase_affine
      in
      let fleet =
        if disaggregated then
          Fleet.make ~routing
            [
              Fleet.pool ~role:Fleet.Prefill ~count:1 dev;
              Fleet.pool ~role:Fleet.Decode ~count dev;
            ]
        else Fleet.make ~routing [ Fleet.pool ~count dev ]
      in
      let trace =
        Trace.synthetic ~seed ~rate_per_s:6. ~duration_s:5. ~mean_input:128
          ~mean_output:16 ()
      in
      match trace with
      | [] -> true
      | trace ->
          let go jobs =
            Parallel.with_jobs jobs (fun () ->
                Fleet.run_stream ~epoch fleet model (Trace.of_list trace))
          in
          let fs1 = go 1 and fs4 = go 4 in
          if fs1 <> fs4 then
            QCheck.Test.fail_reportf
              "1-job and 4-job streamed stats differ: %d/%d completed, %g/%g \
               makespan"
              fs1.Fleet.completed fs4.Fleet.completed fs1.Fleet.makespan_s
              fs4.Fleet.makespan_s;
          (* and the streamed run conserves requests like the materialized
             one *)
          Alcotest.(check int) "streamed conservation" (List.length trace)
            (fs1.Fleet.completed + fs1.Fleet.rejected_count);
          true)

let t_devices_for_qps_nonfinite () =
  let fs = Fleet.run (unified ()) model heavy_trace in
  check_raises_invalid "nan target" (fun () ->
      ignore (Fleet.devices_for_qps fs ~target_qps:Float.nan));
  check_raises_invalid "infinite target" (fun () ->
      ignore (Fleet.devices_for_qps fs ~target_qps:infinity))

let suite =
  [
    test "1-group fleet = bare simulator" t_single_group_identity;
    test "unified fleet conserves tokens" t_unified_conservation;
    test "heterogeneous fleet conserves tokens" t_heterogeneous_conservation;
    test "round-robin balances requests" t_round_robin_balances;
    test "disaggregated fleet conserves across handoff" t_disaggregated_conservation;
    test "disaggregated ttft tracks prefill side" t_disagg_slower_ttft_than_idle_decode;
    test "fleet validation" t_fleet_validation;
    test "devices for target qps" t_devices_for_qps;
    test "silicon cost per mtok" t_cost_per_mtok;
    test "fleet slo attainment" t_fleet_slo;
    t_fleet_properties;
    test "streamed round-robin = materialized run" t_stream_equals_run_round_robin;
    test "streamed 1-group fleet tracks bare simulator" t_stream_single_group_identity;
    test "streamed slo attainment online" t_stream_slo_online;
    test "streamed validation" t_stream_validation;
    t_stream_jobs_identity;
    test "devices_for_qps rejects non-finite targets" t_devices_for_qps_nonfinite;
  ]
