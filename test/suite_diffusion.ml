open Core
open Helpers

let order ?(consignee = "lab-a") ?(units = 1) device_tpp =
  { Diffusion_2025.consignee; device_tpp; units }

let t_order_tpp () =
  check_close "order tpp" (4992. *. 100.)
    (Diffusion_2025.order_tpp (order ~units:100 4992.));
  check_raises_invalid "negative units" (fun () ->
      ignore (Diffusion_2025.order_tpp (order ~units:(-1) 1.)))

let t_lpp_exception () =
  let ledger = Diffusion_2025.create () in
  (* 1000 H100s = 15.8M TPP: under the 26.9M LPP line. *)
  let small = order ~units:1000 15824. in
  Alcotest.(check bool) "small order exempt" true
    (Diffusion_2025.classify ledger small = Diffusion_2025.Within_lpp_exception);
  (match Diffusion_2025.record ledger small with
  | Ok Diffusion_2025.Within_lpp_exception -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected LPP record");
  check_close "lpp tracked" 15.824e6
    (Diffusion_2025.lpp_used_tpp ledger ~consignee:"lab-a");
  (* A second identical order from the same consignee busts the annual
     LPP cap and must draw on the allocation instead. *)
  Alcotest.(check bool) "second order licensed" true
    (Diffusion_2025.classify ledger small = Diffusion_2025.Within_allocation);
  (* ... but a different consignee still gets the exception. *)
  Alcotest.(check bool) "other consignee exempt" true
    (Diffusion_2025.classify ledger { small with Diffusion_2025.consignee = "lab-b" }
    = Diffusion_2025.Within_lpp_exception)

let t_allocation_drains () =
  let ledger = Diffusion_2025.create () in
  let big = order ~units:30_000 15824. in
  (* 475M TPP: licensed against the 790M allocation. *)
  (match Diffusion_2025.record ledger big with
  | Ok Diffusion_2025.Within_allocation -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected allocation record");
  check_close "consumed" 474.72e6 (Diffusion_2025.consumed_allocation_tpp ledger);
  (* A second such order exceeds the remaining allocation. *)
  (match Diffusion_2025.record ledger big with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected refusal");
  check_close "consumed unchanged" 474.72e6
    (Diffusion_2025.consumed_allocation_tpp ledger)

let t_new_year_resets_lpp () =
  let ledger = Diffusion_2025.create () in
  let small = order ~units:1500 15824. in
  ignore (Diffusion_2025.record ledger small);
  Alcotest.(check bool) "exhausted this year" true
    (Diffusion_2025.classify ledger small <> Diffusion_2025.Within_lpp_exception);
  Diffusion_2025.new_year ledger;
  Alcotest.(check bool) "fresh next year" true
    (Diffusion_2025.classify ledger small = Diffusion_2025.Within_lpp_exception)

let t_create_validation () =
  check_raises_invalid "bad allocation" (fun () ->
      ignore (Diffusion_2025.create ~country_allocation_tpp:0. ()))

let prop_conservation =
  qcheck ~count:50 "ledger never exceeds its allocation"
    QCheck.(list_of_size Gen.(int_range 1 20) (pair (float_range 1000. 20000.) (int_range 1 5000)))
    (fun orders ->
      let ledger = Diffusion_2025.create () in
      List.iter
        (fun (tpp, units) ->
          ignore (Diffusion_2025.record ledger (order ~units tpp)))
        orders;
      Diffusion_2025.consumed_allocation_tpp ledger
      <= Diffusion_2025.default_country_allocation_tpp +. 1e-6)

let suite =
  [
    test "order tpp" t_order_tpp;
    test "LPP exception accounting" t_lpp_exception;
    test "allocation drains and refuses" t_allocation_drains;
    test "new year resets LPP" t_new_year_resets_lpp;
    test "create validation" t_create_validation;
    prop_conservation;
  ]
