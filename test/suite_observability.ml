open Core
open Helpers

(* Tracing and the metrics registry are process-global; every test starts
   from a clean slate and leaves tracing disabled. *)
let fresh () =
  Tracing.set_enabled false;
  Tracing.set_capacity 65536;
  Tracing.clear ();
  Metrics.reset ()

let span_names () = List.map (fun s -> s.Tracing.name) (Tracing.spans ())

(* {2 Span tracer} *)

let t_disabled_noop () =
  fresh ();
  let r = Tracing.with_span "invisible" (fun () -> 41 + 1) in
  Alcotest.(check int) "body ran" 42 r;
  Tracing.instant "also-invisible";
  Tracing.add_attr "k" (Tracing.Int 1);
  Alcotest.(check int) "nothing recorded" 0 (Tracing.recorded ());
  Alcotest.(check (list string)) "no spans" [] (span_names ())

let t_nesting () =
  fresh ();
  Tracing.with_tracing true (fun () ->
      Tracing.with_span "outer"
        ~attrs:[ ("phase", Tracing.Str "test") ]
        (fun () ->
          Tracing.with_span "inner" (fun () -> ignore (Sys.opaque_identity 1));
          Tracing.add_attr "late" (Tracing.Bool true)));
  (* Spans record when they close: inner first. *)
  Alcotest.(check (list string)) "close order" [ "inner"; "outer" ]
    (span_names ());
  match Tracing.spans () with
  | [ inner; outer ] ->
      Alcotest.(check int) "outer is a root" 0 outer.Tracing.depth;
      Alcotest.(check int) "inner nested once" 1 inner.Tracing.depth;
      let open Int64 in
      let i_end = add inner.Tracing.start_ns inner.Tracing.dur_ns in
      let o_end = add outer.Tracing.start_ns outer.Tracing.dur_ns in
      Alcotest.(check bool) "inner opens after outer" true
        (inner.Tracing.start_ns >= outer.Tracing.start_ns);
      Alcotest.(check bool) "inner closes before outer" true (i_end <= o_end);
      Alcotest.(check bool) "declared attr kept" true
        (List.mem_assoc "phase" outer.Tracing.attrs);
      Alcotest.(check bool) "add_attr lands on the open span" true
        (List.mem_assoc "late" outer.Tracing.attrs)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let t_exception_safety () =
  fresh ();
  Tracing.with_tracing true (fun () ->
      (match Tracing.with_span "boom" (fun () -> raise Exit) with
      | () -> Alcotest.fail "exception swallowed"
      | exception Exit -> ());
      (* The raising span closed and the stack unwound: the next span is a
         fresh root, not a child of a leaked frame. *)
      Tracing.with_span "after" (fun () -> ()));
  match Tracing.spans () with
  | [ boom; after ] ->
      Alcotest.(check string) "raising span recorded" "boom" boom.Tracing.name;
      Alcotest.(check int) "stack unwound" 0 after.Tracing.depth
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let t_with_tracing_restores () =
  fresh ();
  (match Tracing.with_tracing true (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check bool) "flag restored on raise" false (Tracing.enabled ())

let t_ring_overflow () =
  fresh ();
  Tracing.set_capacity 4;
  Tracing.with_tracing true (fun () ->
      for i = 1 to 10 do
        Tracing.instant (Printf.sprintf "s%d" i)
      done);
  Alcotest.(check int) "all recorded" 10 (Tracing.recorded ());
  Alcotest.(check int) "oldest overwritten" 6 (Tracing.dropped ());
  Alcotest.(check (list string)) "newest survive, oldest first"
    [ "s7"; "s8"; "s9"; "s10" ] (span_names ());
  check_raises_invalid "capacity >= 1" (fun () -> Tracing.set_capacity 0);
  fresh ()

let t_chrome_export () =
  fresh ();
  Tracing.with_tracing true (fun () ->
      Tracing.with_span "work"
        ~attrs:[ ("n", Tracing.Int 3); ("bad", Tracing.Float nan) ]
        (fun () -> Tracing.instant "mark"));
  let json = Tracing.to_chrome_json () in
  let events = Json.to_list (Json.member "traceEvents" json) in
  Alcotest.(check int) "one event per span" 2 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check string) "complete event" "X"
        (Json.to_str (Json.member "ph" e));
      Alcotest.(check bool) "timestamp present" true
        (Json.to_float (Json.member "ts" e) >= 0.);
      Alcotest.(check bool) "duration present" true
        (Json.to_float (Json.member "dur" e) >= 0.);
      ignore (Json.to_int (Json.member "tid" e)))
    events;
  let work =
    List.find (fun e -> Json.to_str (Json.member "name" e) = "work") events
  in
  let args = Json.member "args" work in
  Alcotest.(check int) "int attr" 3 (Json.to_int (Json.member "n" args));
  (* JSON has no nan literal; the exporter must stringify, not crash. *)
  Alcotest.(check string) "non-finite attr stringified" "nan"
    (Json.to_str (Json.member "bad" args));
  (* The serialized form must parse back. *)
  let reparsed = Json.of_string (Json.to_string json) in
  Alcotest.(check int) "round-trips" 2
    (List.length (Json.to_list (Json.member "traceEvents" reparsed)))

let t_write_file () =
  fresh ();
  Tracing.with_tracing true (fun () -> Tracing.instant "only");
  let path = Filename.temp_file "acs_trace" ".json" in
  Tracing.write path;
  let json = Json.of_file path in
  Sys.remove path;
  Alcotest.(check int) "file holds the trace" 1
    (List.length (Json.to_list (Json.member "traceEvents" json)))

(* {2 Metrics registry} *)

let t_counter_identity () =
  fresh ();
  let a = Metrics.counter "obs_test_total" in
  Metrics.incr a;
  Metrics.incr ~by:4 a;
  (* Get-or-create: a second lookup is the same underlying counter. *)
  let b = Metrics.counter "obs_test_total" in
  Alcotest.(check int) "one metric behind both handles" 5
    (Metrics.counter_value b);
  (* Labels distinguish; kind clashes are programming errors. *)
  let l = Metrics.counter ~labels:[ ("k", "v") ] "obs_test_total" in
  Alcotest.(check int) "labelled is separate" 0 (Metrics.counter_value l);
  check_raises_invalid "negative increment" (fun () -> Metrics.incr ~by:(-1) a);
  check_raises_invalid "kind mismatch" (fun () ->
      ignore (Metrics.gauge "obs_test_total"))

let t_gauge () =
  fresh ();
  let g = Metrics.gauge "obs_test_gauge" in
  Metrics.set_gauge g 2.5;
  Metrics.add_gauge g 0.5;
  check_close "set then add" 3. (Metrics.gauge_value g)

let t_histogram () =
  fresh ();
  let h = Metrics.histogram "obs_test_seconds" in
  Alcotest.(check bool) "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  List.iter (Metrics.observe h) [ 1e-6; 2e-6; 1e-3; 0.1 ];
  Alcotest.(check int) "count" 4 (Metrics.hist_count h);
  check_close "sum" (1e-6 +. 2e-6 +. 1e-3 +. 0.1) (Metrics.hist_sum h);
  let q50 = Metrics.quantile h 0.5 and q95 = Metrics.quantile h 0.95 in
  Alcotest.(check bool) "quantiles ordered" true (q50 <= q95);
  (* Bucket bounds overestimate by at most one log-scale step (10^0.25). *)
  check_between "p95 brackets the top sample" 0.099 0.18 q95;
  let bounds = List.map fst (Metrics.buckets h) in
  Alcotest.(check bool) "bucket bounds ascend" true
    (List.sort compare bounds = bounds);
  Alcotest.(check int) "4 observations across buckets" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 (Metrics.buckets h));
  check_raises_invalid "quantile range" (fun () ->
      ignore (Metrics.quantile h 1.5));
  (* NaN: counted, not summed. *)
  Metrics.observe h nan;
  Alcotest.(check int) "nan counted" 5 (Metrics.hist_count h);
  Alcotest.(check bool) "nan not summed" true
    (Float.is_finite (Metrics.hist_sum h))

let t_time_exception_safe () =
  fresh ();
  let h = Metrics.histogram "obs_test_timer_seconds" in
  (match Metrics.time h (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "raising body still observed" 1 (Metrics.hist_count h)

let t_export_and_reset () =
  fresh ();
  Metrics.incr (Metrics.counter "obs_export_total");
  Metrics.set_gauge (Metrics.gauge "obs_export_gauge") 7.;
  Metrics.observe (Metrics.histogram "obs_export_seconds") 1e-3;
  let json = Metrics.export () in
  let names section =
    List.map
      (fun e -> Json.to_str (Json.member "name" e))
      (Json.to_list (Json.member section json))
  in
  Alcotest.(check bool) "counter exported" true
    (List.mem "obs_export_total" (names "counters"));
  Alcotest.(check bool) "gauge exported" true
    (List.mem "obs_export_gauge" (names "gauges"));
  Alcotest.(check bool) "histogram exported" true
    (List.mem "obs_export_seconds" (names "histograms"));
  let h =
    List.find
      (fun e -> Json.to_str (Json.member "name" e) = "obs_export_seconds")
      (Json.to_list (Json.member "histograms" json))
  in
  Alcotest.(check int) "histogram count serialized" 1
    (Json.to_int (Json.member "count" h));
  ignore (Json.to_list (Json.member "buckets" h));
  (* Reset zeroes in place: cached handles keep reporting. *)
  let c = Metrics.counter "obs_export_total" in
  Metrics.reset ();
  Alcotest.(check int) "reset zeroes" 0 (Metrics.counter_value c);
  Metrics.incr c;
  Alcotest.(check int) "handle survives reset" 1 (Metrics.counter_value c);
  (* The summary table renders without raising, one row per metric. *)
  ignore (Metrics.summary_table ())

let t_multi_domain_counter () =
  fresh ();
  let c = Metrics.counter "obs_domains_total" in
  let h = Metrics.histogram "obs_domains_seconds" in
  let worker () =
    for _ = 1 to 1000 do
      Metrics.incr c;
      Metrics.observe h 1e-6
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost counter updates" 4000 (Metrics.counter_value c);
  Alcotest.(check int) "no lost observations" 4000 (Metrics.hist_count h);
  check_close ~eps:1e-6 "cas-summed" 4e-3 (Metrics.hist_sum h)

(* {2 Instrumented subsystems} *)

let t_engine_spans () =
  fresh ();
  Tracing.with_tracing true (fun () ->
      ignore (Engine.simulate Presets.a100 Model.llama3_8b));
  let names = span_names () in
  Alcotest.(check bool) "prefill span" true (List.mem "engine.prefill" names);
  Alcotest.(check bool) "decode span" true (List.mem "engine.decode" names);
  let prefill =
    List.find (fun s -> s.Tracing.name = "engine.prefill") (Tracing.spans ())
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " attr") true
        (List.mem_assoc key prefill.Tracing.attrs))
    [ "flops"; "dram_bytes"; "bound"; "layer_s" ];
  (* The per-phase latency histograms populate under tracing. *)
  let h phase =
    Metrics.histogram ~labels:[ ("phase", phase) ] "engine_phase_seconds"
  in
  Alcotest.(check bool) "prefill histogram fed" true
    (Metrics.hist_count (h "prefill") > 0);
  Alcotest.(check bool) "decode histogram fed" true
    (Metrics.hist_count (h "decode") > 0)

let t_serving_spans () =
  fresh ();
  let trace =
    Trace.synthetic ~rate_per_s:4. ~duration_s:5. ~mean_input:128 ~mean_output:16
      ()
  in
  let stats =
    Tracing.with_tracing true (fun () ->
        Simulator.run Presets.a100 Model.llama3_8b trace)
  in
  let names = span_names () in
  Alcotest.(check bool) "run span" true (List.mem "serve.run" names);
  Alcotest.(check bool) "prefill spans" true (List.mem "serve.prefill" names);
  Alcotest.(check bool) "decode spans" true (List.mem "serve.decode" names);
  let root =
    List.find (fun s -> s.Tracing.name = "serve.run") (Tracing.spans ())
  in
  (match List.assoc_opt "generated_tokens" root.Tracing.attrs with
  | Some (Tracing.Int n) ->
      Alcotest.(check int) "root records token total"
        stats.Simulator.generated_tokens n
  | _ -> Alcotest.fail "generated_tokens attr missing");
  (* Counters accumulate regardless of tracing. *)
  Alcotest.(check bool) "admitted counted" true
    (Metrics.counter_value (Metrics.counter "serving_admitted_total")
    = List.length trace)

let t_eval_cache_metrics () =
  fresh ();
  Eval.clear ();
  let scenario = Option.get (Scenario.find "a100-proxy") in
  ignore (Eval.run scenario);
  ignore (Eval.run scenario);
  let v name = Metrics.counter_value (Metrics.counter name) in
  Alcotest.(check int) "two lookups" 2 (v "dse_cache_lookups_total");
  Alcotest.(check int) "second is a hit" 1 (v "dse_cache_hits_total");
  Alcotest.(check int) "one evaluation" 1 (v "dse_evaluations_total");
  Alcotest.(check int) "evaluation timed" 1
    (Metrics.hist_count (Metrics.histogram "dse_eval_seconds"))

let suite =
  [
    test "disabled tracing is a no-op" t_disabled_noop;
    test "span nesting and attributes" t_nesting;
    test "raising body closes its span" t_exception_safety;
    test "with_tracing restores on raise" t_with_tracing_restores;
    test "ring buffer overwrites oldest" t_ring_overflow;
    test "chrome trace export" t_chrome_export;
    test "trace file write" t_write_file;
    test "counter get-or-create" t_counter_identity;
    test "gauge set and accumulate" t_gauge;
    test "histogram observe and quantile" t_histogram;
    test "timer observes raising body" t_time_exception_safe;
    test "export and in-place reset" t_export_and_reset;
    test "counters across domains" t_multi_domain_counter;
    test "engine phase spans and histograms" t_engine_spans;
    test "serving spans and counters" t_serving_spans;
    test "eval cache metrics" t_eval_cache_metrics;
  ]
