open Core
open Helpers

(* Property tests over random valid design points (satellite of the
   observability PR): the perf model must stay physical - finite, positive,
   and monotone in the resources it consumes - across the whole sanctioned
   design space, not just the hand-picked fixtures. *)

let tpp_targets = [ 1600.; 2400.; 4800. ]

(* A design point drawn from the October 2023 sweep axes x a TPP target:
   exactly the population [acs run] evaluates. *)
let point_gen =
  let open QCheck.Gen in
  let s = Space.oct2023 in
  let* systolic_dim = oneofl s.Space.systolic_dims in
  let* lanes = oneofl s.Space.lanes_per_core in
  let* l1 = oneofl s.Space.l1_kb in
  let* l2 = oneofl s.Space.l2_mb in
  let* memory_bw = oneofl s.Space.memory_bw_tb_s in
  let* device_bw = oneofl s.Space.device_bw_gb_s in
  let* clock_mhz = oneofl s.Space.clock_mhz in
  let* tpp_target = oneofl tpp_targets in
  return
    ({ Space.systolic_dim; lanes; l1; l2; memory_bw; device_bw; clock_mhz },
     tpp_target)

let point_arb =
  QCheck.make
    ~print:(fun (p, tpp) ->
      Printf.sprintf "dim=%d lanes=%d l1=%g l2=%g membw=%g devbw=%g tpp=%g"
        p.Space.systolic_dim p.Space.lanes p.Space.l1 p.Space.l2
        p.Space.memory_bw p.Space.device_bw tpp)
    point_gen

let evaluate (p, tpp_target) =
  Design.evaluate ~model:Model.llama3_8b p (Space.build ~tpp_target p)

(* <= with relative slack for float noise across the two evaluations. *)
let leq a b = a <= b *. (1. +. 1e-9)

let t_latencies_physical =
  qcheck ~count:60 "design latencies finite and positive" point_arb
    (fun point ->
      let d = evaluate point in
      Float.is_finite d.Design.ttft_s
      && Float.is_finite d.Design.tbt_s
      && d.Design.ttft_s > 0. && d.Design.tbt_s > 0.)

let t_monotone_memory_bw =
  qcheck ~count:40 "latency non-increasing in HBM bandwidth" point_arb
    (fun ((p, tpp_target) as point) ->
      let base = evaluate point in
      let faster =
        evaluate ({ p with Space.memory_bw = 2. *. p.Space.memory_bw }, tpp_target)
      in
      leq faster.Design.ttft_s base.Design.ttft_s
      && leq faster.Design.tbt_s base.Design.tbt_s)

let t_monotone_compute =
  qcheck ~count:40 "latency non-increasing in compute throughput" point_arb
    (fun (p, tpp_target) ->
      (* Double the clock on the same built device: pure compute-throughput
         scaling, with memory and interconnect untouched. *)
      let dev = Space.build ~tpp_target p in
      let faster = { dev with Device.frequency_hz = 2. *. dev.Device.frequency_hz } in
      let r0 = Engine.simulate dev Model.llama3_8b in
      let r1 = Engine.simulate faster Model.llama3_8b in
      leq (Engine.model_ttft_s r1) (Engine.model_ttft_s r0)
      && leq (Engine.model_tbt_s r1) (Engine.model_tbt_s r0))

(* Random per-device operators for the breakdown invariant. *)
let op_gen =
  let open QCheck.Gen in
  oneof
    [
      (let* m = int_range 1 4096 in
       let* k = int_range 1 8192 in
       let* n = int_range 1 8192 in
       let* batch_count = int_range 1 16 in
       let* weights_streamed = bool in
       return
         (Op.Matmul
            { Op.label = "mm"; m; k; n; batch_count; weights_streamed }));
      (let* elements = map float_of_int (int_range 1 10_000_000) in
       let* flops_per_element = oneofl [ 1.; 2.; 5.; 10. ] in
       let* memory_passes = oneofl [ 1.; 2.; 3.; 5. ] in
       return
         (Op.Elementwise
            { Op.label = "ew"; elements; flops_per_element; memory_passes }));
      (let* bytes = map float_of_int (int_range 1 1_000_000_000) in
       return (Op.All_reduce { Op.label = "ar"; bytes }));
    ]

let op_arb =
  QCheck.make
    ~print:(fun (op, _) -> Format.asprintf "%a" Op.pp op)
    QCheck.Gen.(pair op_gen (int_range 1 8))

let t_breakdown_bounded =
  qcheck ~count:100 "breakdown components bounded by op total"
    (QCheck.pair device_arb op_arb)
    (fun (dev, (op, tp)) ->
      let b = Op_model.latency dev ~tp op in
      Float.is_finite b.Op_model.total_s
      && b.Op_model.total_s >= 0.
      && leq b.Op_model.compute_s b.Op_model.total_s
      && leq b.Op_model.memory_s b.Op_model.total_s
      && leq b.Op_model.comm_s b.Op_model.total_s
      && leq b.Op_model.overhead_s b.Op_model.total_s)

let suite =
  [
    t_latencies_physical;
    t_monotone_memory_bw;
    t_monotone_compute;
    t_breakdown_bounded;
  ]
