open Core
open Helpers

let a100 = Presets.a100

let rtx4090_like =
  Device.make ~name:"4090-like" ~core_count:128 ~lanes_per_core:4
    ~systolic:(Systolic.square 16) ~l1_kb:128. ~l2_mb:72.
    ~memory:(Memory.make ~capacity_gb:24. ~bandwidth_tb_s:1.0)
    ~interconnect:(Interconnect.of_total_gb_s 32.)
    ()

let t_scene_accounting () =
  let s = Graphics.esports_1080p in
  check_close "pixels" (1920. *. 1080. *. 1.6) (Graphics.shaded_pixels s);
  check_close "flops"
    (Graphics.shaded_pixels s *. 2500.)
    (Graphics.frame_flops s);
  check_close "rays none" 0. (Graphics.frame_rays s);
  let rt = Graphics.raytraced_4k in
  check_close "rays" (3840. *. 2160. *. 2.) (Graphics.frame_rays rt)

let t_scene_validation () =
  check_raises_invalid "resolution" (fun () ->
      ignore
        (Graphics.make ~name:"x" ~width:0 ~height:10
           ~shading_flops_per_pixel:1. ~texture_bytes_per_pixel:1. ()));
  check_raises_invalid "overdraw" (fun () ->
      ignore
        (Graphics.make ~overdraw:0.5 ~name:"x" ~width:10 ~height:10
           ~shading_flops_per_pixel:1. ~texture_bytes_per_pixel:1. ()))

let t_fps_bands () =
  (* Big GPUs should reach esports frame rates and playable AAA rates. *)
  check_between "esports" 200. 2000. (Graphics_model.fps rtx4090_like Graphics.esports_1080p);
  check_between "aaa" 60. 400. (Graphics_model.fps rtx4090_like Graphics.aaa_1440p);
  check_between "rt 4k" 30. 200. (Graphics_model.fps rtx4090_like Graphics.raytraced_4k)

let t_breakdown_consistency () =
  let b = Graphics_model.frame_breakdown a100 Graphics.raytraced_4k in
  check_close "frame composition"
    (Float.max b.Graphics_model.shading_s b.Graphics_model.texture_s
    +. b.Graphics_model.raytracing_s +. b.Graphics_model.fixed_s)
    b.Graphics_model.frame_s

let t_systolic_blindness () =
  (* The Sec. 5.4 point: removing matmul hardware does not change gaming
     performance. 4x4 arrays with the same vector/memory system give the
     same FPS. *)
  let gimped =
    { rtx4090_like with Device.systolic = Systolic.square 4 }
  in
  check_close "fps unchanged"
    (Graphics_model.fps rtx4090_like Graphics.aaa_1440p)
    (Graphics_model.fps gimped Graphics.aaa_1440p)

let t_l1_blindness () =
  let starved = { rtx4090_like with Device.l1_bytes = 32e3 } in
  check_close "fps unchanged by L1 cap"
    (Graphics_model.fps rtx4090_like Graphics.aaa_1440p)
    (Graphics_model.fps starved Graphics.aaa_1440p)

let t_llm_vs_gaming_policy_asymmetry () =
  (* The AI-targeted policy (32 KB L1 + 0.8 TB/s) must hurt LLM inference a
     lot and esports gaming only mildly. *)
  let limited =
    {
      rtx4090_like with
      Device.l1_bytes = 32e3;
      memory = Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8;
    }
  in
  let llm_penalty =
    let base = Engine.end_to_end_s (Engine.simulate rtx4090_like Model.llama3_8b) in
    let v = Engine.end_to_end_s (Engine.simulate limited Model.llama3_8b) in
    (v -. base) /. base
  in
  Alcotest.(check bool) "LLM e2e slowed > 10%" true (llm_penalty > 0.10);
  (* Shading-bound scenes are untouched; only the texture-bound esports
     scene loses a few percent. *)
  List.iter
    (fun scene ->
      let base = Graphics_model.fps rtx4090_like scene in
      let v = Graphics_model.fps limited scene in
      check_between
        (scene.Graphics.name ^ " fps penalty")
        0. 0.01
        ((base -. v) /. base))
    [ Graphics.aaa_1440p; Graphics.raytraced_4k ];
  let esports_penalty =
    let base = Graphics_model.fps rtx4090_like Graphics.esports_1080p in
    (base -. Graphics_model.fps limited Graphics.esports_1080p) /. base
  in
  Alcotest.(check bool) "esports penalty mild" true
    (esports_penalty < 0.6 *. llm_penalty)

let prop_fps_positive =
  qcheck ~count:60 "fps positive and finite" device_arb (fun d ->
      List.for_all
        (fun scene ->
          let fps = Graphics_model.fps d scene in
          fps > 0. && Float.is_finite fps)
        Graphics.presets)

let prop_more_vector_flops_not_slower =
  qcheck ~count:40 "doubling cores never lowers fps" device_arb (fun d ->
      QCheck.assume (d.Device.core_count <= 512);
      let bigger = { d with Device.core_count = d.Device.core_count * 2 } in
      Graphics_model.fps bigger Graphics.aaa_1440p
      >= Graphics_model.fps d Graphics.aaa_1440p -. 1e-9)

let suite =
  [
    test "scene accounting" t_scene_accounting;
    test "scene validation" t_scene_validation;
    test "fps bands" t_fps_bands;
    test "breakdown consistency" t_breakdown_consistency;
    test "systolic arrays do not matter" t_systolic_blindness;
    test "L1 capacity does not matter" t_l1_blindness;
    test "AI-targeted policy asymmetry" t_llm_vs_gaming_policy_asymmetry;
    prop_fps_positive;
    prop_more_vector_flops_not_slower;
  ]
