open Core
open Helpers

let a100 = Presets.a100
let cfg = Training.default_config

let t_step_composition () =
  let s = Training.step a100 Model.gpt3_175b cfg in
  check_close "backward is 2x forward" (2. *. s.Training.forward_s)
    s.Training.backward_s;
  check_close "step composition"
    ((s.Training.forward_s +. s.Training.backward_s) *. 8.
    +. s.Training.grad_allreduce_s +. s.Training.optimizer_s)
    s.Training.step_s;
  Alcotest.(check int) "tokens per step" (4 * 8 * 32 * 2048)
    s.Training.tokens_per_step

let t_mfu_band () =
  let s = Training.step a100 Model.gpt3_175b cfg in
  (* Large dense models train at healthy MFU on an A100 cluster. *)
  check_between "mfu" 0.35 0.8 s.Training.mfu;
  (* Small models carry relatively more overhead. *)
  let small = Training.step a100 Model.llama3_8b cfg in
  Alcotest.(check bool) "small model lower mfu" true
    (small.Training.mfu < s.Training.mfu)

let t_days_to_train () =
  let days =
    Training.days_to_train ~tokens:300e9 a100 Model.gpt3_175b cfg
  in
  (* 128 A100s, GPT-3, 300B tokens: order of months. *)
  check_between "days" 60. 400. days;
  (* Linear in tokens. *)
  check_within "linearity" ~tolerance:1e-6 (2. *. days)
    (Training.days_to_train ~tokens:600e9 a100 Model.gpt3_175b cfg);
  check_raises_invalid "bad tokens" (fun () ->
      ignore (Training.days_to_train ~tokens:0. a100 Model.gpt3_175b cfg))

let t_tpp_cap_hurts_training () =
  (* Training is compute bound: an H20-style TPP cut slows it nearly
     proportionally - the rules bite exactly here. *)
  let h20ish =
    Device.make ~name:"h20ish" ~core_count:51 ~lanes_per_core:4
      ~systolic:(Systolic.square 16) ~l1_kb:256. ~l2_mb:60.
      ~memory:(Memory.make ~capacity_gb:96. ~bandwidth_tb_s:4.)
      ~interconnect:(Interconnect.of_total_gb_s 900.)
      ()
  in
  let base = Training.step a100 Model.gpt3_175b cfg in
  let capped = Training.step h20ish Model.gpt3_175b cfg in
  Alcotest.(check bool) "at least 1.6x slower" true
    (capped.Training.step_s > 1.6 *. base.Training.step_s)

let t_dp1_no_allreduce () =
  let c = { cfg with Training.dp = 1 } in
  let s = Training.step a100 Model.llama3_8b c in
  check_close "no gradient allreduce" 0. s.Training.grad_allreduce_s

let t_memory () =
  Alcotest.(check bool) "gpt3 state does not fit tp4" false
    (Training.memory_fits a100 Model.gpt3_175b cfg);
  Alcotest.(check bool) "llama fits" true
    (Training.memory_fits a100 Model.llama3_8b cfg);
  let per_dev = Training.optimizer_state_bytes_per_device Model.gpt3_175b cfg in
  (* 175e9/4 * (4 + 12/32) bytes *)
  check_within "state bytes" ~tolerance:0.02
    (174e9 /. 4. *. (4. +. (12. /. 32.)))
    per_dev

let t_validation () =
  check_raises_invalid "bad config" (fun () ->
      ignore (Training.step a100 Model.gpt3_175b { cfg with Training.dp = 0 }))

let prop_step_positive =
  qcheck ~count:30 "training step positive and finite" device_arb (fun d ->
      let s = Training.step d Model.llama3_8b cfg in
      s.Training.step_s > 0. && Float.is_finite s.Training.step_s
      && s.Training.mfu > 0. && s.Training.mfu <= 1.)

let suite =
  [
    test "step composition" t_step_composition;
    test "mfu band" t_mfu_band;
    test "days to train" t_days_to_train;
    test "tpp cap hurts training" t_tpp_cap_hurts_training;
    test "dp=1 has no gradient allreduce" t_dp1_no_allreduce;
    test "optimizer memory" t_memory;
    test "validation" t_validation;
    prop_step_positive;
  ]
