open Core
open Helpers

(* Systolic *)

let t_systolic () =
  let s = Systolic.make ~dim_x:16 ~dim_y:16 in
  Alcotest.(check int) "macs" 256 (Systolic.macs_per_cycle s);
  Alcotest.(check int) "ops" 512 (Systolic.ops_per_cycle s);
  Alcotest.(check string) "to_string" "16x16" (Systolic.to_string s);
  Alcotest.(check bool) "equal" true (Systolic.equal s (Systolic.square 16));
  Alcotest.(check bool) "not equal" false (Systolic.equal s (Systolic.square 8));
  check_raises_invalid "zero dim" (fun () -> Systolic.make ~dim_x:0 ~dim_y:4);
  check_raises_invalid "negative" (fun () -> Systolic.make ~dim_x:4 ~dim_y:(-1))

(* Process *)

let t_process () =
  Alcotest.(check bool) "7nm finfet" true (Process.non_planar Process.N7);
  Alcotest.(check bool) "16nm finfet" true (Process.non_planar Process.N16);
  Alcotest.(check bool) "28nm planar" false (Process.non_planar Process.N28);
  Alcotest.(check int) "nm" 8 (Process.nm Process.N8);
  Alcotest.(check string) "to_string" "7nm" (Process.to_string Process.N7);
  Alcotest.(check bool) "of_nm roundtrip" true (Process.of_nm 5 = Process.N5);
  check_raises_invalid "unsupported" (fun () -> ignore (Process.of_nm 3))

(* Memory *)

let t_memory () =
  let m = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:2. in
  check_close "capacity" 80e9 m.Memory.capacity_bytes;
  check_close "bandwidth" 2e12 m.Memory.bandwidth_bytes_per_s;
  Alcotest.(check int) "stacks for 2TB/s" 5 m.Memory.stacks;
  let m32 = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:3.2 in
  Alcotest.(check int) "stacks for 3.2TB/s" 8 m32.Memory.stacks;
  let m08 = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:0.8 in
  Alcotest.(check int) "stacks for 0.8TB/s" 2 m08.Memory.stacks;
  check_raises_invalid "bad capacity" (fun () ->
      Memory.make ~capacity_gb:0. ~bandwidth_tb_s:2.)

let t_memory_density () =
  let m = Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8 in
  check_close "density" 8. (Memory.bandwidth_density m ~package_area_mm2:100.);
  check_raises_invalid "bad area" (fun () ->
      ignore (Memory.bandwidth_density m ~package_area_mm2:0.))

let t_memory_with_bandwidth () =
  let m = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:2. in
  let m' = Memory.with_bandwidth m ~bandwidth_tb_s:3.2 in
  check_close "capacity preserved" 80e9 m'.Memory.capacity_bytes;
  check_close "bw updated" 3.2e12 m'.Memory.bandwidth_bytes_per_s

(* Interconnect *)

let t_interconnect () =
  let i = Interconnect.make ~links:12 () in
  check_close "a100 nvlink" 600e9 (Interconnect.total_bandwidth i);
  let i' = Interconnect.of_total_gb_s 600. in
  check_close "of_total exact" 600e9 (Interconnect.total_bandwidth i');
  let odd = Interconnect.of_total_gb_s 725. in
  check_close "of_total non-multiple" 725e9 (Interconnect.total_bandwidth odd);
  check_raises_invalid "zero links" (fun () ->
      ignore (Interconnect.make ~links:0 ()));
  check_raises_invalid "negative total" (fun () ->
      ignore (Interconnect.of_total_gb_s (-1.)))

(* Device *)

let t_a100_tpp () =
  let a = Presets.a100 in
  Alcotest.(check int) "macs/cycle" 110592 (Device.total_macs_per_cycle a);
  check_within "peak tensor flops" ~tolerance:0.01 312e12
    (Device.peak_tensor_flops a);
  check_within "tpp" ~tolerance:0.01 4992. (Device.tpp a);
  check_close "device bw" 600. (Device.device_bandwidth_gb_s a);
  check_close "l1 per lane" 48e3 (Device.l1_per_lane a);
  check_within "vector flops" ~tolerance:0.01 39e12 (Device.peak_vector_flops a)

let t_capped_preset () =
  let d = Presets.capped_tpp_4759 in
  check_between "capped tpp under 4800" 4700. 4799.99 (Device.tpp d)

let t_fp_max () =
  (* Eq. 1 roundtrip: fp_max at the A100's TPP covers its MAC count. *)
  let a = Presets.a100 in
  let fpmax = Device.fp_max ~tpp:(Device.tpp a) ~frequency_hz:a.Device.frequency_hz in
  Alcotest.(check int) "fp_max = device macs" (Device.total_macs_per_cycle a) fpmax;
  check_raises_invalid "bad tpp" (fun () ->
      ignore (Device.fp_max ~tpp:0. ~frequency_hz:1e9))

let t_cores_for_tpp () =
  (* The paper's 4800-target configuration: 103 cores at 4 lanes of 16x16. *)
  Alcotest.(check int) "4800 target, 4 lanes" 103
    (Device.cores_for_tpp ~tpp:4800. ~lanes_per_core:4
       ~systolic:(Systolic.square 16) ());
  (* Table 4's designs: 103 cores at 2 lanes for the 2400 target. *)
  Alcotest.(check int) "2400 target, 2 lanes" 103
    (Device.cores_for_tpp ~tpp:2400. ~lanes_per_core:2
       ~systolic:(Systolic.square 16) ());
  Alcotest.(check int) "at least one core" 1
    (Device.cores_for_tpp ~tpp:1. ~lanes_per_core:8
       ~systolic:(Systolic.square 32) ())

let t_device_validation () =
  let mem = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:2. in
  let ic = Interconnect.make ~links:12 () in
  check_raises_invalid "zero cores" (fun () ->
      ignore
        (Device.make ~core_count:0 ~lanes_per_core:4
           ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:40. ~memory:mem
           ~interconnect:ic ()));
  check_raises_invalid "zero l1" (fun () ->
      ignore
        (Device.make ~core_count:1 ~lanes_per_core:4
           ~systolic:(Systolic.square 16) ~l1_kb:0. ~l2_mb:40. ~memory:mem
           ~interconnect:ic ()))

let prop_tpp_eq1 =
  qcheck "TPP consistent with Eq. 1" device_arb (fun d ->
      let direct =
        2. *. 16.
        *. float_of_int (Device.total_macs_per_cycle d)
        *. d.Device.frequency_hz /. 1e12
      in
      Float.abs (direct -. Device.tpp d) < 1e-6 *. direct)

let prop_cores_under_target =
  qcheck "cores_for_tpp keeps TPP at or under target"
    QCheck.(
      pair (QCheck.make QCheck.Gen.(oneofl [ 4; 8; 16; 32 ]))
        (pair (QCheck.make QCheck.Gen.(oneofl [ 1; 2; 4; 8 ]))
           (QCheck.make QCheck.Gen.(float_range 100. 20000.))))
    (fun (dim, (lanes, target)) ->
      let systolic = Systolic.square dim in
      let cores = Device.cores_for_tpp ~tpp:target ~lanes_per_core:lanes ~systolic () in
      let macs = Systolic.macs_per_cycle systolic * lanes * cores in
      let tpp = 2. *. 16. *. float_of_int macs *. 1.41e9 /. 1e12 in
      (* Either the target is met, or even one core-group exceeds it. *)
      tpp <= target || cores = 1)

let suite =
  [
    test "systolic arrays" t_systolic;
    test "process nodes" t_process;
    test "memory stacks" t_memory;
    test "memory bandwidth density" t_memory_density;
    test "memory bandwidth override" t_memory_with_bandwidth;
    test "interconnect" t_interconnect;
    test "A100 preset metrics" t_a100_tpp;
    test "capped preset" t_capped_preset;
    test "fp_max (Eq. 1)" t_fp_max;
    test "cores_for_tpp paper configs" t_cores_for_tpp;
    test "device validation" t_device_validation;
    prop_tpp_eq1;
    prop_cores_under_target;
  ]
