open Core
open Helpers

let m =
  Market.make ~demand_choke_price:40_000. ~demand_slope:10.
    ~supply_reserve_price:5_000. ~supply_slope:4.

let t_equilibrium () =
  let eq = Market.equilibrium m in
  check_close "quantity" 2500. eq.Market.quantity;
  check_close "price" 15_000. eq.Market.price;
  check_close "demand = supply there"
    (Market.demand_price m ~quantity:eq.Market.quantity)
    (Market.supply_price m ~quantity:eq.Market.quantity)

let t_surplus () =
  let eq = Market.equilibrium m in
  let q = eq.Market.quantity in
  check_close "consumer triangle" (0.5 *. 10. *. q *. q)
    (Market.consumer_surplus m ~quantity:q);
  check_close "producer triangle" (0.5 *. 4. *. q *. q)
    (Market.producer_surplus m ~quantity:q);
  check_close "total" (Market.consumer_surplus m ~quantity:q +. Market.producer_surplus m ~quantity:q)
    (Market.total_surplus m ~quantity:q)

let t_restriction () =
  let o = Market.restrict m ~max_quantity:1500. in
  check_close "quantity" 1500. o.Market.restricted_quantity;
  check_close "buyer price" 25_000. o.Market.buyer_price;
  check_close "seller price" 11_000. o.Market.seller_price;
  (* 1/2 * (2500-1500) * (25000-11000) *)
  check_close "dwl" 7_000_000. o.Market.deadweight_loss;
  check_close "price increase" 10_000. o.Market.price_increase;
  (* DWL equals the lost total surplus. *)
  let eq = Market.equilibrium m in
  check_close "dwl = surplus loss"
    (Market.total_surplus m ~quantity:eq.Market.quantity
    -. Market.total_surplus m ~quantity:1500.)
    o.Market.deadweight_loss

let t_nonbinding () =
  let o = Market.restrict m ~max_quantity:10_000. in
  check_close "no dwl" 0. o.Market.deadweight_loss;
  check_close "no price change" 0. o.Market.price_increase

let t_validation () =
  check_raises_invalid "bad slope" (fun () ->
      ignore (Market.make ~demand_choke_price:10. ~demand_slope:0. ~supply_reserve_price:1. ~supply_slope:1.));
  check_raises_invalid "no equilibrium" (fun () ->
      ignore (Market.make ~demand_choke_price:1. ~demand_slope:1. ~supply_reserve_price:2. ~supply_slope:1.));
  check_raises_invalid "negative quota" (fun () ->
      ignore (Market.restrict m ~max_quantity:(-1.)))

let prop_dwl_monotone =
  qcheck "tighter quota, weakly more deadweight loss"
    QCheck.(pair (float_range 0. 3000.) (float_range 0. 3000.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      (Market.restrict m ~max_quantity:lo).Market.deadweight_loss
      >= (Market.restrict m ~max_quantity:hi).Market.deadweight_loss -. 1e-9)

let prop_dwl_nonneg =
  qcheck "deadweight loss non-negative" QCheck.(float_range 0. 5000.)
    (fun q -> (Market.restrict m ~max_quantity:q).Market.deadweight_loss >= 0.)

let suite =
  [
    test "equilibrium" t_equilibrium;
    test "surplus triangles" t_surplus;
    test "binding restriction" t_restriction;
    test "non-binding restriction" t_nonbinding;
    test "validation" t_validation;
    prop_dwl_monotone;
    prop_dwl_nonneg;
  ]
