open Core
open Helpers

let a100 = Presets.a100

let t_shares_sum () =
  List.iter
    (fun phase ->
      let r = Report.phase_report a100 Model.gpt3_175b phase in
      check_close
        (Layer.phase_to_string phase ^ " shares sum")
        1.
        (r.Report.compute_share +. r.Report.memory_share
        +. r.Report.communication_share +. r.Report.overhead_share);
      check_close "op shares sum" 1.
        (List.fold_left (fun acc o -> acc +. o.Report.share) 0. r.Report.ops);
      check_close "total matches engine"
        (match phase with
        | Layer.Prefill -> (Engine.simulate a100 Model.gpt3_175b).Engine.ttft_s
        | Layer.Decode -> (Engine.simulate a100 Model.gpt3_175b).Engine.tbt_s)
        r.Report.total_s)
    [ Layer.Prefill; Layer.Decode ]

let t_phase_character () =
  (* The paper's central asymmetry at op granularity. *)
  let p = Report.phase_report a100 Model.gpt3_175b Layer.Prefill in
  let d = Report.phase_report a100 Model.gpt3_175b Layer.Decode in
  Alcotest.(check bool) "prefill mostly compute bound" true
    (p.Report.compute_share > 0.5);
  Alcotest.(check bool) "decode mostly memory bound" true
    (d.Report.memory_share > 0.5)

let t_dominant_ops () =
  let p = Report.phase_report a100 Model.gpt3_175b Layer.Prefill in
  let heaviest = Stats.argmax (fun o -> o.Report.share) p.Report.ops in
  Alcotest.(check bool) "an FFN matmul dominates prefill" true
    (heaviest.Report.label = "ffn_up" || heaviest.Report.label = "ffn_down")

let t_bound_strings () =
  Alcotest.(check string) "compute" "compute" (Report.bound_to_string Report.Compute_bound);
  Alcotest.(check string) "memory" "memory" (Report.bound_to_string Report.Memory_bound)

let t_renders () =
  let r = Report.phase_report a100 Model.llama3_8b Layer.Decode in
  let s = Format.asprintf "%a" Report.pp_phase_report r in
  Alcotest.(check bool) "mentions ffn" true
    (String.length s > 100
    &&
    let re_found = ref false in
    String.iteri
      (fun i _ ->
        if i + 6 <= String.length s && String.sub s i 6 = "ffn_up" then
          re_found := true)
      s;
    !re_found)

let t_moe_report () =
  (* Mixtral decode must be even more memory-dominated than dense Llama on
     the same device (all expert weights stream). *)
  let dense = Report.phase_report a100 Model.llama3_8b Layer.Decode in
  let moe = Report.phase_report a100 Model.mixtral_8x7b Layer.Decode in
  Alcotest.(check bool) "moe router op present" true
    (List.exists (fun o -> o.Report.label = "moe_router") moe.Report.ops);
  Alcotest.(check bool) "moe decode slower" true
    (moe.Report.total_s > 1.4 *. dense.Report.total_s)

let suite =
  [
    test "shares sum to one" t_shares_sum;
    test "phase character" t_phase_character;
    test "dominant ops" t_dominant_ops;
    test "bound strings" t_bound_strings;
    test "report renders" t_renders;
    test "moe decode report" t_moe_report;
  ]
