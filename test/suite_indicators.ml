open Core
open Helpers

(* A small but real slice of the restricted DSE. *)
let designs =
  lazy
    (let params = Space.enumerate Space.restricted in
     let some = List.filteri (fun i _ -> i mod 9 = 0) params in
     List.map
       (fun p ->
         Design.evaluate ~model:Model.llama3_8b p (Space.build ~tpp_target:4800. p))
       some)

let t_analyze_shape () =
  let ds = Lazy.force designs in
  let reports =
    Grouping.analyze ~metric:(fun d -> d.Design.tbt_s) ~designs:ds
      [ Grouping.memory_bw_fixed_tb_s 0.8; Grouping.lanes_fixed 8 ]
  in
  Alcotest.(check int) "all + groups" 3 (List.length reports);
  let all = List.hd reports in
  Alcotest.(check string) "first is TPP only" "TPP only" all.Grouping.grouping;
  Alcotest.(check int) "covers all designs" (List.length ds) all.Grouping.count;
  check_close "all has narrowing 1" 1. all.Grouping.narrowing_vs_all

let t_membw_narrows_tbt () =
  let ds = Lazy.force designs in
  let reports =
    Grouping.analyze ~metric:(fun d -> d.Design.tbt_s) ~designs:ds
      [ Grouping.memory_bw_fixed_tb_s 0.8 ]
  in
  match reports with
  | [ _; bw ] ->
      Alcotest.(check bool) "strong narrowing" true
        (bw.Grouping.narrowing_vs_all > 5.)
  | _ -> Alcotest.fail "unexpected report shape"

let t_baseline_median () =
  let ds = Lazy.force designs in
  let baseline = 1e-3 in
  let reports =
    Grouping.analyze ~baseline ~metric:(fun d -> d.Design.tbt_s) ~designs:ds
      [ Grouping.l1_fixed_kb 32. ]
  in
  List.iter
    (fun r ->
      match r.Grouping.median_change_vs_baseline with
      | Some c ->
          check_close "median change consistent"
            ((r.Grouping.summary.Stats.median -. baseline) /. baseline)
            c
      | None -> Alcotest.fail "baseline missing")
    reports

let t_group_constructors () =
  let ds = Lazy.force designs in
  let groups =
    [
      Grouping.lanes_fixed 1;
      Grouping.l1_fixed_kb 64.;
      Grouping.l2_fixed_mb 8.;
      Grouping.memory_bw_fixed_tb_s 1.2;
      Grouping.device_bw_fixed_gb_s 400.;
      Grouping.systolic_fixed 8;
    ]
  in
  let reports =
    Grouping.analyze ~metric:(fun d -> d.Design.ttft_s) ~designs:ds groups
  in
  Alcotest.(check int) "seven reports" 7 (List.length reports);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (r.Grouping.grouping ^ " non-empty")
        true (r.Grouping.count > 0))
    reports

let t_both () =
  let ds = Lazy.force designs in
  let combined =
    Grouping.both (Grouping.l1_fixed_kb 32.) (Grouping.memory_bw_fixed_tb_s 0.8)
  in
  let reports =
    Grouping.analyze ~metric:(fun d -> d.Design.tbt_s) ~designs:ds
      [ Grouping.l1_fixed_kb 32.; combined ]
  in
  (match reports with
  | [ _; l1_only; both_r ] ->
      Alcotest.(check bool) "conjunction is smaller" true
        (both_r.Grouping.count < l1_only.Grouping.count);
      Alcotest.(check bool) "conjunction at least as narrow" true
        (both_r.Grouping.narrowing_vs_all >= l1_only.Grouping.narrowing_vs_all);
      Alcotest.(check string) "label" "32 KB L1 + 0.8 TB/s M.BW"
        both_r.Grouping.grouping
  | _ -> Alcotest.fail "unexpected report shape")

let t_analyze_errors () =
  check_raises_invalid "empty designs" (fun () ->
      ignore
        (Grouping.analyze ~metric:(fun d -> d.Design.tbt_s) ~designs:[] []));
  let ds = Lazy.force designs in
  check_raises_invalid "empty group" (fun () ->
      ignore
        (Grouping.analyze ~metric:(fun d -> d.Design.tbt_s) ~designs:ds
           [ Grouping.lanes_fixed 3 ]))

let t_pp_report () =
  let ds = Lazy.force designs in
  let reports =
    Grouping.analyze ~baseline:1e-3 ~metric:(fun d -> d.Design.tbt_s)
      ~designs:ds []
  in
  let s = Format.asprintf "%a" Grouping.pp_report (List.hd reports) in
  Alcotest.(check bool) "renders" true (String.length s > 10)

let suite =
  [
    test "analyze shape" t_analyze_shape;
    test "memory bandwidth narrows TBT" t_membw_narrows_tbt;
    test "baseline medians" t_baseline_median;
    test "all group constructors" t_group_constructors;
    test "combined groupings" t_both;
    test "error cases" t_analyze_errors;
    test "report printing" t_pp_report;
  ]
