open Core
open Helpers

let spec ?(area = 800.) ?(non_planar = true) tpp bw =
  Spec.make ~non_planar ~tpp ~device_bw_gb_s:bw ~die_area_mm2:area ()

(* --- Spec --- *)

let t_spec () =
  let s = spec ~area:826. 4992. 600. in
  check_within "pd" ~tolerance:0.01 6.04 (Spec.performance_density s);
  let planar = spec ~non_planar:false 4992. 600. in
  check_close "planar pd is zero" 0. (Spec.performance_density planar);
  check_raises_invalid "negative tpp" (fun () -> ignore (spec (-1.) 600.));
  check_raises_invalid "zero area" (fun () -> ignore (spec ~area:0. 1. 600.))

(* --- October 2022 (Table 1a) --- *)

let t_acr2022_table () =
  let lic = Acr_2022.License_required and na = Acr_2022.Not_applicable in
  Alcotest.(check bool) "A100 licensed" true (Acr_2022.classify (spec 4992. 600.) = lic);
  Alcotest.(check bool) "A800 free (bw capped)" true (Acr_2022.classify (spec 4992. 400.) = na);
  Alcotest.(check bool) "H20-like free (tpp capped)" true (Acr_2022.classify (spec 2368. 900.) = na);
  Alcotest.(check bool) "both under" true (Acr_2022.classify (spec 4799. 599.) = na);
  Alcotest.(check bool) "boundary is regulated" true (Acr_2022.classify (spec 4800. 600.) = lic)

let t_acr2022_headroom () =
  Alcotest.(check int) "regulated: no headroom" 0
    (List.length (Acr_2022.headroom (spec 4992. 600.)));
  (match Acr_2022.headroom (spec 4000. 600.) with
  | [ `Tpp room ] -> check_close "tpp room" 800. room
  | _ -> Alcotest.fail "expected tpp headroom only");
  Alcotest.(check int) "both knobs" 2
    (List.length (Acr_2022.headroom (spec 1000. 100.)))

(* --- October 2023 (Table 1b) --- *)

let dc = Acr_2023.Data_center
let ndc = Acr_2023.Non_data_center

let classify_dc ?area tpp = Acr_2023.classify dc (spec ?area tpp 600.)
let classify_ndc ?area tpp = Acr_2023.classify ndc (spec ?area tpp 600.)

let t_acr2023_dc_license () =
  Alcotest.(check bool) "tpp >= 4800" true
    (classify_dc ~area:3000. 4800. = Acr_2023.License_required);
  (* H800: TPP 15824, PD 19.4 *)
  Alcotest.(check bool) "H800" true
    (classify_dc ~area:814. 15824. = Acr_2023.License_required);
  (* A800: TPP 4992, PD 6.04: license by both clauses *)
  Alcotest.(check bool) "A800" true
    (classify_dc ~area:826. 4992. = Acr_2023.License_required);
  (* high PD at modest TPP *)
  Alcotest.(check bool) "1600 TPP, PD 6" true
    (classify_dc ~area:266. 1600. = Acr_2023.License_required)

let t_acr2023_dc_nac () =
  (* MI210: 2896 TPP, PD 3.76 *)
  Alcotest.(check bool) "MI210" true
    (classify_dc ~area:770. 2896. = Acr_2023.Nac_eligible);
  (* A30: 2640 TPP over 826 mm^2 -> PD 3.20 >= 3.2 *)
  Alcotest.(check bool) "A30" true
    (classify_dc ~area:826. 2643.2 = Acr_2023.Nac_eligible);
  (* First NAC clause: 2400 <= TPP < 4800 and 1.6 <= PD < 5.92 *)
  Alcotest.(check bool) "2400 @ PD 1.6" true
    (classify_dc ~area:1500. 2400. = Acr_2023.Nac_eligible)

let t_acr2023_dc_free () =
  (* H20: TPP 2368, PD 2.91 *)
  Alcotest.(check bool) "H20" true
    (classify_dc ~area:814. 2368. = Acr_2023.Not_applicable);
  (* L20: TPP 1912, PD 3.14 *)
  Alcotest.(check bool) "L20" true
    (classify_dc ~area:608.5 1912. = Acr_2023.Not_applicable);
  (* below the TPP floor entirely *)
  Alcotest.(check bool) "small" true
    (classify_dc ~area:100. 1500. = Acr_2023.Not_applicable);
  (* 2399 TPP needs > 750 mm^2 (paper Sec. 2.5) *)
  Alcotest.(check bool) "2399 @ 751mm2" true
    (classify_dc ~area:751. 2399. = Acr_2023.Not_applicable);
  Alcotest.(check bool) "2399 @ 740mm2 regulated" true
    (classify_dc ~area:740. 2399. = Acr_2023.Nac_eligible)

let t_acr2023_ndc () =
  (* RTX 4090: TPP 5285 -> NAC; RTX 4090D: 4708 -> free *)
  Alcotest.(check bool) "4090" true (classify_ndc ~area:608.5 5285. = Acr_2023.Nac_eligible);
  Alcotest.(check bool) "4090D" true
    (classify_ndc ~area:608.5 4708. = Acr_2023.Not_applicable);
  (* PD is irrelevant for non-data-center devices *)
  Alcotest.(check bool) "high PD consumer free" true
    (classify_ndc ~area:100. 4000. = Acr_2023.Not_applicable)

let t_acr2023_planar_exempt_pd () =
  (* A planar-process device has no applicable area: only raw TPP counts. *)
  let s = Spec.make ~non_planar:false ~tpp:2400. ~device_bw_gb_s:600. ~die_area_mm2:100. () in
  Alcotest.(check bool) "planar free despite tiny area" true
    (Acr_2023.classify dc s = Acr_2023.Not_applicable)

let t_area_floors () =
  (* Paper Sec. 2.5: 2399 TPP -> 750 mm^2; 1600 TPP NAC-free -> 500 mm^2;
     4799 TPP -> ~3000 mm^2; >= 4800 impossible. *)
  (match Acr_2023.min_area_unregulated ~tpp:2399. with
  | Some a -> check_within "2399 floor" ~tolerance:0.01 750. a
  | None -> Alcotest.fail "2399 should have a floor");
  (match Acr_2023.min_area_unregulated ~tpp:1600. with
  | Some a -> check_within "1600 floor" ~tolerance:0.01 500. a
  | None -> Alcotest.fail "1600 should have a floor");
  (match Acr_2023.min_area_unregulated ~tpp:4799. with
  | Some a -> check_within "4799 floor" ~tolerance:0.01 2999.4 a
  | None -> Alcotest.fail "4799 should have a floor");
  Alcotest.(check bool) "4800 impossible" true
    (Acr_2023.min_area_unregulated ~tpp:4800. = None);
  (match Acr_2023.min_area_license_free ~tpp:1600. with
  | Some a -> check_within "1600 NAC-eligible floor" ~tolerance:0.01 270.27 a
  | None -> Alcotest.fail "1600 license floor");
  Alcotest.(check bool) "tiny tpp unconstrained" true
    (Acr_2023.min_area_unregulated ~tpp:100. = Some 0.)

let t_tier_order () =
  Alcotest.(check bool) "NA < NAC" true
    (Acr_2023.compare_tier Acr_2023.Not_applicable Acr_2023.Nac_eligible < 0);
  Alcotest.(check bool) "NAC < License" true
    (Acr_2023.compare_tier Acr_2023.Nac_eligible Acr_2023.License_required < 0)

(* --- December 2024 HBM rule --- *)

let t_hbm () =
  Alcotest.(check bool) "low density" true
    (Hbm_2024.classify ~bandwidth_gb_s:150. ~package_area_mm2:100. ()
    = Hbm_2024.Not_controlled);
  Alcotest.(check bool) "mid density" true
    (Hbm_2024.classify ~bandwidth_gb_s:250. ~package_area_mm2:100. ()
    = Hbm_2024.Controlled_exception_eligible);
  Alcotest.(check bool) "high density" true
    (Hbm_2024.classify ~bandwidth_gb_s:400. ~package_area_mm2:100. ()
    = Hbm_2024.Controlled);
  Alcotest.(check bool) "installed exempt" true
    (Hbm_2024.classify ~installed_in_device:true ~bandwidth_gb_s:400.
       ~package_area_mm2:100. ()
    = Hbm_2024.Not_controlled);
  check_raises_invalid "area" (fun () ->
      ignore (Hbm_2024.classify ~bandwidth_gb_s:1. ~package_area_mm2:0. ()))

(* --- Proposals --- *)

let t_arch_dc_classifier () =
  Alcotest.(check bool) "H100 is DC" true
    (Proposals.architectural_data_center ~memory_gb:80. ~memory_bw_gb_s:3350.);
  Alcotest.(check bool) "4090 not DC" false
    (Proposals.architectural_data_center ~memory_gb:24. ~memory_bw_gb_s:1008.);
  Alcotest.(check bool) "MI100 (32 GB) is DC" true
    (Proposals.architectural_data_center ~memory_gb:32. ~memory_bw_gb_s:1228.);
  Alcotest.(check bool) "bandwidth alone suffices" true
    (Proposals.architectural_data_center ~memory_gb:16. ~memory_bw_gb_s:1700.)

let t_limits () =
  let a100 = Presets.a100 in
  Alcotest.(check bool) "unconstrained" true
    (Proposals.compliant Proposals.unconstrained a100);
  Alcotest.(check bool) "tpp-only blocks A100" false
    (Proposals.compliant (Proposals.tpp_only 4800.) a100);
  Alcotest.(check bool) "ai-targeted blocks A100" false
    (Proposals.compliant Proposals.ai_targeted a100);
  let small =
    Device.make ~core_count:50 ~lanes_per_core:4 ~systolic:(Systolic.square 4)
      ~l1_kb:32. ~l2_mb:8.
      ~memory:(Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8)
      ~interconnect:(Interconnect.of_total_gb_s 64.)
      ()
  in
  Alcotest.(check bool) "small device passes ai-targeted" true
    (Proposals.compliant Proposals.ai_targeted small);
  Alcotest.(check bool) "gaming carveout rejects 16x16" false
    (Proposals.compliant Proposals.gaming_carveout a100);
  Alcotest.(check bool) "gaming carveout accepts 4x4" true
    (Proposals.compliant Proposals.gaming_carveout
       { small with Device.memory = Memory.make ~capacity_gb:24. ~bandwidth_tb_s:1.2 })

let t_violations_detail () =
  let a100 = Presets.a100 in
  let v = Proposals.violations Proposals.ai_targeted a100 in
  Alcotest.(check int) "three violations" 3 (List.length v);
  Alcotest.(check bool) "strings render" true
    (List.for_all
       (fun x -> String.length (Proposals.violation_to_string x) > 0)
       v)

(* Property: raising TPP can never relax a classification. *)

let tier_rank = function
  | Acr_2023.Not_applicable -> 0
  | Acr_2023.Nac_eligible -> 1
  | Acr_2023.License_required -> 2

let prop_tpp_monotone_2023 =
  qcheck "oct-2023 DC tier monotone in TPP"
    QCheck.(pair (float_range 1. 20000.) (pair (float_range 1. 20000.) (float_range 50. 3000.)))
    (fun (t1, (t2, area)) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      let c tpp = Acr_2023.classify dc (spec ~area tpp 600.) in
      (* With area held fixed, more TPP also means more PD: tier can only
         rise. *)
      tier_rank (c lo) <= tier_rank (c hi))

let prop_area_monotone_2023 =
  qcheck "oct-2023 DC tier monotone (relaxing) in area"
    QCheck.(pair (float_range 1. 20000.) (pair (float_range 50. 3000.) (float_range 50. 3000.)))
    (fun (tpp, (a1, a2)) ->
      let lo = Float.min a1 a2 and hi = Float.max a1 a2 in
      let c area = Acr_2023.classify dc (spec ~area tpp 600.) in
      tier_rank (c hi) <= tier_rank (c lo))

let prop_2022_monotone =
  qcheck "oct-2022 monotone in both knobs"
    QCheck.(pair (float_range 1. 20000.) (float_range 1. 2000.))
    (fun (tpp, bw) ->
      let reg = Acr_2022.regulated (spec tpp bw) in
      (not reg) || Acr_2022.regulated (spec (tpp +. 100.) (bw +. 100.)))

let prop_floor_unregulated =
  qcheck "area floors produce unregulated designs"
    QCheck.(float_range 1. 4799.)
    (fun tpp ->
      match Acr_2023.min_area_unregulated ~tpp with
      | None -> false
      | Some floor ->
          let area = Float.max 1. (floor +. 1.) in
          Acr_2023.classify dc (spec ~area tpp 600.) = Acr_2023.Not_applicable)

let suite =
  [
    test "spec construction" t_spec;
    test "oct-2022 table 1a" t_acr2022_table;
    test "oct-2022 headroom" t_acr2022_headroom;
    test "oct-2023 DC license tier" t_acr2023_dc_license;
    test "oct-2023 DC NAC tier" t_acr2023_dc_nac;
    test "oct-2023 DC unregulated" t_acr2023_dc_free;
    test "oct-2023 non-DC" t_acr2023_ndc;
    test "oct-2023 planar PD exemption" t_acr2023_planar_exempt_pd;
    test "oct-2023 area floors (fig 2)" t_area_floors;
    test "tier ordering" t_tier_order;
    test "dec-2024 HBM rule" t_hbm;
    test "architectural DC classifier" t_arch_dc_classifier;
    test "proposal limits" t_limits;
    test "violation details" t_violations_detail;
    prop_tpp_monotone_2023;
    prop_area_monotone_2023;
    prop_2022_monotone;
    prop_floor_unregulated;
  ]
