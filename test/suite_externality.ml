open Core
open Helpers

let names gpus = List.map (fun g -> g.Gpu.name) gpus

let t_fig9_counts () =
  let a = Marketing.analyze Database.survey in
  (* Paper Fig. 9: 4 false data center, 7 false non-data center. *)
  Alcotest.(check int) "false DC" 4 (List.length a.Marketing.false_dc);
  Alcotest.(check int) "false NDC" 7 (List.length a.Marketing.false_ndc);
  Alcotest.(check int) "partition"
    (List.length Database.survey)
    (List.length a.Marketing.false_dc
    + List.length a.Marketing.false_ndc
    + List.length a.Marketing.consistent_dc
    + List.length a.Marketing.consistent_ndc)

let t_fig9_members () =
  let a = Marketing.analyze Database.survey in
  let false_dc = names a.Marketing.false_dc in
  (* The paper names the L40 and A40 explicitly. *)
  Alcotest.(check bool) "L40" true (List.mem "L40" false_dc);
  Alcotest.(check bool) "A40" true (List.mem "A40" false_dc);
  let false_ndc = names a.Marketing.false_ndc in
  (* ... and the RTX 4080 and RX 7900 XTX. *)
  Alcotest.(check bool) "RTX 4080" true (List.mem "RTX 4080" false_ndc);
  Alcotest.(check bool) "RX 7900 XTX" true (List.mem "RX 7900 XTX" false_ndc)

let t_fig9_rebranding_semantics () =
  (* A false-DC device must be regulated now and free when rebranded. *)
  let a = Marketing.analyze Database.survey in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Gpu.name ^ " regulated now")
        true
        (Gpu.classify_2023 g <> Acr_2023.Not_applicable);
      Alcotest.(check bool)
        (g.Gpu.name ^ " free rebranded")
        true
        (Marketing.rebranded_tier g = Acr_2023.Not_applicable))
    a.Marketing.false_dc;
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Gpu.name ^ " free now")
        true
        (Gpu.classify_2023 g = Acr_2023.Not_applicable);
      Alcotest.(check bool)
        (g.Gpu.name ^ " regulated rebranded")
        true
        (Marketing.rebranded_tier g <> Acr_2023.Not_applicable))
    a.Marketing.false_ndc

let t_fig10_counts () =
  let a = Arch_classifier.analyze Database.survey in
  (* Paper Fig. 10: two false data center (L2, L4), no false non-DC. *)
  Alcotest.(check int) "false DC" 2 (List.length a.Arch_classifier.false_dc);
  Alcotest.(check int) "false NDC" 0 (List.length a.Arch_classifier.false_ndc);
  let fdc = List.sort compare (names a.Arch_classifier.false_dc) in
  Alcotest.(check (list string)) "members" [ "L2"; "L4" ] fdc

let t_fig10_consistency () =
  let a = Arch_classifier.analyze Database.survey in
  List.iter
    (fun g ->
      Alcotest.(check bool)
        (g.Gpu.name ^ " consistent")
        true
        (Arch_classifier.status g = Arch_classifier.Consistent))
    (a.Arch_classifier.consistent_dc @ a.Arch_classifier.consistent_ndc)

let t_status_strings () =
  Alcotest.(check string) "marketing" "False DC"
    (Marketing.status_to_string Marketing.False_data_center);
  Alcotest.(check string) "arch" "False NDC"
    (Arch_classifier.status_to_string Arch_classifier.False_non_data_center)

let t_single_device_statuses () =
  let find n = Option.get (Database.find n) in
  Alcotest.(check bool) "H100 consistent under marketing" true
    (Marketing.status (find "H100") = Marketing.Consistent);
  Alcotest.(check bool) "MI210 false DC" true
    (Marketing.status (find "MI210") = Marketing.False_data_center);
  Alcotest.(check bool) "RTX 4070 false NDC" true
    (Marketing.status (find "RTX 4070") = Marketing.False_non_data_center);
  Alcotest.(check bool) "L4 arch false DC" true
    (Arch_classifier.status (find "L4") = Arch_classifier.False_data_center);
  Alcotest.(check bool) "RTX 4090 arch consistent" true
    (Arch_classifier.status (find "RTX 4090") = Arch_classifier.Consistent)

let suite =
  [
    test "fig 9 counts (4 false DC, 7 false NDC)" t_fig9_counts;
    test "fig 9 named members" t_fig9_members;
    test "fig 9 rebranding semantics" t_fig9_rebranding_semantics;
    test "fig 10 counts (L2 and L4)" t_fig10_counts;
    test "fig 10 consistency" t_fig10_consistency;
    test "status strings" t_status_strings;
    test "individual statuses" t_single_device_statuses;
  ]
