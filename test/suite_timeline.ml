open Core
open Helpers

let spec_of name = Gpu.spec (Option.get (Database.find name))

let t_regimes () =
  Alcotest.(check bool) "sep 2022" true
    (Timeline.regime_at (Timeline.date 2022 9) = Timeline.Pre_acr);
  Alcotest.(check bool) "oct 2022" true
    (Timeline.regime_at (Timeline.date 2022 10) = Timeline.Acr_oct_2022);
  Alcotest.(check bool) "sep 2023" true
    (Timeline.regime_at (Timeline.date 2023 9) = Timeline.Acr_oct_2022);
  Alcotest.(check bool) "oct 2023" true
    (Timeline.regime_at (Timeline.date 2023 10) = Timeline.Acr_oct_2023);
  Alcotest.(check bool) "today" true
    (Timeline.regime_at (Timeline.date 2026 7) = Timeline.Acr_oct_2023);
  check_raises_invalid "month 13" (fun () -> ignore (Timeline.date 2024 13))

let t_a800_cat_and_mouse () =
  (* The A800 existed to escape October 2022 and was recaptured a year
     later - the paper's Sec. 2.2 story, as a timeline. *)
  let market = Acr_2023.Data_center in
  let spec = spec_of "A800" in
  Alcotest.(check bool) "free before rules" true
    (Timeline.classify_at (Timeline.date 2022 8) ~market spec = Timeline.Unregulated);
  Alcotest.(check bool) "free under oct 2022" true
    (Timeline.classify_at (Timeline.date 2023 1) ~market spec = Timeline.Unregulated);
  Alcotest.(check bool) "licensed under oct 2023" true
    (Timeline.classify_at (Timeline.date 2024 1) ~market spec = Timeline.License)

let t_history () =
  let h = Timeline.history ~market:Acr_2023.Data_center (spec_of "A100") in
  Alcotest.(check int) "three regimes" 3 (List.length h);
  Alcotest.(check bool) "pre-acr free" true
    (List.assoc Timeline.Pre_acr h = Timeline.Unregulated);
  Alcotest.(check bool) "licensed since 2022" true
    (List.assoc Timeline.Acr_oct_2022 h = Timeline.License
    && List.assoc Timeline.Acr_oct_2023 h = Timeline.License);
  (* MI210: unregulated until October 2023, then NAC. *)
  let mi210 = Timeline.history ~market:Acr_2023.Data_center (spec_of "MI210") in
  Alcotest.(check bool) "mi210 nac in 2023" true
    (List.assoc Timeline.Acr_oct_2022 mi210 = Timeline.Unregulated
    && List.assoc Timeline.Acr_oct_2023 mi210 = Timeline.Nac_notification)

let t_market_matters_only_in_2023 () =
  let spec = spec_of "RTX 4090" in
  let at market = Timeline.classify_at (Timeline.date 2024 1) ~market spec in
  Alcotest.(check bool) "consumer NAC" true
    (at Acr_2023.Non_data_center = Timeline.Nac_notification);
  Alcotest.(check bool) "as DC licensed" true
    (at Acr_2023.Data_center = Timeline.License);
  Alcotest.(check bool) "2022 ignores market" true
    (Timeline.classify_at (Timeline.date 2023 1) ~market:Acr_2023.Data_center spec
    = Timeline.classify_at (Timeline.date 2023 1) ~market:Acr_2023.Non_data_center spec)

let suite =
  [
    test "regime boundaries" t_regimes;
    test "A800 cat-and-mouse" t_a800_cat_and_mouse;
    test "history" t_history;
    test "market only matters from 2023" t_market_matters_only_in_2023;
  ]
