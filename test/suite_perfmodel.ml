open Core
open Helpers

let a100 = Presets.a100

let with_membw dev tb_s =
  { dev with Device.memory = Memory.with_bandwidth dev.Device.memory ~bandwidth_tb_s:tb_s }

let with_devbw dev gb_s =
  { dev with Device.interconnect = Interconnect.of_total_gb_s gb_s }

(* --- Calibration regression: the paper's modeled-A100 anchors. --- *)

let t_anchor_gpt3 () =
  let r = Engine.simulate a100 Model.gpt3_175b in
  (* Paper Figs. 5-6: per-layer TTFT ~283 ms, TBT ~1.43 ms. *)
  check_within "ttft" ~tolerance:0.06 0.283 r.Engine.ttft_s;
  check_within "tbt" ~tolerance:0.06 1.43e-3 r.Engine.tbt_s

let t_anchor_llama () =
  let r = Engine.simulate a100 Model.llama3_8b in
  (* Paper Fig. 6d-f: TTFT ~47 ms; TBT ~0.65 ms (we land ~0.51, a known
     deviation documented in EXPERIMENTS.md; assert the band we ship). *)
  check_within "ttft" ~tolerance:0.08 0.047 r.Engine.ttft_s;
  check_between "tbt band" 0.40e-3 0.70e-3 r.Engine.tbt_s

let t_bandwidth_sensitivity () =
  (* Paper Sec. 4.2: 3.2 TB/s cuts GPT-3 TBT by ~27%, Llama by ~12-14%. *)
  let fast = with_membw a100 3.2 in
  let change model =
    let base = (Engine.simulate a100 model).Engine.tbt_s in
    let v = (Engine.simulate fast model).Engine.tbt_s in
    (v -. base) /. base
  in
  check_between "gpt3 tbt change" (-0.33) (-0.22) (change Model.gpt3_175b);
  check_between "llama tbt change" (-0.20) (-0.09) (change Model.llama3_8b)

let t_device_bw_insensitivity () =
  (* Paper Sec. 4.1: device bandwidth 600 -> 1000 GB/s changes decoding by
     only ~0.3%. *)
  let wide = with_devbw a100 1000. in
  let base = (Engine.simulate a100 Model.gpt3_175b).Engine.tbt_s in
  let v = (Engine.simulate wide Model.gpt3_175b).Engine.tbt_s in
  check_between "tbt change" (-0.01) 0. ((v -. base) /. base)

let t_tpp_scaling () =
  (* Paper Fig. 5: TPP 4000 -> 5000 cuts TTFT by ~16%; 4000 -> 7000 by ~34%. *)
  let dev tpp =
    let cores =
      Device.cores_for_tpp ~tpp ~lanes_per_core:4 ~systolic:(Systolic.square 16) ()
    in
    Device.make ~core_count:cores ~lanes_per_core:4
      ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:40.
      ~memory:a100.Device.memory ~interconnect:a100.Device.interconnect ()
  in
  let ttft tpp = (Engine.simulate (dev tpp) Model.gpt3_175b).Engine.ttft_s in
  let t4000 = ttft 4000. and t5000 = ttft 5000. and t7000 = ttft 7000. in
  check_between "4000->5000" (-0.22) (-0.12) ((t5000 -. t4000) /. t4000);
  check_between "4000->7000" (-0.45) (-0.28) ((t7000 -. t4000) /. t4000)

(* --- Structural properties of the operator model. --- *)

let t_breakdown_consistency () =
  let ops = Engine.op_latencies a100 Model.gpt3_175b Layer.Decode in
  Alcotest.(check int) "op count" 15 (List.length ops);
  List.iter
    (fun (op, b) ->
      if b.Op_model.total_s <= 0. then
        Alcotest.failf "op %s has non-positive latency" (Op.label op);
      if
        b.Op_model.total_s
        < Float.max b.Op_model.compute_s b.Op_model.memory_s -. 1e-12
      then Alcotest.failf "op %s total below max stream" (Op.label op))
    ops

let t_decode_memory_bound () =
  (* Decode weight-streaming matmuls on the A100 must be memory bound. *)
  let ops = Engine.op_latencies a100 Model.gpt3_175b Layer.Decode in
  let ffn =
    List.find
      (fun (op, _) -> Op.label op = "ffn_up")
      ops
  in
  let _, b = ffn in
  Alcotest.(check bool) "memory > compute" true
    (b.Op_model.memory_s > b.Op_model.compute_s)

let t_prefill_compute_bound () =
  let ops = Engine.op_latencies a100 Model.gpt3_175b Layer.Prefill in
  let _, b = List.find (fun (op, _) -> Op.label op = "ffn_up") ops in
  Alcotest.(check bool) "compute > memory" true
    (b.Op_model.compute_s > b.Op_model.memory_s)

let t_matmul_efficiency_bounds () =
  let mm =
    { Op.label = "x"; m = 32; k = 4096; n = 4096; batch_count = 1; weights_streamed = true }
  in
  let eff = Op_model.matmul_compute_efficiency a100 mm in
  check_between "efficiency in (0,1]" 1e-6 1. eff

let t_sixteen_is_sweet_spot () =
  (* At a fixed TPP, 16x16 arrays should beat both 4x4 and 32x32 on prefill
     (paper Sec. 5.4 / LLMCompass). *)
  let dev dim lanes =
    let systolic = Systolic.square dim in
    let cores = Device.cores_for_tpp ~tpp:4800. ~lanes_per_core:lanes ~systolic () in
    Device.make ~core_count:cores ~lanes_per_core:lanes ~systolic ~l1_kb:192.
      ~l2_mb:40. ~memory:a100.Device.memory
      ~interconnect:a100.Device.interconnect ()
  in
  let ttft dim lanes = (Engine.simulate (dev dim lanes) Model.gpt3_175b).Engine.ttft_s in
  Alcotest.(check bool) "16 beats 4" true (ttft 16 4 < ttft 4 4);
  Alcotest.(check bool) "16 beats 32" true (ttft 16 4 < ttft 32 4)

let t_l1_starvation () =
  (* Tiny L1 must slow prefill substantially (paper Fig. 12). *)
  let starved = { a100 with Device.l1_bytes = 32e3 } in
  let base = (Engine.simulate a100 Model.gpt3_175b).Engine.ttft_s in
  let slow = (Engine.simulate starved Model.gpt3_175b).Engine.ttft_s in
  Alcotest.(check bool) "at least 25% slower" true (slow > base *. 1.25)

let t_effective_bandwidth_core_cap () =
  let few_cores =
    Device.make ~core_count:8 ~lanes_per_core:4 ~systolic:(Systolic.square 16)
      ~l1_kb:192. ~l2_mb:40.
      ~memory:(Memory.make ~capacity_gb:80. ~bandwidth_tb_s:3.2)
      ~interconnect:a100.Device.interconnect ()
  in
  let bw = Op_model.effective_dram_bandwidth few_cores in
  Alcotest.(check bool) "capped below peak" true (bw < 3.2e12 *. 0.95);
  let many = Op_model.effective_dram_bandwidth a100 in
  check_close "a100 uncapped" (2e12 *. 0.95) many

let t_allreduce_tp1 () =
  let b =
    Op_model.latency a100 ~tp:1 (Op.All_reduce { label = "ar"; bytes = 1e9 })
  in
  check_close "no comm at tp=1" 0. b.Op_model.comm_s

let t_mfu () =
  let r = Engine.simulate a100 Model.gpt3_175b in
  check_between "prefill mfu" 0.4 0.9 (Engine.mfu_prefill r);
  check_between "decode mfu" 0.001 0.2 (Engine.mfu_decode r);
  Alcotest.(check bool) "prefill mfu > decode mfu" true
    (Engine.mfu_prefill r > Engine.mfu_decode r)

let t_whole_model_metrics () =
  let r = Engine.simulate a100 Model.gpt3_175b in
  check_close "model ttft" (r.Engine.ttft_s *. 96.) (Engine.model_ttft_s r);
  check_close "model tbt" (r.Engine.tbt_s *. 96.) (Engine.model_tbt_s r);
  let e2e = Engine.end_to_end_s r in
  Alcotest.(check bool) "e2e > prefill" true (e2e > Engine.model_ttft_s r);
  Alcotest.(check bool) "throughput positive" true
    (Engine.throughput_tokens_per_s r > 0.)

let matmul_arb =
  let open QCheck.Gen in
  let gen =
    let* m = int_range 1 4096 in
    let* k = int_range 16 8192 in
    let* n = int_range 16 8192 in
    let* batch_count = int_range 1 64 in
    let* weights_streamed = bool in
    return { Op.label = "prop"; m; k; n; batch_count; weights_streamed }
  in
  QCheck.make
    ~print:(fun mm ->
      Printf.sprintf "[%dx%dx%d]x%d" mm.Op.m mm.Op.k mm.Op.n mm.Op.batch_count)
    gen

let prop_matmul_latency_monotone_in_m =
  qcheck ~count:80 "matmul latency non-decreasing in m"
    QCheck.(pair device_arb matmul_arb)
    (fun (d, mm) ->
      let lat mm = (Op_model.latency d ~tp:4 (Op.Matmul mm)).Op_model.total_s in
      lat { mm with Op.m = mm.Op.m * 2 } >= lat mm -. 1e-12)

let prop_matmul_traffic_at_least_compulsory =
  qcheck ~count:80 "dram traffic covers each operand once"
    QCheck.(pair device_arb matmul_arb)
    (fun (d, mm) ->
      let traffic = Op_model.dram_traffic_bytes d (Op.Matmul mm) in
      let compulsory =
        Op.matmul_weight_bytes mm ~bytes_per_value:2.
        +. Op.matmul_activation_bytes mm ~bytes_per_value:2.
      in
      traffic >= compulsory -. 1e-6)

let prop_bigger_l2_never_more_traffic =
  qcheck ~count:60 "larger L2 never increases matmul traffic"
    QCheck.(pair device_arb matmul_arb)
    (fun (d, mm) ->
      let bigger = { d with Device.l2_bytes = d.Device.l2_bytes *. 4. } in
      Op_model.dram_traffic_bytes bigger (Op.Matmul mm)
      <= Op_model.dram_traffic_bytes d (Op.Matmul mm) +. 1e-6)

let prop_latency_positive =
  qcheck ~count:60 "simulation latencies positive and finite" device_arb
    (fun d ->
      let r = Engine.simulate d Model.llama3_8b in
      r.Engine.ttft_s > 0. && r.Engine.tbt_s > 0.
      && Float.is_finite r.Engine.ttft_s
      && Float.is_finite r.Engine.tbt_s)

let prop_prefill_slower_than_decode =
  qcheck ~count:60 "prefill layer slower than decode layer" device_arb
    (fun d ->
      let r = Engine.simulate d Model.gpt3_175b in
      r.Engine.ttft_s > r.Engine.tbt_s)

let prop_membw_monotone =
  qcheck ~count:40 "decode latency non-increasing in memory bandwidth"
    device_arb (fun d ->
      let faster = with_membw d (d.Device.memory.Memory.bandwidth_bytes_per_s /. 1e12 *. 2.) in
      let base = (Engine.simulate d Model.gpt3_175b).Engine.tbt_s in
      let v = (Engine.simulate faster Model.gpt3_175b).Engine.tbt_s in
      v <= base +. 1e-12)

let prop_more_cores_faster_prefill =
  qcheck ~count:40 "prefill latency decreasing in core count" device_arb
    (fun d ->
      QCheck.assume (d.Device.core_count <= 256);
      let bigger = { d with Device.core_count = d.Device.core_count * 2 } in
      let base = (Engine.simulate d Model.gpt3_175b).Engine.ttft_s in
      let v = (Engine.simulate bigger Model.gpt3_175b).Engine.ttft_s in
      v < base)

let suite =
  [
    test "anchor: gpt-3 on modeled A100" t_anchor_gpt3;
    test "anchor: llama 3 on modeled A100" t_anchor_llama;
    test "memory bandwidth sensitivity" t_bandwidth_sensitivity;
    test "device bandwidth insensitivity" t_device_bw_insensitivity;
    test "tpp scaling (fig 5)" t_tpp_scaling;
    test "breakdown consistency" t_breakdown_consistency;
    test "decode is memory bound" t_decode_memory_bound;
    test "prefill is compute bound" t_prefill_compute_bound;
    test "matmul efficiency bounded" t_matmul_efficiency_bounds;
    test "16x16 is the sweet spot" t_sixteen_is_sweet_spot;
    test "tiny L1 starves prefill" t_l1_starvation;
    test "few cores cap DRAM bandwidth" t_effective_bandwidth_core_cap;
    test "all-reduce degenerates at tp=1" t_allreduce_tp1;
    test "mfu sane" t_mfu;
    test "whole-model metrics" t_whole_model_metrics;
    prop_matmul_latency_monotone_in_m;
    prop_matmul_traffic_at_least_compulsory;
    prop_bigger_l2_never_more_traffic;
    prop_latency_positive;
    prop_prefill_slower_than_decode;
    prop_membw_monotone;
    prop_more_cores_faster_prefill;
  ]
