open Core
open Helpers

let t_ctp_formula () =
  (* WF = 1/3 + WL/96: a 64-bit element has WF = 1, a 32-bit one 2/3. *)
  check_close "64-bit factor" 1000.
    (Historical.ctp_element_mtops ~rate_mops:1000. ~word_length_bits:64);
  check_close "32-bit factor" (1000. *. ((1. /. 3.) +. (32. /. 96.)))
    (Historical.ctp_element_mtops ~rate_mops:1000. ~word_length_bits:32);
  check_close "aggregation" 2000.
    (Historical.ctp_mtops [ (1000., 64); (1000., 64) ]);
  check_close "of_flops" 1000.
    (Historical.ctp_of_flops ~flops:1e9 ~word_length_bits:64);
  check_raises_invalid "rate" (fun () ->
      ignore (Historical.ctp_element_mtops ~rate_mops:0. ~word_length_bits:64))

let t_app_formula () =
  check_close "vector weight" 0.9 (Historical.app_weight Historical.Vector);
  check_close "non-vector weight" 0.3 (Historical.app_weight Historical.Non_vector);
  (* A100: 9.7 FP64 TFLOPS, vector-class -> 8.73 WT. *)
  check_close "a100 app" 8.73
    (Historical.app_wt ~fp64_flops:9.7e12 ~kind:Historical.Vector);
  check_raises_invalid "negative" (fun () ->
      ignore (Historical.app_wt ~fp64_flops:(-1.) ~kind:Historical.Vector))

let t_thresholds_outdated () =
  (* Even a mid-range consumer card dwarfs every historical threshold:
     the paper's point that metrics age much faster than rules. *)
  let rtx4070_fp32 = 29.15e12 in
  let ctp = Historical.ctp_of_flops ~flops:rtx4070_fp32 ~word_length_bits:32 in
  Alcotest.(check bool) "beyond 2001 ctp line" true
    (ctp > 100. *. Historical.ctp_threshold_2001_mtops);
  let a100_app = Historical.app_wt ~fp64_flops:9.7e12 ~kind:Historical.Vector in
  Alcotest.(check bool) "beyond 2006 app line" true
    (a100_app > Historical.app_threshold_2006_wt *. 10.);
  Alcotest.(check bool) "thresholds increased over time" true
    (Historical.ctp_threshold_1998_mtops < Historical.ctp_threshold_2001_mtops
    && Historical.app_threshold_2006_wt < Historical.app_threshold_2011_wt)

let prop_ctp_monotone =
  qcheck "ctp monotone in rate and word length"
    QCheck.(pair (float_range 1. 1e6) (pair (int_range 8 64) (int_range 8 64)))
    (fun (rate, (w1, w2)) ->
      let lo = min w1 w2 and hi = max w1 w2 in
      Historical.ctp_element_mtops ~rate_mops:rate ~word_length_bits:lo
      <= Historical.ctp_element_mtops ~rate_mops:rate ~word_length_bits:hi)

let suite =
  [
    test "ctp formula" t_ctp_formula;
    test "app formula" t_app_formula;
    test "historical thresholds outdated" t_thresholds_outdated;
    prop_ctp_monotone;
  ]
