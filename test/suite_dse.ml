open Core
open Helpers

let t_sweep_sizes () =
  (* The paper's counts: 512 (Table 3 @ 600 GB/s), 1536 per TPP (Fig. 7),
     2304 (Table 5). *)
  Alcotest.(check int) "oct2022" 512 (Space.size Space.oct2022);
  Alcotest.(check int) "oct2023" 1536 (Space.size Space.oct2023);
  Alcotest.(check int) "restricted" 2304 (Space.size Space.restricted);
  Alcotest.(check int) "enumerate matches size" 512
    (List.length (Space.enumerate Space.oct2022))

let t_build_under_target () =
  List.iter
    (fun p ->
      let d = Space.build ~tpp_target:4800. p in
      if Device.tpp d >= 4800. then
        Alcotest.failf "design at %.0f TPP reaches the target" (Device.tpp d))
    (Space.enumerate Space.oct2022)

let t_build_paper_config () =
  (* 16x16 x 4 lanes at the 4800 target must give the 103-core / 4759-TPP
     configuration from Fig. 5. *)
  let p =
    { Space.systolic_dim = 16; lanes = 4; l1 = 192.; l2 = 40.; memory_bw = 2.;
      device_bw = 600.; clock_mhz = Space.default_clock_mhz }
  in
  let d = Space.build ~tpp_target:4800. p in
  Alcotest.(check int) "cores" 103 d.Device.core_count;
  check_within "tpp" ~tolerance:0.001 4759.1 (Device.tpp d)

let eval_few =
  lazy
    (let params = Space.enumerate Space.oct2022 in
     let some = List.filteri (fun i _ -> i mod 37 = 0) params in
     List.map
       (fun p ->
         Design.evaluate ~model:Model.llama3_8b p (Space.build ~tpp_target:4800. p))
       some)

let t_design_fields () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "area positive" true (d.Design.area_mm2 > 0.);
      Alcotest.(check bool) "cost positive" true (d.Design.die_cost_usd > 0.);
      Alcotest.(check bool) "good >= raw" true
        (d.Design.good_die_cost_usd >= d.Design.die_cost_usd);
      Alcotest.(check bool) "latencies positive" true
        (d.Design.ttft_s > 0. && d.Design.tbt_s > 0.);
      Alcotest.(check bool) "reticle flag consistent" true
        (d.Design.within_reticle = (d.Design.area_mm2 <= 860.));
      (* Every oct-2022 design was generated under the TPP threshold, so
         none can require a license under that rule. *)
      Alcotest.(check bool) "2022 compliant" true (Design.compliant_2022 d))
    (Lazy.force eval_few)

let t_cost_products () =
  match Lazy.force eval_few with
  | d :: _ ->
      check_close "ttft x cost"
        (Units.to_ms d.Design.ttft_s *. d.Design.die_cost_usd)
        (Design.ttft_cost_product d);
      check_close "tbt x cost"
        (Units.to_ms d.Design.tbt_s *. d.Design.die_cost_usd)
        (Design.tbt_cost_product d)
  | [] -> Alcotest.fail "no designs"

let t_valid_2400_count () =
  (* Paper Sec. 4.4: 56 of 1536 designs at the 2400 target are valid
     (unregulated and manufacturable); we land within a few designs. *)
  let designs =
    Design.evaluate_sweep ~model:Model.gpt3_175b ~tpp_target:2400. Space.oct2023
  in
  let valid =
    List.filter (fun d -> Design.compliant_2023 d && Design.manufacturable d) designs
  in
  check_between "valid count" 40. 75. (float_of_int (List.length valid))

let t_all_4800_invalid () =
  (* Paper Sec. 4.3: every 4800-target design violates the PD floor. *)
  let designs =
    Design.evaluate_sweep ~model:Model.llama3_8b ~tpp_target:4800. Space.oct2023
  in
  Alcotest.(check bool) "none unregulated" true
    (List.for_all (fun d -> not (Design.compliant_2023 d)) designs)

(* --- Pareto --- *)

let t_pareto_basic () =
  let pts = [ (1., 5.); (2., 2.); (5., 1.); (3., 3.); (6., 6.) ] in
  let front = Pareto.frontier ~fx:fst ~fy:snd pts in
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "frontier" [ (1., 5.); (2., 2.); (5., 1.) ] front

let t_pareto_duplicates () =
  let pts = [ (1., 1.); (1., 1.) ] in
  (* Equal points do not dominate each other; both stay. *)
  Alcotest.(check int) "both kept" 2
    (List.length (Pareto.frontier ~fx:fst ~fy:snd pts))

let prop_pareto_subset_and_undominated =
  let pair_list = QCheck.(list_of_size Gen.(int_range 1 30) (pair (float_range 0. 10.) (float_range 0. 10.))) in
  qcheck "frontier is an undominated subset" pair_list (fun pts ->
      let front = Pareto.frontier ~fx:fst ~fy:snd pts in
      List.for_all (fun p -> List.mem p pts) front
      && List.for_all (fun p -> not (Pareto.dominated ~fx:fst ~fy:snd p pts)) front)

let prop_pareto_covers =
  let pair_list = QCheck.(list_of_size Gen.(int_range 1 30) (pair (float_range 0. 10.) (float_range 0. 10.))) in
  qcheck "every point is dominated by or equal to a frontier point" pair_list
    (fun pts ->
      let front = Pareto.frontier ~fx:fst ~fy:snd pts in
      List.for_all
        (fun p ->
          List.exists (fun q -> fst q <= fst p && snd q <= snd p) front)
        pts)

(* --- Optimum --- *)

let t_optimum () =
  let ds = Lazy.force eval_few in
  let best = Optimum.best_exn Optimum.Tbt ds in
  Alcotest.(check bool) "minimal" true
    (List.for_all (fun d -> d.Design.tbt_s >= best.Design.tbt_s) ds);
  Alcotest.(check bool) "filters can empty" true
    (Optimum.best ~filters:[ (fun _ -> false) ] Optimum.Ttft ds = None);
  check_close "improvement" (-0.5) (Optimum.improvement_vs ~baseline:2. 1.)

let suite =
  [
    test "sweep sizes match the paper" t_sweep_sizes;
    test "designs stay under the TPP target" t_build_under_target;
    test "paper's 103-core configuration" t_build_paper_config;
    test "design evaluation fields" t_design_fields;
    test "latency-cost products" t_cost_products;
    test "~56 valid 2400-TPP designs" t_valid_2400_count;
    test "all 4800-target designs invalid (oct 2023)" t_all_4800_invalid;
    test "pareto frontier basics" t_pareto_basic;
    test "pareto keeps duplicates" t_pareto_duplicates;
    prop_pareto_subset_and_undominated;
    prop_pareto_covers;
    test "optimum selection" t_optimum;
  ]
