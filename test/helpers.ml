(* Shared assertion helpers for the test suites. *)

let check_close ?(eps = 1e-9) what expected actual =
  let ok =
    Float.abs (expected -. actual)
    <= eps *. Float.max 1. (Float.max (Float.abs expected) (Float.abs actual))
  in
  if not ok then
    Alcotest.failf "%s: expected %.9g, got %.9g" what expected actual

let check_within what ~tolerance expected actual =
  (* Relative tolerance, e.g. 0.05 for +/-5%. *)
  if expected = 0. then check_close what expected actual
  else begin
    let rel = Float.abs ((actual -. expected) /. expected) in
    if rel > tolerance then
      Alcotest.failf "%s: expected %.6g within %.0f%%, got %.6g (off %.1f%%)"
        what expected (100. *. tolerance) actual (100. *. rel)
  end

let check_between what lo hi actual =
  if actual < lo || actual > hi then
    Alcotest.failf "%s: expected value in [%.6g, %.6g], got %.6g" what lo hi
      actual

let check_raises_invalid what f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what

let test name f = Alcotest.test_case name `Quick f

let qcheck ?(count = 200) name arbitrary prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arbitrary prop)

(* A reasonable random device generator for property tests. *)
let device_gen =
  let open QCheck.Gen in
  let* dim = oneofl [ 4; 8; 16; 32 ] in
  let* lanes = oneofl [ 1; 2; 4; 8 ] in
  let* cores = int_range 1 512 in
  let* l1_kb = oneofl [ 32.; 64.; 128.; 192.; 256.; 512.; 1024. ] in
  let* l2_mb = oneofl [ 8.; 16.; 32.; 40.; 48.; 64.; 80. ] in
  let* membw = oneofl [ 0.8; 1.2; 1.6; 2.; 2.4; 2.8; 3.2 ] in
  let* devbw = oneofl [ 32.; 200.; 400.; 500.; 600.; 700.; 900. ] in
  return
    (Core.Device.make ~core_count:cores ~lanes_per_core:lanes
       ~systolic:(Core.Systolic.square dim) ~l1_kb ~l2_mb
       ~memory:(Core.Memory.make ~capacity_gb:80. ~bandwidth_tb_s:membw)
       ~interconnect:(Core.Interconnect.of_total_gb_s devbw)
       ())

let device_arb =
  QCheck.make ~print:(fun d -> Core.Device.summary d) device_gen

(* A fresh temporary directory for disk-cache tests, removed recursively
   afterwards even when the test fails. *)
let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_cache_dir f =
  let dir = Filename.temp_file "acs_cache" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () -> f dir)
