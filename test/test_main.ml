let () =
  Alcotest.run "acs"
    [
      ("stats", Suite_stats.suite);
      ("util", Suite_util.suite);
      ("hardware", Suite_hardware.suite);
      ("workload", Suite_workload.suite);
      ("perfmodel", Suite_perfmodel.suite);
      ("compiled", Suite_compiled.suite);
      ("area+cost", Suite_area_cost.suite);
      ("power", Suite_power.suite);
      ("package", Suite_package.suite);
      ("graphics", Suite_graphics.suite);
      ("serving", Suite_serving.suite);
      ("fleet", Suite_fleet.suite);
      ("observability", Suite_observability.suite);
      ("properties", Suite_properties.suite);
      ("historical", Suite_historical.suite);
      ("diffusion", Suite_diffusion.suite);
      ("binning", Suite_binning.suite);
      ("market", Suite_market.suite);
      ("report", Suite_report.suite);
      ("cluster", Suite_cluster.suite);
      ("training", Suite_training.suite);
      ("policy", Suite_policy.suite);
      ("regime", Suite_regime.suite);
      ("derate", Suite_derate.suite);
      ("timeline", Suite_timeline.suite);
      ("devicedb", Suite_devicedb.suite);
      ("dse", Suite_dse.suite);
      ("scenario", Suite_scenario.suite);
      ("search", Suite_search.suite);
      ("indicators", Suite_indicators.suite);
      ("externality", Suite_externality.suite);
      ("cli", Suite_cli.suite);
      ("golden", Suite_golden.suite);
      ("experiments", Suite_experiments.suite);
    ]
