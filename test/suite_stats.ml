open Core
open Helpers

let t_mean () =
  check_close "mean" 2. (Stats.mean [ 1.; 2.; 3. ]);
  check_close "mean single" 7. (Stats.mean [ 7. ]);
  check_close "mean negative" (-1.) (Stats.mean [ -3.; 1. ])

let t_median () =
  check_close "odd" 2. (Stats.median [ 3.; 1.; 2. ]);
  check_close "even" 2.5 (Stats.median [ 4.; 1.; 2.; 3. ]);
  check_close "repeated" 5. (Stats.median [ 5.; 5.; 5. ])

let t_percentile () =
  let xs = [ 10.; 20.; 30.; 40. ] in
  check_close "p0" 10. (Stats.percentile 0. xs);
  check_close "p100" 40. (Stats.percentile 100. xs);
  check_close "p50" 25. (Stats.percentile 50. xs);
  check_close "p25" 17.5 (Stats.percentile 25. xs);
  check_close "singleton" 42. (Stats.percentile 73. [ 42. ])

let t_stddev () =
  check_close "constant" 0. (Stats.stddev [ 4.; 4.; 4. ]);
  check_close "two points" 1. (Stats.stddev [ 1.; 3. ])

let t_range_iqr () =
  check_close "range" 9. (Stats.range [ 1.; 10.; 4. ]);
  check_close "iqr" 15. (Stats.iqr [ 10.; 20.; 30.; 40. ])

let t_summary () =
  let s = Stats.summarize [ 1.; 2.; 3.; 4.; 5. ] in
  Alcotest.(check int) "count" 5 s.Stats.count;
  check_close "min" 1. s.Stats.min;
  check_close "max" 5. s.Stats.max;
  check_close "median" 3. s.Stats.median;
  check_close "mean" 3. s.Stats.mean

let t_narrowing () =
  check_close "4x narrower" 4.
    (Stats.narrowing_factor ~baseline:[ 0.; 8. ] [ 1.; 3. ]);
  check_close "same" 1. (Stats.narrowing_factor ~baseline:[ 0.; 1. ] [ 5.; 6. ]);
  Alcotest.(check bool)
    "degenerate" true
    (Stats.narrowing_factor ~baseline:[ 0.; 1. ] [ 2.; 2. ] = infinity);
  check_close "both degenerate" 1.
    (Stats.narrowing_factor ~baseline:[ 3.; 3. ] [ 2.; 2. ])

let t_relative_change () =
  check_close "-27%" (-0.27) (Stats.relative_change ~baseline:100. 73.);
  check_close "+10%" 0.1 (Stats.relative_change ~baseline:10. 11.);
  check_raises_invalid "zero baseline" (fun () ->
      Stats.relative_change ~baseline:0. 1.)

let t_correlation () =
  check_close "perfect positive" 1.
    (Stats.correlation [ (1., 2.); (2., 4.); (3., 6.) ]);
  check_close "perfect negative" (-1.)
    (Stats.correlation [ (1., 3.); (2., 2.); (3., 1.) ]);
  check_close "constant variable" 0.
    (Stats.correlation [ (1., 5.); (2., 5.); (3., 5.) ]);
  check_between "uncorrelated-ish" (-0.6) 0.6
    (Stats.correlation [ (1., 1.); (2., -1.); (3., 1.); (4., -1.) ]);
  check_raises_invalid "single pair" (fun () ->
      ignore (Stats.correlation [ (1., 1.) ]))

let prop_correlation_bounds =
  qcheck "correlation within [-1, 1]"
    QCheck.(list_of_size Gen.(int_range 2 30) (pair (float_range (-100.) 100.) (float_range (-100.) 100.)))
    (fun pairs ->
      let c = Stats.correlation pairs in
      c >= -1.0000001 && c <= 1.0000001)

let t_argminmax () =
  check_close "argmin" (-2.) (Stats.argmin Float.abs [ 5.; -2.; 3. ]);
  check_close "argmax" 5. (Stats.argmax Float.abs [ 5.; -2.; 3. ]);
  check_close "argmin first of ties" 1. (Stats.argmin Float.abs [ 1.; -1. ])

let t_empty_inputs () =
  check_raises_invalid "mean" (fun () -> Stats.mean []);
  check_raises_invalid "median" (fun () -> Stats.median []);
  check_raises_invalid "stddev" (fun () -> Stats.stddev []);
  check_raises_invalid "range" (fun () -> Stats.range []);
  check_raises_invalid "summarize" (fun () -> Stats.summarize []);
  check_raises_invalid "argmin" (fun () -> Stats.argmin Fun.id []);
  check_raises_invalid "percentile range" (fun () ->
      Stats.percentile 101. [ 1. ])

let t_nan_rejected () =
  (* NaN is unordered, so any percentile over it is meaningless; the sort
     now uses [Float.compare] (total order) and the entry points reject NaN
     outright instead of returning a position-dependent value. *)
  check_raises_invalid "percentile" (fun () ->
      Stats.percentile 50. [ 1.; Float.nan; 3. ]);
  check_raises_invalid "median" (fun () -> Stats.median [ Float.nan ]);
  check_raises_invalid "summarize" (fun () ->
      ignore (Stats.summarize [ 2.; Float.nan ]));
  (* Infinities are ordered and stay accepted. *)
  Alcotest.(check bool) "infinity ok" true
    (Stats.percentile 100. [ 1.; Float.infinity ] = Float.infinity)

let float_list = QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))

let prop_median_bounds =
  qcheck "median within min/max" float_list (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.median && s.Stats.median <= s.Stats.max)

let prop_mean_bounds =
  qcheck "mean within min/max" float_list (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

let prop_percentile_monotone =
  qcheck "percentiles monotone"
    QCheck.(pair float_list (pair (float_bound_inclusive 100.) (float_bound_inclusive 100.)))
    (fun (xs, (p, q)) ->
      let lo = Float.min p q and hi = Float.max p q in
      Stats.percentile lo xs <= Stats.percentile hi xs +. 1e-9)

let prop_range_nonneg =
  qcheck "range non-negative" float_list (fun xs -> Stats.range xs >= 0.)

let prop_stddev_shift_invariant =
  qcheck "stddev shift invariant" float_list (fun xs ->
      let shifted = List.map (fun x -> x +. 1000.) xs in
      Float.abs (Stats.stddev xs -. Stats.stddev shifted) < 1e-6 *. (1. +. Stats.stddev xs))

(* Online (bounded-memory sketch) *)

(* The oracle for sketch quantiles: the exact nearest-rank order
   statistic, the convention Online.quantile documents (interpolated
   percentiles cannot be recovered from a histogram). *)
let nearest_rank p xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  let n = Array.length a in
  let k = max 1 (int_of_float (Float.ceil (p /. 100. *. float_of_int n))) in
  a.(k - 1)

let check_quantile_bound ~alpha what sketch p xs =
  let exact = nearest_rank p xs in
  let approx = Stats.Online.quantile sketch p in
  let tol = (alpha *. Float.abs exact) +. 1e-12 in
  if Float.abs (approx -. exact) > tol then
    Alcotest.failf "%s: p%g exact %.9g approx %.9g (tol %.3g)" what p exact
      approx tol

let t_online_moments_exact () =
  let xs = [ 3.; 1.; 4.; 1.5; 9.; 2.6; 5.3; 5.8 ] in
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) xs;
  Alcotest.(check int) "count" (List.length xs) (Stats.Online.count o);
  check_close "mean matches exact" (Stats.mean xs) (Stats.Online.mean o);
  check_close ~eps:1e-12 "stddev matches exact" (Stats.stddev xs)
    (Stats.Online.stddev o);
  check_close "min" 1. (Stats.Online.min_sample o);
  check_close "max" 9. (Stats.Online.max_sample o)

let t_online_vs_exact_quantiles () =
  (* A long-tailed positive sample, like the latency distributions the
     fleet feeds it. *)
  let st = Random.State.make [| 17 |] in
  let xs =
    List.init 5000 (fun _ ->
        let u = Random.State.float st 1. in
        0.01 *. exp (6. *. u))
  in
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) xs;
  List.iter
    (fun p -> check_quantile_bound ~alpha:0.01 "lognormal-ish" o p xs)
    [ 1.; 10.; 25.; 50.; 75.; 90.; 95.; 99.; 100. ]

let t_online_signs_and_zero () =
  let xs = [ -5.; -0.5; 0.; 0.; 2.; 40. ] in
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) xs;
  List.iter
    (fun p -> check_quantile_bound ~alpha:0.01 "mixed signs" o p xs)
    [ 0.; 20.; 40.; 60.; 90.; 100. ];
  check_close "zero is exact" 0. (Stats.Online.quantile o 50.)

let t_online_merge_identity () =
  (* Merging shards must equal feeding one sketch directly, whatever the
     shard boundaries - the fleet's 1-vs-N-job determinism rests on it. *)
  let st = Random.State.make [| 23 |] in
  let xs = List.init 2000 (fun _ -> Random.State.float st 100.) in
  let direct = Stats.Online.create () in
  List.iter (Stats.Online.add direct) xs;
  let shards = List.init 7 (fun _ -> Stats.Online.create ()) in
  List.iteri
    (fun i x -> Stats.Online.add (List.nth shards (i mod 7)) x)
    xs;
  let merged = Stats.Online.create () in
  List.iter (fun s -> Stats.Online.merge merged s) shards;
  Alcotest.(check int) "count" (Stats.Online.count direct)
    (Stats.Online.count merged);
  List.iter
    (fun p ->
      check_close
        (Printf.sprintf "p%g merge = direct" p)
        (Stats.Online.quantile direct p)
        (Stats.Online.quantile merged p))
    [ 5.; 50.; 95. ];
  check_close "mean merge = direct" (Stats.Online.mean direct)
    (Stats.Online.mean merged)

let t_online_validation () =
  let o = Stats.Online.create () in
  check_raises_invalid "empty quantile" (fun () ->
      ignore (Stats.Online.quantile o 50.));
  check_raises_invalid "NaN add" (fun () -> Stats.Online.add o nan);
  check_raises_invalid "bad alpha" (fun () ->
      ignore (Stats.Online.create ~alpha:1.5 ()));
  check_raises_invalid "p out of range" (fun () ->
      Stats.Online.add o 1.;
      ignore (Stats.Online.quantile o 101.));
  check_raises_invalid "mismatched alpha merge" (fun () ->
      Stats.Online.merge o (Stats.Online.create ~alpha:0.05 ()))

let t_online_nonfinite () =
  (* Infinities are as fatal to the log-bucket sketch as NaN:
     [int_of_float (log infinity)] is undefined in OCaml and silently
     corrupts the bucket table. The guard must reject them before any
     mutation, so a rejected sample leaves the sketch untouched. *)
  let o = Stats.Online.create () in
  Stats.Online.add o 1.;
  Stats.Online.add o 2.;
  check_raises_invalid "+inf add" (fun () -> Stats.Online.add o infinity);
  check_raises_invalid "-inf add" (fun () ->
      Stats.Online.add o neg_infinity);
  Alcotest.(check int) "count unchanged" 2 (Stats.Online.count o);
  check_close "mean unchanged" 1.5 (Stats.Online.mean o);
  check_close "min unchanged" 1. (Stats.Online.min_sample o);
  check_close "max unchanged" 2. (Stats.Online.max_sample o);
  check_within "quantile still answers" ~tolerance:0.02 2.
    (Stats.Online.quantile o 100.);
  (* A sketch that survived a rejected add merges cleanly. *)
  let m = Stats.Online.create () in
  Stats.Online.merge m o;
  Alcotest.(check int) "merged count" 2 (Stats.Online.count m);
  check_within "merged quantile" ~tolerance:0.02 2.
    (Stats.Online.quantile m 95.)

let prop_online_quantile_bound =
  qcheck "online quantile within relative bound"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (float_range 0.001 1000.))
        (int_range 0 100))
    (fun (xs, p) ->
      let p = float_of_int p in
      let o = Stats.Online.create () in
      List.iter (Stats.Online.add o) xs;
      let exact = nearest_rank p xs in
      Float.abs (Stats.Online.quantile o p -. exact)
      <= (0.01 *. Float.abs exact) +. 1e-12)

let suite =
  [
    test "mean" t_mean;
    test "median" t_median;
    test "percentile" t_percentile;
    test "stddev" t_stddev;
    test "range and iqr" t_range_iqr;
    test "summary" t_summary;
    test "narrowing factor" t_narrowing;
    test "relative change" t_relative_change;
    test "correlation" t_correlation;
    prop_correlation_bounds;
    test "argmin/argmax" t_argminmax;
    test "empty inputs rejected" t_empty_inputs;
    test "NaN inputs rejected" t_nan_rejected;
    prop_median_bounds;
    prop_mean_bounds;
    prop_percentile_monotone;
    prop_range_nonneg;
    prop_stddev_shift_invariant;
    test "online moments exact" t_online_moments_exact;
    test "online vs exact quantiles" t_online_vs_exact_quantiles;
    test "online mixed signs and zero" t_online_signs_and_zero;
    test "online merge = direct" t_online_merge_identity;
    test "online validation" t_online_validation;
    test "online rejects non-finite samples" t_online_nonfinite;
    prop_online_quantile_bound;
  ]
