open Core
open Helpers

let small_trace =
  Trace.synthetic ~rate_per_s:4. ~duration_s:10. ~mean_input:256
    ~mean_output:32 ()

let t_trace_determinism () =
  let a = Trace.synthetic ~seed:7 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  let b = Trace.synthetic ~seed:7 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  Alcotest.(check bool) "same trace" true (a = b);
  let c = Trace.synthetic ~seed:8 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let t_trace_shape () =
  let rate = 5. and duration = 40. in
  let tr = Trace.synthetic ~rate_per_s:rate ~duration_s:duration ~mean_input:512 ~mean_output:128 () in
  let n = List.length tr in
  check_between "arrival count near rate x duration" 120. 280. (float_of_int n);
  List.iter
    (fun r ->
      if r.Trace.arrival_s < 0. || r.Trace.arrival_s > duration then
        Alcotest.fail "arrival outside window";
      if r.Trace.input_len < 8 || r.Trace.output_len < 8 then
        Alcotest.fail "length floor violated")
    tr;
  let sorted = List.sort (fun a b -> compare a.Trace.arrival_s b.Trace.arrival_s) tr in
  Alcotest.(check bool) "sorted by arrival" true (tr = sorted)

let t_trace_validation () =
  check_raises_invalid "rate" (fun () ->
      ignore (Trace.synthetic ~rate_per_s:0. ~duration_s:1. ~mean_input:1 ~mean_output:1 ()));
  check_raises_invalid "means" (fun () ->
      ignore (Trace.synthetic ~rate_per_s:1. ~duration_s:1. ~mean_input:0 ~mean_output:1 ()))

let t_run_accounting () =
  let stats = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  Alcotest.(check int) "every request finishes"
    (List.length small_trace)
    (List.length stats.Simulator.outcomes);
  Alcotest.(check int) "token accounting"
    (Trace.total_output_tokens small_trace)
    stats.Simulator.generated_tokens;
  Alcotest.(check bool) "positive makespan" true (stats.Simulator.makespan_s > 0.);
  List.iter
    (fun o ->
      if o.Simulator.ttft_s <= 0. then Alcotest.fail "non-positive ttft";
      if o.Simulator.finish_s > stats.Simulator.makespan_s +. 1e-9 then
        Alcotest.fail "finish beyond makespan";
      if
        o.Simulator.request.Trace.output_len > 1
        && o.Simulator.tbt_s <= 0.
      then Alcotest.fail "missing tbt")
    stats.Simulator.outcomes

let t_percentiles_ordered () =
  let s = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  Alcotest.(check bool) "ttft p50 <= p95" true (s.Simulator.p50_ttft_s <= s.Simulator.p95_ttft_s);
  Alcotest.(check bool) "tbt p50 <= p95" true (s.Simulator.p50_tbt_s <= s.Simulator.p95_tbt_s)

let t_kv_capacity () =
  let cap =
    Simulator.kv_capacity_batch Simulator.default_config Presets.a100
      Model.llama3_8b ~context:2048
  in
  Alcotest.(check bool) "positive, at most max batch" true
    (cap > 0 && cap <= Simulator.default_config.Simulator.max_batch);
  (* GPT-3 on one device does not even fit its weights. *)
  let none =
    Simulator.kv_capacity_batch { Simulator.tp = 1; max_batch = 64 }
      Presets.a100 Model.gpt3_175b ~context:2048
  in
  Alcotest.(check int) "gpt-3 weights exceed one device" 0 none;
  check_raises_invalid "context" (fun () ->
      ignore
        (Simulator.kv_capacity_batch Simulator.default_config Presets.a100
           Model.llama3_8b ~context:0))

let t_memory_bandwidth_helps_serving () =
  let fast =
    { Presets.a100 with
      Device.memory = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:3.2 }
  in
  let base = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  let faster = Simulator.run fast Model.llama3_8b small_trace in
  Alcotest.(check bool) "p50 tbt improves" true
    (faster.Simulator.p50_tbt_s < base.Simulator.p50_tbt_s)

let t_overload_queues () =
  (* A 10x request rate must raise p95 TTFT (queueing delay). *)
  let light = Trace.synthetic ~rate_per_s:1. ~duration_s:10. ~mean_input:256 ~mean_output:64 () in
  let heavy = Trace.synthetic ~rate_per_s:60. ~duration_s:10. ~mean_input:256 ~mean_output:64 () in
  let l = Simulator.run Presets.a100 Model.llama3_8b light in
  let h = Simulator.run Presets.a100 Model.llama3_8b heavy in
  Alcotest.(check bool) "heavier load, slower p95 ttft" true
    (h.Simulator.p95_ttft_s > l.Simulator.p95_ttft_s);
  Alcotest.(check bool) "heavier load, higher occupancy" true
    (h.Simulator.mean_batch_occupancy > l.Simulator.mean_batch_occupancy)

let t_slo_attainment () =
  let s = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  check_close "infinite slo met" 1. (Simulator.slo_attainment s ~ttft_s:1e9 ~tbt_s:1e9);
  check_close "impossible slo" 0.
    (Simulator.slo_attainment s ~ttft_s:1e-9 ~tbt_s:1e-9);
  let mid = Simulator.slo_attainment s ~ttft_s:s.Simulator.p50_ttft_s ~tbt_s:1e9 in
  check_between "median slo ~ half" 0.35 0.65 mid;
  check_raises_invalid "bad objective" (fun () ->
      ignore (Simulator.slo_attainment s ~ttft_s:0. ~tbt_s:1.))

let t_throughput_ignores_idle_leadin () =
  (* Regression: throughput used to divide by the absolute clock, so a trace
     whose first request arrives late reported an arbitrarily diluted
     tokens/s. The same requests shifted 100 s into the future must report
     the same throughput. *)
  let base =
    [
      { Trace.id = 0; arrival_s = 0.; input_len = 256; output_len = 32 };
      { Trace.id = 1; arrival_s = 0.5; input_len = 128; output_len = 16 };
      { Trace.id = 2; arrival_s = 1.0; input_len = 512; output_len = 64 };
    ]
  in
  let shifted =
    List.map (fun r -> { r with Trace.arrival_s = r.Trace.arrival_s +. 100. }) base
  in
  let s0 = Simulator.run Presets.a100 Model.llama3_8b base in
  let s1 = Simulator.run Presets.a100 Model.llama3_8b shifted in
  Alcotest.(check bool) "positive throughput" true
    (s0.Simulator.throughput_tokens_per_s > 0.);
  check_close "shift-invariant throughput" s0.Simulator.throughput_tokens_per_s
    s1.Simulator.throughput_tokens_per_s;
  check_close "makespan still absolute" (s0.Simulator.makespan_s +. 100.)
    s1.Simulator.makespan_s;
  (* The throughput must reflect the serving span, not the absolute clock. *)
  Alcotest.(check bool) "not diluted by the lead-in" true
    (s1.Simulator.throughput_tokens_per_s
    > float_of_int s1.Simulator.generated_tokens /. s1.Simulator.makespan_s)

let t_empty_trace_rejected () =
  check_raises_invalid "empty" (fun () ->
      ignore (Simulator.run Presets.a100 Model.llama3_8b []))

let t_empty_outcomes_slo () =
  (* Regression: 0 requests used to report 0/0 = nan attainment. *)
  let empty =
    {
      Simulator.outcomes = [];
      makespan_s = 0.;
      generated_tokens = 0;
      throughput_tokens_per_s = 0.;
      mean_batch_occupancy = 0.;
      p50_ttft_s = 0.;
      p95_ttft_s = 0.;
      p50_tbt_s = 0.;
      p95_tbt_s = 0.;
      kv_limited_batch = 0;
    }
  in
  check_close "vacuously met" 1.
    (Simulator.slo_attainment empty ~ttft_s:0.5 ~tbt_s:0.05)

(* Random synthetic traces for the scheduler invariants. *)
let trace_arb =
  let gen =
    let open QCheck.Gen in
    let* seed = int_range 0 10_000 in
    let* rate_per_s = oneofl [ 0.5; 2.; 8.; 30. ] in
    let* duration_s = oneofl [ 2.; 5.; 10. ] in
    let* mean_input = int_range 16 512 in
    let* mean_output = int_range 8 64 in
    return
      ( Trace.synthetic ~seed ~rate_per_s ~duration_s ~mean_input ~mean_output
          (),
        (seed, rate_per_s, duration_s) )
  in
  QCheck.make
    ~print:(fun (tr, (seed, rate, dur)) ->
      Printf.sprintf "seed=%d rate=%g dur=%g (%d requests)" seed rate dur
        (List.length tr))
    gen

let t_scheduler_invariants =
  qcheck ~count:25 "scheduler invariants on random traces" trace_arb
    (fun (tr, _) ->
      tr = []
      ||
      let s = Simulator.run Presets.a100 Model.llama3_8b tr in
      let all_finish = List.length s.Simulator.outcomes = List.length tr in
      let tokens =
        s.Simulator.generated_tokens = Trace.total_output_tokens tr
      in
      let ttft_positive =
        List.for_all (fun o -> o.Simulator.ttft_s > 0.) s.Simulator.outcomes
      in
      let batch_bounded =
        s.Simulator.kv_limited_batch >= 1
        && s.Simulator.kv_limited_batch
           <= Simulator.default_config.Simulator.max_batch
      in
      let slo = Simulator.slo_attainment s ~ttft_s:1. ~tbt_s:0.05 in
      let slo_bounded = slo >= 0. && slo <= 1. in
      (* FCFS: in arrival order, first-token times never go backwards
         (prefill-priority admits the head of the queue first). *)
      let by_arrival =
        List.sort
          (fun a b ->
            compare
              (a.Simulator.request.Trace.arrival_s, a.Simulator.request.Trace.id)
              (b.Simulator.request.Trace.arrival_s, b.Simulator.request.Trace.id))
          s.Simulator.outcomes
      in
      let first_token o =
        o.Simulator.request.Trace.arrival_s +. o.Simulator.ttft_s
      in
      let rec fcfs = function
        | a :: (b :: _ as rest) ->
            first_token a <= first_token b +. 1e-9 && fcfs rest
        | _ -> true
      in
      all_finish && tokens && ttft_positive && batch_bounded && slo_bounded
      && fcfs by_arrival)

let t_jobs_deterministic () =
  (* The simulator's results must not depend on the domain-pool size. *)
  let tr =
    Trace.synthetic ~seed:11 ~rate_per_s:4. ~duration_s:8. ~mean_input:256
      ~mean_output:24 ()
  in
  let s1 =
    Parallel.with_jobs 1 (fun () -> Simulator.run Presets.a100 Model.llama3_8b tr)
  in
  let s4 =
    Parallel.with_jobs 4 (fun () -> Simulator.run Presets.a100 Model.llama3_8b tr)
  in
  Alcotest.(check bool) "bit-identical stats across pool sizes" true (s1 = s4)

let suite =
  [
    test "trace determinism" t_trace_determinism;
    test "trace shape" t_trace_shape;
    test "trace validation" t_trace_validation;
    test "run accounting" t_run_accounting;
    test "percentiles ordered" t_percentiles_ordered;
    test "kv capacity bound" t_kv_capacity;
    test "memory bandwidth helps serving" t_memory_bandwidth_helps_serving;
    test "overload queues requests" t_overload_queues;
    test "slo attainment" t_slo_attainment;
    test "throughput ignores idle lead-in" t_throughput_ignores_idle_leadin;
    test "empty trace rejected" t_empty_trace_rejected;
    test "empty outcomes meet slo vacuously" t_empty_outcomes_slo;
    t_scheduler_invariants;
    test "pool size does not change results" t_jobs_deterministic;
  ]
