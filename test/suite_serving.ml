open Core
open Helpers

let small_trace =
  Trace.synthetic ~rate_per_s:4. ~duration_s:10. ~mean_input:256
    ~mean_output:32 ()

let t_trace_determinism () =
  let a = Trace.synthetic ~seed:7 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  let b = Trace.synthetic ~seed:7 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  Alcotest.(check bool) "same trace" true (a = b);
  let c = Trace.synthetic ~seed:8 ~rate_per_s:2. ~duration_s:20. ~mean_input:100 ~mean_output:50 () in
  Alcotest.(check bool) "different seed differs" true (a <> c)

let t_trace_shape () =
  let rate = 5. and duration = 40. in
  let tr = Trace.synthetic ~rate_per_s:rate ~duration_s:duration ~mean_input:512 ~mean_output:128 () in
  let n = List.length tr in
  check_between "arrival count near rate x duration" 120. 280. (float_of_int n);
  List.iter
    (fun r ->
      if r.Trace.arrival_s < 0. || r.Trace.arrival_s > duration then
        Alcotest.fail "arrival outside window";
      if r.Trace.input_len < 8 || r.Trace.output_len < 8 then
        Alcotest.fail "length floor violated")
    tr;
  let sorted = List.sort (fun a b -> compare a.Trace.arrival_s b.Trace.arrival_s) tr in
  Alcotest.(check bool) "sorted by arrival" true (tr = sorted)

let t_trace_validation () =
  check_raises_invalid "rate" (fun () ->
      ignore (Trace.synthetic ~rate_per_s:0. ~duration_s:1. ~mean_input:1 ~mean_output:1 ()));
  check_raises_invalid "means" (fun () ->
      ignore (Trace.synthetic ~rate_per_s:1. ~duration_s:1. ~mean_input:0 ~mean_output:1 ()))

let t_trace_realized_mean () =
  (* Regression for the length-floor bias: the old [max 8] clamp on a
     plain geometric silently inflated realized means above the requested
     ones (a requested mean of 8 realized at ~11.6, +45% offered load).
     The shifted geometric must realize the requested mean... *)
  let tr =
    Trace.synthetic ~rate_per_s:200. ~duration_s:50. ~mean_input:12
      ~mean_output:64 ()
  in
  let n = float_of_int (List.length tr) in
  let mean f = List.fold_left (fun acc r -> acc +. float_of_int (f r)) 0. tr /. n in
  check_within "realized mean input" ~tolerance:0.05 12.
    (mean (fun r -> r.Trace.input_len));
  check_within "realized mean output" ~tolerance:0.05 64.
    (mean (fun r -> r.Trace.output_len));
  (* ...degenerating to the constant floor at the floor itself... *)
  let at_floor =
    Trace.synthetic ~rate_per_s:50. ~duration_s:10.
      ~mean_input:Trace.min_mean_len ~mean_output:Trace.min_mean_len ()
  in
  List.iter
    (fun r ->
      if r.Trace.input_len <> Trace.min_mean_len
         || r.Trace.output_len <> Trace.min_mean_len then
        Alcotest.failf "mean at the floor must be constant, got %d/%d"
          r.Trace.input_len r.Trace.output_len)
    at_floor;
  (* ...and rejecting means below the floor instead of rounding them up. *)
  check_raises_invalid "mean below floor" (fun () ->
      ignore
        (Trace.synthetic ~rate_per_s:1. ~duration_s:1.
           ~mean_input:(Trace.min_mean_len - 1)
           ~mean_output:Trace.min_mean_len ()))

let t_geometric_overflow () =
  (* Regression: with u within one ulp of 1, [log (1. -. u)] is -inf and
     [int_of_float] of the infinite quotient was undefined - lengths came
     back huge or negative. The clamped transform must stay bounded and
     positive over the whole closed interval, endpoints included. *)
  let mean = 128 in
  List.iter
    (fun u ->
      let len = Trace.geometric_of_u ~mean u in
      if len < 1 then
        Alcotest.failf "geometric_of_u %.17g: non-positive length %d" u len;
      if len > 30 * mean then
        Alcotest.failf "geometric_of_u %.17g: unbounded length %d" u len)
    [ 0.; 1e-16; 0.5; 0.999999; 1. -. 1e-16; 1. ];
  Alcotest.(check int) "mean <= 1 degenerates" 1 (Trace.geometric_of_u ~mean:1 0.9);
  (* The exponential transform must never produce an infinite gap (which
     silently truncated the trace) - not even at u = 0, a real return
     value of [Random.State.float]. *)
  List.iter
    (fun u ->
      let gap = Trace.exponential_of_u ~rate:2. u in
      if not (Float.is_finite gap) || gap <= 0. then
        Alcotest.failf "exponential_of_u %.17g: bad gap %g" u gap)
    [ 0.; 1e-16; 0.5; 1. -. 1e-16; 1. ]

let t_run_accounting () =
  let stats = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  Alcotest.(check int) "every request finishes"
    (List.length small_trace)
    (List.length stats.Simulator.outcomes);
  Alcotest.(check int) "nothing rejected" 0 (List.length stats.Simulator.rejected);
  Alcotest.(check int) "token accounting"
    (Trace.total_output_tokens small_trace)
    stats.Simulator.generated_tokens;
  Alcotest.(check int) "token conservation (scheduler-counted)"
    (Trace.total_output_tokens small_trace)
    stats.Simulator.produced_tokens;
  Alcotest.(check bool) "positive makespan" true (stats.Simulator.makespan_s > 0.);
  Alcotest.(check bool) "steps counted" true
    (stats.Simulator.prefill_batches > 0 && stats.Simulator.decode_steps > 0);
  List.iter
    (fun o ->
      if o.Simulator.ttft_s <= 0. then Alcotest.fail "non-positive ttft";
      if o.Simulator.finish_s > stats.Simulator.makespan_s +. 1e-9 then
        Alcotest.fail "finish beyond makespan";
      if
        o.Simulator.request.Trace.output_len > 1
        && o.Simulator.tbt_s <= 0.
      then Alcotest.fail "missing tbt")
    stats.Simulator.outcomes

let t_percentiles_ordered () =
  let s = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  Alcotest.(check bool) "ttft p50 <= p95" true (s.Simulator.p50_ttft_s <= s.Simulator.p95_ttft_s);
  Alcotest.(check bool) "tbt p50 <= p95" true (s.Simulator.p50_tbt_s <= s.Simulator.p95_tbt_s)

let t_kv_capacity () =
  let cap =
    Simulator.kv_capacity_batch Simulator.default_config Presets.a100
      Model.llama3_8b ~context:2048
  in
  Alcotest.(check bool) "positive, at most max batch" true
    (cap > 0 && cap <= Simulator.default_config.Simulator.max_batch);
  (* GPT-3 on one device does not even fit its weights. *)
  let none =
    Simulator.kv_capacity_batch
      { Simulator.default_config with Simulator.tp = 1 }
      Presets.a100 Model.gpt3_175b ~context:2048
  in
  Alcotest.(check int) "gpt-3 weights exceed one device" 0 none;
  check_raises_invalid "context" (fun () ->
      ignore
        (Simulator.kv_capacity_batch Simulator.default_config Presets.a100
           Model.llama3_8b ~context:0))

let t_infeasible_deployment () =
  (* Regression: weights alone exceeding HBM used to be silently patched
     over with [max 1 (kv_capacity_batch ...)], simulating a deployment
     that cannot exist. It must raise a clear error instead. *)
  let trace = [ { Trace.id = 0; arrival_s = 0.; input_len = 64; output_len = 8 } ] in
  match
    Simulator.run
      ~config:{ Simulator.default_config with Simulator.tp = 1 }
      Presets.a100 Model.gpt3_175b trace
  with
  | _ -> Alcotest.fail "expected Infeasible"
  | exception Simulator.Infeasible msg ->
      Alcotest.(check bool) "message names the model" true
        (String.length msg > 0
        && String.exists (fun _ -> true) msg
        &&
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        contains msg Model.gpt3_175b.Model.name)

(* A device with just enough HBM above the Llama-3-8B tp=1 weights that
   small requests fit but a huge one never can. *)
let tight_device ~free_gb =
  (* [Memory.make] takes decimal GB; leave exactly [free_gb] of KV room
     above the tp=1 weights. *)
  let weights_gb =
    Model.total_params Model.llama3_8b *. Model.llama3_8b.Model.bytes_per_param
    /. 1e9
  in
  Device.make ~name:"tight-hbm" ~core_count:108 ~lanes_per_core:4
    ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:40.
    ~memory:
      (Memory.make ~capacity_gb:(weights_gb +. free_gb) ~bandwidth_tb_s:2.)
    ~interconnect:(Interconnect.of_total_gb_s 600.)
    ()

let tight_config = { Simulator.default_config with Simulator.tp = 1 }

let t_never_fit_rejected () =
  (* free_gb = 2 leaves room for ~15k KV tokens at tp=1; the 20k-token
     request can never fit and must be rejected instead of pinning the
     FCFS queue (or silently overcommitting KV as the old scheduler did). *)
  let dev = tight_device ~free_gb:2. in
  let trace =
    [
      { Trace.id = 0; arrival_s = 0.; input_len = 256; output_len = 32 };
      { Trace.id = 1; arrival_s = 0.1; input_len = 20_000; output_len = 64 };
      { Trace.id = 2; arrival_s = 0.2; input_len = 512; output_len = 16 };
    ]
  in
  let s = Simulator.run ~config:tight_config dev Model.llama3_8b trace in
  Alcotest.(check int) "two complete" 2 (List.length s.Simulator.outcomes);
  Alcotest.(check (list int)) "the huge request is rejected" [ 1 ]
    (List.map (fun r -> r.Trace.id) s.Simulator.rejected);
  Alcotest.(check int) "tokens from completed requests only" (32 + 16)
    s.Simulator.generated_tokens;
  Alcotest.(check int) "conservation over completed" (32 + 16)
    s.Simulator.produced_tokens;
  Alcotest.(check bool) "kv never exceeds capacity" true
    (s.Simulator.peak_hbm_bytes <= s.Simulator.hbm_capacity_bytes)

let t_kv_admission_is_safe () =
  (* Heavy homogeneous load against a tight KV budget: concurrency must be
     clipped by per-request reservations, never by luck, and the live-KV
     high-water mark must stay under HBM at every step. *)
  let dev = tight_device ~free_gb:1. in
  let trace =
    Trace.synthetic ~rate_per_s:40. ~duration_s:5. ~mean_input:512
      ~mean_output:64 ()
  in
  let s = Simulator.run ~config:tight_config dev Model.llama3_8b trace in
  Alcotest.(check int) "everything eventually completes"
    (List.length trace)
    (List.length s.Simulator.outcomes);
  Alcotest.(check bool) "kv never exceeds capacity" true
    (s.Simulator.peak_hbm_bytes <= s.Simulator.hbm_capacity_bytes);
  Alcotest.(check bool) "occupancy within the mean-context bound" true
    (s.Simulator.mean_batch_occupancy
    <= float_of_int s.Simulator.kv_limited_batch +. 1e-9)

let t_engine_identity () =
  (* The compiled stepper must be a pure speedup: simulate_compiled is
     bit-identical to simulate, both engines bucket step lengths the same
     way, so whole-run stats compare [=] - every float, both policies. *)
  List.iter
    (fun policy ->
      let config engine =
        { Simulator.default_config with Simulator.policy; engine }
      in
      let legacy =
        Simulator.run ~config:(config Simulator.Legacy) Presets.a100
          Model.llama3_8b small_trace
      in
      let compiled =
        Simulator.run ~config:(config Simulator.Compiled) Presets.a100
          Model.llama3_8b small_trace
      in
      Alcotest.(check bool)
        (Simulator.policy_to_string policy ^ ": legacy = compiled")
        true (legacy = compiled))
    [ Simulator.Prefill_priority; Simulator.Decode_fair ]

let t_policies_schedule_differently () =
  (* Under contention the two policies must actually produce different
     schedules (decode-fair interleaves decode steps between admissions). *)
  let trace =
    Trace.synthetic ~rate_per_s:60. ~duration_s:10. ~mean_input:256
      ~mean_output:64 ()
  in
  let at policy =
    Simulator.run
      ~config:{ Simulator.default_config with Simulator.policy }
      Presets.a100 Model.llama3_8b trace
  in
  let pp = at Simulator.Prefill_priority and df = at Simulator.Decode_fair in
  Alcotest.(check bool) "schedules differ" true
    (pp.Simulator.makespan_s <> df.Simulator.makespan_s
    || pp.Simulator.prefill_batches <> df.Simulator.prefill_batches);
  Alcotest.(check int) "both conserve tokens"
    pp.Simulator.generated_tokens df.Simulator.generated_tokens

let t_prefill_counts_in_occupancy () =
  (* Regression: a prefill-only trace (every request finishes at its first
     token) used to report occupancy 0 because only decode steps fed the
     busy-time accumulators. *)
  let trace =
    List.init 8 (fun i ->
        { Trace.id = i; arrival_s = 0.05 *. float_of_int i; input_len = 256;
          output_len = 1 })
  in
  let s = Simulator.run Presets.a100 Model.llama3_8b trace in
  Alcotest.(check int) "no decode steps" 0 s.Simulator.decode_steps;
  Alcotest.(check bool) "prefill batches fill the occupancy stat" true
    (s.Simulator.mean_batch_occupancy >= 1.);
  Alcotest.(check bool) "occupancy within the admission cap" true
    (s.Simulator.mean_batch_occupancy
    <= float_of_int Simulator.default_config.Simulator.max_batch)

let t_memory_bandwidth_helps_serving () =
  let fast =
    { Presets.a100 with
      Device.memory = Memory.make ~capacity_gb:80. ~bandwidth_tb_s:3.2 }
  in
  let base = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  let faster = Simulator.run fast Model.llama3_8b small_trace in
  Alcotest.(check bool) "p50 tbt improves" true
    (faster.Simulator.p50_tbt_s < base.Simulator.p50_tbt_s)

let t_overload_queues () =
  (* A 10x request rate must raise p95 TTFT (queueing delay). *)
  let light = Trace.synthetic ~rate_per_s:1. ~duration_s:10. ~mean_input:256 ~mean_output:64 () in
  let heavy = Trace.synthetic ~rate_per_s:60. ~duration_s:10. ~mean_input:256 ~mean_output:64 () in
  let l = Simulator.run Presets.a100 Model.llama3_8b light in
  let h = Simulator.run Presets.a100 Model.llama3_8b heavy in
  Alcotest.(check bool) "heavier load, slower p95 ttft" true
    (h.Simulator.p95_ttft_s > l.Simulator.p95_ttft_s);
  Alcotest.(check bool) "heavier load, higher occupancy" true
    (h.Simulator.mean_batch_occupancy > l.Simulator.mean_batch_occupancy)

let t_slo_attainment () =
  let s = Simulator.run Presets.a100 Model.llama3_8b small_trace in
  check_close "infinite slo met" 1. (Simulator.slo_attainment s ~ttft_s:1e9 ~tbt_s:1e9);
  check_close "impossible slo" 0.
    (Simulator.slo_attainment s ~ttft_s:1e-9 ~tbt_s:1e-9);
  let mid = Simulator.slo_attainment s ~ttft_s:s.Simulator.p50_ttft_s ~tbt_s:1e9 in
  check_between "median slo ~ half" 0.35 0.65 mid;
  check_raises_invalid "bad objective" (fun () ->
      ignore (Simulator.slo_attainment s ~ttft_s:0. ~tbt_s:1.))

let t_throughput_ignores_idle_leadin () =
  (* Regression: throughput used to divide by the absolute clock, so a trace
     whose first request arrives late reported an arbitrarily diluted
     tokens/s. The same requests shifted 100 s into the future must report
     the same throughput. *)
  let base =
    [
      { Trace.id = 0; arrival_s = 0.; input_len = 256; output_len = 32 };
      { Trace.id = 1; arrival_s = 0.5; input_len = 128; output_len = 16 };
      { Trace.id = 2; arrival_s = 1.0; input_len = 512; output_len = 64 };
    ]
  in
  let shifted =
    List.map (fun r -> { r with Trace.arrival_s = r.Trace.arrival_s +. 100. }) base
  in
  let s0 = Simulator.run Presets.a100 Model.llama3_8b base in
  let s1 = Simulator.run Presets.a100 Model.llama3_8b shifted in
  Alcotest.(check bool) "positive throughput" true
    (s0.Simulator.throughput_tokens_per_s > 0.);
  check_close "shift-invariant throughput" s0.Simulator.throughput_tokens_per_s
    s1.Simulator.throughput_tokens_per_s;
  check_close "makespan still absolute" (s0.Simulator.makespan_s +. 100.)
    s1.Simulator.makespan_s;
  (* The throughput must reflect the serving span, not the absolute clock. *)
  Alcotest.(check bool) "not diluted by the lead-in" true
    (s1.Simulator.throughput_tokens_per_s
    > float_of_int s1.Simulator.generated_tokens /. s1.Simulator.makespan_s)

let t_empty_trace_rejected () =
  check_raises_invalid "empty" (fun () ->
      ignore (Simulator.run Presets.a100 Model.llama3_8b []))

let t_empty_outcomes_slo () =
  (* Regression: 0 requests used to report 0/0 = nan attainment. *)
  let empty =
    {
      Simulator.outcomes = [];
      rejected = [];
      makespan_s = 0.;
      generated_tokens = 0;
      produced_tokens = 0;
      throughput_tokens_per_s = 0.;
      mean_batch_occupancy = 0.;
      busy_s = 0.;
      p50_ttft_s = 0.;
      p95_ttft_s = 0.;
      p50_tbt_s = 0.;
      p95_tbt_s = 0.;
      kv_limited_batch = 0;
      prefill_batches = 0;
      decode_steps = 0;
      peak_hbm_bytes = 0.;
      hbm_capacity_bytes = 0.;
    }
  in
  check_close "vacuously met" 1.
    (Simulator.slo_attainment empty ~ttft_s:0.5 ~tbt_s:0.05)

(* Random synthetic traces for the scheduler invariants. *)
let trace_arb =
  let gen =
    let open QCheck.Gen in
    let* seed = int_range 0 10_000 in
    let* rate_per_s = oneofl [ 0.5; 2.; 8.; 30. ] in
    let* duration_s = oneofl [ 2.; 5.; 10. ] in
    let* mean_input = int_range 16 512 in
    let* mean_output = int_range 8 64 in
    return
      ( Trace.synthetic ~seed ~rate_per_s ~duration_s ~mean_input ~mean_output
          (),
        (seed, rate_per_s, duration_s) )
  in
  QCheck.make
    ~print:(fun (tr, (seed, rate, dur)) ->
      Printf.sprintf "seed=%d rate=%g dur=%g (%d requests)" seed rate dur
        (List.length tr))
    gen

let scheduler_invariants policy (tr, _) =
  tr = []
  ||
  let s =
    Simulator.run
      ~config:{ Simulator.default_config with Simulator.policy }
      Presets.a100 Model.llama3_8b tr
  in
  let all_finish =
    List.length s.Simulator.outcomes + List.length s.Simulator.rejected
    = List.length tr
  in
  let tokens = s.Simulator.generated_tokens = Trace.total_output_tokens tr in
  let conserved = s.Simulator.produced_tokens = s.Simulator.generated_tokens in
  let ttft_positive =
    List.for_all (fun o -> o.Simulator.ttft_s > 0.) s.Simulator.outcomes
  in
  let batch_bounded =
    s.Simulator.kv_limited_batch >= 1
    && s.Simulator.kv_limited_batch
       <= Simulator.default_config.Simulator.max_batch
  in
  (* The tentpole KV invariant: live KV (plus weights) never exceeds the
     device's HBM at any scheduler step. *)
  let kv_safe =
    s.Simulator.peak_hbm_bytes <= s.Simulator.hbm_capacity_bytes
  in
  let occupancy_bounded =
    s.Simulator.mean_batch_occupancy
    <= float_of_int s.Simulator.kv_limited_batch +. 1e-9
  in
  let slo = Simulator.slo_attainment s ~ttft_s:1. ~tbt_s:0.05 in
  let slo_bounded = slo >= 0. && slo <= 1. in
  (* FCFS: in arrival order, first-token times never go backwards
     (admission never bypasses the queue head under either policy). *)
  let by_arrival =
    List.sort
      (fun a b ->
        compare
          (a.Simulator.request.Trace.arrival_s, a.Simulator.request.Trace.id)
          (b.Simulator.request.Trace.arrival_s, b.Simulator.request.Trace.id))
      s.Simulator.outcomes
  in
  let first_token o =
    o.Simulator.request.Trace.arrival_s +. o.Simulator.ttft_s
  in
  let rec fcfs = function
    | a :: (b :: _ as rest) ->
        first_token a <= first_token b +. 1e-9 && fcfs rest
    | _ -> true
  in
  all_finish && tokens && conserved && ttft_positive && batch_bounded
  && kv_safe && occupancy_bounded && slo_bounded && fcfs by_arrival

let t_scheduler_invariants =
  qcheck ~count:25 "scheduler invariants on random traces (prefill-priority)"
    trace_arb
    (scheduler_invariants Simulator.Prefill_priority)

let t_scheduler_invariants_decode_fair =
  qcheck ~count:25 "scheduler invariants on random traces (decode-fair)"
    trace_arb
    (scheduler_invariants Simulator.Decode_fair)

let t_jobs_deterministic () =
  (* The simulator's results must not depend on the domain-pool size. *)
  let tr =
    Trace.synthetic ~seed:11 ~rate_per_s:4. ~duration_s:8. ~mean_input:256
      ~mean_output:24 ()
  in
  let s1 =
    Parallel.with_jobs 1 (fun () -> Simulator.run Presets.a100 Model.llama3_8b tr)
  in
  let s4 =
    Parallel.with_jobs 4 (fun () -> Simulator.run Presets.a100 Model.llama3_8b tr)
  in
  Alcotest.(check bool) "bit-identical stats across pool sizes" true (s1 = s4)

(* --- pull-based trace streams --- *)

let t_stream_equals_synthetic () =
  (* The load-bearing identity: [synthetic] is defined as materializing a
     constant-shape stream, so recorded experiment traces are unchanged.
     Check it from the public API across several parameter points. *)
  List.iter
    (fun (seed, rate, dur, mi, mo) ->
      let s =
        Trace.stream ~seed ~duration_s:dur ~rate_per_s:rate ~mean_input:mi
          ~mean_output:mo ()
      in
      let a = Trace.materialize s in
      let b =
        Trace.synthetic ~seed ~rate_per_s:rate ~duration_s:dur ~mean_input:mi
          ~mean_output:mo ()
      in
      if a <> b then
        Alcotest.failf "stream <> synthetic at seed %d rate %g" seed rate)
    [ (42, 4., 10., 256, 32); (7, 2., 20., 100, 50); (11, 60., 3., 8, 8) ]

let t_stream_bounds () =
  let s =
    Trace.stream ~limit:25 ~rate_per_s:5. ~mean_input:64 ~mean_output:16 ()
  in
  let reqs = Trace.materialize s in
  Alcotest.(check int) "limit bounds the stream" 25 (List.length reqs);
  List.iteri
    (fun i (r : Trace.request) ->
      Alcotest.(check int) "consecutive ids" i r.Trace.id)
    reqs;
  Alcotest.(check bool) "exhausted stays exhausted" true
    (Trace.next s = None && Trace.next s = None);
  (* duration + limit: whichever bound bites first. *)
  let tiny =
    Trace.materialize
      (Trace.stream ~limit:1000 ~duration_s:0.5 ~rate_per_s:4. ~mean_input:64
         ~mean_output:16 ())
  in
  List.iter
    (fun (r : Trace.request) ->
      if r.Trace.arrival_s > 0.5 then Alcotest.failf "arrival past duration")
    tiny;
  (* of_list round-trips. *)
  let rt = Trace.materialize (Trace.of_list reqs) in
  Alcotest.(check bool) "of_list round-trip" true (rt = reqs)

let t_stream_shapes () =
  let count shape =
    List.length
      (Trace.materialize
         (Trace.stream ~seed:3 ~shape ~duration_s:400. ~rate_per_s:2.
            ~mean_input:64 ~mean_output:16 ()))
  in
  let flat = count Trace.Constant in
  (* A trough-0.25 diurnal averages ~62.5% of the flat rate over whole
     periods; thinning is exact in expectation. *)
  let diurnal =
    count (Trace.Diurnal { period_s = 100.; trough = 0.25 })
  in
  check_between "diurnal thins toward the mean multiplier"
    (0.45 *. float_of_int flat)
    (0.8 *. float_of_int flat)
    (float_of_int diurnal);
  (* Bursts of 3x for a tenth of each window: mean multiplier 1.2. *)
  let bursty =
    count (Trace.Bursts { every_s = 50.; width_s = 5.; factor = 3. })
  in
  check_between "bursts add load" (1.0 *. float_of_int flat)
    (1.45 *. float_of_int flat)
    (float_of_int bursty);
  (* Composition multiplies pointwise; arrivals stay ordered. *)
  let composed =
    Trace.materialize
      (Trace.stream ~seed:3
         ~shape:
           (Trace.Compose
              ( Trace.Diurnal { period_s = 100.; trough = 0.25 },
                Trace.Bursts { every_s = 50.; width_s = 5.; factor = 3. } ))
         ~duration_s:400. ~rate_per_s:2. ~mean_input:64 ~mean_output:16 ())
  in
  let rec ordered = function
    | (a : Trace.request) :: (b :: _ as rest) ->
        a.Trace.arrival_s < b.Trace.arrival_s && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "composed arrivals strictly increase" true
    (ordered composed);
  (* The multiplier itself: diurnal hits its trough at t=0 and 1 at
     mid-period; bursts switch at the window edge. *)
  let d = Trace.Diurnal { period_s = 100.; trough = 0.25 } in
  check_close "diurnal trough" 0.25 (Trace.shape_multiplier d 0.);
  check_close "diurnal peak" 1. (Trace.shape_multiplier d 50.);
  let b = Trace.Bursts { every_s = 50.; width_s = 5.; factor = 3. } in
  check_close "inside burst" 3. (Trace.shape_multiplier b 51.);
  check_close "outside burst" 1. (Trace.shape_multiplier b 10.);
  check_close "compose multiplies" 0.75
    (Trace.shape_multiplier (Trace.Compose (d, b)) 0.)

let t_stream_tenants () =
  let tenants =
    [
      { Trace.share = 3.; mean_input = 2000; mean_output = 16 };
      { Trace.share = 1.; mean_input = 16; mean_output = 500 };
    ]
  in
  let reqs =
    Trace.materialize
      (Trace.stream ~seed:5 ~tenants ~limit:4000 ~rate_per_s:10.
         ~mean_input:64 ~mean_output:64 ())
  in
  (* The tenants' per-request lengths overlap (geometric tails), so test
     the mix through the realized overall means: 3/4 prompt-heavy + 1/4
     decode-heavy traffic pins both to known mixtures. *)
  let mean f =
    List.fold_left (fun a r -> a +. float_of_int (f r)) 0. reqs
    /. float_of_int (List.length reqs)
  in
  check_within "mixed input mean" ~tolerance:0.1
    ((0.75 *. 2000.) +. (0.25 *. 16.))
    (mean (fun (r : Trace.request) -> r.Trace.input_len));
  check_within "mixed output mean" ~tolerance:0.1
    ((0.75 *. 16.) +. (0.25 *. 500.))
    (mean (fun (r : Trace.request) -> r.Trace.output_len));
  (* Both regimes are actually present. *)
  Alcotest.(check bool) "prompt-heavy present" true
    (List.exists (fun (r : Trace.request) -> r.Trace.input_len > 1500) reqs);
  Alcotest.(check bool) "decode-heavy present" true
    (List.exists (fun (r : Trace.request) -> r.Trace.output_len > 400) reqs)

let t_stream_validation () =
  let ok ?shape ?tenants ?limit ?duration_s () =
    ignore
      (Trace.stream ?shape ?tenants ?limit ?duration_s ~rate_per_s:1.
         ~mean_input:64 ~mean_output:16 ())
  in
  check_raises_invalid "unbounded stream" (fun () -> ok ());
  check_raises_invalid "non-positive limit" (fun () -> ok ~limit:0 ());
  check_raises_invalid "non-positive duration" (fun () ->
      ok ~duration_s:0. ());
  check_raises_invalid "bad diurnal trough" (fun () ->
      ok ~duration_s:1. ~shape:(Trace.Diurnal { period_s = 10.; trough = 2. }) ());
  check_raises_invalid "burst width beyond window" (fun () ->
      ok ~duration_s:1.
        ~shape:(Trace.Bursts { every_s = 1.; width_s = 2.; factor = 2. })
        ());
  check_raises_invalid "non-positive burst factor" (fun () ->
      ok ~duration_s:1.
        ~shape:(Trace.Bursts { every_s = 1.; width_s = 0.5; factor = 0. })
        ());
  check_raises_invalid "bad tenant share" (fun () ->
      ok ~duration_s:1.
        ~tenants:[ { Trace.share = 0.; mean_input = 64; mean_output = 16 } ]
        ());
  check_raises_invalid "tenant mean below floor" (fun () ->
      ok ~duration_s:1.
        ~tenants:[ { Trace.share = 1.; mean_input = 4; mean_output = 16 } ]
        ())

let prop_stream_prefix_stable =
  qcheck "limit-n stream is a prefix of limit-m (n <= m)"
    QCheck.(pair (int_range 1 50) (int_range 0 50))
    (fun (n, extra) ->
      let m = n + extra in
      let mk limit =
        Trace.materialize
          (Trace.stream ~seed:9 ~limit ~rate_per_s:8. ~mean_input:32
             ~mean_output:16 ())
      in
      let a = mk n and b = mk m in
      List.length a = n
      && List.length b = m
      && a = List.filteri (fun i _ -> i < n) b)

let suite =
  [
    test "trace determinism" t_trace_determinism;
    test "trace shape" t_trace_shape;
    test "trace validation" t_trace_validation;
    test "trace realizes requested means" t_trace_realized_mean;
    test "trace generator edge cases stay bounded" t_geometric_overflow;
    test "run accounting" t_run_accounting;
    test "percentiles ordered" t_percentiles_ordered;
    test "kv capacity bound" t_kv_capacity;
    test "infeasible deployment raises" t_infeasible_deployment;
    test "never-fitting requests are rejected" t_never_fit_rejected;
    test "kv admission is safe under pressure" t_kv_admission_is_safe;
    test "compiled engine = legacy engine, both policies" t_engine_identity;
    test "policies schedule differently under load" t_policies_schedule_differently;
    test "prefill batches count in occupancy" t_prefill_counts_in_occupancy;
    test "memory bandwidth helps serving" t_memory_bandwidth_helps_serving;
    test "overload queues requests" t_overload_queues;
    test "slo attainment" t_slo_attainment;
    test "throughput ignores idle lead-in" t_throughput_ignores_idle_leadin;
    test "empty trace rejected" t_empty_trace_rejected;
    test "empty outcomes meet slo vacuously" t_empty_outcomes_slo;
    t_scheduler_invariants;
    t_scheduler_invariants_decode_fair;
    test "pool size does not change results" t_jobs_deterministic;
    test "stream materializes to synthetic" t_stream_equals_synthetic;
    test "stream bounds and exhaustion" t_stream_bounds;
    test "stream shapes modulate load" t_stream_shapes;
    test "stream tenant mix" t_stream_tenants;
    test "stream validation" t_stream_validation;
    prop_stream_prefix_stable;
  ]
