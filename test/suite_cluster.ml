open Core
open Helpers

let a100 = Presets.a100
let plan tp pp = { Cluster.tp; pp }

let t_memory_check () =
  let m = Cluster.memory_check a100 Model.gpt3_175b (plan 4 8) in
  (* 350 GB of weights over 32 devices = ~10.9 GB each. *)
  check_within "weights/device" ~tolerance:0.02 10.9e9
    m.Cluster.weight_bytes_per_device;
  Alcotest.(check bool) "fits" true m.Cluster.fits;
  let tight = Cluster.memory_check a100 Model.gpt3_175b (plan 4 1) in
  (* 87.5 GB of weights alone exceed the 80 GB device. *)
  Alcotest.(check bool) "tp4 pp1 does not fit" false tight.Cluster.fits

let t_plan_validation () =
  check_raises_invalid "tp heads" (fun () ->
      ignore (Cluster.memory_check a100 Model.gpt3_175b (plan 7 1)));
  check_raises_invalid "pp layers" (fun () ->
      ignore (Cluster.memory_check a100 Model.gpt3_175b (plan 4 5)));
  check_raises_invalid "pp > batch" (fun () ->
      ignore
        (Cluster.memory_check
           ~request:(Request.make ~batch:2 ~input_len:128 ~output_len:8)
           a100 Model.gpt3_175b (plan 4 4)))

let t_decode_latency_invariant_in_pp () =
  (* A token passes every layer regardless of how they are split. *)
  let r1 = Cluster.simulate a100 Model.llama3_8b (plan 4 1) in
  let r4 = Cluster.simulate a100 Model.llama3_8b (plan 4 4) in
  check_close "token latency unchanged" r1.Cluster.token_latency_s
    r4.Cluster.token_latency_s;
  Alcotest.(check bool) "throughput scales with pp" true
    (r4.Cluster.throughput_tokens_per_s
    > 3. *. r1.Cluster.throughput_tokens_per_s)

let t_ttft_bubble () =
  (* TTFT follows the microbatched-fill formula: (2 pp - 1) stage-steps,
     each a pp-th of the layers over a pp-th of the batch. *)
  let pp = 4 in
  let r = Cluster.simulate a100 Model.llama3_8b (plan 4 pp) in
  let micro_request = Request.make ~batch:8 ~input_len:2048 ~output_len:1024 in
  let micro = Engine.simulate ~tp:4 ~request:micro_request a100 Model.llama3_8b in
  let stage = micro.Engine.ttft_s *. float_of_int (32 / pp) in
  check_close "fill formula" (float_of_int ((2 * pp) - 1) *. stage) r.Cluster.ttft_s;
  (* The fill bubble costs (pp - 1) extra stage-steps over a perfectly
     overlapped pipeline. *)
  Alcotest.(check bool) "bubble above ideal" true
    (r.Cluster.ttft_s > float_of_int pp *. stage)

let t_tp1_pp1_matches_engine () =
  let r = Cluster.simulate a100 Model.llama3_8b (plan 1 1) in
  let e = Engine.simulate ~tp:1 a100 Model.llama3_8b in
  check_close "ttft" (Engine.model_ttft_s e) r.Cluster.ttft_s;
  check_close "token latency" (Engine.model_tbt_s e) r.Cluster.token_latency_s

let t_choose_plan () =
  (match Cluster.choose_plan ~max_devices:64 a100 Model.gpt3_175b with
  | Some r ->
      Alcotest.(check bool) "fits" true r.Cluster.memory.Cluster.fits;
      Alcotest.(check bool) "within budget" true (Cluster.devices r.Cluster.plan <= 64);
      (* GPT-3 needs more than one A100-group: at least 8 devices. *)
      Alcotest.(check bool) "needs several devices" true
        (Cluster.devices r.Cluster.plan >= 8)
  | None -> Alcotest.fail "a 64-device budget fits GPT-3");
  (* A small model picks the single device. *)
  (match Cluster.choose_plan ~max_devices:64 a100 Model.llama3_8b with
  | Some r -> Alcotest.(check int) "one device suffices" 1 (Cluster.devices r.Cluster.plan)
  | None -> Alcotest.fail "llama fits");
  (* An impossible budget yields None. *)
  let tiny =
    { a100 with Device.memory = Memory.make ~capacity_gb:8. ~bandwidth_tb_s:2. }
  in
  Alcotest.(check bool) "nothing fits" true
    (Cluster.choose_plan ~max_devices:2 tiny Model.gpt3_175b = None)

let prop_throughput_positive =
  qcheck ~count:30 "cluster metrics positive" device_arb (fun d ->
      let r = Cluster.simulate d Model.llama3_8b (plan 4 4) in
      r.Cluster.ttft_s > 0. && r.Cluster.token_latency_s > 0.
      && r.Cluster.throughput_tokens_per_s > 0.)

let suite =
  [
    test "memory check" t_memory_check;
    test "plan validation" t_plan_validation;
    test "decode latency invariant in pp" t_decode_latency_invariant_in_pp;
    test "ttft pipeline fill" t_ttft_bubble;
    test "tp1 pp1 matches the engine" t_tp1_pp1_matches_engine;
    test "choose_plan" t_choose_plan;
    prop_throughput_positive;
  ]
