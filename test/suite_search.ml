open Core
open Helpers

let sweep = Space.oct2022
let model = Model.llama3_8b
let feasible d = Design.compliant_2022 d && Design.manufacturable d
let objective d = d.Design.tbt_s

let center =
  { Space.systolic_dim = 16; lanes = 2; l1 = 256.; l2 = 48.; memory_bw = 2.4; device_bw = 600. }

let t_neighbors () =
  let ns = Search.neighbors sweep center in
  (* Interior point on 5 swept dimensions (device_bw has one value):
     dims 16 has one neighbor (32), lanes 2 has two, l1 256 two, l2 48 two,
     membw 2.4 two, devbw none = 9. *)
  Alcotest.(check int) "neighbor count" 9 (List.length ns);
  Alcotest.(check bool) "one-step moves" true
    (List.for_all
       (fun (n : Space.params) ->
         let diffs =
           List.length
             (List.filter Fun.id
                [
                  n.Space.systolic_dim <> center.Space.systolic_dim;
                  n.Space.lanes <> center.Space.lanes;
                  n.Space.l1 <> center.Space.l1;
                  n.Space.l2 <> center.Space.l2;
                  n.Space.memory_bw <> center.Space.memory_bw;
                  n.Space.device_bw <> center.Space.device_bw;
                ])
         in
         diffs = 1)
       ns)

let t_neighbors_at_edge () =
  let corner =
    { Space.systolic_dim = 16; lanes = 1; l1 = 192.; l2 = 32.; memory_bw = 2.; device_bw = 600. }
  in
  let ns = Search.neighbors sweep corner in
  (* Every dimension at its low end: one neighbor each for the five
     multi-valued dimensions. *)
  Alcotest.(check int) "edge neighbors" 5 (List.length ns)

let t_local_search_improves () =
  match
    Search.local_search ~sweep ~tpp_target:4800. ~model ~objective ~feasible
      center
  with
  | None -> Alcotest.fail "center is feasible"
  | Some o ->
      Alcotest.(check bool) "made progress" true (o.Search.steps > 0);
      Alcotest.(check bool) "local optimum" true
        (List.for_all
           (fun p ->
             let d = Design.evaluate ~model p (Space.build ~tpp_target:4800. p) in
             (not (feasible d)) || objective d >= objective o.Search.best)
           (Search.neighbors sweep o.Search.best.Design.params))

let t_optimize_matches_sweep () =
  match
    Search.optimize ~sweep ~tpp_target:4800. ~model ~objective ~feasible ()
  with
  | None -> Alcotest.fail "optimize found nothing"
  | Some o ->
      let designs = Design.evaluate_sweep ~model ~tpp_target:4800. sweep in
      let global =
        Optimum.best_exn ~filters:[ feasible ] Optimum.Tbt designs
      in
      (* Hill climbing on this near-separable objective should land within
         a few percent of the global optimum with far fewer evaluations. *)
      check_within "near-global" ~tolerance:0.05 global.Design.tbt_s
        (objective o.Search.best);
      Alcotest.(check bool) "cheaper than the sweep" true
        (o.Search.evaluated < List.length designs)

let t_infeasible_everywhere () =
  let impossible _ = false in
  Alcotest.(check bool) "no outcome" true
    (Search.local_search ~sweep ~tpp_target:4800. ~model ~objective
       ~feasible:impossible center
    = None)

let suite =
  [
    test "lattice neighbors" t_neighbors;
    test "neighbors at the edge" t_neighbors_at_edge;
    test "local search improves to a local optimum" t_local_search_improves;
    test "multi-start matches the sweep optimum" t_optimize_matches_sweep;
    test "infeasible everywhere" t_infeasible_everywhere;
  ]
