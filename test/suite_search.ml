open Core
open Helpers

let sweep = Space.oct2022
let model = Model.llama3_8b
let feasible d = Design.compliant_2022 d && Design.manufacturable d
let objective d = d.Design.tbt_s

let center =
  { Space.systolic_dim = 16; lanes = 2; l1 = 256.; l2 = 48.; memory_bw = 2.4;
    device_bw = 600.; clock_mhz = Space.default_clock_mhz }

let t_neighbors () =
  let ns = Search.neighbors sweep center in
  (* Interior point on 5 swept dimensions (device_bw has one value):
     dims 16 has one neighbor (32), lanes 2 has two, l1 256 two, l2 48 two,
     membw 2.4 two, devbw none = 9. *)
  Alcotest.(check int) "neighbor count" 9 (List.length ns);
  Alcotest.(check bool) "one-step moves" true
    (List.for_all
       (fun (n : Space.params) ->
         let diffs =
           List.length
             (List.filter Fun.id
                [
                  n.Space.systolic_dim <> center.Space.systolic_dim;
                  n.Space.lanes <> center.Space.lanes;
                  n.Space.l1 <> center.Space.l1;
                  n.Space.l2 <> center.Space.l2;
                  n.Space.memory_bw <> center.Space.memory_bw;
                  n.Space.device_bw <> center.Space.device_bw;
                ])
         in
         diffs = 1)
       ns)

let t_neighbors_at_edge () =
  let corner =
    { Space.systolic_dim = 16; lanes = 1; l1 = 192.; l2 = 32.; memory_bw = 2.;
      device_bw = 600.; clock_mhz = Space.default_clock_mhz }
  in
  let ns = Search.neighbors sweep corner in
  (* Every dimension at its low end: one neighbor each for the five
     multi-valued dimensions. *)
  Alcotest.(check int) "edge neighbors" 5 (List.length ns)

let t_local_search_improves () =
  match
    Search.local_search ~sweep ~tpp_target:4800. ~model ~objective ~feasible
      center
  with
  | None -> Alcotest.fail "center is feasible"
  | Some o ->
      Alcotest.(check bool) "made progress" true (o.Search.steps > 0);
      Alcotest.(check bool) "local optimum" true
        (List.for_all
           (fun p ->
             let d = Design.evaluate ~model p (Space.build ~tpp_target:4800. p) in
             (not (feasible d)) || objective d >= objective o.Search.best)
           (Search.neighbors sweep o.Search.best.Design.params))

let t_optimize_matches_sweep () =
  match
    Search.optimize ~sweep ~tpp_target:4800. ~model ~objective ~feasible ()
  with
  | None -> Alcotest.fail "optimize found nothing"
  | Some o ->
      let designs = Design.evaluate_sweep ~model ~tpp_target:4800. sweep in
      let global =
        Optimum.best_exn ~filters:[ feasible ] Optimum.Tbt designs
      in
      (* Hill climbing on this near-separable objective should land within
         a few percent of the global optimum with far fewer evaluations. *)
      check_within "near-global" ~tolerance:0.05 global.Design.tbt_s
        (objective o.Search.best);
      Alcotest.(check bool) "cheaper than the sweep" true
        (o.Search.evaluated < List.length designs)

(* Adjacent swept values (the hill-climbing move set). *)

let t_adjacent () =
  let vs = [ 3; 1; 2; 2; 4 ] in
  (* Unsorted input with a duplicate: [adjacent] sorts and dedups first. *)
  Alcotest.(check (list int)) "interior" [ 1; 3 ] (Search.adjacent vs 2);
  Alcotest.(check (list int)) "low end" [ 2 ] (Search.adjacent vs 1);
  Alcotest.(check (list int)) "high end" [ 3 ] (Search.adjacent vs 4);
  Alcotest.(check (list int)) "absent current" [] (Search.adjacent vs 99);
  Alcotest.(check (list int)) "singleton" [] (Search.adjacent [ 7 ] 7);
  Alcotest.(check (list int)) "empty" [] (Search.adjacent [] 7)

let t_adjacent_float () =
  let cmp = Float.compare in
  (* Values equal under the comparator must dedup: 0. and -0. are one
     swept value, so 1. sees a single low neighbor. *)
  Alcotest.(check (list (float 0.))) "equal-after-sort dedup" [ 0.; 2. ]
    (Search.adjacent ~cmp [ 2.; 0.; -0.; 1. ] 1.);
  Alcotest.(check (list (float 0.))) "-0. finds 0." [ 1. ]
    (Search.adjacent ~cmp [ 0.; 1.; 2. ] (-0.));
  (* Under [Float.compare], nan is a findable (smallest) value; under the
     polymorphic [=] it could never match itself. *)
  Alcotest.(check (list (float 0.))) "nan findable" [ 1. ]
    (Search.adjacent ~cmp [ 1.; Float.nan; 4. ] Float.nan);
  Alcotest.(check (list int)) "default compare unchanged" [ 1; 3 ]
    (Search.adjacent [ 3; 1; 2 ] 2)

(* The parallel pool. *)

let pool_args =
  QCheck.(
    triple (int_range 1 8) (int_range 1 50)
      (list_of_size Gen.(int_range 0 120) small_int))

let prop_parallel_map =
  qcheck "Parallel.map == List.map for any jobs/chunk" pool_args
    (fun (jobs, chunk, xs) ->
      let f x = (x * x) + 1 in
      Parallel.map ~jobs ~chunk f xs = List.map f xs)

let prop_parallel_filter_map =
  qcheck "Parallel.filter_map == List.filter_map" pool_args
    (fun (jobs, chunk, xs) ->
      let f x = if x mod 3 = 0 then None else Some (x - 7) in
      Parallel.filter_map ~jobs ~chunk f xs = List.filter_map f xs)

let t_parallel_arrays () =
  let xs = Array.init 97 Fun.id in
  let keep_even x = if x mod 2 = 0 then Some (-x) else None in
  Alcotest.(check bool) "map_array" true
    (Parallel.map_array ~jobs:4 ~chunk:5 string_of_int xs
    = Array.map string_of_int xs);
  Alcotest.(check bool) "filter_map_array" true
    (Parallel.filter_map_array ~jobs:4 ~chunk:5 keep_even xs
    = Array.of_list (List.filter_map keep_even (Array.to_list xs)))

let prop_map_reduce =
  qcheck "Parallel.map_reduce == sequential fold" pool_args
    (fun (jobs, chunk, xs) ->
      let f x = (x * 2) + 1 in
      Parallel.map_reduce ~jobs ~chunk ~map:f ~combine:( + ) 0 xs
      = List.fold_left (fun acc x -> acc + f x) 0 xs)

let t_map_reduce_order () =
  (* Concatenation is associative but not commutative: the fold must
     combine per-chunk partials in chunk order, whatever domain finished
     first. Also exercises the auto-tuned chunk (no ~chunk). *)
  let xs = Array.init 53 string_of_int in
  let expected = String.concat "" (Array.to_list xs) in
  Alcotest.(check string) "explicit chunk" expected
    (Parallel.map_reduce_array ~jobs:4 ~chunk:5 ~map:Fun.id ~combine:( ^ ) ""
       xs);
  Alcotest.(check string) "auto-tuned chunk" expected
    (Parallel.map_reduce_array ~jobs:4 ~map:Fun.id ~combine:( ^ ) "" xs);
  Alcotest.(check string) "empty input" "seed"
    (Parallel.map_reduce_array ~jobs:4 ~map:Fun.id ~combine:( ^ ) "seed" [||])

let t_parallel_exception () =
  match
    Parallel.map ~jobs:4 ~chunk:1
      (fun x -> if x = 5 then invalid_arg "boom" else x)
      [ 1; 2; 3; 4; 5; 6 ]
  with
  | exception Invalid_argument msg ->
      Alcotest.(check string) "original exception" "boom" msg
  | _ -> Alcotest.fail "expected Invalid_argument"

let t_parallel_jobs_validation () =
  check_raises_invalid "jobs 0" (fun () ->
      ignore (Parallel.map ~jobs:0 Fun.id [ 1 ]));
  check_raises_invalid "with_jobs 0" (fun () ->
      Parallel.with_jobs 0 (fun () -> ()))

(* The evaluation engine: parallel must be bit-identical to sequential,
   and the cache must answer repeats without re-evaluating. *)

let t_sweep_parallel_identical () =
  let run jobs =
    Parallel.with_jobs jobs (fun () ->
        Eval.sweep ~cache:false ~model ~tpp_target:2400. Space.oct2023)
  in
  let seq = run 1 and par = run 4 in
  let ground = Design.evaluate_sweep ~model ~tpp_target:2400. Space.oct2023 in
  Alcotest.(check bool) "4 jobs == 1 job (bit-identical)" true (par = seq);
  Alcotest.(check bool) "engine == Design.evaluate_sweep" true (seq = ground)

let t_eval_cache () =
  Eval.clear ();
  let s0 = Eval.stats () in
  let a = Eval.sweep ~model ~tpp_target:4800. sweep in
  let s1 = Eval.stats () in
  let b = Eval.sweep ~model ~tpp_target:4800. sweep in
  let s2 = Eval.stats () in
  Alcotest.(check bool) "repeat is identical" true (a = b);
  Alcotest.(check int) "cold pass evaluates every point" (Space.size sweep)
    (s1.Eval.evaluations - s0.Eval.evaluations);
  Alcotest.(check int) "warm pass all hits" (Space.size sweep)
    (s2.Eval.hits - s1.Eval.hits);
  Alcotest.(check int) "warm pass evaluates nothing" 0
    (s2.Eval.evaluations - s1.Eval.evaluations);
  (* A different evaluation context must not collide with cached entries. *)
  let c = Eval.sweep ~model ~tpp_target:2400. sweep in
  Alcotest.(check bool) "different target, different designs" true (a <> c)

let t_optimize_dedups_starts () =
  (* On a near-singleton sweep the hi and mid corners coincide; the
     duplicate start must not rerun the climb and recount its evaluations
     (the historical bug: each duplicate restart re-counted the shared
     start point in [outcome.evaluated]). *)
  let sweep2 =
    { Space.systolic_dims = [ 16 ]; lanes_per_core = [ 2 ];
      l1_kb = [ 192.; 256. ]; l2_mb = [ 32.; 48. ]; memory_bw_tb_s = [ 2. ];
      device_bw_gb_s = [ 600. ]; clock_mhz = [ Space.default_clock_mhz ] }
  in
  let start l1 l2 =
    { Space.systolic_dim = 16; lanes = 2; l1; l2; memory_bw = 2.;
      device_bw = 600.; clock_mhz = Space.default_clock_mhz }
  in
  (* corners = lo, hi, mid; mid picks the upper of two values on both
     multi-valued axes, so it equals hi: two distinct starts remain. *)
  let unique_starts = [ start 192. 32.; start 256. 48. ] in
  let expected =
    List.fold_left
      (fun acc s ->
        match
          Search.local_search ~sweep:sweep2 ~tpp_target:4800. ~model ~objective
            ~feasible s
        with
        | Some o -> acc + o.Search.evaluated
        | None -> acc)
      0 unique_starts
  in
  match
    Search.optimize ~sweep:sweep2 ~tpp_target:4800. ~model ~objective ~feasible
      ()
  with
  | None -> Alcotest.fail "optimize found nothing"
  | Some o ->
      Alcotest.(check int) "evaluations counted once per unique start"
        expected o.Search.evaluated

let t_infeasible_everywhere () =
  let impossible _ = false in
  Alcotest.(check bool) "no outcome" true
    (Search.local_search ~sweep ~tpp_target:4800. ~model ~objective
       ~feasible:impossible center
    = None)

let suite =
  [
    test "lattice neighbors" t_neighbors;
    test "neighbors at the edge" t_neighbors_at_edge;
    test "local search improves to a local optimum" t_local_search_improves;
    test "multi-start matches the sweep optimum" t_optimize_matches_sweep;
    test "duplicate starts deduplicated and counted once"
      t_optimize_dedups_starts;
    test "infeasible everywhere" t_infeasible_everywhere;
    test "adjacent swept values" t_adjacent;
    test "adjacent under Float.compare" t_adjacent_float;
    prop_parallel_map;
    prop_parallel_filter_map;
    prop_map_reduce;
    test "map_reduce combines in chunk order" t_map_reduce_order;
    test "parallel array variants" t_parallel_arrays;
    test "parallel exception propagation" t_parallel_exception;
    test "parallel job-count validation" t_parallel_jobs_validation;
    test "parallel sweep bit-identical to sequential" t_sweep_parallel_identical;
    test "evaluation cache" t_eval_cache;
  ]
