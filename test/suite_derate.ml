open Core
open Helpers

(* An H100-class restricted flagship. *)
let flagship =
  Device.make ~name:"flagship" ~core_count:132 ~lanes_per_core:4
    ~systolic:(Systolic.square 16) ~l1_kb:256. ~l2_mb:50.
    ~memory:(Memory.make ~capacity_gb:80. ~bandwidth_tb_s:3.2)
    ~interconnect:(Interconnect.of_total_gb_s 900.)
    ()

let t_cap_interconnect () =
  let d = Derate.apply (Derate.Cap_interconnect 400.) flagship in
  check_close "bw capped" 400. (Device.device_bandwidth_gb_s d);
  check_close "tpp unchanged" (Device.tpp flagship) (Device.tpp d);
  Alcotest.(check bool) "escapes oct 2022" true
    (Acr_2022.classify (Spec.of_device d) = Acr_2022.Not_applicable);
  check_raises_invalid "cap above current" (fun () ->
      ignore (Derate.apply (Derate.Cap_interconnect 1000.) flagship))

let t_cap_tpp () =
  let d = Derate.apply (Derate.Cap_tpp 4800.) flagship in
  Alcotest.(check bool) "strictly under" true (Device.tpp d < 4800.);
  Alcotest.(check bool) "cores reduced" true
    (d.Device.core_count < flagship.Device.core_count);
  check_raises_invalid "cap above current" (fun () ->
      ignore (Derate.apply (Derate.Cap_tpp 100000.) flagship))

let t_cap_membw () =
  let d = Derate.apply (Derate.Cap_memory_bandwidth 2.) flagship in
  check_close "membw capped" 2e12 (Device.memory_bandwidth d);
  check_raises_invalid "cap above current" (fun () ->
      ignore (Derate.apply (Derate.Cap_memory_bandwidth 4.) flagship))

let t_compliant_2022_escapes () =
  let escapes = Derate.compliant_2022 flagship in
  Alcotest.(check int) "two escapes" 2 (List.length escapes);
  List.iter
    (fun (strategy, d) ->
      Alcotest.(check bool)
        (Derate.strategy_to_string strategy ^ " escapes")
        true
        (Acr_2022.classify (Spec.of_device d) = Acr_2022.Not_applicable))
    escapes;
  (* An already-unregulated device needs no derating. *)
  let small = Derate.apply (Derate.Cap_tpp 2000.) flagship in
  Alcotest.(check int) "nothing to do" 0 (List.length (Derate.compliant_2022 small))

let t_best_2023_core_cut () =
  let area = Area_model.total_mm2 flagship in
  match Derate.best_2023_core_cut ~die_area_mm2:area flagship with
  | None -> Alcotest.fail "a core cut must exist"
  | Some d ->
      let spec = Spec.of_device ~area_mm2:area d in
      Alcotest.(check bool) "unregulated" true
        (Acr_2023.classify Acr_2023.Data_center spec = Acr_2023.Not_applicable);
      (* Maximality: one more core would be regulated. *)
      let plus = { d with Device.core_count = d.Device.core_count + 1 } in
      let spec' = Spec.of_device ~area_mm2:area plus in
      Alcotest.(check bool) "maximal" true
        (Acr_2023.classify Acr_2023.Data_center spec' <> Acr_2023.Not_applicable)

let t_best_2023_none () =
  (* A tiny die cannot be made compliant at any core count once even one
     core exceeds the PD floor. *)
  let dense =
    Device.make ~name:"dense" ~core_count:64 ~lanes_per_core:8
      ~systolic:(Systolic.square 32) ~l1_kb:192. ~l2_mb:8.
      ~memory:(Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8)
      ~interconnect:(Interconnect.of_total_gb_s 400.)
      ()
  in
  (* At 10 mm^2 of claimed area, PD is astronomical for any core count
     above the floor... but one core is only ~57 TPP < 1600, so it IS
     unregulated; force the impossible case with a sub-1mm2 area. *)
  match Derate.best_2023_core_cut ~die_area_mm2:10. dense with
  | Some d ->
      Alcotest.(check bool) "found a compliant cut" true
        (Device.tpp d < 1600.)
  | None -> ()

let prop_core_cut_unregulated =
  qcheck ~count:40 "core cut is always unregulated on its area" device_arb
    (fun d ->
      QCheck.assume (d.Device.core_count >= 4);
      let area = Area_model.total_mm2 d in
      match Derate.best_2023_core_cut ~die_area_mm2:area d with
      | None -> true
      | Some cut ->
          Acr_2023.classify Acr_2023.Data_center
            (Spec.of_device ~area_mm2:area cut)
          = Acr_2023.Not_applicable)

let suite =
  [
    test "cap interconnect" t_cap_interconnect;
    test "cap tpp" t_cap_tpp;
    test "cap memory bandwidth" t_cap_membw;
    test "oct 2022 escapes" t_compliant_2022_escapes;
    test "oct 2023 maximal core cut" t_best_2023_core_cut;
    test "core cut edge cases" t_best_2023_none;
    prop_core_cut_unregulated;
  ]
