(* The sanction-regime DSL: predicate semantics, bit-identity of the
   legacy classifiers against the registry values (the refactor's safety
   net), JSON round-trips, tightening monotonicity, and evaluation
   scope.

   The bit-identity tests transcribe the ORIGINAL legacy decision logic
   inline (thresholds and all); if someone edits a registry value, these
   fail even though the legacy modules now route through the DSL. *)

open Core
open Helpers

let spec ?(area = 800.) ?(non_planar = true) tpp bw =
  Spec.make ~non_planar ~tpp ~device_bw_gb_s:bw ~die_area_mm2:area ()

(* --- predicate semantics --- *)

let t_pred_semantics () =
  let s = Regime.of_spec (spec 2000. 600.) in
  let holds p = Regime.holds p s in
  Alcotest.(check bool) "at_least hit" true (holds (Regime.at_least Regime.Tpp 2000.));
  Alcotest.(check bool) "above is strict" false (holds (Regime.above Regime.Tpp 2000.));
  Alcotest.(check bool) "all_of [] is true" true (holds (Regime.all_of []));
  Alcotest.(check bool) "any_of [] is false" false (holds (Regime.any_of []));
  Alcotest.(check bool) "always" true (holds Regime.always);
  Alcotest.(check bool) "never" false (holds Regime.never);
  (* Quantities the subject does not report: lower bounds are false
     (absence never regulates), upper bounds hold vacuously. *)
  Alcotest.(check bool) "missing quantity: at_least false" false
    (holds (Regime.at_least Regime.L1_kb 0.));
  Alcotest.(check bool) "missing quantity: at_most vacuous" true
    (holds (Regime.at_most Regime.L1_kb 32.));
  check_raises_invalid "negative threshold" (fun () ->
      ignore (Regime.at_least Regime.Tpp (-1.)));
  check_raises_invalid "nan threshold" (fun () ->
      ignore (Regime.above Regime.Tpp Float.nan))

let t_verdict_severity () =
  (* Two rules fire: the most severe verdict wins, regardless of order. *)
  let r =
    Regime.make "sev"
      [
        Regime.rule Regime.Nac (Regime.at_least Regime.Tpp 100.);
        Regime.rule Regime.License (Regime.at_least Regime.Tpp 200.);
      ]
  in
  let v tpp = Regime.verdict r (Regime.of_spec (spec tpp 0.)) in
  Alcotest.(check bool) "below both" true (v 50. = Regime.Unregulated);
  Alcotest.(check bool) "nac tier" true (v 150. = Regime.Nac);
  Alcotest.(check bool) "license wins" true (v 250. = Regime.License);
  (* Market filter: a rule scoped to one market never fires in the other. *)
  let m =
    Regime.make "mkt"
      [
        Regime.rule ~market:Regime.Data_center Regime.License
          (Regime.at_least Regime.Tpp 100.);
      ]
  in
  Alcotest.(check bool) "dc fires" true
    (Regime.verdict ~market:Regime.Data_center m (Regime.of_spec (spec 150. 0.))
    = Regime.License);
  Alcotest.(check bool) "non-dc exempt" true
    (Regime.verdict ~market:Regime.Non_data_center m
       (Regime.of_spec (spec 150. 0.))
    = Regime.Unregulated)

(* --- bit-identity: October 2022 --- *)

let t_identity_acr2022 () =
  (* Original logic: license iff TPP >= 4800 and device BW >= 600. *)
  let legacy (s : Spec.t) =
    if s.Spec.tpp >= 4800. && s.Spec.device_bw_gb_s >= 600. then
      Acr_2022.License_required
    else Acr_2022.Not_applicable
  in
  List.iter
    (fun g ->
      let s = Gpu.spec g in
      let expect = legacy s in
      Alcotest.(check bool)
        (g.Gpu.name ^ " wrapper") true
        (Acr_2022.classify s = expect);
      let dsl = Regime.verdict Regime.acr_2022 (Regime.of_spec s) in
      Alcotest.(check bool)
        (g.Gpu.name ^ " dsl") true
        ((dsl = Regime.License) = (expect = Acr_2022.License_required)))
    Database.all;
  (* Boundary points the device DB might miss. *)
  List.iter
    (fun (tpp, bw, licensed) ->
      Alcotest.(check bool)
        (Printf.sprintf "tpp=%.0f bw=%.0f" tpp bw)
        licensed
        (Regime.verdict Regime.acr_2022 (Regime.of_spec (spec tpp bw))
        = Regime.License))
    [
      (4800., 600., true); (4799., 600., false); (4800., 599., false);
      (1e6, 1e4, true); (0., 0., false);
    ]

(* --- bit-identity: October 2023, both markets --- *)

let t_identity_acr2023 () =
  (* Original chain, thresholds inline: see the pre-refactor
     Acr_2023.classify. *)
  let legacy market (s : Spec.t) =
    let tpp = s.Spec.tpp in
    let pd = Spec.performance_density s in
    match market with
    | Regime.Non_data_center ->
        if tpp >= 4800. then Acr_2023.Nac_eligible else Acr_2023.Not_applicable
    | Regime.Data_center ->
        if tpp >= 4800. || (tpp >= 1600. && pd >= 5.92) then
          Acr_2023.License_required
        else if
          (tpp >= 2400. && pd >= 1.6 && pd < 5.92)
          || (tpp >= 1600. && pd >= 3.2 && pd < 5.92)
        then Acr_2023.Nac_eligible
        else Acr_2023.Not_applicable
  in
  let tier_of_verdict = function
    | Regime.Unregulated -> Acr_2023.Not_applicable
    | Regime.Nac -> Acr_2023.Nac_eligible
    | Regime.License -> Acr_2023.License_required
  in
  let specs =
    List.map Gpu.spec Database.all
    (* A planar + synthetic grid around every threshold crossing. *)
    @ [ spec ~non_planar:false 4992. 600. ]
    @ List.concat_map
        (fun tpp ->
          List.map
            (fun area -> spec ~area tpp 600.)
            [ 100.; 270.; 500.; 755.; 1000.; 1500.; 3001. ])
        [ 1599.; 1600.; 2399.; 2400.; 4799.; 4800.; 15000. ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun market ->
          let name =
            Printf.sprintf "tpp=%.0f area=%.0f %s" s.Spec.tpp
              s.Spec.die_area_mm2
              (Regime.market_to_string market)
          in
          let expect = legacy market s in
          Alcotest.(check bool) (name ^ " wrapper") true
            (Acr_2023.classify market s = expect);
          Alcotest.(check bool) (name ^ " dsl") true
            (tier_of_verdict
               (Regime.verdict ~market Regime.acr_2023 (Regime.of_spec s))
            = expect))
        [ Regime.Data_center; Regime.Non_data_center ])
    specs

(* --- bit-identity: December 2024 HBM --- *)

let t_identity_hbm () =
  let legacy d =
    if d <= 2.0 then Hbm_2024.Not_controlled
    else if d < 3.3 then Hbm_2024.Controlled_exception_eligible
    else Hbm_2024.Controlled
  in
  List.iter
    (fun d ->
      Alcotest.(check bool)
        (Printf.sprintf "density %.5f" d)
        true
        (Hbm_2024.classify_density d = legacy d))
    [ -1.; 0.; 1.99; 2.0; 2.00001; 2.78; 3.29; 3.2999; 3.3; 3.31; 11.17 ];
  (* The regime sees real packages through memory bandwidth over area. *)
  let v bw area =
    Regime.verdict Regime.hbm_2024
      (Regime.subject ~memory_bw_tb_s:(bw /. 1000.)
         (Spec.make ~tpp:0. ~device_bw_gb_s:0. ~die_area_mm2:area ()))
  in
  Alcotest.(check bool) "HBM2 184/92 -> exception tier" true (v 184. 92. = Regime.Unregulated);
  Alcotest.(check bool) "HBM2 256/92 -> nac" true (v 256. 92. = Regime.Nac);
  Alcotest.(check bool) "HBM3e 1229/110 -> license" true (v 1229. 110. = Regime.License)

(* --- bit-identity: diffusion single-order tiers --- *)

let t_identity_diffusion () =
  let order units tpp = { Diffusion_2025.consignee = "c"; device_tpp = tpp; units } in
  let verdict_of = function
    | Diffusion_2025.Within_lpp_exception -> Regime.Unregulated
    | Diffusion_2025.Within_allocation -> Regime.Nac
    | Diffusion_2025.Exceeds_allocation -> Regime.License
  in
  List.iter
    (fun (units, tpp) ->
      let o = order units tpp in
      (* Fresh ledger per order: the regime models the stateless tier of a
         first order; cumulative accounting stays in Diffusion_2025. *)
      let ledger = Diffusion_2025.create () in
      let expect = verdict_of (Diffusion_2025.classify ledger o) in
      let subject =
        Regime.of_spec
          (Spec.make ~tpp:(Diffusion_2025.order_tpp o) ~device_bw_gb_s:0.
             ~die_area_mm2:1. ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d x %.0f" units tpp)
        true
        (Regime.verdict Regime.diffusion_2025 subject = expect))
    [
      (1, 4800.); (1_500, 15824.); (1_700, 15824.); (25_000, 15824.);
      (49_000, 15824.); (50_000, 15824.); (1, 26.9e6); (2, 400e6);
    ]

(* --- bit-identity: the Sec. 5 proposals --- *)

let t_identity_proposals () =
  let pairs =
    [
      (Regime.proposal_tpp_4800, Proposals.tpp_only 4800.);
      (Regime.proposal_ai_targeted, Proposals.ai_targeted);
      (Regime.proposal_gaming_carveout, Proposals.gaming_carveout);
    ]
  in
  List.iter
    (fun g ->
      let dev = Gpu.to_template g in
      List.iter
        (fun ((regime : Regime.t), limits) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s" regime.Regime.name g.Gpu.name)
            (not (Proposals.compliant ~memory_gb:g.Gpu.memory_gb limits dev))
            (Regime.regulated regime
               (Regime.of_device ~memory_gb:g.Gpu.memory_gb dev)))
        pairs)
    Database.all

(* --- timeline equivalence at era boundaries --- *)

let t_timeline_boundaries () =
  let a100 = spec ~area:826. 4992. 600. in
  let check_at y m expect =
    let d = Timeline.date y m in
    let ruling = Timeline.classify_at d ~market:Acr_2023.Data_center a100 in
    Alcotest.(check string)
      (Printf.sprintf "%d-%02d" y m)
      expect
      (Timeline.ruling_to_string ruling)
  in
  check_at 2022 9 "unregulated";
  check_at 2022 10 "license required";
  check_at 2023 9 "license required";
  check_at 2023 10 "license required";
  check_at 2026 1 "license required";
  (* The schedule view agrees with the era enum at every boundary. *)
  List.iter
    (fun (y, m) ->
      let d = Timeline.date y m in
      let via_enum = Timeline.to_value (Timeline.regime_at d) in
      let via_schedule =
        Option.value (Timeline.regime_in_force d) ~default:Regime.pre_acr
      in
      Alcotest.(check bool)
        (Printf.sprintf "in force %d-%02d" y m)
        true
        (Regime.equal via_enum via_schedule))
    [ (2021, 1); (2022, 9); (2022, 10); (2023, 9); (2023, 10); (2025, 6) ]

let t_schedule_validation () =
  let d22 = Timeline.date 2022 10 and d23 = Timeline.date 2023 10 in
  check_raises_invalid "duplicate dates" (fun () ->
      ignore (Timeline.schedule [ (d22, Regime.acr_2022); (d22, Regime.acr_2023) ]));
  (* Out-of-order input is sorted, not rejected. *)
  let s = Timeline.schedule [ (d23, Regime.acr_2023); (d22, Regime.acr_2022) ] in
  Alcotest.(check bool) "sorted: 2022 rule in force mid-2023" true
    (Regime.equal
       (Option.get (Timeline.regime_in_force ~schedule:s (Timeline.date 2023 5)))
       Regime.acr_2022);
  Alcotest.(check bool) "empty schedule: nothing in force" true
    (Timeline.regime_in_force ~schedule:(Timeline.schedule []) (Timeline.date 2024 1)
    = None)

(* --- scope: per-package vs per-die --- *)

let t_scope () =
  let cores =
    Device.cores_for_tpp ~tpp:1199. ~lanes_per_core:2
      ~systolic:(Systolic.square 16) ()
  in
  let die =
    Device.make ~name:"die" ~core_count:cores ~lanes_per_core:2
      ~systolic:(Systolic.square 16) ~l1_kb:192. ~l2_mb:16.
      ~memory:(Memory.make ~capacity_gb:24. ~bandwidth_tb_s:0.8)
      ~interconnect:(Interconnect.of_total_gb_s 200.)
      ()
  in
  let pkg =
    Package.make ~name:"mcm" ~compute_die:die ~compute_die_area_mm2:400.
      ~compute_dies:4 ()
  in
  let per_package =
    Regime.classify_package ~device_bw_gb_s:800. Regime.acr_2023 pkg
  in
  let per_die =
    Regime.classify_package ~device_bw_gb_s:800.
      (Regime.with_scope Regime.Per_die Regime.acr_2023)
      pkg
  in
  (* Four ~1178-TPP dies aggregate into NAC territory, but each die alone
     is under every 2023 floor: the chiplet evasion the scope lever
     models. *)
  Alcotest.(check bool) "package caught" true (per_package <> Regime.Unregulated);
  Alcotest.(check bool) "dies escape" true (per_die = Regime.Unregulated)

(* --- threshold queries --- *)

let t_threshold () =
  let get ?verdict r q = Regime.threshold ?verdict r q in
  check_close "acr-2022 tpp line" 4800.
    (Option.get (get Regime.acr_2022 Regime.Tpp));
  check_close "acr-2022 bw line" 600.
    (Option.get (get Regime.acr_2022 Regime.Device_bw_gb_s));
  check_close "acr-2023 lowest tpp floor" 1600.
    (Option.get (get Regime.acr_2023 Regime.Tpp));
  check_close "hbm nac line" 2.0
    (Option.get (get ~verdict:Regime.Nac Regime.hbm_2024 Regime.Bw_density_gb_s_mm2));
  check_close "hbm license line" 3.3
    (Option.get (get ~verdict:Regime.License Regime.hbm_2024 Regime.Bw_density_gb_s_mm2));
  Alcotest.(check bool) "pre-acr has no tpp line" true
    (get Regime.pre_acr Regime.Tpp = None);
  Alcotest.(check bool) "acr-2022 says nothing about L1" true
    (get Regime.acr_2022 Regime.L1_kb = None)

let t_find () =
  Alcotest.(check bool) "by name" true
    (Regime.equal (Option.get (Regime.find "acr-2023")) Regime.acr_2023);
  Alcotest.(check bool) "case-insensitive" true
    (Regime.equal (Option.get (Regime.find "ACR-2023")) Regime.acr_2023);
  Alcotest.(check bool) "legacy token oct2022" true
    (Regime.equal (Option.get (Regime.find "oct2022")) Regime.acr_2022);
  Alcotest.(check bool) "legacy token pre_acr" true
    (Regime.equal (Option.get (Regime.find "pre_acr")) Regime.pre_acr);
  Alcotest.(check bool) "unknown" true (Regime.find "acr-1999" = None)

(* --- JSON --- *)

let t_json_registry_roundtrip () =
  List.iter
    (fun (r : Regime.t) ->
      Alcotest.(check bool)
        (r.Regime.name ^ " roundtrips")
        true
        (Regime.equal (Regime.of_json (Regime.to_json r)) r))
    Regime.registry

let t_json_errors () =
  let bad s =
    match Regime.of_json (Json.of_string s) with
    | exception Json.Error _ -> ()
    | _ -> Alcotest.failf "expected Json.Error on %s" s
  in
  bad {|{"rules": []}|};
  (* no name *)
  bad {|{"name": "x", "rules": [{"verdict": "license", "when": {"q": "tpp", "ge": -1}}]}|};
  bad {|{"name": "x", "rules": [{"verdict": "maybe", "when": {"q": "tpp", "ge": 1}}]}|};
  bad {|{"name": "x", "effective": "october", "rules": []}|};
  bad {|{"name": "x", "scope": "per-core", "rules": []}|}

(* --- qcheck: random regimes round-trip; tightening is monotone --- *)

let quantity_gen =
  QCheck.Gen.oneofl
    [
      Regime.Tpp; Regime.Performance_density; Regime.Device_bw_gb_s;
      Regime.Die_area_mm2; Regime.Bw_density_gb_s_mm2; Regime.Memory_bw_tb_s;
      Regime.Memory_gb; Regime.Systolic_dim; Regime.L1_kb; Regime.L2_mb;
    ]

let bound_gen =
  (* Exact binary fractions so float round-trips are never in question
     for the monotonicity division; the codec's own exactness is covered
     by the awkward values below. *)
  QCheck.Gen.oneofl [ 0.; 0.5; 1.; 1.5; 2.; 3.3; 5.92; 26.9e6; 790e6; 4800. ]

let rec pred_gen depth =
  let open QCheck.Gen in
  let atom =
    let* q = quantity_gen in
    let* v = bound_gen in
    oneofl [ Regime.at_least q v; Regime.above q v ]
  in
  if depth = 0 then atom
  else
    frequency
      [
        (3, atom);
        (1, map Regime.all_of (list_size (int_range 0 3) (pred_gen (depth - 1))));
        (1, map Regime.any_of (list_size (int_range 0 3) (pred_gen (depth - 1))));
        (1, map Regime.not_ (pred_gen (depth - 1)));
      ]

let regime_gen =
  let open QCheck.Gen in
  let rule_gen =
    let* market = oneofl [ None; Some Regime.Data_center; Some Regime.Non_data_center ] in
    let* verdict = oneofl [ Regime.Nac; Regime.License ] in
    let* requires = pred_gen 2 in
    return { Regime.market; verdict; requires }
  in
  let* name = oneofl [ "r"; "draft-1"; "x_y" ] in
  let* description = oneofl [ ""; "a draft" ] in
  let* effective =
    oneofl [ None; Some (Regime.date 2022 10); Some (Regime.date 2025 1) ]
  in
  let* scope = oneofl [ Regime.Per_die; Regime.Per_package ] in
  let* rules = list_size (int_range 0 4) rule_gen in
  return
    (Regime.with_scope scope
       (Regime.make ~description ?effective name rules))

let regime_arb =
  QCheck.make
    ~print:(fun r -> Json.to_string ~indent:2 (Regime.to_json r))
    regime_gen

let subject_gen =
  let open QCheck.Gen in
  let* tpp = oneofl [ 0.; 1599.; 1600.; 2400.; 4800.; 15824.; 27e6 ] in
  let* bw = oneofl [ 0.; 400.; 600.; 900. ] in
  let* area = oneofl [ 1.; 100.; 755.; 3000. ] in
  let* non_planar = bool in
  let* membw = oneofl [ None; Some 0.8; Some 3.35 ] in
  let* memgb = oneofl [ None; Some 24.; Some 80. ] in
  let* dim = oneofl [ None; Some 4; Some 16 ] in
  let* l1 = oneofl [ None; Some 32.; Some 192. ] in
  let* l2 = oneofl [ None; Some 8.; Some 40. ] in
  return
    {
      Regime.spec = spec ~area ~non_planar tpp bw;
      memory_bw_tb_s = membw;
      memory_gb = memgb;
      systolic_dim = dim;
      l1_kb = l1;
      l2_mb = l2;
    }

let t_qcheck_json_roundtrip =
  qcheck ~count:300 "Regime.of_json (to_json r) = r" regime_arb (fun r ->
      Regime.equal (Regime.of_json (Regime.to_json r)) r)

(* Awkward float thresholds must survive the printer exactly. *)
let t_json_awkward_floats () =
  List.iter
    (fun v ->
      let r =
        Regime.make "awkward" [ Regime.rule Regime.License (Regime.above Regime.Tpp v) ]
      in
      Alcotest.(check bool)
        (Printf.sprintf "%.17g roundtrips" v)
        true
        (Regime.equal (Regime.of_json (Regime.to_json r)) r))
    [ 0.1; 5.92; 2.0000000000000004; 1e-300; 26.9e6; Float.max_float ]

let verdict_rank = function
  | Regime.Unregulated -> 0
  | Regime.Nac -> 1
  | Regime.License -> 2

let t_qcheck_tighten_monotone =
  qcheck ~count:400 "tighten never un-regulates"
    (QCheck.pair regime_arb
       (QCheck.make
          ~print:(fun (f, _) -> string_of_float f)
          QCheck.Gen.(pair (oneofl [ 0.25; 0.5; 0.75; 1. ]) subject_gen)))
    (fun (r, (factor, subject)) ->
      List.for_all
        (fun market ->
          verdict_rank (Regime.verdict ~market (Regime.tighten ~factor r) subject)
          >= verdict_rank (Regime.verdict ~market r subject))
        [ Regime.Data_center; Regime.Non_data_center ])

let t_tighten_validation () =
  check_raises_invalid "factor 0" (fun () ->
      ignore (Regime.tighten ~factor:0. Regime.acr_2022));
  check_raises_invalid "factor > 1" (fun () ->
      ignore (Regime.tighten ~factor:1.5 Regime.acr_2022));
  (* factor 1 is the identity *)
  Alcotest.(check bool) "factor 1 = id" true
    (Regime.equal (Regime.tighten ~factor:1. Regime.acr_2023) Regime.acr_2023)

let suite =
  [
    test "predicate semantics" t_pred_semantics;
    test "verdict severity and market filter" t_verdict_severity;
    test "bit-identity: acr-2022 over device DB" t_identity_acr2022;
    test "bit-identity: acr-2023 over device DB and grid" t_identity_acr2023;
    test "bit-identity: hbm-2024 density tiers" t_identity_hbm;
    test "bit-identity: diffusion-2025 order tiers" t_identity_diffusion;
    test "bit-identity: Sec. 5 proposals" t_identity_proposals;
    test "timeline boundaries" t_timeline_boundaries;
    test "schedule validation" t_schedule_validation;
    test "per-die vs per-package scope" t_scope;
    test "threshold queries" t_threshold;
    test "registry lookup and aliases" t_find;
    test "registry JSON round-trip" t_json_registry_roundtrip;
    test "JSON rejects malformed regimes" t_json_errors;
    test "JSON round-trips awkward floats" t_json_awkward_floats;
    t_qcheck_json_roundtrip;
    test "tighten validation" t_tighten_validation;
    t_qcheck_tighten_monotone;
  ]
